#!/usr/bin/env bash
# CI entry point: tier-1 verify (build + full gtest suite via ctest),
# the sweep-engine equivalence/speedup bench, the Monte-Carlo engine
# bench, the figure/ablation grid benches (all in smoke mode), and the
# micro benches with a minimal measurement budget.  Leaves the
# BENCH_*.json artifacts in build/ for the workflow to archive.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 2)"

# --- Tier-1 verify ---------------------------------------------------------
cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

# --- Sweep-engine smoke: exits non-zero if the cached-rate path diverges
# from fresh per-point exploration, and records BENCH_sweep.json.
(cd build && ./bench_sweep --smoke)

# --- Monte-Carlo engine smoke: exits non-zero if the batched path loses
# its >= 3x speedup at equal CI width, the analytic values fall outside
# the simulation CIs, CRN stops reducing contrast variance, or the
# antithetic pairs stop beating plain CRN.  Records BENCH_mc.json.
(cd build && ./bench_mc --smoke)

# --- Sharded sweep service demo: two sweep_shard WORKER PROCESSES split
# each paper grid (concurrently — this is the multi-process path, not a
# thread demo), then sweep_merge recombines the shard files, reports the
# cross-shard optima, and gates the merge against a fresh single-process
# run: analytic values within 1e-12 and Monte-Carlo accumulator states
# bitwise identical.  Non-zero exit on any divergence.  Records
# BENCH_shard_merge_fig2.json / BENCH_shard_merge_fig4.json.
for plan in fig2 fig4; do
  (
    cd build
    ./sweep_shard --plan "${plan}" --shards 2 --shard 0 --smoke 1 \
                  --out "shard_0_${plan}.json" &
    SHARD0=$!
    ./sweep_shard --plan "${plan}" --shards 2 --shard 1 --smoke 1 \
                  --out "shard_1_${plan}.json" &
    SHARD1=$!
    # Two waits: `wait p0 p1` would report only p1's status.
    wait "${SHARD0}"
    wait "${SHARD1}"
    ./sweep_merge --inputs "shard_0_${plan}.json,shard_1_${plan}.json" \
                  --check 1 --json-out "BENCH_shard_merge_${plan}.json"
  )
done

# --- Figure/ablation grid benches, smoke mode: every figure runs as a
# core::GridSpec batch and validates each grid point against a
# CI-bounded Monte-Carlo interval (CRN + antithetic).  Non-zero exit if
# the analytic values leave the simulation CIs.  Records
# BENCH_fig*.json / BENCH_abl*.json.
for b in fig2_mttsf_vs_m fig3_cost_vs_m fig4_mttsf_vs_detection \
         fig5_cost_vs_detection abl_attacker_matrix abl_sensitivity; do
  (cd build && "./${b}" --smoke)
done

# --- Micro benches, smoke budget (skipped when Google Benchmark absent).
for b in micro_solver micro_voting; do
  if [ -x "build/${b}" ]; then
    (cd build && "./${b}" --benchmark_min_time=0.01)
  fi
done

echo "ci.sh: all checks passed"
