#!/usr/bin/env bash
# CI entry point: tier-1 verify (build + full gtest suite via ctest),
# the sweep-engine equivalence/speedup bench in smoke mode, and the
# micro benches with a minimal measurement budget.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 2)"

# --- Tier-1 verify ---------------------------------------------------------
cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

# --- Sweep-engine smoke: exits non-zero if the cached-rate path diverges
# from fresh per-point exploration, and records BENCH_sweep.json.
(cd build && ./bench_sweep --smoke)

# --- Micro benches, smoke budget (skipped when Google Benchmark absent).
for b in micro_solver micro_voting; do
  if [ -x "build/${b}" ]; then
    (cd build && "./${b}" --benchmark_min_time=0.01)
  fi
done

echo "ci.sh: all checks passed"
