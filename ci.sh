#!/usr/bin/env bash
# CI entry point: tier-1 verify (build + full gtest suite via ctest),
# the declarative experiment-API gates (spec round-trip + legacy parity
# via run_experiment), the sweep-engine equivalence/speedup bench, the
# Monte-Carlo engine bench, the sharded sweep demo (contiguous AND
# pilot-cost-balanced splits), the figure/ablation grid benches (all in
# smoke mode), and the micro benches with a minimal measurement budget.
# Leaves the BENCH_*.json artifacts in build/ for the workflow to
# archive.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 2)"

# --- Tier-1 verify ---------------------------------------------------------
cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

# --- Experiment-API gate: emit the fig2 validation spec as a JSON
# file, execute it end-to-end through run_experiment, and require
#   * the spec file to round-trip BYTE-FOR-BYTE through parse +
#     re-serialisation (the wire format must be canonical), and
#   * the service answers to match the legacy entry points
#     (SweepEngine::run / run_mc): analytic within 1e-12 (in practice
#     exactly) and Monte-Carlo accumulator states bitwise under CRN.
# Non-zero exit on any divergence.
(
  cd build
  ./run_experiment --preset fig2_val --smoke 1 --spec-out fig2_spec.json
  ./run_experiment --spec fig2_spec.json --round-trip-check 1 \
                   --parity-check 1 --out fig2_experiment.json
)

# --- Scenario-model gate: the pluggable detector/attacker grids run
# end-to-end from their spec files.  The legacy-parity sections skip
# themselves (the pre-plugin engine cannot express these models); the
# plugin-path check still gates that a re-parsed spec reruns to
# CANONICALLY IDENTICAL bytes, and --round-trip-check that the model
# descriptors serialise canonically.  rare_event additionally exercises
# the spec.mc.vr round-trip and the vr-neutral parity gate (stripping
# the vr block must leave the DES mc payload bitwise), val_protocol_ci
# the CI-targeted pair-averaged stopping on the protocol backend.
for preset in detector_matrix attacker_matrix_v2 mission_phased \
              attacker_surge rare_event val_protocol_ci; do
  (
    cd build
    ./run_experiment --preset "${preset}" --smoke 1 \
                     --spec-out "${preset}_spec.json"
    ./run_experiment --spec "${preset}_spec.json" --round-trip-check 1 \
                     --parity-check 1 --out "${preset}_experiment.json"
  )
done

# --- Sweep-engine smoke: exits non-zero if the cached-rate path diverges
# from fresh per-point exploration, and records BENCH_sweep.json.
(cd build && ./bench_sweep --smoke)

# --- Monte-Carlo engine smoke: exits non-zero if the batched path loses
# its >= 3x speedup at equal CI width, the analytic values fall outside
# the simulation CIs, CRN stops reducing contrast variance, or the
# antithetic pairs stop beating plain CRN.  Records BENCH_mc.json.
(cd build && ./bench_mc --smoke)

# --- Sharded sweep service demo: two sweep_shard WORKER PROCESSES split
# each paper spec (concurrently — this is the multi-process path, not a
# thread demo), then sweep_merge recombines the experiment-result files,
# reports the cross-shard optima AND the achieved load balance, and
# gates the merge against a fresh single-process service run: analytic
# values within 1e-12 and Monte-Carlo accumulator states bitwise
# identical.  Non-zero exit on any divergence.  fig2 exercises the
# replication-balanced --policy by-pilot-cost split (every worker
# derives the identical plan from a deterministic pilot block), fig4 the
# plain contiguous split.  Records BENCH_shard_merge_fig2.json /
# BENCH_shard_merge_fig4.json (including per-shard seconds and the
# slowest/fastest ratio).
run_shard_demo() {
  local plan="$1" policy="$2"
  (
    cd build
    ./sweep_shard --plan "${plan}" --shards 2 --shard 0 --smoke 1 \
                  --policy "${policy}" --out "shard_0_${plan}.json" &
    local SHARD0=$!
    ./sweep_shard --plan "${plan}" --shards 2 --shard 1 --smoke 1 \
                  --policy "${policy}" --out "shard_1_${plan}.json" &
    local SHARD1=$!
    # Two waits: `wait p0 p1` would report only p1's status.
    wait "${SHARD0}"
    wait "${SHARD1}"
    ./sweep_merge --inputs "shard_0_${plan}.json,shard_1_${plan}.json" \
                  --check 1 --json-out "BENCH_shard_merge_${plan}.json"
  )
}
run_shard_demo fig2 by-pilot-cost
run_shard_demo fig4 contiguous

# --- Fault-tolerant fleet soak: a coordinator drives FOUR fleet_worker
# processes through the fig2 validation spec over loopback TCP while a
# fault plan kills two of them mid-run (one crashes while computing a
# shard, one after computing but before sending the result).  The gate
# requires (a) both scheduled kills actually fired, (b) the coordinator
# detected the deaths and reassigned the orphaned leases, and (c) the
# merged ExperimentResult is BYTE-IDENTICAL (canonical JSON, wall-clock
# timings zeroed) to a crash-free single-process run_experiment answer.
# Records BENCH_fleet_soak.json (recovery latency, reassignments,
# duplicates dropped).
(
  cd build
  ./fleet_soak --preset fig2_val --smoke 1 --workers 4 --clients 2 \
               --faults "crash_mid_shard=1;crash_before_result=1" \
               --out BENCH_fleet_soak.json
)

# --- Figure/ablation grid benches, smoke mode: every figure runs as a
# core::GridSpec batch and validates each grid point against a
# CI-bounded Monte-Carlo interval (CRN + antithetic).  Non-zero exit if
# the analytic values leave the simulation CIs.  Records
# BENCH_fig*.json / BENCH_abl*.json.
for b in fig2_mttsf_vs_m fig3_cost_vs_m fig4_mttsf_vs_detection \
         fig5_cost_vs_detection abl_attacker_matrix abl_sensitivity \
         val_protocol_sim ext_mission_reliability; do
  (cd build && "./${b}" --smoke)
done

# --- Phased-mission gate: constant schedules/missions must reproduce
# the no-schedule canonical backend payloads BYTE-FOR-BYTE, the chained
# analytic R(t)/MTTSF must sit inside the DES confidence intervals on
# the 3-phase mission_phased preset at paper N=100, and the λc×4
# attacker_surge schedule must agree across all three backends.
# Non-zero exit on any gate flip.  Records BENCH_mission.json.
(cd build && ./bench_mission --smoke)

# --- Variance-reduction gate: the rare_event preset through the vr
# subsystem.  Non-zero exit if the sobol/cv/splitting payloads stop
# being bitwise identical across 1/2/4 worker threads, if the TTSF
# control variate's work-normalised efficiency drops below 5x at the
# hot-λq corner, if the multilevel-splitting estimate leaves 2x its CI
# around the analytic p_failure_c2 ~ 3e-6 tail, or if the plain pass
# stops flagging its zero-C2 failure proportion one-sided.  Records
# BENCH_vr.json.
(cd build && ./bench_vr --smoke)

# --- Scenario-model bench: every pluggable detector and attacker model
# as its own experiment — per-scenario wall clock, convergence at the
# preset CI target, and (for the analytic-compatible scenarios:
# static/entropy detectors, poisson attacker) the SPN answer inside the
# DES 95% CI.  Non-zero exit on any gate flip.  Records
# BENCH_scenarios.json.
(cd build && ./bench_scenarios --smoke)

# --- Batched-solver kernel bench: standalone (always built), so it runs
# unconditionally.  Exits non-zero if the batched solve falls below its
# per-profile kernel speedup floor, if reuse-off stops being bitwise the
# scalar solve, if reuse-on leaves 1e-12, or if factor reuse stops
# sharing factorisations on the identical-point profile.  Records
# BENCH_solver.json.
(cd build && ./micro_solver --smoke)

# --- Micro benches, smoke budget (skipped when Google Benchmark absent).
for b in micro_voting; do
  if [ -x "build/${b}" ]; then
    (cd build && "./${b}" --benchmark_min_time=0.01)
  fi
done

# --- UBSan build-and-test: the batched kernels lean on pointer/span
# arithmetic over arena scratch, so rebuild the library + test suite
# with UndefinedBehaviorSanitizer (non-recoverable: any finding aborts)
# and run the full gtest binary once.  Only the midas_tests target is
# built — the bench/tool executables are covered by the plain build.
cmake -B build-ubsan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined"
cmake --build build-ubsan -j"${JOBS}" --target midas_tests
./build-ubsan/midas_tests

echo "ci.sh: all checks passed"
