// Minimal JSON document model for the sharded sweep service: shard
// workers persist their GridSpec slice results (core::write_shard_json)
// and the merge step reads them back, so the encoding must round-trip
// every double bit-for-bit — numbers are emitted with 17 significant
// digits (DBL_DECIMAL_DIG), which strtod maps back to the identical
// bits.  Non-finite values (the n < 2 infinite CI half-widths, NaN
// categorical axis levels) are encoded as the strings "inf" / "-inf" /
// "nan" so the files stay strict JSON; to_double() decodes either form.
//
// Objects preserve insertion order (stable diffs, readable artifacts).
// This is a data-file format, not a general-purpose JSON library: the
// parser accepts exactly the documents dump() produces plus ordinary
// hand-written JSON (escapes, nesting, whitespace), and throws
// std::runtime_error with line context on malformed input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace midas::util {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}            // NOLINT
  Json(double v) : type_(Type::Number), number_(v) {}      // NOLINT
  Json(std::string s)                                      // NOLINT
      : type_(Type::String), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::String), string_(s) {}  // NOLINT

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  /// A Number when `v` is finite, else the flag string "inf" / "-inf" /
  /// "nan" — the encoding to_double() reverses.
  [[nodiscard]] static Json number(double v);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }

  // --- Object access (insertion-ordered). -------------------------------
  /// Sets (or replaces) a key.  *this must be an Object.
  Json& set(const std::string& key, Json value);
  /// nullptr when absent.  *this must be an Object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Throws std::runtime_error naming the key when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  // --- Array access. ----------------------------------------------------
  Json& push_back(Json value);
  [[nodiscard]] const Json& at(std::size_t index) const;
  [[nodiscard]] const std::vector<Json>& elements() const;
  [[nodiscard]] std::size_t size() const;

  // --- Scalar access (throws std::runtime_error on type mismatch). ------
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  /// Number or non-finite flag string → double (see number()).
  [[nodiscard]] double to_double() const;
  /// Non-negative integral Number → size_t; throws on fraction/negative.
  [[nodiscard]] std::size_t as_size() const;
  [[nodiscard]] std::uint64_t as_u64() const;

  /// Serialises with 2-space indentation and a trailing newline at the
  /// top level.  Doubles round-trip bitwise (17 significant digits).
  [[nodiscard]] std::string dump() const;

  /// Single-line serialisation (no indentation, no trailing newline),
  /// same number/string encoding as dump().  Because every control
  /// character in strings is escaped, the output never contains a raw
  /// newline — this is the form the newline-delimited frame codec
  /// (util/framing.h) puts on the wire.
  [[nodiscard]] std::string dump_compact() const;

  /// Parses a complete document; trailing non-whitespace is an error.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  /// depth < 0 selects the compact single-line form.
  void dump_to(std::string& out, int depth) const;
  [[noreturn]] void type_error(const char* want) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Writes `dump()` to `path`; throws std::runtime_error on IO failure.
void write_json_file(const std::string& path, const Json& value);

/// Reads and parses `path`; throws std::runtime_error on IO/parse errors.
[[nodiscard]] Json read_json_file(const std::string& path);

}  // namespace midas::util
