#include "util/cli.h"

#include <cstdio>
#include <stdexcept>

namespace midas::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli& Cli::flag(const std::string& name, double def, const std::string& help) {
  // Round-trip formatting: std::to_string would render 1e-12 as
  // "0.000000", silently replacing a small default with zero.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", def);
  if (flags_.emplace(name, Flag{Kind::Double, buf, help}).second) {
    order_.push_back(name);
  }
  return *this;
}

Cli& Cli::flag(const std::string& name, int def, const std::string& help) {
  if (flags_.emplace(name, Flag{Kind::Int, std::to_string(def), help})
          .second) {
    order_.push_back(name);
  }
  return *this;
}

Cli& Cli::flag(const std::string& name, std::string def,
               const std::string& help) {
  if (flags_.emplace(name, Flag{Kind::String, std::move(def), help}).second) {
    order_.push_back(name);
  }
  return *this;
}

Cli& Cli::required(const std::string& name) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::logic_error("Cli::required: flag --" + name +
                           " is not registered");
  }
  it->second.required = true;
  return *this;
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      name = arg.substr(2);
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag --" + name);
    }
    it->second.value = value;
    it->second.provided = true;
  }
  std::string missing;
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    if (f.required && !f.provided) {
      missing += (missing.empty() ? "--" : ", --") + name;
    }
  }
  if (!missing.empty()) {
    throw std::invalid_argument("missing required flag(s): " + missing +
                                " (see --help)");
  }
  return true;
}

const Cli::Flag& Cli::lookup(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("flag not registered: --" + name);
  }
  if (it->second.kind != kind) {
    throw std::invalid_argument("flag --" + name + " accessed as wrong type");
  }
  return it->second;
}

double Cli::get_double(const std::string& name) const {
  return std::stod(lookup(name, Kind::Double).value);
}

int Cli::get_int(const std::string& name) const {
  return std::stoi(lookup(name, Kind::Int).value);
}

const std::string& Cli::get_string(const std::string& name) const {
  return lookup(name, Kind::String).value;
}

void Cli::print_usage() const {
  std::printf("%s — %s\n\nflags:\n", program_.c_str(), description_.c_str());
  for (const auto& name : order_) {
    const auto& f = flags_.at(name);
    if (f.required) {
      std::printf("  --%-24s %s (required)\n", name.c_str(), f.help.c_str());
    } else {
      std::printf("  --%-24s %s (default: %s)\n", name.c_str(),
                  f.help.c_str(), f.value.c_str());
    }
  }
}

}  // namespace midas::util
