// Tiny command-line flag parser for the examples and bench binaries.
// Supports `--name value` and `--name=value`; unknown flags are errors so
// typos surface immediately.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace midas::util {

/// Declarative flag set.  Register flags with defaults, then parse().
class Cli {
 public:
  Cli(std::string program, std::string description);

  Cli& flag(const std::string& name, double def, const std::string& help);
  Cli& flag(const std::string& name, int def, const std::string& help);
  Cli& flag(const std::string& name, std::string def, const std::string& help);

  /// Marks an already-registered flag as required: parse() fails unless
  /// the user supplies it (the registration default is only a type
  /// witness).  Every missing required flag is reported in ONE error so
  /// a user fixes the whole invocation in a single round trip.  Throws
  /// std::logic_error when `name` was never registered.
  Cli& required(const std::string& name);

  /// Parses argv.  Returns false (after printing usage) when `--help` is
  /// requested; throws std::invalid_argument for unknown flags/bad values
  /// and when any required flag is absent (listing all missing ones).
  [[nodiscard]] bool parse(int argc, char** argv);

  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  void print_usage() const;

 private:
  enum class Kind { Double, Int, String };
  struct Flag {
    Kind kind;
    std::string value;  // textual representation, parsed on demand
    std::string help;
    bool required = false;
    bool provided = false;
  };

  const Flag& lookup(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace midas::util
