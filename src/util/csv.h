// CSV writer used by the bench harnesses to persist every figure/table
// series next to the binary that generated it.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace midas::util {

/// Minimal RFC-4180-ish CSV writer.  Values containing commas, quotes or
/// newlines are quoted; everything else is emitted verbatim.
class CsvWriter {
 public:
  /// Opens (truncates) `path`.  Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row of already-formatted cells.
  void row(std::initializer_list<std::string_view> cells);
  void row(const std::vector<std::string>& cells);

  /// Convenience: header row.
  void header(std::initializer_list<std::string_view> cells) { row(cells); }

  /// Formats a double with full round-trip precision.
  [[nodiscard]] static std::string num(double v);

  /// Path the writer is bound to.
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void write_cell(std::string_view cell, bool first);

  std::string path_;
  std::ofstream out_;
};

}  // namespace midas::util
