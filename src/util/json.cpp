#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace midas::util {

namespace {

/// Shortest textual form that strtod maps back to the identical bits:
/// integral doubles inside the exact-integer range print without an
/// exponent (counts stay readable), everything else gets 17 significant
/// digits.
std::string encode_number(double v) {
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void encode_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  Json value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't': return literal("true", Json(true));
      case 'f': return literal("false", Json(false));
      case 'n': return literal("null", Json());
      default: return number();
    }
  }

  Json object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      skip_ws();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      obj.set(key, value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json array() {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else fail("bad hex digit in \\u escape");
          }
          // BMP code points as UTF-8 (surrogate pairs are not needed by
          // any writer in this repo and are rejected).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate pairs are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Json(v);
  }

  Json literal(std::string_view word, Json v) {
    if (text_.substr(pos_, word.size()) != word) fail("unknown literal");
    pos_ += word.size();
    return v;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[noreturn]] void fail(const char* what) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw std::runtime_error("Json::parse: " + std::string(what) +
                             " (line " + std::to_string(line) + ")");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::number(double v) {
  if (std::isnan(v)) return Json("nan");
  if (std::isinf(v)) return Json(v > 0 ? "inf" : "-inf");
  return Json(v);
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::Object) type_error("object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::Object) type_error("object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("Json: missing key '" + key + "'");
  }
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::Object) type_error("object");
  return members_;
}

Json& Json::push_back(Json value) {
  if (type_ != Type::Array) type_error("array");
  elements_.push_back(std::move(value));
  return *this;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::Array) type_error("array");
  if (index >= elements_.size()) {
    throw std::runtime_error("Json: array index " + std::to_string(index) +
                             " out of range");
  }
  return elements_[index];
}

const std::vector<Json>& Json::elements() const {
  if (type_ != Type::Array) type_error("array");
  return elements_;
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return elements_.size();
  if (type_ == Type::Object) return members_.size();
  type_error("array or object");
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_error("bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) type_error("number");
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_error("string");
  return string_;
}

double Json::to_double() const {
  if (type_ == Type::Number) return number_;
  if (type_ == Type::String) {
    if (string_ == "inf") return HUGE_VAL;
    if (string_ == "-inf") return -HUGE_VAL;
    if (string_ == "nan") return std::nan("");
  }
  type_error("number or non-finite flag");
}

std::size_t Json::as_size() const {
  const double v = as_number();
  if (v < 0.0 || v != std::floor(v) || v > 9.007199254740992e15) {
    throw std::runtime_error("Json: " + encode_number(v) +
                             " is not a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

std::uint64_t Json::as_u64() const {
  return static_cast<std::uint64_t>(as_size());
}

void Json::dump_to(std::string& out, int depth) const {
  const bool compact = depth < 0;
  const auto indent = [&](int d) {
    if (!compact) out.append(2 * static_cast<std::size_t>(d), ' ');
  };
  const auto newline = [&] {
    if (!compact) out += '\n';
  };
  const int child = compact ? depth : depth + 1;
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: out += encode_number(number_); break;
    case Type::String: encode_string(out, string_); break;
    case Type::Array:
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      newline();
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        indent(child);
        elements_[i].dump_to(out, child);
        if (i + 1 < elements_.size()) out += ',';
        newline();
      }
      indent(depth);
      out += ']';
      break;
    case Type::Object:
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      newline();
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent(child);
        encode_string(out, members_[i].first);
        out += compact ? ":" : ": ";
        members_[i].second.dump_to(out, child);
        if (i + 1 < members_.size()) out += ',';
        newline();
      }
      indent(depth);
      out += '}';
      break;
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

std::string Json::dump_compact() const {
  std::string out;
  dump_to(out, -1);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

void Json::type_error(const char* want) const {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw std::runtime_error(std::string("Json: expected ") + want +
                           ", have " + kNames[static_cast<int>(type_)]);
}

void write_json_file(const std::string& path, const Json& value) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_json_file: cannot open " + path);
  }
  out << value.dump();
  if (!out) {
    throw std::runtime_error("write_json_file: write failed for " + path);
  }
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_json_file: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

}  // namespace midas::util
