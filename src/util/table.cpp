#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace midas::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, v);
  return buf;
}

std::string Table::fix(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace midas::util
