// Aligned ASCII table printer.  The figure benches use this to print the
// same rows/series the paper's figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace midas::util {

/// Column-aligned plain-text table.  Cells are strings; numeric helpers
/// are provided for consistent scientific formatting (the paper reports
/// MTTSF/cost in the 1e5..1e7 range, so %.*e reads best).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Scientific notation with `digits` significand digits (default 3,
  /// e.g. 4.521e+06) — matches the paper's axis labelling.
  [[nodiscard]] static std::string sci(double v, int digits = 3);
  /// Fixed-point with `digits` decimals.
  [[nodiscard]] static std::string fix(double v, int digits = 2);

  /// Renders with a rule under the header, columns padded to widest cell.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace midas::util
