#include "util/csv.h"

#include <charconv>
#include <stdexcept>

namespace midas::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

void CsvWriter::write_cell(std::string_view cell, bool first) {
  if (!first) out_ << ',';
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) {
    out_ << cell;
    return;
  }
  out_ << '"';
  for (char c : cell) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

void CsvWriter::row(std::initializer_list<std::string_view> cells) {
  bool first = true;
  for (auto c : cells) {
    write_cell(c, first);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& c : cells) {
    write_cell(c, first);
    first = false;
  }
  out_ << '\n';
}

std::string CsvWriter::num(double v) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 12);
  if (ec != std::errc{}) return "nan";
  return std::string(buf, end);
}

}  // namespace midas::util
