#include "util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace midas::util {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int poll_timeout_ms(double timeout_s) {
  if (timeout_s < 0.0) return -1;
  const double ms = timeout_s * 1000.0;
  return ms > 2.0e9 ? 2000000000 : static_cast<int>(ms);
}

/// Numeric IPv4 only: a typo'd address must fail fast with its text,
/// not hang in a resolver.
sockaddr_in ipv4_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("'" + host +
                             "' is not an IPv4 dotted-quad address");
  }
  return addr;
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpStream TcpStream::connect_loopback(std::uint16_t port, double timeout_s) {
  return connect_to("127.0.0.1", port, timeout_s);
}

TcpStream TcpStream::connect_to(const std::string& host, std::uint16_t port,
                                double timeout_s) {
  const sockaddr_in addr = ipv4_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  TcpStream stream(fd);

  // Non-blocking connect so the timeout is honoured even if the peer
  // is unresponsive.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) fail("connect");
  if (rc != 0) {
    pollfd p{fd, POLLOUT, 0};
    rc = ::poll(&p, 1, poll_timeout_ms(timeout_s));
    if (rc < 0) fail("poll");
    if (rc == 0) {
      throw std::runtime_error("connect: timed out after " +
                               std::to_string(timeout_s) + " s");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      fail("getsockopt");
    }
    if (err != 0) {
      errno = err;
      fail("connect");
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return stream;
}

long TcpStream::read_some(char* out, std::size_t capacity,
                          double timeout_s) {
  if (fd_ < 0) throw std::runtime_error("read_some: stream is closed");
  pollfd p{fd_, POLLIN, 0};
  const int rc = ::poll(&p, 1, poll_timeout_ms(timeout_s));
  if (rc < 0) {
    if (errno == EINTR) return -1;
    fail("poll");
  }
  if (rc == 0) return -1;
  const ssize_t n = ::recv(fd_, out, capacity, 0);
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN) return -1;
    // A peer that died abruptly (crashed worker) is an orderly end of
    // conversation for our purposes, not an OS failure.
    if (errno == ECONNRESET) return 0;
    fail("recv");
  }
  return n;
}

void TcpStream::write_all(std::string_view bytes) {
  if (fd_ < 0) throw std::runtime_error("write_all: stream is closed");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void TcpStream::close() noexcept {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpStream::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

TcpListener TcpListener::bind_loopback(std::uint16_t port) {
  return bind_to("127.0.0.1", port);
}

TcpListener TcpListener::bind_to(const std::string& address,
                                 std::uint16_t port) {
  sockaddr_in addr = ipv4_addr(address, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  TcpListener listener;
  listener.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    fail("bind " + address + ":" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail("getsockname");
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

TcpStream TcpListener::accept(double timeout_s) {
  if (fd_ < 0) throw std::runtime_error("accept: listener is closed");
  pollfd p{fd_, POLLIN, 0};
  const int rc = ::poll(&p, 1, poll_timeout_ms(timeout_s));
  if (rc < 0) {
    if (errno == EINTR) return TcpStream();
    fail("poll");
  }
  if (rc == 0) return TcpStream();
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return TcpStream();
    fail("accept");
  }
  const int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(conn);
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace midas::util
