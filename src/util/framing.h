// Newline-delimited JSON frame codec — the wire format of the fleet
// runtime (svc/).  One frame is one compact JSON document followed by
// '\n'; because the JSON encoder escapes every control character, the
// document itself never contains a raw newline, so framing is a plain
// line split.
//
// The decoder is defensive by construction: it is fed arbitrary byte
// chunks (frames split across reads, several frames per read,
// interleaved with blank keep-alive lines) and every malformed input
// maps to a TYPED FrameError — oversized frames, truncated frames cut
// off by a peer crash, non-UTF-8 bytes, and syntactically invalid JSON
// all throw instead of hanging a reader or yielding a partial parse.
// A FrameBuffer never blocks and never allocates beyond its configured
// frame cap, so a misbehaving peer cannot wedge or balloon the process.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/json.h"

namespace midas::util {

enum class FrameErrorKind {
  Oversized,  ///< frame exceeds the configured byte cap
  Truncated,  ///< stream ended mid-frame (no terminating newline)
  BadUtf8,    ///< frame bytes are not valid UTF-8
  BadJson,    ///< frame is not a single valid JSON document
};

[[nodiscard]] const char* to_string(FrameErrorKind kind);

class FrameError : public std::runtime_error {
 public:
  FrameError(FrameErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}
  [[nodiscard]] FrameErrorKind kind() const noexcept { return kind_; }

 private:
  FrameErrorKind kind_;
};

/// `frame` as one wire frame: compact single-line JSON + '\n'.
[[nodiscard]] std::string encode_frame(const Json& frame);

/// True iff `bytes` is well-formed UTF-8 (rejects overlong encodings,
/// surrogates, and code points above U+10FFFF).
[[nodiscard]] bool validate_utf8(std::string_view bytes);

/// Incremental frame decoder over an untrusted byte stream.
///
///   FrameBuffer buf;
///   buf.feed(bytes_from_socket);            // any chunking
///   while (auto frame = buf.next()) { ... } // complete frames, in order
///   buf.finish();                           // at EOF: rejects residue
///
/// feed() throws FrameError{Oversized} as soon as the unterminated
/// prefix exceeds `max_frame_bytes` — before buffering more.  next()
/// throws FrameError{BadUtf8 | BadJson} for a complete-but-malformed
/// line (the line is consumed, so a caller choosing to continue is not
/// stuck on it).  finish() throws FrameError{Truncated} when the stream
/// ends with a partial frame buffered.  Blank lines are ignored.
class FrameBuffer {
 public:
  explicit FrameBuffer(std::size_t max_frame_bytes = std::size_t{1} << 24)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::string_view bytes);
  [[nodiscard]] std::optional<Json> next();
  void finish() const;

  /// Bytes of an incomplete frame currently buffered.
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buf_.size() - consumed_;
  }
  [[nodiscard]] bool has_partial() const noexcept {
    return buffered_bytes() > 0;
  }

 private:
  std::size_t max_frame_bytes_;
  std::string buf_;
  std::size_t consumed_ = 0;  // prefix of buf_ already handed out
};

}  // namespace midas::util
