// Monotonic scratch arena for the batched analytic kernels.
//
// The batched solve path (spn::AbsorbingAnalyzer::solve_batch and the
// point-major reward pass) needs a handful of [state][point] and
// [block][point] scratch matrices per batch.  Allocating them from the
// heap per batch re-creates exactly the churn the batch path exists to
// remove (the scalar solver performed ~6 vector allocations per SCC
// block), so scratch comes from this arena instead: allocation is a
// pointer bump, and reset() recycles the whole region in O(1) for the
// next batch.
//
// Growth is chunked: when the current chunk is exhausted a larger one
// is appended, and the NEXT reset() coalesces all chunks into a single
// block of the total capacity — so a long-lived worker converges to one
// allocation that every subsequent batch reuses, whatever batch shape
// arrives.  Spans handed out are valid until the next reset().
//
// Not thread-safe; use one arena per worker thread
// (thread_scratch_arena()).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace midas::util {

class Arena {
 public:
  /// `initial_bytes` pre-reserves the first chunk (0 = allocate lazily).
  explicit Arena(std::size_t initial_bytes = 0);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw allocation, aligned to `alignment` (a power of two).  Never
  /// returns nullptr; grows the arena as needed.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t alignment);

  /// Typed scratch span of `count` elements, uninitialised.  T must be
  /// trivially destructible — the arena never runs destructors.
  template <typename T>
  [[nodiscard]] std::span<T> make_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena spans are never destroyed element-wise");
    return {static_cast<T*>(allocate(count * sizeof(T), alignof(T))), count};
  }

  /// Typed scratch span, every element set to `fill`.
  template <typename T>
  [[nodiscard]] std::span<T> make_span(std::size_t count, T fill) {
    auto s = make_span<T>(count);
    for (auto& v : s) v = fill;
    return s;
  }

  /// Recycles every allocation (O(1)).  If growth left multiple chunks,
  /// they are coalesced into one block of the combined capacity, so a
  /// steady-state workload allocates from a single region.
  void reset();

  /// Bytes handed out since the last reset().
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
  /// Total capacity across chunks.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Backing blocks currently held (1 after a post-growth reset()).
  [[nodiscard]] std::size_t num_chunks() const noexcept {
    return chunks_.size();
  }
  /// Largest bytes_used() ever observed (sizing diagnostics).
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;    // chunk currently bump-allocated from
  std::size_t offset_ = 0;    // bump offset within the active chunk
  std::size_t used_ = 0;      // bytes handed out since reset()
  std::size_t capacity_ = 0;  // Σ chunk sizes
  std::size_t high_water_ = 0;
};

/// The per-thread scratch pool the sweep engine resets once per batch.
/// Lives for the thread's lifetime, so capacity is reused across
/// batches and across evaluate() calls.
[[nodiscard]] Arena& thread_scratch_arena();

}  // namespace midas::util
