#include "util/arena.h"

#include <algorithm>
#include <cstdint>

namespace midas::util {

namespace {
constexpr std::size_t kMinChunk = 1 << 16;  // 64 KiB
}

Arena::Arena(std::size_t initial_bytes) {
  if (initial_bytes > 0) grow(initial_bytes);
}

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
  if (bytes == 0) bytes = 1;  // distinct non-null pointers for empty spans
  for (;;) {
    while (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
      const std::size_t aligned =
          (base + offset_ + (alignment - 1)) & ~(alignment - 1);
      const std::size_t start = static_cast<std::size_t>(aligned - base);
      if (start + bytes <= c.size) {
        used_ += (start - offset_) + bytes;  // alignment slack + payload
        offset_ = start + bytes;
        high_water_ = std::max(high_water_, used_);
        return c.data.get() + start;
      }
      ++active_;
      offset_ = 0;
    }
    grow(bytes + alignment);
  }
}

void Arena::grow(std::size_t min_bytes) {
  const std::size_t size =
      std::max({min_bytes, kMinChunk, capacity_ * 2});
  chunks_.push_back({std::make_unique<std::byte[]>(size), size});
  capacity_ += size;
  active_ = chunks_.size() - 1;
  offset_ = 0;
}

void Arena::reset() {
  if (chunks_.size() > 1) {
    // Coalesce: one block of the combined capacity replaces the chain,
    // so the next batch bump-allocates from a single region.
    const std::size_t total = capacity_;
    chunks_.clear();
    capacity_ = 0;
    grow(total);
  }
  active_ = 0;
  offset_ = 0;
  used_ = 0;
}

Arena& thread_scratch_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace midas::util
