// Minimal IPv4 TCP wrapper for the fleet runtime (svc/): a listener
// bound to a dotted-quad address and a blocking byte stream with
// poll() timeouts.  The DEFAULT everywhere is 127.0.0.1 — the
// coordinator/worker protocol is a local-machine fleet unless the
// operator explicitly binds elsewhere (fleet tools: --bind / --host) —
// and the wrapper is deliberately tiny: no buffering
// (util::FrameBuffer owns that), no readiness loop (each Connection
// has its own reader thread), no name resolution (numeric addresses
// only, so a bad address fails fast instead of blocking in a
// resolver).
//
// All calls throw std::runtime_error (with errno text) on OS-level
// failure; orderly peer close is reported as a 0-byte read, not an
// error.  SIGPIPE is suppressed per-send (MSG_NOSIGNAL), so a worker
// crashing mid-frame surfaces as a send error in the coordinator
// instead of killing it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace midas::util {

/// Blocking loopback byte stream.  Movable, not copyable; closes on
/// destruction.
class TcpStream {
 public:
  TcpStream() = default;
  /// Adopts an already-connected socket fd (from TcpListener::accept).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();
  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connects to host:port (IPv4 dotted quad), waiting at most
  /// timeout_s.  Throws on a malformed address, refusal or timeout.
  [[nodiscard]] static TcpStream connect_to(const std::string& host,
                                            std::uint16_t port,
                                            double timeout_s);

  /// connect_to("127.0.0.1", ...).
  [[nodiscard]] static TcpStream connect_loopback(std::uint16_t port,
                                                  double timeout_s);

  /// Reads at most `capacity` bytes into `out`.  Returns the byte
  /// count, 0 on orderly peer close, or -1 when `timeout_s` elapses
  /// with nothing to read.  Throws on OS error.
  [[nodiscard]] long read_some(char* out, std::size_t capacity,
                               double timeout_s);

  /// Writes the whole buffer (looping over partial sends).  Throws on
  /// OS error or when the peer has gone away.
  void write_all(std::string_view bytes);

  void close() noexcept;

  /// ::shutdown(SHUT_RDWR) without releasing the fd: wakes a reader
  /// blocked in read_some() on another thread while keeping the fd
  /// number reserved (no reuse race) until close()/destruction.
  void shutdown() noexcept;

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// IPv4 listener (loopback by default).  Port 0 binds an ephemeral
/// port; port() reports the one actually bound.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds address:port.  `address` is an IPv4 dotted quad — e.g.
  /// "0.0.0.0" to accept remote workers; throws on a malformed address.
  [[nodiscard]] static TcpListener bind_to(const std::string& address,
                                           std::uint16_t port);

  /// bind_to("127.0.0.1", port).
  [[nodiscard]] static TcpListener bind_loopback(std::uint16_t port);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accepts one connection, waiting at most timeout_s.  Returns an
  /// unconnected stream (is_open() == false) on timeout.  Throws on OS
  /// error or when the listener is closed.
  [[nodiscard]] TcpStream accept(double timeout_s);

  void close() noexcept;
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace midas::util
