// Wall-clock stopwatch for coarse timing of solver phases in benches.
#pragma once

#include <chrono>

namespace midas::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const;

  void reset();

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace midas::util
