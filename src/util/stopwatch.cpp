#include "util/stopwatch.h"

namespace midas::util {

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(clock::now() - start_).count();
}

void Stopwatch::reset() { start_ = clock::now(); }

}  // namespace midas::util
