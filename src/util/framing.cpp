#include "util/framing.h"

#include <algorithm>

namespace midas::util {

const char* to_string(FrameErrorKind kind) {
  switch (kind) {
    case FrameErrorKind::Oversized: return "oversized";
    case FrameErrorKind::Truncated: return "truncated";
    case FrameErrorKind::BadUtf8: return "bad-utf8";
    case FrameErrorKind::BadJson: return "bad-json";
  }
  return "unknown";
}

std::string encode_frame(const Json& frame) {
  std::string out = frame.dump_compact();
  out += '\n';
  return out;
}

bool validate_utf8(std::string_view bytes) {
  std::size_t i = 0;
  const std::size_t n = bytes.size();
  while (i < n) {
    const unsigned char b0 = static_cast<unsigned char>(bytes[i]);
    std::size_t len;
    unsigned min_code;
    unsigned code;
    if (b0 < 0x80) {
      ++i;
      continue;
    } else if ((b0 & 0xE0) == 0xC0) {
      len = 2;
      min_code = 0x80;
      code = b0 & 0x1Fu;
    } else if ((b0 & 0xF0) == 0xE0) {
      len = 3;
      min_code = 0x800;
      code = b0 & 0x0Fu;
    } else if ((b0 & 0xF8) == 0xF0) {
      len = 4;
      min_code = 0x10000;
      code = b0 & 0x07u;
    } else {
      return false;  // continuation byte or 0xFE/0xFF lead
    }
    if (i + len > n) return false;
    for (std::size_t k = 1; k < len; ++k) {
      const unsigned char bk = static_cast<unsigned char>(bytes[i + k]);
      if ((bk & 0xC0) != 0x80) return false;
      code = (code << 6) | (bk & 0x3Fu);
    }
    if (code < min_code) return false;               // overlong encoding
    if (code >= 0xD800 && code <= 0xDFFF) return false;  // surrogate
    if (code > 0x10FFFF) return false;
    i += len;
  }
  return true;
}

void FrameBuffer::feed(std::string_view bytes) {
  // Drop the consumed prefix before growing, so long sessions do not
  // accumulate dead bytes.
  if (consumed_ > 0) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(bytes);
  // The cap bounds a single frame, terminated or not: an unterminated
  // tail beyond it can never become a valid frame, so fail now instead
  // of buffering a runaway peer.  (Complete oversized lines are caught
  // in next().)
  const std::size_t last_newline = buf_.rfind('\n');
  const std::size_t tail =
      last_newline == std::string::npos ? buf_.size()
                                        : buf_.size() - (last_newline + 1);
  if (tail > max_frame_bytes_) {
    throw FrameError(FrameErrorKind::Oversized,
                     "frame exceeds " + std::to_string(max_frame_bytes_) +
                         " bytes before its terminating newline");
  }
}

std::optional<Json> FrameBuffer::next() {
  while (true) {
    const std::size_t newline = buf_.find('\n', consumed_);
    if (newline == std::string::npos) return std::nullopt;
    std::string_view line(buf_.data() + consumed_, newline - consumed_);
    consumed_ = newline + 1;  // the line is consumed even when malformed
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;  // blank keep-alive line
    if (line.size() > max_frame_bytes_) {
      throw FrameError(FrameErrorKind::Oversized,
                       "frame of " + std::to_string(line.size()) +
                           " bytes exceeds the " +
                           std::to_string(max_frame_bytes_) + "-byte cap");
    }
    if (!validate_utf8(line)) {
      throw FrameError(FrameErrorKind::BadUtf8,
                       "frame contains invalid UTF-8");
    }
    try {
      return Json::parse(line);
    } catch (const std::exception& e) {
      throw FrameError(FrameErrorKind::BadJson,
                       std::string("frame is not valid JSON: ") + e.what());
    }
  }
}

void FrameBuffer::finish() const {
  if (has_partial()) {
    throw FrameError(FrameErrorKind::Truncated,
                     "stream ended mid-frame (" +
                         std::to_string(buffered_bytes()) +
                         " bytes without a terminating newline)");
  }
}

}  // namespace midas::util
