#include "crypto/gdh.h"

#include <algorithm>
#include <stdexcept>

namespace midas::crypto {

GdhSession::GdhSession(DhGroup group, std::uint64_t seed)
    : group_(group), rng_(seed) {}

std::uint64_t GdhSession::fresh_secret() {
  std::uniform_int_distribution<std::uint64_t> dist(2, group_.q - 2);
  return dist(rng_);
}

void GdhSession::establish(const std::vector<std::uint32_t>& ids) {
  members_.clear();
  for (auto id : ids) {
    if (has_member(id)) {
      throw std::invalid_argument("GdhSession::establish: duplicate id");
    }
    GdhMember m;
    m.id = id;
    m.secret = fresh_secret();
    members_.push_back(m);
  }
  rekey_full();
}

void GdhSession::rekey_full() {
  const std::size_t n = members_.size();
  key_ = 0;
  if (n == 0) return;
  if (n == 1) {
    auto& m = members_[0];
    m.partial = group_.g;
    m.key = pow_mod(group_.g, m.secret, group_.p);
    key_ = m.key;
    // Degenerate single-member "agreement": no messages exchanged.
    return;
  }

  // Upflow: stage i carries i partial values + 1 cardinal value.
  // partials[k] = g^(Π_{j<=i, j != k} x_j) for members processed so far.
  std::vector<std::uint64_t> partials;  // indexed like members_[0..i-1]
  std::uint64_t cardinal = group_.g;    // g^(x_0···x_{i-1})
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = members_[i].secret;
    // Existing partials absorb x_i; the previous cardinal becomes the
    // partial that omits x_i.
    for (auto& v : partials) v = pow_mod(v, x, group_.p);
    partials.push_back(cardinal);
    cardinal = pow_mod(cardinal, x, group_.p);
    if (i + 1 < n) {
      // M_i → M_{i+1}: message carrying (i+1) partials + cardinal.
      traffic_.add(1, partials.size() + 1);
    }
  }

  // Controller (last member) broadcast: n-1 partial values (its own is
  // kept local), one broadcast message.
  traffic_.add(1, n - 1);

  for (std::size_t i = 0; i < n; ++i) {
    members_[i].partial = partials[i];
    members_[i].key = pow_mod(partials[i], members_[i].secret, group_.p);
  }
  key_ = members_[0].key;
}

void GdhSession::join(std::uint32_t id) {
  if (has_member(id)) {
    throw std::invalid_argument("GdhSession::join: member already present");
  }
  GdhMember m;
  m.id = id;
  m.secret = fresh_secret();
  members_.push_back(m);
  // Backward secrecy: the controller refreshes its contribution so the
  // joining member cannot reconstruct previous keys from observed
  // ciphertext.  (New controller = the joining member in GDH.2; the
  // previous controller refreshes before forwarding the upflow.)
  if (members_.size() >= 2) {
    members_[members_.size() - 2].secret = fresh_secret();
  }
  rekey_full();
}

void GdhSession::leave(std::uint32_t id) {
  const auto it =
      std::find_if(members_.begin(), members_.end(),
                   [id](const GdhMember& m) { return m.id == id; });
  if (it == members_.end()) {
    throw std::invalid_argument("GdhSession::leave: no such member");
  }
  members_.erase(it);
  // Forward secrecy: controller refreshes its secret so the departed
  // member's knowledge (its partial + old secret) is useless.
  if (!members_.empty()) {
    members_.back().secret = fresh_secret();
  }
  rekey_full();
}

void GdhSession::merge(const std::vector<std::uint32_t>& other_ids) {
  for (auto id : other_ids) {
    if (has_member(id)) {
      throw std::invalid_argument("GdhSession::merge: duplicate id");
    }
    GdhMember m;
    m.id = id;
    m.secret = fresh_secret();
    members_.push_back(m);
  }
  if (!members_.empty()) {
    members_.back().secret = fresh_secret();
  }
  rekey_full();
}

GdhSession GdhSession::partition(const std::vector<std::uint32_t>& ids) {
  GdhSession other(group_, rng_());
  for (auto id : ids) {
    const auto it =
        std::find_if(members_.begin(), members_.end(),
                     [id](const GdhMember& m) { return m.id == id; });
    if (it == members_.end()) {
      throw std::invalid_argument("GdhSession::partition: no such member");
    }
    GdhMember moved = *it;
    moved.secret = other.fresh_secret();  // fresh contribution in new group
    other.members_.push_back(moved);
    members_.erase(it);
  }
  if (!members_.empty()) {
    members_.back().secret = fresh_secret();
  }
  rekey_full();
  other.rekey_full();
  return other;
}

std::vector<std::uint32_t> GdhSession::member_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(members_.size());
  for (const auto& m : members_) ids.push_back(m.id);
  return ids;
}

bool GdhSession::has_member(std::uint32_t id) const {
  return std::any_of(members_.begin(), members_.end(),
                     [id](const GdhMember& m) { return m.id == id; });
}

std::uint64_t GdhSession::member_key(std::uint32_t id) const {
  for (const auto& m : members_) {
    if (m.id == id) return m.key;
  }
  throw std::invalid_argument("GdhSession::member_key: no such member");
}

bool GdhSession::keys_agree() const {
  if (members_.empty()) return true;
  const std::uint64_t k = members_[0].key;
  return std::all_of(members_.begin(), members_.end(),
                     [k](const GdhMember& m) { return m.key == k; });
}

}  // namespace midas::crypto
