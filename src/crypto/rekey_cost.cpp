#include "crypto/rekey_cost.h"

#include <algorithm>

namespace midas::crypto {

namespace {

RekeyCost from_units(double units, const RekeyCostParams& p) {
  RekeyCost c;
  c.hop_bits = units * p.key_element_bits * std::max(p.mean_hops, 1.0);
  c.seconds = c.hop_bits / std::max(p.bandwidth_bps, 1.0);
  return c;
}

}  // namespace

RekeyCost full_agreement_cost(std::size_t n, const RekeyCostParams& p) {
  if (n <= 1) return {};
  // Upflow stage i carries (i+1) elements, i = 1..n-1: Σ = (n²+n-2)/2.
  const double nn = static_cast<double>(n);
  const double upflow = (nn * nn + nn - 2.0) / 2.0;
  const double broadcast = nn - 1.0;
  return from_units(upflow + broadcast, p);
}

RekeyCost join_cost(std::size_t n_after, const RekeyCostParams& p) {
  if (n_after <= 1) return {};
  // One upflow extension message (n_after elements) + broadcast of
  // n_after − 1 partials.
  const double nn = static_cast<double>(n_after);
  return from_units(nn + (nn - 1.0), p);
}

RekeyCost leave_cost(std::size_t n_after, const RekeyCostParams& p) {
  if (n_after == 0) return {};
  // Controller refresh + broadcast of n_after partials.
  return from_units(static_cast<double>(n_after), p);
}

RekeyCost regroup_cost(std::size_t n_total, const RekeyCostParams& p) {
  // Conservative: equivalent to a join-style broadcast on each side plus
  // one cross-side exchange; bounded by 2n elements.
  return from_units(2.0 * static_cast<double>(n_total), p);
}

}  // namespace midas::crypto
