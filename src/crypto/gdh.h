// GDH.2 contributory group key agreement (Steiner, Tsudik, Waidner,
// CCS'96) — the paper's distributed rekeying substrate for MANET GCSs
// with no centralised key server.
//
// Protocol shape (n members M1..Mn, generator g, member secrets x_i):
//   * Upflow stage i (M_i → M_{i+1}): the set of "partial" values
//     { g^(Π x_j, j∈S) : S = {1..i} \ {k} for each k ≤ i }  plus the
//     cardinal value g^(x_1···x_i).
//   * M_n raises every partial value by x_n and broadcasts; member k
//     recovers the group key K = g^(x_1···x_n) by raising its own
//     partial value to x_k.
// Membership events follow the GDH member-serving-as-controller idiom:
// the controller (highest-index member) refreshes its secret on every
// leave/eviction so evicted members cannot compute the new key (forward
// secrecy) and new members cannot compute old keys (backward secrecy).
//
// The class tracks protocol traffic (messages and "units", one unit =
// one group element) so the GCS cost model can charge realistic rekey
// costs per event type.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "crypto/modmath.h"

namespace midas::crypto {

struct TrafficCounter {
  std::uint64_t messages = 0;
  std::uint64_t units = 0;  // group elements carried across all messages

  void add(std::uint64_t msgs, std::uint64_t elems) {
    messages += msgs;
    units += elems;
  }
  void reset() { *this = TrafficCounter{}; }
};

/// One member's protocol state.
struct GdhMember {
  std::uint32_t id = 0;      // stable external identity
  std::uint64_t secret = 0;  // x_i (exponent in the order-q subgroup)
  std::uint64_t partial = 0; // g^(Π x_j, j != i) after the broadcast
  std::uint64_t key = 0;     // computed group key
};

/// A GDH.2 session for one group.  Deterministic under a fixed seed.
class GdhSession {
 public:
  GdhSession(DhGroup group, std::uint64_t seed);

  /// Runs full initial key agreement over `ids` (order = upflow chain).
  void establish(const std::vector<std::uint32_t>& ids);

  /// Adds a member: controller extends the upflow and re-broadcasts.
  void join(std::uint32_t id);

  /// Removes a member (voluntary leave or IDS eviction).  The controller
  /// refreshes its secret and re-broadcasts, which denies the departed
  /// member the new key.
  void leave(std::uint32_t id);

  /// Merges another member list into this session (group merge event).
  void merge(const std::vector<std::uint32_t>& other_ids);

  /// Splits the listed members out; they form their own session (group
  /// partition).  Returns the new session for the split members.
  [[nodiscard]] GdhSession partition(const std::vector<std::uint32_t>& ids);

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] std::vector<std::uint32_t> member_ids() const;
  [[nodiscard]] bool has_member(std::uint32_t id) const;

  /// The agreed group key (0 before establish()).
  [[nodiscard]] std::uint64_t group_key() const noexcept { return key_; }
  /// Key as computed by a specific member — agreement check.
  [[nodiscard]] std::uint64_t member_key(std::uint32_t id) const;
  /// True when every member computed the same key.
  [[nodiscard]] bool keys_agree() const;

  [[nodiscard]] const TrafficCounter& traffic() const noexcept {
    return traffic_;
  }
  void reset_traffic() { traffic_.reset(); }

  [[nodiscard]] const DhGroup& group() const noexcept { return group_; }

 private:
  std::uint64_t fresh_secret();
  /// Re-runs the upflow/broadcast over the current member set and
  /// recomputes everyone's key; charges protocol traffic.
  void rekey_full();

  DhGroup group_;
  std::vector<GdhMember> members_;
  std::uint64_t key_ = 0;
  std::mt19937_64 rng_;
  TrafficCounter traffic_;
};

}  // namespace midas::crypto
