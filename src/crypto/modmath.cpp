#include "crypto/modmath.h"

#include <stdexcept>

namespace midas::crypto {

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp,
                      std::uint64_t m) {
  if (m == 1) return 0;
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1u) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t small : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                              19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (n == small) return true;
    if (n % small == 0) return false;
  }
  // n-1 = d * 2^r with d odd.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1u) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = pow_mod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mul_mod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::uint64_t next_safe_prime(std::uint64_t start) {
  // Safe prime p: p prime and (p-1)/2 prime.  p ≡ 3 (mod 4) necessarily.
  std::uint64_t p = start | 1u;
  if (p % 4 != 3) p += (3 + 4 - (p % 4)) % 4;  // align to 3 (mod 4)
  for (; p >= start; p += 4) {
    if (p > (1ull << 62)) {
      throw std::runtime_error("next_safe_prime: search out of range");
    }
    if (is_prime(p) && is_prime((p - 1) / 2)) return p;
  }
  throw std::runtime_error("next_safe_prime: overflow");
}

DhGroup DhGroup::demo_group() {
  // 2^56 + 3031 is a safe prime (verified in tests); g = 4 = 2² is a
  // quadratic residue, hence generates the order-q subgroup.
  DhGroup grp;
  grp.p = (1ull << 56) + 3031;
  grp.q = (grp.p - 1) / 2;
  grp.g = 4;
  return grp;
}

DhGroup DhGroup::from_seed(std::uint64_t seed) {
  DhGroup grp;
  grp.p = next_safe_prime((seed | (1ull << 40)) % (1ull << 56));
  grp.q = (grp.p - 1) / 2;
  // Squares are subgroup members; find a square generating element != 1.
  for (std::uint64_t cand = 2;; ++cand) {
    const std::uint64_t g = mul_mod(cand, cand, grp.p);
    if (g != 1 && grp.is_subgroup_generator(g)) {
      grp.g = g;
      return grp;
    }
  }
}

bool DhGroup::is_subgroup_generator(std::uint64_t x) const {
  // Subgroup of prime order q: any element != 1 with x^q = 1 generates.
  return x != 1 && pow_mod(x, q, p) == 1;
}

}  // namespace midas::crypto
