// Modular arithmetic over 64-bit moduli (via unsigned __int128) with
// deterministic Miller–Rabin and safe-prime search.  This backs the GDH
// group-key-agreement substrate.  Demonstration-grade parameters: the
// protocol logic (who sends what, who can compute the key) is what the
// GCS model needs; 64-bit moduli keep the tests fast while preserving
// the algebra.
#pragma once

#include <cstdint>
#include <vector>

namespace midas::crypto {

/// (a * b) mod m without overflow.
[[nodiscard]] std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t m);

/// (base ^ exp) mod m by square-and-multiply.
[[nodiscard]] std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp,
                                    std::uint64_t m);

/// Deterministic Miller–Rabin, valid for all 64-bit integers (fixed
/// witness set {2,3,5,7,11,13,17,19,23,29,31,37}).
[[nodiscard]] bool is_prime(std::uint64_t n);

/// Smallest safe prime p >= start (p and (p-1)/2 both prime).
/// Throws if the search walks off the 63-bit range.
[[nodiscard]] std::uint64_t next_safe_prime(std::uint64_t start);

/// Diffie–Hellman group parameters: safe prime p and a generator g of
/// the order-q subgroup, q = (p-1)/2.
struct DhGroup {
  std::uint64_t p = 0;
  std::uint64_t q = 0;  // subgroup order
  std::uint64_t g = 0;

  /// Fixed demonstration group (56-bit safe prime); found once and
  /// verified by Miller–Rabin in the unit tests.
  [[nodiscard]] static DhGroup demo_group();

  /// Derives a group from a seed by searching for the next safe prime.
  [[nodiscard]] static DhGroup from_seed(std::uint64_t seed);

  /// True when x generates the order-q subgroup.
  [[nodiscard]] bool is_subgroup_generator(std::uint64_t x) const;
};

}  // namespace midas::crypto
