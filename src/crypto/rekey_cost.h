// Rekeying cost accounting: converts GDH protocol traffic into the
// hop-bits and wall-clock time (Tcm) the SPN cost model charges per
// membership event.  The per-event message/element counts follow the
// GDH.2 flows implemented in gdh.cpp; hop expansion and bandwidth come
// from the MANET substrate.
#pragma once

#include <cstddef>

namespace midas::crypto {

struct RekeyCostParams {
  double key_element_bits = 1024.0;  // wire size of one group element
  double mean_hops = 3.0;            // average path length (MANET stats)
  double bandwidth_bps = 1e6;        // paper: BW = 1 Mb/s
};

/// Cost of one rekey event, in hop-bits and seconds.
struct RekeyCost {
  double hop_bits = 0.0;
  double seconds = 0.0;  // Tcm: serialised transfer time over BW
};

/// Full (re-)establishment over a group of n members: n−1 upflow
/// messages of growing size plus the controller broadcast.
[[nodiscard]] RekeyCost full_agreement_cost(std::size_t n,
                                            const RekeyCostParams& p);

/// Join: upflow extension + broadcast of n partials (group size n after
/// the join).
[[nodiscard]] RekeyCost join_cost(std::size_t n_after,
                                  const RekeyCostParams& p);

/// Leave/eviction: controller refresh + broadcast over remaining n.
[[nodiscard]] RekeyCost leave_cost(std::size_t n_after,
                                   const RekeyCostParams& p);

/// Partition/merge: both sides re-broadcast (upper-bounded by a fresh
/// agreement of the larger side).
[[nodiscard]] RekeyCost regroup_cost(std::size_t n_total,
                                     const RekeyCostParams& p);

}  // namespace midas::crypto
