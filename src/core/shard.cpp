#include "core/shard.h"

#include <algorithm>
#include <stdexcept>

#include "core/sweep_engine.h"
#include "util/json.h"

namespace midas::core {

namespace {

constexpr const char* kFormat = "midas-shard-v1";

util::Json range_to_json(const ShardRange& r) {
  auto j = util::Json::object();
  j.set("begin", util::Json(static_cast<double>(r.begin)));
  j.set("end", util::Json(static_cast<double>(r.end)));
  return j;
}

ShardRange range_from_json(const util::Json& j) {
  return {j.at("begin").as_size(), j.at("end").as_size()};
}

util::Json eval_to_json(const Evaluation& e) {
  auto j = util::Json::object();
  j.set("mttsf", util::Json::number(e.mttsf));
  j.set("ctotal", util::Json::number(e.ctotal));
  j.set("cost_group_comm", util::Json::number(e.cost_rates.group_comm));
  j.set("cost_status", util::Json::number(e.cost_rates.status));
  j.set("cost_rekey", util::Json::number(e.cost_rates.rekey));
  j.set("cost_ids", util::Json::number(e.cost_rates.ids));
  j.set("cost_beacon", util::Json::number(e.cost_rates.beacon));
  j.set("cost_partition_merge",
        util::Json::number(e.cost_rates.partition_merge));
  j.set("eviction_cost_rate", util::Json::number(e.eviction_cost_rate));
  j.set("p_failure_c1", util::Json::number(e.p_failure_c1));
  j.set("p_failure_c2", util::Json::number(e.p_failure_c2));
  j.set("num_states", util::Json(static_cast<double>(e.num_states)));
  j.set("solver_blocks", util::Json(static_cast<double>(e.solver_blocks)));
  return j;
}

Evaluation eval_from_json(const util::Json& j) {
  Evaluation e;
  e.mttsf = j.at("mttsf").to_double();
  e.ctotal = j.at("ctotal").to_double();
  e.cost_rates.group_comm = j.at("cost_group_comm").to_double();
  e.cost_rates.status = j.at("cost_status").to_double();
  e.cost_rates.rekey = j.at("cost_rekey").to_double();
  e.cost_rates.ids = j.at("cost_ids").to_double();
  e.cost_rates.beacon = j.at("cost_beacon").to_double();
  e.cost_rates.partition_merge = j.at("cost_partition_merge").to_double();
  e.eviction_cost_rate = j.at("eviction_cost_rate").to_double();
  e.p_failure_c1 = j.at("p_failure_c1").to_double();
  e.p_failure_c2 = j.at("p_failure_c2").to_double();
  e.num_states = j.at("num_states").as_size();
  e.solver_blocks = j.at("solver_blocks").as_size();
  return e;
}

util::Json welford_to_json(const sim::WelfordState& s) {
  auto j = util::Json::object();
  j.set("n", util::Json(static_cast<double>(s.n)));
  j.set("mean", util::Json::number(s.mean));
  j.set("m2", util::Json::number(s.m2));
  return j;
}

sim::WelfordState welford_from_json(const util::Json& j) {
  return {j.at("n").as_size(), j.at("mean").to_double(),
          j.at("m2").to_double()};
}

util::Json mc_point_to_json(const sim::McPointResult& r) {
  auto j = util::Json::object();
  // Raw accumulator states and counts only: the reader re-derives the
  // Summary fields, which is what makes cross-process results bitwise.
  j.set("ttsf", welford_to_json(r.ttsf_state));
  j.set("cost_rate", welford_to_json(r.cost_rate_state));
  j.set("replications", util::Json(static_cast<double>(r.replications)));
  j.set("failures_c1", util::Json(static_cast<double>(r.failures_c1)));
  j.set("converged", util::Json(r.converged));
  j.set("keys_always_agreed", util::Json(r.keys_always_agreed));
  j.set("timeouts", util::Json(static_cast<double>(r.timeouts)));
  auto survival = util::Json::array();
  for (const std::size_t count : r.survival_counts) {
    survival.push_back(util::Json(static_cast<double>(count)));
  }
  j.set("survival_counts", std::move(survival));
  return j;
}

sim::McPointResult mc_point_from_json(const util::Json& j) {
  sim::McPointResult r;
  r.ttsf_state = welford_from_json(j.at("ttsf"));
  r.cost_rate_state = welford_from_json(j.at("cost_rate"));
  r.ttsf = sim::Welford::from_state(r.ttsf_state).summary();
  r.cost_rate = sim::Welford::from_state(r.cost_rate_state).summary();
  r.replications = j.at("replications").as_size();
  r.failures_c1 = j.at("failures_c1").as_size();
  r.p_failure_c1 = r.replications > 0
                       ? static_cast<double>(r.failures_c1) /
                             static_cast<double>(r.replications)
                       : 0.0;
  r.converged = j.at("converged").as_bool();
  r.keys_always_agreed = j.at("keys_always_agreed").as_bool();
  r.timeouts = j.at("timeouts").as_size();
  for (const auto& count : j.at("survival_counts").elements()) {
    r.survival_counts.push_back(count.as_size());
    r.survival.push_back(
        sim::binomial_summary(r.replications, r.survival_counts.back()));
  }
  return r;
}

util::Json stats_to_json(const sim::MonteCarloEngine::Stats& s) {
  auto j = util::Json::object();
  j.set("points", util::Json(static_cast<double>(s.points)));
  j.set("replications", util::Json(static_cast<double>(s.replications)));
  j.set("blocks", util::Json(static_cast<double>(s.blocks)));
  j.set("rounds", util::Json(static_cast<double>(s.rounds)));
  j.set("seconds", util::Json::number(s.seconds));
  return j;
}

sim::MonteCarloEngine::Stats stats_from_json(const util::Json& j) {
  sim::MonteCarloEngine::Stats s;
  s.points = j.at("points").as_size();
  s.replications = j.at("replications").as_size();
  s.blocks = j.at("blocks").as_size();
  s.rounds = j.at("rounds").as_size();
  s.seconds = j.at("seconds").to_double();
  return s;
}

}  // namespace

ShardPlan ShardPlan::contiguous(std::size_t num_points,
                                std::size_t num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardPlan: num_shards must be positive");
  }
  ShardPlan plan;
  plan.num_points_ = num_points;
  plan.ranges_.reserve(num_shards);
  const std::size_t base = num_points / num_shards;
  const std::size_t extra = num_points % num_shards;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t take = base + (s < extra ? 1 : 0);
    plan.ranges_.push_back({cursor, cursor + take});
    cursor += take;
  }
  return plan;
}

ShardPlan ShardPlan::by_structure(const GridSpec& spec, const Params& base,
                                  std::size_t num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardPlan: num_shards must be positive");
  }
  const std::size_t n = spec.num_points();

  // Row-major runs of equal structure_key: run r covers points
  // [run_begin[r], run_begin[r+1]).
  std::vector<std::size_t> run_begin;
  std::string prev_key;
  for (std::size_t i = 0; i < n; ++i) {
    std::string key = structure_key(spec.point(base, i));
    if (i == 0 || key != prev_key) run_begin.push_back(i);
    prev_key = std::move(key);
  }
  run_begin.push_back(n);
  const std::size_t runs = run_begin.size() - 1;

  ShardPlan plan;
  plan.num_points_ = n;
  plan.ranges_.reserve(num_shards);
  std::size_t run = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (run >= runs) {
      plan.ranges_.push_back({n, n});
      continue;
    }
    const std::size_t begin = run_begin[run];
    std::size_t end = begin;
    if (s + 1 == num_shards) {
      // Last shard absorbs every remaining run.
      run = runs;
      end = n;
    } else {
      // Greedy balance: grow toward an even share of the remaining
      // points, whole runs at a time (the run that crosses the target
      // is included, so progress is guaranteed).
      const std::size_t target =
          (n - begin + (num_shards - s) - 1) / (num_shards - s);
      while (run < runs && end - begin < target) {
        ++run;
        end = run_begin[run];
      }
    }
    plan.ranges_.push_back({begin, end});
  }
  return plan;
}

const ShardRange& ShardPlan::range(std::size_t shard) const {
  if (shard >= ranges_.size()) {
    throw std::out_of_range("ShardPlan: shard index " +
                            std::to_string(shard) + " out of range (" +
                            std::to_string(ranges_.size()) + " shards)");
  }
  return ranges_[shard];
}

void write_shard_json(const std::string& path, const ShardFile& file) {
  auto j = util::Json::object();
  j.set("format", util::Json(kFormat));
  j.set("plan", util::Json(file.plan));
  j.set("mode", util::Json(file.mode));
  j.set("grid_points", util::Json(static_cast<double>(file.grid_points)));
  j.set("num_shards", util::Json(static_cast<double>(file.num_shards)));
  j.set("shard_index", util::Json(static_cast<double>(file.shard_index)));
  j.set("has_mc", util::Json(file.has_mc));
  j.set("range", range_to_json(file.result.range));

  auto evals = util::Json::array();
  for (const auto& e : file.result.evals) evals.push_back(eval_to_json(e));
  j.set("evals", std::move(evals));

  if (file.has_mc) {
    auto mc = util::Json::array();
    for (const auto& r : file.result.mc) mc.push_back(mc_point_to_json(r));
    j.set("mc", std::move(mc));
    j.set("mc_stats", stats_to_json(file.result.mc_stats));
  }
  util::write_json_file(path, j);
}

ShardFile read_shard_json(const std::string& path) {
  const auto j = util::read_json_file(path);
  if (j.at("format").as_string() != kFormat) {
    throw std::runtime_error("read_shard_json: " + path +
                             " has unknown format '" +
                             j.at("format").as_string() + "'");
  }
  ShardFile file;
  file.plan = j.at("plan").as_string();
  file.mode = j.at("mode").as_string();
  file.grid_points = j.at("grid_points").as_size();
  file.num_shards = j.at("num_shards").as_size();
  file.shard_index = j.at("shard_index").as_size();
  file.has_mc = j.at("has_mc").as_bool();
  file.result.range = range_from_json(j.at("range"));

  for (const auto& e : j.at("evals").elements()) {
    file.result.evals.push_back(eval_from_json(e));
  }
  if (file.has_mc) {
    for (const auto& r : j.at("mc").elements()) {
      file.result.mc.push_back(mc_point_from_json(r));
    }
    file.result.mc_stats = stats_from_json(j.at("mc_stats"));
  }
  return file;
}

void validate_shard_tiling(std::size_t num_points,
                           std::span<const ShardRange> ranges) {
  std::vector<ShardRange> order;
  order.reserve(ranges.size());
  for (const auto& r : ranges) {
    if (r.begin > r.end || r.end > num_points) {
      throw std::invalid_argument(
          "validate_shard_tiling: range [" + std::to_string(r.begin) +
          ", " + std::to_string(r.end) + ") is invalid for a " +
          std::to_string(num_points) + "-point grid");
    }
    if (!r.empty()) order.push_back(r);
  }
  std::sort(order.begin(), order.end(),
            [](const ShardRange& a, const ShardRange& b) {
              return a.begin < b.begin;
            });
  std::size_t cursor = 0;
  for (const auto& r : order) {
    if (r.begin != cursor) {
      throw std::invalid_argument(
          "validate_shard_tiling: shard ranges do not tile the grid (" +
          std::string(r.begin > cursor ? "gap" : "overlap") + " at point " +
          std::to_string(std::min(cursor, r.begin)) + ")");
    }
    cursor = r.end;
  }
  if (cursor != num_points) {
    throw std::invalid_argument(
        "validate_shard_tiling: shard ranges do not tile the grid (gap at "
        "point " +
        std::to_string(cursor) + ")");
  }
}

MergedShardSet merge_shard_files(std::span<const ShardFile> files) {
  if (files.empty()) {
    throw std::invalid_argument("merge_shard_files: no shard files");
  }
  const ShardFile& ref = files.front();
  MergedShardSet merged;
  merged.plan = ref.plan;
  merged.mode = ref.mode;
  merged.grid_points = ref.grid_points;
  merged.num_shards = ref.num_shards;
  merged.has_mc = ref.has_mc;

  std::vector<char> seen(ref.num_shards, 0);
  for (const auto& f : files) {
    if (f.plan != ref.plan || f.mode != ref.mode ||
        f.grid_points != ref.grid_points || f.num_shards != ref.num_shards ||
        f.has_mc != ref.has_mc) {
      throw std::invalid_argument(
          "merge_shard_files: shard " + std::to_string(f.shard_index) +
          " metadata disagrees with shard " +
          std::to_string(ref.shard_index) + " (plan/mode/grid/shards/mc)");
    }
    if (f.shard_index >= f.num_shards) {
      throw std::invalid_argument("merge_shard_files: shard index " +
                                  std::to_string(f.shard_index) +
                                  " out of range");
    }
    if (seen[f.shard_index]) {
      throw std::invalid_argument("merge_shard_files: duplicate shard " +
                                  std::to_string(f.shard_index));
    }
    seen[f.shard_index] = 1;
    const auto& r = f.result.range;
    if (r.begin > r.end || r.end > f.grid_points) {
      throw std::invalid_argument("merge_shard_files: shard " +
                                  std::to_string(f.shard_index) +
                                  " has an invalid range");
    }
    if (f.result.evals.size() != r.size() ||
        (f.has_mc && f.result.mc.size() != r.size())) {
      throw std::invalid_argument(
          "merge_shard_files: shard " + std::to_string(f.shard_index) +
          " payload size does not match its range");
    }
  }

  std::vector<ShardRange> ranges;
  ranges.reserve(files.size());
  for (const auto& f : files) ranges.push_back(f.result.range);
  validate_shard_tiling(merged.grid_points, ranges);

  merged.evals.resize(merged.grid_points);
  if (merged.has_mc) merged.mc.resize(merged.grid_points);
  for (const auto& f : files) {
    const auto& r = f.result.range;
    std::copy(f.result.evals.begin(), f.result.evals.end(),
              merged.evals.begin() + static_cast<std::ptrdiff_t>(r.begin));
    if (merged.has_mc) {
      std::copy(f.result.mc.begin(), f.result.mc.end(),
                merged.mc.begin() + static_cast<std::ptrdiff_t>(r.begin));
      merged.mc_stats.points += f.result.mc_stats.points;
      merged.mc_stats.replications += f.result.mc_stats.replications;
      merged.mc_stats.blocks += f.result.mc_stats.blocks;
      merged.mc_stats.rounds += f.result.mc_stats.rounds;
      merged.mc_stats.seconds += f.result.mc_stats.seconds;
    }
  }
  return merged;
}

}  // namespace midas::core
