#include "core/shard.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/experiment.h"
#include "core/sweep_engine.h"
#include "util/json.h"

namespace midas::core {

namespace {

constexpr const char* kFormat = "midas-shard-v1";

util::Json range_to_json(const ShardRange& r) {
  auto j = util::Json::object();
  j.set("begin", util::Json(static_cast<double>(r.begin)));
  j.set("end", util::Json(static_cast<double>(r.end)));
  return j;
}

ShardRange range_from_json(const util::Json& j) {
  return {j.at("begin").as_size(), j.at("end").as_size()};
}

}  // namespace

ShardPlan ShardPlan::contiguous(std::size_t num_points,
                                std::size_t num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardPlan: num_shards must be positive");
  }
  ShardPlan plan;
  plan.num_points_ = num_points;
  plan.ranges_.reserve(num_shards);
  const std::size_t base = num_points / num_shards;
  const std::size_t extra = num_points % num_shards;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t take = base + (s < extra ? 1 : 0);
    plan.ranges_.push_back({cursor, cursor + take});
    cursor += take;
  }
  return plan;
}

ShardPlan ShardPlan::by_structure(const GridSpec& spec, const Params& base,
                                  std::size_t num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardPlan: num_shards must be positive");
  }
  const std::size_t n = spec.num_points();

  // Row-major runs of equal structure_key: run r covers points
  // [run_begin[r], run_begin[r+1]).
  std::vector<std::size_t> run_begin;
  std::string prev_key;
  for (std::size_t i = 0; i < n; ++i) {
    std::string key = structure_key(spec.point(base, i));
    if (i == 0 || key != prev_key) run_begin.push_back(i);
    prev_key = std::move(key);
  }
  run_begin.push_back(n);
  const std::size_t runs = run_begin.size() - 1;

  ShardPlan plan;
  plan.num_points_ = n;
  plan.ranges_.reserve(num_shards);
  std::size_t run = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (run >= runs) {
      plan.ranges_.push_back({n, n});
      continue;
    }
    const std::size_t begin = run_begin[run];
    std::size_t end = begin;
    if (s + 1 == num_shards) {
      // Last shard absorbs every remaining run.
      run = runs;
      end = n;
    } else {
      // Greedy balance: grow toward an even share of the remaining
      // points, whole runs at a time (the run that crosses the target
      // is included, so progress is guaranteed).
      const std::size_t target =
          (n - begin + (num_shards - s) - 1) / (num_shards - s);
      while (run < runs && end - begin < target) {
        ++run;
        end = run_begin[run];
      }
    }
    plan.ranges_.push_back({begin, end});
  }
  return plan;
}

ShardPlan ShardPlan::by_pilot_cost(const GridSpec& spec, const Params& base,
                                   std::size_t num_shards,
                                   const sim::McOptions& mc,
                                   std::size_t pilot_replications) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardPlan: num_shards must be positive");
  }
  const std::size_t n = spec.num_points();
  if (n == 0 || num_shards == 1) {
    return contiguous(n, num_shards);
  }

  // Deterministic pilot: a fixed replication budget per point with the
  // SAME substream keying the real run will use (bitwise reproducible
  // across processes and thread counts), adaptive stopping off.
  sim::McOptions pilot = mc;
  pilot.rel_ci_target = 0.0;
  pilot.min_replications = std::max<std::size_t>(2, pilot_replications);
  pilot.max_replications = pilot.min_replications;
  pilot.block = pilot.min_replications;
  pilot.capture_trajectories = false;
  pilot.survival_horizons.clear();
  sim::MonteCarloEngine engine(pilot);
  const auto points = spec.expand(base);
  const auto estimates = engine.run_des(points);

  // Predicted replications: invert the 95% CI-stopping rule from the
  // pilot variance.  With adaptive stopping disabled every point runs
  // the same count and only trajectory length differentiates cost.
  std::vector<double> weight(n, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = estimates[i].ttsf;
    double reps = static_cast<double>(mc.min_replications);
    if (mc.rel_ci_target > 0.0 && s.n >= 2 && s.mean > 0.0) {
      const double z = 1.96 * std::sqrt(s.variance) /
                       (mc.rel_ci_target * s.mean);
      reps = std::clamp(std::ceil(z * z),
                        static_cast<double>(mc.min_replications),
                        static_cast<double>(mc.max_replications));
    }
    const double per_rep = std::max(s.mean, 0.0);
    weight[i] = reps * per_rep;
    total += weight[i];
  }
  if (!(total > 0.0) || !std::isfinite(total)) {
    return contiguous(n, num_shards);
  }

  // Greedy weighted split: each shard grows toward an even share of the
  // remaining weight, whole points at a time, taking the boundary point
  // when that lands closer to the target than stopping short.
  ShardPlan plan;
  plan.num_points_ = n;
  plan.ranges_.reserve(num_shards);
  std::size_t cursor = 0;
  double remaining = total;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (s + 1 == num_shards) {
      plan.ranges_.push_back({cursor, n});
      break;
    }
    const std::size_t begin = cursor;
    const double target =
        remaining / static_cast<double>(num_shards - s);
    double acc = 0.0;
    while (cursor < n) {
      const double w = weight[cursor];
      if (acc > 0.0 && acc + w > target &&
          (acc + w) - target > target - acc) {
        break;
      }
      acc += w;
      ++cursor;
      if (acc >= target) break;
    }
    remaining -= acc;
    plan.ranges_.push_back({begin, cursor});
  }
  plan.weights_.reserve(plan.ranges_.size());
  for (const auto& r : plan.ranges_) {
    double sum = 0.0;
    for (std::size_t i = r.begin; i < r.end; ++i) sum += weight[i];
    plan.weights_.push_back(sum);
  }
  return plan;
}

std::vector<ShardRange> ShardPlan::replan(
    std::span<const ShardRange> uncompleted, std::size_t num_pieces) {
  if (num_pieces == 0) {
    throw std::invalid_argument("ShardPlan::replan: num_pieces must be "
                                "positive");
  }
  std::vector<ShardRange> inputs;
  for (const auto& r : uncompleted) {
    if (r.begin > r.end) {
      throw std::invalid_argument("ShardPlan::replan: range [" +
                                  std::to_string(r.begin) + ", " +
                                  std::to_string(r.end) + ") is invalid");
    }
    if (!r.empty()) inputs.push_back(r);
  }
  std::sort(inputs.begin(), inputs.end(),
            [](const ShardRange& a, const ShardRange& b) {
              return a.begin < b.begin;
            });
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    if (inputs[i].begin < inputs[i - 1].end) {
      throw std::invalid_argument(
          "ShardPlan::replan: ranges [" +
          std::to_string(inputs[i - 1].begin) + ", " +
          std::to_string(inputs[i - 1].end) + ") and [" +
          std::to_string(inputs[i].begin) + ", " +
          std::to_string(inputs[i].end) + ") overlap");
    }
  }
  if (inputs.size() >= num_pieces) return inputs;

  // Distribute the extra cuts one at a time to the input currently
  // split coarsest (largest points-per-piece); ties go to the earliest
  // range, so the outcome is deterministic.
  std::vector<std::size_t> pieces(inputs.size(), 1);
  for (std::size_t extra = num_pieces - inputs.size(); extra > 0; --extra) {
    std::size_t best = inputs.size();
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (pieces[i] >= inputs[i].size()) continue;  // already per-point
      const double ratio = static_cast<double>(inputs[i].size()) /
                           static_cast<double>(pieces[i]);
      if (best == inputs.size() || ratio > best_ratio) {
        best = i;
        best_ratio = ratio;
      }
    }
    if (best == inputs.size()) break;  // every range already per-point
    ++pieces[best];
  }

  std::vector<ShardRange> out;
  out.reserve(num_pieces);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const ShardPlan split = contiguous(inputs[i].size(), pieces[i]);
    for (const auto& r : split.ranges()) {
      if (r.empty()) continue;
      out.push_back({inputs[i].begin + r.begin, inputs[i].begin + r.end});
    }
  }
  return out;
}

const ShardRange& ShardPlan::range(std::size_t shard) const {
  if (shard >= ranges_.size()) {
    throw std::out_of_range("ShardPlan: shard index " +
                            std::to_string(shard) + " out of range (" +
                            std::to_string(ranges_.size()) + " shards)");
  }
  return ranges_[shard];
}

void write_shard_json(const std::string& path, const ShardFile& file) {
  auto j = util::Json::object();
  j.set("format", util::Json(kFormat));
  j.set("plan", util::Json(file.plan));
  j.set("mode", util::Json(file.mode));
  j.set("grid_points", util::Json(static_cast<double>(file.grid_points)));
  j.set("num_shards", util::Json(static_cast<double>(file.num_shards)));
  j.set("shard_index", util::Json(static_cast<double>(file.shard_index)));
  j.set("has_mc", util::Json(file.has_mc));
  j.set("range", range_to_json(file.result.range));

  auto evals = util::Json::array();
  for (const auto& e : file.result.evals) evals.push_back(evaluation_to_json(e));
  j.set("evals", std::move(evals));

  if (file.has_mc) {
    auto mc = util::Json::array();
    for (const auto& r : file.result.mc) mc.push_back(mc_point_to_json(r));
    j.set("mc", std::move(mc));
    j.set("mc_stats", mc_stats_to_json(file.result.mc_stats));
  }
  util::write_json_file(path, j);
}

ShardFile read_shard_json(const std::string& path) {
  const auto j = util::read_json_file(path);
  if (j.at("format").as_string() != kFormat) {
    throw std::runtime_error("read_shard_json: " + path +
                             " has unknown format '" +
                             j.at("format").as_string() + "'");
  }
  ShardFile file;
  file.plan = j.at("plan").as_string();
  file.mode = j.at("mode").as_string();
  file.grid_points = j.at("grid_points").as_size();
  file.num_shards = j.at("num_shards").as_size();
  file.shard_index = j.at("shard_index").as_size();
  file.has_mc = j.at("has_mc").as_bool();
  file.result.range = range_from_json(j.at("range"));

  for (const auto& e : j.at("evals").elements()) {
    file.result.evals.push_back(evaluation_from_json(e));
  }
  if (file.has_mc) {
    for (const auto& r : j.at("mc").elements()) {
      file.result.mc.push_back(mc_point_from_json(r));
    }
    file.result.mc_stats = mc_stats_from_json(j.at("mc_stats"));
  }
  return file;
}

void validate_shard_tiling(std::size_t num_points,
                           std::span<const ShardRange> ranges) {
  validate_shard_tiling(num_points, ranges, {});
}

void validate_shard_tiling(std::size_t num_points,
                           std::span<const ShardRange> ranges,
                           std::span<const std::size_t> shard_labels) {
  if (!shard_labels.empty() && shard_labels.size() != ranges.size()) {
    throw std::invalid_argument(
        "validate_shard_tiling: " + std::to_string(shard_labels.size()) +
        " labels for " + std::to_string(ranges.size()) + " ranges");
  }
  const auto describe = [&](std::size_t pos) {
    const std::size_t label =
        shard_labels.empty() ? pos : shard_labels[pos];
    return "shard " + std::to_string(label) + " [" +
           std::to_string(ranges[pos].begin) + ", " +
           std::to_string(ranges[pos].end) + ")";
  };
  std::vector<std::size_t> order;  // positions of non-empty ranges
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const ShardRange& r = ranges[i];
    if (r.begin > r.end || r.end > num_points) {
      throw std::invalid_argument("validate_shard_tiling: " + describe(i) +
                                  " is invalid for a " +
                                  std::to_string(num_points) +
                                  "-point grid");
    }
    if (!r.empty()) order.push_back(i);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              return ranges[a].begin < ranges[b].begin;
            });
  std::size_t cursor = 0;
  std::size_t prev = ranges.size();  // position covering [?, cursor)
  for (const std::size_t pos : order) {
    const ShardRange& r = ranges[pos];
    if (r.begin > cursor) {
      throw std::invalid_argument(
          "validate_shard_tiling: points [" + std::to_string(cursor) +
          ", " + std::to_string(r.begin) + ") are covered by no shard (" +
          (prev < ranges.size() ? describe(prev) + " ends at " +
                                      std::to_string(cursor)
                                : "no shard starts at 0") +
          ", next is " + describe(pos) + ")");
    }
    if (r.begin < cursor) {
      throw std::invalid_argument(
          "validate_shard_tiling: " + describe(prev) + " and " +
          describe(pos) + " overlap on points [" +
          std::to_string(r.begin) + ", " +
          std::to_string(std::min(cursor, r.end)) + ")");
    }
    cursor = r.end;
    prev = pos;
  }
  if (cursor != num_points) {
    throw std::invalid_argument(
        "validate_shard_tiling: points [" + std::to_string(cursor) + ", " +
        std::to_string(num_points) + ") are covered by no shard (" +
        (prev < ranges.size() ? "last is " + describe(prev)
                              : "no non-empty shards") +
        ")");
  }
}

MergedShardSet merge_shard_files(std::span<const ShardFile> files) {
  if (files.empty()) {
    throw std::invalid_argument("merge_shard_files: no shard files");
  }
  const ShardFile& ref = files.front();
  MergedShardSet merged;
  merged.plan = ref.plan;
  merged.mode = ref.mode;
  merged.grid_points = ref.grid_points;
  merged.num_shards = ref.num_shards;
  merged.has_mc = ref.has_mc;

  std::vector<char> seen(ref.num_shards, 0);
  for (const auto& f : files) {
    if (f.plan != ref.plan || f.mode != ref.mode ||
        f.grid_points != ref.grid_points || f.num_shards != ref.num_shards ||
        f.has_mc != ref.has_mc) {
      throw std::invalid_argument(
          "merge_shard_files: shard " + std::to_string(f.shard_index) +
          " metadata disagrees with shard " +
          std::to_string(ref.shard_index) + " (plan/mode/grid/shards/mc)");
    }
    if (f.shard_index >= f.num_shards) {
      throw std::invalid_argument("merge_shard_files: shard index " +
                                  std::to_string(f.shard_index) +
                                  " out of range");
    }
    if (seen[f.shard_index]) {
      throw std::invalid_argument("merge_shard_files: duplicate shard " +
                                  std::to_string(f.shard_index));
    }
    seen[f.shard_index] = 1;
    const auto& r = f.result.range;
    if (r.begin > r.end || r.end > f.grid_points) {
      throw std::invalid_argument("merge_shard_files: shard " +
                                  std::to_string(f.shard_index) +
                                  " has an invalid range");
    }
    if (f.result.evals.size() != r.size() ||
        (f.has_mc && f.result.mc.size() != r.size())) {
      throw std::invalid_argument(
          "merge_shard_files: shard " + std::to_string(f.shard_index) +
          " payload size does not match its range");
    }
  }

  std::vector<ShardRange> ranges;
  std::vector<std::size_t> labels;
  ranges.reserve(files.size());
  labels.reserve(files.size());
  for (const auto& f : files) {
    ranges.push_back(f.result.range);
    labels.push_back(f.shard_index);
  }
  validate_shard_tiling(merged.grid_points, ranges, labels);

  merged.evals.resize(merged.grid_points);
  if (merged.has_mc) merged.mc.resize(merged.grid_points);
  for (const auto& f : files) {
    const auto& r = f.result.range;
    std::copy(f.result.evals.begin(), f.result.evals.end(),
              merged.evals.begin() + static_cast<std::ptrdiff_t>(r.begin));
    if (merged.has_mc) {
      std::copy(f.result.mc.begin(), f.result.mc.end(),
                merged.mc.begin() + static_cast<std::ptrdiff_t>(r.begin));
      merged.mc_stats.points += f.result.mc_stats.points;
      merged.mc_stats.replications += f.result.mc_stats.replications;
      merged.mc_stats.blocks += f.result.mc_stats.blocks;
      merged.mc_stats.rounds += f.result.mc_stats.rounds;
      merged.mc_stats.seconds += f.result.mc_stats.seconds;
    }
  }
  return merged;
}

}  // namespace midas::core
