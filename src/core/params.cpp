#include "core/params.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace midas::core {

namespace {

/// The constant effective Params of one timeline segment: mission-phase
/// overrides (absolute, NaN/empty = inherit), then schedule multipliers
/// (×1.0 is IEEE-exact, so identity segments keep every rate bitwise).
/// The result's own schedule/mission are cleared — it describes ONE
/// homogeneous piece.
Params effective_params(const Params& base, const MissionPhase* phase,
                        const RateMultipliers& mult) {
  Params p = base;
  p.schedule = RateSchedule{};
  p.mission = MissionProfile{};
  if (phase != nullptr) {
    if (!std::isnan(phase->t_ids)) p.t_ids = phase->t_ids;
    if (!std::isnan(phase->lambda_c)) p.lambda_c = phase->lambda_c;
    if (!std::isnan(phase->lambda_q)) p.lambda_q = phase->lambda_q;
    if (!std::isnan(phase->p1)) p.p1 = phase->p1;
    if (!std::isnan(phase->p2)) p.p2 = phase->p2;
    if (!phase->detection_shape.empty()) {
      p.detection_shape = ids::shape_from_string(phase->detection_shape);
    }
    if (!phase->attacker_shape.empty()) {
      p.attacker_shape = ids::shape_from_string(phase->attacker_shape);
    }
  }
  p.lambda_c *= mult.lambda_c;
  p.t_ids *= mult.t_ids;
  p.lambda_q *= mult.lambda_q;
  for (double& r : p.partition_rates) r *= mult.partition;
  for (double& r : p.merge_rates) r *= mult.merge;
  return p;
}

}  // namespace

Params Params::paper_defaults() {
  Params p;
  // Population/workload/attacker/IDS members already carry the paper's
  // Section 5 defaults as in-class initialisers.  What remains is the
  // network shape: hop/degree values match MANET measurements for the
  // paper's operational area (disc of radius 500 m, 100 nodes, 150 m
  // radio range — run examples/manet_simulation to regenerate), and the
  // partition/merge rates are representative of slow (pedestrian)
  // mobility, where regrouping is an occasional event.  For
  // vehicle-speed mobility the measured rates are ~20x higher — see
  // bench/abl_partition, which feeds fully measured dynamics through
  // Params::apply_mobility_estimate and shows the security metrics move
  // by <10%.
  p.cost.mean_hops = 3.2;
  p.cost.mean_degree = 8.5;
  p.cost.bandwidth_bps = 1e6;
  p.cost.sync_rekey_params();

  p.max_groups = 3;
  p.partition_rates = {0.0, 2.5e-3, 1.2e-3, 0.0};
  p.merge_rates = {0.0, 0.0, 1.4e-2, 2.0e-2};
  return p;
}

void Params::apply_mobility_estimate(const manet::PartitionEstimate& est) {
  cost.mean_hops = std::max(est.mean_hops, 1.0);
  cost.mean_degree = std::max(est.mean_degree, 1.0);
  cost.sync_rekey_params();

  max_groups = static_cast<std::int32_t>(
      std::max<std::size_t>(est.max_groups_seen, 1));
  partition_rates.assign(static_cast<std::size_t>(max_groups) + 1, 0.0);
  merge_rates.assign(static_cast<std::size_t>(max_groups) + 1, 0.0);
  for (std::int32_t g = 1; g <= max_groups; ++g) {
    partition_rates[static_cast<std::size_t>(g)] =
        est.partition_rate_at(static_cast<std::size_t>(g));
    merge_rates[static_cast<std::size_t>(g)] =
        est.merge_rate_at(static_cast<std::size_t>(g));
  }
}

void Params::validate() const {
  if (n_init < 2) {
    throw std::invalid_argument("Params: n_init must be at least 2");
  }
  if (lambda_join < 0 || mu_leave < 0 || lambda_q < 0 || lambda_c < 0) {
    throw std::invalid_argument("Params: negative rate");
  }
  if (t_ids <= 0) {
    throw std::invalid_argument("Params: t_ids must be positive");
  }
  if (num_voters < 1) {
    throw std::invalid_argument("Params: num_voters must be >= 1");
  }
  if (p1 < 0 || p1 > 1) {
    throw std::invalid_argument("Params: p1 " + std::to_string(p1) +
                                " outside [0,1]");
  }
  if (p2 < 0 || p2 > 1) {
    throw std::invalid_argument("Params: p2 " + std::to_string(p2) +
                                " outside [0,1]");
  }
  detector.validate();  // throws "detector.<field>: ..."
  attacker.validate();  // throws "attacker.<field>: ..."
  if (byzantine_fraction <= 0 || byzantine_fraction >= 1) {
    throw std::invalid_argument("Params: byzantine_fraction out of (0,1)");
  }
  if (p_index <= 1.0) {
    throw std::invalid_argument("Params: p_index must be > 1");
  }
  if (max_groups < 1) {
    throw std::invalid_argument("Params: max_groups must be >= 1");
  }
  if (max_groups > 1) {
    if (partition_rates.size() <
            static_cast<std::size_t>(max_groups) + 1 ||
        merge_rates.size() < static_cast<std::size_t>(max_groups) + 1) {
      throw std::invalid_argument(
          "Params: partition/merge rate tables must cover 0..max_groups");
    }
  }
  schedule.validate("Params: schedule");  // "Params: schedule.segments[i]..."
  mission.validate("Params: mission");
  if (time_varying()) {
    // Every resolved segment must itself be a valid constant
    // parameterisation (segment params carry no schedule/mission, so
    // this cannot recurse).
    for (const auto& seg : resolve_timeline(*this)) {
      try {
        seg.params.validate();
      } catch (const std::exception& e) {
        throw std::invalid_argument("Params: timeline segment '" +
                                    seg.label + "': " + e.what());
      }
    }
  }
}

std::vector<TimelineSegment> resolve_timeline(const Params& base) {
  // Boundaries: t = 0 plus the union of mission and schedule
  // breakpoints (sorted, exact-duplicate boundaries collapse).
  std::vector<double> bounds{0.0};
  for (const double t : base.mission.breakpoints()) bounds.push_back(t);
  for (const double t : base.schedule.breakpoints()) bounds.push_back(t);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  std::vector<TimelineSegment> out;
  out.reserve(bounds.size());
  for (const double start : bounds) {
    const MissionPhase* phase =
        base.mission.empty() ? nullptr : &base.mission.at(start);
    static const RateMultipliers kIdentity{};
    const RateMultipliers& mult =
        base.schedule.empty() ? kIdentity : base.schedule.at(start).mult;
    TimelineSegment seg;
    seg.start_s = start;
    if (phase != nullptr && !phase->name.empty()) seg.label = phase->name;
    if (!base.schedule.empty() && !base.schedule.at(start).name.empty()) {
      if (!seg.label.empty()) seg.label += "/";
      seg.label += base.schedule.at(start).name;
    }
    if (seg.label.empty()) seg.label = "t>=" + std::to_string(start);
    seg.params = effective_params(base, phase, mult);
    out.push_back(std::move(seg));
  }
  return out;
}

}  // namespace midas::core
