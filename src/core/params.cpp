#include "core/params.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace midas::core {

Params Params::paper_defaults() {
  Params p;
  // Population/workload/attacker/IDS members already carry the paper's
  // Section 5 defaults as in-class initialisers.  What remains is the
  // network shape: hop/degree values match MANET measurements for the
  // paper's operational area (disc of radius 500 m, 100 nodes, 150 m
  // radio range — run examples/manet_simulation to regenerate), and the
  // partition/merge rates are representative of slow (pedestrian)
  // mobility, where regrouping is an occasional event.  For
  // vehicle-speed mobility the measured rates are ~20x higher — see
  // bench/abl_partition, which feeds fully measured dynamics through
  // Params::apply_mobility_estimate and shows the security metrics move
  // by <10%.
  p.cost.mean_hops = 3.2;
  p.cost.mean_degree = 8.5;
  p.cost.bandwidth_bps = 1e6;
  p.cost.sync_rekey_params();

  p.max_groups = 3;
  p.partition_rates = {0.0, 2.5e-3, 1.2e-3, 0.0};
  p.merge_rates = {0.0, 0.0, 1.4e-2, 2.0e-2};
  return p;
}

void Params::apply_mobility_estimate(const manet::PartitionEstimate& est) {
  cost.mean_hops = std::max(est.mean_hops, 1.0);
  cost.mean_degree = std::max(est.mean_degree, 1.0);
  cost.sync_rekey_params();

  max_groups = static_cast<std::int32_t>(
      std::max<std::size_t>(est.max_groups_seen, 1));
  partition_rates.assign(static_cast<std::size_t>(max_groups) + 1, 0.0);
  merge_rates.assign(static_cast<std::size_t>(max_groups) + 1, 0.0);
  for (std::int32_t g = 1; g <= max_groups; ++g) {
    partition_rates[static_cast<std::size_t>(g)] =
        est.partition_rate_at(static_cast<std::size_t>(g));
    merge_rates[static_cast<std::size_t>(g)] =
        est.merge_rate_at(static_cast<std::size_t>(g));
  }
}

void Params::validate() const {
  if (n_init < 2) {
    throw std::invalid_argument("Params: n_init must be at least 2");
  }
  if (lambda_join < 0 || mu_leave < 0 || lambda_q < 0 || lambda_c < 0) {
    throw std::invalid_argument("Params: negative rate");
  }
  if (t_ids <= 0) {
    throw std::invalid_argument("Params: t_ids must be positive");
  }
  if (num_voters < 1) {
    throw std::invalid_argument("Params: num_voters must be >= 1");
  }
  if (p1 < 0 || p1 > 1) {
    throw std::invalid_argument("Params: p1 " + std::to_string(p1) +
                                " outside [0,1]");
  }
  if (p2 < 0 || p2 > 1) {
    throw std::invalid_argument("Params: p2 " + std::to_string(p2) +
                                " outside [0,1]");
  }
  detector.validate();  // throws "detector.<field>: ..."
  attacker.validate();  // throws "attacker.<field>: ..."
  if (byzantine_fraction <= 0 || byzantine_fraction >= 1) {
    throw std::invalid_argument("Params: byzantine_fraction out of (0,1)");
  }
  if (p_index <= 1.0) {
    throw std::invalid_argument("Params: p_index must be > 1");
  }
  if (max_groups < 1) {
    throw std::invalid_argument("Params: max_groups must be >= 1");
  }
  if (max_groups > 1) {
    if (partition_rates.size() <
            static_cast<std::size_t>(max_groups) + 1 ||
        merge_rates.size() < static_cast<std::size_t>(max_groups) + 1) {
      throw std::invalid_argument(
          "Params: partition/merge rate tables must cover 0..max_groups");
    }
  }
}

}  // namespace midas::core
