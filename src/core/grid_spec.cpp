#include "core/grid_spec.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace midas::core {

namespace {

std::string trimmed_number(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace

GridSpec& GridSpec::push_axis(GridAxis axis) {
  if (axis.labels.empty()) {
    throw std::invalid_argument("GridSpec: axis '" + axis.name +
                                "' has no levels");
  }
  if (axis.values.size() != axis.labels.size()) {
    throw std::invalid_argument("GridSpec: axis '" + axis.name +
                                "' labels/values size mismatch");
  }
  for (const auto& existing : axes_) {
    if (existing.name == axis.name) {
      throw std::invalid_argument("GridSpec: duplicate axis '" +
                                  axis.name + "'");
    }
  }
  axes_.push_back(std::move(axis));
  return *this;
}

GridSpec& GridSpec::t_ids(std::vector<double> values) {
  GridAxis axis;
  axis.name = "t_ids";
  for (const double v : values) axis.labels.push_back(trimmed_number(v));
  axis.values = std::move(values);
  axis.apply = [levels = axis.values](Params& p, std::size_t k) {
    p.t_ids = levels[k];
  };
  return push_axis(std::move(axis));
}

GridSpec& GridSpec::num_voters(std::vector<std::int64_t> m) {
  GridAxis axis;
  axis.name = "m";
  for (const std::int64_t v : m) {
    axis.labels.push_back(std::to_string(v));
    axis.values.push_back(static_cast<double>(v));
  }
  axis.apply = [levels = std::move(m)](Params& p, std::size_t k) {
    p.num_voters = levels[k];
  };
  return push_axis(std::move(axis));
}

GridSpec& GridSpec::detection_shape(std::vector<ids::Shape> shapes) {
  GridAxis axis;
  axis.name = "detection";
  for (const auto s : shapes) {
    axis.labels.push_back(ids::to_string(s));
    axis.values.push_back(std::numeric_limits<double>::quiet_NaN());
  }
  axis.apply = [levels = std::move(shapes)](Params& p, std::size_t k) {
    p.detection_shape = levels[k];
  };
  return push_axis(std::move(axis));
}

GridSpec& GridSpec::attacker_shape(std::vector<ids::Shape> shapes) {
  GridAxis axis;
  axis.name = "attacker";
  for (const auto s : shapes) {
    axis.labels.push_back(ids::to_string(s));
    axis.values.push_back(std::numeric_limits<double>::quiet_NaN());
  }
  axis.apply = [levels = std::move(shapes)](Params& p, std::size_t k) {
    p.attacker_shape = levels[k];
  };
  return push_axis(std::move(axis));
}

GridSpec& GridSpec::axis(std::string name, std::vector<double> values,
                         std::function<void(Params&, double)> set) {
  if (!set) {
    throw std::invalid_argument("GridSpec: axis '" + name +
                                "' needs a setter");
  }
  GridAxis axis;
  axis.name = std::move(name);
  for (const double v : values) axis.labels.push_back(trimmed_number(v));
  axis.values = std::move(values);
  axis.apply = [levels = axis.values,
                set = std::move(set)](Params& p, std::size_t k) {
    set(p, levels[k]);
  };
  return push_axis(std::move(axis));
}

GridSpec& GridSpec::axis(std::string name, std::vector<std::string> labels,
                         std::function<void(Params&, std::size_t)> apply) {
  if (!apply) {
    throw std::invalid_argument("GridSpec: axis '" + name +
                                "' needs a setter");
  }
  GridAxis axis;
  axis.name = std::move(name);
  axis.values.assign(labels.size(),
                     std::numeric_limits<double>::quiet_NaN());
  axis.labels = std::move(labels);
  axis.apply = std::move(apply);
  return push_axis(std::move(axis));
}

const GridAxis& GridSpec::axis_at(std::size_t i) const {
  if (i >= axes_.size()) {
    throw std::out_of_range("GridSpec: axis index out of range");
  }
  return axes_[i];
}

std::size_t GridSpec::num_points() const noexcept {
  std::size_t n = 1;
  for (const auto& a : axes_) n *= a.size();
  return n;
}

std::vector<std::size_t> GridSpec::coords(std::size_t index) const {
  if (index >= num_points()) {
    throw std::out_of_range("GridSpec: point index out of range");
  }
  std::vector<std::size_t> c(axes_.size(), 0);
  for (std::size_t a = axes_.size(); a-- > 0;) {
    c[a] = index % axes_[a].size();
    index /= axes_[a].size();
  }
  return c;
}

std::size_t GridSpec::index(std::span<const std::size_t> c) const {
  if (c.size() != axes_.size()) {
    throw std::invalid_argument("GridSpec: coordinate rank mismatch");
  }
  std::size_t index = 0;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    if (c[a] >= axes_[a].size()) {
      throw std::out_of_range("GridSpec: coordinate out of range on axis " +
                              axes_[a].name);
    }
    index = index * axes_[a].size() + c[a];
  }
  return index;
}

Params GridSpec::point(const Params& base, std::size_t index) const {
  const auto c = coords(index);
  Params p = base;
  for (std::size_t a = 0; a < axes_.size(); ++a) axes_[a].apply(p, c[a]);
  return p;
}

std::vector<Params> GridSpec::expand(const Params& base) const {
  const std::size_t n = num_points();
  std::vector<Params> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back(point(base, i));
  return points;
}

std::string GridSpec::label(std::size_t index) const {
  const auto c = coords(index);
  std::string out;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    if (a > 0) out += ", ";
    out += axes_[a].name + "=" + axes_[a].labels[c[a]];
  }
  return out;
}

}  // namespace midas::core
