#include "core/experiment_presets.h"

#include <stdexcept>

#include "core/optimizer.h"
#include "sim/protocol_sim.h"

namespace midas::core {

namespace {

std::vector<double> t_ids_axis(bool smoke) {
  return smoke ? std::vector<double>{15, 120, 1200} : paper_t_ids_grid();
}

AxisSpec t_ids_of(std::vector<double> values) {
  AxisSpec axis;
  axis.param = "t_ids";
  axis.values = std::move(values);
  return axis;
}

AxisSpec voters_axis() {
  AxisSpec axis;
  axis.param = "num_voters";
  axis.values = {3, 5, 7, 9};
  return axis;
}

AxisSpec shapes_axis(const std::string& param) {
  AxisSpec axis;
  axis.param = param;
  axis.levels = {"logarithmic", "linear", "polynomial"};
  return axis;
}

/// Monte-Carlo schedule of the figure validations: CRN + antithetic
/// pairs, CI-targeted stopping loosened in smoke mode.
sim::McOptions validation_mc(bool smoke) {
  sim::McOptions mc;
  mc.base_seed = 0xFACADE;
  mc.rel_ci_target = smoke ? 0.10 : 0.075;
  mc.antithetic = true;
  return mc;
}

ExperimentSpec named(const std::string& name, bool smoke) {
  ExperimentSpec spec;
  spec.name = name;
  spec.mode = smoke ? "smoke" : "full";
  spec.base = Params::paper_defaults();
  return spec;
}

}  // namespace

std::vector<double> validation_t_ids(bool smoke) { return t_ids_axis(smoke); }

std::vector<std::string> experiment_preset_names() {
  return {"fig2",
          "fig2_val",
          "fig3",
          "fig3_val",
          "fig4",
          "fig4_val",
          "fig5",
          "fig5_val",
          "attacker_matrix",
          "attacker_matrix_val",
          "detector_matrix",
          "attacker_matrix_v2",
          "sensitivity_surface",
          "host_ids_quality",
          "val_des",
          "val_protocol",
          "val_protocol_ci",
          "rare_event",
          "mission",
          "mission_phased",
          "attacker_surge"};
}

ExperimentSpec experiment_preset(const std::string& name, bool smoke) {
  // --- Figure grids: the m × TIDS slice (figs 2/3) and the detection
  // shape × TIDS slice under a linear attacker (figs 4/5).  The "_val"
  // twins thin the TIDS axis in smoke mode and add the DES backend.
  if (name == "fig2" || name == "fig3" || name == "fig2_val" ||
      name == "fig3_val") {
    const bool val = name.size() > 4;
    ExperimentSpec spec = named(name, smoke);
    spec.axes = {voters_axis(), t_ids_of(val ? t_ids_axis(smoke)
                                             : paper_t_ids_grid())};
    if (val) {
      spec.backends = {BackendKind::Analytic, BackendKind::Des};
      spec.mc = validation_mc(smoke);
    }
    return spec;
  }
  if (name == "fig4" || name == "fig5" || name == "fig4_val" ||
      name == "fig5_val") {
    const bool val = name.size() > 4;
    ExperimentSpec spec = named(name, smoke);
    spec.base.attacker_shape = ids::Shape::Linear;
    spec.axes = {shapes_axis("detection_shape"),
                 t_ids_of(val ? t_ids_axis(smoke) : paper_t_ids_grid())};
    if (val) {
      spec.backends = {BackendKind::Analytic, BackendKind::Des};
      spec.mc = validation_mc(smoke);
    }
    return spec;
  }

  // --- Ablations.
  if (name == "attacker_matrix" || name == "attacker_matrix_val") {
    const bool val = name == "attacker_matrix_val";
    ExperimentSpec spec = named(name, smoke);
    spec.base.attacker_progress = AttackerProgress::CampaignProgress;
    spec.axes = {shapes_axis("attacker_shape"),
                 shapes_axis("detection_shape"),
                 t_ids_of(val ? (smoke ? std::vector<double>{120}
                                       : std::vector<double>{15, 120, 1200})
                              : paper_t_ids_grid())};
    if (val) {
      spec.backends = {BackendKind::Analytic, BackendKind::Des};
      spec.mc = validation_mc(smoke);
    }
    return spec;
  }
  if (name == "detector_matrix") {
    // Pluggable host-IDS error models × TIDS: the fig2-style curve
    // regenerated per detector scenario.  Cusum/logistic are
    // time-dependent, so the grid runs on the DES only (the analytic
    // SPN would reject those levels by name); DES-vs-analytic
    // cross-checks for the analytic-compatible levels live in
    // bench_scenarios.
    ExperimentSpec spec = named(name, smoke);
    AxisSpec detector;
    detector.param = "detector_model";
    detector.levels = {"static", "entropy", "cusum", "logistic"};
    spec.axes = {std::move(detector),
                 t_ids_of(smoke ? std::vector<double>{120}
                                : std::vector<double>{15, 120, 1200})};
    spec.backends = {BackendKind::Des};
    spec.mc = validation_mc(smoke);
    return spec;
  }
  if (name == "attacker_matrix_v2") {
    // Pluggable inter-compromise processes × TIDS (the model-kind
    // successor of attacker_matrix, which sweeps the A(mc) shape).
    // Bursty/coordinated leave the birth–death SPN, so DES-only —
    // same routing as detector_matrix.
    ExperimentSpec spec = named(name, smoke);
    AxisSpec attacker;
    attacker.param = "attacker_model";
    attacker.levels = {"poisson", "bursty", "coordinated"};
    spec.axes = {std::move(attacker),
                 t_ids_of(smoke ? std::vector<double>{120}
                                : std::vector<double>{15, 120, 1200})};
    spec.backends = {BackendKind::Des};
    spec.mc = validation_mc(smoke);
    return spec;
  }
  if (name == "sensitivity_surface") {
    ExperimentSpec spec = named(name, smoke);
    spec.base.t_ids = 120.0;
    const double lc0 = spec.base.lambda_c;
    AxisSpec lambda_c;
    lambda_c.param = "lambda_c";
    lambda_c.values = smoke ? std::vector<double>{0.5 * lc0, 2.0 * lc0}
                            : std::vector<double>{0.25 * lc0, 0.5 * lc0, lc0,
                                                  2.0 * lc0, 4.0 * lc0};
    spec.axes = {std::move(lambda_c),
                 t_ids_of(smoke ? std::vector<double>{30, 480}
                                : std::vector<double>{15, 60, 120, 480,
                                                      1200})};
    spec.backends = {BackendKind::Analytic, BackendKind::Des};
    spec.mc = validation_mc(smoke);
    return spec;
  }
  if (name == "host_ids_quality") {
    ExperimentSpec spec = named(name, smoke);
    AxisSpec perr;
    perr.param = "host_ids_error";
    perr.values = {0.001, 0.005, 0.01, 0.02, 0.05};
    spec.axes = {std::move(perr), t_ids_of(paper_t_ids_grid())};
    return spec;
  }

  // --- Validations + extensions.
  if (name == "val_des") {
    // Scaled-down population: exact distributional agreement, short
    // trajectories, each point stopped at a tight relative CI.
    ExperimentSpec spec = named(name, smoke);
    spec.base.n_init = 15;
    spec.base.max_groups = 1;
    spec.base.lambda_c = 1.0 / 2000.0;
    spec.axes = {t_ids_of({15.0, 60.0, 240.0, 1200.0})};
    spec.backends = {BackendKind::Analytic, BackendKind::Des};
    spec.mc.base_seed = 0xFACADE;
    spec.mc.rel_ci_target = smoke ? 0.075 : 0.05;
    return spec;
  }
  if (name == "val_protocol") {
    // The packet-level simulator probes the MODELLING assumptions, so
    // the comparison is trend-level on a fixed replication budget.
    ExperimentSpec spec = named(name, smoke);
    const auto defaults = sim::ProtocolSimParams::small_defaults();
    spec.base = defaults.model;
    spec.base.cost.mean_hops = 1.6;  // measured for this field/range
    spec.base.cost.sync_rekey_params();
    spec.axes = {t_ids_of({30.0, 120.0, 600.0})};
    spec.backends = {BackendKind::Analytic, BackendKind::ProtocolSim};
    spec.mc.base_seed = 0xCAFE;
    spec.mc.rel_ci_target = 0.0;
    spec.mc.min_replications = smoke ? 12 : 24;
    spec.mc.max_replications = spec.mc.min_replications;
    spec.mc.block = 4;
    spec.protocol.mobility = defaults.mobility;
    spec.protocol.radio_range_m = defaults.radio_range_m;
    spec.protocol.tick_s = defaults.tick_s;
    spec.protocol.topology_refresh_s = defaults.topology_refresh_s;
    spec.protocol.max_time_s = defaults.max_time_s;
    return spec;
  }
  if (name == "val_protocol_ci") {
    // val_protocol's grid under CI-TARGETED stopping instead of a fixed
    // budget: antithetic pairs are averaged into one sample each, and
    // the engine keeps adding pair blocks until every metric's 95%
    // interval is within ±10% of its mean (±15% in smoke mode).  A
    // separate preset so val_protocol's golden-pinned bytes never move.
    ExperimentSpec spec = named(name, smoke);
    const auto defaults = sim::ProtocolSimParams::small_defaults();
    spec.base = defaults.model;
    spec.base.cost.mean_hops = 1.6;  // measured for this field/range
    spec.base.cost.sync_rekey_params();
    spec.axes = {t_ids_of({30.0, 120.0, 600.0})};
    spec.backends = {BackendKind::Analytic, BackendKind::ProtocolSim};
    spec.mc.base_seed = 0xCAFE;
    spec.mc.antithetic = true;
    spec.mc.rel_ci_target = smoke ? 0.15 : 0.10;
    spec.mc.min_replications = smoke ? 8 : 16;
    spec.mc.max_replications = smoke ? 48 : 192;
    spec.mc.block = 4;
    spec.protocol.mobility = defaults.mobility;
    spec.protocol.radio_range_m = defaults.radio_range_m;
    spec.protocol.tick_s = defaults.tick_s;
    spec.protocol.topology_refresh_s = defaults.topology_refresh_s;
    spec.protocol.max_time_s = defaults.max_time_s;
    return spec;
  }
  if (name == "rare_event") {
    // The variance-reduction showcase: a hot per-node data rate
    // (λq = 1/s, so an undetected compromise leaks quickly) over the
    // 2×2 grid t_ids × n_init.  The two gated corners:
    //  * (t_ids=15, N=20): fast detection makes each compromise a
    //    leak/detect/evict race, so trajectory LENGTH is geometric and
    //    the free conditional-expectation control carries most of the
    //    TTSF variance — the CV regime (bench_vr gates its
    //    work-normalised efficiency at >= 5x on MTTSF).
    //  * (t_ids=1200, N=12): detection is negligible, so C2 capture
    //    means climbing UCm 1→5 before any of the UCm-proportional
    //    leaks fires — P(C2) ≈ 3e-6, invisible to the plain-MC budget
    //    (whose p_failure Summary goes one-sided Wilson at 0 observed
    //    C1 failures), and a textbook fit for the UCm splitting ladder
    //    (gated against the analytic p_failure_c2).
    // Scrambled-Sobol replicate groups run on every point.
    ExperimentSpec spec = named(name, smoke);
    spec.base.max_groups = 1;
    spec.base.num_voters = 9;
    spec.base.lambda_c = 1.0 / 2000.0;
    spec.base.lambda_q = 1.0;
    AxisSpec t_ids;
    t_ids.param = "t_ids";
    t_ids.values = {15.0, 1200.0};
    AxisSpec n_init;
    n_init.param = "n_init";
    n_init.values = {20, 12};
    spec.axes = {std::move(t_ids), std::move(n_init)};
    spec.backends = {BackendKind::Analytic, BackendKind::Des};
    spec.mc.base_seed = 0x7A11;
    spec.mc.rel_ci_target = 0.0;  // fixed budget: vr comparisons need it
    spec.mc.min_replications = smoke ? 256 : 1024;
    spec.mc.max_replications = spec.mc.min_replications;
    spec.vr.sobol.enabled = true;
    spec.vr.sobol.replicates = 8;
    spec.vr.sobol.samples_per_replicate = smoke ? 64 : 256;
    spec.vr.cv.enabled = true;
    spec.vr.cv.pilot = 128;
    spec.vr.cv.replications = smoke ? 1024 : 2048;
    spec.vr.splitting.enabled = true;
    spec.vr.splitting.target = "c2";
    spec.vr.splitting.levels = {2, 3, 4};
    spec.vr.splitting.scheme = "fixed_effort";
    spec.vr.splitting.effort = smoke ? 1024 : 2048;
    spec.vr.splitting.replicates = smoke ? 16 : 24;
    return spec;
  }
  if (name == "mission") {
    // Mission reliability R(t): survival-indicator proportions need a
    // fixed budget, not CI stopping.
    ExperimentSpec spec = named(name, smoke);
    spec.axes = {t_ids_of({15.0, 60.0, 240.0, 1200.0})};
    spec.backends = {BackendKind::Analytic, BackendKind::Des};
    spec.mc.base_seed = 0x51D;
    spec.mc.rel_ci_target = 0.0;
    spec.mc.min_replications = smoke ? 150 : 400;
    spec.mc.max_replications = spec.mc.min_replications;
    for (const double hours : {6.0, 24.0, 72.0, 168.0, 336.0}) {
      spec.mc.survival_horizons.push_back(hours * 3600.0);
    }
    return spec;
  }
  if (name == "mission_phased") {
    // Phased mission at the paper's N=100: a quiet infiltration day, a
    // two-day assault with the attacker four times hotter, then an
    // open-ended recovery at the base rate.  The analytic backend
    // chains the transient solver across the phase boundaries
    // (core::MissionAnalyzer); the DES truncates its Gillespie dwells
    // at the same breakpoints, so the two R(t) curves are gated
    // against each other in bench_mission.
    ExperimentSpec spec = named(name, smoke);
    const double lc0 = spec.base.lambda_c;
    MissionPhase infiltration;
    infiltration.name = "infiltration";
    infiltration.duration_s = 24.0 * 3600.0;
    infiltration.lambda_c = 0.25 * lc0;
    MissionPhase assault;
    assault.name = "assault";
    assault.duration_s = 48.0 * 3600.0;
    assault.lambda_c = 4.0 * lc0;
    MissionPhase recovery;  // inherits everything, runs forever
    recovery.name = "recovery";
    spec.base.mission.phases = {infiltration, assault, recovery};
    spec.axes = {t_ids_of(smoke ? std::vector<double>{60.0, 240.0}
                                : std::vector<double>{15.0, 60.0, 240.0,
                                                      1200.0})};
    spec.backends = {BackendKind::Analytic, BackendKind::Des};
    spec.mc.base_seed = 0x9147A5ED;
    spec.mc.rel_ci_target = 0.0;
    spec.mc.min_replications = smoke ? 150 : 400;
    spec.mc.max_replications = spec.mc.min_replications;
    for (const double hours : {6.0, 24.0, 72.0, 168.0, 336.0}) {
      spec.mc.survival_horizons.push_back(hours * 3600.0);
    }
    return spec;
  }
  if (name == "attacker_surge") {
    // Rate-schedule counterpart of mission_phased on the small packet-
    // level population: a baseline window, a one-hour λc×4 surge, then
    // stand-down at the base rate — run through all three backends so
    // the per-tick protocol simulator exercises the schedule too.
    ExperimentSpec spec = named(name, smoke);
    const auto defaults = sim::ProtocolSimParams::small_defaults();
    spec.base = defaults.model;
    spec.base.cost.mean_hops = 1.6;  // measured for this field/range
    spec.base.cost.sync_rekey_params();
    ScheduleSegment baseline;
    baseline.name = "baseline";
    baseline.duration_s = 600.0;
    ScheduleSegment surge;
    surge.name = "surge";
    surge.duration_s = 3600.0;
    surge.mult.lambda_c = 4.0;
    ScheduleSegment stand_down;  // identity multipliers, runs forever
    stand_down.name = "stand-down";
    spec.base.schedule.segments = {baseline, surge, stand_down};
    spec.axes = {t_ids_of({30.0, 120.0, 600.0})};
    spec.backends = {BackendKind::Analytic, BackendKind::Des,
                     BackendKind::ProtocolSim};
    spec.mc.base_seed = 0x5E9E;
    spec.mc.rel_ci_target = 0.0;
    spec.mc.min_replications = smoke ? 12 : 24;
    spec.mc.max_replications = spec.mc.min_replications;
    spec.mc.block = 4;
    spec.protocol.mobility = defaults.mobility;
    spec.protocol.radio_range_m = defaults.radio_range_m;
    spec.protocol.tick_s = defaults.tick_s;
    spec.protocol.topology_refresh_s = defaults.topology_refresh_s;
    spec.protocol.max_time_s = defaults.max_time_s;
    return spec;
  }

  std::string known;
  for (const auto& n : experiment_preset_names()) {
    known += known.empty() ? n : (" | " + n);
  }
  throw std::invalid_argument("experiment_preset: unknown preset '" + name +
                              "' (expected " + known + ")");
}

}  // namespace midas::core
