// Time-inhomogeneous dynamics as data: piecewise-constant rate
// schedules and multi-phase mission profiles (PR 9).
//
// The paper evaluates steady-parameter curves, but its real question —
// which TIDS/voting configuration survives a mission — is
// time-inhomogeneous: attacker surges, mobility regime shifts and
// scheduled rekeying windows all vary the rates mid-mission.  Two
// first-class Params fields describe that variation:
//
//   * RateSchedule — named, ordered segments of MULTIPLIERS on the
//     scheduled rates (λc, TIDS, λq, partition/merge).  A schedule
//     scales the base point without re-stating it, so one grid axis
//     (say t_ids) composes with one surge profile.
//   * MissionProfile — named, ordered phases of Params DELTAS
//     (absolute overrides; NaN / empty string = inherit the base
//     value), for regime shifts that are not mere scalings.
//
// Both are piecewise-constant: within a segment/phase the process is
// the familiar time-homogeneous chain, so every backend handles a
// boundary the same way — resolve the effective constant Params per
// segment (core::resolve_timeline) and chain:
//   analytic      core::MissionAnalyzer chains spn::ReliabilityOde
//                 integrations across boundaries (mission.h)
//   des           Gillespie samples truncate at the next breakpoint and
//                 resample (memoryless restart; sim/des.cpp)
//   protocol_sim  per-tick effective rates (sim/protocol_sim.cpp)
//
// An empty schedule + empty mission IS the legacy constant model, and a
// constant schedule (single segment, identity multipliers) reproduces
// it bitwise: ×1.0 is exact in IEEE arithmetic and every backend keeps
// its legacy draw/solve sequence when only one segment resolves.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace midas::core {

/// Multiplicative factors applied to the scheduled rates of a Params.
/// 1.0 everywhere = identity (exact: x·1.0 == x in IEEE arithmetic).
struct RateMultipliers {
  double lambda_c = 1.0;   ///< attacker base compromise rate λc
  double t_ids = 1.0;      ///< detection interval TIDS (>1 = slower IDS)
  double lambda_q = 1.0;   ///< per-node data request rate λq
  double partition = 1.0;  ///< every partition_rates[g]
  double merge = 1.0;      ///< every merge_rates[g]

  [[nodiscard]] bool identity() const noexcept {
    return lambda_c == 1.0 && t_ids == 1.0 && lambda_q == 1.0 &&
           partition == 1.0 && merge == 1.0;
  }
};

/// One named schedule segment.  Segments are laid end to end from t=0;
/// the LAST segment extends forever (duration_s may be infinity there,
/// and only there).
struct ScheduleSegment {
  std::string name;  ///< breakpoint label ("surge", "stand-down", ...)
  double duration_s = std::numeric_limits<double>::infinity();
  RateMultipliers mult;
};

/// Piecewise-constant time-varying multipliers with named breakpoints.
/// Empty = constant (no time variation).
struct RateSchedule {
  std::vector<ScheduleSegment> segments;

  [[nodiscard]] bool empty() const noexcept { return segments.empty(); }

  /// Throws std::invalid_argument with "<prefix>.segments[i].<field>"
  /// naming: durations must be positive, finite except for the last
  /// segment; multipliers finite and >= 0 (t_ids strictly > 0).
  void validate(const std::string& prefix = "schedule") const;

  /// Interior breakpoints: the start times of segments 1..n-1, strictly
  /// ascending.  Empty for a constant (0- or 1-segment) schedule.
  [[nodiscard]] std::vector<double> breakpoints() const;

  /// The segment active at time t >= 0 (the last one for all t past the
  /// final breakpoint).  Requires !empty().
  [[nodiscard]] const ScheduleSegment& at(double t) const;
};

/// One mission phase: a duration plus ABSOLUTE overrides of selected
/// Params fields.  NaN (numeric) / empty string (shape) = inherit the
/// base value.  Like schedule segments, phases run end to end from t=0
/// and the last phase extends forever.
struct MissionPhase {
  std::string name;
  double duration_s = std::numeric_limits<double>::infinity();
  double t_ids = std::numeric_limits<double>::quiet_NaN();
  double lambda_c = std::numeric_limits<double>::quiet_NaN();
  double lambda_q = std::numeric_limits<double>::quiet_NaN();
  double p1 = std::numeric_limits<double>::quiet_NaN();
  double p2 = std::numeric_limits<double>::quiet_NaN();
  std::string detection_shape;  ///< "logarithmic"|"linear"|"polynomial"
  std::string attacker_shape;
};

/// Ordered mission phases.  Empty = single implicit phase (the base
/// Params for all time).  Composes with RateSchedule: at any instant
/// the effective point is base + phase overrides, then multipliers.
struct MissionProfile {
  std::vector<MissionPhase> phases;

  [[nodiscard]] bool empty() const noexcept { return phases.empty(); }

  /// Throws std::invalid_argument with "<prefix>.phases[i].<field>"
  /// naming; override ranges are checked here, full cross-field
  /// consistency by Params::validate on each resolved segment.
  void validate(const std::string& prefix = "mission") const;

  /// Interior breakpoints (starts of phases 1..n-1), strictly ascending.
  [[nodiscard]] std::vector<double> breakpoints() const;

  /// The phase active at time t >= 0.  Requires !empty().
  [[nodiscard]] const MissionPhase& at(double t) const;
};

}  // namespace midas::core
