#include "core/schedule.h"

#include <cmath>
#include <stdexcept>

#include "ids/functions.h"

namespace midas::core {

namespace {

[[noreturn]] void fail(const std::string& prefix, std::size_t index,
                       const std::string& what) {
  throw std::invalid_argument(prefix + "[" + std::to_string(index) + "]" +
                              what);
}

/// Shared duration contract of segments and phases: positive, finite
/// except in the last slot (which extends forever).
void check_duration(const std::string& prefix, std::size_t index,
                    double duration_s, bool last) {
  if (std::isnan(duration_s) || duration_s <= 0.0) {
    fail(prefix, index, ".duration_s must be positive");
  }
  if (!last && std::isinf(duration_s)) {
    fail(prefix, index,
         ".duration_s is infinite but the segment is not last — later "
         "entries would be unreachable");
  }
}

/// Breakpoints shared by both containers: cumulative starts of entries
/// 1..n-1 (validate() guarantees only the last duration may be
/// infinite, so these are finite and strictly ascending).
template <typename Entry>
std::vector<double> starts(const std::vector<Entry>& entries) {
  std::vector<double> out;
  double t = 0.0;
  for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
    t += entries[i].duration_s;
    out.push_back(t);
  }
  return out;
}

template <typename Entry>
const Entry& active_at(const std::vector<Entry>& entries, double t,
                       const char* who) {
  if (entries.empty()) {
    throw std::logic_error(std::string(who) + "::at on an empty container");
  }
  double start = 0.0;
  for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
    start += entries[i].duration_s;
    if (t < start) return entries[i];
  }
  return entries.back();
}

void check_multiplier(const std::string& prefix, std::size_t index,
                      const char* field, double m, bool strictly_positive) {
  if (!std::isfinite(m) || m < 0.0 || (strictly_positive && m == 0.0)) {
    fail(prefix, index,
         std::string(".") + field + " multiplier must be finite and " +
             (strictly_positive ? "> 0" : ">= 0"));
  }
}

/// NaN = inherit; anything set must land in [lo, hi] (hi may be inf).
void check_override(const std::string& prefix, std::size_t index,
                    const char* field, double v, double lo, double hi,
                    bool allow_lo) {
  if (std::isnan(v)) return;  // inherit
  const bool ok = std::isfinite(v) && (allow_lo ? v >= lo : v > lo) &&
                  v <= hi;
  if (!ok) {
    fail(prefix, index,
         std::string(".") + field + " override " + std::to_string(v) +
             " out of range");
  }
}

void check_shape(const std::string& prefix, std::size_t index,
                 const char* field, const std::string& name) {
  if (name.empty()) return;  // inherit
  try {
    (void)ids::shape_from_string(name);
  } catch (const std::exception& e) {
    fail(prefix, index, std::string(".") + field + ": " + e.what());
  }
}

}  // namespace

void RateSchedule::validate(const std::string& prefix) const {
  const std::string p = prefix + ".segments";
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& s = segments[i];
    check_duration(p, i, s.duration_s, i + 1 == segments.size());
    check_multiplier(p, i, "lambda_c", s.mult.lambda_c, false);
    check_multiplier(p, i, "t_ids", s.mult.t_ids, true);
    check_multiplier(p, i, "lambda_q", s.mult.lambda_q, false);
    check_multiplier(p, i, "partition", s.mult.partition, false);
    check_multiplier(p, i, "merge", s.mult.merge, false);
  }
}

std::vector<double> RateSchedule::breakpoints() const {
  return starts(segments);
}

const ScheduleSegment& RateSchedule::at(double t) const {
  return active_at(segments, t, "RateSchedule");
}

void MissionProfile::validate(const std::string& prefix) const {
  const std::string p = prefix + ".phases";
  constexpr double inf = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const auto& ph = phases[i];
    check_duration(p, i, ph.duration_s, i + 1 == phases.size());
    check_override(p, i, "t_ids", ph.t_ids, 0.0, inf, false);
    check_override(p, i, "lambda_c", ph.lambda_c, 0.0, inf, true);
    check_override(p, i, "lambda_q", ph.lambda_q, 0.0, inf, true);
    check_override(p, i, "p1", ph.p1, 0.0, 1.0, true);
    check_override(p, i, "p2", ph.p2, 0.0, 1.0, true);
    check_shape(p, i, "detection_shape", ph.detection_shape);
    check_shape(p, i, "attacker_shape", ph.attacker_shape);
  }
}

std::vector<double> MissionProfile::breakpoints() const {
  return starts(phases);
}

const MissionPhase& MissionProfile::at(double t) const {
  return active_at(phases, t, "MissionProfile");
}

}  // namespace midas::core
