#include "core/experiment.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/mission.h"
#include "ids/functions.h"
#include "sim/protocol_sim.h"
#include "sim/thread_pool.h"
#include "util/stopwatch.h"

namespace midas::core {

namespace {

constexpr const char* kSpecFormat = "midas-experiment-v1";
constexpr const char* kResultFormat = "midas-experiment-result-v1";

/// Validation / parse failure carrying the JSON path of the offender.
[[noreturn]] void fail(const std::string& path, const std::string& msg) {
  throw std::invalid_argument("ExperimentSpec: " + path + ": " + msg);
}

/// Integral sizes travel as JSON numbers; doubles above 2^53 would stop
/// round-tripping exactly, so they are rejected at serialisation time.
util::Json json_size(std::uint64_t v, const std::string& path) {
  if (v > (std::uint64_t{1} << 53)) {
    fail(path, "integer " + std::to_string(v) +
                   " exceeds the 2^53 JSON-exact range");
  }
  return util::Json(static_cast<double>(v));
}

/// Path-carrying cursor over a JSON object: every accessor failure
/// names the full path of the offending field.
struct Reader {
  const util::Json& j;
  std::string path;

  [[nodiscard]] const util::Json& at(const std::string& key) const {
    if (j.type() != util::Json::Type::Object) {
      fail(path, "expected an object");
    }
    const util::Json* f = j.find(key);
    if (f == nullptr) fail(path + "." + key, "missing required field");
    return *f;
  }
  [[nodiscard]] Reader child(const std::string& key) const {
    return {at(key), path + "." + key};
  }
  [[nodiscard]] double number(const std::string& key) const {
    try {
      return at(key).to_double();
    } catch (const std::exception& e) {
      fail(path + "." + key, e.what());
    }
  }
  [[nodiscard]] std::size_t size(const std::string& key) const {
    try {
      return at(key).as_size();
    } catch (const std::exception& e) {
      fail(path + "." + key, e.what());
    }
  }
  [[nodiscard]] bool boolean(const std::string& key) const {
    try {
      return at(key).as_bool();
    } catch (const std::exception& e) {
      fail(path + "." + key, e.what());
    }
  }
  [[nodiscard]] const std::string& str(const std::string& key) const {
    try {
      return at(key).as_string();
    } catch (const std::exception& e) {
      fail(path + "." + key, e.what());
    }
  }
  [[nodiscard]] std::vector<double> numbers(const std::string& key) const {
    const auto& arr = at(key);
    if (arr.type() != util::Json::Type::Array) {
      fail(path + "." + key, "expected an array");
    }
    std::vector<double> out;
    out.reserve(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i) {
      try {
        out.push_back(arr.at(i).to_double());
      } catch (const std::exception& e) {
        fail(path + "." + key + "[" + std::to_string(i) + "]", e.what());
      }
    }
    return out;
  }
  [[nodiscard]] std::vector<std::string> strings(
      const std::string& key) const {
    const auto& arr = at(key);
    if (arr.type() != util::Json::Type::Array) {
      fail(path + "." + key, "expected an array");
    }
    std::vector<std::string> out;
    out.reserve(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i) {
      try {
        out.push_back(arr.at(i).as_string());
      } catch (const std::exception& e) {
        fail(path + "." + key + "[" + std::to_string(i) + "]", e.what());
      }
    }
    return out;
  }
};

util::Json numbers_to_json(std::span<const double> values) {
  auto arr = util::Json::array();
  for (const double v : values) arr.push_back(util::Json::number(v));
  return arr;
}

// --- spec.mc.vr codec. ------------------------------------------------
// Canonical key order; emitted only when vr.any() (so pre-vr spec bytes
// never change) and OPTIONAL on read (pre-vr spec files and embedded
// golden specs keep parsing).  Disabled sub-blocks are omitted for the
// same byte-stability reason.

util::Json vr_options_to_json(const vr::VrOptions& v) {
  auto j = util::Json::object();
  if (v.sobol.enabled) {
    auto s = util::Json::object();
    s.set("replicates", json_size(v.sobol.replicates,
                                  "spec.mc.vr.sobol.replicates"));
    s.set("samples_per_replicate",
          json_size(v.sobol.samples_per_replicate,
                    "spec.mc.vr.sobol.samples_per_replicate"));
    j.set("sobol", std::move(s));
  }
  if (v.cv.enabled) {
    auto c = util::Json::object();
    c.set("pilot", json_size(v.cv.pilot, "spec.mc.vr.cv.pilot"));
    c.set("replications",
          json_size(v.cv.replications, "spec.mc.vr.cv.replications"));
    j.set("cv", std::move(c));
  }
  if (v.splitting.enabled) {
    auto s = util::Json::object();
    s.set("target", util::Json(v.splitting.target));
    auto levels = util::Json::array();
    for (const std::int64_t t : v.splitting.levels) {
      levels.push_back(json_size(static_cast<std::uint64_t>(t),
                                 "spec.mc.vr.splitting.levels"));
    }
    s.set("levels", std::move(levels));
    s.set("scheme", util::Json(v.splitting.scheme));
    s.set("effort",
          json_size(v.splitting.effort, "spec.mc.vr.splitting.effort"));
    s.set("splitting_factor",
          json_size(v.splitting.splitting_factor,
                    "spec.mc.vr.splitting.splitting_factor"));
    s.set("replicates", json_size(v.splitting.replicates,
                                  "spec.mc.vr.splitting.replicates"));
    j.set("splitting", std::move(s));
  }
  return j;
}

vr::VrOptions vr_options_from_json(const util::Json& j,
                                   const std::string& path) {
  const Reader r{j, path};
  vr::VrOptions v;
  if (j.type() != util::Json::Type::Object) fail(path, "expected an object");
  if (j.find("sobol") != nullptr) {
    const Reader s = r.child("sobol");
    v.sobol.enabled = true;
    v.sobol.replicates = s.size("replicates");
    v.sobol.samples_per_replicate = s.size("samples_per_replicate");
  }
  if (j.find("cv") != nullptr) {
    const Reader c = r.child("cv");
    v.cv.enabled = true;
    v.cv.pilot = c.size("pilot");
    v.cv.replications = c.size("replications");
  }
  if (j.find("splitting") != nullptr) {
    const Reader s = r.child("splitting");
    v.splitting.enabled = true;
    v.splitting.target = s.str("target");
    v.splitting.levels.clear();
    const auto& levels = s.at("levels");
    if (levels.type() != util::Json::Type::Array) {
      fail(path + ".splitting.levels", "expected an array");
    }
    for (std::size_t i = 0; i < levels.size(); ++i) {
      try {
        v.splitting.levels.push_back(
            static_cast<std::int64_t>(levels.at(i).as_size()));
      } catch (const std::exception& e) {
        fail(path + ".splitting.levels[" + std::to_string(i) + "]",
             e.what());
      }
    }
    v.splitting.scheme = s.str("scheme");
    v.splitting.effort = s.size("effort");
    v.splitting.splitting_factor = s.size("splitting_factor");
    v.splitting.replicates = s.size("replicates");
  }
  return v;
}

// --- Schedule / mission codecs. ---------------------------------------
// Both fields are always serialised (empty arrays for the constant
// model) so canonical spec documents stay byte-stable; on read they are
// OPTIONAL, keeping every pre-PR-9 spec file parseable.  Non-finite
// values (the last segment's infinite duration, NaN inherit-overrides)
// travel via util::Json::number's "inf"/"nan" string encoding, which
// to_double() reverses exactly.

util::Json schedule_to_json(const RateSchedule& s) {
  auto j = util::Json::object();
  auto segments = util::Json::array();
  for (const auto& seg : s.segments) {
    auto o = util::Json::object();
    o.set("name", util::Json(seg.name));
    o.set("duration_s", util::Json::number(seg.duration_s));
    o.set("lambda_c", util::Json::number(seg.mult.lambda_c));
    o.set("t_ids", util::Json::number(seg.mult.t_ids));
    o.set("lambda_q", util::Json::number(seg.mult.lambda_q));
    o.set("partition", util::Json::number(seg.mult.partition));
    o.set("merge", util::Json::number(seg.mult.merge));
    segments.push_back(std::move(o));
  }
  j.set("segments", std::move(segments));
  return j;
}

RateSchedule schedule_from_json(const util::Json& j,
                                const std::string& path) {
  const Reader r{j, path};
  const auto& arr = r.at("segments");
  if (arr.type() != util::Json::Type::Array) {
    fail(path + ".segments", "expected an array");
  }
  RateSchedule s;
  s.segments.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const Reader seg{arr.at(i),
                     path + ".segments[" + std::to_string(i) + "]"};
    ScheduleSegment out;
    out.name = seg.str("name");
    out.duration_s = seg.number("duration_s");
    out.mult.lambda_c = seg.number("lambda_c");
    out.mult.t_ids = seg.number("t_ids");
    out.mult.lambda_q = seg.number("lambda_q");
    out.mult.partition = seg.number("partition");
    out.mult.merge = seg.number("merge");
    s.segments.push_back(std::move(out));
  }
  return s;
}

util::Json mission_to_json(const MissionProfile& m) {
  auto j = util::Json::object();
  auto phases = util::Json::array();
  for (const auto& ph : m.phases) {
    auto o = util::Json::object();
    o.set("name", util::Json(ph.name));
    o.set("duration_s", util::Json::number(ph.duration_s));
    o.set("t_ids", util::Json::number(ph.t_ids));
    o.set("lambda_c", util::Json::number(ph.lambda_c));
    o.set("lambda_q", util::Json::number(ph.lambda_q));
    o.set("p1", util::Json::number(ph.p1));
    o.set("p2", util::Json::number(ph.p2));
    o.set("detection_shape", util::Json(ph.detection_shape));
    o.set("attacker_shape", util::Json(ph.attacker_shape));
    phases.push_back(std::move(o));
  }
  j.set("phases", std::move(phases));
  return j;
}

MissionProfile mission_from_json(const util::Json& j,
                                 const std::string& path) {
  const Reader r{j, path};
  const auto& arr = r.at("phases");
  if (arr.type() != util::Json::Type::Array) {
    fail(path + ".phases", "expected an array");
  }
  MissionProfile m;
  m.phases.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const Reader ph{arr.at(i), path + ".phases[" + std::to_string(i) + "]"};
    MissionPhase out;
    out.name = ph.str("name");
    out.duration_s = ph.number("duration_s");
    out.t_ids = ph.number("t_ids");
    out.lambda_c = ph.number("lambda_c");
    out.lambda_q = ph.number("lambda_q");
    out.p1 = ph.number("p1");
    out.p2 = ph.number("p2");
    out.detection_shape = ph.str("detection_shape");
    out.attacker_shape = ph.str("attacker_shape");
    m.phases.push_back(std::move(out));
  }
  return m;
}

// --- Enum codecs. -----------------------------------------------------

ids::Shape shape_from(const std::string& name, const std::string& path) {
  try {
    return ids::shape_from_string(name);
  } catch (const std::exception&) {
    fail(path, "unknown shape '" + name +
                   "' (expected logarithmic | linear | polynomial)");
  }
}

std::string progress_name(AttackerProgress p) {
  return p == AttackerProgress::CampaignProgress ? "campaign_progress"
                                                 : "compromise_ratio";
}

AttackerProgress progress_from(const std::string& name,
                               const std::string& path) {
  if (name == "compromise_ratio") return AttackerProgress::CompromiseRatio;
  if (name == "campaign_progress") return AttackerProgress::CampaignProgress;
  fail(path, "unknown attacker progress '" + name +
                 "' (expected compromise_ratio | campaign_progress)");
}

BackendKind backend_from(const std::string& name, const std::string& path) {
  if (name == "analytic") return BackendKind::Analytic;
  if (name == "des") return BackendKind::Des;
  if (name == "protocol_sim") return BackendKind::ProtocolSim;
  fail(path, "unknown backend '" + name +
                 "' (expected analytic | des | protocol_sim)");
}

ShardSpec::Policy policy_from(const std::string& name,
                              const std::string& path) {
  if (name == "all") return ShardSpec::Policy::All;
  if (name == "contiguous") return ShardSpec::Policy::Contiguous;
  if (name == "by_structure") return ShardSpec::Policy::ByStructure;
  if (name == "by_pilot_cost") return ShardSpec::Policy::ByPilotCost;
  if (name == "explicit") return ShardSpec::Policy::Explicit;
  fail(path, "unknown shard policy '" + name +
                 "' (expected all | contiguous | by_structure | "
                 "by_pilot_cost | explicit)");
}

/// The metric names a spec may request.
const std::vector<std::string>& known_metrics() {
  static const std::vector<std::string> kMetrics{
      "mttsf", "ctotal", "cost_breakdown", "p_failure", "survival"};
  return kMetrics;
}

// --- Generic numeric axis registry. -----------------------------------

/// Compact value rendering for validation messages ("1.3", not
/// "1.300000").
std::string fmt_value(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Range predicates shared by axis values and the base params; each
/// returns nullptr when the value is admissible, else the constraint
/// text appended after the value in the error message.
const char* check_unit_interval(double v) {
  return (v >= 0.0 && v <= 1.0) ? nullptr : "outside [0,1]";
}
const char* check_nonnegative_rate(double v) {
  return v >= 0.0 ? nullptr : "is a negative rate";
}
const char* check_open_unit_interval(double v) {
  return (v > 0.0 && v < 1.0) ? nullptr : "outside (0,1)";
}
const char* check_p_index(double v) {
  return v > 1.0 ? nullptr : "must be > 1";
}

struct NumericAxisDef {
  const char* name;
  void (*set)(Params&, double);
  /// nullptr = unconstrained; else rejects bad values at
  /// spec-validation time instead of surfacing as NaN/negative rates
  /// deep in a backend.
  const char* (*check)(double);
};

constexpr NumericAxisDef kNumericAxes[] = {
    {"lambda_join", [](Params& p, double v) { p.lambda_join = v; },
     check_nonnegative_rate},
    {"mu_leave", [](Params& p, double v) { p.mu_leave = v; },
     check_nonnegative_rate},
    {"lambda_q", [](Params& p, double v) { p.lambda_q = v; },
     check_nonnegative_rate},
    {"lambda_c", [](Params& p, double v) { p.lambda_c = v; },
     check_nonnegative_rate},
    {"p_index", [](Params& p, double v) { p.p_index = v; }, check_p_index},
    {"p1", [](Params& p, double v) { p.p1 = v; }, check_unit_interval},
    {"p2", [](Params& p, double v) { p.p2 = v; }, check_unit_interval},
    {"host_ids_error",
     [](Params& p, double v) {
       p.p1 = v;
       p.p2 = v;
     },
     check_unit_interval},
    {"byzantine_fraction",
     [](Params& p, double v) { p.byzantine_fraction = v; },
     check_open_unit_interval},
    {"n_init",
     [](Params& p, double v) { p.n_init = static_cast<std::int32_t>(v); },
     nullptr},
};

const NumericAxisDef* find_numeric_axis(const std::string& name) {
  for (const auto& def : kNumericAxes) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

/// Pluggable-model axes: levels are detector/attacker kind names and
/// apply by swapping Params::detector.kind / Params::attacker.kind
/// (the model's knobs come from the base point).
bool is_model_axis(const std::string& name) {
  return name == "detector_model" || name == "attacker_model";
}

bool is_categorical_axis(const std::string& name) {
  return name == "detection_shape" || name == "attacker_shape" ||
         is_model_axis(name);
}

bool is_known_axis(const std::string& name) {
  return name == "t_ids" || name == "num_voters" ||
         is_categorical_axis(name) || find_numeric_axis(name) != nullptr;
}

ids::DetectorKind detector_kind_from(const std::string& name,
                                     const std::string& path) {
  try {
    return ids::detector_kind_from_string(name);
  } catch (const std::exception& e) {
    fail(path, e.what());
  }
}

sim::AttackerKind attacker_kind_from(const std::string& name,
                                     const std::string& path) {
  try {
    return sim::attacker_kind_from_string(name);
  } catch (const std::exception& e) {
    fail(path, e.what());
  }
}

/// "spec.grid.axes[i]" — every axis-level error anchors here.
std::string axis_path(std::size_t i) {
  return "spec.grid.axes[" + std::to_string(i) + "]";
}

void check_axis(const AxisSpec& axis, std::size_t i) {
  const std::string path = axis_path(i);
  if (!is_known_axis(axis.param)) {
    fail(path + ".param", "unknown axis parameter '" + axis.param + "'");
  }
  if (is_categorical_axis(axis.param)) {
    if (!axis.values.empty()) {
      fail(path + ".values",
           "categorical axis '" + axis.param + "' takes levels, not values");
    }
    if (axis.levels.empty()) {
      fail(path + ".levels", "axis '" + axis.param + "' has no levels");
    }
    for (std::size_t k = 0; k < axis.levels.size(); ++k) {
      const std::string level_path =
          path + ".levels[" + std::to_string(k) + "]";
      if (axis.param == "detector_model") {
        (void)detector_kind_from(axis.levels[k], level_path);
      } else if (axis.param == "attacker_model") {
        (void)attacker_kind_from(axis.levels[k], level_path);
      } else {
        (void)shape_from(axis.levels[k], level_path);
      }
    }
    return;
  }
  if (!axis.levels.empty()) {
    fail(path + ".levels",
         "numeric axis '" + axis.param + "' takes values, not levels");
  }
  if (axis.values.empty()) {
    fail(path + ".values", "axis '" + axis.param + "' has no values");
  }
  if (axis.param == "num_voters" || axis.param == "n_init") {
    for (std::size_t k = 0; k < axis.values.size(); ++k) {
      const double v = axis.values[k];
      if (!(v >= 1.0) || v != std::floor(v)) {
        fail(path + ".values[" + std::to_string(k) + "]",
             "axis '" + axis.param + "' needs positive integers");
      }
    }
  }
  if (axis.param == "t_ids") {
    for (std::size_t k = 0; k < axis.values.size(); ++k) {
      if (!(axis.values[k] > 0.0)) {
        fail(path + ".values[" + std::to_string(k) + "]",
             fmt_value(axis.values[k]) + " must be positive");
      }
    }
  }
  if (const NumericAxisDef* def = find_numeric_axis(axis.param);
      def != nullptr && def->check != nullptr) {
    for (std::size_t k = 0; k < axis.values.size(); ++k) {
      if (const char* err = def->check(axis.values[k])) {
        fail(path + ".values[" + std::to_string(k) + "]",
             fmt_value(axis.values[k]) + " " + err);
      }
    }
  }
}

}  // namespace

std::string to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::Analytic: return "analytic";
    case BackendKind::Des: return "des";
    case BackendKind::ProtocolSim: return "protocol_sim";
  }
  return "?";
}

std::string to_string(ShardSpec::Policy policy) {
  switch (policy) {
    case ShardSpec::Policy::All: return "all";
    case ShardSpec::Policy::Contiguous: return "contiguous";
    case ShardSpec::Policy::ByStructure: return "by_structure";
    case ShardSpec::Policy::ByPilotCost: return "by_pilot_cost";
    case ShardSpec::Policy::Explicit: return "explicit";
  }
  return "?";
}

std::vector<std::string> numeric_axis_params() {
  std::vector<std::string> out;
  for (const auto& def : kNumericAxes) out.emplace_back(def.name);
  return out;
}

// --- Params codec. ----------------------------------------------------

util::Json params_to_json(const Params& p) {
  auto j = util::Json::object();
  j.set("n_init", util::Json(static_cast<double>(p.n_init)));
  j.set("lambda_join", util::Json::number(p.lambda_join));
  j.set("mu_leave", util::Json::number(p.mu_leave));
  j.set("lambda_q", util::Json::number(p.lambda_q));
  j.set("attacker_shape", util::Json(ids::to_string(p.attacker_shape)));
  j.set("lambda_c", util::Json::number(p.lambda_c));
  j.set("p_index", util::Json::number(p.p_index));
  j.set("attacker_progress", util::Json(progress_name(p.attacker_progress)));
  // The attacker model descriptor is always serialised in full (every
  // knob, whatever the kind) so canonical round-trips are byte-stable
  // across kind changes.
  auto attacker = util::Json::object();
  attacker.set("kind", util::Json(sim::to_string(p.attacker.kind)));
  attacker.set("burst_on_s", util::Json::number(p.attacker.burst_on_s));
  attacker.set("burst_off_s", util::Json::number(p.attacker.burst_off_s));
  attacker.set("batch", util::Json(static_cast<double>(p.attacker.batch)));
  j.set("attacker", std::move(attacker));
  j.set("detection_shape", util::Json(ids::to_string(p.detection_shape)));
  j.set("t_ids", util::Json::number(p.t_ids));
  j.set("num_voters", util::Json(static_cast<double>(p.num_voters)));
  j.set("p1", util::Json::number(p.p1));
  j.set("p2", util::Json::number(p.p2));
  // Detector model descriptor: always full, like "attacker" above.
  auto detector = util::Json::object();
  detector.set("kind", util::Json(ids::to_string(p.detector.kind)));
  detector.set("entropy_weight",
               util::Json::number(p.detector.entropy_weight));
  detector.set("cusum_gain", util::Json::number(p.detector.cusum_gain));
  detector.set("cusum_drift", util::Json::number(p.detector.cusum_drift));
  detector.set("cusum_threshold",
               util::Json::number(p.detector.cusum_threshold));
  detector.set("cusum_alarm_factor",
               util::Json::number(p.detector.cusum_alarm_factor));
  detector.set("logistic_bias", util::Json::number(p.detector.logistic_bias));
  detector.set("logistic_compromise_weight",
               util::Json::number(p.detector.logistic_compromise_weight));
  detector.set("logistic_time_weight",
               util::Json::number(p.detector.logistic_time_weight));
  j.set("detector", std::move(detector));
  j.set("byzantine_fraction", util::Json::number(p.byzantine_fraction));
  j.set("max_groups", util::Json(static_cast<double>(p.max_groups)));
  j.set("partition_rates", numbers_to_json(p.partition_rates));
  j.set("merge_rates", numbers_to_json(p.merge_rates));

  auto cost = util::Json::object();
  cost.set("data_packet_bits", util::Json::number(p.cost.data_packet_bits));
  cost.set("status_packet_bits",
           util::Json::number(p.cost.status_packet_bits));
  cost.set("vote_packet_bits", util::Json::number(p.cost.vote_packet_bits));
  cost.set("beacon_bits", util::Json::number(p.cost.beacon_bits));
  cost.set("status_exchange_rate",
           util::Json::number(p.cost.status_exchange_rate));
  cost.set("beacon_rate", util::Json::number(p.cost.beacon_rate));
  cost.set("mean_hops", util::Json::number(p.cost.mean_hops));
  cost.set("mean_degree", util::Json::number(p.cost.mean_degree));
  cost.set("bandwidth_bps", util::Json::number(p.cost.bandwidth_bps));
  auto rekey = util::Json::object();
  rekey.set("key_element_bits",
            util::Json::number(p.cost.rekey.key_element_bits));
  rekey.set("mean_hops", util::Json::number(p.cost.rekey.mean_hops));
  rekey.set("bandwidth_bps", util::Json::number(p.cost.rekey.bandwidth_bps));
  cost.set("rekey", std::move(rekey));
  j.set("cost", std::move(cost));
  j.set("schedule", schedule_to_json(p.schedule));
  j.set("mission", mission_to_json(p.mission));
  return j;
}

Params params_from_json(const util::Json& j, const std::string& path) {
  const Reader r{j, path};
  Params p;
  p.n_init = static_cast<std::int32_t>(r.size("n_init"));
  p.lambda_join = r.number("lambda_join");
  p.mu_leave = r.number("mu_leave");
  p.lambda_q = r.number("lambda_q");
  p.attacker_shape =
      shape_from(r.str("attacker_shape"), path + ".attacker_shape");
  p.lambda_c = r.number("lambda_c");
  p.p_index = r.number("p_index");
  p.attacker_progress = progress_from(r.str("attacker_progress"),
                                      path + ".attacker_progress");
  const Reader attacker = r.child("attacker");
  p.attacker.kind =
      attacker_kind_from(attacker.str("kind"), path + ".attacker.kind");
  p.attacker.burst_on_s = attacker.number("burst_on_s");
  p.attacker.burst_off_s = attacker.number("burst_off_s");
  p.attacker.batch = static_cast<std::int64_t>(attacker.size("batch"));
  p.detection_shape =
      shape_from(r.str("detection_shape"), path + ".detection_shape");
  p.t_ids = r.number("t_ids");
  p.num_voters = static_cast<std::int64_t>(r.size("num_voters"));
  p.p1 = r.number("p1");
  p.p2 = r.number("p2");
  const Reader detector = r.child("detector");
  p.detector.kind =
      detector_kind_from(detector.str("kind"), path + ".detector.kind");
  p.detector.entropy_weight = detector.number("entropy_weight");
  p.detector.cusum_gain = detector.number("cusum_gain");
  p.detector.cusum_drift = detector.number("cusum_drift");
  p.detector.cusum_threshold = detector.number("cusum_threshold");
  p.detector.cusum_alarm_factor = detector.number("cusum_alarm_factor");
  p.detector.logistic_bias = detector.number("logistic_bias");
  p.detector.logistic_compromise_weight =
      detector.number("logistic_compromise_weight");
  p.detector.logistic_time_weight = detector.number("logistic_time_weight");
  p.byzantine_fraction = r.number("byzantine_fraction");
  p.max_groups = static_cast<std::int32_t>(r.size("max_groups"));
  p.partition_rates = r.numbers("partition_rates");
  p.merge_rates = r.numbers("merge_rates");

  const Reader cost = r.child("cost");
  p.cost.data_packet_bits = cost.number("data_packet_bits");
  p.cost.status_packet_bits = cost.number("status_packet_bits");
  p.cost.vote_packet_bits = cost.number("vote_packet_bits");
  p.cost.beacon_bits = cost.number("beacon_bits");
  p.cost.status_exchange_rate = cost.number("status_exchange_rate");
  p.cost.beacon_rate = cost.number("beacon_rate");
  p.cost.mean_hops = cost.number("mean_hops");
  p.cost.mean_degree = cost.number("mean_degree");
  p.cost.bandwidth_bps = cost.number("bandwidth_bps");
  const Reader rekey = cost.child("rekey");
  p.cost.rekey.key_element_bits = rekey.number("key_element_bits");
  p.cost.rekey.mean_hops = rekey.number("mean_hops");
  p.cost.rekey.bandwidth_bps = rekey.number("bandwidth_bps");
  // Optional on read (pre-PR-9 spec documents carry neither field);
  // absent = the constant model.
  if (const util::Json* sched = j.find("schedule")) {
    p.schedule = schedule_from_json(*sched, path + ".schedule");
  }
  if (const util::Json* mission = j.find("mission")) {
    p.mission = mission_from_json(*mission, path + ".mission");
  }
  return p;
}

// --- Spec (de)serialisation. ------------------------------------------

bool ExperimentSpec::wants(BackendKind kind) const {
  return std::find(backends.begin(), backends.end(), kind) != backends.end();
}

GridSpec ExperimentSpec::grid() const {
  GridSpec spec;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const AxisSpec& axis = axes[i];
    check_axis(axis, i);
    try {
      if (axis.param == "t_ids") {
        spec.t_ids(axis.values);
      } else if (axis.param == "num_voters") {
        std::vector<std::int64_t> m;
        m.reserve(axis.values.size());
        for (const double v : axis.values) {
          m.push_back(static_cast<std::int64_t>(v));
        }
        spec.num_voters(std::move(m));
      } else if (axis.param == "detector_model") {
        std::vector<ids::DetectorKind> kinds;
        kinds.reserve(axis.levels.size());
        for (const auto& level : axis.levels) {
          kinds.push_back(detector_kind_from(level, axis_path(i)));
        }
        spec.axis("detector_model", axis.levels,
                  [kinds = std::move(kinds)](Params& p, std::size_t k) {
                    p.detector.kind = kinds[k];
                  });
      } else if (axis.param == "attacker_model") {
        std::vector<sim::AttackerKind> kinds;
        kinds.reserve(axis.levels.size());
        for (const auto& level : axis.levels) {
          kinds.push_back(attacker_kind_from(level, axis_path(i)));
        }
        spec.axis("attacker_model", axis.levels,
                  [kinds = std::move(kinds)](Params& p, std::size_t k) {
                    p.attacker.kind = kinds[k];
                  });
      } else if (is_categorical_axis(axis.param)) {
        std::vector<ids::Shape> shapes;
        shapes.reserve(axis.levels.size());
        for (const auto& level : axis.levels) {
          shapes.push_back(shape_from(level, axis_path(i)));
        }
        if (axis.param == "detection_shape") {
          spec.detection_shape(std::move(shapes));
        } else {
          spec.attacker_shape(std::move(shapes));
        }
      } else {
        const NumericAxisDef* def = find_numeric_axis(axis.param);
        spec.axis(axis.param, axis.values,
                  [set = def->set](Params& p, double v) { set(p, v); });
      }
    } catch (const std::invalid_argument& e) {
      fail(axis_path(i), e.what());
    }
  }
  return spec;
}

ShardRange ExperimentSpec::resolve_range(const GridSpec& g) const {
  switch (shard.policy) {
    case ShardSpec::Policy::All:
      return {0, g.num_points()};
    case ShardSpec::Policy::Contiguous:
      return ShardPlan::contiguous(g.num_points(), shard.num_shards)
          .range(shard.shard_index);
    case ShardSpec::Policy::ByStructure:
      return ShardPlan::by_structure(g, base, shard.num_shards)
          .range(shard.shard_index);
    case ShardSpec::Policy::ByPilotCost:
      return ShardPlan::by_pilot_cost(g, base, shard.num_shards, mc,
                                      shard.pilot_replications)
          .range(shard.shard_index);
    case ShardSpec::Policy::Explicit:
      return shard.range;
  }
  throw std::logic_error("ExperimentSpec: unreachable shard policy");
}

void ExperimentSpec::validate() const {
  // Field-level range checks first, so the error names the exact
  // offending path instead of the generic "spec.base" wrapper below.
  if (const char* err = check_unit_interval(base.p1)) {
    fail("spec.base.p1", fmt_value(base.p1) + " " + err);
  }
  if (const char* err = check_unit_interval(base.p2)) {
    fail("spec.base.p2", fmt_value(base.p2) + " " + err);
  }
  try {
    // These throw "<prefix>.segments[i].<field>: ..." — already fully
    // path-named, so anchor without the generic "spec.base" wrapper.
    base.schedule.validate("spec.base.schedule");
    base.mission.validate("spec.base.mission");
  } catch (const std::exception& e) {
    throw std::invalid_argument("ExperimentSpec: " + std::string(e.what()));
  }
  try {
    base.detector.validate();
    base.attacker.validate();
  } catch (const std::exception& e) {
    // The model validators throw "detector.<field>: <msg>" /
    // "attacker.<field>: <msg>" — anchor the path at spec.base.
    throw std::invalid_argument("ExperimentSpec: spec.base." +
                                std::string(e.what()));
  }
  try {
    base.validate();
  } catch (const std::exception& e) {
    fail("spec.base", e.what());
  }

  for (std::size_t i = 0; i < axes.size(); ++i) {
    check_axis(axes[i], i);
    for (std::size_t k = 0; k < i; ++k) {
      if (axes[k].param == axes[i].param) {
        fail(axis_path(i) + ".param",
             "duplicate axis '" + axes[i].param + "'");
      }
    }
  }

  if (backends.empty()) {
    fail("spec.backends", "at least one backend is required");
  }

  // The analytic backend solves a time-homogeneous CTMC; any point of
  // the grid carrying a model outside that class must be rejected HERE,
  // by name, with the routing advice — not as a solver failure later.
  if (wants(BackendKind::Analytic)) {
    const auto reject_detector = [&](ids::DetectorKind kind,
                                     const std::string& path) {
      ids::DetectorModel probe;
      probe.kind = kind;
      if (!probe.analytic_compatible()) {
        fail(path, std::string("detector model '") + ids::to_string(kind) +
                       "' is time-dependent and outside the analytic SPN; "
                       "drop 'analytic' from spec.backends and "
                       "cross-validate with des/protocol_sim — or, if the "
                       "time dependence is piecewise-constant, express it "
                       "with the first-class spec.base.schedule / "
                       "spec.base.mission fields, which the analytic "
                       "backend chains exactly");
      }
    };
    const auto reject_attacker = [&](sim::AttackerKind kind,
                                     const std::string& path) {
      sim::AttackerModel probe;
      probe.kind = kind;
      if (!probe.analytic_compatible()) {
        fail(path, std::string("attacker model '") + sim::to_string(kind) +
                       "' is not a memoryless single-victim process and "
                       "outside the analytic SPN; drop 'analytic' from "
                       "spec.backends and cross-validate with "
                       "des/protocol_sim");
      }
    };
    reject_detector(base.detector.kind, "spec.base.detector.kind");
    reject_attacker(base.attacker.kind, "spec.base.attacker.kind");
    for (std::size_t i = 0; i < axes.size(); ++i) {
      if (!is_model_axis(axes[i].param)) continue;
      for (std::size_t k = 0; k < axes[i].levels.size(); ++k) {
        const std::string path =
            axis_path(i) + ".levels[" + std::to_string(k) + "]";
        if (axes[i].param == "detector_model") {
          reject_detector(detector_kind_from(axes[i].levels[k], path), path);
        } else {
          reject_attacker(attacker_kind_from(axes[i].levels[k], path), path);
        }
      }
    }
  }
  if (analytic.batch == 0) {
    fail("spec.analytic.batch", "must be positive (1 = scalar path)");
  }
  for (std::size_t i = 0; i < backends.size(); ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      if (backends[k] == backends[i]) {
        fail("spec.backends[" + std::to_string(i) + "]",
             "duplicate backend '" + to_string(backends[i]) + "'");
      }
    }
  }

  if (mc.min_replications == 0) {
    fail("spec.mc.min_replications", "must be positive");
  }
  if (mc.block == 0) fail("spec.mc.block", "must be positive");
  if (mc.block > mc.max_replications) {
    fail("spec.mc.block",
         "block (" + std::to_string(mc.block) + ") exceeds max_replications (" +
             std::to_string(mc.max_replications) + ")");
  }
  if (mc.min_replications > mc.max_replications) {
    fail("spec.mc.min_replications",
         "min_replications (" + std::to_string(mc.min_replications) +
             ") exceeds max_replications (" +
             std::to_string(mc.max_replications) + ")");
  }
  for (std::size_t i = 0; i < mc.survival_horizons.size(); ++i) {
    if (!(mc.survival_horizons[i] >= 0.0)) {
      fail("spec.mc.survival_horizons[" + std::to_string(i) + "]",
           "horizons must be non-negative");
    }
  }

  if (vr.any()) {
    // Structural checks first (throws "spec.mc.vr.<field>: ..." —
    // already fully path-named, so anchor like the schedule validator).
    try {
      vr.validate("spec.mc.vr");
    } catch (const std::exception& e) {
      throw std::invalid_argument("ExperimentSpec: " +
                                  std::string(e.what()));
    }
    if (!wants(BackendKind::Des)) {
      fail("spec.mc.vr",
           "variance reduction layers over the des backend; add \"des\" "
           "to spec.backends");
    }
    if (vr.sobol.enabled && mc.antithetic) {
      fail("spec.mc.vr.sobol",
           "Sobol substreams replace the whole draw stream and cannot "
           "compose with spec.mc.antithetic pair flipping; disable one");
    }
    if (vr.cv.enabled) {
      // The control means come from the analytic SPN solution, so the
      // cv estimator inherits the analytic backend's model class.
      if (base.time_varying()) {
        fail("spec.mc.vr.cv",
             "control variates need the exact analytic control means of "
             "the time-homogeneous model; spec.base carries a "
             "schedule/mission");
      }
      if (!base.detector.analytic_compatible()) {
        fail("spec.mc.vr.cv",
             std::string("detector model '") +
                 ids::to_string(base.detector.kind) +
                 "' has no analytic control means; use a static/entropy "
                 "detector or disable cv");
      }
      if (!base.attacker.analytic_compatible()) {
        fail("spec.mc.vr.cv",
             std::string("attacker model '") +
                 sim::to_string(base.attacker.kind) +
                 "' has no analytic control means; use a poisson "
                 "attacker or disable cv");
      }
      for (std::size_t i = 0; i < axes.size(); ++i) {
        if (!is_model_axis(axes[i].param)) continue;
        for (std::size_t k = 0; k < axes[i].levels.size(); ++k) {
          const std::string path =
              axis_path(i) + ".levels[" + std::to_string(k) + "]";
          const bool ok =
              axes[i].param == "detector_model"
                  ? [&] {
                      ids::DetectorModel probe;
                      probe.kind =
                          detector_kind_from(axes[i].levels[k], path);
                      return probe.analytic_compatible();
                    }()
                  : [&] {
                      sim::AttackerModel probe;
                      probe.kind =
                          attacker_kind_from(axes[i].levels[k], path);
                      return probe.analytic_compatible();
                    }();
          if (!ok) {
            fail(path,
                 "model level '" + axes[i].levels[k] +
                     "' has no analytic control means required by "
                     "spec.mc.vr.cv");
          }
        }
      }
    }
  }

  if (wants(BackendKind::ProtocolSim)) {
    if (!(protocol.tick_s > 0.0)) {
      fail("spec.protocol.tick_s", "must be positive");
    }
    if (protocol.topology_refresh_s < protocol.tick_s) {
      fail("spec.protocol.topology_refresh_s",
           "must be at least tick_s");
    }
  }

  const std::size_t points = grid().num_points();
  if (shard.policy != ShardSpec::Policy::All) {
    if (shard.num_shards == 0) {
      fail("spec.shard.num_shards", "must be positive");
    }
    if (shard.policy == ShardSpec::Policy::Explicit) {
      if (shard.range.begin > shard.range.end) {
        fail("spec.shard.range.begin",
             "begin " + std::to_string(shard.range.begin) +
                 " exceeds end " + std::to_string(shard.range.end));
      }
      if (shard.range.end > points) {
        fail("spec.shard.range.end",
             "end " + std::to_string(shard.range.end) + " outside the " +
                 std::to_string(points) + "-point grid");
      }
    } else if (shard.shard_index >= shard.num_shards) {
      fail("spec.shard.shard_index",
           "shard_index " + std::to_string(shard.shard_index) +
               " out of range (num_shards " +
               std::to_string(shard.num_shards) + ")");
    }
  }

  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const auto& known = known_metrics();
    if (std::find(known.begin(), known.end(), metrics[i]) == known.end()) {
      fail("spec.metrics[" + std::to_string(i) + "]",
           "unknown metric '" + metrics[i] + "'");
    }
  }
}

util::Json ExperimentSpec::to_json() const {
  auto j = util::Json::object();
  j.set("format", util::Json(kSpecFormat));
  j.set("name", util::Json(name));
  j.set("mode", util::Json(mode));
  j.set("base", params_to_json(base));

  auto grid_json = util::Json::object();
  auto axes_json = util::Json::array();
  for (const auto& axis : axes) {
    auto a = util::Json::object();
    a.set("param", util::Json(axis.param));
    if (is_categorical_axis(axis.param)) {
      auto levels = util::Json::array();
      for (const auto& level : axis.levels) levels.push_back(util::Json(level));
      a.set("levels", std::move(levels));
    } else {
      a.set("values", numbers_to_json(axis.values));
    }
    axes_json.push_back(std::move(a));
  }
  grid_json.set("axes", std::move(axes_json));
  j.set("grid", std::move(grid_json));

  auto backends_json = util::Json::array();
  for (const BackendKind kind : backends) {
    backends_json.push_back(util::Json(to_string(kind)));
  }
  j.set("backends", std::move(backends_json));

  auto analytic_json = util::Json::object();
  analytic_json.set("batch",
                    json_size(analytic.batch, "spec.analytic.batch"));
  j.set("analytic", std::move(analytic_json));

  auto mc_json = util::Json::object();
  mc_json.set("base_seed", json_size(mc.base_seed, "spec.mc.base_seed"));
  mc_json.set("min_replications",
              json_size(mc.min_replications, "spec.mc.min_replications"));
  mc_json.set("max_replications",
              json_size(mc.max_replications, "spec.mc.max_replications"));
  mc_json.set("block", json_size(mc.block, "spec.mc.block"));
  mc_json.set("rel_ci_target", util::Json::number(mc.rel_ci_target));
  mc_json.set("crn", util::Json(mc.crn));
  mc_json.set("point_stream_offset",
              json_size(mc.point_stream_offset,
                        "spec.mc.point_stream_offset"));
  mc_json.set("antithetic", util::Json(mc.antithetic));
  mc_json.set("threads", json_size(mc.threads, "spec.mc.threads"));
  mc_json.set("capture_trajectories", util::Json(mc.capture_trajectories));
  mc_json.set("survival_horizons", numbers_to_json(mc.survival_horizons));
  // Emitted only when the vr layer is on: a default spec's bytes (and
  // every pre-vr golden) stay untouched.
  if (vr.any()) mc_json.set("vr", vr_options_to_json(vr));
  j.set("mc", std::move(mc_json));

  auto protocol_json = util::Json::object();
  auto mobility = util::Json::object();
  mobility.set("field_radius_m",
               util::Json::number(protocol.mobility.field_radius_m));
  mobility.set("speed_min_mps",
               util::Json::number(protocol.mobility.speed_min_mps));
  mobility.set("speed_max_mps",
               util::Json::number(protocol.mobility.speed_max_mps));
  mobility.set("pause_max_s",
               util::Json::number(protocol.mobility.pause_max_s));
  protocol_json.set("mobility", std::move(mobility));
  protocol_json.set("radio_range_m",
                    util::Json::number(protocol.radio_range_m));
  protocol_json.set("tick_s", util::Json::number(protocol.tick_s));
  protocol_json.set("topology_refresh_s",
                    util::Json::number(protocol.topology_refresh_s));
  protocol_json.set("max_time_s", util::Json::number(protocol.max_time_s));
  j.set("protocol", std::move(protocol_json));

  auto shard_json = util::Json::object();
  shard_json.set("policy", util::Json(to_string(shard.policy)));
  shard_json.set("num_shards",
                 json_size(shard.num_shards, "spec.shard.num_shards"));
  shard_json.set("shard_index",
                 json_size(shard.shard_index, "spec.shard.shard_index"));
  shard_json.set("pilot_replications",
                 json_size(shard.pilot_replications,
                           "spec.shard.pilot_replications"));
  auto range_json = util::Json::object();
  range_json.set("begin",
                 json_size(shard.range.begin, "spec.shard.range.begin"));
  range_json.set("end", json_size(shard.range.end, "spec.shard.range.end"));
  shard_json.set("range", std::move(range_json));
  j.set("shard", std::move(shard_json));

  auto metrics_json = util::Json::array();
  for (const auto& metric : metrics) metrics_json.push_back(util::Json(metric));
  j.set("metrics", std::move(metrics_json));
  return j;
}

ExperimentSpec ExperimentSpec::from_json(const util::Json& j) {
  const Reader r{j, "spec"};
  if (r.str("format") != kSpecFormat) {
    fail("spec.format", "unknown format '" + r.str("format") +
                            "' (expected " + kSpecFormat + ")");
  }
  ExperimentSpec spec;
  spec.name = r.str("name");
  spec.mode = r.str("mode");
  spec.base = params_from_json(r.at("base"), "spec.base");

  const Reader grid = r.child("grid");
  const auto& axes_json = grid.at("axes");
  if (axes_json.type() != util::Json::Type::Array) {
    fail("spec.grid.axes", "expected an array");
  }
  spec.axes.clear();
  for (std::size_t i = 0; i < axes_json.size(); ++i) {
    const Reader a{axes_json.at(i), axis_path(i)};
    AxisSpec axis;
    axis.param = a.str("param");
    if (!is_known_axis(axis.param)) {
      fail(axis_path(i) + ".param",
           "unknown axis parameter '" + axis.param + "'");
    }
    if (is_categorical_axis(axis.param)) {
      axis.levels = a.strings("levels");
    } else {
      axis.values = a.numbers("values");
    }
    check_axis(axis, i);
    spec.axes.push_back(std::move(axis));
  }

  spec.backends.clear();
  const auto backend_names = r.strings("backends");
  for (std::size_t i = 0; i < backend_names.size(); ++i) {
    spec.backends.push_back(backend_from(
        backend_names[i], "spec.backends[" + std::to_string(i) + "]"));
  }

  const Reader analytic = r.child("analytic");
  spec.analytic.batch = analytic.size("batch");

  const Reader mc = r.child("mc");
  spec.mc.base_seed = mc.size("base_seed");
  spec.mc.min_replications = mc.size("min_replications");
  spec.mc.max_replications = mc.size("max_replications");
  spec.mc.block = mc.size("block");
  spec.mc.rel_ci_target = mc.number("rel_ci_target");
  spec.mc.crn = mc.boolean("crn");
  spec.mc.point_stream_offset = mc.size("point_stream_offset");
  spec.mc.antithetic = mc.boolean("antithetic");
  spec.mc.threads = mc.size("threads");
  spec.mc.capture_trajectories = mc.boolean("capture_trajectories");
  spec.mc.survival_horizons = mc.numbers("survival_horizons");
  // Optional (pre-vr files carry no "vr" key and parse unchanged).
  if (const util::Json* vr_json = mc.j.find("vr")) {
    spec.vr = vr_options_from_json(*vr_json, "spec.mc.vr");
  }

  const Reader protocol = r.child("protocol");
  const Reader mobility = protocol.child("mobility");
  spec.protocol.mobility.field_radius_m = mobility.number("field_radius_m");
  spec.protocol.mobility.speed_min_mps = mobility.number("speed_min_mps");
  spec.protocol.mobility.speed_max_mps = mobility.number("speed_max_mps");
  spec.protocol.mobility.pause_max_s = mobility.number("pause_max_s");
  spec.protocol.radio_range_m = protocol.number("radio_range_m");
  spec.protocol.tick_s = protocol.number("tick_s");
  spec.protocol.topology_refresh_s = protocol.number("topology_refresh_s");
  spec.protocol.max_time_s = protocol.number("max_time_s");

  const Reader shard = r.child("shard");
  spec.shard.policy = policy_from(shard.str("policy"), "spec.shard.policy");
  spec.shard.num_shards = shard.size("num_shards");
  spec.shard.shard_index = shard.size("shard_index");
  spec.shard.pilot_replications = shard.size("pilot_replications");
  const Reader range = shard.child("range");
  spec.shard.range = {range.size("begin"), range.size("end")};

  spec.metrics = r.strings("metrics");

  spec.validate();
  return spec;
}

// --- Result payload codecs (shared with the legacy shard files). ------

util::Json evaluation_to_json(const Evaluation& e) {
  auto j = util::Json::object();
  j.set("mttsf", util::Json::number(e.mttsf));
  j.set("ctotal", util::Json::number(e.ctotal));
  j.set("cost_group_comm", util::Json::number(e.cost_rates.group_comm));
  j.set("cost_status", util::Json::number(e.cost_rates.status));
  j.set("cost_rekey", util::Json::number(e.cost_rates.rekey));
  j.set("cost_ids", util::Json::number(e.cost_rates.ids));
  j.set("cost_beacon", util::Json::number(e.cost_rates.beacon));
  j.set("cost_partition_merge",
        util::Json::number(e.cost_rates.partition_merge));
  j.set("eviction_cost_rate", util::Json::number(e.eviction_cost_rate));
  j.set("p_failure_c1", util::Json::number(e.p_failure_c1));
  j.set("p_failure_c2", util::Json::number(e.p_failure_c2));
  j.set("num_states", util::Json(static_cast<double>(e.num_states)));
  j.set("solver_blocks", util::Json(static_cast<double>(e.solver_blocks)));
  return j;
}

Evaluation evaluation_from_json(const util::Json& j) {
  Evaluation e;
  e.mttsf = j.at("mttsf").to_double();
  e.ctotal = j.at("ctotal").to_double();
  e.cost_rates.group_comm = j.at("cost_group_comm").to_double();
  e.cost_rates.status = j.at("cost_status").to_double();
  e.cost_rates.rekey = j.at("cost_rekey").to_double();
  e.cost_rates.ids = j.at("cost_ids").to_double();
  e.cost_rates.beacon = j.at("cost_beacon").to_double();
  e.cost_rates.partition_merge = j.at("cost_partition_merge").to_double();
  e.eviction_cost_rate = j.at("eviction_cost_rate").to_double();
  e.p_failure_c1 = j.at("p_failure_c1").to_double();
  e.p_failure_c2 = j.at("p_failure_c2").to_double();
  e.num_states = j.at("num_states").as_size();
  e.solver_blocks = j.at("solver_blocks").as_size();
  return e;
}

namespace {

util::Json welford_to_json(const sim::WelfordState& s) {
  auto j = util::Json::object();
  j.set("n", util::Json(static_cast<double>(s.n)));
  j.set("mean", util::Json::number(s.mean));
  j.set("m2", util::Json::number(s.m2));
  return j;
}

sim::WelfordState welford_from_json(const util::Json& j) {
  return {j.at("n").as_size(), j.at("mean").to_double(),
          j.at("m2").to_double()};
}

}  // namespace

util::Json mc_point_to_json(const sim::McPointResult& r) {
  auto j = util::Json::object();
  // Raw accumulator states and counts only: the reader re-derives the
  // Summary fields, which is what makes cross-process results bitwise.
  j.set("ttsf", welford_to_json(r.ttsf_state));
  j.set("cost_rate", welford_to_json(r.cost_rate_state));
  j.set("replications", util::Json(static_cast<double>(r.replications)));
  j.set("failures_c1", util::Json(static_cast<double>(r.failures_c1)));
  j.set("converged", util::Json(r.converged));
  j.set("keys_always_agreed", util::Json(r.keys_always_agreed));
  j.set("timeouts", util::Json(static_cast<double>(r.timeouts)));
  auto survival = util::Json::array();
  for (const std::size_t count : r.survival_counts) {
    survival.push_back(util::Json(static_cast<double>(count)));
  }
  j.set("survival_counts", std::move(survival));
  return j;
}

sim::McPointResult mc_point_from_json(const util::Json& j) {
  sim::McPointResult r;
  r.ttsf_state = welford_from_json(j.at("ttsf"));
  r.cost_rate_state = welford_from_json(j.at("cost_rate"));
  r.ttsf = sim::Welford::from_state(r.ttsf_state).summary();
  r.cost_rate = sim::Welford::from_state(r.cost_rate_state).summary();
  r.replications = j.at("replications").as_size();
  r.failures_c1 = j.at("failures_c1").as_size();
  r.p_failure_c1 = r.replications > 0
                       ? static_cast<double>(r.failures_c1) /
                             static_cast<double>(r.replications)
                       : 0.0;
  r.p_failure = sim::binomial_summary(r.replications, r.failures_c1);
  r.converged = j.at("converged").as_bool();
  r.keys_always_agreed = j.at("keys_always_agreed").as_bool();
  r.timeouts = j.at("timeouts").as_size();
  for (const auto& count : j.at("survival_counts").elements()) {
    r.survival_counts.push_back(count.as_size());
    r.survival.push_back(
        sim::binomial_summary(r.replications, r.survival_counts.back()));
  }
  return r;
}

util::Json mc_stats_to_json(const sim::MonteCarloEngine::Stats& s) {
  auto j = util::Json::object();
  j.set("points", util::Json(static_cast<double>(s.points)));
  j.set("replications", util::Json(static_cast<double>(s.replications)));
  j.set("blocks", util::Json(static_cast<double>(s.blocks)));
  j.set("rounds", util::Json(static_cast<double>(s.rounds)));
  j.set("seconds", util::Json::number(s.seconds));
  return j;
}

sim::MonteCarloEngine::Stats mc_stats_from_json(const util::Json& j) {
  sim::MonteCarloEngine::Stats s;
  s.points = j.at("points").as_size();
  s.replications = j.at("replications").as_size();
  s.blocks = j.at("blocks").as_size();
  s.rounds = j.at("rounds").as_size();
  s.seconds = j.at("seconds").to_double();
  return s;
}

namespace {

// The vr codecs follow the mc-point convention: raw accumulator states,
// replicate estimates, and counts only — every Summary is re-derived on
// read, which keeps round-trips and shard merges bitwise.

util::Json cv_metric_to_json(const vr::CvMetric& m) {
  auto j = util::Json::object();
  j.set("beta", util::Json::number(m.beta));
  j.set("control_mean", util::Json::number(m.control_mean));
  j.set("correlation", util::Json::number(m.correlation));
  j.set("plain", welford_to_json(m.plain_state));
  j.set("adjusted", welford_to_json(m.adjusted_state));
  return j;
}

vr::CvMetric cv_metric_from_json(const util::Json& j) {
  vr::CvMetric m;
  m.beta = j.at("beta").to_double();
  m.control_mean = j.at("control_mean").to_double();
  m.correlation = j.at("correlation").to_double();
  m.plain_state = welford_from_json(j.at("plain"));
  m.adjusted_state = welford_from_json(j.at("adjusted"));
  m.finalize();
  return m;
}

util::Json doubles_json(const std::vector<double>& values) {
  auto a = util::Json::array();
  for (const double v : values) a.push_back(util::Json::number(v));
  return a;
}

std::vector<double> doubles_from_json(const util::Json& j) {
  std::vector<double> out;
  out.reserve(j.size());
  for (const auto& v : j.elements()) out.push_back(v.to_double());
  return out;
}

}  // namespace

util::Json vr_point_to_json(const vr::VrPointResult& r) {
  auto j = util::Json::object();
  if (r.has_sobol) {
    auto s = util::Json::object();
    s.set("replicates",
          util::Json(static_cast<double>(r.sobol.replicates)));
    s.set("samples_per_replicate",
          util::Json(static_cast<double>(r.sobol.samples_per_replicate)));
    s.set("ttsf_means", doubles_json(r.sobol.ttsf_means));
    s.set("cost_rate_means", doubles_json(r.sobol.cost_rate_means));
    j.set("sobol", std::move(s));
  }
  if (r.has_cv) {
    auto c = util::Json::object();
    c.set("pilot", util::Json(static_cast<double>(r.cv.pilot)));
    c.set("replications",
          util::Json(static_cast<double>(r.cv.replications)));
    c.set("ttsf", cv_metric_to_json(r.cv.ttsf));
    c.set("cost", cv_metric_to_json(r.cv.cost));
    j.set("cv", std::move(c));
  }
  if (r.has_splitting) {
    auto s = util::Json::object();
    s.set("target", util::Json(r.splitting.target));
    s.set("scheme", util::Json(r.splitting.scheme));
    s.set("replicates",
          util::Json(static_cast<double>(r.splitting.replicates)));
    s.set("effort", util::Json(static_cast<double>(r.splitting.effort)));
    s.set("trajectories",
          util::Json(static_cast<double>(r.splitting.trajectories)));
    s.set("estimates", doubles_json(r.splitting.estimates));
    auto levels = util::Json::array();
    for (const auto& lv : r.splitting.levels) {
      auto l = util::Json::object();
      l.set("threshold", util::Json(static_cast<double>(lv.threshold)));
      l.set("p_up", util::Json::number(lv.p_up));
      l.set("p_absorb", util::Json::number(lv.p_absorb));
      levels.push_back(std::move(l));
    }
    s.set("levels", std::move(levels));
    j.set("splitting", std::move(s));
  }
  return j;
}

vr::VrPointResult vr_point_from_json(const util::Json& j) {
  vr::VrPointResult r;
  if (const util::Json* s = j.find("sobol")) {
    r.has_sobol = true;
    r.sobol.replicates = s->at("replicates").as_size();
    r.sobol.samples_per_replicate =
        s->at("samples_per_replicate").as_size();
    r.sobol.ttsf_means = doubles_from_json(s->at("ttsf_means"));
    r.sobol.cost_rate_means = doubles_from_json(s->at("cost_rate_means"));
    r.sobol.ttsf = sim::summarize(r.sobol.ttsf_means);
    r.sobol.cost_rate = sim::summarize(r.sobol.cost_rate_means);
  }
  if (const util::Json* c = j.find("cv")) {
    r.has_cv = true;
    r.cv.pilot = c->at("pilot").as_size();
    r.cv.replications = c->at("replications").as_size();
    r.cv.ttsf = cv_metric_from_json(c->at("ttsf"));
    r.cv.cost = cv_metric_from_json(c->at("cost"));
  }
  if (const util::Json* s = j.find("splitting")) {
    r.has_splitting = true;
    r.splitting.target = s->at("target").as_string();
    r.splitting.scheme = s->at("scheme").as_string();
    r.splitting.replicates = s->at("replicates").as_size();
    r.splitting.effort = s->at("effort").as_size();
    r.splitting.trajectories = s->at("trajectories").as_size();
    r.splitting.estimates = doubles_from_json(s->at("estimates"));
    for (const auto& lv : s->at("levels").elements()) {
      vr::SplittingLevel level;
      level.threshold =
          static_cast<std::int64_t>(lv.at("threshold").to_double());
      level.p_up = lv.at("p_up").to_double();
      level.p_absorb = lv.at("p_absorb").to_double();
      r.splitting.levels.push_back(level);
    }
    r.splitting.probability = vr::splitting_probability_summary(
        r.splitting.estimates,
        r.splitting.replicates * r.splitting.effort);
  }
  return r;
}

// --- ExperimentResult. ------------------------------------------------

const BackendRun* ExperimentResult::find(BackendKind kind) const {
  for (const auto& run : backends) {
    if (run.kind == kind) return &run;
  }
  return nullptr;
}

const BackendRun& ExperimentResult::at(BackendKind kind) const {
  const BackendRun* run = find(kind);
  if (run == nullptr) {
    throw std::invalid_argument("ExperimentResult: no '" + to_string(kind) +
                                "' backend in this result");
  }
  return *run;
}

util::Json ExperimentResult::to_json() const {
  auto j = util::Json::object();
  j.set("format", util::Json(kResultFormat));
  // The embedded spec is normalised to the whole grid so every shard of
  // one run carries the IDENTICAL spec document; the slice lives in
  // range/num_shards/shard_index below.
  ExperimentSpec normalised = spec;
  normalised.shard = ShardSpec{};
  j.set("spec", normalised.to_json());
  auto range_json = util::Json::object();
  range_json.set("begin", util::Json(static_cast<double>(range.begin)));
  range_json.set("end", util::Json(static_cast<double>(range.end)));
  j.set("range", std::move(range_json));
  j.set("num_shards", util::Json(static_cast<double>(num_shards)));
  j.set("shard_index", util::Json(static_cast<double>(shard_index)));
  j.set("shard_policy", util::Json(shard_policy));

  auto backends_json = util::Json::array();
  for (const auto& run : backends) {
    auto b = util::Json::object();
    b.set("backend", util::Json(to_string(run.kind)));
    b.set("seconds", util::Json::number(run.seconds));
    if (run.kind == BackendKind::Analytic) {
      auto evals = util::Json::array();
      for (const auto& e : run.evals) evals.push_back(evaluation_to_json(e));
      b.set("evals", std::move(evals));
    } else {
      auto mc = util::Json::array();
      for (const auto& r : run.mc) mc.push_back(mc_point_to_json(r));
      b.set("mc", std::move(mc));
      b.set("mc_stats", mc_stats_to_json(run.mc_stats));
      if (!run.vr.empty()) {
        auto vr_json = util::Json::array();
        for (const auto& v : run.vr) {
          vr_json.push_back(vr_point_to_json(v));
        }
        b.set("vr", std::move(vr_json));
      }
    }
    backends_json.push_back(std::move(b));
  }
  j.set("backends", std::move(backends_json));
  return j;
}

ExperimentResult ExperimentResult::from_json(const util::Json& j) {
  const Reader r{j, "result"};
  if (r.str("format") != kResultFormat) {
    fail("result.format", "unknown format '" + r.str("format") +
                              "' (expected " + kResultFormat + ")");
  }
  ExperimentResult result;
  result.spec = ExperimentSpec::from_json(r.at("spec"));
  const Reader range = r.child("range");
  result.range = {range.size("begin"), range.size("end")};
  result.num_shards = r.size("num_shards");
  result.shard_index = r.size("shard_index");
  result.shard_policy = r.str("shard_policy");

  const auto& backends_json = r.at("backends");
  for (std::size_t i = 0; i < backends_json.size(); ++i) {
    const std::string path = "result.backends[" + std::to_string(i) + "]";
    const Reader b{backends_json.at(i), path};
    BackendRun run;
    run.kind = backend_from(b.str("backend"), path + ".backend");
    run.seconds = b.number("seconds");
    if (run.kind == BackendKind::Analytic) {
      for (const auto& e : b.at("evals").elements()) {
        run.evals.push_back(evaluation_from_json(e));
      }
    } else {
      for (const auto& p : b.at("mc").elements()) {
        run.mc.push_back(mc_point_from_json(p));
      }
      run.mc_stats = mc_stats_from_json(b.at("mc_stats"));
      if (const util::Json* vr_json = b.j.find("vr")) {
        for (const auto& v : vr_json->elements()) {
          run.vr.push_back(vr_point_from_json(v));
        }
      }
    }
    result.backends.push_back(std::move(run));
  }
  return result;
}

util::Json ExperimentResult::canonical_json() const {
  ExperimentResult c = *this;
  for (auto& run : c.backends) {
    run.seconds = 0.0;
    run.mc_stats.seconds = 0.0;
    // parallel_for batching rounds depend on how many points one
    // engine run held — a process-topology artifact, like wall clock:
    // a 4-shard merge legitimately sums more rounds than one whole-grid
    // run.  points/replications/blocks are per-point deterministic and
    // stay: they MUST match across topologies.
    run.mc_stats.rounds = 0;
  }
  return c.to_json();
}

ExperimentResult merge_experiment_results(
    std::span<const ExperimentResult> parts) {
  if (parts.empty()) {
    throw std::invalid_argument(
        "merge_experiment_results: no results to merge");
  }
  const auto normalised_dump = [](const ExperimentSpec& s) {
    ExperimentSpec c = s;
    c.shard = ShardSpec{};
    return c.to_json().dump();
  };
  const std::string ref_dump = normalised_dump(parts.front().spec);
  const GridSpec grid = parts.front().spec.grid();
  const std::size_t points = grid.num_points();

  std::vector<ShardRange> ranges;
  std::vector<std::size_t> labels;
  ranges.reserve(parts.size());
  labels.reserve(parts.size());
  std::vector<char> seen(parts.size(), 0);
  for (const auto& part : parts) {
    if (normalised_dump(part.spec) != ref_dump) {
      throw std::invalid_argument(
          "merge_experiment_results: shard " +
          std::to_string(part.shard_index) +
          " was produced by a different spec");
    }
    if (part.backends.size() != parts.front().backends.size()) {
      throw std::invalid_argument(
          "merge_experiment_results: shard " +
          std::to_string(part.shard_index) + " backend set differs");
    }
    for (std::size_t b = 0; b < part.backends.size(); ++b) {
      if (part.backends[b].kind != parts.front().backends[b].kind) {
        throw std::invalid_argument(
            "merge_experiment_results: shard " +
            std::to_string(part.shard_index) + " backend set differs");
      }
      const auto& run = part.backends[b];
      const std::size_t payload = run.kind == BackendKind::Analytic
                                      ? run.evals.size()
                                      : run.mc.size();
      if (payload != part.range.size()) {
        throw std::invalid_argument(
            "merge_experiment_results: shard " +
            std::to_string(part.shard_index) + " backend '" +
            to_string(run.kind) + "' payload size does not match its range");
      }
      if (run.vr.empty() != parts.front().backends[b].vr.empty()) {
        throw std::invalid_argument(
            "merge_experiment_results: shard " +
            std::to_string(part.shard_index) + " backend '" +
            to_string(run.kind) + "' vr payload presence differs");
      }
      if (!run.vr.empty() && run.vr.size() != part.range.size()) {
        throw std::invalid_argument(
            "merge_experiment_results: shard " +
            std::to_string(part.shard_index) + " backend '" +
            to_string(run.kind) + "' vr payload size does not match its range");
      }
    }
    if (part.shard_index < seen.size()) {
      if (seen[part.shard_index]) {
        throw std::invalid_argument(
            "merge_experiment_results: duplicate shard " +
            std::to_string(part.shard_index));
      }
      seen[part.shard_index] = 1;
    }
    ranges.push_back(part.range);
    labels.push_back(part.shard_index);
  }
  validate_shard_tiling(points, ranges, labels);

  ExperimentResult merged;
  merged.spec = parts.front().spec;
  merged.spec.shard = ShardSpec{};
  merged.range = {0, points};
  merged.num_shards = parts.size();
  merged.shard_index = 0;
  merged.shard_policy = parts.front().shard_policy;
  for (const auto& ref_run : parts.front().backends) {
    BackendRun run;
    run.kind = ref_run.kind;
    if (run.kind == BackendKind::Analytic) {
      run.evals.resize(points);
    } else {
      run.mc.resize(points);
      if (!ref_run.vr.empty()) run.vr.resize(points);
    }
    merged.backends.push_back(std::move(run));
  }
  for (const auto& part : parts) {
    for (std::size_t b = 0; b < part.backends.size(); ++b) {
      const auto& src = part.backends[b];
      auto& dst = merged.backends[b];
      if (src.kind == BackendKind::Analytic) {
        std::copy(src.evals.begin(), src.evals.end(),
                  dst.evals.begin() +
                      static_cast<std::ptrdiff_t>(part.range.begin));
      } else {
        std::copy(src.mc.begin(), src.mc.end(),
                  dst.mc.begin() +
                      static_cast<std::ptrdiff_t>(part.range.begin));
        std::copy(src.vr.begin(), src.vr.end(),
                  dst.vr.begin() +
                      static_cast<std::ptrdiff_t>(part.range.begin));
        dst.mc_stats.points += src.mc_stats.points;
        dst.mc_stats.replications += src.mc_stats.replications;
        dst.mc_stats.blocks += src.mc_stats.blocks;
        dst.mc_stats.rounds += src.mc_stats.rounds;
        dst.mc_stats.seconds += src.mc_stats.seconds;
      }
      dst.seconds += src.seconds;
    }
  }
  return merged;
}

// --- Built-in backends + service. -------------------------------------

namespace {

class AnalyticBackend final : public Backend {
 public:
  AnalyticBackend(SweepEngine& engine, std::size_t threads)
      : engine_(engine), threads_(threads) {}
  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::Analytic;
  }
  [[nodiscard]] BackendRun run(const ExperimentSpec& spec, const GridSpec&,
                               std::span<const Params> points,
                               ShardRange) override {
    const util::Stopwatch watch;
    BackendRun out;
    out.kind = BackendKind::Analytic;
    if (!spec.base.time_varying()) {
      out.evals = engine_.evaluate(points, spec.analytic.batch);
    } else if (resolve_timeline(spec.base).size() == 1) {
      // Constant variation (identity or a single always-on scaling):
      // resolve each point to its one constant segment and keep the
      // batched sweep path.  Identity multipliers are IEEE-exact, so
      // this payload is bitwise the no-schedule one.
      std::vector<Params> constant;
      constant.reserve(points.size());
      for (const auto& p : points) {
        constant.push_back(resolve_timeline(p).front().params);
      }
      out.evals = engine_.evaluate(constant, spec.analytic.batch);
    } else {
      // Phased mission: chain the transient solver across boundaries,
      // one analyzer per grid point.  Points are independent, so the
      // MC thread pool shape applies.
      out.evals.resize(points.size());
      sim::parallel_for(
          points.size(),
          [&](std::size_t i) {
            out.evals[i] = MissionAnalyzer(points[i]).evaluate();
          },
          threads_);
    }
    out.seconds = watch.seconds();
    return out;
  }

 private:
  SweepEngine& engine_;
  std::size_t threads_;
};

/// Shard-invariant MC options: stream keys shifted to GLOBAL point
/// indices, service-level thread default applied.
sim::McOptions effective_mc(const ExperimentSpec& spec, ShardRange range,
                            std::size_t service_threads) {
  sim::McOptions mc = spec.mc;
  mc.point_stream_offset += range.begin;
  if (mc.threads == 0) mc.threads = service_threads;
  return mc;
}

class DesBackend final : public Backend {
 public:
  explicit DesBackend(std::size_t threads) : threads_(threads) {}
  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::Des;
  }
  [[nodiscard]] BackendRun run(const ExperimentSpec& spec, const GridSpec&,
                               std::span<const Params> points,
                               ShardRange range) override {
    const util::Stopwatch watch;
    const sim::McOptions mc = effective_mc(spec, range, threads_);
    sim::MonteCarloEngine engine(mc);
    BackendRun out;
    out.kind = BackendKind::Des;
    out.mc = engine.run_des(points);
    out.mc_stats = engine.stats();
    // The vr layer runs AFTER the plain pass on its own tagged seed
    // domains: the mc payload above is bitwise the payload of a vr-less
    // run of the same spec (the parity harness checks exactly this).
    if (spec.vr.any()) out.vr = vr::run_vr(spec.vr, mc, points);
    out.seconds = watch.seconds();
    return out;
  }

 private:
  std::size_t threads_;
};

class ProtocolSimBackend final : public Backend {
 public:
  explicit ProtocolSimBackend(std::size_t threads) : threads_(threads) {}
  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::ProtocolSim;
  }
  [[nodiscard]] BackendRun run(const ExperimentSpec& spec, const GridSpec&,
                               std::span<const Params> points,
                               ShardRange range) override {
    const util::Stopwatch watch;
    std::vector<sim::ProtocolSimParams> sim_points;
    sim_points.reserve(points.size());
    for (const auto& p : points) {
      sim::ProtocolSimParams q;
      q.model = p;
      q.mobility = spec.protocol.mobility;
      q.radio_range_m = spec.protocol.radio_range_m;
      q.tick_s = spec.protocol.tick_s;
      q.topology_refresh_s = spec.protocol.topology_refresh_s;
      q.max_time_s = spec.protocol.max_time_s;
      sim_points.push_back(std::move(q));
    }
    sim::MonteCarloEngine engine(effective_mc(spec, range, threads_));
    BackendRun out;
    out.kind = BackendKind::ProtocolSim;
    out.mc = engine.run_protocol(sim_points);
    out.mc_stats = engine.stats();
    out.seconds = watch.seconds();
    return out;
  }

 private:
  std::size_t threads_;
};

SweepEngineOptions resolve_sweep_options(const ExperimentServiceOptions& o) {
  SweepEngineOptions sweep = o.sweep;
  if (sweep.threads == 0) sweep.threads = o.threads;
  return sweep;
}

}  // namespace

ExperimentService::ExperimentService(ExperimentServiceOptions opts)
    : opts_(opts), engine_(resolve_sweep_options(opts)) {
  backends_.push_back(
      std::make_unique<AnalyticBackend>(engine_, opts_.threads));
  backends_.push_back(std::make_unique<DesBackend>(opts_.threads));
  backends_.push_back(std::make_unique<ProtocolSimBackend>(opts_.threads));
}

ExperimentService::~ExperimentService() = default;

ExperimentResult ExperimentService::run(const ExperimentSpec& spec) {
  spec.validate();
  const GridSpec grid = spec.grid();
  const ShardRange range = spec.resolve_range(grid);

  std::vector<Params> points;
  points.reserve(range.size());
  for (std::size_t i = range.begin; i < range.end; ++i) {
    points.push_back(grid.point(spec.base, i));
  }

  ExperimentResult result;
  result.spec = spec;
  result.range = range;
  result.num_shards =
      spec.shard.policy == ShardSpec::Policy::All ? 1 : spec.shard.num_shards;
  result.shard_index =
      spec.shard.policy == ShardSpec::Policy::All ? 0 : spec.shard.shard_index;
  result.shard_policy = to_string(spec.shard.policy);

  for (const BackendKind kind : spec.backends) {
    for (auto& backend : backends_) {
      if (backend->kind() == kind) {
        result.backends.push_back(backend->run(spec, grid, points, range));
        break;
      }
    }
  }
  return result;
}

}  // namespace midas::core
