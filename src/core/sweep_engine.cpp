#include "core/sweep_engine.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "sim/thread_pool.h"
#include "util/arena.h"
#include "util/stopwatch.h"

namespace midas::core {

std::size_t SweepResult::argmax_mttsf() const {
  if (points.empty()) throw std::logic_error("empty sweep");
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].eval.mttsf > points[best].eval.mttsf) best = i;
  }
  return best;
}

std::size_t SweepResult::argmin_ctotal() const {
  if (points.empty()) throw std::logic_error("empty sweep");
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].eval.ctotal < points[best].eval.ctotal) best = i;
  }
  return best;
}

std::size_t McSweepResult::mttsf_inside_ci() const {
  std::size_t inside = 0;
  for (const auto& pt : points) {
    if (pt.mc.ttsf.contains(pt.eval.mttsf)) ++inside;
  }
  return inside;
}

std::size_t McGridResult::mttsf_inside_ci() const {
  std::size_t inside = 0;
  for (const auto& pt : points) {
    if (pt.mc.ttsf.contains(pt.eval.mttsf)) ++inside;
  }
  return inside;
}

std::string structure_key(const Params& p) {
  std::ostringstream key;
  key.precision(17);
  // Initial marking and guard parameters.
  key << p.n_init << '|' << p.max_groups << '|' << p.byzantine_fraction;
  // Group birth–death tables: a zero entry removes the T_PAR/T_MER edge
  // at that group count, so the values are structural.  (Keying on exact
  // values also shares nothing between different mobility regimes, which
  // is the conservative choice.)
  key << '|';
  for (double r : p.partition_rates) key << r << ',';
  key << '|';
  for (double r : p.merge_rates) key << r << ',';
  // Zero-pattern of the remaining timed rates.  Attacker/detection shape
  // factors are >= 1 for every shape, so only the base factors matter:
  //   T_CP  ∝ λc,  T_DRQ ∝ p1·λq,  T_FA ∝ Pfp (> 0 iff p2 > 0 and a
  //   voter pool exists),  T_IDS ∝ 1−Pfn (m-dependent corner handled
  //   below).
  key << '|' << (p.lambda_c > 0.0) << (p.p1 * p.lambda_q > 0.0)
      << (p.p2 > 0.0) << (p.p1 < 1.0);
  // The T_IDS zero-pattern can depend on m: pfn hits exactly 1 in a
  // marking whenever the per-group good count is below the majority of
  // the effective voter pool min(m, pool).  In transient (alive)
  // markings with byzantine_fraction <= 1/2 the good count is >= the
  // bad count per group, which puts it at or above any such majority —
  // so the pattern is m-independent there.  Beyond 1/2 (and at the
  // p1/p2 corner cases, where probabilities can hit exact 0/1 in
  // m-dependent ways) stop sharing across m.
  if (p.byzantine_fraction > 0.5 || p.p1 <= 0.0 || p.p1 >= 1.0 ||
      p.p2 <= 0.0 || p.p2 >= 1.0) {
    key << '|' << p.num_voters;
  }
  // State-dependent detectors move the effective (p1,p2) per marking,
  // so the zero-pattern reasoning above no longer covers T_IDS/T_FA/
  // T_DRQ: key the full detector descriptor (plus m, since the
  // effective corner cases become m-dependent) and let only identical
  // detector configurations share a structure.  Static detectors add
  // nothing — their keys (and hence the sharing and the bitwise
  // results) are exactly the pre-plugin ones.
  if (p.detector.kind != ids::DetectorKind::Static) {
    key << '|' << ids::to_string(p.detector.kind) << ','
        << p.detector.entropy_weight << ',' << p.detector.cusum_gain << ','
        << p.detector.cusum_drift << ',' << p.detector.cusum_threshold << ','
        << p.detector.cusum_alarm_factor << ',' << p.detector.logistic_bias
        << ',' << p.detector.logistic_compromise_weight << ','
        << p.detector.logistic_time_weight << ',' << p.num_voters;
  }
  return key.str();
}

SweepEngine::SweepEngine(SweepEngineOptions opts) : opts_(opts) {}

std::vector<Evaluation> SweepEngine::evaluate(
    std::span<const Params> points) {
  return evaluate(points, opts_.batch);
}

std::vector<Evaluation> SweepEngine::evaluate(std::span<const Params> points,
                                              std::size_t batch_width) {
  const util::Stopwatch watch;
  std::vector<Evaluation> evals(points.size());
  if (points.empty()) return evals;

  // Resolve cache entries serially (the map is not touched by workers).
  // Every structure this batch needs is pinned for its duration; the
  // LRU cap is enforced only after the batch completes.
  std::vector<CacheEntry*> entry_of(points.size(), nullptr);
  if (opts_.reuse_structure) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::string key = structure_key(points[i]);
      auto& slot = cache_[key];
      if (!slot) slot = std::make_unique<CacheEntry>();
      entry_of[i] = slot.get();
      // LRU bookkeeping only matters when a cap can evict.
      if (opts_.max_cache_entries != 0) touch_cache_key(key);
    }
  }

  if (opts_.reuse_structure && batch_width > 1) {
    // Batched path: chunk runs of consecutive points that share a
    // structure into batches of `batch_width` and drive each through the
    // point-major kernels.  Per-point results are independent of the
    // chunking (grouping-independence is a design invariant of
    // solve_batch's factor reuse), so shard boundaries and ragged final
    // batches cannot perturb a single bit.
    struct BatchRange {
      std::size_t begin, end;
      CacheEntry* entry;
    };
    std::vector<BatchRange> batches;
    for (std::size_t i = 0; i < points.size();) {
      CacheEntry* entry = entry_of[i];
      std::size_t run_end = i + 1;
      while (run_end < points.size() && entry_of[run_end] == entry) {
        ++run_end;
      }
      for (std::size_t begin = i; begin < run_end; begin += batch_width) {
        batches.push_back(
            {begin, std::min(begin + batch_width, run_end), entry});
      }
      i = run_end;
    }

    sim::parallel_for(
        batches.size(),
        [&](std::size_t bi) {
          const auto& bt = batches[bi];
          const std::size_t B = bt.end - bt.begin;
          // One private model per point (deque: GcsSpnModel is
          // immovable — it embeds a once_flag).
          std::deque<GcsSpnModel> models;
          for (std::size_t j = 0; j < B; ++j) {
            models.emplace_back(points[bt.begin + j]);
          }
          CacheEntry* entry = bt.entry;
          std::call_once(entry->once, [&] {
            entry->graph = std::make_shared<const spn::ReachabilityGraph>(
                spn::explore(models.front().net()));
            entry->analyzer = std::make_unique<const spn::AbsorbingAnalyzer>(
                *entry->graph);
            std::lock_guard lock(stats_mutex_);
            ++stats_.explorations;
            stats_.states_explored += entry->graph->num_states();
          });
          // These models are batch-private, so the transcendental factor
          // memo is safe to turn on; the scalar path never enables it.
          std::vector<const GcsSpnModel*> model_ptrs(B);
          std::vector<const spn::PetriNet*> nets(B);
          for (std::size_t j = 0; j < B; ++j) {
            models[j].enable_factor_memo();
            model_ptrs[j] = &models[j];
            nets[j] = &models[j].net();
          }
          util::Arena& arena = util::thread_scratch_arena();
          arena.reset();
          const std::size_t E = entry->graph->edges.size();
          auto rates = arena.make_span<double>(E * B);
          auto impulses = arena.make_span<double>(E * B);
          entry->graph->compute_rates_batch(nets, rates, impulses,
                                            GcsSpnModel::batch_rate_fn(
                                                model_ptrs));
          const auto batch_evals =
              evaluate_with_batch(model_ptrs, *entry->analyzer, rates,
                                  impulses, opts_.factor_reuse, arena);
          for (std::size_t j = 0; j < B; ++j) {
            evals[bt.begin + j] = batch_evals[j];
          }
          std::lock_guard lock(stats_mutex_);
          stats_.points += B;
          stats_.states_evaluated += entry->graph->num_states() * B;
        },
        opts_.threads);

    enforce_cache_cap();
    stats_.seconds += watch.seconds();
    return evals;
  }

  sim::parallel_for(
      points.size(),
      [&](std::size_t i) {
        const GcsSpnModel model(points[i]);
        CacheEntry* entry = entry_of[i];
        if (entry == nullptr) {
          evals[i] = model.evaluate();
          std::lock_guard lock(stats_mutex_);
          ++stats_.points;
          ++stats_.explorations;
          stats_.states_explored += evals[i].num_states;
          stats_.states_evaluated += evals[i].num_states;
          return;
        }
        // First point of a structural configuration explores and builds
        // the solver structure; every point then owns only its per-edge
        // rate/impulse arrays (the mutable slice of the graph) and the
        // numeric solve.
        std::call_once(entry->once, [&] {
          entry->graph = std::make_shared<const spn::ReachabilityGraph>(
              spn::explore(model.net()));
          entry->analyzer =
              std::make_unique<const spn::AbsorbingAnalyzer>(*entry->graph);
          std::lock_guard lock(stats_mutex_);
          ++stats_.explorations;
          stats_.states_explored += entry->graph->num_states();
        });
        std::vector<double> rates(entry->graph->edges.size());
        std::vector<double> impulses(entry->graph->edges.size());
        entry->graph->compute_rates(model.net(), rates, impulses);
        evals[i] = model.evaluate_with(*entry->analyzer, rates, impulses);
        std::lock_guard lock(stats_mutex_);
        ++stats_.points;
        stats_.states_evaluated += evals[i].num_states;
      },
      opts_.threads);

  enforce_cache_cap();
  stats_.seconds += watch.seconds();
  return evals;
}

void SweepEngine::touch_cache_key(const std::string& key) {
  const auto it = std::find(lru_.begin(), lru_.end(), key);
  if (it != lru_.end()) lru_.erase(it);
  lru_.push_back(key);
}

void SweepEngine::enforce_cache_cap() {
  if (opts_.max_cache_entries == 0) return;
  while (cache_.size() > opts_.max_cache_entries && !lru_.empty()) {
    cache_.erase(lru_.front());
    lru_.erase(lru_.begin());
    ++stats_.cache_evictions;
  }
}

void SweepEngine::clear_cache() {
  cache_.clear();
  lru_.clear();
}

GridRunResult SweepEngine::run(const GridSpec& spec, const Params& base) {
  GridRunResult result;
  result.spec = spec;
  const auto points = spec.expand(base);
  result.evals = evaluate(points);
  return result;
}

McGridResult SweepEngine::run_mc(const GridSpec& spec, const Params& base,
                                 const sim::McOptions& mc) {
  const auto points = spec.expand(base);
  const auto evals = evaluate(points);

  // One engine, one schedule for the entire grid: with CRN the
  // substream depends on the replication index alone, so every pair of
  // grid points — along any axis — shares its randomness.
  sim::MonteCarloEngine engine(mc);
  auto mcs = engine.run_des(points);

  McGridResult result;
  result.spec = spec;
  result.points.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.points.push_back({evals[i], std::move(mcs[i])});
  }
  result.mc_stats = engine.stats();
  return result;
}

namespace {

/// The parameter points of one contiguous grid slice.
std::vector<Params> slice_points(const GridSpec& spec, const Params& base,
                                 ShardRange range) {
  if (range.begin > range.end || range.end > spec.num_points()) {
    throw std::out_of_range(
        "SweepEngine: shard range [" + std::to_string(range.begin) + ", " +
        std::to_string(range.end) + ") is invalid for a " +
        std::to_string(spec.num_points()) + "-point grid");
  }
  std::vector<Params> points;
  points.reserve(range.size());
  for (std::size_t i = range.begin; i < range.end; ++i) {
    points.push_back(spec.point(base, i));
  }
  return points;
}

}  // namespace

GridShardResult SweepEngine::run_shard(const GridSpec& spec,
                                       const Params& base,
                                       ShardRange range) {
  const auto points = slice_points(spec, base, range);
  return {range, evaluate(points)};
}

McGridShardResult SweepEngine::run_mc_shard(const GridSpec& spec,
                                            const Params& base,
                                            ShardRange range,
                                            const sim::McOptions& mc) {
  const auto points = slice_points(spec, base, range);
  McGridShardResult result;
  result.range = range;
  result.evals = evaluate(points);

  // One schedule over the slice.  Under CRN the substreams already
  // ignore the point index; otherwise shifting the stream keys by
  // range.begin reproduces the full-grid streams, so either way each
  // point's summaries are bitwise those of run_mc() on the whole grid.
  sim::McOptions opts = mc;
  opts.point_stream_offset += range.begin;
  sim::MonteCarloEngine engine(opts);
  result.mc = engine.run_des(points);
  result.mc_stats = engine.stats();
  return result;
}

GridRunResult merge_shards(const GridSpec& spec,
                           std::span<const GridShardResult> shards) {
  std::vector<ShardRange> ranges;
  ranges.reserve(shards.size());
  for (const auto& s : shards) {
    if (s.evals.size() != s.range.size()) {
      throw std::invalid_argument(
          "merge_shards: shard payload size does not match its range");
    }
    ranges.push_back(s.range);
  }
  validate_shard_tiling(spec.num_points(), ranges);

  GridRunResult result;
  result.spec = spec;
  result.evals.resize(spec.num_points());
  for (const auto& s : shards) {
    std::copy(s.evals.begin(), s.evals.end(),
              result.evals.begin() +
                  static_cast<std::ptrdiff_t>(s.range.begin));
  }
  return result;
}

McGridResult merge_mc_shards(const GridSpec& spec,
                             std::span<const McGridShardResult> shards) {
  std::vector<ShardRange> ranges;
  ranges.reserve(shards.size());
  for (const auto& s : shards) {
    if (s.evals.size() != s.range.size() ||
        s.mc.size() != s.range.size()) {
      throw std::invalid_argument(
          "merge_mc_shards: shard payload size does not match its range");
    }
    ranges.push_back(s.range);
  }
  validate_shard_tiling(spec.num_points(), ranges);

  McGridResult result;
  result.spec = spec;
  result.points.resize(spec.num_points());
  for (const auto& s : shards) {
    for (std::size_t i = 0; i < s.range.size(); ++i) {
      result.points[s.range.begin + i] = {s.evals[i], s.mc[i]};
    }
    result.mc_stats.points += s.mc_stats.points;
    result.mc_stats.replications += s.mc_stats.replications;
    result.mc_stats.blocks += s.mc_stats.blocks;
    result.mc_stats.rounds += s.mc_stats.rounds;
    result.mc_stats.seconds += s.mc_stats.seconds;
  }
  return result;
}

SweepResult SweepEngine::sweep_t_ids(const Params& base,
                                     std::span<const double> grid) {
  GridSpec spec;
  spec.t_ids(std::vector<double>(grid.begin(), grid.end()));
  auto run_result = run(spec, base);

  SweepResult result;
  result.points.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    result.points.push_back({grid[i], std::move(run_result.evals[i])});
  }
  return result;
}

McSweepResult SweepEngine::sweep_mc(const Params& base,
                                    std::span<const double> grid,
                                    const sim::McOptions& mc) {
  GridSpec spec;
  spec.t_ids(std::vector<double>(grid.begin(), grid.end()));
  auto grid_result = run_mc(spec, base, mc);

  McSweepResult result;
  result.points.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    result.points.push_back({grid[i], std::move(grid_result.points[i].eval),
                             std::move(grid_result.points[i].mc)});
  }
  result.mc_stats = grid_result.mc_stats;
  return result;
}

}  // namespace midas::core
