// Named experiment presets — the paper's figures, ablations and
// validations as ready-made core::ExperimentSpec values.  This is the
// ONE place the evaluation grids are defined: the figure benches, the
// sharding tools, run_experiment and ci.sh all derive their work from
// these names, so two processes that agree on (name, smoke) agree on
// the entire experiment (grid, backends, Monte-Carlo schedule, seeds).
//
//   fig2 / fig3 / fig4 / fig5       analytic figure grids (full axes)
//   fig2_val .. fig5_val            their CI-gated validation twins
//                                   (Analytic + DES, thinned in smoke)
//   attacker_matrix(+_val)          3×3×TIDS adaptive-defense matrix
//   sensitivity_surface             λc × TIDS response surface
//   host_ids_quality                p1 = p2 × TIDS quality sweep
//   val_des                         scaled-down DES validation grid
//   val_protocol                    packet-level protocol validation
//   mission                         survival-horizon reliability grid
//   mission_phased                  3-phase mission (infiltration /
//                                   assault / recovery) at paper N=100
//   attacker_surge                  λc×4 surge schedule through all
//                                   three backends (small population)
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"

namespace midas::core {

/// Every name experiment_preset() accepts.
[[nodiscard]] std::vector<std::string> experiment_preset_names();

/// Builds the named preset.  `smoke` thins validation axes and loosens
/// CI targets for CI runtimes (figure grids keep their full axes).
/// Throws std::invalid_argument listing the known names otherwise.
[[nodiscard]] ExperimentSpec experiment_preset(const std::string& name,
                                               bool smoke);

/// The TIDS levels the validation presets simulate: the full paper
/// grid, or a 3-point subset covering both ends and the interior in
/// smoke mode (shared by every *_val preset and the shard demos).
[[nodiscard]] std::vector<double> validation_t_ids(bool smoke);

}  // namespace midas::core
