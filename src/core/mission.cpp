#include "core/mission.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "core/sweep_engine.h"
#include "spn/marking.h"

namespace midas::core {

MissionAnalyzer::MissionAnalyzer(Params params, MissionOptions options)
    : options_(options) {
  params.validate();
  timeline_ = resolve_timeline(params);
  segments_.reserve(timeline_.size());
  for (const auto& seg : timeline_) {
    Segment s;
    s.model = std::make_unique<GcsSpnModel>(seg.params);
    segments_.push_back(std::move(s));
  }
  if (segments_.size() == 1) return;  // constant: the model IS the answer

  // Graph per segment: the first segment explores; later segments with
  // the same structure key re-rate that graph (one rate vector per
  // phase — the sweep-engine reuse idiom), others explore their own.
  const auto& graph0 = segments_[0].model->graph();
  const std::string key0 = structure_key(timeline_[0].params);
  for (std::size_t k = 0; k < segments_.size(); ++k) {
    auto& s = segments_[k];
    if (k > 0 && structure_key(timeline_[k].params) == key0) {
      s.graph = &graph0;
      s.rates.resize(graph0.edges.size());
      s.impulses.resize(graph0.edges.size());
      graph0.compute_rates(s.model->net(), s.rates, s.impulses);
    } else {
      s.graph = k == 0 ? &graph0 : &s.model->graph();
      s.rates.reserve(s.graph->edges.size());
      s.impulses.reserve(s.graph->edges.size());
      for (const auto& e : s.graph->edges) {
        s.rates.push_back(e.rate);
        s.impulses.push_back(e.impulse);
      }
    }
  }
}

std::vector<double> MissionAnalyzer::remap_weights(
    std::span<const double> weights, std::size_t from,
    std::size_t to) const {
  const auto& src = *segments_[from].graph;
  const auto& dst = *segments_[to].graph;
  if (&src == &dst) return {weights.begin(), weights.end()};

  std::unordered_map<spn::Marking, spn::StateId, spn::MarkingHash> index;
  index.reserve(dst.num_states());
  for (std::size_t s = 0; s < dst.num_states(); ++s) {
    index.emplace(dst.states[s], static_cast<spn::StateId>(s));
  }
  std::vector<double> out(dst.num_states(), 0.0);
  double total = 0.0;
  double lost = 0.0;
  const spn::Marking* first_lost = nullptr;
  for (std::size_t s = 0; s < src.num_states(); ++s) {
    const double w = weights[s];
    if (w == 0.0) continue;
    total += w;
    const auto it = index.find(src.states[s]);
    if (it != index.end()) {
      out[it->second] = w;
    } else {
      lost += w;
      if (first_lost == nullptr) first_lost = &src.states[s];
    }
  }
  if (lost > 1e-12 * std::max(total, 1e-300)) {
    throw std::runtime_error(
        "MissionAnalyzer: phase boundary '" + timeline_[from].label +
        "' -> '" + timeline_[to].label + "' leaves probability mass " +
        std::to_string(lost) + " in marking " + first_lost->to_string() +
        " (and possibly others) that the next phase's chain cannot "
        "represent — its rate structure makes the marking unreachable; "
        "keep the phases structurally compatible (same zero-rate "
        "pattern) or route the spec to the des backend");
  }
  return out;
}

Evaluation MissionAnalyzer::evaluate() const {
  if (segments_.size() == 1) return segments_[0].model->evaluate();

  // Functional layout per segment: 6 cost components in CostBreakdown
  // member order, then eviction impulse flux, then C1/C2 absorption
  // fluxes.
  constexpr std::size_t kEvict = 6, kC1 = 7, kC2 = 8, kNumF = 9;
  std::vector<double> w;  // boundary weights (full-state, per graph)
  double mttsf = 0.0;
  std::array<double, kNumF> acc{};

  for (std::size_t k = 0; k + 1 < segments_.size(); ++k) {
    const auto& seg = segments_[k];
    const auto& graph = *seg.graph;
    const std::size_t n = graph.num_states();
    const auto absorbing = graph.absorbing_mask();

    std::vector<std::vector<double>> f(kNumF, std::vector<double>(n, 0.0));
    for (std::size_t s = 0; s < n; ++s) {
      if (absorbing[s]) continue;
      const auto c = seg.model->cost_rates(graph.states[s]);
      f[0][s] = c.group_comm;
      f[1][s] = c.status;
      f[2][s] = c.rekey;
      f[3][s] = c.ids;
      f[4][s] = c.beacon;
      f[5][s] = c.partition_merge;
    }
    for (std::size_t i = 0; i < graph.edges.size(); ++i) {
      const auto& e = graph.edges[i];
      if (seg.impulses[i] != 0.0) {
        f[kEvict][e.src] += seg.rates[i] * seg.impulses[i];
      }
      if (e.src != e.dst && absorbing[e.dst]) {
        if (seg.model->failed_c1(graph.states[e.dst])) {
          f[kC1][e.src] += seg.rates[i];
        } else if (seg.model->failed_c2(graph.states[e.dst])) {
          f[kC2][e.src] += seg.rates[i];
        }
      }
    }

    const double duration =
        timeline_[k + 1].start_s - timeline_[k].start_s;
    const spn::ReliabilityOde ode(graph, seg.rates);
    const auto res = ode.propagate(w, duration, f, {}, options_.ode);
    mttsf += res.survival_integral;
    for (std::size_t j = 0; j < kNumF; ++j) {
      acc[j] += res.functional_integrals[j];
    }
    w = remap_weights(res.weights, k, k + 1);
  }

  // Final (infinite-horizon) segment: close the chain analytically from
  // the boundary distribution.
  const std::size_t last = segments_.size() - 1;
  const auto& seg = segments_[last];
  const spn::AbsorbingAnalyzer analyzer(*seg.graph);
  const auto res = analyzer.solve_from(w, seg.rates);
  mttsf += res.mtta;
  const auto tail_cost = [&](double gcs::CostBreakdown::*member) {
    return analyzer.accumulated_rate_reward(
        res, [&](const spn::Marking& m) {
          return seg.model->cost_rates(m).*member;
        });
  };
  acc[0] += tail_cost(&gcs::CostBreakdown::group_comm);
  acc[1] += tail_cost(&gcs::CostBreakdown::status);
  acc[2] += tail_cost(&gcs::CostBreakdown::rekey);
  acc[3] += tail_cost(&gcs::CostBreakdown::ids);
  acc[4] += tail_cost(&gcs::CostBreakdown::beacon);
  acc[5] += tail_cost(&gcs::CostBreakdown::partition_merge);
  acc[kEvict] +=
      analyzer.accumulated_impulse_reward(res, seg.rates, seg.impulses);
  acc[kC1] += analyzer.absorption_probability_where(
      res, [&](const spn::Marking& m) { return seg.model->failed_c1(m); });
  acc[kC2] += analyzer.absorption_probability_where(
      res, [&](const spn::Marking& m) {
        return !seg.model->failed_c1(m) && seg.model->failed_c2(m);
      });

  Evaluation ev;
  ev.num_states = segments_[0].graph->num_states();
  ev.solver_blocks = res.solver_blocks;
  ev.mttsf = mttsf;
  ev.p_failure_c1 = acc[kC1];
  ev.p_failure_c2 = acc[kC2];
  if (ev.mttsf > 0.0) {
    ev.cost_rates.group_comm = acc[0] / ev.mttsf;
    ev.cost_rates.status = acc[1] / ev.mttsf;
    ev.cost_rates.rekey = acc[2] / ev.mttsf;
    ev.cost_rates.ids = acc[3] / ev.mttsf;
    ev.cost_rates.beacon = acc[4] / ev.mttsf;
    ev.cost_rates.partition_merge = acc[5] / ev.mttsf;
    ev.eviction_cost_rate = acc[kEvict] / ev.mttsf;
    ev.ctotal = ev.cost_rates.total() + ev.eviction_cost_rate;
  }
  return ev;
}

std::vector<double> MissionAnalyzer::reliability_at(
    std::span<const double> times) const {
  if (segments_.size() == 1) {
    return segments_[0].model->reliability_at(times);
  }
  if (!std::is_sorted(times.begin(), times.end())) {
    throw std::invalid_argument(
        "MissionAnalyzer::reliability_at: times must be ascending");
  }
  for (const double t : times) {
    if (t < 0.0 || !std::isfinite(t)) {
      throw std::invalid_argument(
          "MissionAnalyzer::reliability_at: times must be finite and "
          "non-negative");
    }
  }
  std::vector<double> out(times.size(), 1.0);
  if (times.empty()) return out;

  std::vector<double> w;
  std::size_t next = 0;
  for (std::size_t k = 0; k < segments_.size() && next < times.size();
       ++k) {
    const double start = timeline_[k].start_s;
    // The last segment only needs to reach the last requested time; the
    // infinite horizon never enters a forward integration.
    const double end = k + 1 < segments_.size()
                           ? timeline_[k + 1].start_s
                           : std::max(times.back(), start);
    std::vector<double> emit;
    std::size_t first = next;
    while (next < times.size() && times[next] <= end) {
      emit.push_back(times[next] - start);
      ++next;
    }
    const spn::ReliabilityOde ode(*segments_[k].graph,
                                  segments_[k].rates);
    const auto res =
        ode.propagate(w, end - start, {}, emit, options_.ode);
    for (std::size_t j = 0; j < emit.size(); ++j) {
      out[first + j] = res.survival_at[j];
    }
    if (k + 1 < segments_.size()) {
      w = remap_weights(res.weights, k, k + 1);
    }
  }
  return out;
}

}  // namespace midas::core
