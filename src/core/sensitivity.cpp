#include "core/sensitivity.h"

#include <functional>
#include <stdexcept>

#include "core/gcs_spn_model.h"

namespace midas::core {

namespace {

struct Probe {
  std::string name;
  std::function<double&(Params&)> field;
};

}  // namespace

std::vector<SensitivityEntry> sensitivity_analysis(
    const Params& base, const SensitivityOptions& opts) {
  base.validate();
  if (opts.relative_step <= 0.0 || opts.relative_step >= 1.0) {
    throw std::invalid_argument("sensitivity_analysis: bad step");
  }

  const std::vector<Probe> probes = {
      {"lambda_c (compromise rate)",
       [](Params& p) -> double& { return p.lambda_c; }},
      {"lambda_q (data rate)",
       [](Params& p) -> double& { return p.lambda_q; }},
      {"t_ids (detection interval)",
       [](Params& p) -> double& { return p.t_ids; }},
      {"p1 (host false negative)",
       [](Params& p) -> double& { return p.p1; }},
      {"p2 (host false positive)",
       [](Params& p) -> double& { return p.p2; }},
      {"lambda (join rate)",
       [](Params& p) -> double& { return p.lambda_join; }},
      {"mu (leave rate)", [](Params& p) -> double& { return p.mu_leave; }},
  };

  std::vector<SensitivityEntry> out;
  out.reserve(probes.size());

  for (const auto& probe : probes) {
    Params lo = base;
    Params hi = base;
    const double v0 = probe.field(lo);  // same as base value
    if (v0 == 0.0) {
      // Elasticity undefined at zero; report zeros rather than guessing.
      out.push_back({probe.name, 0.0, 0.0, 0.0});
      continue;
    }
    probe.field(lo) = v0 * (1.0 - opts.relative_step);
    probe.field(hi) = v0 * (1.0 + opts.relative_step);

    const auto ev_lo = GcsSpnModel(lo).evaluate();
    const auto ev_hi = GcsSpnModel(hi).evaluate();

    SensitivityEntry entry;
    entry.parameter = probe.name;
    entry.base_value = v0;
    const double dp = 2.0 * opts.relative_step;  // (hi−lo)/v0
    entry.mttsf_elasticity =
        (ev_hi.mttsf - ev_lo.mttsf) /
        (0.5 * (ev_hi.mttsf + ev_lo.mttsf)) / dp;
    entry.ctotal_elasticity =
        (ev_hi.ctotal - ev_lo.ctotal) /
        (0.5 * (ev_hi.ctotal + ev_lo.ctotal)) / dp;
    out.push_back(entry);
  }
  return out;
}

}  // namespace midas::core
