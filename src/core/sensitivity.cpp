#include "core/sensitivity.h"

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "core/gcs_spn_model.h"
#include "core/sweep_engine.h"

namespace midas::core {

namespace {

struct Probe {
  std::string name;
  std::function<double&(Params&)> field;
};

}  // namespace

std::vector<SensitivityEntry> sensitivity_analysis(
    const Params& base, const SensitivityOptions& opts) {
  base.validate();
  if (opts.relative_step <= 0.0 || opts.relative_step >= 1.0) {
    throw std::invalid_argument("sensitivity_analysis: bad step");
  }

  const std::vector<Probe> probes = {
      {"lambda_c (compromise rate)",
       [](Params& p) -> double& { return p.lambda_c; }},
      {"lambda_q (data rate)",
       [](Params& p) -> double& { return p.lambda_q; }},
      {"t_ids (detection interval)",
       [](Params& p) -> double& { return p.t_ids; }},
      {"p1 (host false negative)",
       [](Params& p) -> double& { return p.p1; }},
      {"p2 (host false positive)",
       [](Params& p) -> double& { return p.p2; }},
      {"lambda (join rate)",
       [](Params& p) -> double& { return p.lambda_join; }},
      {"mu (leave rate)", [](Params& p) -> double& { return p.mu_leave; }},
  };

  // Every probe scales a rate without touching the model structure, so
  // all lo/hi evaluations run as one engine batch over one exploration.
  std::vector<Params> points;
  std::vector<double> base_values(probes.size(), 0.0);
  std::vector<std::size_t> point_of(probes.size(), SIZE_MAX);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    Params lo = base;
    Params hi = base;
    const double v0 = probes[i].field(lo);  // same as base value
    base_values[i] = v0;
    if (v0 == 0.0) continue;  // elasticity undefined at zero
    probes[i].field(lo) = v0 * (1.0 - opts.relative_step);
    probes[i].field(hi) = v0 * (1.0 + opts.relative_step);
    point_of[i] = points.size();
    points.push_back(std::move(lo));
    points.push_back(std::move(hi));
  }

  SweepEngine engine;
  const auto evals = engine.evaluate(points);

  std::vector<SensitivityEntry> out;
  out.reserve(probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    if (point_of[i] == SIZE_MAX) {
      // Elasticity undefined at zero; report zeros rather than guessing.
      out.push_back({probes[i].name, 0.0, 0.0, 0.0});
      continue;
    }
    const auto& ev_lo = evals[point_of[i]];
    const auto& ev_hi = evals[point_of[i] + 1];

    SensitivityEntry entry;
    entry.parameter = probes[i].name;
    entry.base_value = base_values[i];
    const double dp = 2.0 * opts.relative_step;  // (hi−lo)/v0
    entry.mttsf_elasticity =
        (ev_hi.mttsf - ev_lo.mttsf) /
        (0.5 * (ev_hi.mttsf + ev_lo.mttsf)) / dp;
    entry.ctotal_elasticity =
        (ev_hi.ctotal - ev_lo.ctotal) /
        (0.5 * (ev_hi.ctotal + ev_lo.ctotal)) / dp;
    out.push_back(entry);
  }
  return out;
}

}  // namespace midas::core
