#include "core/optimizer.h"

#include <stdexcept>

namespace midas::core {

std::vector<double> paper_t_ids_grid() {
  return {5, 15, 30, 60, 120, 240, 480, 600, 1200};
}

std::size_t SweepResult::argmax_mttsf() const {
  if (points.empty()) throw std::logic_error("empty sweep");
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].eval.mttsf > points[best].eval.mttsf) best = i;
  }
  return best;
}

std::size_t SweepResult::argmin_ctotal() const {
  if (points.empty()) throw std::logic_error("empty sweep");
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].eval.ctotal < points[best].eval.ctotal) best = i;
  }
  return best;
}

SweepResult sweep_t_ids(const Params& base, std::span<const double> grid) {
  SweepResult result;
  result.points.reserve(grid.size());
  for (double t : grid) {
    Params p = base;
    p.t_ids = t;
    const GcsSpnModel model(p);
    result.points.push_back({t, model.evaluate()});
  }
  return result;
}

PolicyChoice optimize_policy(const Params& base,
                             std::span<const double> grid,
                             std::optional<double> cost_budget) {
  PolicyChoice best;
  bool have_feasible = false;
  PolicyChoice cheapest;
  bool have_any = false;

  for (const auto shape : {ids::Shape::Logarithmic, ids::Shape::Linear,
                           ids::Shape::Polynomial}) {
    Params p = base;
    p.detection_shape = shape;
    const auto sweep = sweep_t_ids(p, grid);
    for (const auto& pt : sweep.points) {
      if (!have_any || pt.eval.ctotal < cheapest.eval.ctotal) {
        cheapest = {shape, pt.t_ids, pt.eval, false};
        have_any = true;
      }
      if (cost_budget && pt.eval.ctotal > *cost_budget) continue;
      if (!have_feasible || pt.eval.mttsf > best.eval.mttsf) {
        best = {shape, pt.t_ids, pt.eval, true};
        have_feasible = true;
      }
    }
  }
  if (!have_feasible) return cheapest;  // feasible == false signals this
  return best;
}

}  // namespace midas::core
