#include "core/optimizer.h"

#include <array>

namespace midas::core {

std::vector<double> paper_t_ids_grid() {
  return {5, 15, 30, 60, 120, 240, 480, 600, 1200};
}

SweepResult sweep_t_ids(const Params& base, std::span<const double> grid) {
  SweepEngine engine;
  return engine.sweep_t_ids(base, grid);
}

PolicyChoice optimize_policy(const Params& base,
                             std::span<const double> grid,
                             std::optional<double> cost_budget) {
  // One batch over shapes × grid: every point shares the structure, so
  // the engine explores once and re-rates 3·|grid| clones.
  constexpr std::array kShapes{ids::Shape::Logarithmic, ids::Shape::Linear,
                               ids::Shape::Polynomial};
  std::vector<Params> points;
  points.reserve(kShapes.size() * grid.size());
  for (const auto shape : kShapes) {
    for (const double t : grid) {
      Params p = base;
      p.detection_shape = shape;
      p.t_ids = t;
      points.push_back(std::move(p));
    }
  }

  SweepEngine engine;
  const auto evals = engine.evaluate(points);

  PolicyChoice best;
  bool have_feasible = false;
  PolicyChoice cheapest;
  bool have_any = false;
  for (std::size_t i = 0; i < evals.size(); ++i) {
    const auto shape = points[i].detection_shape;
    const double t = points[i].t_ids;
    const auto& ev = evals[i];
    if (!have_any || ev.ctotal < cheapest.eval.ctotal) {
      cheapest = {shape, t, ev, false};
      have_any = true;
    }
    if (cost_budget && ev.ctotal > *cost_budget) continue;
    if (!have_feasible || ev.mttsf > best.eval.mttsf) {
      best = {shape, t, ev, true};
      have_feasible = true;
    }
  }
  if (!have_feasible) return cheapest;  // feasible == false signals this
  return best;
}

}  // namespace midas::core
