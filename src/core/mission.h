// Phased-mission analytic solver: MTTSF, Ĉtotal and R(t) for a
// time-varying parameterisation (core::RateSchedule / MissionProfile)
// by chaining the constant-rate machinery across the resolved timeline.
//
// Method: resolve_timeline() yields ordered constant segments.  Within
// each non-final segment the transient distribution advances through
// the adjoint backward-Kolmogorov integrator
// (spn::ReliabilityOde::propagate), accumulating the segment's
// survival-time integral (its MTTSF share), the six cost-rate
// integrals, the eviction impulse flux and the C1/C2 absorption
// fluxes; the weights at each boundary seed the next segment.  The
// final segment (infinite horizon) closes the chain analytically with
// spn::AbsorbingAnalyzer::solve_from on the boundary distribution.
//
// Structure reuse: segments whose core::structure_key matches the
// first segment's re-rate the first segment's reachability graph
// (ReachabilityGraph::compute_rates — the sweep-engine idiom), so
// phase boundaries cost one rate vector, not one exploration.
// Structurally different segments explore their own graph and the
// boundary weights are remapped marking-by-marking; mass at a marking
// the next segment cannot represent is an error naming both segments
// (a zero-rate phase can orphan states this way).
//
// A single-segment timeline — no schedule/mission, or a constant one —
// routes straight through GcsSpnModel::evaluate()/reliability_at(),
// making the constant case bitwise the legacy analytic path.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/gcs_spn_model.h"
#include "core/params.h"
#include "spn/absorbing.h"
#include "spn/reliability_ode.h"

namespace midas::core {

struct MissionOptions {
  /// Per-segment integrator settings for the forward propagation
  /// (theta method / grid; see spn::ReliabilityOdeOptions).
  spn::ReliabilityOdeOptions ode;
};

class MissionAnalyzer {
 public:
  /// Validates `params` (which may be constant or time-varying) and
  /// builds one GcsSpnModel per resolved timeline segment — so the
  /// same detector/attacker expressibility rules apply per segment.
  explicit MissionAnalyzer(Params params, MissionOptions options = {});

  /// The resolved piecewise-constant timeline this analyzer chains
  /// over (size 1 for a constant parameterisation).
  [[nodiscard]] const std::vector<TimelineSegment>& timeline()
      const noexcept {
    return timeline_;
  }

  /// MTTSF, Ĉtotal, cost components and C1/C2 split for the phased
  /// mission.  Single-segment timelines return
  /// GcsSpnModel::evaluate() bitwise.
  [[nodiscard]] Evaluation evaluate() const;

  /// Mission reliability R(t) at ascending non-negative times, chained
  /// across phase boundaries.  Single-segment timelines return
  /// GcsSpnModel::reliability_at() bitwise.
  [[nodiscard]] std::vector<double> reliability_at(
      std::span<const double> times) const;

 private:
  struct Segment {
    std::unique_ptr<GcsSpnModel> model;
    /// The graph this segment integrates on: the first segment's (re-
    /// rated) when the structure key matches, else the model's own.
    const spn::ReachabilityGraph* graph = nullptr;
    std::vector<double> rates;     // per-edge rates on `graph`
    std::vector<double> impulses;  // per-edge impulses on `graph`
  };

  /// Carries boundary weights from `from`'s graph to `to`'s graph by
  /// marking identity; throws when unrepresentable mass exceeds 1e-12
  /// of the total.
  [[nodiscard]] std::vector<double> remap_weights(
      std::span<const double> weights, std::size_t from,
      std::size_t to) const;

  MissionOptions options_;
  std::vector<TimelineSegment> timeline_;
  std::vector<Segment> segments_;
};

}  // namespace midas::core
