#include "core/gcs_spn_model.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include <algorithm>

#include "ids/functions.h"
#include "spn/reliability_ode.h"

namespace midas::core {

namespace {

/// Rounded per-group share of a system-wide token count.
std::int64_t per_group(std::int64_t total, std::int64_t groups) {
  if (groups <= 1) return total;
  const double share =
      static_cast<double>(total) / static_cast<double>(groups);
  return static_cast<std::int64_t>(std::llround(share));
}

}  // namespace

GcsSpnModel::GcsSpnModel(Params params) : params_(std::move(params)) {
  params_.validate();
  // The analytic backend solves a time-homogeneous CTMC: a detector or
  // attacker whose behaviour depends on anything outside the marking
  // (elapsed time, hidden phase, batch jumps) has no such chain.  Name
  // the model and route the caller to the simulators — the spec
  // validator raises the same complaint earlier with a JSON path.
  // Piecewise-constant variation is a separate case with its own
  // analytic answer: params carrying a schedule/mission must go through
  // core::MissionAnalyzer, which chains this model per timeline
  // segment.
  if (params_.time_varying()) {
    throw std::invalid_argument(
        "GcsSpnModel: params carry a schedule/mission (time-varying "
        "rates), which a single time-homogeneous CTMC cannot express; "
        "use core::MissionAnalyzer (the analytic backend routes there "
        "automatically) or the des/protocol_sim backends");
  }
  if (!params_.detector.analytic_compatible()) {
    throw std::invalid_argument(
        std::string("GcsSpnModel: detector model \"") +
        ids::to_string(params_.detector.kind) +
        "\" is time-dependent and cannot be expressed as a "
        "time-homogeneous CTMC; use the des or protocol_sim backend "
        "(for piecewise-constant rate variation, use the first-class "
        "schedule/mission fields instead)");
  }
  if (!params_.attacker.analytic_compatible()) {
    throw std::invalid_argument(
        std::string("GcsSpnModel: attacker model \"") +
        sim::to_string(params_.attacker.kind) +
        "\" is not a memoryless single-victim process and cannot be "
        "expressed in the birth-death SPN; use the des or protocol_sim "
        "backend");
  }
  voting_ = ids::shared_voting_table(
      ids::VotingParams{params_.num_voters, params_.p1, params_.p2},
      params_.n_init, params_.n_init);
  cost_ = std::make_shared<const gcs::CostModel>(params_.cost);
  build();
}

bool GcsSpnModel::failed_c1(const spn::Marking& m) const {
  return m[gf_] > 0;
}

bool GcsSpnModel::failed_c2(const spn::Marking& m) const {
  const std::int64_t tm = m[tm_];
  const std::int64_t ucm = m[ucm_];
  const std::int64_t members = tm + ucm;
  if (members == 0) return true;  // extinct group: availability lost
  // UCm/(Tm+UCm) > f  ⇔  UCm > f·members, exact in integers for f = 1/3
  // via UCm·3 > members; general f handled in doubles with a half-ulp
  // guard so the boundary (exactly 1/3) does NOT fail, matching "more
  // than 1/3".
  return static_cast<double>(ucm) >
         params_.byzantine_fraction * static_cast<double>(members) +
             1e-9;
}

bool GcsSpnModel::alive(const spn::Marking& m) const {
  return !failed_c1(m) && !failed_c2(m);
}

double GcsSpnModel::mc(const spn::Marking& m) const {
  if (params_.attacker_progress == AttackerProgress::CampaignProgress) {
    // Cumulative campaign: every compromised node, detected or not.
    // (DCm also counts false evictions — the shrunken group is easier
    // prey either way; see DESIGN.md.)
    return 1.0 + static_cast<double>(m[ucm_] + m[dcm_]);
  }
  const double tm = m[tm_];
  const double ucm = m[ucm_];
  if (tm <= 0.0) return 1.0;  // guarded out; safe fallback
  return (tm + ucm) / tm;
}

double GcsSpnModel::md(const spn::Marking& m) const {
  const double members = m[tm_] + m[ucm_];
  if (members <= 0.0) return 1.0;
  return std::max(1.0, static_cast<double>(params_.n_init) / members);
}

ids::VotingErrorRates GcsSpnModel::voting_rates(
    const spn::Marking& m) const {
  const std::int64_t groups = std::max<std::int64_t>(m[ng_], 1);
  return voting_rates_keyed(m[tm_], m[ucm_], groups,
                            per_group(m[tm_], groups),
                            per_group(m[ucm_], groups));
}

ids::DetectorState GcsSpnModel::detector_state(std::int64_t tm,
                                               std::int64_t ucm) const {
  ids::DetectorState s;
  s.compromised = ucm;
  s.evicted = std::max<std::int64_t>(params_.n_init - tm - ucm, 0);
  s.population = tm + ucm;
  s.elapsed_s = 0.0;  // analytic-compatible detectors never read it
  return s;
}

double GcsSpnModel::effective_p1(std::int64_t tm, std::int64_t ucm) const {
  if (params_.detector.kind == ids::DetectorKind::Static) {
    // The base constant itself — keeps T_DRQ's rate expression bitwise
    // the legacy p1·λq·UCm.
    return params_.p1;
  }
  const auto compute = [&] {
    return params_.detector
        .effective(params_.p1, params_.p2, detector_state(tm, ucm))
        .p1;
  };
  if (memo_enabled_ && !dyn_p1_memo_.empty()) {
    const std::int64_t n = params_.n_init;
    if (tm >= 0 && tm <= n && ucm >= 0 && ucm <= n) {
      double& slot =
          dyn_p1_memo_[static_cast<std::size_t>(tm * (n + 1) + ucm)];
      if (std::isnan(slot)) slot = compute();
      return slot;
    }
  }
  return compute();
}

ids::VotingErrorRates GcsSpnModel::voting_rates_keyed(
    std::int64_t tm, std::int64_t ucm, std::int64_t groups,
    std::int64_t g_tm, std::int64_t g_ucm) const {
  if (params_.detector.kind == ids::DetectorKind::Static) {
    return voting_->at(g_tm, g_ucm);
  }
  // State-dependent (p1,p2): the precomputed table keyed only on the
  // voting pools no longer applies — re-evaluate Equation 1 with the
  // detector's effective rates, memoised per (Tm, UCm, NG) since both
  // the effective rates (via Tm,UCm) and the pools (via NG) hang off
  // that triple.
  const auto compute = [&] {
    const auto eff = params_.detector.effective(params_.p1, params_.p2,
                                                detector_state(tm, ucm));
    return ids::voting_error_rates(
        ids::VotingParams{params_.num_voters, eff.p1, eff.p2}, g_tm, g_ucm);
  };
  if (memo_enabled_ && !dyn_vote_memo_.empty()) {
    const std::int64_t n = params_.n_init;
    const std::int64_t gmax = std::max<std::int32_t>(params_.max_groups, 1);
    if (tm >= 0 && tm <= n && ucm >= 0 && ucm <= n && groups >= 1 &&
        groups <= gmax) {
      auto& slot = dyn_vote_memo_[static_cast<std::size_t>(
          (tm * (n + 1) + ucm) * gmax + (groups - 1))];
      if (std::isnan(slot.pfn)) slot = compute();
      return slot;
    }
  }
  return compute();
}

void GcsSpnModel::enable_factor_memo() {
  if (memo_enabled_) return;
  const auto n = static_cast<std::size_t>(params_.n_init);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  det_memo_.assign(n + 1, nan);
  if (params_.attacker_progress == AttackerProgress::CampaignProgress) {
    atk_memo_.assign(n + 1, nan);
  } else {
    atk_memo_.assign((n + 1) * (n + 1), nan);
  }
  const auto gmax =
      static_cast<std::size_t>(std::max<std::int32_t>(params_.max_groups, 1));
  evict_memo_.assign((n + 1) * gmax, nan);
  if (params_.detector.state_dependent()) {
    // ≈ (N+1)²·G entries (~30k at N=100, G=3): the price of keying the
    // voting memo on the detector state instead of the pool sizes.
    dyn_vote_memo_.assign((n + 1) * (n + 1) * gmax,
                          ids::VotingErrorRates{nan, nan});
    dyn_p1_memo_.assign((n + 1) * (n + 1), nan);
  }
  memo_enabled_ = true;
}

double GcsSpnModel::detection_rate_at(const spn::Marking& m) const {
  return detection_rate_memo(m[tm_] + m[ucm_], m);
}

double GcsSpnModel::detection_rate_memo(std::int64_t members,
                                        const spn::Marking& m) const {
  if (memo_enabled_ && members >= 0 &&
      members < static_cast<std::int64_t>(det_memo_.size())) {
    double& slot = det_memo_[static_cast<std::size_t>(members)];
    if (std::isnan(slot)) {
      slot = ids::detection_rate(params_.detection_shape, params_.t_ids,
                                 md(m), params_.p_index);
    }
    return slot;
  }
  return ids::detection_rate(params_.detection_shape, params_.t_ids, md(m),
                             params_.p_index);
}

double GcsSpnModel::attacker_rate_at(const spn::Marking& m) const {
  if (memo_enabled_) {
    const std::int64_t n = params_.n_init;
    std::int64_t key = -1;
    if (params_.attacker_progress == AttackerProgress::CampaignProgress) {
      // mc = 1 + UCm + DCm.
      const std::int64_t k = m[ucm_] + m[dcm_];
      if (k >= 0 && k <= n) key = k;
    } else {
      // mc = (Tm+UCm)/Tm.
      const std::int64_t tm = m[tm_];
      const std::int64_t ucm = m[ucm_];
      if (tm >= 0 && tm <= n && ucm >= 0 && ucm <= n) {
        key = tm * (n + 1) + ucm;
      }
    }
    if (key >= 0 && key < static_cast<std::int64_t>(atk_memo_.size())) {
      double& slot = atk_memo_[static_cast<std::size_t>(key)];
      if (std::isnan(slot)) {
        slot = ids::attacker_rate(params_.attacker_shape, params_.lambda_c,
                                  mc(m), params_.p_index);
      }
      return slot;
    }
  }
  return ids::attacker_rate(params_.attacker_shape, params_.lambda_c, mc(m),
                            params_.p_index);
}

double GcsSpnModel::eviction_impulse_at(const spn::Marking& m) const {
  return eviction_impulse_memo(m[tm_] + m[ucm_],
                               std::max<std::int32_t>(m[ng_], 1));
}

double GcsSpnModel::eviction_impulse_memo(std::int64_t members,
                                          std::int64_t groups) const {
  // Exactly the T_IDS/T_FA impulse expression build() registers; the
  // memo only caches its (deterministic) result, keyed by the two
  // marking quantities it reads.
  const auto compute = [&] {
    gcs::GroupState s;
    s.members = static_cast<double>(members);
    s.groups = static_cast<double>(groups);
    s.initial_size = static_cast<double>(params_.n_init);
    return cost_->eviction_impulse_bits(s);
  };
  if (memo_enabled_) {
    const std::int64_t gmax = std::max<std::int32_t>(params_.max_groups, 1);
    if (members >= 0 && members <= params_.n_init && groups <= gmax) {
      double& slot = evict_memo_[static_cast<std::size_t>(members * gmax +
                                                          (groups - 1))];
      if (std::isnan(slot)) slot = compute();
      return slot;
    }
  }
  return compute();
}

spn::BatchRateFn GcsSpnModel::batch_rate_fn(
    std::vector<const GcsSpnModel*> models) {
  if (models.empty()) return {};
  // Map the shared structure's transition ids to their model role once;
  // the hook then dispatches on a flat array instead of names.
  enum class Role : std::uint8_t { CP, IDS, FA, DRQ, PAR, MER, Other };
  const spn::PetriNet& net = models.front()->net();
  std::vector<Role> roles(net.num_transitions(), Role::Other);
  const auto assign = [&](const char* name, Role r) {
    if (const auto t = net.find_transition(name)) roles[*t] = r;
  };
  assign("T_CP", Role::CP);
  assign("T_IDS", Role::IDS);
  assign("T_FA", Role::FA);
  assign("T_DRQ", Role::DRQ);
  assign("T_PAR", Role::PAR);
  assign("T_MER", Role::MER);

  return [models = std::move(models), roles = std::move(roles)](
             spn::TransitionId t, const spn::Marking& m,
             std::span<double> rates, std::span<double> impulses) -> bool {
    if (t >= roles.size() || roles[t] == Role::Other) return false;
    // PetriNet::rate clamps non-positive rate-function values to 0; the
    // hook must agree bitwise with it, so mirror the clamp.
    const auto clamp = [](double r) { return r > 0.0 ? r : 0.0; };
    const GcsSpnModel& m0 = *models.front();
    const std::size_t P = models.size();
    switch (roles[t]) {
      case Role::CP:
        for (std::size_t p = 0; p < P; ++p) {
          rates[p] = clamp(models[p]->attacker_rate_at(m));
          impulses[p] = 0.0;
        }
        return true;
      case Role::IDS: {
        // Token counts, memo keys and the per-group voting-pool indices
        // depend on the marking alone — hoist them out of the point
        // loop.  The per-point expression is exactly the T_IDS rate
        // lambda's: voting_rates_keyed serves the static table lookup
        // for static detectors and the (Tm,UCm,NG)-keyed dynamic memo
        // for state-dependent ones.
        const std::int64_t tm_tok = m[m0.tm_];
        const std::int64_t ucm_tok = m[m0.ucm_];
        const double ucm = static_cast<double>(ucm_tok);
        const std::int64_t members = tm_tok + ucm_tok;
        const std::int64_t groups = std::max<std::int64_t>(m[m0.ng_], 1);
        const std::int64_t g_tm = per_group(tm_tok, groups);
        const std::int64_t g_ucm = per_group(ucm_tok, groups);
        for (std::size_t p = 0; p < P; ++p) {
          const GcsSpnModel& mod = *models[p];
          rates[p] =
              clamp(ucm * mod.detection_rate_memo(members, m) *
                    (1.0 - mod.voting_rates_keyed(tm_tok, ucm_tok, groups,
                                                  g_tm, g_ucm)
                               .pfn));
          impulses[p] = mod.eviction_impulse_memo(members, groups);
        }
        return true;
      }
      case Role::FA: {
        const std::int64_t tm_tok = m[m0.tm_];
        const std::int64_t ucm_tok = m[m0.ucm_];
        const double tm = static_cast<double>(tm_tok);
        const std::int64_t members = tm_tok + ucm_tok;
        const std::int64_t groups = std::max<std::int64_t>(m[m0.ng_], 1);
        const std::int64_t g_tm = per_group(tm_tok, groups);
        const std::int64_t g_ucm = per_group(ucm_tok, groups);
        for (std::size_t p = 0; p < P; ++p) {
          const GcsSpnModel& mod = *models[p];
          rates[p] = clamp(tm * mod.detection_rate_memo(members, m) *
                           mod.voting_rates_keyed(tm_tok, ucm_tok, groups,
                                                  g_tm, g_ucm)
                               .pfp);
          impulses[p] = mod.eviction_impulse_memo(members, groups);
        }
        return true;
      }
      case Role::DRQ: {
        const std::int64_t tm_tok = m[m0.tm_];
        const std::int64_t ucm_tok = m[m0.ucm_];
        const double ucm = static_cast<double>(ucm_tok);
        for (std::size_t p = 0; p < P; ++p) {
          const GcsSpnModel& mod = *models[p];
          rates[p] = clamp(mod.effective_p1(tm_tok, ucm_tok) *
                           mod.params_.lambda_q * ucm);
          impulses[p] = 0.0;
        }
        return true;
      }
      case Role::PAR: {
        const auto g = static_cast<std::size_t>(m[m0.ng_]);
        for (std::size_t p = 0; p < P; ++p) {
          const auto& pr = models[p]->params_.partition_rates;
          rates[p] = clamp(g < pr.size() ? pr[g] : 0.0);
          impulses[p] = 0.0;
        }
        return true;
      }
      case Role::MER: {
        const auto g = static_cast<std::size_t>(m[m0.ng_]);
        for (std::size_t p = 0; p < P; ++p) {
          const auto& mr = models[p]->params_.merge_rates;
          rates[p] = clamp(g < mr.size() ? mr[g] : 0.0);
          impulses[p] = 0.0;
        }
        return true;
      }
      case Role::Other:
        break;
    }
    return false;
  };
}

gcs::CostBreakdown GcsSpnModel::cost_rates(const spn::Marking& m) const {
  gcs::GroupState s;
  s.members = static_cast<double>(m[tm_] + m[ucm_]);
  s.groups = static_cast<double>(std::max<std::int32_t>(m[ng_], 1));
  s.initial_size = static_cast<double>(params_.n_init);

  const double det = detection_rate_at(m);
  const auto g = static_cast<std::size_t>(s.groups);
  double pm_rate = 0.0;
  if (params_.max_groups > 1) {
    if (g < params_.partition_rates.size() &&
        static_cast<std::int32_t>(g) < params_.max_groups) {
      pm_rate += params_.partition_rates[g];
    }
    if (g < params_.merge_rates.size() && g > 1) {
      pm_rate += params_.merge_rates[g];
    }
  }
  return cost_->breakdown(s, params_.lambda_q, params_.lambda_join,
                          params_.mu_leave, det,
                          static_cast<std::size_t>(params_.num_voters),
                          pm_rate);
}

void GcsSpnModel::build() {
  tm_ = net_.add_place("Tm", params_.n_init);
  ucm_ = net_.add_place("UCm", 0);
  dcm_ = net_.add_place("DCm", 0);
  gf_ = net_.add_place("GF", 0);
  ng_ = net_.add_place("NG", 1);

  // Shared guard: the group is only live while neither failure condition
  // holds — this is what makes C1/C2 states absorbing (paper §4).
  auto alive_guard = [this](const spn::Marking& m) { return alive(m); };

  // Impulse: one eviction forces a GDH rekey of the affected group
  // (eviction_impulse_at: memoised when the factor memo is on).
  auto eviction_impulse = [this](const spn::Marking& m) {
    return eviction_impulse_at(m);
  };

  // T_CP: a trusted member is compromised at the attacker rate A(mc).
  net_.transition("T_CP")
      .input(tm_)
      .output(ucm_)
      .rate([this](const spn::Marking& m) { return attacker_rate_at(m); })
      .guard(alive_guard)
      .add();

  // T_IDS: a compromised-undetected node is caught by the voting IDS.
  net_.transition("T_IDS")
      .input(ucm_)
      .output(dcm_)
      .rate([this](const spn::Marking& m) {
        return static_cast<double>(m[ucm_]) * detection_rate_at(m) *
               (1.0 - voting_rates(m).pfn);
      })
      .guard(alive_guard)
      .impulse(eviction_impulse)
      .add();

  // T_FA: a trusted node is falsely accused and evicted.
  net_.transition("T_FA")
      .input(tm_)
      .output(dcm_)
      .rate([this](const spn::Marking& m) {
        return static_cast<double>(m[tm_]) * detection_rate_at(m) *
               voting_rates(m).pfp;
      })
      .guard(alive_guard)
      .impulse(eviction_impulse)
      .add();

  // T_DRQ: an undetected compromised member requests and obtains data —
  // host IDS misses with (detector-effective) probability p1 — and the
  // group leaks (C1).
  net_.transition("T_DRQ")
      .input(ucm_)
      .output(gf_)
      .rate([this](const spn::Marking& m) {
        return effective_p1(m[tm_], m[ucm_]) * params_.lambda_q *
               static_cast<double>(m[ucm_]);
      })
      .guard(alive_guard)
      .add();

  // Group birth–death (T_PAR / T_MER) when mobility supports partitions.
  if (params_.max_groups > 1) {
    net_.transition("T_PAR")
        .input(ng_)
        .output(ng_, 2)
        .rate([this](const spn::Marking& m) {
          const auto g = static_cast<std::size_t>(m[ng_]);
          return g < params_.partition_rates.size()
                     ? params_.partition_rates[g]
                     : 0.0;
        })
        .guard([this, alive_guard](const spn::Marking& m) {
          // Each group needs at least one member post-split.
          return alive_guard(m) && m[ng_] < params_.max_groups &&
                 m[tm_] + m[ucm_] > m[ng_];
        })
        .add();

    net_.transition("T_MER")
        .input(ng_, 2)
        .output(ng_)
        .rate([this](const spn::Marking& m) {
          const auto g = static_cast<std::size_t>(m[ng_]);
          return g < params_.merge_rates.size() ? params_.merge_rates[g]
                                                : 0.0;
        })
        .guard(alive_guard)
        .add();
  }
}

const spn::ReachabilityGraph& GcsSpnModel::graph() const {
  std::call_once(graph_once_, [this] {
    graph_ = std::make_unique<const spn::ReachabilityGraph>(
        spn::explore(net_));
  });
  return *graph_;
}

std::vector<double> GcsSpnModel::reliability_at(
    std::span<const double> times) const {
  // The backward-equation integrator handles the stiff mission-length
  // horizons that uniformisation cannot (Λ·t up to ~1e8 at the paper's
  // parameters; see spn/reliability_ode.h).
  const spn::ReliabilityOde ode(graph());
  std::vector<double> sorted(times.begin(), times.end());
  if (!std::is_sorted(sorted.begin(), sorted.end())) {
    throw std::invalid_argument(
        "reliability_at: times must be ascending");
  }
  return ode.survival_at(sorted);
}

Evaluation GcsSpnModel::evaluate() const { return evaluate_on(graph()); }

Evaluation GcsSpnModel::evaluate_on(
    const spn::ReachabilityGraph& graph) const {
  const spn::AbsorbingAnalyzer analyzer(graph);
  return evaluate_with(analyzer, {}, {});
}

Evaluation GcsSpnModel::evaluate_with(
    const spn::AbsorbingAnalyzer& analyzer,
    std::span<const double> edge_rates,
    std::span<const double> edge_impulses) const {
  const auto& graph = analyzer.graph();
  // Rates and impulses describe one sweep point together: mixing this
  // point's rates with the graph's stored impulses (or vice versa)
  // would silently blend two parameter points.
  if (edge_rates.empty() != edge_impulses.empty() ||
      (!edge_rates.empty() && (edge_rates.size() != graph.edges.size() ||
                               edge_impulses.size() != graph.edges.size()))) {
    throw std::invalid_argument(
        "evaluate_with: edge_rates/edge_impulses must both be empty or "
        "both match the graph's edge count");
  }
  const auto res =
      edge_rates.empty() ? analyzer.solve() : analyzer.solve(edge_rates);

  Evaluation ev;
  ev.num_states = graph.num_states();
  ev.solver_blocks = res.solver_blocks;
  ev.mttsf = res.mtta;

  // One pass over the states: the CostBreakdown — detection rate,
  // voting-table lookup, cost model — is computed once per state and
  // every component accumulates together; absorption probabilities
  // classify into C1/C2 in the same sweep.
  gcs::CostBreakdown acc;
  for (std::size_t s = 0; s < graph.num_states(); ++s) {
    const double tau = res.sojourn[s];
    if (tau > 0.0) {
      const auto c = cost_rates(graph.states[s]);
      acc.group_comm += tau * c.group_comm;
      acc.status += tau * c.status;
      acc.rekey += tau * c.rekey;
      acc.ids += tau * c.ids;
      acc.beacon += tau * c.beacon;
      acc.partition_merge += tau * c.partition_merge;
    }
    const double ap = res.absorb_probability[s];
    if (ap > 0.0) {
      if (failed_c1(graph.states[s])) {
        ev.p_failure_c1 += ap;
      } else if (failed_c2(graph.states[s])) {
        ev.p_failure_c2 += ap;
      }
    }
  }
  // Impulse (eviction rekey) rewards in one pass over the edges — the
  // overload keyed to the same rate override as the solve above, so
  // eviction costs never mix stored and per-point rates.
  const double acc_evict =
      edge_impulses.empty()
          ? analyzer.accumulated_impulse_reward(res)
          : analyzer.accumulated_impulse_reward(res, edge_rates,
                                                edge_impulses);

  if (ev.mttsf > 0.0) {
    ev.cost_rates.group_comm = acc.group_comm / ev.mttsf;
    ev.cost_rates.status = acc.status / ev.mttsf;
    ev.cost_rates.rekey = acc.rekey / ev.mttsf;
    ev.cost_rates.ids = acc.ids / ev.mttsf;
    ev.cost_rates.beacon = acc.beacon / ev.mttsf;
    ev.cost_rates.partition_merge = acc.partition_merge / ev.mttsf;
    ev.eviction_cost_rate = acc_evict / ev.mttsf;
    ev.ctotal = ev.cost_rates.total() + ev.eviction_cost_rate;
  }
  return ev;
}

Evaluation GcsSpnModel::evaluate_reference() const {
  // The pre-SweepEngine per-point path: re-explore the net and make one
  // full-state reward pass per cost component.  Kept as the equivalence
  // oracle (tests) and the naive baseline (bench/bench_sweep).
  const auto graph = spn::explore(net_);
  const spn::AbsorbingAnalyzer analyzer(graph);
  const auto res = analyzer.solve();

  Evaluation ev;
  ev.num_states = graph.num_states();
  ev.solver_blocks = res.solver_blocks;
  ev.mttsf = res.mtta;

  ev.p_failure_c1 = analyzer.absorption_probability_where(
      res, [this](const spn::Marking& m) { return failed_c1(m); });
  ev.p_failure_c2 = analyzer.absorption_probability_where(
      res, [this](const spn::Marking& m) {
        return !failed_c1(m) && failed_c2(m);
      });

  // Accumulated cost components (hop-bits) over [0, MTTSF).
  auto accumulate = [&](double gcs::CostBreakdown::*member) {
    return analyzer.accumulated_rate_reward(
        res, [this, member](const spn::Marking& m) {
          return cost_rates(m).*member;
        });
  };
  const double acc_gc = accumulate(&gcs::CostBreakdown::group_comm);
  const double acc_status = accumulate(&gcs::CostBreakdown::status);
  const double acc_rekey = accumulate(&gcs::CostBreakdown::rekey);
  const double acc_ids = accumulate(&gcs::CostBreakdown::ids);
  const double acc_beacon = accumulate(&gcs::CostBreakdown::beacon);
  const double acc_pm = accumulate(&gcs::CostBreakdown::partition_merge);
  const double acc_evict = analyzer.accumulated_impulse_reward(res);

  if (ev.mttsf > 0.0) {
    ev.cost_rates.group_comm = acc_gc / ev.mttsf;
    ev.cost_rates.status = acc_status / ev.mttsf;
    ev.cost_rates.rekey = acc_rekey / ev.mttsf;
    ev.cost_rates.ids = acc_ids / ev.mttsf;
    ev.cost_rates.beacon = acc_beacon / ev.mttsf;
    ev.cost_rates.partition_merge = acc_pm / ev.mttsf;
    ev.eviction_cost_rate = acc_evict / ev.mttsf;
    ev.ctotal = ev.cost_rates.total() + ev.eviction_cost_rate;
  }
  return ev;
}

std::vector<Evaluation> evaluate_with_batch(
    std::span<const GcsSpnModel* const> models,
    const spn::AbsorbingAnalyzer& analyzer,
    std::span<const double> edge_rates, std::span<const double> edge_impulses,
    bool factor_reuse, util::Arena& arena) {
  const std::size_t P = models.size();
  if (P == 0) {
    throw std::invalid_argument("evaluate_with_batch: empty model batch");
  }
  const auto& graph = analyzer.graph();
  const std::size_t E = graph.edges.size();
  const std::size_t n = graph.num_states();
  if (edge_rates.size() != E * P || edge_impulses.size() != E * P) {
    throw std::invalid_argument(
        "evaluate_with_batch: edge_rates/edge_impulses must be edge count x "
        "batch size");
  }
  spn::BatchSolveOptions sopts;
  sopts.factor_reuse = factor_reuse;
  const auto res = analyzer.solve_batch(edge_rates, P, sopts, &arena);

  // cost_rates(m) depends on the marking only through Tm+UCm (members)
  // and max(NG,1) (groups) — every other input is a model parameter.
  // Classing the states by that pair lets each point compute ONE
  // CostBreakdown per class (bitwise the per-state value, evaluated on
  // the class representative's marking) instead of one per state.
  const auto* m0 = models[0];
  const auto tm = m0->place_tm();
  const auto ucm = m0->place_ucm();
  const auto ng = m0->place_ng();
  std::vector<std::uint32_t> state_class(n);
  std::vector<std::uint32_t> class_rep;
  std::unordered_map<std::uint64_t, std::uint32_t> class_ids;
  for (std::size_t s = 0; s < n; ++s) {
    const auto& m = graph.states[s];
    const auto members = static_cast<std::uint64_t>(m[tm] + m[ucm]);
    const auto groups =
        static_cast<std::uint64_t>(std::max<std::int64_t>(m[ng], 1));
    const std::uint64_t key = (members << 16) | groups;
    const auto [it, inserted] =
        class_ids.try_emplace(key, static_cast<std::uint32_t>(class_rep.size()));
    if (inserted) class_rep.push_back(static_cast<std::uint32_t>(s));
    state_class[s] = it->second;
  }
  const std::size_t n_classes = class_rep.size();
  std::vector<gcs::CostBreakdown> class_cost(n_classes * P);
  std::vector<char> class_filled(n_classes * P, 0);

  std::vector<Evaluation> out(P);
  std::vector<gcs::CostBreakdown> acc(P);
  std::vector<double> evict(P, 0.0);
  for (std::size_t p = 0; p < P; ++p) {
    out[p].num_states = n;
    out[p].solver_blocks = res.solver_blocks;
    out[p].mttsf = res.mtta[p];
  }

  // State pass: rate-cost accumulation over transient mass and C1/C2
  // classification of absorbing mass — per point, in evaluate_with's
  // exact state order (states ascending, cost components in member
  // order), so every point's sums are the scalar sums bitwise.
  for (std::size_t s = 0; s < n; ++s) {
    const double* tau_row = res.sojourn.data() + s * P;
    const double* ap_row = res.absorb_probability.data() + s * P;
    const auto cls = static_cast<std::size_t>(state_class[s]);
    for (std::size_t p = 0; p < P; ++p) {
      const double tau = tau_row[p];
      if (tau > 0.0) {
        const std::size_t slot = cls * P + p;
        if (!class_filled[slot]) {
          class_cost[slot] =
              models[p]->cost_rates(graph.states[class_rep[cls]]);
          class_filled[slot] = 1;
        }
        const auto& c = class_cost[slot];
        acc[p].group_comm += tau * c.group_comm;
        acc[p].status += tau * c.status;
        acc[p].rekey += tau * c.rekey;
        acc[p].ids += tau * c.ids;
        acc[p].beacon += tau * c.beacon;
        acc[p].partition_merge += tau * c.partition_merge;
      }
      const double ap = ap_row[p];
      if (ap > 0.0) {
        if (models[p]->failed_c1(graph.states[s])) {
          out[p].p_failure_c1 += ap;
        } else if (models[p]->failed_c2(graph.states[s])) {
          out[p].p_failure_c2 += ap;
        }
      }
    }
  }

  // Impulse (eviction rekey) pass: the point-major mirror of
  // accumulated_impulse_reward(res, edge_rates, edge_impulses) — same
  // edge order, same zero-impulse skips, per point.
  for (std::size_t i = 0; i < E; ++i) {
    const double* imp_row = edge_impulses.data() + i * P;
    const double* rate_row = edge_rates.data() + i * P;
    const double* soj_row =
        res.sojourn.data() + static_cast<std::size_t>(graph.edges[i].src) * P;
    for (std::size_t p = 0; p < P; ++p) {
      if (imp_row[p] == 0.0) continue;
      evict[p] += soj_row[p] * rate_row[p] * imp_row[p];
    }
  }

  for (std::size_t p = 0; p < P; ++p) {
    auto& ev = out[p];
    if (ev.mttsf > 0.0) {
      ev.cost_rates.group_comm = acc[p].group_comm / ev.mttsf;
      ev.cost_rates.status = acc[p].status / ev.mttsf;
      ev.cost_rates.rekey = acc[p].rekey / ev.mttsf;
      ev.cost_rates.ids = acc[p].ids / ev.mttsf;
      ev.cost_rates.beacon = acc[p].beacon / ev.mttsf;
      ev.cost_rates.partition_merge = acc[p].partition_merge / ev.mttsf;
      ev.eviction_cost_rate = evict[p] / ev.mttsf;
      ev.ctotal = ev.cost_rates.total() + ev.eviction_cost_rate;
    }
  }
  return out;
}

}  // namespace midas::core
