#include "core/gcs_spn_model.h"

#include <cmath>
#include <stdexcept>

#include <algorithm>

#include "ids/functions.h"
#include "spn/reliability_ode.h"

namespace midas::core {

namespace {

/// Rounded per-group share of a system-wide token count.
std::int64_t per_group(std::int64_t total, std::int64_t groups) {
  if (groups <= 1) return total;
  const double share =
      static_cast<double>(total) / static_cast<double>(groups);
  return static_cast<std::int64_t>(std::llround(share));
}

}  // namespace

GcsSpnModel::GcsSpnModel(Params params) : params_(std::move(params)) {
  params_.validate();
  voting_ = ids::shared_voting_table(
      ids::VotingParams{params_.num_voters, params_.p1, params_.p2},
      params_.n_init, params_.n_init);
  cost_ = std::make_shared<const gcs::CostModel>(params_.cost);
  build();
}

bool GcsSpnModel::failed_c1(const spn::Marking& m) const {
  return m[gf_] > 0;
}

bool GcsSpnModel::failed_c2(const spn::Marking& m) const {
  const std::int64_t tm = m[tm_];
  const std::int64_t ucm = m[ucm_];
  const std::int64_t members = tm + ucm;
  if (members == 0) return true;  // extinct group: availability lost
  // UCm/(Tm+UCm) > f  ⇔  UCm > f·members, exact in integers for f = 1/3
  // via UCm·3 > members; general f handled in doubles with a half-ulp
  // guard so the boundary (exactly 1/3) does NOT fail, matching "more
  // than 1/3".
  return static_cast<double>(ucm) >
         params_.byzantine_fraction * static_cast<double>(members) +
             1e-9;
}

bool GcsSpnModel::alive(const spn::Marking& m) const {
  return !failed_c1(m) && !failed_c2(m);
}

double GcsSpnModel::mc(const spn::Marking& m) const {
  if (params_.attacker_progress == AttackerProgress::CampaignProgress) {
    // Cumulative campaign: every compromised node, detected or not.
    // (DCm also counts false evictions — the shrunken group is easier
    // prey either way; see DESIGN.md.)
    return 1.0 + static_cast<double>(m[ucm_] + m[dcm_]);
  }
  const double tm = m[tm_];
  const double ucm = m[ucm_];
  if (tm <= 0.0) return 1.0;  // guarded out; safe fallback
  return (tm + ucm) / tm;
}

double GcsSpnModel::md(const spn::Marking& m) const {
  const double members = m[tm_] + m[ucm_];
  if (members <= 0.0) return 1.0;
  return std::max(1.0, static_cast<double>(params_.n_init) / members);
}

ids::VotingErrorRates GcsSpnModel::voting_rates(
    const spn::Marking& m) const {
  const std::int64_t groups = std::max<std::int64_t>(m[ng_], 1);
  return voting_->at(per_group(m[tm_], groups),
                     per_group(m[ucm_], groups));
}

gcs::CostBreakdown GcsSpnModel::cost_rates(const spn::Marking& m) const {
  gcs::GroupState s;
  s.members = static_cast<double>(m[tm_] + m[ucm_]);
  s.groups = static_cast<double>(std::max<std::int32_t>(m[ng_], 1));
  s.initial_size = static_cast<double>(params_.n_init);

  const double det = ids::detection_rate(params_.detection_shape,
                                         params_.t_ids, md(m),
                                         params_.p_index);
  const auto g = static_cast<std::size_t>(s.groups);
  double pm_rate = 0.0;
  if (params_.max_groups > 1) {
    if (g < params_.partition_rates.size() &&
        static_cast<std::int32_t>(g) < params_.max_groups) {
      pm_rate += params_.partition_rates[g];
    }
    if (g < params_.merge_rates.size() && g > 1) {
      pm_rate += params_.merge_rates[g];
    }
  }
  return cost_->breakdown(s, params_.lambda_q, params_.lambda_join,
                          params_.mu_leave, det,
                          static_cast<std::size_t>(params_.num_voters),
                          pm_rate);
}

void GcsSpnModel::build() {
  tm_ = net_.add_place("Tm", params_.n_init);
  ucm_ = net_.add_place("UCm", 0);
  dcm_ = net_.add_place("DCm", 0);
  gf_ = net_.add_place("GF", 0);
  ng_ = net_.add_place("NG", 1);

  // Shared guard: the group is only live while neither failure condition
  // holds — this is what makes C1/C2 states absorbing (paper §4).
  auto alive_guard = [this](const spn::Marking& m) { return alive(m); };

  // Impulse: one eviction forces a GDH rekey of the affected group.
  auto eviction_impulse = [this](const spn::Marking& m) {
    gcs::GroupState s;
    s.members = static_cast<double>(m[tm_] + m[ucm_]);
    s.groups = static_cast<double>(std::max<std::int32_t>(m[ng_], 1));
    s.initial_size = static_cast<double>(params_.n_init);
    return cost_->eviction_impulse_bits(s);
  };

  // T_CP: a trusted member is compromised at the attacker rate A(mc).
  net_.transition("T_CP")
      .input(tm_)
      .output(ucm_)
      .rate([this](const spn::Marking& m) {
        return ids::attacker_rate(params_.attacker_shape, params_.lambda_c,
                                  mc(m), params_.p_index);
      })
      .guard(alive_guard)
      .add();

  // T_IDS: a compromised-undetected node is caught by the voting IDS.
  net_.transition("T_IDS")
      .input(ucm_)
      .output(dcm_)
      .rate([this](const spn::Marking& m) {
        const double det = ids::detection_rate(
            params_.detection_shape, params_.t_ids, md(m), params_.p_index);
        return static_cast<double>(m[ucm_]) * det *
               (1.0 - voting_rates(m).pfn);
      })
      .guard(alive_guard)
      .impulse(eviction_impulse)
      .add();

  // T_FA: a trusted node is falsely accused and evicted.
  net_.transition("T_FA")
      .input(tm_)
      .output(dcm_)
      .rate([this](const spn::Marking& m) {
        const double det = ids::detection_rate(
            params_.detection_shape, params_.t_ids, md(m), params_.p_index);
        return static_cast<double>(m[tm_]) * det * voting_rates(m).pfp;
      })
      .guard(alive_guard)
      .impulse(eviction_impulse)
      .add();

  // T_DRQ: an undetected compromised member requests and obtains data —
  // host IDS misses with probability p1 — and the group leaks (C1).
  net_.transition("T_DRQ")
      .input(ucm_)
      .output(gf_)
      .rate([this](const spn::Marking& m) {
        return params_.p1 * params_.lambda_q *
               static_cast<double>(m[ucm_]);
      })
      .guard(alive_guard)
      .add();

  // Group birth–death (T_PAR / T_MER) when mobility supports partitions.
  if (params_.max_groups > 1) {
    net_.transition("T_PAR")
        .input(ng_)
        .output(ng_, 2)
        .rate([this](const spn::Marking& m) {
          const auto g = static_cast<std::size_t>(m[ng_]);
          return g < params_.partition_rates.size()
                     ? params_.partition_rates[g]
                     : 0.0;
        })
        .guard([this, alive_guard](const spn::Marking& m) {
          // Each group needs at least one member post-split.
          return alive_guard(m) && m[ng_] < params_.max_groups &&
                 m[tm_] + m[ucm_] > m[ng_];
        })
        .add();

    net_.transition("T_MER")
        .input(ng_, 2)
        .output(ng_)
        .rate([this](const spn::Marking& m) {
          const auto g = static_cast<std::size_t>(m[ng_]);
          return g < params_.merge_rates.size() ? params_.merge_rates[g]
                                                : 0.0;
        })
        .guard(alive_guard)
        .add();
  }
}

const spn::ReachabilityGraph& GcsSpnModel::graph() const {
  std::call_once(graph_once_, [this] {
    graph_ = std::make_unique<const spn::ReachabilityGraph>(
        spn::explore(net_));
  });
  return *graph_;
}

std::vector<double> GcsSpnModel::reliability_at(
    std::span<const double> times) const {
  // The backward-equation integrator handles the stiff mission-length
  // horizons that uniformisation cannot (Λ·t up to ~1e8 at the paper's
  // parameters; see spn/reliability_ode.h).
  const spn::ReliabilityOde ode(graph());
  std::vector<double> sorted(times.begin(), times.end());
  if (!std::is_sorted(sorted.begin(), sorted.end())) {
    throw std::invalid_argument(
        "reliability_at: times must be ascending");
  }
  return ode.survival_at(sorted);
}

Evaluation GcsSpnModel::evaluate() const { return evaluate_on(graph()); }

Evaluation GcsSpnModel::evaluate_on(
    const spn::ReachabilityGraph& graph) const {
  const spn::AbsorbingAnalyzer analyzer(graph);
  return evaluate_with(analyzer, {}, {});
}

Evaluation GcsSpnModel::evaluate_with(
    const spn::AbsorbingAnalyzer& analyzer,
    std::span<const double> edge_rates,
    std::span<const double> edge_impulses) const {
  const auto& graph = analyzer.graph();
  // Rates and impulses describe one sweep point together: mixing this
  // point's rates with the graph's stored impulses (or vice versa)
  // would silently blend two parameter points.
  if (edge_rates.empty() != edge_impulses.empty() ||
      (!edge_rates.empty() && (edge_rates.size() != graph.edges.size() ||
                               edge_impulses.size() != graph.edges.size()))) {
    throw std::invalid_argument(
        "evaluate_with: edge_rates/edge_impulses must both be empty or "
        "both match the graph's edge count");
  }
  const auto res =
      edge_rates.empty() ? analyzer.solve() : analyzer.solve(edge_rates);

  Evaluation ev;
  ev.num_states = graph.num_states();
  ev.solver_blocks = res.solver_blocks;
  ev.mttsf = res.mtta;

  // One pass over the states: the CostBreakdown — detection rate,
  // voting-table lookup, cost model — is computed once per state and
  // every component accumulates together; absorption probabilities
  // classify into C1/C2 in the same sweep.
  gcs::CostBreakdown acc;
  for (std::size_t s = 0; s < graph.num_states(); ++s) {
    const double tau = res.sojourn[s];
    if (tau > 0.0) {
      const auto c = cost_rates(graph.states[s]);
      acc.group_comm += tau * c.group_comm;
      acc.status += tau * c.status;
      acc.rekey += tau * c.rekey;
      acc.ids += tau * c.ids;
      acc.beacon += tau * c.beacon;
      acc.partition_merge += tau * c.partition_merge;
    }
    const double ap = res.absorb_probability[s];
    if (ap > 0.0) {
      if (failed_c1(graph.states[s])) {
        ev.p_failure_c1 += ap;
      } else if (failed_c2(graph.states[s])) {
        ev.p_failure_c2 += ap;
      }
    }
  }
  // Impulse (eviction rekey) rewards in one pass over the edges — the
  // overload keyed to the same rate override as the solve above, so
  // eviction costs never mix stored and per-point rates.
  const double acc_evict =
      edge_impulses.empty()
          ? analyzer.accumulated_impulse_reward(res)
          : analyzer.accumulated_impulse_reward(res, edge_rates,
                                                edge_impulses);

  if (ev.mttsf > 0.0) {
    ev.cost_rates.group_comm = acc.group_comm / ev.mttsf;
    ev.cost_rates.status = acc.status / ev.mttsf;
    ev.cost_rates.rekey = acc.rekey / ev.mttsf;
    ev.cost_rates.ids = acc.ids / ev.mttsf;
    ev.cost_rates.beacon = acc.beacon / ev.mttsf;
    ev.cost_rates.partition_merge = acc.partition_merge / ev.mttsf;
    ev.eviction_cost_rate = acc_evict / ev.mttsf;
    ev.ctotal = ev.cost_rates.total() + ev.eviction_cost_rate;
  }
  return ev;
}

Evaluation GcsSpnModel::evaluate_reference() const {
  // The pre-SweepEngine per-point path: re-explore the net and make one
  // full-state reward pass per cost component.  Kept as the equivalence
  // oracle (tests) and the naive baseline (bench/bench_sweep).
  const auto graph = spn::explore(net_);
  const spn::AbsorbingAnalyzer analyzer(graph);
  const auto res = analyzer.solve();

  Evaluation ev;
  ev.num_states = graph.num_states();
  ev.solver_blocks = res.solver_blocks;
  ev.mttsf = res.mtta;

  ev.p_failure_c1 = analyzer.absorption_probability_where(
      res, [this](const spn::Marking& m) { return failed_c1(m); });
  ev.p_failure_c2 = analyzer.absorption_probability_where(
      res, [this](const spn::Marking& m) {
        return !failed_c1(m) && failed_c2(m);
      });

  // Accumulated cost components (hop-bits) over [0, MTTSF).
  auto accumulate = [&](double gcs::CostBreakdown::*member) {
    return analyzer.accumulated_rate_reward(
        res, [this, member](const spn::Marking& m) {
          return cost_rates(m).*member;
        });
  };
  const double acc_gc = accumulate(&gcs::CostBreakdown::group_comm);
  const double acc_status = accumulate(&gcs::CostBreakdown::status);
  const double acc_rekey = accumulate(&gcs::CostBreakdown::rekey);
  const double acc_ids = accumulate(&gcs::CostBreakdown::ids);
  const double acc_beacon = accumulate(&gcs::CostBreakdown::beacon);
  const double acc_pm = accumulate(&gcs::CostBreakdown::partition_merge);
  const double acc_evict = analyzer.accumulated_impulse_reward(res);

  if (ev.mttsf > 0.0) {
    ev.cost_rates.group_comm = acc_gc / ev.mttsf;
    ev.cost_rates.status = acc_status / ev.mttsf;
    ev.cost_rates.rekey = acc_rekey / ev.mttsf;
    ev.cost_rates.ids = acc_ids / ev.mttsf;
    ev.cost_rates.beacon = acc_beacon / ev.mttsf;
    ev.cost_rates.partition_merge = acc_pm / ev.mttsf;
    ev.eviction_cost_rate = acc_evict / ev.mttsf;
    ev.ctotal = ev.cost_rates.total() + ev.eviction_cost_rate;
  }
  return ev;
}

}  // namespace midas::core
