// Model parameters — one struct holding every knob of the paper's
// Section 5 evaluation, with paper_defaults() reproducing that setup.
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.h"
#include "gcs/cost_model.h"
#include "ids/detector_model.h"
#include "ids/functions.h"
#include "manet/partition_estimator.h"
#include "sim/attacker_model.h"

namespace midas::core {

/// How the attacker-strength argument mc is measured (see DESIGN.md).
/// The paper's formula and prose disagree subtly:
///   * CompromiseRatio — the printed formula mc = (Tm+UCm)/Tm.  Because
///     condition C2 absorbs the chain once UCm/(Tm+UCm) > 1/3, this
///     ratio is confined to [1, 1.5]: attacker shapes barely
///     differentiate.
///   * CampaignProgress — the prose reading ("rate linear to the number
///     of compromised nodes in the system"): mc = 1 + UCm + DCm, the
///     attacker's cumulative campaign, which escalates over the mission
///     and separates the three attacker shapes sharply.
enum class AttackerProgress { CompromiseRatio, CampaignProgress };

struct Params {
  // --- Group population and workload (paper Section 5 defaults).
  std::int32_t n_init = 100;           // N: initial trusted members
  double lambda_join = 1.0 / 3600.0;   // λ: per-node join rate (1/hr)
  double mu_leave = 1.0 / 14400.0;     // μ: per-node leave rate (1/4hr)
  double lambda_q = 1.0 / 60.0;        // λq: per-node data rate (1/min)

  // --- Inside attacker.
  ids::Shape attacker_shape = ids::Shape::Linear;
  double lambda_c = 1.0 / 43200.0;     // λc: base compromise rate (1/12hr)
  double p_index = 3.0;                // p: base index for log/poly shapes
  AttackerProgress attacker_progress = AttackerProgress::CompromiseRatio;
  /// Inter-compromise arrival structure around the base rate A(mc).
  /// Default poisson == the paper's process; see sim/attacker_model.h.
  sim::AttackerModel attacker;

  // --- Intrusion detection.
  ids::Shape detection_shape = ids::Shape::Linear;
  double t_ids = 120.0;                // TIDS: base detection interval (s)
  std::int64_t num_voters = 5;         // m: vote-participants
  double p1 = 0.01;                    // host-IDS false negative
  double p2 = 0.01;                    // host-IDS false positive
  /// Host-IDS error model turning (p1,p2) into state-dependent
  /// effective rates.  Default static == the paper's constants; see
  /// ids/detector_model.h.
  ids::DetectorModel detector;

  // --- Security failure definition.
  // C2 trips when UCm/(Tm+UCm) > byzantine_fraction (paper: 1/3).
  double byzantine_fraction = 1.0 / 3.0;

  // --- Group partition/merge (birth–death on the group count).
  // partition_rates[g] is the g → g+1 rate; merge_rates[g] is g → g−1.
  // Defaults are measured from the MANET random-waypoint simulator (see
  // Params::paper_defaults and bench/abl_partition).
  std::int32_t max_groups = 3;
  std::vector<double> partition_rates;
  std::vector<double> merge_rates;

  // --- Communication cost model.
  gcs::CostParams cost;

  // --- Time-inhomogeneous dynamics (see core/schedule.h).  Both empty
  // by default: the legacy constant model.  At any instant the
  // effective point is base + mission-phase overrides, then schedule
  // multipliers; resolve_timeline() materialises the piecewise-constant
  // segments every backend chains over.
  RateSchedule schedule;
  MissionProfile mission;

  /// True when the params carry ANY schedule/mission structure (even a
  /// constant one) and must be resolved through resolve_timeline()
  /// before reaching a constant-rate consumer such as GcsSpnModel.
  [[nodiscard]] bool time_varying() const noexcept {
    return !schedule.empty() || !mission.empty();
  }

  /// Paper Section 5 defaults: N=100, radius 500 m, λ=1/hr, μ=1/4hr,
  /// λq=1/min, λc=1/12hr, p1=p2=1 %, BW=1 Mb/s, m=5, p=3, linear
  /// attacker and detection.
  [[nodiscard]] static Params paper_defaults();

  /// Imports mobility-derived quantities (partition/merge rates, hop
  /// counts, degree) from a MANET simulation estimate.
  void apply_mobility_estimate(const manet::PartitionEstimate& est);

  /// Sanity checks; throws std::invalid_argument with a description.
  /// For time-varying params every resolved timeline segment must
  /// itself be a valid constant parameterisation.
  void validate() const;
};

/// One constant piece of a time-varying parameterisation: from start_s
/// until the next segment's start (the last extends forever), the
/// process runs the time-homogeneous chain of `params` — whose own
/// schedule/mission fields are cleared, so a segment is always safe to
/// hand to a constant-rate consumer.
struct TimelineSegment {
  double start_s = 0.0;
  std::string label;  ///< "phase/segment" names for error messages
  Params params;
};

/// Resolves base + mission + schedule into ordered constant segments:
/// boundaries are the union of mission-phase and schedule breakpoints,
/// and each segment's params apply the active phase's overrides then
/// the active segment's multipliers.  Exactly one segment (bitwise the
/// base rates) when the variation is constant — including the empty
/// and the single-identity-segment cases, since ×1.0 is IEEE-exact.
[[nodiscard]] std::vector<TimelineSegment> resolve_timeline(
    const Params& base);

}  // namespace midas::core
