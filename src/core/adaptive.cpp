#include "core/adaptive.h"

#include <cmath>
#include <stdexcept>

namespace midas::core {

AdaptiveController::AdaptiveController(Params base,
                                       std::optional<double> cost_budget)
    : base_(std::move(base)), cost_budget_(cost_budget) {
  base_.validate();
}

void AdaptiveController::observe(const IntrusionObservation& obs) {
  if (!history_.empty() && obs.time_s < history_.back().time_s) {
    throw std::invalid_argument(
        "AdaptiveController: observations must be time-ordered");
  }
  history_.push_back(obs);
}

AttackerEstimate AdaptiveController::estimate_attacker() const {
  AttackerEstimate est;
  est.samples = history_.size();
  if (history_.empty() || history_.back().time_s <= 0.0) {
    est.lambda_c = base_.lambda_c;
    return est;
  }

  // First-order approximation: base rate = events / horizon.
  est.lambda_c =
      static_cast<double>(history_.size()) / history_.back().time_s;

  if (history_.size() < 4) {
    est.shape = base_.attacker_shape;
    return est;
  }

  // Shape classification from inter-arrival trend: for a linear-in-mc
  // attacker the gaps shrink mildly; logarithmic attackers slow down
  // (growing gaps); polynomial attackers accelerate hard (sharply
  // shrinking gaps).  Compare the mean gap of the first and second half.
  const std::size_t n = history_.size();
  const std::size_t half = n / 2;
  double first = 0.0, second = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double gap = history_[i].time_s - history_[i - 1].time_s;
    if (i <= half) {
      first += gap;
    } else {
      second += gap;
    }
  }
  first /= static_cast<double>(half);
  second /= static_cast<double>(n - 1 - half);
  est.reliable = true;

  const double ratio = second / std::max(first, 1e-12);
  // Thresholds chosen from the shape factors at the paper's p = 3 (see
  // tests/test_adaptive.cpp for the calibration sweep).
  if (ratio > 1.15) {
    est.shape = ids::Shape::Logarithmic;
  } else if (ratio < 0.6) {
    est.shape = ids::Shape::Polynomial;
  } else {
    est.shape = ids::Shape::Linear;
  }
  return est;
}

PolicyChoice AdaptiveController::recommend() const {
  Params p = base_;
  const auto est = estimate_attacker();
  if (est.samples >= 2 && est.lambda_c > 0.0) {
    p.lambda_c = est.lambda_c;
  }
  p.attacker_shape = est.shape;
  if (est.reliable) {
    // The shape was classified from campaign escalation, so model the
    // attacker with the escalating progress metric (see DESIGN.md §3).
    p.attacker_progress = AttackerProgress::CampaignProgress;
  }
  const auto grid = paper_t_ids_grid();
  return optimize_policy(p, grid, cost_budget_);
}

}  // namespace midas::core
