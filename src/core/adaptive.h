// Adaptive distributed IDS controller — the paper's third contribution:
// "a robust, efficient, and adaptive distributed intrusion detection
// mechanism that dynamically adjusts the intrusion detection interval
// and detection function optimally reacting to dynamically changing
// attacker strength."
//
// The controller (a) estimates the attacker's base compromising rate by
// first-order approximation from the observed eviction history (the
// paper §4.1: "λc can be obtained by first-order approximation from
// observing the number of compromised nodes over a time period"),
// (b) classifies the attacker shape from the curvature of the
// cumulative-compromise curve, and (c) re-optimises the detection
// function and TIDS against the analytical model, optionally under a
// communication budget.
#pragma once

#include <optional>
#include <vector>

#include "core/optimizer.h"
#include "core/params.h"

namespace midas::core {

/// One observed intrusion (a confirmed eviction of a compromised node).
struct IntrusionObservation {
  double time_s = 0.0;
};

struct AttackerEstimate {
  double lambda_c = 0.0;   // base compromising rate (events/s)
  ids::Shape shape = ids::Shape::Linear;
  std::size_t samples = 0;
  bool reliable = false;   // needs >= 4 observations to classify shape
};

class AdaptiveController {
 public:
  /// `base` supplies everything except the attacker/detection settings
  /// being adapted; `cost_budget` caps Ĉtotal when present.
  AdaptiveController(Params base, std::optional<double> cost_budget);

  /// Feeds one detection event (time of a confirmed intrusion).
  void observe(const IntrusionObservation& obs);

  /// Current attacker estimate from the observation history.
  [[nodiscard]] AttackerEstimate estimate_attacker() const;

  /// Re-optimises the policy for the current estimate; falls back to the
  /// base parameters when the history is too thin.
  [[nodiscard]] PolicyChoice recommend() const;

  [[nodiscard]] const std::vector<IntrusionObservation>& history() const {
    return history_;
  }

 private:
  Params base_;
  std::optional<double> cost_budget_;
  std::vector<IntrusionObservation> history_;
};

}  // namespace midas::core
