// Declarative experiment API — ONE spec, pluggable backends, ONE wire
// format.  The paper's evaluation is a single design space answered
// three ways (analytic SPN solution, discrete-event simulation,
// packet-level protocol simulation); this module makes that the shape
// of the code:
//
//   * core::ExperimentSpec is a self-contained, JSON-serialisable
//     description of one experiment: base Params, named grid axes, the
//     backends to answer with, the Monte-Carlo schedule, protocol-sim
//     environment knobs, and an optional shard selection.  A spec file
//     fully determines a worker's job — it is the wire format the
//     sweep_shard / sweep_merge / run_experiment tools speak, and the
//     API a network-facing service would accept.
//   * core::Backend is the small interface every solver implements;
//     AnalyticBackend (batched SweepEngine solve), DesBackend
//     (MonteCarloEngine over simulate_group) and ProtocolSimBackend
//     (MonteCarloEngine over run_protocol_sim) are interchangeable
//     per request — any subset, one pass each.
//   * core::ExperimentService::run(spec) validates, expands the grid,
//     resolves the shard slice, runs every requested backend and
//     returns an ExperimentResult whose JSON form (raw Welford states,
//     round-trip doubles) merges bitwise across shards.
//
// Validation errors name the offending JSON path
// ("spec.backends[1]: unknown backend 'foo'"), whether the spec came
// from a file or was built in code.  The legacy SweepEngine entry
// points (run / run_mc / run_shard / run_mc_shard / sweep_t_ids /
// sweep_mc) remain as thin deprecated wrappers over the same engine
// primitives this service drives.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/gcs_spn_model.h"
#include "core/grid_spec.h"
#include "core/params.h"
#include "core/shard.h"
#include "core/sweep_engine.h"
#include "manet/mobility.h"
#include "sim/mc_engine.h"
#include "util/json.h"
#include "vr/engine.h"
#include "vr/options.h"

namespace midas::core {

/// The three ways the paper answers a design question.
enum class BackendKind { Analytic, Des, ProtocolSim };

[[nodiscard]] std::string to_string(BackendKind kind);

/// One declarative grid axis.  `param` names either a typed axis
/// ("t_ids", "num_voters", "detection_shape", "attacker_shape") or a
/// registered numeric parameter (see numeric_axis_params()).  Numeric
/// axes carry `values`, categorical axes carry `levels` (shape names).
struct AxisSpec {
  std::string param;
  std::vector<double> values;
  std::vector<std::string> levels;

  bool operator==(const AxisSpec&) const = default;
};

/// Numeric parameters usable as generic grid axes, e.g. "lambda_c",
/// "p1", "host_ids_error" (which sets p1 = p2 jointly).
[[nodiscard]] std::vector<std::string> numeric_axis_params();

/// Which slice of the grid a request covers.  Default: the whole grid.
struct ShardSpec {
  enum class Policy {
    All,          ///< the whole grid (num_shards/shard_index ignored)
    Contiguous,   ///< ShardPlan::contiguous point-balanced split
    ByStructure,  ///< ShardPlan::by_structure exploration-aligned split
    ByPilotCost,  ///< ShardPlan::by_pilot_cost replication-balanced split
    Explicit,     ///< an explicit [begin, end) point range
  };
  Policy policy = Policy::All;
  std::size_t num_shards = 1;
  std::size_t shard_index = 0;
  /// Pilot block size for Policy::ByPilotCost.
  std::size_t pilot_replications = 16;
  /// Policy::Explicit only.
  ShardRange range;

  bool operator==(const ShardSpec&) const = default;
};

[[nodiscard]] std::string to_string(ShardSpec::Policy policy);

/// Environment knobs of the protocol-level simulator — everything in
/// sim::ProtocolSimParams except the per-point model parameters, which
/// the backend fills from the grid point.
struct ProtocolOptions {
  manet::MobilityParams mobility;
  double radio_range_m = 150.0;
  double tick_s = 2.0;
  double topology_refresh_s = 10.0;
  double max_time_s = 3.0e6;
};

/// Knobs of the analytic (SPN) backend.
struct AnalyticOptions {
  /// Grid points per batched solve (SweepEngineOptions::batch): the
  /// analytic backend chunks same-structure points into batches of this
  /// width and drives the point-major batch kernels.  1 = the legacy
  /// scalar per-point path.  Results do not depend on the width.
  std::size_t batch = 8;
};

/// The declarative experiment request.  JSON schema "midas-experiment-v1":
/// to_json() / from_json() round-trip bitwise (17-significant-digit
/// doubles, non-finite values as flag strings via util::Json::number).
struct ExperimentSpec {
  std::string name;  ///< experiment identifier, e.g. "fig2"
  std::string mode;  ///< free-form config tag, e.g. "smoke"
  Params base;
  std::vector<AxisSpec> axes;
  std::vector<BackendKind> backends{BackendKind::Analytic};
  AnalyticOptions analytic;
  /// Replication schedule for the simulation backends (Des +
  /// ProtocolSim share it — that is the point of one spec).
  sim::McOptions mc;
  /// Variance-reduction layer over the DES backend (Sobol substreams,
  /// analytic control variates, multilevel splitting).  Default-off;
  /// serialised as "vr" INSIDE the "mc" object, and only when enabled,
  /// so pre-existing spec files and their bytes are untouched.  When
  /// enabled, the plain DES replication pass still runs unchanged (its
  /// mc payload stays bitwise identical to a vr-less run) and the vr
  /// estimates ride alongside in BackendRun::vr.
  vr::VrOptions vr;
  ProtocolOptions protocol;
  ShardSpec shard;
  /// Requested metric names (subset of {"mttsf", "ctotal",
  /// "cost_breakdown", "p_failure", "survival"}); empty = all.  The
  /// payload always carries every metric (shard merges need raw
  /// states); consumers use this to choose what to report.
  std::vector<std::string> metrics;

  [[nodiscard]] bool wants(BackendKind kind) const;

  /// The executable grid: every axis resolved against the registry.
  /// Throws std::invalid_argument with the axis path on unknown params.
  [[nodiscard]] GridSpec grid() const;

  /// The point range this spec's shard selection covers on `grid`.
  [[nodiscard]] ShardRange resolve_range(const GridSpec& grid) const;

  /// Full semantic validation; throws std::invalid_argument whose
  /// message names the offending JSON path (e.g. "spec.mc.block").
  void validate() const;

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static ExperimentSpec from_json(const util::Json& j);
};

// --- Shared JSON codecs (also used by the legacy shard files). --------
[[nodiscard]] util::Json evaluation_to_json(const Evaluation& e);
[[nodiscard]] Evaluation evaluation_from_json(const util::Json& j);
[[nodiscard]] util::Json mc_point_to_json(const sim::McPointResult& r);
[[nodiscard]] sim::McPointResult mc_point_from_json(const util::Json& j);
[[nodiscard]] util::Json vr_point_to_json(const vr::VrPointResult& r);
[[nodiscard]] vr::VrPointResult vr_point_from_json(const util::Json& j);
[[nodiscard]] util::Json mc_stats_to_json(
    const sim::MonteCarloEngine::Stats& s);
[[nodiscard]] sim::MonteCarloEngine::Stats mc_stats_from_json(
    const util::Json& j);
[[nodiscard]] util::Json params_to_json(const Params& p);
[[nodiscard]] Params params_from_json(const util::Json& j,
                                      const std::string& path = "base");

/// One backend's answer for the spec's point slice: `evals` for
/// Analytic, `mc` for Des/ProtocolSim — both indexed relative to the
/// slice (entry i answers grid point range.begin + i).
struct BackendRun {
  BackendKind kind = BackendKind::Analytic;
  std::vector<Evaluation> evals;
  std::vector<sim::McPointResult> mc;
  /// Variance-reduction estimates (Des backend with spec.mc.vr
  /// enabled): entry i answers grid point range.begin + i, exactly
  /// like `mc`.  Empty otherwise; the "vr" JSON key is emitted only
  /// when non-empty, keeping pre-vr result bytes stable.  Carries no
  /// timing fields — it participates in the canonical payload
  /// identity as-is.
  std::vector<vr::VrPointResult> vr;
  sim::MonteCarloEngine::Stats mc_stats;
  double seconds = 0.0;  ///< wall clock inside this backend
};

/// The unified answer: per-point results keyed by backend.  Its JSON
/// form ("midas-experiment-result-v1") embeds the spec (shard selection
/// normalised to the whole grid, so sibling shards compare equal) plus
/// this slice's range — the wire format sweep_shard emits and
/// sweep_merge recombines bitwise.
struct ExperimentResult {
  ExperimentSpec spec;
  ShardRange range;
  std::size_t num_shards = 1;
  std::size_t shard_index = 0;
  std::string shard_policy = "all";
  std::vector<BackendRun> backends;

  /// nullptr when the backend was not requested.
  [[nodiscard]] const BackendRun* find(BackendKind kind) const;
  /// Throws std::invalid_argument naming the backend when absent.
  [[nodiscard]] const BackendRun& at(BackendKind kind) const;

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static ExperimentResult from_json(const util::Json& j);

  /// to_json() with every execution-topology field zeroed (backend
  /// seconds, mc_stats.seconds, mc_stats.rounds — scheduling batches
  /// depend on how many points one engine run held) — the
  /// payload-identity form.  Those are the ONLY legitimately
  /// run-dependent contents of a result, so two runs of the same spec
  /// are byte-identical here iff their payloads are: the fleet
  /// coordinator dedupes duplicate shard completions by this form, and
  /// the soak gate byte-compares fleet merges against single-process
  /// runs with it.
  [[nodiscard]] util::Json canonical_json() const;
};

/// Recombines a complete shard set into the whole-grid result: specs
/// must be identical (bitwise JSON), backend sets equal, shard indices
/// distinct, and the ranges must tile the grid exactly.  Per-point
/// payloads are placed, never re-accumulated, so the merged result is
/// bitwise the single-process run.  Throws std::invalid_argument
/// naming the first violation.
[[nodiscard]] ExperimentResult merge_experiment_results(
    std::span<const ExperimentResult> parts);

/// One solver behind the service.  Implementations must answer the
/// point slice independently of which shard runs it (the merge
/// invariant): MC substream keys are global (point_stream_offset),
/// analytic solves are per-point.
class Backend {
 public:
  virtual ~Backend() = default;
  [[nodiscard]] virtual BackendKind kind() const = 0;
  [[nodiscard]] virtual BackendRun run(const ExperimentSpec& spec,
                                       const GridSpec& grid,
                                       std::span<const Params> points,
                                       ShardRange range) = 0;
};

struct ExperimentServiceOptions {
  /// Worker threads for every backend (0 = hardware concurrency).
  /// A non-zero spec.mc.threads takes precedence for the simulation
  /// backends of that request.
  std::size_t threads = 0;
  /// Analytic engine tuning (cache cap, naive-path toggle).
  SweepEngineOptions sweep;
};

/// The one entry point: run(spec) → ExperimentResult.  Holds the
/// analytic SweepEngine (structure cache shared across requests — a
/// figure grid and its validation grid explore once) and the three
/// built-in backends.
class ExperimentService {
 public:
  explicit ExperimentService(ExperimentServiceOptions opts = {});
  ~ExperimentService();
  ExperimentService(const ExperimentService&) = delete;
  ExperimentService& operator=(const ExperimentService&) = delete;

  [[nodiscard]] ExperimentResult run(const ExperimentSpec& spec);

  /// The analytic engine behind BackendKind::Analytic (stats, cache
  /// control for long-lived workers).
  [[nodiscard]] SweepEngine& sweep_engine() noexcept { return engine_; }
  [[nodiscard]] const ExperimentServiceOptions& options() const noexcept {
    return opts_;
  }

 private:
  ExperimentServiceOptions opts_;
  SweepEngine engine_;
  std::vector<std::unique_ptr<Backend>> backends_;
};

}  // namespace midas::core
