// Batched sweep engine — the evaluation path behind every figure and
// ablation in the paper, built on one observation: a TIDS / detection-
// shape / voter-count sweep never changes the reachable state set or the
// edge structure of the SPN, only the rate values.  The engine therefore
//   1. explores the reachability graph ONCE per structural configuration
//      (initial marking + guards + edge-existence pattern),
//   2. re-rates a clone of the cached structure per sweep point
//      (spn::ReachabilityGraph::refresh_rates) instead of re-running
//      spn::explore + marking hashing,
//   3. accumulates every reward component in a single pass
//      (GcsSpnModel::evaluate_on), and
//   4. drives the points through sim::parallel_for.
// Structure caching persists across calls, so a bench that sweeps four
// m-values over the TIDS grid pays for one exploration in total.
//
// Grids: run()/run_mc() evaluate a whole core::GridSpec — the paper's
// multi-dimensional design space (TIDS × m × detection shape × attacker
// profile, arbitrary subsets) — in one batch; run_mc() additionally
// drives ONE Monte-Carlo schedule over every grid point with CRN
// substreams keyed by replication only (contrasts along every axis are
// variance-reduced) and optional antithetic pairs.  sweep_t_ids /
// sweep_mc are the 1-D special cases.
//
// Sharding: run_shard()/run_mc_shard() evaluate one contiguous
// row-major slice of the grid (see core::ShardPlan), and
// merge_shards()/merge_mc_shards() recombine a complete tiling into the
// single-process result — exactly, because points are solved
// independently and MC substreams are keyed shard-invariantly.  A
// long-lived shard worker bounds its structure cache with
// SweepEngineOptions::max_cache_entries or clear_cache().
//
// DEPRECATION: the grid-level entry points here (run, run_mc,
// run_shard, run_mc_shard, sweep_t_ids, sweep_mc) are THIN WRAPPERS
// kept for inline/legacy use; new code should describe the experiment
// as a core::ExperimentSpec and run it through
// core::ExperimentService::run, which drives the same engine
// primitives (evaluate + MonteCarloEngine) behind a declarative,
// JSON-serialisable request — see src/core/experiment.h.  Parity is
// CI-gated: service answers equal these wrappers' exactly (analytic
// bitwise, MC accumulator states bitwise under CRN).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/gcs_spn_model.h"
#include "core/grid_spec.h"
#include "core/params.h"
#include "core/shard.h"
#include "sim/mc_engine.h"

namespace midas::core {

struct SweepPoint {
  double t_ids = 0.0;
  Evaluation eval;
};

struct SweepResult {
  std::vector<SweepPoint> points;

  /// Index of the point with maximal MTTSF / minimal Ĉtotal.
  [[nodiscard]] std::size_t argmax_mttsf() const;
  [[nodiscard]] std::size_t argmin_ctotal() const;
  [[nodiscard]] const SweepPoint& best_mttsf() const {
    return points[argmax_mttsf()];
  }
  [[nodiscard]] const SweepPoint& best_ctotal() const {
    return points[argmin_ctotal()];
  }
};

/// A TIDS grid point answered both analytically and by simulation.
struct McSweepPoint {
  double t_ids = 0.0;
  Evaluation eval;          // batched SPN solution
  sim::McPointResult mc;    // CI-bounded Monte-Carlo estimate
};

struct McSweepResult {
  std::vector<McSweepPoint> points;
  sim::MonteCarloEngine::Stats mc_stats;

  /// #points whose analytic MTTSF lies inside the simulation 95% CI
  /// (expect ~95% of points; the occasional miss is Monte-Carlo noise).
  [[nodiscard]] std::size_t mttsf_inside_ci() const;
};

/// A multi-dimensional grid answered analytically: one Evaluation per
/// GridSpec point, in the spec's row-major order (last axis fastest).
struct GridRunResult {
  GridSpec spec;
  std::vector<Evaluation> evals;

  [[nodiscard]] const Evaluation& at(
      std::span<const std::size_t> coords) const {
    return evals[spec.index(coords)];
  }
};

/// A grid point answered analytically AND by CI-bounded simulation.
struct McGridPoint {
  Evaluation eval;
  sim::McPointResult mc;
};

struct McGridResult {
  GridSpec spec;
  std::vector<McGridPoint> points;
  sim::MonteCarloEngine::Stats mc_stats;

  [[nodiscard]] const McGridPoint& at(
      std::span<const std::size_t> coords) const {
    return points[spec.index(coords)];
  }

  /// #points whose analytic MTTSF lies inside the simulation 95% CI
  /// (expect ~95%; the occasional miss is Monte-Carlo noise).
  [[nodiscard]] std::size_t mttsf_inside_ci() const;
};

struct SweepEngineOptions {
  /// Worker threads for the point loop (0 = hardware concurrency).
  std::size_t threads = 0;
  /// When false, every point re-explores from scratch (the naive path;
  /// kept for validation and speedup measurement).
  bool reuse_structure = true;
  /// Grid points per batched solve: runs of points sharing one explored
  /// structure are chunked into batches of this width and solved through
  /// the point-major batch path (compute_rates_batch → solve_batch →
  /// evaluate_with_batch), with scratch from the worker thread's arena.
  /// 1 = the legacy scalar per-point path (also used when
  /// reuse_structure is off).  Spec-level knob: ExperimentSpec::
  /// analytic.batch.
  std::size_t batch = 8;
  /// Share LU factorisations across batch points whose normalised dense
  /// SCC blocks coincide (spn::BatchSolveOptions::factor_reuse).  ON:
  /// results are within 1e-12 relative of the scalar path and
  /// independent of batch/shard grouping.  OFF: bitwise the scalar
  /// path.
  bool factor_reuse = true;
  /// Upper bound on cached explored structures (0 = unbounded).  The
  /// cache previously grew without limit — a memory leak for a
  /// long-lived shard worker sweeping many structural configs.  With a
  /// cap, the least-recently-used entries are evicted after each
  /// evaluate() call (a single batch may transiently exceed the cap;
  /// every structure it needs stays alive until the batch completes).
  std::size_t max_cache_entries = 0;
};

/// The key under which parameter points share one explored structure:
/// everything that can change the reachable set or the existence of an
/// edge — initial marking, failure guards, group birth–death tables, and
/// the zero-pattern of each timed rate factor.  Exposed for tests.
[[nodiscard]] std::string structure_key(const Params& p);

class SweepEngine {
 public:
  explicit SweepEngine(SweepEngineOptions opts = {});

  /// Evaluates every parameter point; points whose structure_key()
  /// matches share one exploration (cached across calls).  Uses the
  /// options' batch width.
  [[nodiscard]] std::vector<Evaluation> evaluate(
      std::span<const Params> points);

  /// As above with an explicit batch width (the spec-level
  /// analytic.batch knob): width <= 1 — or reuse_structure off — runs
  /// the legacy scalar per-point path; otherwise consecutive points
  /// sharing a structure are solved `batch_width` at a time through the
  /// point-major batch kernels.  Per-point results do not depend on the
  /// width (bitwise: the batch path is grouping-independent by
  /// construction).
  [[nodiscard]] std::vector<Evaluation> evaluate(
      std::span<const Params> points, std::size_t batch_width);

  /// Evaluates a full named-axis cartesian grid analytically: every
  /// structural configuration in the grid explores once (cached), and
  /// every point shares the batched numeric solve path.
  [[nodiscard]] GridRunResult run(const GridSpec& spec, const Params& base);

  /// Answers a full grid analytically AND by Monte-Carlo simulation in
  /// one call: one batched SPN solve per point plus ONE
  /// sim::MonteCarloEngine schedule over the whole grid, whose CRN
  /// substreams are keyed by replication index only — so contrasts
  /// along EVERY axis (not just TIDS) are variance-reduced, and
  /// antithetic pairs (mc.antithetic) compose on top.
  [[nodiscard]] McGridResult run_mc(const GridSpec& spec, const Params& base,
                                    const sim::McOptions& mc = {});

  /// Evaluates one contiguous row-major slice of the grid analytically —
  /// a shard worker's entry point.  Because every point is solved
  /// independently (structure explorations keyed by structure_key,
  /// numeric solves per point), the slice's results are identical to
  /// the corresponding rows of run(): merge_shards() of a full tiling
  /// reproduces the single-process grid exactly.
  [[nodiscard]] GridShardResult run_shard(const GridSpec& spec,
                                          const Params& base,
                                          ShardRange range);

  /// run_shard plus one Monte-Carlo schedule over the slice.  The MC
  /// summaries are shard-invariant: under CRN the substreams are keyed
  /// by replication only, and otherwise the engine offsets its
  /// substream keys by range.begin (McOptions::point_stream_offset), so
  /// each point draws the same randomness it would in the full-grid
  /// run_mc() and merge_mc_shards() recombines BITWISE-identical
  /// summaries.
  [[nodiscard]] McGridShardResult run_mc_shard(const GridSpec& spec,
                                               const Params& base,
                                               ShardRange range,
                                               const sim::McOptions& mc = {});

  /// Evaluates `base` at every TIDS in `grid` (base.t_ids is ignored).
  /// A 1-D special case of run().
  [[nodiscard]] SweepResult sweep_t_ids(const Params& base,
                                        std::span<const double> grid);

  /// Companion: answers the same TIDS grid analytically (batched SPN
  /// solve) AND by Monte-Carlo simulation (sim::MonteCarloEngine with
  /// CRN + CI-targeted stopping) in one call, so every figure can carry
  /// CI-bounded validation instead of spot checks.  A 1-D special case
  /// of run_mc().
  [[nodiscard]] McSweepResult sweep_mc(const Params& base,
                                       std::span<const double> grid,
                                       const sim::McOptions& mc = {});

  struct Stats {
    std::size_t points = 0;            // points evaluated
    std::size_t explorations = 0;      // structural configs explored
    std::size_t states_explored = 0;   // Σ states over fresh explorations
    std::size_t states_evaluated = 0;  // Σ states over all points
    std::size_t cache_evictions = 0;   // entries dropped by the LRU cap
    double seconds = 0.0;              // wall clock inside evaluate()
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Drops every cached explored structure (a later sweep re-explores).
  /// Long-lived shard workers call this between unrelated jobs; the
  /// max_cache_entries option bounds growth within a job.  Not safe
  /// concurrently with evaluate() — like every other member.
  void clear_cache();
  /// Cached explored structures currently held.
  [[nodiscard]] std::size_t cache_size() const noexcept {
    return cache_.size();
  }

 private:
  struct CacheEntry {
    std::once_flag once;
    std::shared_ptr<const spn::ReachabilityGraph> graph;
    // Structure shared by every point: absorbing mask, transient
    // compaction, SCC condensation (solve(edge_rates) is const).
    std::unique_ptr<const spn::AbsorbingAnalyzer> analyzer;
  };

  /// Moves `key` to the most-recently-used position of lru_.
  void touch_cache_key(const std::string& key);
  /// Evicts least-recently-used entries until the cap is respected.
  void enforce_cache_cap();

  SweepEngineOptions opts_;
  std::unordered_map<std::string, std::unique_ptr<CacheEntry>> cache_;
  /// Cache keys, least-recently-used first (parallel to cache_).
  std::vector<std::string> lru_;
  std::mutex stats_mutex_;
  Stats stats_;
};

/// Recombines a complete set of shard slices into the single-process
/// GridRunResult.  The ranges must tile [0, spec.num_points()) exactly
/// (empty shards allowed); throws std::invalid_argument otherwise.
[[nodiscard]] GridRunResult merge_shards(
    const GridSpec& spec, std::span<const GridShardResult> shards);

/// Monte-Carlo counterpart: recombines run_mc_shard slices into the
/// single-process McGridResult (per-shard engine stats are summed).
[[nodiscard]] McGridResult merge_mc_shards(
    const GridSpec& spec, std::span<const McGridShardResult> shards);

}  // namespace midas::core
