// Named-axis cartesian experiment grids.  The paper's figures are all
// slices of one multi-dimensional design space — TIDS × vote-
// participants m × detection-function shape × attacker profile — but
// until this abstraction every bench hand-rolled its own nested loops
// and only the innermost TIDS slice went through the batched engine.
// GridSpec names the axes once and expands to the full cartesian set of
// core::Params points (row-major, LAST axis fastest, exactly the order
// handwritten nested loops produce), so core::SweepEngine::run /
// run_mc can answer a whole figure — or the whole space — as one
// batched, CRN-correlated run: one structure exploration per structural
// configuration, and Monte-Carlo substreams keyed by replication index
// only, making contrasts along EVERY axis variance-reduced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/params.h"
#include "ids/functions.h"

namespace midas::core {

/// One named axis: `labels[k]` names level k, `apply(p, k)` writes
/// level k into a parameter point, and `values[k]` carries the numeric
/// level when one exists (NaN on categorical axes) for CSV emission.
struct GridAxis {
  std::string name;
  std::vector<std::string> labels;
  std::vector<double> values;
  std::function<void(Params&, std::size_t)> apply;

  [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }
};

class GridSpec {
 public:
  /// Typed axes for the paper's four design dimensions.  Each returns
  /// *this so grids read as one chained declaration.
  GridSpec& t_ids(std::vector<double> values);
  GridSpec& num_voters(std::vector<std::int64_t> m);
  GridSpec& detection_shape(std::vector<ids::Shape> shapes);
  GridSpec& attacker_shape(std::vector<ids::Shape> shapes);

  /// Arbitrary numeric axis: `set(p, values[k])` writes level k.
  GridSpec& axis(std::string name, std::vector<double> values,
                 std::function<void(Params&, double)> set);
  /// Arbitrary categorical axis with explicit labels and level setter.
  GridSpec& axis(std::string name, std::vector<std::string> labels,
                 std::function<void(Params&, std::size_t)> apply);

  [[nodiscard]] std::size_t num_axes() const noexcept {
    return axes_.size();
  }
  [[nodiscard]] const GridAxis& axis_at(std::size_t i) const;
  [[nodiscard]] const std::vector<GridAxis>& axes() const noexcept {
    return axes_;
  }

  /// Product of the axis extents.  An axis-free spec has exactly one
  /// point (the base parameters unchanged) — the nullary product.
  [[nodiscard]] std::size_t num_points() const noexcept;

  /// Row-major index ↔ per-axis coordinates (last axis fastest).
  [[nodiscard]] std::vector<std::size_t> coords(std::size_t index) const;
  [[nodiscard]] std::size_t index(std::span<const std::size_t> c) const;

  /// The parameter point at `index`: a copy of `base` with every axis
  /// level applied in declaration order.
  [[nodiscard]] Params point(const Params& base, std::size_t index) const;

  /// All points in row-major order — what SweepEngine::run evaluates.
  [[nodiscard]] std::vector<Params> expand(const Params& base) const;

  /// Human/CSV label, e.g. "m=5, detection=linear, t_ids=120".
  [[nodiscard]] std::string label(std::size_t index) const;

 private:
  GridSpec& push_axis(GridAxis axis);

  std::vector<GridAxis> axes_;
};

}  // namespace midas::core
