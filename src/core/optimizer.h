// TIDS sweep and design-point optimisation — the paper's central
// exercise: locate the detection interval that maximises MTTSF, the one
// that minimises Ĉtotal, and the best trade-off under a performance
// constraint (maximise MTTSF subject to Ĉtotal ≤ budget).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/gcs_spn_model.h"
#include "core/params.h"

namespace midas::core {

/// The paper's Fig. 2–5 TIDS grid (seconds).
[[nodiscard]] std::vector<double> paper_t_ids_grid();

struct SweepPoint {
  double t_ids = 0.0;
  Evaluation eval;
};

struct SweepResult {
  std::vector<SweepPoint> points;

  /// Index of the point with maximal MTTSF / minimal Ĉtotal.
  [[nodiscard]] std::size_t argmax_mttsf() const;
  [[nodiscard]] std::size_t argmin_ctotal() const;
  [[nodiscard]] const SweepPoint& best_mttsf() const {
    return points[argmax_mttsf()];
  }
  [[nodiscard]] const SweepPoint& best_ctotal() const {
    return points[argmin_ctotal()];
  }
};

/// Evaluates `base` at every TIDS in `grid` (base.t_ids is ignored).
[[nodiscard]] SweepResult sweep_t_ids(const Params& base,
                                      std::span<const double> grid);

/// A chosen operating point for the adaptive IDS.
struct PolicyChoice {
  ids::Shape detection_shape = ids::Shape::Linear;
  double t_ids = 0.0;
  Evaluation eval;
  bool feasible = true;  // false when no point met the cost budget
};

/// Selects the detection function and TIDS that maximise MTTSF, over
/// all three shapes × grid, optionally subject to Ĉtotal ≤ cost_budget.
/// When the budget excludes every point, returns the minimum-cost point
/// with feasible = false.
[[nodiscard]] PolicyChoice optimize_policy(
    const Params& base, std::span<const double> grid,
    std::optional<double> cost_budget = std::nullopt);

}  // namespace midas::core
