// TIDS sweep and design-point optimisation — the paper's central
// exercise: locate the detection interval that maximises MTTSF, the one
// that minimises Ĉtotal, and the best trade-off under a performance
// constraint (maximise MTTSF subject to Ĉtotal ≤ budget).
//
// Both entry points run on core::SweepEngine: the reachability graph is
// explored once per structural configuration and every sweep point only
// re-rates a clone of it (see sweep_engine.h).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/gcs_spn_model.h"
#include "core/params.h"
#include "core/sweep_engine.h"

namespace midas::core {

/// The paper's Fig. 2–5 TIDS grid (seconds).
[[nodiscard]] std::vector<double> paper_t_ids_grid();

/// Evaluates `base` at every TIDS in `grid` (base.t_ids is ignored).
[[nodiscard]] SweepResult sweep_t_ids(const Params& base,
                                      std::span<const double> grid);

/// A chosen operating point for the adaptive IDS.
struct PolicyChoice {
  ids::Shape detection_shape = ids::Shape::Linear;
  double t_ids = 0.0;
  Evaluation eval;
  bool feasible = true;  // false when no point met the cost budget
};

/// Selects the detection function and TIDS that maximise MTTSF, over
/// all three shapes × grid, optionally subject to Ĉtotal ≤ cost_budget.
/// When the budget excludes every point, returns the minimum-cost point
/// with feasible = false.  The shapes only change rate values, so all
/// 3·|grid| evaluations share one exploration.
[[nodiscard]] PolicyChoice optimize_policy(
    const Params& base, std::span<const double> grid,
    std::optional<double> cost_budget = std::nullopt);

}  // namespace midas::core
