// The paper's Fig. 1 SPN: a mobile group under inside attack with
// voting-based intrusion detection, solved for MTTSF (mean time to
// security failure) and Ĉtotal (communication cost per second).
//
// Places:   Tm (trusted), UCm (compromised undetected), DCm (detected/
//           evicted), GF (data-leak flag), NG (group count).
// Rates:    T_CP   A(mc)                         attacker
//           T_IDS  mark(UCm)·D(md)·(1−Pfn)       true detection
//           T_FA   mark(Tm)·D(md)·Pfp            false accusation
//           T_DRQ  p1·λq·mark(UCm)               data leak (→ C1)
//           T_PAR/T_MER                          group birth–death
// Guards:   every transition carries ¬C1 ∧ ¬C2, making failure states
//           absorbing; C1 = mark(GF) > 0, C2 = UCm/(Tm+UCm) > 1/3.
// Rewards:  reward 1 in transient states (MTTSF = accumulated reward);
//           per-state cost rates + per-eviction rekey impulses (Ĉtotal).
//
// Group-count scaling (paper: marks "adjusted based on mark(NG)"): the
// model tracks system-wide token counts; per-group quantities — the
// voting pools and the cost model's group size — divide by mark(NG).
// mc, md and the C2 ratio are scale-invariant, so they need no
// adjustment.  Rekeying (the figure's T_RK) enters through the reward
// structure: join/leave rekeys as a rate cost, eviction rekeys as
// impulses on T_IDS/T_FA.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/params.h"
#include "gcs/cost_model.h"
#include "ids/voting.h"
#include "spn/absorbing.h"
#include "spn/petri_net.h"
#include "spn/reachability.h"

namespace midas::core {

/// Everything the paper reports for one parameter point.
struct Evaluation {
  double mttsf = 0.0;             // mean time to security failure (s)
  double ctotal = 0.0;            // Ĉtotal (hop-bits/s)
  gcs::CostBreakdown cost_rates;  // time-averaged component rates
  double eviction_cost_rate = 0.0;  // Ĉeviction (impulse rekeys) /MTTSF
  double p_failure_c1 = 0.0;      // P[absorbed via data leak]
  double p_failure_c2 = 0.0;      // P[absorbed via Byzantine fraction]
  std::size_t num_states = 0;     // reachable tangible markings
  /// SCC condensation blocks the direct solver factored (NOT an
  /// iteration count — the legacy name solver_iterations mislabeled
  /// downstream tables).
  std::size_t solver_blocks = 0;
};

class GcsSpnModel {
 public:
  explicit GcsSpnModel(Params params);

  /// Solves the model: reachability → CTMC → absorbing analysis →
  /// reward accumulation.  Deterministic; throws on solver failure.
  /// Uses the lazily cached reachability graph (see graph()).
  [[nodiscard]] Evaluation evaluate() const;

  /// Solves the model on a caller-supplied reachability graph (which
  /// must have this net's structure and rates, e.g. a re-rated clone —
  /// spn::ReachabilityGraph::refresh_rates).  All cost components and
  /// impulse rewards accumulate in a single pass over states/edges.
  [[nodiscard]] Evaluation evaluate_on(
      const spn::ReachabilityGraph& graph) const;

  /// The sweep engine's zero-copy variant: solves on a shared analyzer
  /// (structure computed once per exploration) with this point's
  /// per-edge rate/impulse arrays (spn::ReachabilityGraph::
  /// compute_rates).  Pass both spans (sized to the edge count) or
  /// neither — both empty falls back to the rates/impulses stored on
  /// the analyzer's graph; mixing would blend two parameter points and
  /// throws.  Thread-safe for concurrent points on one analyzer.
  [[nodiscard]] Evaluation evaluate_with(
      const spn::AbsorbingAnalyzer& analyzer,
      std::span<const double> edge_rates,
      std::span<const double> edge_impulses) const;

  /// The unoptimised per-point path kept as the equivalence/benchmark
  /// reference: fresh exploration plus one full-state reward pass per
  /// cost component (what evaluate() did before the single-pass
  /// accumulator existed).  Bitwise-identical metrics to evaluate().
  [[nodiscard]] Evaluation evaluate_reference() const;

  /// The explored reachability graph, cached on first use and shared by
  /// evaluate() and reliability_at().  Thread-safe lazy initialisation.
  [[nodiscard]] const spn::ReachabilityGraph& graph() const;

  /// Mission reliability R(t) = P[no security failure by time t] — the
  /// paper's survivability requirement ("survive security threats past
  /// the minimum mission time") as a transient measure, computed by
  /// uniformisation.  `times` must be non-negative.
  [[nodiscard]] std::vector<double> reliability_at(
      std::span<const double> times) const;

  /// The underlying net (exposed for inspection/tests).
  [[nodiscard]] const spn::PetriNet& net() const noexcept { return net_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Place handles (valid for markings of `net()`).
  [[nodiscard]] spn::PlaceId place_tm() const noexcept { return tm_; }
  [[nodiscard]] spn::PlaceId place_ucm() const noexcept { return ucm_; }
  [[nodiscard]] spn::PlaceId place_dcm() const noexcept { return dcm_; }
  [[nodiscard]] spn::PlaceId place_gf() const noexcept { return gf_; }
  [[nodiscard]] spn::PlaceId place_ng() const noexcept { return ng_; }

  /// Model predicates/quantities for a marking (shared with tests).
  [[nodiscard]] bool failed_c1(const spn::Marking& m) const;
  [[nodiscard]] bool failed_c2(const spn::Marking& m) const;
  [[nodiscard]] bool alive(const spn::Marking& m) const;
  /// Degree of compromise  mc = (Tm+UCm)/Tm.
  [[nodiscard]] double mc(const spn::Marking& m) const;
  /// Eviction progress  md = N_init/(Tm+UCm).
  [[nodiscard]] double md(const spn::Marking& m) const;
  /// Voting-IDS error rates in marking `m` (per-group pools).
  [[nodiscard]] ids::VotingErrorRates voting_rates(
      const spn::Marking& m) const;
  /// Per-state cost rate breakdown (hop-bits/s).
  [[nodiscard]] gcs::CostBreakdown cost_rates(const spn::Marking& m) const;

 private:
  void build();

  Params params_;
  std::shared_ptr<const ids::VotingTable> voting_;
  std::shared_ptr<const gcs::CostModel> cost_;
  spn::PetriNet net_;
  spn::PlaceId tm_ = 0, ucm_ = 0, dcm_ = 0, gf_ = 0, ng_ = 0;

  // Lazily explored graph (evaluate() + reliability_at() share it).
  mutable std::once_flag graph_once_;
  mutable std::unique_ptr<const spn::ReachabilityGraph> graph_;
};

}  // namespace midas::core
