// The paper's Fig. 1 SPN: a mobile group under inside attack with
// voting-based intrusion detection, solved for MTTSF (mean time to
// security failure) and Ĉtotal (communication cost per second).
//
// Places:   Tm (trusted), UCm (compromised undetected), DCm (detected/
//           evicted), GF (data-leak flag), NG (group count).
// Rates:    T_CP   A(mc)                         attacker
//           T_IDS  mark(UCm)·D(md)·(1−Pfn)       true detection
//           T_FA   mark(Tm)·D(md)·Pfp            false accusation
//           T_DRQ  p1·λq·mark(UCm)               data leak (→ C1)
//           T_PAR/T_MER                          group birth–death
// Guards:   every transition carries ¬C1 ∧ ¬C2, making failure states
//           absorbing; C1 = mark(GF) > 0, C2 = UCm/(Tm+UCm) > 1/3.
// Rewards:  reward 1 in transient states (MTTSF = accumulated reward);
//           per-state cost rates + per-eviction rekey impulses (Ĉtotal).
//
// Group-count scaling (paper: marks "adjusted based on mark(NG)"): the
// model tracks system-wide token counts; per-group quantities — the
// voting pools and the cost model's group size — divide by mark(NG).
// mc, md and the C2 ratio are scale-invariant, so they need no
// adjustment.  Rekeying (the figure's T_RK) enters through the reward
// structure: join/leave rekeys as a rate cost, eviction rekeys as
// impulses on T_IDS/T_FA.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/params.h"
#include "gcs/cost_model.h"
#include "ids/voting.h"
#include "spn/absorbing.h"
#include "spn/petri_net.h"
#include "spn/reachability.h"

namespace midas::core {

/// Everything the paper reports for one parameter point.
struct Evaluation {
  double mttsf = 0.0;             // mean time to security failure (s)
  double ctotal = 0.0;            // Ĉtotal (hop-bits/s)
  gcs::CostBreakdown cost_rates;  // time-averaged component rates
  double eviction_cost_rate = 0.0;  // Ĉeviction (impulse rekeys) /MTTSF
  double p_failure_c1 = 0.0;      // P[absorbed via data leak]
  double p_failure_c2 = 0.0;      // P[absorbed via Byzantine fraction]
  std::size_t num_states = 0;     // reachable tangible markings
  /// SCC condensation blocks the direct solver factored (NOT an
  /// iteration count — the legacy name solver_iterations mislabeled
  /// downstream tables).
  std::size_t solver_blocks = 0;
};

class GcsSpnModel {
 public:
  /// Throws std::invalid_argument if `params` carries a detector or
  /// attacker model the time-homogeneous CTMC cannot express (cusum/
  /// logistic detectors, bursty/coordinated attackers), naming the
  /// model and pointing at the des/protocol_sim backends.  The entropy
  /// detector IS expressible — its effective (p1,p2) depends only on
  /// marking token counts — and enters through the per-marking voting
  /// path below.
  explicit GcsSpnModel(Params params);

  /// Solves the model: reachability → CTMC → absorbing analysis →
  /// reward accumulation.  Deterministic; throws on solver failure.
  /// Uses the lazily cached reachability graph (see graph()).
  [[nodiscard]] Evaluation evaluate() const;

  /// Solves the model on a caller-supplied reachability graph (which
  /// must have this net's structure and rates, e.g. a re-rated clone —
  /// spn::ReachabilityGraph::refresh_rates).  All cost components and
  /// impulse rewards accumulate in a single pass over states/edges.
  [[nodiscard]] Evaluation evaluate_on(
      const spn::ReachabilityGraph& graph) const;

  /// The sweep engine's zero-copy variant: solves on a shared analyzer
  /// (structure computed once per exploration) with this point's
  /// per-edge rate/impulse arrays (spn::ReachabilityGraph::
  /// compute_rates).  Pass both spans (sized to the edge count) or
  /// neither — both empty falls back to the rates/impulses stored on
  /// the analyzer's graph; mixing would blend two parameter points and
  /// throws.  Thread-safe for concurrent points on one analyzer.
  [[nodiscard]] Evaluation evaluate_with(
      const spn::AbsorbingAnalyzer& analyzer,
      std::span<const double> edge_rates,
      std::span<const double> edge_impulses) const;

  /// The unoptimised per-point path kept as the equivalence/benchmark
  /// reference: fresh exploration plus one full-state reward pass per
  /// cost component (what evaluate() did before the single-pass
  /// accumulator existed).  Bitwise-identical metrics to evaluate().
  [[nodiscard]] Evaluation evaluate_reference() const;

  /// The explored reachability graph, cached on first use and shared by
  /// evaluate() and reliability_at().  Thread-safe lazy initialisation.
  [[nodiscard]] const spn::ReachabilityGraph& graph() const;

  /// Mission reliability R(t) = P[no security failure by time t] — the
  /// paper's survivability requirement ("survive security threats past
  /// the minimum mission time") as a transient measure, computed by
  /// uniformisation.  `times` must be non-negative.
  [[nodiscard]] std::vector<double> reliability_at(
      std::span<const double> times) const;

  /// The underlying net (exposed for inspection/tests).
  [[nodiscard]] const spn::PetriNet& net() const noexcept { return net_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Place handles (valid for markings of `net()`).
  [[nodiscard]] spn::PlaceId place_tm() const noexcept { return tm_; }
  [[nodiscard]] spn::PlaceId place_ucm() const noexcept { return ucm_; }
  [[nodiscard]] spn::PlaceId place_dcm() const noexcept { return dcm_; }
  [[nodiscard]] spn::PlaceId place_gf() const noexcept { return gf_; }
  [[nodiscard]] spn::PlaceId place_ng() const noexcept { return ng_; }

  /// Model predicates/quantities for a marking (shared with tests).
  [[nodiscard]] bool failed_c1(const spn::Marking& m) const;
  [[nodiscard]] bool failed_c2(const spn::Marking& m) const;
  [[nodiscard]] bool alive(const spn::Marking& m) const;
  /// Degree of compromise  mc = (Tm+UCm)/Tm.
  [[nodiscard]] double mc(const spn::Marking& m) const;
  /// Eviction progress  md = N_init/(Tm+UCm).
  [[nodiscard]] double md(const spn::Marking& m) const;
  /// Voting-IDS error rates in marking `m` (per-group pools).
  [[nodiscard]] ids::VotingErrorRates voting_rates(
      const spn::Marking& m) const;
  /// Per-state cost rate breakdown (hop-bits/s).
  [[nodiscard]] gcs::CostBreakdown cost_rates(const spn::Marking& m) const;

  /// Opt-in memoisation of the marking-dependent transcendental rate
  /// factors (the shape-function log/pow calls dominate the re-rating
  /// pass).  The detection rate depends on the marking only through
  /// Tm+UCm, the attacker rate only through (Tm, UCm) (or UCm+DCm under
  /// CampaignProgress), so small dense tables capture them; memoised
  /// values are computed by exactly the un-memoised expression, so
  /// rates stay bitwise identical.  NOT enabled by default — the memo
  /// tables make rate evaluation non-thread-safe, so only the sweep
  /// engine's batch path (one private model per point per worker)
  /// turns it on.
  void enable_factor_memo();

  /// D(md(m)) — the T_IDS/T_FA/cost detection factor, memoised when
  /// enable_factor_memo() was called.
  [[nodiscard]] double detection_rate_at(const spn::Marking& m) const;
  /// A(mc(m)) — the T_CP attacker rate, memoised likewise.
  [[nodiscard]] double attacker_rate_at(const spn::Marking& m) const;
  /// The T_IDS/T_FA eviction rekey impulse, memoised likewise (it
  /// depends on the marking only through (Tm+UCm, NG)).
  [[nodiscard]] double eviction_impulse_at(const spn::Marking& m) const;

  /// Fast path for ReachabilityGraph::compute_rates_batch: one call
  /// answers a (transition, marking) pair for EVERY model in the batch,
  /// hoisting the marking-derived quantities all points share (token
  /// counts, per-group voting-pool indices) out of the per-point loop
  /// and serving the per-point factors from the memo tables — this is
  /// where the batched sweep's re-rating pass earns its speedup, since
  /// the generic path pays two std::function dispatches plus a full
  /// lambda body per point per pair.  All models must share
  /// models[0]'s net structure (the sweep engine batches within one
  /// structure key); enable_factor_memo() should be on.  The values
  /// produced are bitwise the per-model net().rate()/impulse() answers:
  /// the same helper functions evaluate the same expressions in the
  /// same order.  Returns an empty function for an empty batch.
  [[nodiscard]] static spn::BatchRateFn batch_rate_fn(
      std::vector<const GcsSpnModel*> models);

 private:
  void build();

  // Keyed memo bodies behind detection_rate_at / eviction_impulse_at:
  // batch_rate_fn computes the marking-derived keys once per
  // (transition, marking) pair and shares them across the point loop.
  [[nodiscard]] double detection_rate_memo(std::int64_t members,
                                           const spn::Marking& m) const;
  [[nodiscard]] double eviction_impulse_memo(std::int64_t members,
                                             std::int64_t groups) const;

  // Detector plumbing.  The detector observes the marking through token
  // counts only (evicted = n_init − Tm − UCm by conservation — the SPN
  // has no join/leave transitions), so every helper is keyed on
  // (Tm, UCm[, NG]) and memoisable under enable_factor_memo().
  [[nodiscard]] ids::DetectorState detector_state(std::int64_t tm,
                                                  std::int64_t ucm) const;
  /// Effective host-IDS false-negative probability in marking (tm,ucm)
  /// — feeds T_DRQ.  Static detector: returns params_.p1 itself, so
  /// the rate expression stays bitwise the legacy one.
  [[nodiscard]] double effective_p1(std::int64_t tm, std::int64_t ucm) const;
  /// Voting error rates with detector-adjusted (p1,p2) — feeds
  /// T_IDS/T_FA.  Static detector: exactly the shared precomputed
  /// table lookup.  State-dependent detectors recompute Equation 1 per
  /// (Tm, UCm, NG) key, memoised when the factor memo is on (this is
  /// the batched path's "memo keyed on detector state").
  [[nodiscard]] ids::VotingErrorRates voting_rates_keyed(
      std::int64_t tm, std::int64_t ucm, std::int64_t groups,
      std::int64_t g_tm, std::int64_t g_ucm) const;

  Params params_;
  std::shared_ptr<const ids::VotingTable> voting_;
  std::shared_ptr<const gcs::CostModel> cost_;
  spn::PetriNet net_;
  spn::PlaceId tm_ = 0, ucm_ = 0, dcm_ = 0, gf_ = 0, ng_ = 0;

  // Factor memo (enable_factor_memo): NaN = slot not yet computed.
  bool memo_enabled_ = false;
  mutable std::vector<double> det_memo_;  // keyed by Tm+UCm
  mutable std::vector<double> atk_memo_;  // keyed by (Tm,UCm) or UCm+DCm
  mutable std::vector<double> evict_memo_;  // keyed by (Tm+UCm, NG)
  // Detector-state memos, allocated only for state-dependent detectors
  // (NaN pfn / NaN value = slot not yet computed).
  mutable std::vector<ids::VotingErrorRates> dyn_vote_memo_;  // (Tm,UCm,NG)
  mutable std::vector<double> dyn_p1_memo_;                   // (Tm,UCm)

  // Lazily explored graph (evaluate() + reliability_at() share it).
  mutable std::once_flag graph_once_;
  mutable std::unique_ptr<const spn::ReachabilityGraph> graph_;
};

/// Batched counterpart of GcsSpnModel::evaluate_with: one
/// AbsorbingAnalyzer::solve_batch over the point-major
/// [edge][point] rate/impulse matrices (ReachabilityGraph::
/// compute_rates_batch), then a point-major reward/classification pass.
/// models[p] supplies point p's parameters; all models must share the
/// analyzer's structure (same places, same edge existence — the sweep
/// engine batches within one structure_key).  With `factor_reuse` off,
/// every metric of point p is BITWISE models[p]->evaluate_with(analyzer,
/// rates_p, impulses_p); with it on, ≤1e-12 relative and independent of
/// batch grouping.  Scratch comes from `arena` (caller resets between
/// batches).
[[nodiscard]] std::vector<Evaluation> evaluate_with_batch(
    std::span<const GcsSpnModel* const> models,
    const spn::AbsorbingAnalyzer& analyzer,
    std::span<const double> edge_rates, std::span<const double> edge_impulses,
    bool factor_reuse, util::Arena& arena);

}  // namespace midas::core
