// One-at-a-time sensitivity analysis: elasticities of MTTSF and Ĉtotal
// with respect to each model parameter — which knobs actually move the
// paper's two metrics, and in which direction.  Elasticity is the
// dimensionless (dM/M)/(dp/p) evaluated by central finite differences,
// so +1.0 means "1% more parameter → 1% more metric".
#pragma once

#include <string>
#include <vector>

#include "core/params.h"

namespace midas::core {

struct SensitivityEntry {
  std::string parameter;
  double base_value = 0.0;
  double mttsf_elasticity = 0.0;
  double ctotal_elasticity = 0.0;
};

struct SensitivityOptions {
  double relative_step = 0.10;  // ±10% central difference
};

/// Computes elasticities for the continuous parameters of the model:
/// λc, λq, TIDS, p1, p2, λ (join), μ (leave).  Each evaluation solves
/// the full SPN, so expect ~15 solves.
[[nodiscard]] std::vector<SensitivityEntry> sensitivity_analysis(
    const Params& base, const SensitivityOptions& opts = {});

}  // namespace midas::core
