// Sharded multi-config sweep service: slicing a core::GridSpec across
// processes/hosts and recombining the pieces deterministically.
//
// Row-major grid indexing means a shard is just a contiguous point
// range [begin, end): every shard evaluates its slice with the same
// SweepEngine code path the single-process run uses, so the merged
// result is the single-process result — exactly.  Two invariants make
// that true:
//   * the analytic path depends only on the point itself (one structure
//     exploration per structure_key inside each shard, numeric solves
//     per point), and
//   * the Monte-Carlo path schedules each point independently with
//     substreams keyed by replication only under CRN (and by GLOBAL
//     point index otherwise, via McOptions::point_stream_offset), so a
//     point's Welford state is invariant to which shard ran it.
// The merge therefore checks an exact tiling and places slices — no
// floating-point reconciliation is ever needed (Welford merge stays
// available for replication-sharded extensions; it is associative).
//
// ShardPlan chooses the split: contiguous() balances point counts;
// by_structure() additionally aligns shard boundaries with runs of
// equal structure_key, so no structural configuration is explored by
// two shards just because the cut landed inside its run.
//
// ShardFile + write_shard_json/read_shard_json persist a shard's slice
// (Evaluation values, raw Welford states {n, mean, m2} and counts — not
// derived CIs — plus CI metadata) so the merge step reproduces MC
// summaries bit-for-bit across processes.  The sweep_shard/sweep_merge
// tools drive this over the paper grids; see also SweepEngine::
// run_shard / run_mc_shard and merge_shards / merge_mc_shards.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/gcs_spn_model.h"
#include "core/grid_spec.h"
#include "core/params.h"
#include "sim/mc_engine.h"

namespace midas::core {

/// A contiguous row-major slice [begin, end) of a grid's points.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return begin == end; }
  bool operator==(const ShardRange&) const = default;
};

/// A deterministic partition of a grid's [0, num_points) into
/// num_shards contiguous ranges (some possibly empty when shards
/// outnumber points).  Every worker process recomputes the same plan
/// from the same (spec, shards) inputs — no coordination needed.
class ShardPlan {
 public:
  /// Balanced contiguous split: the first (num_points % num_shards)
  /// shards take one extra point.
  [[nodiscard]] static ShardPlan contiguous(std::size_t num_points,
                                            std::size_t num_shards);

  /// Contiguous split whose boundaries only fall between runs of equal
  /// structure_key(spec.point(base, i)), so each shard pays exactly one
  /// exploration per structure it touches and no run is split across
  /// shards.  (A structure whose points recur in non-adjacent runs —
  /// possible when a structural axis is not the slowest — is explored
  /// once per shard that owns one of its runs.)  Greedy point-balanced;
  /// trailing shards are empty when runs are fewer than shards.
  [[nodiscard]] static ShardPlan by_structure(const GridSpec& spec,
                                              const Params& base,
                                              std::size_t num_shards);

  /// Replication-balanced contiguous split for Monte-Carlo shards:
  /// CI-adaptive stopping makes per-point cost vary severalfold across
  /// a grid (slow-detection points need long trajectories AND more
  /// replications), so the point-balanced splits above leave some
  /// workers idle while the unlucky one finishes.  This plan runs a
  /// small deterministic pilot block (`pilot_replications` fixed-budget
  /// replications per point, same substream keying as the real run, so
  /// every worker derives the IDENTICAL plan with no coordination) and
  /// weights the split by each point's predicted cost:
  ///
  ///   weight = predicted replications × mean TTSF,
  ///
  /// where the replication prediction inverts the CI-stopping rule from
  /// the pilot variance (clamped to [min, max]_replications; uniform
  /// when `mc.rel_ci_target` disables adaptive stopping) and the mean
  /// TTSF proxies per-trajectory cost (event count scales with
  /// simulated time).  Falls back to contiguous() when the pilot finds
  /// no usable weights.  The split itself is greedy: each shard takes
  /// whole points toward an even share of the remaining weight.
  [[nodiscard]] static ShardPlan by_pilot_cost(
      const GridSpec& spec, const Params& base, std::size_t num_shards,
      const sim::McOptions& mc, std::size_t pilot_replications = 16);

  /// Lease-oriented replanning: splits the UNCOMPLETED remainder of a
  /// run — a set of disjoint point ranges whose results never arrived
  /// (dead worker, expired lease) — into up to `num_pieces` balanced
  /// sub-ranges so several surviving workers can absorb it in parallel.
  /// Every output range is a sub-range of exactly one input (a piece
  /// never bridges a completed gap), outputs preserve input order, and
  /// the union is exactly the input union, so re-dispatched pieces
  /// still tile with the already-completed shards at merge time.  When
  /// `num_pieces` <= the input count the inputs are returned as-is;
  /// otherwise the extra splits go to the largest inputs first.  The
  /// result is deterministic in (inputs, num_pieces).  Throws
  /// std::invalid_argument on overlapping inputs or num_pieces == 0.
  [[nodiscard]] static std::vector<ShardRange> replan(
      std::span<const ShardRange> uncompleted, std::size_t num_pieces);

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return ranges_.size();
  }
  [[nodiscard]] std::size_t num_points() const noexcept {
    return num_points_;
  }
  [[nodiscard]] const ShardRange& range(std::size_t shard) const;
  [[nodiscard]] const std::vector<ShardRange>& ranges() const noexcept {
    return ranges_;
  }

  /// Per-shard predicted cost weights (same order as ranges()) — filled
  /// by by_pilot_cost(), empty for the other planners and for its
  /// contiguous fallback.  The fleet coordinator scales per-lease
  /// deadlines by these, so an expensive shard is not declared a
  /// straggler on the schedule of a cheap one.
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

 private:
  std::vector<ShardRange> ranges_;
  std::vector<double> weights_;
  std::size_t num_points_ = 0;
};

/// One shard's analytic slice (evals[i] answers point range.begin + i).
struct GridShardResult {
  ShardRange range;
  std::vector<Evaluation> evals;
};

/// One shard's analytic + Monte-Carlo slice.  `mc` is empty for
/// analytic-only shards; otherwise parallel to `evals`.
struct McGridShardResult {
  ShardRange range;
  std::vector<Evaluation> evals;
  std::vector<sim::McPointResult> mc;
  sim::MonteCarloEngine::Stats mc_stats;
};

/// The on-disk form of one shard's results plus the metadata the merge
/// step validates: shards of one run must agree on plan id, mode, grid
/// size and shard count, and their ranges must tile the grid exactly.
struct ShardFile {
  std::string plan;        // producer-chosen grid identifier, e.g. "fig2"
  std::string mode;        // producer-chosen config tag, e.g. "smoke"
  std::size_t grid_points = 0;
  std::size_t num_shards = 0;
  std::size_t shard_index = 0;
  bool has_mc = false;
  McGridShardResult result;
};

/// Serialises `file` as strict JSON ("midas-shard-v1"): every double
/// with round-trip precision, MC points as raw Welford states and
/// counts.  Throws std::runtime_error on IO failure.
void write_shard_json(const std::string& path, const ShardFile& file);

/// Parses a file written by write_shard_json (summaries are rebuilt
/// from the serialised accumulator states, bitwise-identical to the
/// producing process).  Throws std::runtime_error on IO/format errors.
[[nodiscard]] ShardFile read_shard_json(const std::string& path);

/// Shard files recombined into full-grid vectors (index = grid point).
struct MergedShardSet {
  std::string plan;
  std::string mode;
  std::size_t grid_points = 0;
  std::size_t num_shards = 0;
  bool has_mc = false;
  std::vector<Evaluation> evals;
  std::vector<sim::McPointResult> mc;
  sim::MonteCarloEngine::Stats mc_stats;  // summed over shards
};

/// Validates and merges a complete shard set: consistent metadata, an
/// exact non-overlapping tiling of [0, grid_points), per-shard sizes
/// matching their ranges, and uniform has_mc.  Throws
/// std::invalid_argument naming the first violation.
[[nodiscard]] MergedShardSet merge_shard_files(
    std::span<const ShardFile> files);

/// Throws std::invalid_argument unless the non-empty ranges tile
/// [0, num_points) exactly (no gap, no overlap).  Shared by every merge
/// path.  The error names the offending slices — which shards overlap,
/// or which points are covered by no shard and which shards border the
/// hole — because reassignment debugging starts from that message.
/// `shard_labels`, when non-empty, gives the producer-facing shard
/// index of each range (same order); otherwise ranges are named by
/// position.
void validate_shard_tiling(std::size_t num_points,
                           std::span<const ShardRange> ranges);
void validate_shard_tiling(std::size_t num_points,
                           std::span<const ShardRange> ranges,
                           std::span<const std::size_t> shard_labels);

}  // namespace midas::core
