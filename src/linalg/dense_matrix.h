// Small dense matrices with LU factorisation.  Used as the reference
// solver in tests, for the tiny linear systems in the MANET birth-death
// rate fit, and — through LuFactorView — as the allocation-free batched
// kernel behind spn::AbsorbingAnalyzer::solve_batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace midas::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::vector<double> multiply(
      const std::vector<double>& x) const;

  /// Identity matrix.
  [[nodiscard]] static DenseMatrix identity(std::size_t n);

  /// Row-major storage (n·n doubles) — the layout LuFactorView factors
  /// in place.
  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept {
    return data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Non-owning LU factorisation over caller storage (stack buffers, a
/// util::Arena, a DenseMatrix's data()): factor() runs partial-pivoting
/// Gaussian elimination IN PLACE on `lu` (row-major n×n) and records
/// the pivot-row swap sequence in `ipiv`, so repeated solves perform
/// zero allocations.  The arithmetic is bit-for-bit the LuSolver
/// constructor's — the batched solver relies on that to stay bitwise
/// identical to the scalar path.
struct LuFactorView {
  std::span<double> lu;           ///< n·n row-major; factored in place
  std::span<std::uint32_t> ipiv;  ///< n; ipiv[k] = row swapped at step k
  std::size_t n = 0;

  /// Factors lu in place; throws std::runtime_error on a numerically
  /// singular pivot (same norm-scaled floor as LuSolver).
  void factor();

  /// Solves A x = b into `x` (b and x may alias).  No allocations.
  void solve_to(std::span<const double> b, std::span<double> x) const;

  /// Multi-RHS solve, IN PLACE on B.  Layout is component-major
  /// ("point-major" in the sweep engine's terms): B[r*n_rhs + j] is
  /// component r of right-hand side j, so every substitution step
  /// updates n_rhs contiguous doubles — the auto-vectorisable inner
  /// loop the batch path is built around.  Column j of the result is
  /// bitwise what solve_to would produce for column j alone.
  void solve_many(std::span<double> B, std::size_t n_rhs) const;
};

/// Substitution kernels over an already-factored LU (read-only): the
/// implementations behind LuFactorView / LuSolver solves.
void lu_solve_to(std::span<const double> lu,
                 std::span<const std::uint32_t> ipiv, std::size_t n,
                 std::span<const double> b, std::span<double> x);
void lu_solve_many(std::span<const double> lu,
                   std::span<const std::uint32_t> ipiv, std::size_t n,
                   std::span<double> B, std::size_t n_rhs);

/// LU factorisation with partial pivoting; throws std::runtime_error on a
/// numerically singular pivot.
class LuSolver {
 public:
  explicit LuSolver(DenseMatrix a);

  /// Solves A x = b.
  [[nodiscard]] std::vector<double> solve(std::vector<double> b) const;

  /// Allocation-free variant: solves into caller storage (b and x may
  /// alias).  Bitwise identical to solve().
  void solve_to(std::span<const double> b, std::span<double> x) const;

  /// Multi-RHS solve, in place on B (component-major layout
  /// B[r*n_rhs + j]; see LuFactorView::solve_many).  No per-call
  /// copies or allocations.
  void solve_many(std::span<double> B, std::size_t n_rhs) const;

 private:
  DenseMatrix lu_;
  std::vector<std::uint32_t> ipiv_;  // pivot-swap sequence (LAPACK-style)
  std::vector<std::size_t> perm_;    // composed permutation (solve())
};

}  // namespace midas::linalg
