// Small dense matrices with LU factorisation.  Used as the reference
// solver in tests and for the tiny linear systems in the MANET
// birth-death rate fit.
#pragma once

#include <cstddef>
#include <vector>

namespace midas::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::vector<double> multiply(
      const std::vector<double>& x) const;

  /// Identity matrix.
  [[nodiscard]] static DenseMatrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorisation with partial pivoting; throws std::runtime_error on a
/// numerically singular pivot.
class LuSolver {
 public:
  explicit LuSolver(DenseMatrix a);

  /// Solves A x = b.
  [[nodiscard]] std::vector<double> solve(std::vector<double> b) const;

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
};

}  // namespace midas::linalg
