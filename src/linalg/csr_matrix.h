// Compressed-sparse-row matrix.  This is the backbone of the SPN→CTMC
// pipeline: generator matrices at N = 100 have ~20k states and ~6 nnz per
// row, so CSR + iterative solvers handle every experiment in milliseconds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace midas::linalg {

/// Triplet used while assembling a sparse matrix.
struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicate (row, col) entries are summed.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  /// y = A x  (y resized to rows()).
  void multiply(std::span<const double> x, std::vector<double>& y) const;

  /// y = Aᵀ x  (y resized to cols()).
  void multiply_transpose(std::span<const double> x,
                          std::vector<double>& y) const;

  /// Returns the transposed matrix (explicit, used by the absorbing-state
  /// solver which iterates on columns of the generator).
  [[nodiscard]] CsrMatrix transposed() const;

  /// Diagonal entries (0 where the diagonal is structurally absent).
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Row access for solver kernels.
  [[nodiscard]] std::span<const std::uint32_t> row_cols(std::size_t r) const;
  [[nodiscard]] std::span<const double> row_values(std::size_t r) const;

  /// Entry lookup (O(row nnz)); 0.0 if absent.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Infinity norm of the matrix (max absolute row sum).
  [[nodiscard]] double inf_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> row_ptr_;  // size rows_ + 1
  std::vector<std::uint32_t> col_;
  std::vector<double> values_;
};

}  // namespace midas::linalg
