#include "linalg/csr_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace midas::linalg {

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets) {
  for (const auto& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw std::out_of_range("CsrMatrix: triplet outside matrix bounds");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  for (std::size_t i = 0; i < triplets.size();) {
    const auto row = triplets[i].row;
    const auto col = triplets[i].col;
    double sum = 0.0;
    while (i < triplets.size() && triplets[i].row == row &&
           triplets[i].col == col) {
      sum += triplets[i].value;
      ++i;
    }
    m.col_.push_back(col);
    m.values_.push_back(sum);
    m.row_ptr_[row + 1] = static_cast<std::uint32_t>(m.col_.size());
  }
  // row_ptr entries for empty rows: carry forward.
  for (std::size_t r = 1; r <= rows; ++r) {
    m.row_ptr_[r] = std::max(m.row_ptr_[r], m.row_ptr_[r - 1]);
  }
  return m;
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::vector<double>& y) const {
  assert(x.size() == cols_);
  y.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_[k]];
    }
    y[r] = acc;
  }
}

void CsrMatrix::multiply_transpose(std::span<const double> x,
                                   std::vector<double>& y) const {
  assert(x.size() == rows_);
  y.assign(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_[k]] += values_[k] * xr;
    }
  }
}

CsrMatrix CsrMatrix::transposed() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      trips.push_back({col_[k], static_cast<std::uint32_t>(r), values_[k]});
    }
  }
  return from_triplets(cols_, rows_, std::move(trips));
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(std::min(rows_, cols_), 0.0);
  for (std::size_t r = 0; r < d.size(); ++r) {
    d[r] = at(r, r);
  }
  return d;
}

std::span<const std::uint32_t> CsrMatrix::row_cols(std::size_t r) const {
  return {col_.data() + row_ptr_[r],
          static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
}

std::span<const double> CsrMatrix::row_values(std::size_t r) const {
  return {values_.data() + row_ptr_[r],
          static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
    if (col_[k] == c) return values_[k];
  }
  return 0.0;
}

double CsrMatrix::inf_norm() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += std::abs(values_[k]);
    }
    best = std::max(best, acc);
  }
  return best;
}

}  // namespace midas::linalg
