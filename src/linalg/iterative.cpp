#include "linalg/iterative.h"

#include <cmath>
#include <stdexcept>

namespace midas::linalg {

namespace {

double norm2(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

double relative_residual(const CsrMatrix& a, const std::vector<double>& x,
                         const std::vector<double>& b) {
  std::vector<double> ax;
  a.multiply(x, ax);
  double num = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double d = ax[i] - b[i];
    num += d * d;
  }
  const double den = norm2(b);
  return std::sqrt(num) / (den > 0.0 ? den : 1.0);
}

SolveResult gauss_seidel(const CsrMatrix& a, const std::vector<double>& b,
                         const SolveOptions& opts) {
  if (a.rows() != a.cols() || b.size() != a.rows()) {
    throw std::invalid_argument("gauss_seidel: dimension mismatch");
  }
  const std::size_t n = a.rows();
  SolveResult res;
  res.x.assign(n, 0.0);
  const double omega = opts.relaxation;

  const auto diag = a.diagonal();
  for (std::size_t r = 0; r < n; ++r) {
    if (diag[r] == 0.0) {
      throw std::runtime_error("gauss_seidel: zero diagonal at row " +
                               std::to_string(r));
    }
  }

  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    double max_delta = 0.0;
    double max_x = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const auto cols = a.row_cols(r);
      const auto vals = a.row_values(r);
      double acc = b[r];
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] != r) acc -= vals[k] * res.x[cols[k]];
      }
      const double next = acc / diag[r];
      const double blended = (1.0 - omega) * res.x[r] + omega * next;
      max_delta = std::max(max_delta, std::abs(blended - res.x[r]));
      max_x = std::max(max_x, std::abs(blended));
      res.x[r] = blended;
    }
    res.iterations = it;
    // Cheap convergence proxy first; confirm with the true residual to
    // avoid declaring victory on slowly-creeping iterations.
    if (max_delta <= opts.tolerance * std::max(1.0, max_x)) {
      res.residual = relative_residual(a, res.x, b);
      if (res.residual <= opts.tolerance * 1e3) {
        res.converged = true;
        return res;
      }
    }
  }
  res.residual = relative_residual(a, res.x, b);
  res.converged = res.residual <= opts.tolerance * 1e3;
  return res;
}

SolveResult jacobi(const CsrMatrix& a, const std::vector<double>& b,
                   const SolveOptions& opts) {
  if (a.rows() != a.cols() || b.size() != a.rows()) {
    throw std::invalid_argument("jacobi: dimension mismatch");
  }
  const std::size_t n = a.rows();
  SolveResult res;
  res.x.assign(n, 0.0);
  std::vector<double> next(n, 0.0);
  const auto diag = a.diagonal();
  for (std::size_t r = 0; r < n; ++r) {
    if (diag[r] == 0.0) {
      throw std::runtime_error("jacobi: zero diagonal");
    }
  }

  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    double max_delta = 0.0;
    double max_x = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const auto cols = a.row_cols(r);
      const auto vals = a.row_values(r);
      double acc = b[r];
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] != r) acc -= vals[k] * res.x[cols[k]];
      }
      next[r] = acc / diag[r];
      max_delta = std::max(max_delta, std::abs(next[r] - res.x[r]));
      max_x = std::max(max_x, std::abs(next[r]));
    }
    res.x.swap(next);
    res.iterations = it;
    if (max_delta <= opts.tolerance * std::max(1.0, max_x)) {
      res.residual = relative_residual(a, res.x, b);
      if (res.residual <= opts.tolerance * 1e3) {
        res.converged = true;
        return res;
      }
    }
  }
  res.residual = relative_residual(a, res.x, b);
  res.converged = res.residual <= opts.tolerance * 1e3;
  return res;
}

SolveResult bicgstab(const CsrMatrix& a, const std::vector<double>& b,
                     const SolveOptions& opts) {
  if (a.rows() != a.cols() || b.size() != a.rows()) {
    throw std::invalid_argument("bicgstab: dimension mismatch");
  }
  const std::size_t n = a.rows();
  SolveResult res;
  res.x.assign(n, 0.0);

  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> r0 = r;
  std::vector<double> p(n, 0.0), v(n, 0.0), s(n), t(n), tmp;

  double rho_prev = 1.0, alpha = 1.0, omega = 1.0;
  const double bnorm = std::max(norm2(b), 1e-300);

  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    res.iterations = it;
    const double rho = dot(r0, r);
    if (std::abs(rho) < 1e-300) break;
    if (it == 1) {
      p = r;
    } else {
      const double beta = (rho / rho_prev) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }
    a.multiply(p, v);
    alpha = rho / dot(r0, v);
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (norm2(s) / bnorm <= opts.tolerance) {
      for (std::size_t i = 0; i < n; ++i) res.x[i] += alpha * p[i];
      res.residual = relative_residual(a, res.x, b);
      res.converged = true;
      return res;
    }
    a.multiply(s, t);
    const double tt = dot(t, t);
    if (tt < 1e-300) break;
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * p[i] + omega * s[i];
      r[i] = s[i] - omega * t[i];
    }
    if (norm2(r) / bnorm <= opts.tolerance) {
      res.residual = relative_residual(a, res.x, b);
      res.converged = true;
      return res;
    }
    rho_prev = rho;
  }
  res.residual = relative_residual(a, res.x, b);
  res.converged = res.residual <= opts.tolerance * 1e3;
  return res;
}

}  // namespace midas::linalg
