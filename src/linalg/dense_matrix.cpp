#include "linalg/dense_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace midas::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void LuFactorView::factor() {
  assert(lu.size() == n * n && ipiv.size() == n);
  double* a = lu.data();

  // Singularity threshold scaled to the matrix: a pivot only means
  // anything relative to ‖A‖∞.  An absolute cutoff (the former 1e-300)
  // accepts the tiny-but-nonzero pivots that cancellation leaves in a
  // singular-to-rounding block and returns garbage; n·ε·‖A‖∞ is the
  // magnitude roundoff alone can produce there.
  double norm = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < n; ++c) row += std::abs(a[r * n + c]);
    norm = std::max(norm, row);
  }
  const double pivot_floor =
      std::max(static_cast<double>(n) *
                   std::numeric_limits<double>::epsilon() * norm,
               1e-300);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t pivot = k;
    double best = std::abs(a[k * n + k]);
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::abs(a[r * n + k]) > best) {
        best = std::abs(a[r * n + k]);
        pivot = r;
      }
    }
    if (best < pivot_floor) {
      throw std::runtime_error("LuSolver: singular matrix");
    }
    ipiv[k] = static_cast<std::uint32_t>(pivot);
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[pivot * n + c], a[k * n + c]);
      }
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = a[r * n + k] / a[k * n + k];
      a[r * n + k] = f;
      for (std::size_t c = k + 1; c < n; ++c) {
        a[r * n + c] -= f * a[k * n + c];
      }
    }
  }
}

void LuFactorView::solve_to(std::span<const double> b,
                            std::span<double> x) const {
  lu_solve_to(lu, ipiv, n, b, x);
}

void LuFactorView::solve_many(std::span<double> B, std::size_t n_rhs) const {
  lu_solve_many(lu, ipiv, n, B, n_rhs);
}

void lu_solve_to(std::span<const double> lu,
                 std::span<const std::uint32_t> ipiv, std::size_t n,
                 std::span<const double> b, std::span<double> x) {
  assert(b.size() == n && x.size() == n);
  const double* a = lu.data();
  if (x.data() != b.data()) std::copy(b.begin(), b.end(), x.begin());
  // P b: replay the pivot-swap sequence (equivalent to gathering by the
  // composed permutation — same values, no scratch).
  for (std::size_t k = 0; k < n; ++k) {
    if (ipiv[k] != k) std::swap(x[k], x[ipiv[k]]);
  }
  // Forward substitution (unit lower).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= a[i * n + j] * x[j];
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= a[ii * n + j] * x[j];
    x[ii] /= a[ii * n + ii];
  }
}

void lu_solve_many(std::span<const double> lu,
                   std::span<const std::uint32_t> ipiv, std::size_t n,
                   std::span<double> B, std::size_t n_rhs) {
  assert(B.size() == n * n_rhs);
  const double* a = lu.data();
  double* x = B.data();
  // P B: swap whole component rows — in place, no scratch.
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t p = ipiv[k];
    if (p != k) {
      for (std::size_t j = 0; j < n_rhs; ++j) {
        std::swap(x[k * n_rhs + j], x[p * n_rhs + j]);
      }
    }
  }
  // Forward substitution (unit lower): each axpy updates a contiguous
  // row of n_rhs doubles.
  for (std::size_t i = 0; i < n; ++i) {
    double* xi = x + i * n_rhs;
    for (std::size_t j = 0; j < i; ++j) {
      const double f = a[i * n + j];
      const double* xj = x + j * n_rhs;
      for (std::size_t r = 0; r < n_rhs; ++r) xi[r] -= f * xj[r];
    }
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double* xi = x + ii * n_rhs;
    for (std::size_t j = ii + 1; j < n; ++j) {
      const double f = a[ii * n + j];
      const double* xj = x + j * n_rhs;
      for (std::size_t r = 0; r < n_rhs; ++r) xi[r] -= f * xj[r];
    }
    const double d = a[ii * n + ii];
    for (std::size_t r = 0; r < n_rhs; ++r) xi[r] /= d;
  }
}

LuSolver::LuSolver(DenseMatrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) {
    throw std::invalid_argument("LuSolver: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  ipiv_.resize(n);
  LuFactorView view{lu_.data(), ipiv_, n};
  view.factor();
  // Composed permutation for the gather in solve(): replaying the swap
  // sequence on an identity map is exactly the bookkeeping the previous
  // constructor interleaved with elimination.
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  for (std::size_t k = 0; k < n; ++k) {
    if (ipiv_[k] != k) std::swap(perm_[k], perm_[ipiv_[k]]);
  }
}

std::vector<double> LuSolver::solve(std::vector<double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuSolver::solve: size mismatch");
  }
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution (unit lower).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu_(ii, j) * x[j];
    x[ii] /= lu_(ii, ii);
  }
  return x;
}

void LuSolver::solve_to(std::span<const double> b, std::span<double> x) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n || x.size() != n) {
    throw std::invalid_argument("LuSolver::solve_to: size mismatch");
  }
  lu_solve_to(lu_.data(), ipiv_, n, b, x);
}

void LuSolver::solve_many(std::span<double> B, std::size_t n_rhs) const {
  const std::size_t n = lu_.rows();
  if (n_rhs == 0 || B.size() != n * n_rhs) {
    throw std::invalid_argument("LuSolver::solve_many: size mismatch");
  }
  lu_solve_many(lu_.data(), ipiv_, n, B, n_rhs);
}

}  // namespace midas::linalg
