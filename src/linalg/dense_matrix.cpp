#include "linalg/dense_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace midas::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

LuSolver::LuSolver(DenseMatrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) {
    throw std::invalid_argument("LuSolver: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  // Singularity threshold scaled to the matrix: a pivot only means
  // anything relative to ‖A‖∞.  An absolute cutoff (the former 1e-300)
  // accepts the tiny-but-nonzero pivots that cancellation leaves in a
  // singular-to-rounding block and returns garbage; n·ε·‖A‖∞ is the
  // magnitude roundoff alone can produce there.
  double norm = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < n; ++c) row += std::abs(lu_(r, c));
    norm = std::max(norm, row);
  }
  const double pivot_floor =
      std::max(static_cast<double>(n) *
                   std::numeric_limits<double>::epsilon() * norm,
               1e-300);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::abs(lu_(r, k)) > best) {
        best = std::abs(lu_(r, k));
        pivot = r;
      }
    }
    if (best < pivot_floor) {
      throw std::runtime_error("LuSolver: singular matrix");
    }
    if (pivot != k) {
      std::swap(perm_[pivot], perm_[k]);
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(pivot, c), lu_(k, c));
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = lu_(r, k) / lu_(k, k);
      lu_(r, k) = f;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= f * lu_(k, c);
    }
  }
}

std::vector<double> LuSolver::solve(std::vector<double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuSolver::solve: size mismatch");
  }
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution (unit lower).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu_(ii, j) * x[j];
    x[ii] /= lu_(ii, ii);
  }
  return x;
}

}  // namespace midas::linalg
