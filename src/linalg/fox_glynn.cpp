#include "linalg/fox_glynn.h"

#include <cmath>
#include <stdexcept>

namespace midas::linalg {

PoissonWindow poisson_window(double q, double epsilon) {
  if (q < 0.0) throw std::invalid_argument("poisson_window: q < 0");
  PoissonWindow w;
  if (q == 0.0) {
    w.left = w.right = 0;
    w.weights = {1.0};
    return w;
  }

  // Work outward from the mode in the log domain; this is the robust
  // part of Fox–Glynn without the original paper's integer gymnastics.
  const auto mode = static_cast<std::size_t>(q);
  auto log_pmf = [q](std::size_t k) {
    return -q + static_cast<double>(k) * std::log(q) -
           std::lgamma(static_cast<double>(k) + 1.0);
  };

  const double log_eps = std::log(epsilon) - std::log(4.0);
  const double log_mode = log_pmf(mode);

  std::size_t left = mode;
  while (left > 0 && log_pmf(left - 1) > log_eps + log_mode - 30.0) {
    // Walk left until pmf is negligible relative to the mode; the -30
    // margin (≈ e⁻³⁰) keeps the window generous for small q.
    if (log_pmf(left - 1) < log_mode - 45.0) break;
    --left;
  }
  std::size_t right = mode;
  while (log_pmf(right + 1) > log_mode - 45.0) {
    ++right;
    if (right > mode + 10 * static_cast<std::size_t>(std::sqrt(q) + 10.0)) {
      break;  // hard cap; tail mass beyond this is far below epsilon
    }
  }

  w.left = left;
  w.right = right;
  w.weights.resize(right - left + 1);
  double sum = 0.0;
  for (std::size_t k = left; k <= right; ++k) {
    const double p = std::exp(log_pmf(k));
    w.weights[k - left] = p;
    sum += p;
  }
  if (sum <= 0.0) throw std::runtime_error("poisson_window: underflow");
  for (double& p : w.weights) p /= sum;
  return w;
}

}  // namespace midas::linalg
