#include "linalg/log_math.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace midas::linalg {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double log_factorial(std::int64_t n) {
  if (n < 0) return kNegInf;
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n || n < 0) return kNegInf;
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double binomial(std::int64_t n, std::int64_t k) {
  const double lb = log_binomial(n, k);
  return std::isinf(lb) ? 0.0 : std::exp(lb);
}

double binomial_pmf(std::int64_t n, std::int64_t k, double p) {
  if (k < 0 || k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double lp = log_binomial(n, k) + static_cast<double>(k) * std::log(p) +
                    static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(lp);
}

double binomial_tail_geq(std::int64_t n, std::int64_t k, double p) {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  // Sum the smaller tail for accuracy.
  if (static_cast<double>(k) > static_cast<double>(n) * p) {
    double acc = 0.0;
    for (std::int64_t j = k; j <= n; ++j) acc += binomial_pmf(n, j, p);
    return std::min(acc, 1.0);
  }
  double acc = 0.0;
  for (std::int64_t j = 0; j < k; ++j) acc += binomial_pmf(n, j, p);
  return std::max(0.0, 1.0 - acc);
}

double hypergeometric_pmf(std::int64_t succ, std::int64_t fail,
                          std::int64_t draws, std::int64_t k) {
  const std::int64_t pop = succ + fail;
  if (draws < 0 || draws > pop) return 0.0;
  if (k < 0 || k > succ || draws - k > fail || draws - k < 0) return 0.0;
  const double lp = log_binomial(succ, k) + log_binomial(fail, draws - k) -
                    log_binomial(pop, draws);
  return std::exp(lp);
}

double log_sum_exp(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

}  // namespace midas::linalg
