// Log-domain combinatorics.  The voting-IDS error probabilities (paper
// Eq. 1) mix hypergeometric participant selection with binomial voter
// error counts; at N = 100, m = 9 the raw binomials overflow doubles, so
// every pmf here is evaluated through log-gamma.
#pragma once

#include <cstdint>

namespace midas::linalg {

/// ln(n!) via lgamma; exact for the integer arguments we use.
[[nodiscard]] double log_factorial(std::int64_t n);

/// ln C(n, k); returns -inf when the coefficient is zero (k < 0 or k > n).
[[nodiscard]] double log_binomial(std::int64_t n, std::int64_t k);

/// C(n, k) in doubles (may overflow for n beyond ~1000; callers in this
/// project stay far below that).
[[nodiscard]] double binomial(std::int64_t n, std::int64_t k);

/// Binomial pmf  P[X = k],  X ~ Bin(n, p).  Correct for p = 0 and p = 1.
[[nodiscard]] double binomial_pmf(std::int64_t n, std::int64_t k, double p);

/// Binomial upper tail  P[X >= k].
[[nodiscard]] double binomial_tail_geq(std::int64_t n, std::int64_t k,
                                       double p);

/// Hypergeometric pmf: drawing `draws` items without replacement from a
/// population of `succ` successes and `fail` failures; probability of
/// exactly `k` successes.
[[nodiscard]] double hypergeometric_pmf(std::int64_t succ, std::int64_t fail,
                                        std::int64_t draws, std::int64_t k);

/// log(exp(a) + exp(b)) without overflow.
[[nodiscard]] double log_sum_exp(double a, double b);

}  // namespace midas::linalg
