// Fox–Glynn-style Poisson weight computation for uniformisation.  Given
// q = Λ·t, produces normalised Poisson(q) probabilities over a truncated
// window [left, right] whose tail mass is below `epsilon`.
#pragma once

#include <cstddef>
#include <vector>

namespace midas::linalg {

struct PoissonWindow {
  std::size_t left = 0;   // first retained term
  std::size_t right = 0;  // last retained term (inclusive)
  std::vector<double> weights;  // normalised: sums to ~1 over the window

  [[nodiscard]] double weight(std::size_t k) const {
    return (k < left || k > right) ? 0.0 : weights[k - left];
  }
};

/// Computes the truncated Poisson distribution for rate `q` with total
/// truncated tail mass below `epsilon`.  Stable for q up to ~1e7 (log
/// domain accumulation around the mode).
[[nodiscard]] PoissonWindow poisson_window(double q, double epsilon = 1e-12);

}  // namespace midas::linalg
