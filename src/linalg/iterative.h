// Iterative linear solvers for the CTMC systems.  The generator systems
// arising from absorbing SPNs are (after restriction to transient states)
// weakly diagonally dominant M-matrices, for which Gauss–Seidel converges;
// BiCGSTAB is provided as a fallback for harder systems.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.h"

namespace midas::linalg {

struct SolveResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

struct SolveOptions {
  std::size_t max_iterations = 200000;
  double tolerance = 1e-12;      // on the relative residual ‖Ax−b‖/‖b‖
  double relaxation = 1.0;       // SOR weight; 1.0 = plain Gauss–Seidel
};

/// Gauss–Seidel / SOR for A x = b.  Requires non-zero diagonal.
[[nodiscard]] SolveResult gauss_seidel(const CsrMatrix& a,
                                       const std::vector<double>& b,
                                       const SolveOptions& opts = {});

/// Jacobi iteration (kept mainly as a test oracle for Gauss–Seidel).
[[nodiscard]] SolveResult jacobi(const CsrMatrix& a,
                                 const std::vector<double>& b,
                                 const SolveOptions& opts = {});

/// BiCGSTAB without preconditioning.
[[nodiscard]] SolveResult bicgstab(const CsrMatrix& a,
                                   const std::vector<double>& b,
                                   const SolveOptions& opts = {});

/// ‖Ax − b‖₂ / ‖b‖₂ (‖b‖ treated as 1 when b = 0).
[[nodiscard]] double relative_residual(const CsrMatrix& a,
                                       const std::vector<double>& x,
                                       const std::vector<double>& b);

}  // namespace midas::linalg
