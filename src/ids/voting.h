// Voting-based IDS error probabilities — paper Equation 1.
//
// A target node is judged by `m` vote-participants drawn uniformly
// without replacement from the rest of the group (Ngood trusted nodes,
// Nbad compromised-undetected nodes).  Eviction requires a strict
// majority of negative (evict) votes.  Voter behaviour:
//   * compromised voters collude deterministically: they vote to EVICT a
//     good target and to RETAIN a bad target;
//   * trusted voters apply their host IDS and err independently — with
//     probability p2 they vote against a good target (false positive),
//     with probability p1 they vote for a bad target (false negative).
//
//   Pfp = P[ majority votes against a GOOD target ]
//   Pfn = P[ majority fails against a BAD target ]
//
// Evaluated exactly: hypergeometric mixture over the number of
// compromised participants × binomial error counts among the trusted
// ones.  A brute-force enumerator over all voter subsets validates the
// closed form in the tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace midas::ids {

struct VotingParams {
  std::int64_t num_voters = 5;  // m, the paper's vote-participant count
  double p1 = 0.01;             // per-node host-IDS false negative
  double p2 = 0.01;             // per-node host-IDS false positive
};

struct VotingErrorRates {
  double pfp = 0.0;  // P[good target evicted]
  double pfn = 0.0;  // P[bad target retained]
};

/// Exact Pfp/Pfn for a group with `n_good` trusted and `n_bad`
/// compromised-undetected members.  The effective number of voters is
/// min(m, pool size); groups too small to vote (pool = 0) yield
/// pfp = 0, pfn = 1 (no eviction possible).
[[nodiscard]] VotingErrorRates voting_error_rates(const VotingParams& params,
                                                  std::int64_t n_good,
                                                  std::int64_t n_bad);

/// O(2^pool · pool²) reference evaluator for tests (pool ≤ ~12).
[[nodiscard]] VotingErrorRates voting_error_rates_bruteforce(
    const VotingParams& params, std::int64_t n_good, std::int64_t n_bad);

/// Memoised wrapper keyed on (n_good, n_bad); the SPN evaluates the
/// error rates in every marking, so this removes ~all recomputation.
class VotingTable {
 public:
  VotingTable(VotingParams params, std::int64_t max_good,
              std::int64_t max_bad);

  [[nodiscard]] const VotingErrorRates& at(std::int64_t n_good,
                                           std::int64_t n_bad) const;
  [[nodiscard]] const VotingParams& params() const noexcept {
    return params_;
  }

 private:
  VotingParams params_;
  std::int64_t max_good_;
  std::int64_t max_bad_;
  std::vector<VotingErrorRates> table_;  // (good, bad) row-major
};

/// Process-wide memo of voting tables keyed on (m, p1, p2, bounds).
/// A parameter sweep builds one GcsSpnModel per point, and for a
/// TIDS/shape sweep every point needs the identical O(N²) table — this
/// makes all of them share one precomputation.  Thread-safe; the memo
/// holds one entry per distinct configuration seen in the process.
[[nodiscard]] std::shared_ptr<const VotingTable> shared_voting_table(
    const VotingParams& params, std::int64_t max_good, std::int64_t max_bad);

}  // namespace midas::ids
