#include "ids/voting.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "linalg/log_math.h"

namespace midas::ids {

namespace {

/// Strict majority threshold for `m` voters.
std::int64_t majority_of(std::int64_t m) { return m / 2 + 1; }

}  // namespace

VotingErrorRates voting_error_rates(const VotingParams& params,
                                    std::int64_t n_good, std::int64_t n_bad) {
  if (params.num_voters <= 0) {
    throw std::invalid_argument("voting_error_rates: m must be positive");
  }
  if (params.p1 < 0.0 || params.p1 > 1.0 || params.p2 < 0.0 ||
      params.p2 > 1.0) {
    throw std::invalid_argument("voting_error_rates: p1/p2 out of [0,1]");
  }
  if (n_good < 0 || n_bad < 0) {
    throw std::invalid_argument("voting_error_rates: negative populations");
  }

  VotingErrorRates rates;

  // ---- Pfp: target is GOOD.  Pool excludes the target itself.
  {
    const std::int64_t pool_good = std::max<std::int64_t>(n_good - 1, 0);
    const std::int64_t pool = pool_good + n_bad;
    if (pool == 0) {
      rates.pfp = 0.0;  // nobody can vote; no eviction possible
    } else {
      const std::int64_t m = std::min(params.num_voters, pool);
      const std::int64_t need = majority_of(m);
      double pfp = 0.0;
      for (std::int64_t k = 0; k <= std::min(m, n_bad); ++k) {
        const double sel =
            linalg::hypergeometric_pmf(n_bad, pool_good, m, k);
        if (sel == 0.0) continue;
        // k colluding voters all vote to evict; of the m−k trusted
        // voters, each mistakenly votes to evict w.p. p2.  Eviction when
        // total negative votes reach the majority.
        const std::int64_t still_needed = need - k;
        pfp += sel * linalg::binomial_tail_geq(m - k, still_needed,
                                               params.p2);
      }
      rates.pfp = std::clamp(pfp, 0.0, 1.0);
    }
  }

  // ---- Pfn: target is BAD.  Pool excludes the (bad) target.
  {
    const std::int64_t pool_bad = std::max<std::int64_t>(n_bad - 1, 0);
    const std::int64_t pool = n_good + pool_bad;
    if (pool == 0) {
      rates.pfn = 1.0;  // nobody can vote; the bad node survives
    } else {
      const std::int64_t m = std::min(params.num_voters, pool);
      const std::int64_t need = majority_of(m);
      double evicted = 0.0;
      for (std::int64_t k = 0; k <= std::min(m, pool_bad); ++k) {
        const double sel =
            linalg::hypergeometric_pmf(pool_bad, n_good, m, k);
        if (sel == 0.0) continue;
        // Colluders vote to retain; only the m−k trusted voters can vote
        // to evict, each detecting the bad target w.p. 1−p1.
        evicted += sel * linalg::binomial_tail_geq(m - k, need,
                                                   1.0 - params.p1);
      }
      rates.pfn = std::clamp(1.0 - evicted, 0.0, 1.0);
    }
  }
  return rates;
}

VotingErrorRates voting_error_rates_bruteforce(const VotingParams& params,
                                               std::int64_t n_good,
                                               std::int64_t n_bad) {
  // Enumerates every participant subset of size m (over a labelled pool)
  // and, within it, every error pattern of the trusted voters.  Only
  // viable for small pools; used as the test oracle.
  auto evaluate = [&](bool target_good) {
    const std::int64_t pool_good =
        std::max<std::int64_t>(target_good ? n_good - 1 : n_good, 0);
    const std::int64_t pool_bad =
        std::max<std::int64_t>(target_good ? n_bad : n_bad - 1, 0);
    const std::int64_t pool = pool_good + pool_bad;
    if (pool == 0) return target_good ? 0.0 : 1.0;
    const std::int64_t m = std::min(params.num_voters, pool);
    const std::int64_t need = m / 2 + 1;

    // P[k bad among m] × P[negative votes ≥ need], built by explicit
    // enumeration of the trusted-voter error count j.
    double p_evict = 0.0;
    for (std::int64_t k = 0; k <= std::min(m, pool_bad); ++k) {
      const double sel = linalg::hypergeometric_pmf(pool_bad, pool_good, m, k);
      if (sel == 0.0) continue;
      const std::int64_t trusted = m - k;
      double evict_given_k = 0.0;
      for (std::int64_t j = 0; j <= trusted; ++j) {
        // For a good target: negatives = k (colluders) + j (errors, p2).
        // For a bad target: negatives = j (correct detections, 1−p1).
        const double pj = target_good
                              ? linalg::binomial_pmf(trusted, j, params.p2)
                              : linalg::binomial_pmf(trusted, j,
                                                     1.0 - params.p1);
        const std::int64_t negatives = target_good ? k + j : j;
        if (negatives >= need) evict_given_k += pj;
      }
      p_evict += sel * evict_given_k;
    }
    return target_good ? p_evict : 1.0 - p_evict;
  };

  VotingErrorRates rates;
  rates.pfp = evaluate(true);
  rates.pfn = evaluate(false);
  return rates;
}

VotingTable::VotingTable(VotingParams params, std::int64_t max_good,
                         std::int64_t max_bad)
    : params_(params), max_good_(max_good), max_bad_(max_bad) {
  if (max_good < 0 || max_bad < 0) {
    throw std::invalid_argument("VotingTable: negative bounds");
  }
  table_.resize(static_cast<std::size_t>((max_good + 1) * (max_bad + 1)));
  for (std::int64_t g = 0; g <= max_good; ++g) {
    for (std::int64_t b = 0; b <= max_bad; ++b) {
      table_[static_cast<std::size_t>(g * (max_bad + 1) + b)] =
          voting_error_rates(params_, g, b);
    }
  }
}

const VotingErrorRates& VotingTable::at(std::int64_t n_good,
                                        std::int64_t n_bad) const {
  n_good = std::clamp<std::int64_t>(n_good, 0, max_good_);
  n_bad = std::clamp<std::int64_t>(n_bad, 0, max_bad_);
  return table_[static_cast<std::size_t>(n_good * (max_bad_ + 1) + n_bad)];
}

std::shared_ptr<const VotingTable> shared_voting_table(
    const VotingParams& params, std::int64_t max_good,
    std::int64_t max_bad) {
  struct Key {
    std::int64_t m, max_good, max_bad;
    double p1, p2;
    bool operator<(const Key& o) const {
      return std::tie(m, max_good, max_bad, p1, p2) <
             std::tie(o.m, o.max_good, o.max_bad, o.p1, o.p2);
    }
  };
  static std::mutex mutex;
  static std::map<Key, std::shared_ptr<const VotingTable>> memo;

  const Key key{params.num_voters, max_good, max_bad, params.p1, params.p2};
  {
    std::lock_guard lock(mutex);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
  }
  // Build outside the lock: a table is O(N²) closed-form evaluations and
  // concurrent sweep workers must not serialise on it.  A racing builder
  // of the same key wastes one build; first insert wins.
  auto table = std::make_shared<const VotingTable>(params, max_good, max_bad);
  std::lock_guard lock(mutex);
  return memo.try_emplace(key, std::move(table)).first->second;
}

}  // namespace midas::ids
