// Host-based IDS model (paper §2.2): every node runs a local
// misuse/anomaly detector characterised solely by its false-negative
// (p1) and false-positive (p2) probabilities.  This class provides the
// sampling interface used by the discrete-event simulator and the GDH
// demo, plus the misuse/anomaly presets the paper discusses (misuse:
// higher p1, lower p2; anomaly: lower p1, higher p2).
//
// Draws come from sim::UniformStream — the same substream substrate as
// every simulator — so host-IDS verdicts are portable across standard
// libraries and participate in CRN/antithetic keying.  A plain stream
// reproduces the std::uniform_real_distribution<double>-over-mt19937_64
// sequence exactly, so same-seed verdicts are bitwise what the
// pre-stream implementation produced (no compat shim needed).
#pragma once

#include <cstdint>

#include "ids/detector_model.h"
#include "sim/rng.h"

namespace midas::ids {

enum class Verdict : std::uint8_t { Trusted, Compromised };

struct HostIdsParams {
  double p1 = 0.01;  // P[compromised node judged Trusted]
  double p2 = 0.01;  // P[trusted node judged Compromised]

  /// Signature-based preset: misses more, rarely false-alarms.
  [[nodiscard]] static HostIdsParams misuse_detection();
  /// Anomaly-based preset: misses less, false-alarms more.
  [[nodiscard]] static HostIdsParams anomaly_detection();
};

/// One node's local detector.  Deterministic under a fixed seed.
class HostIds {
 public:
  HostIds(HostIdsParams params, std::uint64_t seed);

  /// Classifies a neighbor whose true state is `actually_compromised`.
  [[nodiscard]] Verdict classify(bool actually_compromised);

  /// Classifies through a pluggable detector model: the base (p1,p2)
  /// are first adjusted to the model's effective rates for `state`.
  /// With the static model this is exactly classify(bool) — effective()
  /// returns the base constants untouched, and the single stream draw
  /// is shared.
  [[nodiscard]] Verdict classify(bool actually_compromised,
                                 const DetectorModel& model,
                                 const DetectorState& state);

  [[nodiscard]] const HostIdsParams& params() const noexcept {
    return params_;
  }

 private:
  HostIdsParams params_;
  sim::UniformStream draw_;
};

}  // namespace midas::ids
