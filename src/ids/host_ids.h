// Host-based IDS model (paper §2.2): every node runs a local
// misuse/anomaly detector characterised solely by its false-negative
// (p1) and false-positive (p2) probabilities.  This class provides the
// sampling interface used by the discrete-event simulator and the GDH
// demo, plus the misuse/anomaly presets the paper discusses (misuse:
// higher p1, lower p2; anomaly: lower p1, higher p2).
#pragma once

#include <cstdint>
#include <random>

namespace midas::ids {

enum class Verdict : std::uint8_t { Trusted, Compromised };

struct HostIdsParams {
  double p1 = 0.01;  // P[compromised node judged Trusted]
  double p2 = 0.01;  // P[trusted node judged Compromised]

  /// Signature-based preset: misses more, rarely false-alarms.
  [[nodiscard]] static HostIdsParams misuse_detection();
  /// Anomaly-based preset: misses less, false-alarms more.
  [[nodiscard]] static HostIdsParams anomaly_detection();
};

/// One node's local detector.  Deterministic under a fixed seed.
class HostIds {
 public:
  HostIds(HostIdsParams params, std::uint64_t seed);

  /// Classifies a neighbor whose true state is `actually_compromised`.
  [[nodiscard]] Verdict classify(bool actually_compromised);

  [[nodiscard]] const HostIdsParams& params() const noexcept {
    return params_;
  }

 private:
  HostIdsParams params_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uni_{0.0, 1.0};
};

}  // namespace midas::ids
