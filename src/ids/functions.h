// Attacker-strength and detection-periodicity functions (paper §3/§4.1).
//
// The paper's three shapes — logarithmic, linear, polynomial — share a
// base rate at the "clean system" point and differ in how fast the rate
// grows as compromise/eviction progresses:
//
//   A_log(mc)    = λc·log_p(mc + p − 1)      D_log(md)    = log_p(md + p − 1)/TIDS
//   A_linear(mc) = λc·mc                     D_linear(md) = md/TIDS
//   A_poly(mc)   = λc·mc^p                   D_poly(md)   = md^p/TIDS
//
// with mc = (Tm+UCm)/Tm ≥ 1 (degree of compromise) and
// md = N_init/(Tm+UCm) ≥ 1 (progress of eviction).  The paper's printed
// A_log = λc·log_p(mc) is zero at mc = 1 (a logarithmic attacker that
// never starts); the +p−1 shift is the reconstruction documented in
// DESIGN.md — all three shapes then agree at the base point, matching
// the stated anchor "λc is the base rate given no compromised node".
#pragma once

#include <string>

namespace midas::ids {

/// Growth shape shared by attacker and detection functions.
enum class Shape { Logarithmic, Linear, Polynomial };

[[nodiscard]] std::string to_string(Shape s);
/// Parses "log"/"logarithmic", "linear", "poly"/"polynomial".
[[nodiscard]] Shape shape_from_string(const std::string& name);

/// Shape factor f(x): 1 at x = 1 for every shape; requires x >= 1.
/// `p` is the paper's base-index parameter (default 3).
[[nodiscard]] double shape_factor(Shape shape, double x, double p = 3.0);

/// Attacker function A(mc): node-compromising rate.
/// `lambda_c` = base compromising rate; `mc` = (Tm+UCm)/Tm >= 1.
[[nodiscard]] double attacker_rate(Shape shape, double lambda_c, double mc,
                                   double p = 3.0);

/// Detection function D(md): per-node IDS invocation rate.
/// `t_ids` = base detection interval (s); `md` = N_init/(Tm+UCm) >= 1.
[[nodiscard]] double detection_rate(Shape shape, double t_ids, double md,
                                    double p = 3.0);

}  // namespace midas::ids
