#include "ids/functions.h"

#include <cmath>
#include <stdexcept>

namespace midas::ids {

std::string to_string(Shape s) {
  switch (s) {
    case Shape::Logarithmic:
      return "logarithmic";
    case Shape::Linear:
      return "linear";
    case Shape::Polynomial:
      return "polynomial";
  }
  return "?";
}

Shape shape_from_string(const std::string& name) {
  if (name == "log" || name == "logarithmic") return Shape::Logarithmic;
  if (name == "linear" || name == "lin") return Shape::Linear;
  if (name == "poly" || name == "polynomial") return Shape::Polynomial;
  throw std::invalid_argument("unknown shape: " + name);
}

double shape_factor(Shape shape, double x, double p) {
  if (x < 1.0) {
    throw std::invalid_argument("shape_factor: x must be >= 1");
  }
  if (p <= 1.0) {
    throw std::invalid_argument("shape_factor: p must be > 1");
  }
  switch (shape) {
    case Shape::Logarithmic:
      // log_p(x + p − 1): equals 1 at x = 1, grows sub-linearly.
      return std::log(x + p - 1.0) / std::log(p);
    case Shape::Linear:
      return x;
    case Shape::Polynomial:
      return std::pow(x, p);
  }
  return x;
}

double attacker_rate(Shape shape, double lambda_c, double mc, double p) {
  if (lambda_c < 0.0) {
    throw std::invalid_argument("attacker_rate: negative base rate");
  }
  return lambda_c * shape_factor(shape, mc, p);
}

double detection_rate(Shape shape, double t_ids, double md, double p) {
  if (t_ids <= 0.0) {
    throw std::invalid_argument("detection_rate: TIDS must be positive");
  }
  return shape_factor(shape, md, p) / t_ids;
}

}  // namespace midas::ids
