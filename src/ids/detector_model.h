// Pluggable host-IDS error models: each detector turns the paper's
// constant per-node misclassification probabilities (p1 = false
// negative, p2 = false positive) into EFFECTIVE probabilities that may
// react to the system state — how compromised the group currently is
// and how long the mission has run.  The detector is a descriptor
// (kind + knobs), not an object with hidden state: every layer passes
// the observable `DetectorState` in explicitly, so the analytic SPN,
// the DES and the protocol simulator all evaluate the same pure
// function and agree by construction.
//
//   static    today's constants — effective (p1,p2) == (p1,p2).
//   entropy   alertness scales with the binary entropy of the
//             compromised fraction f = compromised/population: mixed
//             populations are the hardest to classify, so both error
//             probabilities are inflated toward 1 by weight·H2(f)
//             (Sen's clustered-IDS anomaly detectors degrade exactly
//             when traffic is a blend of normal and hostile).  Depends
//             on the state only through (compromised, population), so
//             the CTMC stays time-homogeneous: analytic-compatible.
//   cusum     a CUSUM change detector accumulates evidence
//             S = max(0, gain·(compromised+evicted) − drift·elapsed);
//             once S crosses `threshold` the IDS is alarmed and trades
//             false negatives for false positives (p1 shrinks by
//             alarm_factor, p2 grows by 1/alarm_factor, clamped).
//             Elapsed-time dependence makes the chain
//             time-inhomogeneous: NOT analytic-compatible.
//   logistic  a logistic-regression suspicion score over the
//             compromised fraction and mission time,
//             q = sigmoid(bias + w_c·f + w_t·elapsed/3600); suspicion
//             suppresses misses (p1·(1−q)) and induces false alarms
//             (p2 + q·(1−p2)).  Time-dependent: NOT
//             analytic-compatible.
#pragma once

#include <cstdint>
#include <string>

namespace midas::ids {

enum class DetectorKind : std::uint8_t { Static, Entropy, Cusum, Logistic };

/// The observable system state a detector may react to.  All layers
/// can produce it: the SPN from a marking (compromised = UCm, evicted
/// = DCm, population = Tm+UCm), the DES from its token counts, the
/// protocol sim from its node roster.
struct DetectorState {
  std::int64_t compromised = 0;  // undetected-compromised members
  std::int64_t evicted = 0;      // detected-and-evicted members
  std::int64_t population = 0;   // current live members (Tm + UCm)
  double elapsed_s = 0.0;        // mission time so far
};

/// Effective per-node misclassification probabilities, both in [0,1].
struct EffectiveErrorRates {
  double p1 = 0.0;  // P[compromised node classified good]
  double p2 = 0.0;  // P[good node classified compromised]
};

struct DetectorModel {
  DetectorKind kind = DetectorKind::Static;

  // entropy: inflation weight in [0,1] — 0 degenerates to static.
  double entropy_weight = 0.5;

  // cusum: S = max(0, gain·(compromised+evicted) − drift·elapsed_s);
  // alarmed iff S > threshold.  alarm_factor in (0,1] scales p1 down
  // and p2 up once alarmed; 1 degenerates to static.
  double cusum_gain = 1.0;
  double cusum_drift = 1.0 / 7200.0;
  double cusum_threshold = 3.0;
  double cusum_alarm_factor = 0.25;

  // logistic: q = sigmoid(bias + compromise_weight·f +
  // time_weight·elapsed_s/3600).
  double logistic_bias = -4.0;
  double logistic_compromise_weight = 12.0;
  double logistic_time_weight = 0.25;

  /// Effective (p1,p2) for base probabilities (p1,p2) in state `s`.
  /// Pure; clamped to [0,1].  Static returns (p1,p2) EXACTLY (no
  /// arithmetic), so the static plugin path is bitwise the legacy one.
  [[nodiscard]] EffectiveErrorRates effective(double p1, double p2,
                                              const DetectorState& s) const;

  /// CUSUM alarm predicate (exposed for tests / instrumentation).
  [[nodiscard]] bool cusum_alarmed(const DetectorState& s) const;

  /// True when effective() can depend on the state at all.
  [[nodiscard]] bool state_dependent() const noexcept {
    return kind != DetectorKind::Static;
  }

  /// True when the effective rates depend on the state only through
  /// marking-expressible quantities (token counts), so the SPN's CTMC
  /// stays time-homogeneous and the analytic backend applies.  Cusum
  /// and logistic read elapsed time — they need DES/protocol-sim.
  [[nodiscard]] bool analytic_compatible() const noexcept {
    return kind != DetectorKind::Cusum && kind != DetectorKind::Logistic;
  }

  /// Throws std::invalid_argument naming the offending field as
  /// "detector.<field>: ...".
  void validate() const;

  [[nodiscard]] bool operator==(const DetectorModel&) const = default;
};

/// Canonical lower-case name ("static", "entropy", "cusum", "logistic").
[[nodiscard]] const char* to_string(DetectorKind kind) noexcept;

/// Inverse of to_string; throws std::invalid_argument listing the
/// valid names.
[[nodiscard]] DetectorKind detector_kind_from_string(const std::string& name);

}  // namespace midas::ids
