#include "ids/detector_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace midas::ids {
namespace {

[[nodiscard]] double clamp01(double x) {
  return std::clamp(x, 0.0, 1.0);
}

/// Binary entropy H2(f) in bits; 0 at the endpoints.
[[nodiscard]] double binary_entropy(double f) {
  if (f <= 0.0 || f >= 1.0) return 0.0;
  return -f * std::log2(f) - (1.0 - f) * std::log2(1.0 - f);
}

[[nodiscard]] double sigmoid(double x) {
  return 1.0 / (1.0 + std::exp(-x));
}

[[nodiscard]] double compromised_fraction(const DetectorState& s) {
  if (s.population <= 0) return 0.0;
  return static_cast<double>(s.compromised) /
         static_cast<double>(s.population);
}

}  // namespace

bool DetectorModel::cusum_alarmed(const DetectorState& s) const {
  const double evidence =
      cusum_gain * static_cast<double>(s.compromised + s.evicted);
  const double score = std::max(0.0, evidence - cusum_drift * s.elapsed_s);
  return score > cusum_threshold;
}

EffectiveErrorRates DetectorModel::effective(double p1, double p2,
                                             const DetectorState& s) const {
  switch (kind) {
    case DetectorKind::Static:
      // Exactly the base constants — no arithmetic, so the static
      // plugin path stays bitwise the legacy hard-coded one.
      return {p1, p2};
    case DetectorKind::Entropy: {
      const double h = binary_entropy(compromised_fraction(s));
      const double w = entropy_weight * h;
      return {clamp01(p1 + w * (1.0 - p1)), clamp01(p2 + w * (1.0 - p2))};
    }
    case DetectorKind::Cusum: {
      if (!cusum_alarmed(s)) return {clamp01(p1), clamp01(p2)};
      return {clamp01(p1 * cusum_alarm_factor),
              clamp01(p2 / cusum_alarm_factor)};
    }
    case DetectorKind::Logistic: {
      const double q = sigmoid(logistic_bias +
                               logistic_compromise_weight *
                                   compromised_fraction(s) +
                               logistic_time_weight * s.elapsed_s / 3600.0);
      return {clamp01(p1 * (1.0 - q)), clamp01(p2 + q * (1.0 - p2))};
    }
  }
  throw std::invalid_argument("DetectorModel: unknown kind");
}

void DetectorModel::validate() const {
  if (entropy_weight < 0.0 || entropy_weight > 1.0) {
    throw std::invalid_argument("detector.entropy_weight: " +
                                std::to_string(entropy_weight) +
                                " outside [0,1]");
  }
  if (cusum_gain <= 0.0) {
    throw std::invalid_argument("detector.cusum_gain: " +
                                std::to_string(cusum_gain) +
                                " must be > 0");
  }
  if (cusum_drift < 0.0) {
    throw std::invalid_argument("detector.cusum_drift: " +
                                std::to_string(cusum_drift) +
                                " must be >= 0");
  }
  if (cusum_threshold < 0.0) {
    throw std::invalid_argument("detector.cusum_threshold: " +
                                std::to_string(cusum_threshold) +
                                " must be >= 0");
  }
  if (cusum_alarm_factor <= 0.0 || cusum_alarm_factor > 1.0) {
    throw std::invalid_argument("detector.cusum_alarm_factor: " +
                                std::to_string(cusum_alarm_factor) +
                                " outside (0,1]");
  }
  if (!std::isfinite(logistic_bias) ||
      !std::isfinite(logistic_compromise_weight) ||
      !std::isfinite(logistic_time_weight)) {
    throw std::invalid_argument(
        "detector.logistic_*: coefficients must be finite");
  }
}

const char* to_string(DetectorKind kind) noexcept {
  switch (kind) {
    case DetectorKind::Static:
      return "static";
    case DetectorKind::Entropy:
      return "entropy";
    case DetectorKind::Cusum:
      return "cusum";
    case DetectorKind::Logistic:
      return "logistic";
  }
  return "static";
}

DetectorKind detector_kind_from_string(const std::string& name) {
  if (name == "static") return DetectorKind::Static;
  if (name == "entropy") return DetectorKind::Entropy;
  if (name == "cusum") return DetectorKind::Cusum;
  if (name == "logistic") return DetectorKind::Logistic;
  throw std::invalid_argument(
      "unknown detector kind \"" + name +
      "\" (expected static|entropy|cusum|logistic)");
}

}  // namespace midas::ids
