#include "ids/host_ids.h"

#include <stdexcept>
#include <string>

namespace midas::ids {

HostIdsParams HostIdsParams::misuse_detection() { return {0.03, 0.005}; }

HostIdsParams HostIdsParams::anomaly_detection() { return {0.005, 0.03}; }

HostIds::HostIds(HostIdsParams params, std::uint64_t seed)
    : params_(params), draw_(seed) {
  if (params.p1 < 0.0 || params.p1 > 1.0) {
    throw std::invalid_argument("HostIds: p1 " + std::to_string(params.p1) +
                                " outside [0,1]");
  }
  if (params.p2 < 0.0 || params.p2 > 1.0) {
    throw std::invalid_argument("HostIds: p2 " + std::to_string(params.p2) +
                                " outside [0,1]");
  }
}

Verdict HostIds::classify(bool actually_compromised) {
  const double u = draw_();
  if (actually_compromised) {
    return u < params_.p1 ? Verdict::Trusted : Verdict::Compromised;
  }
  return u < params_.p2 ? Verdict::Compromised : Verdict::Trusted;
}

Verdict HostIds::classify(bool actually_compromised,
                          const DetectorModel& model,
                          const DetectorState& state) {
  const auto eff = model.effective(params_.p1, params_.p2, state);
  const double u = draw_();
  if (actually_compromised) {
    return u < eff.p1 ? Verdict::Trusted : Verdict::Compromised;
  }
  return u < eff.p2 ? Verdict::Compromised : Verdict::Trusted;
}

}  // namespace midas::ids
