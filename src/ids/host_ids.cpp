#include "ids/host_ids.h"

#include <stdexcept>

namespace midas::ids {

HostIdsParams HostIdsParams::misuse_detection() { return {0.03, 0.005}; }

HostIdsParams HostIdsParams::anomaly_detection() { return {0.005, 0.03}; }

HostIds::HostIds(HostIdsParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params.p1 < 0.0 || params.p1 > 1.0 || params.p2 < 0.0 ||
      params.p2 > 1.0) {
    throw std::invalid_argument("HostIds: p1/p2 out of [0,1]");
  }
}

Verdict HostIds::classify(bool actually_compromised) {
  const double u = uni_(rng_);
  if (actually_compromised) {
    return u < params_.p1 ? Verdict::Trusted : Verdict::Compromised;
  }
  return u < params_.p2 ? Verdict::Compromised : Verdict::Trusted;
}

}  // namespace midas::ids
