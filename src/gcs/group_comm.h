// Secure, totally-ordered group multicast — the GCS data plane the
// paper assumes ("view synchrony (VS) by which messages are guaranteed
// to be delivered reliably and in order", §3) plus the confidentiality
// property ("only members of the group are able to decrypt and read
// group messages", §2.1).
//
// The channel is a logical sequencer: publishes are stamped with the
// current view and a global sequence number; deliveries are per-member
// FIFO in sequence order; a publish tagged with a stale view id is
// rejected (the VS send-in-view rule).  Payload confidentiality uses a
// keyed stream derived from the group key — a stand-in for AES-CTR with
// the same algebraic property the model needs: decrypting with the
// wrong key yields garbage, so evicted members reading ciphertext after
// a rekey recover nothing.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "gcs/view.h"

namespace midas::gcs {

/// Symmetric "encryption" with a keyed SplitMix64 stream.  NOT real
/// crypto — a deterministic stand-in preserving the properties the
/// group-communication semantics rely on (key dependence, length
/// preservation, perfect inversion with the right key).
struct SecureEnvelope {
  std::vector<std::uint8_t> ciphertext;

  [[nodiscard]] static SecureEnvelope seal(std::uint64_t key,
                                           const std::string& plaintext);
  /// Inverse of seal() under the same key; wrong keys produce garbage.
  [[nodiscard]] std::string open(std::uint64_t key) const;
};

struct GroupMessage {
  std::uint64_t seq = 0;       // total order, assigned by the channel
  std::uint64_t view_id = 0;   // view in which the send was admitted
  NodeId sender = 0;
  SecureEnvelope envelope;
};

struct ChannelStats {
  std::uint64_t published = 0;
  std::uint64_t rejected_stale_view = 0;
  std::uint64_t delivered = 0;
};

/// Totally-ordered group channel bound to a ViewManager.  Deliveries
/// are pulled per member; a member only sees messages sequenced while
/// it was in the view.
class GroupChannel {
 public:
  explicit GroupChannel(const ViewManager& view);

  /// Publishes `plaintext` encrypted under `group_key`.  Returns false
  /// (and counts a rejection) when `sender_view` is stale or the sender
  /// is not a member — the VS admission rule.
  bool publish(NodeId sender, std::uint64_t sender_view,
               std::uint64_t group_key, const std::string& plaintext);

  /// Drains messages queued for `member` in sequence order.
  [[nodiscard]] std::vector<GroupMessage> drain(NodeId member);

  /// Messages not yet drained by `member`.
  [[nodiscard]] std::size_t pending(NodeId member) const;

  [[nodiscard]] const ChannelStats& stats() const noexcept { return stats_; }

 private:
  const ViewManager& view_;
  std::uint64_t next_seq_ = 1;
  std::map<NodeId, std::deque<GroupMessage>> queues_;
  ChannelStats stats_;
};

}  // namespace midas::gcs
