#include "gcs/group_comm.h"

namespace midas::gcs {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

SecureEnvelope SecureEnvelope::seal(std::uint64_t key,
                                    const std::string& plaintext) {
  SecureEnvelope env;
  env.ciphertext.reserve(plaintext.size());
  std::uint64_t stream = mix(key);
  std::size_t byte_in_word = 0;
  for (char c : plaintext) {
    if (byte_in_word == 8) {
      stream = mix(stream);
      byte_in_word = 0;
    }
    const auto pad =
        static_cast<std::uint8_t>(stream >> (8 * byte_in_word));
    env.ciphertext.push_back(static_cast<std::uint8_t>(c) ^ pad);
    ++byte_in_word;
  }
  return env;
}

std::string SecureEnvelope::open(std::uint64_t key) const {
  std::string plaintext;
  plaintext.reserve(ciphertext.size());
  std::uint64_t stream = mix(key);
  std::size_t byte_in_word = 0;
  for (std::uint8_t b : ciphertext) {
    if (byte_in_word == 8) {
      stream = mix(stream);
      byte_in_word = 0;
    }
    const auto pad =
        static_cast<std::uint8_t>(stream >> (8 * byte_in_word));
    plaintext.push_back(static_cast<char>(b ^ pad));
    ++byte_in_word;
  }
  return plaintext;
}

GroupChannel::GroupChannel(const ViewManager& view) : view_(view) {}

bool GroupChannel::publish(NodeId sender, std::uint64_t sender_view,
                           std::uint64_t group_key,
                           const std::string& plaintext) {
  if (sender_view != view_.current_view().id || !view_.contains(sender)) {
    ++stats_.rejected_stale_view;
    return false;
  }
  GroupMessage msg;
  msg.seq = next_seq_++;
  msg.view_id = sender_view;
  msg.sender = sender;
  msg.envelope = SecureEnvelope::seal(group_key, plaintext);

  for (NodeId member : view_.current_view().members) {
    queues_[member].push_back(msg);
  }
  ++stats_.published;
  return true;
}

std::vector<GroupMessage> GroupChannel::drain(NodeId member) {
  std::vector<GroupMessage> out;
  auto it = queues_.find(member);
  if (it == queues_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  stats_.delivered += out.size();
  it->second.clear();
  return out;
}

std::size_t GroupChannel::pending(NodeId member) const {
  const auto it = queues_.find(member);
  return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace midas::gcs
