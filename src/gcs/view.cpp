#include "gcs/view.h"

#include <stdexcept>

namespace midas::gcs {

std::string to_string(EventType t) {
  switch (t) {
    case EventType::Join:
      return "join";
    case EventType::Leave:
      return "leave";
    case EventType::Evict:
      return "evict";
    case EventType::Partition:
      return "partition";
    case EventType::Merge:
      return "merge";
  }
  return "?";
}

ViewManager::ViewManager(std::vector<NodeId> initial_members) {
  view_.id = 0;
  for (auto n : initial_members) {
    if (!view_.members.insert(n).second) {
      throw std::invalid_argument("ViewManager: duplicate initial member");
    }
  }
}

void ViewManager::install(EventType type, std::vector<NodeId> subjects) {
  ViewEvent ev;
  ev.view_id = ++view_.id;
  ev.type = type;
  ev.subjects = std::move(subjects);
  history_.push_back(std::move(ev));
}

void ViewManager::join(NodeId node) {
  if (!view_.members.insert(node).second) {
    throw std::invalid_argument("ViewManager::join: member already present");
  }
  install(EventType::Join, {node});
}

void ViewManager::leave(NodeId node) {
  if (view_.members.erase(node) == 0) {
    throw std::invalid_argument("ViewManager::leave: no such member");
  }
  install(EventType::Leave, {node});
}

void ViewManager::evict(NodeId node) {
  if (view_.members.erase(node) == 0) {
    throw std::invalid_argument("ViewManager::evict: no such member");
  }
  install(EventType::Evict, {node});
}

std::vector<NodeId> ViewManager::partition(const std::vector<NodeId>& nodes) {
  for (auto n : nodes) {
    if (view_.members.count(n) == 0) {
      throw std::invalid_argument("ViewManager::partition: no such member");
    }
  }
  if (nodes.size() >= view_.members.size()) {
    throw std::invalid_argument(
        "ViewManager::partition: cannot split out the whole group");
  }
  for (auto n : nodes) view_.members.erase(n);
  install(EventType::Partition, nodes);
  return nodes;
}

void ViewManager::merge(const std::vector<NodeId>& nodes) {
  for (auto n : nodes) {
    if (view_.members.count(n) > 0) {
      throw std::invalid_argument("ViewManager::merge: duplicate member");
    }
  }
  for (auto n : nodes) view_.members.insert(n);
  install(EventType::Merge, nodes);
}

}  // namespace midas::gcs
