#include "gcs/cost_model.h"

#include <algorithm>
#include <cmath>

namespace midas::gcs {

void CostParams::sync_rekey_params() {
  rekey.mean_hops = mean_hops;
  rekey.bandwidth_bps = bandwidth_bps;
}

CostModel::CostModel(CostParams params) : params_(params) {}

double CostModel::per_group_size(const GroupState& s) const {
  const double g = std::max(s.groups, 1.0);
  return s.members / g;
}

double CostModel::group_comm_rate(const GroupState& s,
                                  double lambda_q) const {
  // Each of the `members` nodes issues data packets at λq; a delivery to
  // its group costs ~one transmission per member reached (multicast tree
  // with n_g−1 edges, rounded to n_g).
  const double n_g = per_group_size(s);
  return lambda_q * s.members * n_g * params_.data_packet_bits;
}

double CostModel::status_rate(const GroupState& s) const {
  // 1-hop exchange with each neighbor.
  return s.members * params_.status_exchange_rate *
         params_.status_packet_bits * params_.mean_degree;
}

double CostModel::rekey_rate(const GroupState& s, double lambda_join,
                             double mu_leave) const {
  const double n_g = per_group_size(s);
  const auto jc = crypto::join_cost(
      static_cast<std::size_t>(std::ceil(std::max(n_g, 2.0))),
      params_.rekey);
  const auto lc = crypto::leave_cost(
      static_cast<std::size_t>(std::ceil(std::max(n_g - 1.0, 1.0))),
      params_.rekey);
  // Event rates scale with the live membership (per-node join/leave).
  return s.members * (lambda_join * jc.hop_bits + mu_leave * lc.hop_bits);
}

double CostModel::ids_rate(const GroupState& s, double detection_rate,
                           std::size_t num_voters) const {
  // Per evaluation of one target: m vote messages crossing mean_hops.
  const double per_eval = static_cast<double>(num_voters) *
                          params_.vote_packet_bits * params_.mean_hops;
  return s.members * detection_rate * per_eval;
}

double CostModel::beacon_rate(const GroupState& s) const {
  return s.members * params_.beacon_rate * params_.beacon_bits;
}

double CostModel::partition_merge_rate(const GroupState& s,
                                       double event_rate) const {
  const auto rc = crypto::regroup_cost(
      static_cast<std::size_t>(std::ceil(std::max(s.members, 1.0))),
      params_.rekey);
  return event_rate * rc.hop_bits;
}

double CostModel::eviction_impulse_bits(const GroupState& s) const {
  const double n_g = per_group_size(s);
  const auto lc = crypto::leave_cost(
      static_cast<std::size_t>(std::ceil(std::max(n_g - 1.0, 1.0))),
      params_.rekey);
  return lc.hop_bits;
}

CostBreakdown CostModel::breakdown(const GroupState& s, double lambda_q,
                                   double lambda_join, double mu_leave,
                                   double detection_rate,
                                   std::size_t num_voters,
                                   double pm_event_rate) const {
  CostBreakdown b;
  b.group_comm = group_comm_rate(s, lambda_q);
  b.status = status_rate(s);
  b.rekey = rekey_rate(s, lambda_join, mu_leave);
  b.ids = ids_rate(s, detection_rate, num_voters);
  b.beacon = beacon_rate(s);
  b.partition_merge = partition_merge_rate(s, pm_event_rate);
  return b;
}

}  // namespace midas::gcs
