// Communication cost model — the paper's Ĉtotal decomposition:
//   Ĉtotal,i = ĈGC,i + Ĉstatus,i + Ĉrekey,i + ĈIDS,i + Ĉbeacon,i + Ĉmp,i
// in hop-bits per second for a system in state i.  The paper omits the
// component equations "due to space limitation"; DESIGN.md documents our
// reconstruction of each term from its verbal description.  Every
// constant lives in CostParams so the calibration is explicit.
#pragma once

#include <cstddef>

#include "crypto/rekey_cost.h"

namespace midas::gcs {

struct CostParams {
  // Wire sizes (bits).
  double data_packet_bits = 2048.0;   // group communication payload
  double status_packet_bits = 256.0;  // host-IDS status exchange
  double vote_packet_bits = 512.0;    // one IDS vote
  double beacon_bits = 128.0;         // neighbor heartbeat

  // Background rates (per node, per second).
  double status_exchange_rate = 1.0 / 60.0;  // host-IDS info swap
  double beacon_rate = 1.0;                  // 1 Hz heartbeats

  // Network shape (from the MANET substrate).
  double mean_hops = 3.0;    // average multi-hop path length
  double mean_degree = 8.0;  // average 1-hop neighborhood size

  double bandwidth_bps = 1e6;  // paper: BW = 1 Mb/s

  crypto::RekeyCostParams rekey;  // GDH element size + hops + BW

  /// Keeps the nested rekey params consistent with the top-level network
  /// shape — call after overriding mean_hops / bandwidth_bps.
  void sync_rekey_params();
};

/// Snapshot of the group state the cost terms depend on.
struct GroupState {
  double members = 0.0;      // live members across the system (Tm + UCm)
  double groups = 1.0;       // current number of groups (mark(NG))
  double initial_size = 0.0; // N at mission start (for per-group size)
};

/// Per-second cost rates in hop-bits/s.  Impulse (per-event) costs are
/// returned separately so the SPN can attach them to transitions.
struct CostBreakdown {
  double group_comm = 0.0;  // ĈGC
  double status = 0.0;      // Ĉstatus
  double rekey = 0.0;       // Ĉrekey (join/leave-driven)
  double ids = 0.0;         // ĈIDS (voting traffic)
  double beacon = 0.0;      // Ĉbeacon
  double partition_merge = 0.0;  // Ĉmp

  [[nodiscard]] double total() const {
    return group_comm + status + rekey + ids + beacon + partition_merge;
  }
};

class CostModel {
 public:
  explicit CostModel(CostParams params);

  [[nodiscard]] const CostParams& params() const noexcept { return params_; }

  /// ĈGC: every member multicasts data at `lambda_q`; one delivery costs
  /// ~(group size) hop-transmissions over the multicast tree.
  [[nodiscard]] double group_comm_rate(const GroupState& s,
                                       double lambda_q) const;

  /// Ĉstatus: neighbor status exchange for the host IDS.
  [[nodiscard]] double status_rate(const GroupState& s) const;

  /// Ĉrekey: join/leave events at per-node rates λ and μ, each costing a
  /// GDH join/leave rekey for the group it lands in.
  [[nodiscard]] double rekey_rate(const GroupState& s, double lambda_join,
                                  double mu_leave) const;

  /// ĈIDS: each member is evaluated at `detection_rate`; one evaluation
  /// collects m votes over mean_hops paths.
  [[nodiscard]] double ids_rate(const GroupState& s, double detection_rate,
                                std::size_t num_voters) const;

  /// Ĉbeacon: 1-hop heartbeats.
  [[nodiscard]] double beacon_rate(const GroupState& s) const;

  /// Ĉmp: partition/merge events × regroup rekey traffic.
  [[nodiscard]] double partition_merge_rate(const GroupState& s,
                                            double event_rate) const;

  /// One eviction's rekey cost in hop-bits (impulse on T_IDS/T_FA).
  [[nodiscard]] double eviction_impulse_bits(const GroupState& s) const;

  /// Full per-second breakdown for a state.
  [[nodiscard]] CostBreakdown breakdown(const GroupState& s, double lambda_q,
                                        double lambda_join, double mu_leave,
                                        double detection_rate,
                                        std::size_t num_voters,
                                        double partition_merge_rate) const;

 private:
  [[nodiscard]] double per_group_size(const GroupState& s) const;

  CostParams params_;
};

}  // namespace midas::gcs
