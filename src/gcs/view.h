// Group view management with view-synchrony (VS) semantics: membership
// changes are delivered as totally-ordered view installations, and every
// membership event (join/leave/evict/partition/merge) bumps the view and
// triggers a rekey — the paper assumes VS for its GCS (Section 3).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace midas::gcs {

using NodeId = std::uint32_t;

enum class EventType : std::uint8_t {
  Join,
  Leave,
  Evict,      // forced removal by the IDS
  Partition,  // subset splits into a new group
  Merge,      // another group's members absorbed
};

[[nodiscard]] std::string to_string(EventType t);

struct ViewEvent {
  std::uint64_t view_id = 0;  // view installed BY this event
  EventType type = EventType::Join;
  std::vector<NodeId> subjects;  // nodes joining/leaving/moving
};

struct View {
  std::uint64_t id = 0;
  std::set<NodeId> members;
};

/// One group's membership timeline.  Enforces VS invariants: view ids
/// are strictly monotonic and each installed view differs from its
/// predecessor exactly by the event's subjects.
class ViewManager {
 public:
  explicit ViewManager(std::vector<NodeId> initial_members);

  void join(NodeId node);
  void leave(NodeId node);
  void evict(NodeId node);
  /// Removes `nodes` as one partition event; returns them for the peer
  /// group's construction.
  std::vector<NodeId> partition(const std::vector<NodeId>& nodes);
  void merge(const std::vector<NodeId>& nodes);

  [[nodiscard]] const View& current_view() const noexcept { return view_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return view_.members.size();
  }
  [[nodiscard]] bool contains(NodeId node) const {
    return view_.members.count(node) > 0;
  }

  /// Complete ordered event history (the VS delivery log).
  [[nodiscard]] const std::vector<ViewEvent>& history() const noexcept {
    return history_;
  }

  /// Number of rekey operations implied so far (= installed views after
  /// the initial one; every membership change rekeys).
  [[nodiscard]] std::uint64_t rekey_count() const noexcept {
    return view_.id;
  }

 private:
  void install(EventType type, std::vector<NodeId> subjects);

  View view_;
  std::vector<ViewEvent> history_;
};

}  // namespace midas::gcs
