// Protocol-level integrated simulation — the "real system" the SPN
// abstracts, built from the actual substrates:
//
//   * random-waypoint mobility + unit-disc connectivity (src/manet),
//   * GDH.2 key agreement with per-event rekeying (src/crypto),
//   * view-synchronous membership + secure ordered multicast (src/gcs),
//   * per-node host IDS sampling and majority voting rounds (src/ids),
//   * the paper's inside attacker (A(mc)) and failure conditions C1/C2.
//
// Where the SPN assumes exponential delays and a fixed mean hop count,
// this simulator runs the concrete protocol: IDS voting rounds fire at
// DETERMINISTIC intervals derived from D(md); hop counts come from BFS
// over the live topology; every vote, rekey and data packet is counted
// individually.  Comparing its output with the analytic model (bench
// val_protocol_sim) therefore probes the paper's modelling assumptions,
// not just our arithmetic.
#pragma once

#include <cstdint>

#include "core/params.h"
#include "manet/mobility.h"

namespace midas::sim {

struct ProtocolSimParams {
  core::Params model;               // group/attacker/IDS parameters
  manet::MobilityParams mobility;   // node movement
  double radio_range_m = 150.0;
  double tick_s = 2.0;              // event-thinning step
  double topology_refresh_s = 10.0; // connectivity/hop recompute period
  double max_time_s = 3.0e6;        // bail-out horizon

  /// Scaled-down default tuned for test/bench runtimes.
  [[nodiscard]] static ProtocolSimParams small_defaults();
};

struct ProtocolSimResult {
  double ttsf = 0.0;
  bool failed_by_c1 = false;  // data leak (else C2 / byzantine)
  bool timed_out = false;     // hit max_time_s without failing

  std::size_t compromises = 0;
  std::size_t true_evictions = 0;
  std::size_t false_evictions = 0;
  std::uint64_t vote_messages = 0;
  std::uint64_t rekey_events = 0;
  std::uint64_t data_messages = 0;

  double traffic_hop_bits = 0.0;  // total, all protocol layers
  /// Every GDH rekey left all members in key agreement (protocol
  /// safety invariant; must always be true).
  bool keys_always_agreed = true;

  [[nodiscard]] double mean_cost_rate() const {
    return ttsf > 0.0 ? traffic_hop_bits / ttsf : 0.0;
  }
};

/// Runs one protocol-level trajectory.  Deterministic under `seed`.
///
/// Every protocol-level random choice — attacker timing, voter
/// selection order, host-IDS vote errors, data-plane packet counts and
/// sender picks — draws through one sim::UniformStream, so the
/// `antithetic` member of a pair (same seed, flipped 1−u stream) mirrors
/// the whole decision path and the Monte-Carlo engine can run
/// antithetic pairs on protocol grids exactly as it does on DES grids.
/// The mobility walk and the GDH session keep their own seed-derived
/// streams and are COMMON within a pair: they are environment, not
/// protocol randomness, and sharing them keeps the pair comparison on
/// the protocol's own stochastic choices.
[[nodiscard]] ProtocolSimResult run_protocol_sim(
    const ProtocolSimParams& params, std::uint64_t seed,
    bool antithetic = false);

}  // namespace midas::sim
