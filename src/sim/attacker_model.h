// Pluggable inter-compromise processes.  The paper's attacker
// compromises one node at a time through a Poisson process whose rate
// is the SPN's A(mc); the model here generalises the ARRIVAL
// STRUCTURE around that base rate while keeping the long-run mean
// compromise rate equal to it, so scenarios are comparable:
//
//   poisson      today's process — exponential inter-arrivals at the
//                base rate, one victim per arrival.  The only
//                structure a time-homogeneous CTMC can express:
//                analytic-compatible.
//   bursty       an on/off (interrupted-Poisson) modulation: the
//                attacker alternates exponential ON phases (mean
//                burst_on_s) where it strikes at base/duty — duty =
//                on/(on+off) — and OFF phases where it is silent.
//                Mean rate over a full cycle equals the base rate
//                exactly.  Phase is hidden state: NOT
//                analytic-compatible.
//   coordinated  batch arrivals — a colluding cell strikes `batch`
//                victims at once, with arrivals thinned to base/batch
//                so the mean per-node compromise rate is unchanged.
//                Batch jumps leave the birth–death structure: NOT
//                analytic-compatible (batch == 1 degenerates to
//                poisson but is still routed to simulation for
//                uniformity).
//
// Like ids::DetectorModel this is a pure descriptor: simulators own
// the phase state and draw through sim::UniformStream so CRN and
// antithetic pairing keep applying.
#pragma once

#include <cstdint>
#include <string>

namespace midas::sim {

enum class AttackerKind : std::uint8_t { Poisson, Bursty, Coordinated };

struct AttackerModel {
  AttackerKind kind = AttackerKind::Poisson;

  // bursty: mean phase durations (s).
  double burst_on_s = 1800.0;
  double burst_off_s = 5400.0;

  // coordinated: victims per arrival.
  std::int64_t batch = 3;

  /// ON-phase duty cycle on/(on+off); 1 for non-bursty kinds.
  [[nodiscard]] double duty() const noexcept {
    if (kind != AttackerKind::Bursty) return 1.0;
    return burst_on_s / (burst_on_s + burst_off_s);
  }

  /// Instantaneous arrival rate given the base (mean) rate and the
  /// current phase.  Poisson: base.  Bursty: base/duty when ON, 0 when
  /// OFF (mean over a cycle == base).  Coordinated: base/batch (each
  /// arrival compromises `batch` nodes, so the mean per-node rate ==
  /// base).
  [[nodiscard]] double event_rate(double base_rate, bool on) const noexcept {
    switch (kind) {
      case AttackerKind::Poisson:
        return base_rate;
      case AttackerKind::Bursty:
        return on ? base_rate / duty() : 0.0;
      case AttackerKind::Coordinated:
        return base_rate / static_cast<double>(batch);
    }
    return base_rate;
  }

  /// Rate of leaving the current on/off phase; 0 for non-bursty kinds
  /// (the phase never flips, and simulators add 0.0 to their total
  /// rate — IEEE-exact, so poisson totals are bitwise unchanged).
  [[nodiscard]] double phase_rate(bool on) const noexcept {
    if (kind != AttackerKind::Bursty) return 0.0;
    return on ? 1.0 / burst_on_s : 1.0 / burst_off_s;
  }

  /// Victims per arrival event.
  [[nodiscard]] std::int64_t batch_size() const noexcept {
    return kind == AttackerKind::Coordinated ? batch : 1;
  }

  /// Long-run mean per-node compromise rate, rebuilt from the
  /// constituent pieces (ON rate × duty × victims-per-arrival) — equals
  /// base_rate for every kind by construction, the invariant the
  /// bursty/coordinated unit tests pin.
  [[nodiscard]] double mean_rate(double base_rate) const noexcept {
    return event_rate(base_rate, /*on=*/true) * duty() *
           static_cast<double>(batch_size());
  }

  /// Only the memoryless single-victim process is expressible in the
  /// time-homogeneous birth–death SPN.
  [[nodiscard]] bool analytic_compatible() const noexcept {
    return kind == AttackerKind::Poisson;
  }

  /// Throws std::invalid_argument naming the offending field as
  /// "attacker.<field>: ...".
  void validate() const;

  [[nodiscard]] bool operator==(const AttackerModel&) const = default;
};

/// Canonical lower-case name ("poisson", "bursty", "coordinated").
[[nodiscard]] const char* to_string(AttackerKind kind) noexcept;

/// Inverse of to_string; throws std::invalid_argument listing the
/// valid names.
[[nodiscard]] AttackerKind attacker_kind_from_string(const std::string& name);

}  // namespace midas::sim
