// Replication statistics: sample mean/variance and Student-t confidence
// intervals for the Monte-Carlo cross-validation of the analytic model.
#pragma once

#include <cstddef>
#include <limits>
#include <span>

namespace midas::sim {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;   // unbiased sample variance
  /// 95% two-sided half-width.  With n < 2 samples no variance estimate
  /// exists, so the interval is reported as INFINITE rather than the
  /// zero-width degenerate one it used to be: contains() then holds for
  /// every value ("cannot reject") instead of vacuously passing/failing
  /// on whether a single replication landed exactly on the mean — the
  /// same honesty the Wilson interval brought to 0/1 proportions.
  double ci_half_width = std::numeric_limits<double>::infinity();
  /// Rare-event honesty flag: true when the interval is really a
  /// one-sided bound (a 0-successes proportion only bounds the tail
  /// from ABOVE; an n-successes one only from below).  lower()/upper()
  /// still bracket the estimate — the flag tells downstream gates that
  /// the uninformative side is a truncation at the parameter boundary,
  /// not a measured bound, so containment checks against it are
  /// vacuous rather than evidence.
  bool one_sided = false;

  [[nodiscard]] double lower() const { return mean - ci_half_width; }
  [[nodiscard]] double upper() const { return mean + ci_half_width; }
  [[nodiscard]] bool contains(double value) const {
    return value >= lower() && value <= upper();
  }
  /// True when the CI is meaningful (n >= 2 behind a finite width).
  [[nodiscard]] bool has_ci() const {
    return ci_half_width < std::numeric_limits<double>::infinity();
  }
};

/// 95% two-sided Student-t quantile for `df` degrees of freedom
/// (interpolated table; exact asymptote 1.96 for large df).
[[nodiscard]] double t_quantile_95(std::size_t df);

/// Summarises a sample with a 95% CI for the mean.  Fewer than two
/// points carry no variance information: the half-width is infinite.
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Summary for a Bernoulli proportion (successes out of n) with a 95%
/// Wilson score interval, symmetrised conservatively around the sample
/// proportion.  Unlike the Student-t CI on 0/1 indicators, the width
/// never degenerates to zero at proportions of exactly 0 or 1 — an
/// all-survivors sample still carries its real statistical
/// uncertainty.  At exactly 0 or n successes the Summary is flagged
/// one_sided: the interval is a Wilson upper (resp. lower) bound —
/// the finite-sample analogue of the rule of three (upper ≈ 3.84/n vs
/// the classic 3/n) — and the other side is the parameter boundary,
/// not a measurement.  n = 0 reports an infinite half-width.
[[nodiscard]] Summary binomial_summary(std::size_t n,
                                       std::size_t successes);

/// The rule-of-three upper bound for a proportion observed 0 times in
/// n trials: P <= 3/n at ~95% confidence.  Exposed for rare-event
/// reporting next to the Wilson bound binomial_summary already takes.
[[nodiscard]] double rule_of_three_upper(std::size_t n);

/// The full accumulator state of a Welford instance — everything needed
/// to continue, merge, or summarise it later.  The sharded sweep service
/// serialises these (not derived Summary fields) so that a shard's
/// Monte-Carlo results re-imported on another host reproduce summaries
/// bit-for-bit and merge associatively across shards.
struct WelfordState {
  std::size_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;  // sum of squared deviations from the mean
};

/// Streaming mean/variance accumulator (Welford's algorithm): O(1)
/// memory per metric regardless of replication count, mergeable across
/// blocks via the parallel update of Chan et al.  The Monte-Carlo
/// engine summarises whole replication grids through these instead of
/// storing trajectory vectors.
class Welford {
 public:
  void push(double x);
  void merge(const Welford& other);

  /// Export / import of the raw accumulator (see WelfordState).
  /// from_state(w.state()) is an exact copy; from_state throws
  /// std::invalid_argument on negative m2 or a non-empty state with
  /// n = 0.
  [[nodiscard]] WelfordState state() const noexcept {
    return {n_, mean_, m2_};
  }
  [[nodiscard]] static Welford from_state(const WelfordState& s);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 for n < 2).
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  /// Summary with the 95% Student-t CI, identical in meaning to
  /// summarize() on the full sample.
  [[nodiscard]] Summary summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
};

/// Raw accumulator state of a RegressionWelford — serialisable and
/// mergeable for the same reasons as WelfordState.
struct RegressionWelfordState {
  std::size_t n = 0;
  double mean_y = 0.0;
  double mean_c = 0.0;
  double m2_y = 0.0;   // Σ (y − ȳ)²
  double m2_c = 0.0;   // Σ (c − c̄)²
  double m2_yc = 0.0;  // Σ (y − ȳ)(c − c̄)
};

/// Streaming bivariate accumulator for control-variate regression: one
/// (Y, C) pair per push, O(1) memory, exact single-pass co-moments
/// (the bivariate extension of Welford's update, mergeable across
/// blocks via the pairwise formula of Chan et al.).  The vr subsystem
/// estimates the optimal control coefficient β* = Cov(Y, C)/Var(C)
/// from a pilot block streamed through one of these, then reports the
/// CV-adjusted estimator Y − β(C − E[C]) with a valid CI over the
/// remaining replications.
class RegressionWelford {
 public:
  void push(double y, double c);
  void merge(const RegressionWelford& other);

  [[nodiscard]] RegressionWelfordState state() const noexcept {
    return {n_, mean_y_, mean_c_, m2_y_, m2_c_, m2_yc_};
  }
  /// Exact copy; throws std::invalid_argument on a negative variance
  /// sum or a non-empty state with n = 0.
  [[nodiscard]] static RegressionWelford from_state(
      const RegressionWelfordState& s);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean_y() const noexcept { return mean_y_; }
  [[nodiscard]] double mean_c() const noexcept { return mean_c_; }
  /// Unbiased sample (co)variances (0 for n < 2).
  [[nodiscard]] double variance_y() const noexcept {
    return n_ > 1 ? m2_y_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double variance_c() const noexcept {
    return n_ > 1 ? m2_c_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double covariance() const noexcept {
    return n_ > 1 ? m2_yc_ / static_cast<double>(n_ - 1) : 0.0;
  }
  /// Estimated optimal control coefficient Cov(Y, C)/Var(C); 0 when
  /// the control carries no variance (CV then degrades to plain MC
  /// instead of dividing by zero).
  [[nodiscard]] double beta() const noexcept {
    return m2_c_ > 0.0 ? m2_yc_ / m2_c_ : 0.0;
  }
  /// Pearson correlation of the streamed pairs (0 when degenerate).
  [[nodiscard]] double correlation() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_y_ = 0.0;
  double mean_c_ = 0.0;
  double m2_y_ = 0.0;
  double m2_c_ = 0.0;
  double m2_yc_ = 0.0;
};

}  // namespace midas::sim
