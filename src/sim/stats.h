// Replication statistics: sample mean/variance and Student-t confidence
// intervals for the Monte-Carlo cross-validation of the analytic model.
#pragma once

#include <cstddef>
#include <span>

namespace midas::sim {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;   // unbiased sample variance
  double ci_half_width = 0.0;  // 95% two-sided

  [[nodiscard]] double lower() const { return mean - ci_half_width; }
  [[nodiscard]] double upper() const { return mean + ci_half_width; }
  [[nodiscard]] bool contains(double value) const {
    return value >= lower() && value <= upper();
  }
};

/// 95% two-sided Student-t quantile for `df` degrees of freedom
/// (interpolated table; exact asymptote 1.96 for large df).
[[nodiscard]] double t_quantile_95(std::size_t df);

/// Summarises a sample with a 95% CI for the mean.
[[nodiscard]] Summary summarize(std::span<const double> sample);

}  // namespace midas::sim
