// Replication statistics: sample mean/variance and Student-t confidence
// intervals for the Monte-Carlo cross-validation of the analytic model.
#pragma once

#include <cstddef>
#include <limits>
#include <span>

namespace midas::sim {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;   // unbiased sample variance
  /// 95% two-sided half-width.  With n < 2 samples no variance estimate
  /// exists, so the interval is reported as INFINITE rather than the
  /// zero-width degenerate one it used to be: contains() then holds for
  /// every value ("cannot reject") instead of vacuously passing/failing
  /// on whether a single replication landed exactly on the mean — the
  /// same honesty the Wilson interval brought to 0/1 proportions.
  double ci_half_width = std::numeric_limits<double>::infinity();

  [[nodiscard]] double lower() const { return mean - ci_half_width; }
  [[nodiscard]] double upper() const { return mean + ci_half_width; }
  [[nodiscard]] bool contains(double value) const {
    return value >= lower() && value <= upper();
  }
  /// True when the CI is meaningful (n >= 2 behind a finite width).
  [[nodiscard]] bool has_ci() const {
    return ci_half_width < std::numeric_limits<double>::infinity();
  }
};

/// 95% two-sided Student-t quantile for `df` degrees of freedom
/// (interpolated table; exact asymptote 1.96 for large df).
[[nodiscard]] double t_quantile_95(std::size_t df);

/// Summarises a sample with a 95% CI for the mean.  Fewer than two
/// points carry no variance information: the half-width is infinite.
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Summary for a Bernoulli proportion (successes out of n) with a 95%
/// Wilson score interval, symmetrised conservatively around the sample
/// proportion.  Unlike the Student-t CI on 0/1 indicators, the width
/// never degenerates to zero at proportions of exactly 0 or 1 — an
/// all-survivors sample still carries its real statistical
/// uncertainty.  n = 0 reports an infinite half-width.
[[nodiscard]] Summary binomial_summary(std::size_t n,
                                       std::size_t successes);

/// The full accumulator state of a Welford instance — everything needed
/// to continue, merge, or summarise it later.  The sharded sweep service
/// serialises these (not derived Summary fields) so that a shard's
/// Monte-Carlo results re-imported on another host reproduce summaries
/// bit-for-bit and merge associatively across shards.
struct WelfordState {
  std::size_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;  // sum of squared deviations from the mean
};

/// Streaming mean/variance accumulator (Welford's algorithm): O(1)
/// memory per metric regardless of replication count, mergeable across
/// blocks via the parallel update of Chan et al.  The Monte-Carlo
/// engine summarises whole replication grids through these instead of
/// storing trajectory vectors.
class Welford {
 public:
  void push(double x);
  void merge(const Welford& other);

  /// Export / import of the raw accumulator (see WelfordState).
  /// from_state(w.state()) is an exact copy; from_state throws
  /// std::invalid_argument on negative m2 or a non-empty state with
  /// n = 0.
  [[nodiscard]] WelfordState state() const noexcept {
    return {n_, mean_, m2_};
  }
  [[nodiscard]] static Welford from_state(const WelfordState& s);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 for n < 2).
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  /// Summary with the 95% Student-t CI, identical in meaning to
  /// summarize() on the full sample.
  [[nodiscard]] Summary summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
};

}  // namespace midas::sim
