#include "sim/stats.h"

#include <cmath>
#include <stdexcept>

namespace midas::sim {

double t_quantile_95(std::size_t df) {
  // Two-sided 95% (i.e. 0.975 one-sided) quantiles.
  static constexpr double table[] = {
      0.0,   12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262, 2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101, 2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052, 2.048,  2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return table[df];
  if (df <= 60) {
    // Linear interpolation between t(30) = 2.042 and t(60) = 2.000.
    const double f = static_cast<double>(df - 30) / 30.0;
    return 2.042 + f * (2.000 - 2.042);
  }
  if (df <= 120) {
    const double f = static_cast<double>(df - 60) / 60.0;
    return 2.000 + f * (1.980 - 2.000);
  }
  return 1.96;
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.n = sample.size();
  if (s.n == 0) return s;
  double acc = 0.0;
  for (double v : sample) acc += v;
  s.mean = acc / static_cast<double>(s.n);
  if (s.n < 2) return s;
  double ss = 0.0;
  for (double v : sample) {
    const double d = v - s.mean;
    ss += d * d;
  }
  s.variance = ss / static_cast<double>(s.n - 1);
  const double sem = std::sqrt(s.variance / static_cast<double>(s.n));
  s.ci_half_width = t_quantile_95(s.n - 1) * sem;
  return s;
}

Summary binomial_summary(std::size_t n, std::size_t successes) {
  Summary s;
  s.n = n;
  if (n == 0) return s;
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  s.mean = p;
  s.variance = n > 1 ? p * (1.0 - p) * nn / (nn - 1.0) : 0.0;
  // Wilson score interval at z = 1.96, symmetrised around p by taking
  // the larger distance to either bound (conservative, keeps
  // Summary::contains' mean ± half-width semantics).
  const double z = 1.96;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double spread =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
  s.ci_half_width = std::max(center + spread - p, p - (center - spread));
  // 0 or n successes: the symmetrised width IS the Wilson bound toward
  // the interior (the boundary side is truncation, not evidence) — flag
  // it so rare-event containment gates don't read ±bound as a measured
  // two-sided interval.
  s.one_sided = successes == 0 || successes == n;
  return s;
}

double rule_of_three_upper(std::size_t n) {
  if (n == 0) return 1.0;
  return std::min(1.0, 3.0 / static_cast<double>(n));
}

Welford Welford::from_state(const WelfordState& s) {
  if (s.m2 < 0.0 || (s.n == 0 && (s.mean != 0.0 || s.m2 != 0.0))) {
    throw std::invalid_argument(
        "Welford::from_state: invalid accumulator state");
  }
  Welford w;
  w.n_ = s.n;
  w.mean_ = s.mean;
  w.m2_ = s.m2;
  return w;
}

void Welford::push(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
}

Summary Welford::summary() const {
  Summary s;
  s.n = n_;
  s.mean = mean_;
  if (n_ < 2) return s;
  s.variance = variance();
  const double sem = std::sqrt(s.variance / static_cast<double>(n_));
  s.ci_half_width = t_quantile_95(n_ - 1) * sem;
  return s;
}

RegressionWelford RegressionWelford::from_state(
    const RegressionWelfordState& s) {
  if (s.m2_y < 0.0 || s.m2_c < 0.0 ||
      (s.n == 0 && (s.mean_y != 0.0 || s.mean_c != 0.0 || s.m2_y != 0.0 ||
                    s.m2_c != 0.0 || s.m2_yc != 0.0))) {
    throw std::invalid_argument(
        "RegressionWelford::from_state: invalid accumulator state");
  }
  RegressionWelford w;
  w.n_ = s.n;
  w.mean_y_ = s.mean_y;
  w.mean_c_ = s.mean_c;
  w.m2_y_ = s.m2_y;
  w.m2_c_ = s.m2_c;
  w.m2_yc_ = s.m2_yc;
  return w;
}

void RegressionWelford::push(double y, double c) {
  ++n_;
  const double nd = static_cast<double>(n_);
  const double dy = y - mean_y_;
  const double dc = c - mean_c_;
  mean_y_ += dy / nd;
  mean_c_ += dc / nd;
  // Co-moment update pairs the OLD deviation of one variable with the
  // NEW deviation of the other — the exact single-pass identity.
  const double dy2 = y - mean_y_;
  const double dc2 = c - mean_c_;
  m2_y_ += dy * dy2;
  m2_c_ += dc * dc2;
  m2_yc_ += dy * dc2;
}

void RegressionWelford::merge(const RegressionWelford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n_total = na + nb;
  const double dy = other.mean_y_ - mean_y_;
  const double dc = other.mean_c_ - mean_c_;
  mean_y_ += dy * nb / n_total;
  mean_c_ += dc * nb / n_total;
  m2_y_ += other.m2_y_ + dy * dy * na * nb / n_total;
  m2_c_ += other.m2_c_ + dc * dc * na * nb / n_total;
  m2_yc_ += other.m2_yc_ + dy * dc * na * nb / n_total;
  n_ += other.n_;
}

double RegressionWelford::correlation() const noexcept {
  const double denom = std::sqrt(m2_y_ * m2_c_);
  return denom > 0.0 ? m2_yc_ / denom : 0.0;
}

}  // namespace midas::sim
