#include "sim/stats.h"

#include <cmath>

namespace midas::sim {

double t_quantile_95(std::size_t df) {
  // Two-sided 95% (i.e. 0.975 one-sided) quantiles.
  static constexpr double table[] = {
      0.0,   12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262, 2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101, 2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052, 2.048,  2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return table[df];
  if (df <= 60) {
    // Linear interpolation between t(30) = 2.042 and t(60) = 2.000.
    const double f = static_cast<double>(df - 30) / 30.0;
    return 2.042 + f * (2.000 - 2.042);
  }
  if (df <= 120) {
    const double f = static_cast<double>(df - 60) / 60.0;
    return 2.000 + f * (1.980 - 2.000);
  }
  return 1.96;
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.n = sample.size();
  if (s.n == 0) return s;
  double acc = 0.0;
  for (double v : sample) acc += v;
  s.mean = acc / static_cast<double>(s.n);
  if (s.n < 2) return s;
  double ss = 0.0;
  for (double v : sample) {
    const double d = v - s.mean;
    ss += d * d;
  }
  s.variance = ss / static_cast<double>(s.n - 1);
  const double sem = std::sqrt(s.variance / static_cast<double>(s.n));
  s.ci_half_width = t_quantile_95(s.n - 1) * sem;
  return s;
}

}  // namespace midas::sim
