#include "sim/protocol_sim.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include "crypto/gdh.h"
#include "gcs/group_comm.h"
#include "gcs/view.h"
#include "ids/functions.h"
#include "manet/topology.h"
#include "sim/rng.h"

namespace midas::sim {

ProtocolSimParams ProtocolSimParams::small_defaults() {
  ProtocolSimParams p;
  p.model = core::Params::paper_defaults();
  p.model.n_init = 24;
  p.model.max_groups = 1;            // topology still partitions freely;
                                     // this only disables the SPN knob
  p.model.lambda_c = 1.0 / 1500.0;   // fast attacker → short trajectories
  p.model.t_ids = 60.0;
  p.mobility.field_radius_m = 300.0;
  p.radio_range_m = 160.0;
  return p;
}

namespace {

/// Per-node ground truth + local detector state.
struct Node {
  gcs::NodeId id = 0;
  bool compromised = false;
  bool evicted = false;
};

/// Uniform index in [0, n) from one stream draw.
std::size_t pick_index(UniformStream& draw, std::size_t n) {
  return static_cast<std::size_t>(draw() * static_cast<double>(n)) % n;
}

/// Fisher–Yates through the stream, so an antithetic pair mirrors the
/// voter selection order too (std::shuffle would consume raw generator
/// words the flipped stream cannot mirror).
template <typename T>
void stream_shuffle(std::vector<T>& v, UniformStream& draw) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[pick_index(draw, i)]);
  }
}

/// Poisson count by CDF inversion of a SINGLE uniform — monotone in u,
/// which is what makes the flipped pair member draw an antithetic
/// packet count.  Probabilities walk in LOG space: exp(-lambda)
/// underflows past lambda ≈ 745 (the early terms are genuinely
/// negligible there), while the terms near the mode are ~1/sqrt(lambda)
/// and accumulate fine in linear space — so the inversion stays correct
/// for any rate a spec can sweep to, not just the small per-tick means
/// of the defaults.  The cap guards the floating-point plateau where
/// the accumulated CDF rounds below u.
std::size_t poisson_inverse(double lambda, double u) {
  if (lambda <= 0.0) return 0;
  double log_p = -lambda;  // log P[X = 0]
  double cdf = std::exp(log_p);
  std::size_t k = 0;
  const auto cap = static_cast<std::size_t>(
      lambda + 40.0 * std::sqrt(lambda) + 100.0);
  while (u > cdf && k < cap) {
    ++k;
    log_p += std::log(lambda / static_cast<double>(k));
    cdf += std::exp(log_p);
  }
  return k;
}

}  // namespace

ProtocolSimResult run_protocol_sim(const ProtocolSimParams& params,
                                   std::uint64_t seed, bool antithetic) {
  params.model.validate();
  if (params.tick_s <= 0.0 || params.topology_refresh_s < params.tick_s) {
    throw std::invalid_argument("run_protocol_sim: bad tick configuration");
  }

  const auto& mp = params.model;
  UniformStream draw(seed, antithetic);

  // Time-varying rates: the tick loop re-reads every rate each tick
  // anyway, so the schedule/mission enters as a per-tick pointer to the
  // active timeline segment's params (boundary granularity = one tick,
  // consistent with every other per-tick discretisation here).  The
  // constant case keeps `cur` = &mp itself: bitwise the legacy reads,
  // and no draw-sequence change either way since rate evaluation never
  // touches the stream.
  const bool timed = mp.time_varying();
  std::vector<core::TimelineSegment> timeline;
  std::size_t seg_idx = 0;
  const core::Params* cur = &mp;
  if (timed) {
    timeline = core::resolve_timeline(mp);
    cur = &timeline[0].params;
  }

  // --- Substrate instantiation.
  const auto n = static_cast<std::size_t>(mp.n_init);
  manet::RandomWaypointModel mobility(n, params.mobility, seed ^ 0x1);

  std::vector<Node> nodes(n);
  std::vector<gcs::NodeId> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].id = static_cast<gcs::NodeId>(i + 1);
    ids[i] = nodes[i].id;
  }

  crypto::GdhSession session(crypto::DhGroup::demo_group(), seed ^ 0x2);
  session.establish(ids);
  gcs::ViewManager view(ids);
  gcs::GroupChannel channel(view);

  ProtocolSimResult result;
  result.rekey_events = 1;  // initial agreement

  // --- Live topology statistics (refreshed periodically).
  double mean_hops = 1.0;
  auto refresh_topology = [&] {
    const manet::ConnectivityGraph graph(mobility.positions(),
                                         params.radio_range_m);
    const auto st = graph.stats();
    mean_hops = std::max(st.mean_hops, 1.0);
  };
  refresh_topology();

  const double vote_bits = mp.cost.vote_packet_bits;
  const double data_bits = mp.cost.data_packet_bits;
  const double key_bits = mp.cost.rekey.key_element_bits;

  auto charge_rekey = [&](std::uint64_t units) {
    result.traffic_hop_bits +=
        static_cast<double>(units) * key_bits * mean_hops;
    ++result.rekey_events;
  };

  auto live_members = [&] {
    std::size_t live = 0;
    for (const auto& node : nodes) live += node.evicted ? 0 : 1;
    return live;
  };
  auto undetected_compromised = [&] {
    std::size_t c = 0;
    for (const auto& node : nodes) {
      if (!node.evicted && node.compromised) ++c;
    }
    return c;
  };

  // Detector state as observed at the current instant; the effective
  // (p1,p2) feed every host-IDS draw below.  For the static detector
  // effective() returns mp.p1/mp.p2 themselves, so comparisons and draw
  // counts are bitwise the legacy ones.
  double now = 0.0;
  auto effective_rates = [&] {
    ids::DetectorState ds;
    ds.compromised = static_cast<std::int64_t>(undetected_compromised());
    ds.population = static_cast<std::int64_t>(live_members());
    ds.evicted = static_cast<std::int64_t>(mp.n_init) - ds.population;
    ds.elapsed_s = now;
    return mp.detector.effective(cur->p1, cur->p2, ds);
  };

  // Index helpers over the live population.
  auto pick_live = [&](auto pred) -> Node* {
    std::vector<Node*> pool;
    for (auto& node : nodes) {
      if (!node.evicted && pred(node)) pool.push_back(&node);
    }
    if (pool.empty()) return nullptr;
    return pool[pick_index(draw, pool.size())];
  };

  // --- Voting round: every live member is evaluated by m voters.
  auto ids_round = [&] {
    // One detector evaluation per round: every voter in the round works
    // from the same alert level (pure arithmetic — no stream draws, so
    // CRN/antithetic pairing is untouched).
    const auto eff = effective_rates();
    // Snapshot the live membership first: evictions within the round
    // must not change the voter pool mid-iteration.
    std::vector<std::size_t> live_idx;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!nodes[i].evicted) live_idx.push_back(i);
    }
    std::vector<std::size_t> to_evict;
    for (const std::size_t target : live_idx) {
      if (live_idx.size() < 2) break;
      // Draw up to m distinct voters (excluding the target).
      std::vector<std::size_t> pool;
      for (const std::size_t cand : live_idx) {
        if (cand != target) pool.push_back(cand);
      }
      stream_shuffle(pool, draw);
      const auto m_eff = std::min<std::size_t>(
          static_cast<std::size_t>(mp.num_voters), pool.size());
      std::size_t negative = 0;
      for (std::size_t v = 0; v < m_eff; ++v) {
        const Node& voter = nodes[pool[v]];
        const Node& subject = nodes[target];
        bool vote_evict;
        if (voter.compromised) {
          vote_evict = !subject.compromised;  // collusion
        } else if (subject.compromised) {
          vote_evict = draw() >= eff.p1;      // miss w.p. effective p1
        } else {
          vote_evict = draw() < eff.p2;       // false alarm w.p. eff. p2
        }
        negative += vote_evict ? 1 : 0;
        ++result.vote_messages;
        result.traffic_hop_bits += vote_bits * mean_hops;
      }
      if (negative >= m_eff / 2 + 1) to_evict.push_back(target);
    }
    for (const std::size_t idx : to_evict) {
      Node& victim = nodes[idx];
      if (victim.evicted) continue;
      victim.evicted = true;
      if (victim.compromised) {
        ++result.true_evictions;
      } else {
        ++result.false_evictions;
      }
      session.reset_traffic();
      session.leave(victim.id);
      result.keys_always_agreed =
          result.keys_always_agreed && session.keys_agree();
      view.evict(victim.id);
      charge_rekey(session.traffic().units);
    }
  };

  // --- Main loop.  (`now` is declared above effective_rates, which
  // reads it.)
  double next_topology = params.topology_refresh_s;
  double next_ids_round = cur->t_ids;
  // Bursty attacker phase; other kinds never draw for it, keeping the
  // legacy per-tick draw sequence.
  bool atk_on = true;

  while (now < params.max_time_s) {
    while (timed && seg_idx + 1 < timeline.size() &&
           now >= timeline[seg_idx + 1].start_s) {
      ++seg_idx;
      cur = &timeline[seg_idx].params;
    }
    const double live = static_cast<double>(live_members());
    const double bad = static_cast<double>(undetected_compromised());

    // Failure conditions, checked before advancing.
    if (live == 0.0 ||
        bad > mp.byzantine_fraction * live + 1e-9) {
      result.ttsf = now;
      result.failed_by_c1 = false;
      return result;
    }

    now += params.tick_s;
    mobility.step(params.tick_s);
    if (now >= next_topology) {
      refresh_topology();
      next_topology += params.topology_refresh_s;
    }

    // Attacker: thinning of the A(mc) hazard.  mc follows the model's
    // configured progress metric.
    double mc;
    if (mp.attacker_progress == core::AttackerProgress::CampaignProgress) {
      mc = 1.0 + static_cast<double>(mp.n_init) - live;
    } else {
      const double tm = live - bad;
      mc = tm > 0.0 ? live / tm : 1.0;
    }
    const double attack_rate =
        ids::attacker_rate(cur->attacker_shape, cur->lambda_c, mc,
                           cur->p_index);
    // Bursty modulation: one extra thinning draw per tick flips the
    // on/off phase (gated on the kind, so other attackers keep the
    // legacy draw sequence).
    if (mp.attacker.kind == AttackerKind::Bursty &&
        draw() < -std::expm1(-mp.attacker.phase_rate(atk_on) *
                             params.tick_s)) {
      atk_on = !atk_on;
    }
    // Arrival thinning at the kind's event rate (poisson: the base rate
    // itself, bitwise); coordinated arrivals compromise up to
    // batch_size() victims at once.
    const double arrival_rate = mp.attacker.event_rate(attack_rate, atk_on);
    if (draw() < -std::expm1(-arrival_rate * params.tick_s)) {
      const std::int64_t batch = mp.attacker.batch_size();
      for (std::int64_t b = 0; b < batch; ++b) {
        Node* victim =
            pick_live([](const Node& x) { return !x.compromised; });
        if (victim == nullptr) break;
        victim->compromised = true;
        ++result.compromises;
      }
    }

    // Data-plane traffic: each live member multicasts at λq; a
    // compromised member's request leaks data if the serving node's
    // host IDS misses (probability p1) — condition C1.
    const double expected_sends = live * cur->lambda_q * params.tick_s;
    const std::size_t packets = poisson_inverse(expected_sends, draw());
    for (std::size_t pk = 0; pk < packets; ++pk) {
      ++result.data_messages;
      result.traffic_hop_bits += data_bits * live * mean_hops;
      // Which member sent this one?  A compromised sender leaks iff the
      // serving host IDS misses at the detector's CURRENT effective p1.
      const bool sender_compromised = draw() < bad / live;
      if (sender_compromised && draw() < effective_rates().p1) {
        result.ttsf = now;
        result.failed_by_c1 = true;
        return result;
      }
    }

    // IDS rounds: the concrete protocol runs PERIODICALLY with the
    // interval shrunk by the detection function (1/D(md)) — this is the
    // deterministic-interval reality the SPN approximates with an
    // exponential rate.
    if (now >= next_ids_round) {
      ids_round();
      const double md =
          std::max(1.0, static_cast<double>(mp.n_init) /
                            std::max(1.0, static_cast<double>(live_members())));
      const double d = ids::detection_rate(cur->detection_shape, cur->t_ids,
                                           md, cur->p_index);
      next_ids_round = now + 1.0 / std::max(d, 1e-9);
    }
  }

  result.ttsf = params.max_time_s;
  result.timed_out = true;
  return result;
}

}  // namespace midas::sim
