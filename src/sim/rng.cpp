#include "sim/rng.h"

namespace midas::sim {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  return splitmix64(splitmix64(base_seed) ^ (index * 0x9e3779b97f4a7c15ull));
}

std::uint64_t derive_seed2(std::uint64_t base_seed, std::uint64_t stream,
                           std::uint64_t index) {
  return derive_seed(derive_seed(base_seed, stream), index);
}

std::mt19937_64 make_stream(std::uint64_t base_seed, std::uint64_t index) {
  return std::mt19937_64(derive_seed(base_seed, index));
}

}  // namespace midas::sim
