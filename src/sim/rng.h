// Seed derivation for parallel Monte-Carlo replications: SplitMix64
// turns (base seed, replication index) into well-separated mt19937_64
// seeds, so replications are independent streams and any replication is
// reproducible in isolation.
#pragma once

#include <cstdint>
#include <random>

namespace midas::sim {

/// SplitMix64 step — the standard 64-bit finaliser.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

/// Seed for replication `index` of experiment `base_seed`.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::uint64_t index);

/// Two-level derivation: seed for replication `index` of substream
/// `stream` of experiment `base_seed`.  The Monte-Carlo engine keys
/// substreams by sweep point, so (point, replication) pairs map to
/// well-separated, non-colliding seeds — and common-random-number runs
/// simply reuse one stream id across points.
[[nodiscard]] std::uint64_t derive_seed2(std::uint64_t base_seed,
                                         std::uint64_t stream,
                                         std::uint64_t index);

/// Convenience: a generator for one replication.
[[nodiscard]] std::mt19937_64 make_stream(std::uint64_t base_seed,
                                          std::uint64_t index);

}  // namespace midas::sim
