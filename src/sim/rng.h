// Seed derivation for parallel Monte-Carlo replications: SplitMix64
// turns (base seed, replication index) into well-separated mt19937_64
// seeds, so replications are independent streams and any replication is
// reproducible in isolation.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace midas::sim {

/// SplitMix64 step — the standard 64-bit finaliser.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

/// Seed for replication `index` of experiment `base_seed`.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::uint64_t index);

/// Two-level derivation: seed for replication `index` of substream
/// `stream` of experiment `base_seed`.  The Monte-Carlo engine keys
/// substreams by sweep point, so (point, replication) pairs map to
/// well-separated, non-colliding seeds — and common-random-number runs
/// simply reuse one stream id across points.
[[nodiscard]] std::uint64_t derive_seed2(std::uint64_t base_seed,
                                         std::uint64_t stream,
                                         std::uint64_t index);

/// Convenience: a generator for one replication.
[[nodiscard]] std::mt19937_64 make_stream(std::uint64_t base_seed,
                                          std::uint64_t index);

/// The draw-stream seam of the simulators: every simulator consumes
/// U(0,1) variates through this interface, so estimation layers can
/// substitute the randomness source (the vr subsystem injects
/// Owen-scrambled Sobol substreams here) without touching a single
/// line of simulation logic.  operator() is non-virtual on purpose:
/// concrete final streams used by value (the plain Monte-Carlo path)
/// devirtualise completely, keeping that path's codegen — and its
/// bitwise outputs — identical to the pre-seam UniformStream.
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Next U(0,1) variate, already antithetic-flipped/clamped by the
  /// concrete stream.
  double operator()() { return next(); }

 protected:
  virtual double next() = 0;
};

/// The U(0,1) draw stream of one replication, optionally antithetic:
/// in antithetic mode every draw u is flipped to 1−u, so two streams
/// built from the SAME seed (one plain, one flipped) feed negatively
/// correlated variates into every inverse-transform sample downstream
/// AND mirrored discrete choices into the Gillespie event selection.
/// This is the substrate of the Monte-Carlo engine's antithetic pairs
/// (sim::McOptions::antithetic).  Flipping the selection draws too is
/// deliberate: keeping them common makes paired trajectories share
/// their event path, whose length dominates the TTSF variance at slow
/// detection settings — the shared path induces POSITIVE within-pair
/// correlation there (measured ρ ≈ +0.68 at TIDS = 1200 s), exactly
/// what antithetic pairs must avoid.
///
/// A plain stream reproduces the exact draw sequence of
/// `std::uniform_real_distribution<double>` over
/// `std::mt19937_64(seed)`, so seed-addressed replications stay bitwise
/// stable across the refactor that introduced this class.
class UniformStream final : public RandomSource {
 public:
  explicit UniformStream(std::uint64_t seed, bool antithetic = false)
      : gen_(seed), antithetic_(antithetic) {}

  [[nodiscard]] bool antithetic() const noexcept { return antithetic_; }

 protected:
  /// Next variate.  The flipped value 1−u lands in (0,1]; it is clamped
  /// below 1 so inverse-transform exponentials (−log1p(−u)) stay finite
  /// and Gillespie event selection (u·total) never walks past the last
  /// positive rate.
  double next() override {
    double u = uni_(gen_);
    if (antithetic_) u = 1.0 - u;
    if (u >= 1.0) u = std::nextafter(1.0, 0.0);
    return u;
  }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> uni_{0.0, 1.0};
  bool antithetic_ = false;
};

}  // namespace midas::sim
