// Minimal work-sharing thread pool for embarrassingly parallel loops:
// Monte-Carlo replications and bench parameter sweeps.  Tasks are
// indexed 0..count-1 and pulled from an atomic counter, which balances
// uneven task durations without locks on the hot path.
#pragma once

#include <cstddef>
#include <functional>

namespace midas::sim {

/// Runs fn(i) for i in [0, count) on `threads` workers (0 = hardware
/// concurrency).  Exceptions thrown by tasks are captured; the first one
/// is rethrown on the calling thread after all workers join.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace midas::sim
