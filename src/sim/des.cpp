#include "sim/des.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/mc_engine.h"
#include "sim/rng.h"
#include "sim/thread_pool.h"

namespace midas::sim {

namespace {

std::int64_t per_group(std::int64_t total, std::int64_t groups) {
  if (groups <= 1) return total;
  return static_cast<std::int64_t>(std::llround(
      static_cast<double>(total) / static_cast<double>(groups)));
}

}  // namespace

DesContext::DesContext(std::shared_ptr<const ids::VotingTable> v,
                       gcs::CostModel c)
    : voting(std::move(v)), cost(std::move(c)) {}

DesContext::DesContext(const core::Params& params)
    : DesContext(ids::shared_voting_table(
                     ids::VotingParams{params.num_voters, params.p1,
                                       params.p2},
                     params.n_init, params.n_init),
                 gcs::CostModel(params.cost)) {}

DesContext DesContext::fresh(const core::Params& params) {
  return DesContext(
      std::make_shared<const ids::VotingTable>(
          ids::VotingParams{params.num_voters, params.p1, params.p2},
          params.n_init, params.n_init),
      gcs::CostModel(params.cost));
}

GroupSimulator::GroupSimulator(const core::Params& params,
                               const DesContext& context)
    : params_(&params), cost_(&context.cost) {
  params.validate();

  // Time-varying rates: resolve the schedule/mission into constant
  // segments and treat each breakpoint as a rate-change event.  The
  // constant case keeps `cur_` pointing at `params` itself and the
  // boundary at infinity, so every read below is bitwise the legacy
  // one and the truncation branch never fires.  Per-segment voting
  // tables come from the shared memo (identity segments re-use the
  // context's table allocation-free for bitwise-equal (m, p1, p2)).
  timed_ = params.time_varying();
  cur_ = &params;
  voting_ = context.voting.get();
  next_boundary_ = std::numeric_limits<double>::infinity();
  if (timed_) {
    timeline_ = core::resolve_timeline(params);
    segment_voting_.reserve(timeline_.size());
    for (const auto& seg : timeline_) {
      segment_voting_.push_back(ids::shared_voting_table(
          ids::VotingParams{seg.params.num_voters, seg.params.p1,
                            seg.params.p2},
          seg.params.n_init, seg.params.n_init));
    }
    cur_ = &timeline_[0].params;
    voting_ = segment_voting_[0].get();
    if (timeline_.size() > 1) next_boundary_ = timeline_[1].start_s;
  }

  s_.tm = params.n_init;
  // Attacker phase (bursty on/off modulation).  Non-bursty attackers
  // never flip it: phase_rate() is 0.0 there, which adds nothing to the
  // total rate (IEEE-exact) and the flip branch below is gated on
  // r_phase > 0.0 — so poisson trajectories consume the exact legacy
  // draw sequence.
  atk_on_ = true;
  static_detector_ = params.detector.kind == ids::DetectorKind::Static;
}

std::int64_t GroupSimulator::compromised() const noexcept { return s_.ucm; }

bool GroupSimulator::c2_failed() const {
  if (s_.members() == 0) return true;
  return static_cast<double>(s_.ucm) >
         params_->byzantine_fraction * static_cast<double>(s_.members()) +
             1e-9;
}

GroupSimulator::Snapshot GroupSimulator::snapshot() const {
  Snapshot snap;
  snap.tm = s_.tm;
  snap.ucm = s_.ucm;
  snap.ng = s_.ng;
  snap.now = now_;
  snap.atk_on = atk_on_;
  snap.seg_idx = seg_idx_;
  snap.traj = traj_;
  snap.status = status_;
  return snap;
}

void GroupSimulator::restore(const Snapshot& snap) {
  s_.tm = snap.tm;
  s_.ucm = snap.ucm;
  s_.ng = snap.ng;
  now_ = snap.now;
  atk_on_ = snap.atk_on;
  traj_ = snap.traj;
  status_ = snap.status;
  seg_idx_ = snap.seg_idx;
  if (timed_) {
    cur_ = &timeline_[seg_idx_].params;
    voting_ = segment_voting_[seg_idx_].get();
    next_boundary_ = seg_idx_ + 1 < timeline_.size()
                         ? timeline_[seg_idx_ + 1].start_s
                         : std::numeric_limits<double>::infinity();
  }
}

GroupSimulator::Status GroupSimulator::step(RandomSource& draw) {
  if (status_ != Status::Running) {
    throw std::logic_error("GroupSimulator::step: already absorbed");
  }
  const core::Params& params = *params_;
  const gcs::CostModel& cost = *cost_;

  if (c2_failed()) {
    traj_.ttsf = now_;
    traj_.failed_by_c1 = false;
    status_ = Status::FailedC2;
    return status_;
  }

  // Detector state observed by the plug-in model: DCm follows from
  // token conservation (evicted = N − Tm − UCm; the DES has no
  // join/leave events, mirroring the SPN).
  auto detector_state = [&] {
    ids::DetectorState ds;
    ds.compromised = s_.ucm;
    ds.evicted = std::max<std::int64_t>(params.n_init - s_.members(), 0);
    ds.population = s_.members();
    ds.elapsed_s = now_;
    return ds;
  };

  // Rates in the current state (mirrors GcsSpnModel::build()).
  double mc;
  if (params.attacker_progress == core::AttackerProgress::CampaignProgress) {
    // DCm follows from token conservation: evicted = N − Tm − UCm.
    mc = 1.0 + static_cast<double>(params.n_init - s_.tm);
  } else {
    mc = s_.tm > 0 ? static_cast<double>(s_.members()) /
                         static_cast<double>(s_.tm)
                   : 1.0;
  }
  const double md = std::max(
      1.0, static_cast<double>(params.n_init) /
               static_cast<double>(std::max<std::int64_t>(s_.members(), 1)));

  const double attack_base =
      s_.tm > 0 ? ids::attacker_rate(cur_->attacker_shape, cur_->lambda_c,
                                     mc, cur_->p_index)
                : 0.0;
  // Poisson: event_rate returns the base unchanged (bitwise).
  const double attack = params.attacker.event_rate(attack_base, atk_on_);
  const double r_phase = params.attacker.phase_rate(atk_on_);
  const double det = ids::detection_rate(cur_->detection_shape, cur_->t_ids,
                                         md, cur_->p_index);
  // Static detector: effective (p1,p2) == (p1,p2), so the shared
  // precomputed voting table applies and r_drq is the exact legacy
  // expression.  State-dependent detectors re-evaluate Equation 1
  // with the effective rates each event (no table can be keyed ahead
  // of time once elapsed time enters).
  const auto eff =
      params.detector.effective(cur_->p1, cur_->p2, detector_state());
  const auto rates =
      static_detector_
          ? voting_->at(per_group(s_.tm, s_.ng), per_group(s_.ucm, s_.ng))
          : ids::voting_error_rates(
                ids::VotingParams{params.num_voters, eff.p1, eff.p2},
                per_group(s_.tm, s_.ng), per_group(s_.ucm, s_.ng));
  const double r_ids = static_cast<double>(s_.ucm) * det * (1.0 - rates.pfn);
  const double r_fa = static_cast<double>(s_.tm) * det * rates.pfp;
  const double r_drq = eff.p1 * cur_->lambda_q * static_cast<double>(s_.ucm);

  double r_par = 0.0, r_mer = 0.0;
  if (params.max_groups > 1) {
    const auto g = static_cast<std::size_t>(s_.ng);
    if (s_.ng < params.max_groups && s_.members() > s_.ng &&
        g < cur_->partition_rates.size()) {
      r_par = cur_->partition_rates[g];
    }
    if (s_.ng >= 2 && g < cur_->merge_rates.size()) {
      r_mer = cur_->merge_rates[g];
    }
  }

  const double total = attack + r_ids + r_fa + r_drq + r_par + r_mer + r_phase;
  if (total <= 0.0) {
    throw std::runtime_error(
        "simulate_group: deadlocked in a non-failure state");
  }

  // Cost accrues at the state's rate until the next event.
  gcs::GroupState gs;
  gs.members = static_cast<double>(s_.members());
  gs.groups = static_cast<double>(s_.ng);
  gs.initial_size = static_cast<double>(params.n_init);
  const auto breakdown =
      cost.breakdown(gs, cur_->lambda_q, params.lambda_join, params.mu_leave,
                     det, static_cast<std::size_t>(params.num_voters),
                     r_par + r_mer);

  const double dt = -std::log1p(-draw()) / total;
  if (now_ + dt > next_boundary_) {
    // Schedule/mission breakpoint before the sampled event: accrue
    // cost for the truncated dwell, switch segments and resample.
    // The exponential dwell is memoryless, so restarting the clock
    // under the new rates is exact, not an approximation.  The control
    // accumulators take the truncated dwell as-is (deterministic given
    // the path); their exact-mean property is claimed only for the
    // time-homogeneous model, where this branch never fires.
    traj_.accumulated_cost += breakdown.total() * (next_boundary_ - now_);
    traj_.expected_dwell += next_boundary_ - now_;
    traj_.expected_cost += breakdown.total() * (next_boundary_ - now_);
    now_ = next_boundary_;
    ++seg_idx_;
    cur_ = &timeline_[seg_idx_].params;
    voting_ = segment_voting_[seg_idx_].get();
    next_boundary_ = seg_idx_ + 1 < timeline_.size()
                         ? timeline_[seg_idx_ + 1].start_s
                         : std::numeric_limits<double>::infinity();
    return status_;
  }
  now_ += dt;
  traj_.accumulated_cost += breakdown.total() * dt;
  // The conditional-expectation controls: E[dt | state] = 1/total and
  // E[dwell cost | state] = rate/total; dt and the event choice are
  // drawn independently, so summing these over the realised jump path
  // gives E[TTSF | path] / E[cost | path] exactly (time-homogeneous).
  traj_.expected_dwell += 1.0 / total;
  traj_.expected_cost += breakdown.total() / total;

  // Pick the event (Gillespie direct method).
  double u = draw() * total;
  if ((u -= attack) < 0.0) {
    // Coordinated attackers strike batch_size() victims at once
    // (capped by the trusted pool); single-victim kinds take the
    // legacy one-node step.
    const std::int64_t k =
        std::min<std::int64_t>(params.attacker.batch_size(), s_.tm);
    s_.tm -= k;
    s_.ucm += k;
    traj_.compromises += static_cast<std::size_t>(k);
    return status_;
  }
  if ((u -= r_ids) < 0.0) {
    --s_.ucm;
    ++traj_.true_evictions;
    traj_.accumulated_cost += cost.eviction_impulse_bits(gs);
    traj_.expected_cost += cost.eviction_impulse_bits(gs);
    return status_;
  }
  if ((u -= r_fa) < 0.0) {
    --s_.tm;
    ++traj_.false_evictions;
    traj_.accumulated_cost += cost.eviction_impulse_bits(gs);
    traj_.expected_cost += cost.eviction_impulse_bits(gs);
    return status_;
  }
  if ((u -= r_drq) < 0.0) {
    traj_.ttsf = now_;
    traj_.failed_by_c1 = true;  // data leak: C1
    status_ = Status::FailedC1;
    return status_;
  }
  if ((u -= r_par) < 0.0) {
    ++s_.ng;
    return status_;
  }
  if (r_phase > 0.0) {
    // Only bursty attackers have a phase event; the guard keeps the
    // legacy unchecked-merge fallback (and its floating-point
    // behaviour) intact for every other attacker kind.
    if ((u -= r_mer) < 0.0) {
      --s_.ng;
      return status_;
    }
    atk_on_ = !atk_on_;  // on/off flip (fallback event)
    return status_;
  }
  --s_.ng;  // merge
  return status_;
}

GroupSimulator::Status GroupSimulator::run(RandomSource& draw) {
  while (status_ == Status::Running) step(draw);
  return status_;
}

Trajectory simulate_group(const core::Params& params, RandomSource& draw,
                          const DesContext& context) {
  GroupSimulator sim(params, context);
  sim.run(draw);
  return sim.trajectory();
}

Trajectory simulate_group(const core::Params& params, std::uint64_t seed,
                          const DesContext& context) {
  UniformStream draw(seed);
  return simulate_group(params, draw, context);
}

Trajectory simulate_group(const core::Params& params, std::uint64_t seed) {
  return simulate_group(params, seed, DesContext(params));
}

ReplicationResult run_replications(const core::Params& params,
                                   std::size_t replications,
                                   std::uint64_t base_seed,
                                   std::size_t threads,
                                   bool capture_trajectories) {
  if (replications == 0) return {};  // empty summary, as the seed did

  McOptions opts;
  opts.base_seed = base_seed;
  opts.min_replications = replications;
  opts.max_replications = replications;
  opts.rel_ci_target = 0.0;  // fixed replication count
  opts.threads = threads;
  opts.capture_trajectories = capture_trajectories;
  MonteCarloEngine engine(opts);
  auto point = engine.run_des(params);

  ReplicationResult result;
  result.ttsf = point.ttsf;
  result.cost_rate = point.cost_rate;
  result.p_failure_c1 = point.p_failure_c1;
  result.trajectories = std::move(point.trajectories);
  return result;
}

ReplicationResult run_replications_reference(const core::Params& params,
                                             std::size_t replications,
                                             std::uint64_t base_seed,
                                             std::size_t threads) {
  ReplicationResult result;
  result.trajectories.resize(replications);

  parallel_for(
      replications,
      [&](std::size_t i) {
        const DesContext context = DesContext::fresh(params);
        result.trajectories[i] =
            simulate_group(params, derive_seed(base_seed, i), context);
      },
      threads);

  std::vector<double> ttsf(replications), cost_rate(replications);
  std::size_t c1 = 0;
  for (std::size_t i = 0; i < replications; ++i) {
    ttsf[i] = result.trajectories[i].ttsf;
    cost_rate[i] = result.trajectories[i].mean_cost_rate();
    if (result.trajectories[i].failed_by_c1) ++c1;
  }
  result.ttsf = summarize(ttsf);
  result.cost_rate = summarize(cost_rate);
  result.p_failure_c1 = replications > 0
                            ? static_cast<double>(c1) /
                                  static_cast<double>(replications)
                            : 0.0;
  return result;
}

}  // namespace midas::sim
