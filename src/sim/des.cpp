#include "sim/des.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/mc_engine.h"
#include "sim/rng.h"
#include "sim/thread_pool.h"

namespace midas::sim {

namespace {

/// Mutable simulation state mirroring the SPN's places.
struct State {
  std::int64_t tm = 0;   // trusted members
  std::int64_t ucm = 0;  // compromised, undetected
  std::int64_t ng = 1;   // groups

  [[nodiscard]] std::int64_t members() const { return tm + ucm; }
};

std::int64_t per_group(std::int64_t total, std::int64_t groups) {
  if (groups <= 1) return total;
  return static_cast<std::int64_t>(std::llround(
      static_cast<double>(total) / static_cast<double>(groups)));
}

}  // namespace

DesContext::DesContext(std::shared_ptr<const ids::VotingTable> v,
                       gcs::CostModel c)
    : voting(std::move(v)), cost(std::move(c)) {}

DesContext::DesContext(const core::Params& params)
    : DesContext(ids::shared_voting_table(
                     ids::VotingParams{params.num_voters, params.p1,
                                       params.p2},
                     params.n_init, params.n_init),
                 gcs::CostModel(params.cost)) {}

DesContext DesContext::fresh(const core::Params& params) {
  return DesContext(
      std::make_shared<const ids::VotingTable>(
          ids::VotingParams{params.num_voters, params.p1, params.p2},
          params.n_init, params.n_init),
      gcs::CostModel(params.cost));
}

Trajectory simulate_group(const core::Params& params, UniformStream& draw,
                          const DesContext& context) {
  params.validate();

  const gcs::CostModel& cost = context.cost;

  // Time-varying rates: resolve the schedule/mission into constant
  // segments and treat each breakpoint as a rate-change event.  The
  // constant case keeps `cur` pointing at `params` itself and the
  // boundary at infinity, so every read below is bitwise the legacy
  // one and the truncation branch never fires.  Per-segment voting
  // tables come from the shared memo (identity segments re-use the
  // context's table allocation-free for bitwise-equal (m, p1, p2)).
  const bool timed = params.time_varying();
  std::vector<core::TimelineSegment> timeline;
  std::vector<std::shared_ptr<const ids::VotingTable>> segment_voting;
  std::size_t seg_idx = 0;
  const core::Params* cur = &params;
  const ids::VotingTable* voting = context.voting.get();
  double next_boundary = std::numeric_limits<double>::infinity();
  if (timed) {
    timeline = core::resolve_timeline(params);
    segment_voting.reserve(timeline.size());
    for (const auto& seg : timeline) {
      segment_voting.push_back(ids::shared_voting_table(
          ids::VotingParams{seg.params.num_voters, seg.params.p1,
                            seg.params.p2},
          seg.params.n_init, seg.params.n_init));
    }
    cur = &timeline[0].params;
    voting = segment_voting[0].get();
    if (timeline.size() > 1) next_boundary = timeline[1].start_s;
  }

  auto exp_sample = [&](double rate) {
    return -std::log1p(-draw()) / rate;
  };

  State s;
  s.tm = params.n_init;

  Trajectory traj;
  double now = 0.0;
  // Attacker phase (bursty on/off modulation).  Non-bursty attackers
  // never flip it: phase_rate() is 0.0 there, which adds nothing to the
  // total rate (IEEE-exact) and the flip branch below is gated on
  // r_phase > 0.0 — so poisson trajectories consume the exact legacy
  // draw sequence.
  bool atk_on = true;
  const bool static_detector =
      params.detector.kind == ids::DetectorKind::Static;

  // Detector state observed by the plug-in model: DCm follows from
  // token conservation (evicted = N − Tm − UCm; the DES has no
  // join/leave events, mirroring the SPN).
  auto detector_state = [&] {
    ids::DetectorState ds;
    ds.compromised = s.ucm;
    ds.evicted = std::max<std::int64_t>(
        params.n_init - s.members(), 0);
    ds.population = s.members();
    ds.elapsed_s = now;
    return ds;
  };

  auto c2_failed = [&] {
    if (s.members() == 0) return true;
    return static_cast<double>(s.ucm) >
           params.byzantine_fraction * static_cast<double>(s.members()) +
               1e-9;
  };

  while (true) {
    if (c2_failed()) {
      traj.ttsf = now;
      traj.failed_by_c1 = false;
      return traj;
    }

    // Rates in the current state (mirrors GcsSpnModel::build()).
    double mc;
    if (params.attacker_progress ==
        core::AttackerProgress::CampaignProgress) {
      // DCm follows from token conservation: evicted = N − Tm − UCm.
      mc = 1.0 + static_cast<double>(params.n_init - s.tm);
    } else {
      mc = s.tm > 0 ? static_cast<double>(s.members()) /
                          static_cast<double>(s.tm)
                    : 1.0;
    }
    const double md = std::max(
        1.0, static_cast<double>(params.n_init) /
                 static_cast<double>(std::max<std::int64_t>(s.members(), 1)));

    const double attack_base =
        s.tm > 0 ? ids::attacker_rate(cur->attacker_shape, cur->lambda_c,
                                      mc, cur->p_index)
                 : 0.0;
    // Poisson: event_rate returns the base unchanged (bitwise).
    const double attack = params.attacker.event_rate(attack_base, atk_on);
    const double r_phase = params.attacker.phase_rate(atk_on);
    const double det = ids::detection_rate(cur->detection_shape,
                                           cur->t_ids, md, cur->p_index);
    // Static detector: effective (p1,p2) == (p1,p2), so the shared
    // precomputed voting table applies and r_drq is the exact legacy
    // expression.  State-dependent detectors re-evaluate Equation 1
    // with the effective rates each event (no table can be keyed ahead
    // of time once elapsed time enters).
    const auto eff = params.detector.effective(cur->p1, cur->p2,
                                               detector_state());
    const auto rates =
        static_detector
            ? voting->at(per_group(s.tm, s.ng), per_group(s.ucm, s.ng))
            : ids::voting_error_rates(
                  ids::VotingParams{params.num_voters, eff.p1, eff.p2},
                  per_group(s.tm, s.ng), per_group(s.ucm, s.ng));
    const double r_ids =
        static_cast<double>(s.ucm) * det * (1.0 - rates.pfn);
    const double r_fa = static_cast<double>(s.tm) * det * rates.pfp;
    const double r_drq =
        eff.p1 * cur->lambda_q * static_cast<double>(s.ucm);

    double r_par = 0.0, r_mer = 0.0;
    if (params.max_groups > 1) {
      const auto g = static_cast<std::size_t>(s.ng);
      if (s.ng < params.max_groups && s.members() > s.ng &&
          g < cur->partition_rates.size()) {
        r_par = cur->partition_rates[g];
      }
      if (s.ng >= 2 && g < cur->merge_rates.size()) {
        r_mer = cur->merge_rates[g];
      }
    }

    const double total =
        attack + r_ids + r_fa + r_drq + r_par + r_mer + r_phase;
    if (total <= 0.0) {
      throw std::runtime_error(
          "simulate_group: deadlocked in a non-failure state");
    }

    // Cost accrues at the state's rate until the next event.
    gcs::GroupState gs;
    gs.members = static_cast<double>(s.members());
    gs.groups = static_cast<double>(s.ng);
    gs.initial_size = static_cast<double>(params.n_init);
    const auto breakdown =
        cost.breakdown(gs, cur->lambda_q, params.lambda_join,
                       params.mu_leave, det,
                       static_cast<std::size_t>(params.num_voters),
                       r_par + r_mer);

    const double dt = exp_sample(total);
    if (now + dt > next_boundary) {
      // Schedule/mission breakpoint before the sampled event: accrue
      // cost for the truncated dwell, switch segments and resample.
      // The exponential dwell is memoryless, so restarting the clock
      // under the new rates is exact, not an approximation.
      traj.accumulated_cost += breakdown.total() * (next_boundary - now);
      now = next_boundary;
      ++seg_idx;
      cur = &timeline[seg_idx].params;
      voting = segment_voting[seg_idx].get();
      next_boundary = seg_idx + 1 < timeline.size()
                          ? timeline[seg_idx + 1].start_s
                          : std::numeric_limits<double>::infinity();
      continue;
    }
    now += dt;
    traj.accumulated_cost += breakdown.total() * dt;

    // Pick the event (Gillespie direct method).
    double u = draw() * total;
    if ((u -= attack) < 0.0) {
      // Coordinated attackers strike batch_size() victims at once
      // (capped by the trusted pool); single-victim kinds take the
      // legacy one-node step.
      const std::int64_t k =
          std::min<std::int64_t>(params.attacker.batch_size(), s.tm);
      s.tm -= k;
      s.ucm += k;
      traj.compromises += static_cast<std::size_t>(k);
      continue;
    }
    if ((u -= r_ids) < 0.0) {
      --s.ucm;
      ++traj.true_evictions;
      traj.accumulated_cost += cost.eviction_impulse_bits(gs);
      continue;
    }
    if ((u -= r_fa) < 0.0) {
      --s.tm;
      ++traj.false_evictions;
      traj.accumulated_cost += cost.eviction_impulse_bits(gs);
      continue;
    }
    if ((u -= r_drq) < 0.0) {
      traj.ttsf = now;
      traj.failed_by_c1 = true;  // data leak: C1
      return traj;
    }
    if ((u -= r_par) < 0.0) {
      ++s.ng;
      continue;
    }
    if (r_phase > 0.0) {
      // Only bursty attackers have a phase event; the guard keeps the
      // legacy unchecked-merge fallback (and its floating-point
      // behaviour) intact for every other attacker kind.
      if ((u -= r_mer) < 0.0) {
        --s.ng;
        continue;
      }
      atk_on = !atk_on;  // on/off flip (fallback event)
      continue;
    }
    --s.ng;  // merge
  }
}

Trajectory simulate_group(const core::Params& params, std::uint64_t seed,
                          const DesContext& context) {
  UniformStream draw(seed);
  return simulate_group(params, draw, context);
}

Trajectory simulate_group(const core::Params& params, std::uint64_t seed) {
  return simulate_group(params, seed, DesContext(params));
}

ReplicationResult run_replications(const core::Params& params,
                                   std::size_t replications,
                                   std::uint64_t base_seed,
                                   std::size_t threads,
                                   bool capture_trajectories) {
  if (replications == 0) return {};  // empty summary, as the seed did

  McOptions opts;
  opts.base_seed = base_seed;
  opts.min_replications = replications;
  opts.max_replications = replications;
  opts.rel_ci_target = 0.0;  // fixed replication count
  opts.threads = threads;
  opts.capture_trajectories = capture_trajectories;
  MonteCarloEngine engine(opts);
  auto point = engine.run_des(params);

  ReplicationResult result;
  result.ttsf = point.ttsf;
  result.cost_rate = point.cost_rate;
  result.p_failure_c1 = point.p_failure_c1;
  result.trajectories = std::move(point.trajectories);
  return result;
}

ReplicationResult run_replications_reference(const core::Params& params,
                                             std::size_t replications,
                                             std::uint64_t base_seed,
                                             std::size_t threads) {
  ReplicationResult result;
  result.trajectories.resize(replications);

  parallel_for(
      replications,
      [&](std::size_t i) {
        const DesContext context = DesContext::fresh(params);
        result.trajectories[i] =
            simulate_group(params, derive_seed(base_seed, i), context);
      },
      threads);

  std::vector<double> ttsf(replications), cost_rate(replications);
  std::size_t c1 = 0;
  for (std::size_t i = 0; i < replications; ++i) {
    ttsf[i] = result.trajectories[i].ttsf;
    cost_rate[i] = result.trajectories[i].mean_cost_rate();
    if (result.trajectories[i].failed_by_c1) ++c1;
  }
  result.ttsf = summarize(ttsf);
  result.cost_rate = summarize(cost_rate);
  result.p_failure_c1 = replications > 0
                            ? static_cast<double>(c1) /
                                  static_cast<double>(replications)
                            : 0.0;
  return result;
}

}  // namespace midas::sim
