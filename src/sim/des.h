// Discrete-event Monte-Carlo simulator of the mobile-group process —
// the validation path.  It simulates the same stochastic process as the
// SPN (exponential races via Gillespie's direct method) but is coded
// independently of the SPN engine, so agreement between the two is a
// genuine cross-check of both the model construction and the numerical
// solvers (the paper validates its analytical model by simulation only;
// we reproduce that methodology and make it a regression test).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/params.h"
#include "gcs/cost_model.h"
#include "ids/voting.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace midas::sim {

/// Outcome of a single replication.
struct Trajectory {
  double ttsf = 0.0;            // time to security failure (s)
  double accumulated_cost = 0.0;  // hop-bits until failure
  bool failed_by_c1 = false;    // data leak (else Byzantine/C2)
  std::size_t compromises = 0;
  std::size_t true_evictions = 0;
  std::size_t false_evictions = 0;
  /// Conditional-expectation controls, accumulated for free alongside
  /// the trajectory: expected_dwell = Σ 1/total_rate over the visited
  /// states (= E[TTSF | jump path], whose mean is EXACTLY the analytic
  /// MTTSF in the time-homogeneous model) and expected_cost = the same
  /// sum weighted by the state cost rates plus the deterministic
  /// eviction impulses (mean = analytic ctotal × MTTSF).  The vr
  /// control-variate estimator regresses TTSF/cost on these: they
  /// carry the entire jump-path variance, leaving only the exponential
  /// holding-time noise behind.
  double expected_dwell = 0.0;
  double expected_cost = 0.0;

  [[nodiscard]] double mean_cost_rate() const {
    return ttsf > 0.0 ? accumulated_cost / ttsf : 0.0;
  }
};

/// Immutable per-parameter-point context shared by every replication of
/// that point: the O(N²) voting table and the cost model.  Building
/// these once per point instead of once per trajectory is the DES
/// analog of the sweep engine's shared exploration — at the validation
/// population the table build costs as much as a whole trajectory.
struct DesContext {
  /// Via the process-wide ids::shared_voting_table memo, so a TIDS
  /// sweep (identical voting parameters at every point) shares one
  /// table across the entire grid.
  explicit DesContext(const core::Params& params);

  /// Seed-era behaviour: a private table built from scratch (no memo).
  /// Kept for the benchmark baseline.
  [[nodiscard]] static DesContext fresh(const core::Params& params);

  std::shared_ptr<const ids::VotingTable> voting;
  gcs::CostModel cost;

 private:
  DesContext(std::shared_ptr<const ids::VotingTable> v,
             gcs::CostModel c);
};

/// Step-wise form of the group DES — the same Gillespie loop as
/// simulate_group (which is now a thin wrapper over this class),
/// exposed one event at a time so estimation layers can interleave:
/// the vr multilevel-splitting runner watches the compromise count
/// between steps, snapshots the full simulation state at level
/// upcrossings and restarts clones from those entrance states.
/// Draws come from the RandomSource seam, so a clone continues under
/// a fresh independent stream while the state is an exact copy.
class GroupSimulator {
 public:
  enum class Status { Running, FailedC1, FailedC2 };

  /// Resolves the timeline/voting tables once; `context` must be built
  /// from the same params.  Throws like simulate_group on invalid
  /// params.
  GroupSimulator(const core::Params& params, const DesContext& context);

  /// Advances by one Gillespie iteration (one event, or one
  /// schedule-boundary hop which consumes one dwell draw and no event
  /// draw).  Consumes draws in EXACTLY the simulate_group order.
  /// Calling step() after absorption throws std::logic_error.
  Status step(RandomSource& draw);

  /// Runs step() to absorption and returns the terminal status.
  Status run(RandomSource& draw);

  [[nodiscard]] Status status() const noexcept { return status_; }
  /// Undetected-compromised count UCm — the importance function the
  /// splitting levels threshold on.
  [[nodiscard]] std::int64_t compromised() const noexcept;
  [[nodiscard]] double now() const noexcept { return now_; }
  /// Counters so far; ttsf/failed_by_c1 are final once absorbed.
  [[nodiscard]] const Trajectory& trajectory() const noexcept {
    return traj_;
  }

  /// Full copyable mid-trajectory state (places, clock, attacker
  /// phase, schedule segment, counters).  restore() on the simulator
  /// that produced it — or any simulator built from the same params —
  /// reproduces the exact continuation distribution.
  struct Snapshot {
    std::int64_t tm = 0;
    std::int64_t ucm = 0;
    std::int64_t ng = 1;
    double now = 0.0;
    bool atk_on = true;
    std::size_t seg_idx = 0;
    Trajectory traj;
    Status status = Status::Running;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snap);

 private:
  struct State {
    std::int64_t tm = 0;
    std::int64_t ucm = 0;
    std::int64_t ng = 1;
    [[nodiscard]] std::int64_t members() const { return tm + ucm; }
  };

  [[nodiscard]] bool c2_failed() const;

  const core::Params* params_;
  const gcs::CostModel* cost_;
  bool timed_ = false;
  bool static_detector_ = true;
  std::vector<core::TimelineSegment> timeline_;
  std::vector<std::shared_ptr<const ids::VotingTable>> segment_voting_;
  std::size_t seg_idx_ = 0;
  const core::Params* cur_;
  const ids::VotingTable* voting_;
  double next_boundary_ = 0.0;

  State s_;
  Trajectory traj_;
  double now_ = 0.0;
  bool atk_on_ = true;
  Status status_ = Status::Running;
};

/// Simulates one replication drawing from the given uniform stream —
/// the antithetic-capable entry point: a (plain, flipped) pair of
/// streams over one seed yields an antithetic trajectory pair.
/// Deterministic in (params, stream state); `context` must be built
/// from the same params.
[[nodiscard]] Trajectory simulate_group(const core::Params& params,
                                        RandomSource& draw,
                                        const DesContext& context);

/// Simulates one replication with the given seed and shared context
/// (a plain stream over `seed`; bitwise-identical to the pre-stream
/// code path).  Deterministic in (params, seed).
[[nodiscard]] Trajectory simulate_group(const core::Params& params,
                                        std::uint64_t seed,
                                        const DesContext& context);

/// Convenience single-shot form (builds the context via the memo).
[[nodiscard]] Trajectory simulate_group(const core::Params& params,
                                        std::uint64_t seed);

struct ReplicationResult {
  Summary ttsf;        // over replications
  Summary cost_rate;   // hop-bits/s
  double p_failure_c1 = 0.0;
  /// Raw trajectories — captured only when explicitly requested
  /// (`capture_trajectories`); empty otherwise, so replication runs are
  /// O(1) memory in the replication count.
  std::vector<Trajectory> trajectories;
};

/// Runs `replications` independent trajectories in parallel through the
/// Monte-Carlo engine and summarises with 95% CIs.  Streaming: raw
/// trajectories are only stored when `capture_trajectories` is set.
[[nodiscard]] ReplicationResult run_replications(
    const core::Params& params, std::size_t replications,
    std::uint64_t base_seed, std::size_t threads = 0,
    bool capture_trajectories = false);

/// The seed-era per-point replication loop, kept verbatim as the
/// benchmark/equivalence baseline (bench_mc): a fresh voting table per
/// trajectory, every trajectory stored, two-pass summaries, one
/// parallel_for per call.
[[nodiscard]] ReplicationResult run_replications_reference(
    const core::Params& params, std::size_t replications,
    std::uint64_t base_seed, std::size_t threads = 0);

}  // namespace midas::sim
