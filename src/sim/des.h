// Discrete-event Monte-Carlo simulator of the mobile-group process —
// the validation path.  It simulates the same stochastic process as the
// SPN (exponential races via Gillespie's direct method) but is coded
// independently of the SPN engine, so agreement between the two is a
// genuine cross-check of both the model construction and the numerical
// solvers (the paper validates its analytical model by simulation only;
// we reproduce that methodology and make it a regression test).
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "sim/stats.h"

namespace midas::sim {

/// Outcome of a single replication.
struct Trajectory {
  double ttsf = 0.0;            // time to security failure (s)
  double accumulated_cost = 0.0;  // hop-bits until failure
  bool failed_by_c1 = false;    // data leak (else Byzantine/C2)
  std::size_t compromises = 0;
  std::size_t true_evictions = 0;
  std::size_t false_evictions = 0;

  [[nodiscard]] double mean_cost_rate() const {
    return ttsf > 0.0 ? accumulated_cost / ttsf : 0.0;
  }
};

/// Simulates one replication with the given seed.
[[nodiscard]] Trajectory simulate_group(const core::Params& params,
                                        std::uint64_t seed);

struct ReplicationResult {
  Summary ttsf;        // over replications
  Summary cost_rate;   // hop-bits/s
  double p_failure_c1 = 0.0;
  std::vector<Trajectory> trajectories;
};

/// Runs `replications` independent trajectories in parallel (thread
/// pool) and summarises with 95% CIs.
[[nodiscard]] ReplicationResult run_replications(const core::Params& params,
                                                 std::size_t replications,
                                                 std::uint64_t base_seed,
                                                 std::size_t threads = 0);

}  // namespace midas::sim
