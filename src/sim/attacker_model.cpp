#include "sim/attacker_model.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace midas::sim {

void AttackerModel::validate() const {
  if (!(burst_on_s > 0.0) || !std::isfinite(burst_on_s)) {
    throw std::invalid_argument("attacker.burst_on_s: " +
                                std::to_string(burst_on_s) +
                                " must be a positive finite duration");
  }
  if (!(burst_off_s > 0.0) || !std::isfinite(burst_off_s)) {
    throw std::invalid_argument("attacker.burst_off_s: " +
                                std::to_string(burst_off_s) +
                                " must be a positive finite duration");
  }
  if (batch < 1) {
    throw std::invalid_argument("attacker.batch: " + std::to_string(batch) +
                                " must be >= 1");
  }
}

const char* to_string(AttackerKind kind) noexcept {
  switch (kind) {
    case AttackerKind::Poisson:
      return "poisson";
    case AttackerKind::Bursty:
      return "bursty";
    case AttackerKind::Coordinated:
      return "coordinated";
  }
  return "poisson";
}

AttackerKind attacker_kind_from_string(const std::string& name) {
  if (name == "poisson") return AttackerKind::Poisson;
  if (name == "bursty") return AttackerKind::Bursty;
  if (name == "coordinated") return AttackerKind::Coordinated;
  throw std::invalid_argument("unknown attacker kind \"" + name +
                              "\" (expected poisson|bursty|coordinated)");
}

}  // namespace midas::sim
