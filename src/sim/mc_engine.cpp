#include "sim/mc_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.h"
#include "sim/thread_pool.h"
#include "util/stopwatch.h"

namespace midas::sim {

namespace {

/// Streaming accumulators for one block or one point.  The Welfords
/// hold one entry per SAMPLE (a replication, or an antithetic pair
/// average); the counters count TRAJECTORIES.
struct Accum {
  Welford ttsf;
  Welford cost_rate;
  std::size_t num_trajectories = 0;
  std::size_t c1 = 0;
  std::size_t timeouts = 0;
  bool keys_ok = true;
  std::vector<std::size_t> survival;  // survivor counts per horizon
  std::vector<Trajectory> trajectories;

  explicit Accum(std::size_t horizons) : survival(horizons, 0) {}

  void merge(const Accum& other) {
    ttsf.merge(other.ttsf);
    cost_rate.merge(other.cost_rate);
    num_trajectories += other.num_trajectories;
    c1 += other.c1;
    timeouts += other.timeouts;
    keys_ok = keys_ok && other.keys_ok;
    for (std::size_t h = 0; h < survival.size(); ++h) {
      survival[h] += other.survival[h];
    }
    trajectories.insert(trajectories.end(), other.trajectories.begin(),
                        other.trajectories.end());
  }
};

/// A scheduled work item: replications [first_rep, first_rep + count)
/// of sweep point `point`.
struct Item {
  std::size_t point = 0;
  std::size_t first_rep = 0;
  std::size_t count = 0;
};

bool within_target(const Welford& w, double rel_target) {
  // One replication has a degenerate zero-width CI — never "converged".
  if (w.count() < 2) return false;
  const Summary s = w.summary();
  return s.ci_half_width <=
         rel_target * std::max(std::fabs(s.mean), 1e-300);
}

/// Replications needed for a relative 95% half-width target, from the
/// current variance estimate (normal quantile; the round loop re-checks
/// with the exact t quantile, so this only has to be a decent guess).
/// Clamped to `cap` before the cast — a degenerate mean/variance must
/// not overflow the size_t conversion.
std::size_t reps_needed(const Welford& w, double rel_target,
                        std::size_t cap) {
  const double mean = std::fabs(w.mean());
  if (mean <= 0.0 || w.count() < 2) return w.count() * 2;
  const double z = 1.96 * std::sqrt(w.variance()) / (rel_target * mean);
  const double need = std::ceil(z * z);
  if (!std::isfinite(need) || need >= static_cast<double>(cap)) return cap;
  return static_cast<std::size_t>(need);
}

}  // namespace

MonteCarloEngine::MonteCarloEngine(McOptions opts) : opts_(std::move(opts)) {
  if (opts_.min_replications == 0 || opts_.block == 0) {
    throw std::invalid_argument(
        "MonteCarloEngine: min_replications and block must be positive");
  }
  opts_.max_replications =
      std::max(opts_.max_replications, opts_.min_replications);
}

std::uint64_t MonteCarloEngine::replication_seed(std::size_t point,
                                                 std::size_t rep) const {
  // CRN: one substream shared by every point; independent: substream
  // keyed by the GLOBAL point index (offset so the layouts never
  // coincide, and shifted by point_stream_offset so a shard reproduces
  // the full-grid streams).
  const std::uint64_t stream =
      opts_.crn ? 0 : opts_.point_stream_offset + point + 1;
  return derive_seed2(opts_.base_seed, stream, rep);
}

template <typename SampleFn>
std::vector<McPointResult> MonteCarloEngine::run_grid(
    std::size_t num_points, const SampleFn& sample) {
  const std::size_t horizons = opts_.survival_horizons.size();
  const bool adaptive = opts_.rel_ci_target > 0.0;

  struct PointState {
    Accum accum;
    std::size_t scheduled = 0;
    bool converged = false;
    explicit PointState(std::size_t h) : accum(h) {}
  };
  std::vector<PointState> state(num_points, PointState(horizons));

  while (true) {
    // Schedule the next batch for every unconverged point.  The first
    // round runs min_replications; later rounds grow toward the
    // variance-estimated requirement in block multiples.
    std::vector<Item> items;
    for (std::size_t p = 0; p < num_points; ++p) {
      auto& st = state[p];
      if (st.converged || st.scheduled >= opts_.max_replications) continue;
      std::size_t want;
      if (st.scheduled == 0) {
        want = opts_.min_replications;
      } else {
        const std::size_t need = std::max(
            reps_needed(st.accum.ttsf, opts_.rel_ci_target,
                        opts_.max_replications),
            reps_needed(st.accum.cost_rate, opts_.rel_ci_target,
                        opts_.max_replications));
        // Grow by at least one block and at most ~3x, so a noisy early
        // variance estimate neither stalls nor wildly overshoots.
        const std::size_t cap = std::max(3 * st.scheduled, opts_.block);
        want = std::clamp(need > st.scheduled ? need - st.scheduled
                                              : opts_.block,
                          opts_.block, cap);
      }
      want = std::min(want, opts_.max_replications - st.scheduled);
      for (std::size_t first = 0; first < want; first += opts_.block) {
        items.push_back({p, st.scheduled + first,
                         std::min(opts_.block, want - first)});
      }
      st.scheduled += want;
    }
    if (items.empty()) break;

    // One unified schedule over every (point, block) item of the round.
    std::vector<Accum> partial(items.size(), Accum(horizons));
    parallel_for(
        items.size(),
        [&](std::size_t i) {
          const Item& item = items[i];
          Accum& acc = partial[i];
          if (opts_.capture_trajectories) {
            acc.trajectories.reserve(item.count *
                                     (opts_.antithetic ? 2 : 1));
          }
          // Trajectory-level statistics (failure split, survival
          // indicators, capture) accumulate per trajectory regardless
          // of pairing; only the Welford samples are pair-averaged.
          auto record = [&](const Sample& s) {
            ++acc.num_trajectories;
            if (s.traj.failed_by_c1) ++acc.c1;
            if (s.timed_out) ++acc.timeouts;
            acc.keys_ok = acc.keys_ok && s.keys_ok;
            for (std::size_t h = 0; h < horizons; ++h) {
              if (s.traj.ttsf > opts_.survival_horizons[h]) {
                ++acc.survival[h];
              }
            }
            if (opts_.capture_trajectories) {
              acc.trajectories.push_back(s.traj);
            }
          };
          for (std::size_t k = 0; k < item.count; ++k) {
            const std::size_t rep = item.first_rep + k;
            const std::uint64_t seed = replication_seed(item.point, rep);
            const Sample s = sample(item.point, rep, seed, false);
            record(s);
            if (!opts_.antithetic) {
              acc.ttsf.push(s.traj.ttsf);
              acc.cost_rate.push(s.traj.mean_cost_rate());
              continue;
            }
            // The pair's flipped member shares the seed; one Welford
            // sample per pair keeps the CI (and the stopping rule)
            // honest about the negative within-pair correlation.
            const Sample t = sample(item.point, rep, seed, true);
            record(t);
            acc.ttsf.push(0.5 * (s.traj.ttsf + t.traj.ttsf));
            acc.cost_rate.push(
                0.5 * (s.traj.mean_cost_rate() + t.traj.mean_cost_rate()));
          }
        },
        opts_.threads);

    // Merge partials in schedule order (deterministic float order, and
    // captured trajectories land in replication order).
    for (std::size_t i = 0; i < items.size(); ++i) {
      state[items[i].point].accum.merge(partial[i]);
    }
    stats_.blocks += items.size();
    ++stats_.rounds;

    for (auto& st : state) {
      if (st.converged || st.accum.ttsf.count() < opts_.min_replications) {
        continue;
      }
      st.converged =
          !adaptive ||
          (within_target(st.accum.ttsf, opts_.rel_ci_target) &&
           within_target(st.accum.cost_rate, opts_.rel_ci_target));
    }
  }

  std::vector<McPointResult> results;
  results.reserve(num_points);
  for (auto& st : state) {
    McPointResult r;
    r.ttsf = st.accum.ttsf.summary();
    r.cost_rate = st.accum.cost_rate.summary();
    r.ttsf_state = st.accum.ttsf.state();
    r.cost_rate_state = st.accum.cost_rate.state();
    r.replications = st.accum.num_trajectories;
    r.failures_c1 = st.accum.c1;
    r.p_failure_c1 = r.replications > 0
                         ? static_cast<double>(st.accum.c1) /
                               static_cast<double>(r.replications)
                         : 0.0;
    r.p_failure = binomial_summary(r.replications, st.accum.c1);
    r.converged = st.converged;
    r.survival.reserve(horizons);
    for (const std::size_t count : st.accum.survival) {
      r.survival.push_back(binomial_summary(r.replications, count));
    }
    r.survival_counts = st.accum.survival;
    r.trajectories = std::move(st.accum.trajectories);
    r.keys_always_agreed = st.accum.keys_ok;
    r.timeouts = st.accum.timeouts;
    stats_.replications += r.replications;
    results.push_back(std::move(r));
  }
  stats_.points += num_points;
  return results;
}

std::vector<McPointResult> MonteCarloEngine::run_des(
    std::span<const core::Params> points) {
  const util::Stopwatch watch;
  // Shared per-point contexts, built once for the whole grid (the memo
  // collapses identical voting configurations across points).  Counted
  // in stats_.seconds: the context build is part of the engine's cost.
  std::vector<DesContext> contexts;
  contexts.reserve(points.size());
  for (const auto& p : points) contexts.emplace_back(p);

  std::vector<McPointResult> results;
  if (opts_.stream_factory) {
    results = run_grid(
        points.size(),
        [&](std::size_t point, std::size_t rep, std::uint64_t /*seed*/,
            bool antithetic) -> Sample {
          const std::uint64_t stream =
              opts_.crn ? 0 : opts_.point_stream_offset + point + 1;
          auto draw = opts_.stream_factory(stream, rep, antithetic);
          return {simulate_group(points[point], *draw, contexts[point]),
                  true, false};
        });
  } else {
    results = run_grid(
        points.size(),
        [&](std::size_t point, std::size_t /*rep*/, std::uint64_t seed,
            bool antithetic) -> Sample {
          UniformStream draw(seed, antithetic);
          return {simulate_group(points[point], draw, contexts[point]), true,
                  false};
        });
  }
  stats_.seconds += watch.seconds();
  return results;
}

McPointResult MonteCarloEngine::run_des(const core::Params& point) {
  auto results = run_des(std::span<const core::Params>(&point, 1));
  return std::move(results.front());
}

std::vector<McPointResult> MonteCarloEngine::run_protocol(
    std::span<const ProtocolSimParams> points) {
  const util::Stopwatch watch;
  auto results = run_grid(
      points.size(),
      [&](std::size_t point, std::size_t /*rep*/, std::uint64_t seed,
          bool antithetic) -> Sample {
        const ProtocolSimResult r =
            run_protocol_sim(points[point], seed, antithetic);
        Sample s;
        s.traj.ttsf = r.ttsf;
        s.traj.accumulated_cost = r.traffic_hop_bits;
        s.traj.failed_by_c1 = r.failed_by_c1;
        s.traj.compromises = r.compromises;
        s.traj.true_evictions = r.true_evictions;
        s.traj.false_evictions = r.false_evictions;
        s.keys_ok = r.keys_always_agreed;
        s.timed_out = r.timed_out;
        return s;
      });
  stats_.seconds += watch.seconds();
  return results;
}

}  // namespace midas::sim
