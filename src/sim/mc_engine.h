// Unified Monte-Carlo experiment engine — the simulation-side
// counterpart of core::SweepEngine.  One engine batches DES
// (simulate_group) and protocol-level (run_protocol_sim) replications
// across whole parameter grids:
//
//   1. Common random numbers (CRN): replication r of every sweep point
//      draws from the same SplitMix64 substream (seeds keyed by
//      (point, replication) via derive_seed2; CRN drops the point key),
//      so curve differences between points are positively correlated
//      and their contrasts have variance-reduced estimates.  Antithetic
//      pairs (McOptions::antithetic) layer under this: each replication
//      becomes a plain/flipped trajectory pair over one seed, and the
//      statistics run on pair averages.
//   2. Streaming Welford accumulation (sim::Welford): no stored
//      trajectory vectors — O(1) memory per point regardless of the
//      replication count.  Raw trajectories are opt-in for tests.
//   3. Sequential CI-targeted stopping: replications run in blocks
//      until the 95% half-width of every tracked metric reaches a
//      relative target, so easy points stop early instead of paying the
//      worst point's conservative fixed count.
//   4. One schedule: all (point × block) work items of a round flow
//      through a single sim::parallel_for instead of a pool per point,
//      and per-point contexts (the O(N²) voting table, cost model) are
//      built once per point — not once per trajectory as the seed did.
//
// Results are bitwise deterministic in (options, grid): seeds depend
// only on (point, replication) indices and block partials merge in
// schedule order, so thread count never changes a digit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/params.h"
#include "sim/des.h"
#include "sim/protocol_sim.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace midas::sim {

struct McOptions {
  std::uint64_t base_seed = 0x5EED;

  /// Replication schedule: every point starts with `min_replications`,
  /// then grows in multiples of `block` until converged or capped at
  /// `max_replications`.
  std::size_t min_replications = 64;
  std::size_t max_replications = std::size_t{1} << 20;
  std::size_t block = 64;

  /// Sequential stopping target: converged when the 95% CI half-width
  /// of TTSF and of the cost rate are both <= rel_ci_target * mean.
  /// <= 0 disables adaptive stopping (exactly min_replications run).
  double rel_ci_target = 0.05;

  /// Common random numbers: replication r uses the same substream at
  /// every sweep point.  When false each point gets an independent
  /// substream (keyed by its index).
  bool crn = true;

  /// Global index of the first grid point this engine run covers.  A
  /// shard evaluating points [b, e) of a larger grid passes b so the
  /// independent (non-CRN) substream keys match the full-grid run —
  /// under CRN the key drops the point index and this is irrelevant.
  /// core::SweepEngine::run_mc_shard sets it automatically.
  std::size_t point_stream_offset = 0;

  /// Antithetic pairs: each scheduled replication becomes a PAIR of
  /// trajectories sharing one substream seed — a plain draw stream and
  /// its 1−u flip (sim::UniformStream) — and the engine's sample
  /// statistics (means, CIs, the CI-targeted stopping) run on pair
  /// averages, whose negative within-pair correlation pushes the
  /// estimator variance below the 1/n Monte-Carlo baseline.  Layered
  /// under CRN: pair seeds stay keyed by replication index only, so
  /// contrasts along every grid axis remain variance-reduced as well.
  /// Accepted by every backend — DES grids flip the Gillespie draw
  /// stream, protocol grids the protocol decision stream
  /// (run_protocol_sim's antithetic argument).  With this set,
  /// min/max_replications and block count PAIRS;
  /// McPointResult::replications still reports trajectories (2×).
  bool antithetic = false;

  /// Worker threads for the (point × block) schedule (0 = hardware
  /// concurrency).
  std::size_t threads = 0;

  /// Opt-in raw trajectory capture (tests / variance studies).  Off by
  /// default: summaries stream and nothing is stored per replication.
  bool capture_trajectories = false;

  /// When non-empty, each point also estimates mission reliability
  /// R(t) = P[TTSF > t] at these times (survival indicator means with
  /// CIs) — the simulation cross-check of GcsSpnModel::reliability_at.
  std::vector<double> survival_horizons;

  /// Draw-stream seam for DES grids: when set, run_des builds each
  /// replication's U(0,1) stream through this factory instead of
  /// UniformStream(seed, antithetic).  The factory is keyed exactly
  /// like replication_seed — `stream_key` is the engine's substream id
  /// (0 under CRN, point_stream_offset + point + 1 otherwise) and
  /// `rep` the replication (pair) index — so a factory that derives
  /// its randomisation from (stream_key, rep) inherits CRN semantics
  /// and shard invariance by construction.  The vr subsystem injects
  /// Owen-scrambled Sobol substreams here.  Must be thread-safe
  /// (called concurrently from the engine's workers).  Ignored by
  /// run_protocol.
  std::function<std::unique_ptr<RandomSource>(
      std::uint64_t stream_key, std::size_t rep, bool antithetic)>
      stream_factory;
};

/// Per-point outcome of a grid run.
struct McPointResult {
  /// Sample summaries — over replications, or over pair averages in
  /// antithetic mode (`ttsf.n` then counts pairs).
  Summary ttsf;
  Summary cost_rate;
  /// Raw Welford accumulator states behind `ttsf` / `cost_rate` — the
  /// sharded sweep service serialises THESE (not the derived Summary),
  /// so a shard re-imported elsewhere reproduces its summaries bitwise
  /// and merges associatively with sibling shards.
  WelfordState ttsf_state;
  WelfordState cost_rate_state;
  double p_failure_c1 = 0.0;
  /// Raw trajectory count behind p_failure_c1 (= failures_c1 /
  /// replications).
  std::size_t failures_c1 = 0;
  /// Rare-event-honest interval for the C1-failure proportion: a 95%
  /// Wilson Summary over (failures_c1, replications), flagged
  /// one_sided at 0 or all failures (see sim::binomial_summary).
  /// Derived — recomputed from the raw counts wherever they travel,
  /// never serialised.
  Summary p_failure;
  /// Trajectories simulated for this point (2× `ttsf.n` when
  /// antithetic).
  std::size_t replications = 0;
  /// CI target met before max_replications (vacuously true when
  /// adaptive stopping is disabled).
  bool converged = true;
  /// One Summary per McOptions::survival_horizons entry — a Bernoulli
  /// proportion with a 95% Wilson interval (never zero-width, even
  /// when every replication survives a horizon).
  std::vector<Summary> survival;
  /// Raw survivor counts behind `survival` (per horizon, out of
  /// `replications` trajectories) — serialised by the shard files.
  std::vector<std::size_t> survival_counts;
  /// Filled only when capture_trajectories is set, in replication order.
  std::vector<Trajectory> trajectories;

  // Protocol-sim extras (defaults for DES grids).
  bool keys_always_agreed = true;
  std::size_t timeouts = 0;
};

class MonteCarloEngine {
 public:
  explicit MonteCarloEngine(McOptions opts = {});

  /// DES grid: one result per parameter point.  Per-point contexts
  /// share the process-wide voting-table memo, so a TIDS sweep builds
  /// its table once for the whole grid.
  [[nodiscard]] std::vector<McPointResult> run_des(
      std::span<const core::Params> points);

  /// Single-point convenience.
  [[nodiscard]] McPointResult run_des(const core::Params& point);

  /// Protocol-level grid (packet-level simulator).
  [[nodiscard]] std::vector<McPointResult> run_protocol(
      std::span<const ProtocolSimParams> points);

  /// The seed sample `rep` of sweep point `point` uses — exposed so any
  /// replication is reproducible in isolation with simulate_group /
  /// run_protocol_sim.  In antithetic mode `rep` indexes PAIRS: both
  /// trajectories of pair `rep` share this seed and differ only in the
  /// UniformStream antithetic flag (captured trajectory 2·rep is the
  /// plain member, 2·rep+1 the flipped one).
  [[nodiscard]] std::uint64_t replication_seed(std::size_t point,
                                               std::size_t rep) const;

  struct Stats {
    std::size_t points = 0;        // grid points processed
    std::size_t replications = 0;  // total trajectories simulated
    std::size_t blocks = 0;        // (point × block) work items
    std::size_t rounds = 0;        // parallel_for rounds
    double seconds = 0.0;          // wall clock inside run_*()
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const McOptions& options() const noexcept { return opts_; }

 private:
  /// One replication outcome, normalised across simulators.
  struct Sample {
    Trajectory traj;
    bool keys_ok = true;
    bool timed_out = false;
  };

  /// `sample(point, rep, seed, antithetic)` runs one trajectory;
  /// run_grid calls it once per sample, or twice per pair (plain +
  /// flipped) in antithetic mode.  `seed` is replication_seed(point,
  /// rep); `rep` rides along so stream factories can re-key.
  template <typename SampleFn>
  std::vector<McPointResult> run_grid(std::size_t num_points,
                                      const SampleFn& sample);

  McOptions opts_;
  Stats stats_;
};

}  // namespace midas::sim
