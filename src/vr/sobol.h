// Owen-scrambled Sobol draw streams for randomised quasi-Monte-Carlo
// replication: one Sobol POINT per replication, one DIMENSION per draw.
// A replication's stream therefore walks across the dimensions of its
// point, so the leading draws of every trajectory — the early events
// that decide whether a group survives its opening compromises, which
// carry most of the estimator leverage — are stratified against each
// other across the replication set.
//
// Scrambling is hash-based nested uniform (Owen) scrambling in the
// Laine–Karras/Burley style: each dimension's 32-bit radical-inverse
// value is permuted by a keyed hierarchical hash, which preserves the
// (t,m,s)-net structure while making every coordinate exactly U(0,1).
// Distinct keys give statistically independent randomisations, so the
// vr engine runs R independently keyed replicate groups and reports a
// Student-t CI over replicate means — the standard randomised-QMC
// variance estimate.
//
// The tabulated direction numbers cover the leading
// kSobolTabulatedDims dimensions (the Joe–Kuo D6 table prefix); draws
// past the table fall back to keyed counter hashing — i.i.d. uniforms,
// i.e. plain Monte Carlo for the deep tail of long trajectories.  The
// estimator stays unbiased either way; the low-discrepancy structure
// is spent where it pays.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/rng.h"

namespace midas::vr {

/// Dimensions with real Sobol direction numbers; higher draw indices
/// use keyed-hash padding.
inline constexpr std::uint32_t kSobolTabulatedDims = 13;

/// Raw (unscrambled) 32-bit Sobol radical-inverse value of point
/// `index` in dimension `dim` (dim < kSobolTabulatedDims).  Exposed
/// for tests.
[[nodiscard]] std::uint32_t sobol_raw(std::uint32_t index,
                                      std::uint32_t dim);

/// Nested uniform (Owen-style) scramble of a 32-bit fixed-point value
/// under `seed` — a bijection on [0, 2^32) for every seed, applied in
/// reversed-bit (digit-hierarchy) order.  Exposed for tests.
[[nodiscard]] std::uint32_t owen_scramble(std::uint32_t value,
                                          std::uint32_t seed);

/// The Sobol replication stream: RandomSource whose draw d yields the
/// Owen-scrambled coordinate d of Sobol point `index` under
/// `scramble_key` (per-dimension seeds are derived from the key, so
/// one 64-bit key randomises the whole sequence).  Deterministic in
/// (scramble_key, index, draw count) — thread count, shard layout and
/// construction order cannot change a digit.
class SobolStream final : public sim::RandomSource {
 public:
  SobolStream(std::uint64_t scramble_key, std::uint32_t index,
              bool antithetic = false)
      : key_(scramble_key), index_(index), antithetic_(antithetic) {}

  [[nodiscard]] std::uint32_t draws() const noexcept { return dim_; }

 protected:
  double next() override;

 private:
  std::uint64_t key_;
  std::uint32_t index_;
  std::uint32_t dim_ = 0;
  bool antithetic_ = false;
};

}  // namespace midas::vr
