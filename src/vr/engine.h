// The variance-reduction estimation layer: sits between the experiment
// API (core::DesBackend) and sim::MonteCarloEngine, running whichever
// estimators the `spec.mc.vr` block enables ALONGSIDE the plain
// replication pass — the plain pass's results stay bitwise identical
// whether or not this layer runs, because every estimator here draws
// from its own tagged seed domain (splitmix64(base_seed ^ tag)) and
// never touches the plain streams.
//
// Determinism contract (matching the engine's): results depend only on
// (options, grid, base seed, point_stream_offset) — never on thread
// count — and a shard evaluating a sub-range with the offset set
// reproduces the full-grid numbers for its points.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/params.h"
#include "sim/mc_engine.h"
#include "sim/stats.h"
#include "vr/control_variate.h"
#include "vr/options.h"
#include "vr/splitting.h"

namespace midas::vr {

/// Randomised-QMC result for one point: the mean/CI over R
/// independently scrambled replicate groups.
struct SobolResult {
  std::size_t replicates = 0;
  std::size_t samples_per_replicate = 0;
  /// Student-t summaries OVER REPLICATE MEANS (n = replicates); the
  /// QMC point sets within a group are not i.i.d., so only the
  /// randomisation level carries a valid variance estimate.
  sim::Summary ttsf;
  sim::Summary cost_rate;
  /// Raw replicate means (serialised so the summaries rebuild bitwise
  /// after a round-trip).
  std::vector<double> ttsf_means;
  std::vector<double> cost_rate_means;
};

/// Per-point outcome of the vr layer; `has_*` mirrors which estimators
/// the options enabled (all false = the layer did not run).
struct VrPointResult {
  bool has_sobol = false;
  bool has_cv = false;
  bool has_splitting = false;
  SobolResult sobol;
  CvResult cv;
  SplittingResult splitting;
};

/// Runs the enabled estimators over a DES parameter grid.  `mc` must be
/// the SAME engine options the plain replication pass used (including
/// the shard-effective point_stream_offset), so the vr seed domains and
/// stream keys line up with the full-grid run.  Throws what the
/// underlying engines throw (invalid params, analytic-incompatible
/// models for cv).
[[nodiscard]] std::vector<VrPointResult> run_vr(
    const VrOptions& vr, const sim::McOptions& mc,
    std::span<const core::Params> points);

}  // namespace midas::vr
