// Declarative configuration of the variance-reduction subsystem — the
// `spec.mc.vr` block.  This header is deliberately dependency-free
// (standard library only): core::ExperimentSpec embeds a VrOptions by
// value and sim/vr code consumes it, so it must sit below both layers.
//
// Three estimators, each independently optional:
//   sobol      — Owen-scrambled Sobol quasi-random replication streams
//                injected through sim::McOptions::stream_factory, with
//                R independently randomised replicate groups so the CI
//                (over replicate means) stays statistically valid.
//   cv         — analytic control variates: regress DES TTSF/cost on
//                the conditional-expectation controls accumulated on
//                every trajectory (sim::Trajectory::expected_dwell /
//                expected_cost), whose exact means the analytic SPN
//                backend supplies.
//   splitting  — multilevel splitting on the undetected-compromise
//                count for rare failure-tail probabilities, with
//                trajectory cloning at level entrances.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace midas::vr {

/// Owen-scrambled Sobol substreams (randomised quasi-Monte-Carlo).
struct SobolOptions {
  bool enabled = false;
  /// Independent randomisation groups: each replicate re-scrambles the
  /// sequence under a fresh key and runs a full fixed-budget pass; the
  /// reported CI is the Student-t interval over replicate means (plain
  /// QMC has no within-run variance estimate).
  std::size_t replicates = 8;
  /// Replications per replicate group (the Sobol point index runs
  /// 0..samples_per_replicate-1 within a group).
  std::size_t samples_per_replicate = 256;
};

/// Analytic control variates on the DES TTSF / accumulated-cost
/// estimators.
struct ControlVariateOptions {
  bool enabled = false;
  /// Leading replications (pairs in antithetic mode) used only to
  /// estimate the control coefficient β = Cov(Y,C)/Var(C); the
  /// CV-adjusted mean and its CI come from the remaining replications,
  /// so β's estimation noise never contaminates the interval.
  std::size_t pilot = 128;
  /// Total replications (pairs in antithetic mode), pilot included.
  std::size_t replications = 1024;
};

/// Multilevel splitting on the compromise count.
struct SplittingOptions {
  bool enabled = false;
  /// Which absorbing failure mode is the rare event: "c1" (data leak)
  /// or "c2" (Byzantine fraction crossed).
  std::string target = "c1";
  /// Strictly increasing undetected-compromise thresholds; entering
  /// level i means the trajectory first reached ucm >= levels[i].
  std::vector<std::int64_t> levels;
  /// "fixed_effort": every stage re-runs exactly `effort` trajectories
  /// resampled (with replacement) from the previous level's entrance
  /// pool — deterministic work, slightly conservative.
  /// "fixed_splitting": every entrance state spawns `splitting_factor`
  /// clones — an exactly unbiased product estimator with random work.
  std::string scheme = "fixed_effort";
  /// Trajectories per stage (fixed_effort) / at stage 0 (both schemes).
  std::size_t effort = 256;
  /// Clones per entrance state (fixed_splitting only).
  std::size_t splitting_factor = 4;
  /// Independent replicates of the whole multilevel pass; the reported
  /// probability CI is the Student-t interval over replicate estimates.
  std::size_t replicates = 8;
};

/// The `spec.mc.vr` block.  Default-constructed = subsystem off, in
/// which case the experiment pipeline (and its serialised artifacts)
/// are bitwise identical to a build without the subsystem.
struct VrOptions {
  SobolOptions sobol;
  ControlVariateOptions cv;
  SplittingOptions splitting;

  /// True when any estimator is enabled — the spec serialiser emits the
  /// "vr" key only then, keeping pre-existing spec bytes stable.
  [[nodiscard]] bool any() const noexcept {
    return sobol.enabled || cv.enabled || splitting.enabled;
  }

  /// Structural validation; throws std::invalid_argument with messages
  /// rooted at `path` (e.g. "spec.mc.vr") naming the offending field —
  /// "spec.mc.vr.splitting.levels[2]: threshold 7 not increasing".
  /// Cross-field rules that need the rest of the spec (backend choice,
  /// model compatibility, antithetic exclusion) live in
  /// core::ExperimentSpec::validate.
  void validate(const std::string& path) const;
};

}  // namespace midas::vr
