// Analytic control variates for the DES estimators.  Every trajectory
// already accumulates two conditional-expectation controls for free
// (sim::Trajectory::expected_dwell / expected_cost — see des.h): given
// the realised jump path, expected_dwell is E[TTSF | path] and
// expected_cost is E[accumulated cost | path], and their unconditional
// means are EXACTLY the analytic backend's MTTSF and Ĉtotal·MTTSF in
// the time-homogeneous model.  The controls therefore carry the entire
// jump-path variance; regressing the raw estimators on them removes
// it, leaving only the exponential holding-time noise — a variance
// reduction that grows with the number of events per trajectory.
//
// Protocol: a pilot block estimates β = Cov(Y,C)/Var(C) through a
// sim::RegressionWelford; the CV-adjusted estimator
//   Y_cv = Y − β·(C − E[C])
// and its Student-t CI then run on the REMAINING replications only, so
// the interval is exactly the i.i.d. sample CI of a fixed linear
// combination (β's estimation noise never touches it).  Antithetic
// mode composes transparently: both Y and C are pair-averaged before
// they reach either accumulator.
#pragma once

#include <cstddef>

#include "sim/stats.h"

namespace midas::vr {

/// One metric's control-variate outcome.
struct CvMetric {
  /// Pilot-estimated control coefficient (theoretical optimum is 1 for
  /// these conditional-expectation controls).
  double beta = 0.0;
  /// Exact analytic control mean E[C] (MTTSF, or Ĉtotal·MTTSF).
  double control_mean = 0.0;
  /// Pilot Pearson correlation of (Y, C) — the achievable variance
  /// factor is 1 − ρ² at the optimal β.
  double correlation = 0.0;
  /// Raw accumulator states of the estimation block — the serialised
  /// form (the derived fields below rebuild from these bitwise, the
  /// same raw-states-only convention as McPointResult).
  sim::WelfordState plain_state;
  sim::WelfordState adjusted_state;
  /// Unadjusted Y over the estimation block (the plain-MC comparator
  /// on the SAME draws — work-identical by construction).
  sim::Summary plain;
  /// Y − β(C − E[C]) over the estimation block.
  sim::Summary adjusted;
  /// plain.variance / adjusted.variance; the work-normalised
  /// efficiency factor, since the controls accumulate for free and
  /// both estimators consume identical trajectories.
  double variance_ratio = 0.0;

  /// Rebuilds plain/adjusted/variance_ratio from the raw states
  /// (degenerate zero-variance pairs report ratio 1, a variance-only
  /// plain one infinity).
  void finalize();
};

/// Per-point control-variate result.
struct CvResult {
  /// Pilot samples (pairs in antithetic mode) spent on β.
  std::size_t pilot = 0;
  /// Total trajectories simulated (2× samples when antithetic).
  std::size_t replications = 0;
  CvMetric ttsf;  // Y = TTSF,             C = expected_dwell
  CvMetric cost;  // Y = accumulated cost, C = expected_cost
};

}  // namespace midas::vr
