#include "vr/sobol.h"

#include <array>
#include <cmath>

namespace midas::vr {

namespace {

/// Joe–Kuo D6 table prefix (new-joe-kuo-6): primitive polynomial
/// degree s, coefficient bits a, and the s initial direction integers
/// m_j (odd, m_j < 2^j).  Dimension 0 is the van der Corput sequence
/// (all m_j = 1) and needs no row.
struct JoeKuoRow {
  std::uint32_t s;
  std::uint32_t a;
  std::array<std::uint32_t, 5> m;
};

constexpr std::array<JoeKuoRow, kSobolTabulatedDims - 1> kJoeKuo = {{
    {1, 0, {1, 0, 0, 0, 0}},    // d = 2
    {2, 1, {1, 3, 0, 0, 0}},    // d = 3
    {3, 1, {1, 3, 1, 0, 0}},    // d = 4
    {3, 2, {1, 1, 1, 0, 0}},    // d = 5
    {4, 1, {1, 1, 3, 3, 0}},    // d = 6
    {4, 4, {1, 3, 5, 13, 0}},   // d = 7
    {5, 2, {1, 1, 5, 5, 17}},   // d = 8
    {5, 4, {1, 1, 5, 5, 5}},    // d = 9
    {5, 7, {1, 1, 7, 11, 19}},  // d = 10
    {5, 11, {1, 1, 5, 1, 1}},   // d = 11
    {5, 13, {1, 1, 1, 3, 11}},  // d = 12
    {5, 14, {1, 3, 5, 5, 31}},  // d = 13
}};

constexpr std::uint32_t kBits = 32;

/// V[dim][j]: direction number j of dimension dim, as a 32-bit
/// fixed-point fraction (m_j scaled by 2^(32-j)), expanded from the
/// table by the standard Joe–Kuo recurrence
///   v_j = v_{j-s} ^ (v_{j-s} >> s) ^ a_1 v_{j-1} ^ ... ^ a_{s-1}
///   v_{j-s+1}.
struct DirectionTable {
  std::uint32_t v[kSobolTabulatedDims][kBits];

  DirectionTable() {
    for (std::uint32_t j = 0; j < kBits; ++j) {
      v[0][j] = 1u << (kBits - 1 - j);  // van der Corput
    }
    for (std::uint32_t d = 1; d < kSobolTabulatedDims; ++d) {
      const JoeKuoRow& row = kJoeKuo[d - 1];
      const std::uint32_t s = row.s;
      for (std::uint32_t j = 0; j < kBits; ++j) {
        if (j < s) {
          v[d][j] = row.m[j] << (kBits - 1 - j);
          continue;
        }
        std::uint32_t x = v[d][j - s] ^ (v[d][j - s] >> s);
        for (std::uint32_t k = 1; k < s; ++k) {
          if ((row.a >> (s - 1 - k)) & 1u) x ^= v[d][j - k];
        }
        v[d][j] = x;
      }
    }
  }
};

const DirectionTable& direction_table() {
  static const DirectionTable table;
  return table;
}

/// Laine–Karras style hash permutation of the reversed digit string —
/// a bijection for every seed whose avalanche cascades strictly from
/// coarse digits to fine ones once sandwiched between bit reversals.
std::uint32_t laine_karras_permutation(std::uint32_t x,
                                       std::uint32_t seed) {
  x += seed;
  x ^= x * 0x6c50b47cu;
  x ^= x * 0xb82f1e52u;
  x ^= x * 0xc7afe638u;
  x ^= x * 0x8d22f6e6u;
  return x;
}

/// 32-bit mix of a 64-bit key (SplitMix64 finaliser, truncated).
std::uint32_t mix32(std::uint64_t x) {
  return static_cast<std::uint32_t>(sim::splitmix64(x) >> 32);
}

}  // namespace

std::uint32_t sobol_raw(std::uint32_t index, std::uint32_t dim) {
  const DirectionTable& table = direction_table();
  std::uint32_t result = 0;
  for (std::uint32_t j = 0; index != 0; index >>= 1, ++j) {
    if (index & 1u) result ^= table.v[dim][j];
  }
  return result;
}

std::uint32_t owen_scramble(std::uint32_t value, std::uint32_t seed) {
  // Reverse bits → permute → reverse back: the hash then acts on the
  // digit hierarchy (most significant digit first), which is exactly a
  // nested uniform scramble.
  std::uint32_t r = value;
  r = ((r & 0x55555555u) << 1) | ((r >> 1) & 0x55555555u);
  r = ((r & 0x33333333u) << 2) | ((r >> 2) & 0x33333333u);
  r = ((r & 0x0F0F0F0Fu) << 4) | ((r >> 4) & 0x0F0F0F0Fu);
  r = ((r & 0x00FF00FFu) << 8) | ((r >> 8) & 0x00FF00FFu);
  r = (r << 16) | (r >> 16);
  r = laine_karras_permutation(r, seed);
  r = ((r & 0x55555555u) << 1) | ((r >> 1) & 0x55555555u);
  r = ((r & 0x33333333u) << 2) | ((r >> 2) & 0x33333333u);
  r = ((r & 0x0F0F0F0Fu) << 4) | ((r >> 4) & 0x0F0F0F0Fu);
  r = ((r & 0x00FF00FFu) << 8) | ((r >> 8) & 0x00FF00FFu);
  r = (r << 16) | (r >> 16);
  return r;
}

double SobolStream::next() {
  const std::uint32_t d = dim_++;
  double u;
  if (d < kSobolTabulatedDims) {
    const std::uint32_t seed =
        mix32(key_ ^ (0x9E3779B97F4A7C15ull + d));
    const std::uint32_t v = owen_scramble(sobol_raw(index_, d), seed);
    // Centre of the 2^-32 cell: u lands strictly inside (0,1).
    u = (static_cast<double>(v) + 0.5) * 0x1p-32;
  } else {
    // Past the tabulated prefix: keyed counter hash — i.i.d. uniforms,
    // still deterministic in (key, index, d).
    const std::uint64_t h = sim::splitmix64(
        key_ ^ sim::splitmix64((static_cast<std::uint64_t>(index_) << 32) |
                               d));
    u = (static_cast<double>(h >> 11) + 0.5) * 0x1p-53;
  }
  if (antithetic_) u = 1.0 - u;
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return u;
}

}  // namespace midas::vr
