// Multilevel splitting for rare failure-tail probabilities.  The
// importance function is the undetected-compromise count UCm (the
// quantity both failure modes climb through: C2 is crossing the
// Byzantine fraction, and the C1 leak rate is proportional to UCm), so
// level i is "the trajectory first reached ucm >= levels[i]".
//
// The estimator decomposes by the highest level a trajectory enters:
//   P(target) = Σ_j (Π_{i<j} p_i) · c_j
// where p_i = P(enter level i+1 | entered level i) and c_j =
// P(absorbed by the target mode before entering level j+1 | entered
// level j).  Stage j simulates continuations from the entrance states
// of level j (stage 0 from the initial state) through the step-wise
// sim::GroupSimulator, snapshotting at upcrossings:
//   fixed_effort    — exactly `effort` continuations per stage,
//                     resampled with replacement from the entrance
//                     pool (deterministic work at every stage);
//   fixed_splitting — every entrance state spawns `splitting_factor`
//                     clones, each carrying weight w/factor; the
//                     weighted sum of target absorptions is the
//                     exactly unbiased product estimator.
// Either way the whole pass repeats `replicates` times under
// independent seeds and the reported probability is the Student-t
// interval over replicate estimates — valid regardless of the
// within-pass dependence splitting introduces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/params.h"
#include "sim/stats.h"
#include "vr/options.h"

namespace midas::vr {

/// Per-level conditional estimates, averaged over replicates.
struct SplittingLevel {
  std::int64_t threshold = 0;
  /// Mean conditional passage probability p_i into this level.
  double p_up = 0.0;
  /// Mean conditional target absorption c_j at the stage BELOW this
  /// level (before entering it).
  double p_absorb = 0.0;
};

struct SplittingResult {
  std::string target;  // "c1" | "c2"
  std::string scheme;  // "fixed_effort" | "fixed_splitting"
  std::size_t replicates = 0;
  /// Stage-0 trajectories per replicate (echoes the options; the
  /// all-zero bound below needs it to rebuild after a round-trip).
  std::size_t effort = 0;
  /// Total trajectory segments simulated across all replicates/stages
  /// — the work measure for normalised efficiency comparisons.
  std::size_t trajectories = 0;
  /// P(absorbed by target): mean and Student-t CI over the replicate
  /// estimates.  When every replicate returns exactly 0 the Summary is
  /// flagged one_sided and its half-width is the conservative
  /// rule-of-three upper bound 3/n over the replicates' stage-0
  /// trajectories (splitting oversamples the tail, so the plain-MC
  /// bound is strictly conservative here) — never a misleading ±0.
  sim::Summary probability;
  /// The raw replicate estimates (serialised, so merged/round-tripped
  /// results rebuild the CI bitwise).
  std::vector<double> estimates;
  /// One entry per configured level, plus the final absorption stage's
  /// c_L folded into the estimate (not listed: it has no threshold).
  std::vector<SplittingLevel> levels;
};

/// The probability Summary over replicate estimates: Student-t, except
/// that an all-zero estimate set is flagged one_sided with the
/// conservative rule-of-three half-width 3/`stage0_trials` (see
/// SplittingResult::probability).  Shared by the runner and the result
/// codec so round-tripped results rebuild the interval bitwise.
[[nodiscard]] sim::Summary splitting_probability_summary(
    std::span<const double> estimates, std::size_t stage0_trials);

/// Runs the multilevel pass for one parameter point.  `seed_base` must
/// be unique per (experiment, point) — the caller derives it from the
/// engine base seed and the point's GLOBAL grid index, so shards
/// reproduce the full-grid estimates.  Deterministic in (options,
/// params, seed_base): replicates are seeded independently and merged
/// in index order, so `threads` never changes a digit.
[[nodiscard]] SplittingResult run_splitting(const SplittingOptions& options,
                                            const core::Params& params,
                                            std::uint64_t seed_base,
                                            std::size_t threads = 0);

}  // namespace midas::vr
