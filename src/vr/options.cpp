#include "vr/options.h"

#include <stdexcept>

namespace midas::vr {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& msg) {
  throw std::invalid_argument(path + ": " + msg);
}

}  // namespace

void VrOptions::validate(const std::string& path) const {
  if (sobol.enabled) {
    const std::string p = path + ".sobol";
    if (sobol.replicates < 2) {
      fail(p + ".replicates",
           "at least 2 randomised replicates are required for a CI");
    }
    if (sobol.samples_per_replicate == 0) {
      fail(p + ".samples_per_replicate", "must be positive");
    }
  }
  if (cv.enabled) {
    const std::string p = path + ".cv";
    if (cv.pilot < 2) {
      fail(p + ".pilot",
           "at least 2 pilot replications are needed to estimate beta");
    }
    if (cv.replications < cv.pilot + 2) {
      fail(p + ".replications",
           "must exceed pilot by at least 2 (the CV-adjusted CI runs on "
           "the post-pilot replications)");
    }
  }
  if (splitting.enabled) {
    const std::string p = path + ".splitting";
    if (splitting.target != "c1" && splitting.target != "c2") {
      fail(p + ".target", "must be \"c1\" or \"c2\", got \"" +
                              splitting.target + "\"");
    }
    if (splitting.scheme != "fixed_effort" &&
        splitting.scheme != "fixed_splitting") {
      fail(p + ".scheme",
           "must be \"fixed_effort\" or \"fixed_splitting\", got \"" +
               splitting.scheme + "\"");
    }
    if (splitting.levels.empty()) {
      fail(p + ".levels", "at least one threshold is required");
    }
    for (std::size_t i = 0; i < splitting.levels.size(); ++i) {
      if (splitting.levels[i] < 1) {
        fail(p + ".levels[" + std::to_string(i) + "]",
             "threshold " + std::to_string(splitting.levels[i]) +
                 " must be a positive compromise count");
      }
      if (i > 0 && splitting.levels[i] <= splitting.levels[i - 1]) {
        fail(p + ".levels[" + std::to_string(i) + "]",
             "threshold " + std::to_string(splitting.levels[i]) +
                 " not increasing");
      }
    }
    if (splitting.effort == 0) {
      fail(p + ".effort", "must be positive");
    }
    if (splitting.scheme == "fixed_splitting" &&
        splitting.splitting_factor == 0) {
      fail(p + ".splitting_factor", "must be positive");
    }
    if (splitting.replicates < 2) {
      fail(p + ".replicates",
           "at least 2 independent replicates are required for a CI");
    }
  }
}

}  // namespace midas::vr
