#include "vr/splitting.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/des.h"
#include "sim/rng.h"
#include "sim/thread_pool.h"

namespace midas::vr {

namespace {

using Snapshot = sim::GroupSimulator::Snapshot;
using Status = sim::GroupSimulator::Status;

bool is_target(Status st, bool target_c1) {
  return target_c1 ? st == Status::FailedC1 : st == Status::FailedC2;
}

/// One replicate's raw outcome, merged across replicates in index
/// order.
struct ReplicateOutcome {
  double estimate = 0.0;
  std::size_t trajectories = 0;
  std::vector<double> p_up;      // per level: conditional passage
  std::vector<double> p_absorb;  // per stage (levels + 1): conditional
                                 // target absorption
};

/// Runs one continuation from `start` until absorption or (when
/// `threshold` >= 0) the first entrance past it.  Returns the terminal
/// status, or Status::Running on an entrance with the entrance state
/// appended to `next_pool`.  A start state already past the threshold
/// (batch attacks can jump several levels in one event) is an
/// immediate entrance consuming no draws.
Status run_segment(sim::GroupSimulator& sim, const Snapshot& start,
                   std::int64_t threshold, sim::RandomSource& draw,
                   std::vector<Snapshot>* next_pool) {
  sim.restore(start);
  if (threshold >= 0 && sim.status() == Status::Running &&
      sim.compromised() >= threshold) {
    next_pool->push_back(start);
    return Status::Running;
  }
  while (true) {
    const Status st = sim.step(draw);
    if (st != Status::Running) return st;
    if (threshold >= 0 && sim.compromised() >= threshold) {
      next_pool->push_back(sim.snapshot());
      return Status::Running;
    }
  }
}

/// One full multilevel pass under replicate seed base `seed_r`.
/// Streams: kind 0 = the entrance-pool resampling stream, kind 1 =
/// per-segment simulation streams (one fresh stream per continuation,
/// numbered sequentially, so clones of one entrance state evolve
/// independently).
ReplicateOutcome run_replicate(const SplittingOptions& opt,
                               const core::Params& params,
                               const sim::DesContext& ctx,
                               std::uint64_t seed_r) {
  sim::GroupSimulator sim(params, ctx);
  const Snapshot initial = sim.snapshot();
  const bool c1 = opt.target == "c1";
  const bool fixed_effort = opt.scheme == "fixed_effort";
  const std::size_t num_levels = opt.levels.size();

  sim::UniformStream resample(sim::derive_seed2(seed_r, 0, 0));
  std::uint64_t seq = 0;
  auto segment_stream = [&] {
    return sim::UniformStream(sim::derive_seed2(seed_r, 1, seq++));
  };

  ReplicateOutcome out;
  out.p_up.assign(num_levels, 0.0);
  out.p_absorb.assign(num_levels + 1, 0.0);

  std::vector<Snapshot> pool;  // entrance states of the current level
  double path_weight = 1.0;    // Π p̂_i so far (fixed_effort)

  for (std::size_t stage = 0; stage <= num_levels; ++stage) {
    const std::int64_t threshold =
        stage < num_levels ? opt.levels[stage] : -1;
    std::size_t runs;
    if (stage == 0) {
      runs = opt.effort;
    } else if (pool.empty() || path_weight <= 0.0) {
      break;  // nothing reached this level — later stages contribute 0
    } else {
      runs = fixed_effort ? opt.effort
                          : pool.size() * opt.splitting_factor;
    }

    std::vector<Snapshot> next_pool;
    std::size_t n_up = 0, n_target = 0;
    for (std::size_t t = 0; t < runs; ++t) {
      const Snapshot* start = &initial;
      if (stage > 0) {
        if (fixed_effort) {
          // Resample with replacement from the entrance pool.
          const double u = resample();
          auto idx = static_cast<std::size_t>(
              u * static_cast<double>(pool.size()));
          if (idx >= pool.size()) idx = pool.size() - 1;
          start = &pool[idx];
        } else {
          // Deterministic cloning: splitting_factor runs per entrance.
          start = &pool[t / opt.splitting_factor];
        }
      }
      sim::UniformStream draw = segment_stream();
      ++out.trajectories;
      const Status st = run_segment(sim, *start, threshold, draw,
                                    &next_pool);
      if (st == Status::Running) {
        ++n_up;
      } else if (is_target(st, c1)) {
        ++n_target;
      }
    }

    const double nd = static_cast<double>(runs);
    const double c_hat = static_cast<double>(n_target) / nd;
    out.p_absorb[stage] = c_hat;
    if (fixed_effort) {
      out.estimate += path_weight * c_hat;
    } else {
      // Every stage-j trajectory carries weight 1/(effort·factor^j):
      // runs = pool·factor and pool entrances were counted at the
      // previous stage's weight, so the per-stage weight telescopes to
      // exactly that product.
      double w = 1.0 / static_cast<double>(opt.effort);
      for (std::size_t i = 0; i < stage; ++i) {
        w /= static_cast<double>(opt.splitting_factor);
      }
      out.estimate += static_cast<double>(n_target) * w;
    }
    if (stage < num_levels) {
      const double p_hat = static_cast<double>(n_up) / nd;
      out.p_up[stage] = p_hat;
      path_weight *= p_hat;
      pool = std::move(next_pool);
    }
  }
  return out;
}

}  // namespace

sim::Summary splitting_probability_summary(
    std::span<const double> estimates, std::size_t stage0_trials) {
  sim::Summary s = sim::summarize(estimates);
  bool all_zero = true;
  for (const double e : estimates) all_zero = all_zero && e == 0.0;
  if (!estimates.empty() && all_zero) {
    // No target absorption anywhere: a symmetric ±0 interval would be
    // dishonest.  Report the conservative rule-of-three bound over the
    // stage-0 trials (splitting only ever oversamples the tail, so the
    // plain-MC bound holds a fortiori) and flag it one-sided.
    s.one_sided = true;
    s.ci_half_width = sim::rule_of_three_upper(stage0_trials);
  }
  return s;
}

SplittingResult run_splitting(const SplittingOptions& options,
                              const core::Params& params,
                              std::uint64_t seed_base,
                              std::size_t threads) {
  const sim::DesContext ctx(params);

  std::vector<ReplicateOutcome> outcomes(options.replicates);
  sim::parallel_for(
      options.replicates,
      [&](std::size_t r) {
        outcomes[r] = run_replicate(options, params, ctx,
                                    sim::derive_seed(seed_base, r));
      },
      threads);

  SplittingResult res;
  res.target = options.target;
  res.scheme = options.scheme;
  res.replicates = options.replicates;
  res.effort = options.effort;
  res.estimates.reserve(options.replicates);
  res.levels.resize(options.levels.size());
  const double rn = static_cast<double>(options.replicates);
  for (std::size_t i = 0; i < options.levels.size(); ++i) {
    res.levels[i].threshold = options.levels[i];
  }
  for (const ReplicateOutcome& o : outcomes) {  // merged in index order
    res.trajectories += o.trajectories;
    res.estimates.push_back(o.estimate);
    for (std::size_t i = 0; i < res.levels.size(); ++i) {
      res.levels[i].p_up += o.p_up[i] / rn;
      res.levels[i].p_absorb += o.p_absorb[i] / rn;
    }
  }
  res.probability = splitting_probability_summary(
      res.estimates, options.replicates * options.effort);
  return res;
}

}  // namespace midas::vr
