#include "vr/control_variate.h"

#include <limits>

namespace midas::vr {

void CvMetric::finalize() {
  plain = sim::Welford::from_state(plain_state).summary();
  adjusted = sim::Welford::from_state(adjusted_state).summary();
  if (adjusted.variance > 0.0) {
    variance_ratio = plain.variance / adjusted.variance;
  } else if (plain.variance > 0.0) {
    variance_ratio = std::numeric_limits<double>::infinity();
  } else {
    variance_ratio = 1.0;  // both degenerate: no reduction, no loss
  }
}

}  // namespace midas::vr
