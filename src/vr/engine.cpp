#include "vr/engine.h"

#include <algorithm>
#include <memory>

#include "core/gcs_spn_model.h"
#include "sim/rng.h"
#include "vr/sobol.h"

namespace midas::vr {

namespace {

// Seed-domain tags: every estimator derives its base seed as
// splitmix64(mc.base_seed ^ tag), so no vr stream can collide with the
// plain pass (stream 0/point streams of the raw base seed) or with a
// sibling estimator.
constexpr std::uint64_t kCvTag = 0xC0FFEE0CF01D5EEDull;
constexpr std::uint64_t kSobolTag = 0x50B0150B015EED00ull;
constexpr std::uint64_t kSplitTag = 0x5924977165EED000ull;

/// Extracts sample k of a captured trajectory list: the trajectory
/// itself, or the antithetic pair average of (2k, 2k+1) — both the
/// estimator Y and the control C are averaged, which keeps the CV
/// identity E[C] exact and the pair correlation inside one sample.
struct CvSample {
  double ttsf, dwell, cost, ecost;
};

CvSample cv_sample(const std::vector<sim::Trajectory>& t, std::size_t k,
                   bool antithetic) {
  if (!antithetic) {
    return {t[k].ttsf, t[k].expected_dwell, t[k].accumulated_cost,
            t[k].expected_cost};
  }
  const sim::Trajectory& a = t[2 * k];
  const sim::Trajectory& b = t[2 * k + 1];
  return {0.5 * (a.ttsf + b.ttsf),
          0.5 * (a.expected_dwell + b.expected_dwell),
          0.5 * (a.accumulated_cost + b.accumulated_cost),
          0.5 * (a.expected_cost + b.expected_cost)};
}

CvMetric reduce_cv_metric(const std::vector<double>& y,
                          const std::vector<double>& c,
                          std::size_t pilot, double control_mean) {
  CvMetric m;
  m.control_mean = control_mean;
  sim::RegressionWelford reg;
  for (std::size_t k = 0; k < pilot; ++k) reg.push(y[k], c[k]);
  m.beta = reg.beta();
  m.correlation = reg.correlation();
  sim::Welford plain, adjusted;
  for (std::size_t k = pilot; k < y.size(); ++k) {
    plain.push(y[k]);
    adjusted.push(y[k] - m.beta * (c[k] - control_mean));
  }
  m.plain_state = plain.state();
  m.adjusted_state = adjusted.state();
  m.finalize();
  return m;
}

void run_cv_all(const ControlVariateOptions& cv, const sim::McOptions& mc,
                std::span<const core::Params> points,
                std::vector<VrPointResult>& out) {
  sim::McOptions opts = mc;
  opts.base_seed = sim::splitmix64(mc.base_seed ^ kCvTag);
  opts.min_replications = cv.replications;
  opts.max_replications = cv.replications;
  opts.block = std::min(mc.block, cv.replications);
  opts.rel_ci_target = 0.0;  // fixed budget
  opts.capture_trajectories = true;
  opts.survival_horizons.clear();
  opts.stream_factory = nullptr;
  sim::MonteCarloEngine engine(opts);
  const auto results = engine.run_des(points);

  for (std::size_t p = 0; p < points.size(); ++p) {
    // The exact control means come from the analytic backend:
    // E[expected_dwell] = MTTSF and E[expected_cost] = Ĉtotal·MTTSF
    // (accumulated cost to absorption) — identities of the
    // time-homogeneous CTMC that spec validation already guarantees.
    const core::Evaluation exact =
        core::GcsSpnModel(points[p]).evaluate();
    const auto& trajs = results[p].trajectories;
    const std::size_t n = opts.antithetic ? trajs.size() / 2 : trajs.size();
    std::vector<double> y_t(n), c_t(n), y_c(n), c_c(n);
    for (std::size_t k = 0; k < n; ++k) {
      const CvSample s = cv_sample(trajs, k, opts.antithetic);
      y_t[k] = s.ttsf;
      c_t[k] = s.dwell;
      y_c[k] = s.cost;
      c_c[k] = s.ecost;
    }
    const std::size_t pilot = std::min(cv.pilot, n >= 2 ? n - 2 : 0);
    CvResult& r = out[p].cv;
    out[p].has_cv = true;
    r.pilot = pilot;
    r.replications = trajs.size();
    r.ttsf = reduce_cv_metric(y_t, c_t, pilot, exact.mttsf);
    r.cost = reduce_cv_metric(y_c, c_c, pilot, exact.ctotal * exact.mttsf);
  }
}

void run_sobol_all(const SobolOptions& so, const sim::McOptions& mc,
                   std::span<const core::Params> points,
                   std::vector<VrPointResult>& out) {
  const std::uint64_t base = sim::splitmix64(mc.base_seed ^ kSobolTag);
  std::vector<std::vector<double>> ttsf_means(points.size());
  std::vector<std::vector<double>> cost_means(points.size());

  for (std::size_t group = 0; group < so.replicates; ++group) {
    sim::McOptions opts = mc;
    opts.base_seed = base;
    opts.min_replications = so.samples_per_replicate;
    opts.max_replications = so.samples_per_replicate;
    opts.block = std::min(mc.block, so.samples_per_replicate);
    opts.rel_ci_target = 0.0;  // QMC needs the full fixed point set
    opts.antithetic = false;   // spec validation enforces this
    opts.capture_trajectories = false;
    opts.survival_horizons.clear();
    // Replication rep of stream key k draws Sobol point rep under a
    // scramble key derived from (group, k): the key inherits the
    // engine's CRN/shard-offset stream semantics, and each group is an
    // independent randomisation of the same point set.
    const std::uint64_t group_key = sim::derive_seed(base, group);
    opts.stream_factory = [group_key](std::uint64_t stream_key,
                                      std::size_t rep, bool antithetic)
        -> std::unique_ptr<sim::RandomSource> {
      return std::make_unique<SobolStream>(
          sim::derive_seed2(group_key, stream_key, 0),
          static_cast<std::uint32_t>(rep), antithetic);
    };
    sim::MonteCarloEngine engine(opts);
    const auto results = engine.run_des(points);
    for (std::size_t p = 0; p < points.size(); ++p) {
      ttsf_means[p].push_back(results[p].ttsf.mean);
      cost_means[p].push_back(results[p].cost_rate.mean);
    }
  }

  for (std::size_t p = 0; p < points.size(); ++p) {
    SobolResult& s = out[p].sobol;
    out[p].has_sobol = true;
    s.replicates = so.replicates;
    s.samples_per_replicate = so.samples_per_replicate;
    s.ttsf_means = ttsf_means[p];
    s.cost_rate_means = cost_means[p];
    s.ttsf = sim::summarize(s.ttsf_means);
    s.cost_rate = sim::summarize(s.cost_rate_means);
  }
}

}  // namespace

std::vector<VrPointResult> run_vr(const VrOptions& vr,
                                  const sim::McOptions& mc,
                                  std::span<const core::Params> points) {
  std::vector<VrPointResult> out(points.size());
  if (!vr.any() || points.empty()) return out;

  if (vr.cv.enabled) run_cv_all(vr.cv, mc, points, out);
  if (vr.sobol.enabled) run_sobol_all(vr.sobol, mc, points, out);
  if (vr.splitting.enabled) {
    const std::uint64_t base = sim::splitmix64(mc.base_seed ^ kSplitTag);
    for (std::size_t p = 0; p < points.size(); ++p) {
      // Seeded by the GLOBAL point index, so shards reproduce the
      // full-grid estimates point for point.
      const std::uint64_t seed_point =
          sim::derive_seed(base, mc.point_stream_offset + p);
      out[p].has_splitting = true;
      out[p].splitting = run_splitting(vr.splitting, points[p],
                                       seed_point, mc.threads);
    }
  }
  return out;
}

}  // namespace midas::vr
