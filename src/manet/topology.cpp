#include "manet/topology.h"

#include <deque>
#include <numeric>

namespace midas::manet {

ConnectivityGraph::ConnectivityGraph(std::span<const Vec2> positions,
                                     double range_m) {
  const std::size_t n = positions.size();
  adj_.resize(n);
  // O(n²) pair scan; N ≤ a few hundred in every experiment, so a spatial
  // index would be overkill.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (positions[i].distance_to(positions[j]) <= range_m) {
        adj_[i].push_back(static_cast<std::uint32_t>(j));
        adj_[j].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  label_components();
}

void ConnectivityGraph::label_components() {
  const std::size_t n = adj_.size();
  component_.assign(n, UINT32_MAX);
  std::uint32_t label = 0;
  std::deque<std::uint32_t> queue;
  for (std::size_t start = 0; start < n; ++start) {
    if (component_[start] != UINT32_MAX) continue;
    component_[start] = label;
    queue.push_back(static_cast<std::uint32_t>(start));
    while (!queue.empty()) {
      const auto u = queue.front();
      queue.pop_front();
      for (auto v : adj_[u]) {
        if (component_[v] == UINT32_MAX) {
          component_[v] = label;
          queue.push_back(v);
        }
      }
    }
    ++label;
  }
  num_components_ = label;
}

std::vector<std::size_t> ConnectivityGraph::component_sizes() const {
  std::vector<std::size_t> sizes(num_components_, 0);
  for (auto c : component_) ++sizes[c];
  return sizes;
}

std::vector<std::uint32_t> ConnectivityGraph::hop_distances(
    std::uint32_t src) const {
  std::vector<std::uint32_t> dist(adj_.size(), UINT32_MAX);
  dist[src] = 0;
  std::deque<std::uint32_t> queue{src};
  while (!queue.empty()) {
    const auto u = queue.front();
    queue.pop_front();
    for (auto v : adj_[u]) {
      if (dist[v] == UINT32_MAX) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

TopologyStats ConnectivityGraph::stats(std::size_t pair_sample) const {
  TopologyStats st;
  const std::size_t n = adj_.size();
  st.num_components = num_components_;
  const auto sizes = component_sizes();
  for (auto s : sizes) st.largest_component = std::max(st.largest_component, s);

  std::size_t degree_sum = 0;
  for (const auto& nb : adj_) degree_sum += nb.size();
  st.mean_degree = n > 0 ? static_cast<double>(degree_sum) /
                               static_cast<double>(n)
                         : 0.0;

  // Hop statistics: BFS from each source (or a prefix sample of sources).
  const std::size_t sources =
      pair_sample == 0 ? n : std::min(n, pair_sample);
  std::size_t reachable_pairs = 0;
  std::size_t hop_sum = 0;
  for (std::size_t s = 0; s < sources; ++s) {
    const auto dist = hop_distances(static_cast<std::uint32_t>(s));
    for (std::size_t v = 0; v < n; ++v) {
      if (v == s || dist[v] == UINT32_MAX) continue;
      ++reachable_pairs;
      hop_sum += dist[v];
    }
  }
  if (reachable_pairs > 0) {
    st.mean_hops = static_cast<double>(hop_sum) /
                   static_cast<double>(reachable_pairs);
  }
  const std::size_t total_pairs = sources * (n - 1);
  st.connectivity = total_pairs > 0 ? static_cast<double>(reachable_pairs) /
                                          static_cast<double>(total_pairs)
                                    : 0.0;
  return st;
}

}  // namespace midas::manet
