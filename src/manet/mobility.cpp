#include "manet/mobility.h"

#include <cmath>
#include <stdexcept>

namespace midas::manet {

RandomWaypointModel::RandomWaypointModel(std::size_t num_nodes,
                                         const MobilityParams& params,
                                         std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params.field_radius_m <= 0.0 || params.speed_min_mps <= 0.0 ||
      params.speed_max_mps < params.speed_min_mps) {
    throw std::invalid_argument("RandomWaypointModel: bad parameters");
  }
  positions_.resize(num_nodes);
  nodes_.resize(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    positions_[i] = random_point_in_disc();
    assign_new_waypoint(i);
  }
}

Vec2 RandomWaypointModel::random_point_in_disc() {
  // Inverse-CDF sampling: radius ∝ sqrt(U) gives uniform area density.
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double r = params_.field_radius_m * std::sqrt(uni(rng_));
  const double theta = 2.0 * M_PI * uni(rng_);
  return {r * std::cos(theta), r * std::sin(theta)};
}

void RandomWaypointModel::assign_new_waypoint(std::size_t i) {
  std::uniform_real_distribution<double> speed(params_.speed_min_mps,
                                               params_.speed_max_mps);
  std::uniform_real_distribution<double> pause(0.0, params_.pause_max_s);
  nodes_[i].waypoint = random_point_in_disc();
  nodes_[i].speed = speed(rng_);
  nodes_[i].pause_left = pause(rng_);
}

void RandomWaypointModel::step(double dt) {
  if (dt <= 0.0) throw std::invalid_argument("step: dt must be positive");
  elapsed_ += dt;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    double remaining = dt;
    while (remaining > 1e-12) {
      auto& n = nodes_[i];
      auto& pos = positions_[i];
      const Vec2 delta = n.waypoint - pos;
      const double dist = delta.norm();
      if (dist < 1e-9) {
        // Arrived: burn pause time, then pick the next leg.
        if (n.pause_left > remaining) {
          n.pause_left -= remaining;
          remaining = 0.0;
        } else {
          remaining -= n.pause_left;
          assign_new_waypoint(i);
        }
        continue;
      }
      const double travel_time = dist / n.speed;
      if (travel_time > remaining) {
        const double step_len = n.speed * remaining;
        pos = pos + delta * (step_len / dist);
        travelled_ += step_len;
        remaining = 0.0;
      } else {
        pos = n.waypoint;
        travelled_ += dist;
        remaining -= travel_time;
      }
    }
  }
}

double RandomWaypointModel::mean_speed() const {
  const double per_node_time =
      elapsed_ * static_cast<double>(nodes_.size());
  return per_node_time > 0.0 ? travelled_ / per_node_time : 0.0;
}

}  // namespace midas::manet
