// Group partition/merge rate estimation — the paper parameterises the
// SPN's T_PAR/T_MER transitions "by simulation for a sufficiently long
// period of time".  This module runs the random-waypoint model, tracks
// the number of connected components over time, and fits a birth–death
// process: partition rate σ_par(k) and merge rate σ_mer(k) conditioned
// on the current number of groups k, plus the hop-count statistics the
// cost model needs.
#pragma once

#include <cstdint>
#include <vector>

#include "manet/mobility.h"
#include "manet/topology.h"

namespace midas::manet {

struct PartitionEstimate {
  /// Rates indexed by group count k (index 0 unused): events per second
  /// observed while the system had exactly k groups.
  std::vector<double> partition_rate;  // k → k+1
  std::vector<double> merge_rate;      // k → k−1
  /// Time-weighted occupancy of each group count.
  std::vector<double> occupancy;
  std::size_t max_groups_seen = 1;

  double mean_hops = 0.0;       // over connected pairs, time-averaged
  double mean_degree = 0.0;     // time-averaged node degree
  double mean_components = 1.0; // time-averaged group count

  /// Rate lookups with clamping; returns 0 beyond the observed range so
  /// the SPN's group count stays within what mobility supports.
  [[nodiscard]] double partition_rate_at(std::size_t k) const;
  [[nodiscard]] double merge_rate_at(std::size_t k) const;
};

struct PartitionSimOptions {
  double sim_time_s = 2000.0;
  double dt_s = 1.0;
  double radio_range_m = 250.0;
  std::uint64_t seed = 0x5eed;
  /// Sampling stride for the hop-count statistics (full BFS each sample
  /// step is the dominant cost).
  std::size_t stats_stride = 25;
};

/// Runs the mobility simulation and extracts the birth–death rates.
[[nodiscard]] PartitionEstimate estimate_partition_rates(
    std::size_t num_nodes, const MobilityParams& mobility,
    const PartitionSimOptions& opts = {});

}  // namespace midas::manet
