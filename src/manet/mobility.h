// Random-waypoint mobility (the paper's Section 5 default): each node
// picks a uniform destination in the circular operational area, moves
// toward it at a uniform random speed, pauses, and repeats.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "manet/vec2.h"

namespace midas::manet {

struct MobilityParams {
  double field_radius_m = 500.0;  // paper: radius = 500 m
  double speed_min_mps = 1.0;     // pedestrian..vehicle band
  double speed_max_mps = 10.0;
  double pause_max_s = 10.0;
};

/// Random-waypoint walker population over a disc.  Deterministic under a
/// fixed seed.
class RandomWaypointModel {
 public:
  RandomWaypointModel(std::size_t num_nodes, const MobilityParams& params,
                      std::uint64_t seed);

  /// Advances all nodes by dt seconds.
  void step(double dt);

  [[nodiscard]] const std::vector<Vec2>& positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] const MobilityParams& params() const noexcept {
    return params_;
  }

  /// Long-run average speed including pauses (diagnostic; the RWP speed
  /// decay phenomenon is exercised in tests).
  [[nodiscard]] double mean_speed() const;

 private:
  struct NodeState {
    Vec2 waypoint;
    double speed = 0.0;     // current travel speed (0 while pausing)
    double pause_left = 0.0;
  };

  Vec2 random_point_in_disc();
  void assign_new_waypoint(std::size_t i);

  MobilityParams params_;
  std::vector<Vec2> positions_;
  std::vector<NodeState> nodes_;
  std::mt19937_64 rng_;
  double travelled_ = 0.0;
  double elapsed_ = 0.0;
};

}  // namespace midas::manet
