// Wireless connectivity analysis over node positions: unit-disc adjacency,
// connected components (= mobile groups, the paper's connectivity-based
// group definition), and multi-hop path statistics feeding the
// communication cost model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "manet/vec2.h"

namespace midas::manet {

struct TopologyStats {
  std::size_t num_components = 0;
  std::size_t largest_component = 0;
  double mean_degree = 0.0;
  /// Average hop count over connected ordered pairs (BFS shortest path).
  double mean_hops = 0.0;
  /// Fraction of ordered node pairs that are connected at all.
  double connectivity = 0.0;
};

class ConnectivityGraph {
 public:
  /// Builds the unit-disc graph: an edge between nodes within `range_m`.
  ConnectivityGraph(std::span<const Vec2> positions, double range_m);

  [[nodiscard]] std::size_t size() const noexcept { return adj_.size(); }
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(
      std::size_t i) const {
    return adj_[i];
  }

  /// Component label per node (labels are 0..num_components-1).
  [[nodiscard]] const std::vector<std::uint32_t>& component_labels() const {
    return component_;
  }
  [[nodiscard]] std::size_t num_components() const noexcept {
    return num_components_;
  }
  /// Sizes indexed by component label.
  [[nodiscard]] std::vector<std::size_t> component_sizes() const;

  /// BFS hop distances from `src` (UINT32_MAX where unreachable).
  [[nodiscard]] std::vector<std::uint32_t> hop_distances(
      std::uint32_t src) const;

  /// Full statistics; `pair_sample` bounds the all-pairs BFS work (0 =
  /// exact all-pairs).
  [[nodiscard]] TopologyStats stats(std::size_t pair_sample = 0) const;

 private:
  void label_components();

  std::vector<std::vector<std::uint32_t>> adj_;
  std::vector<std::uint32_t> component_;
  std::size_t num_components_ = 0;
};

}  // namespace midas::manet
