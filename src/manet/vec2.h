// 2-D point/vector for the mobility models.
#pragma once

#include <cmath>

namespace midas::manet {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] double distance_to(const Vec2& o) const {
    return (*this - o).norm();
  }
};

}  // namespace midas::manet
