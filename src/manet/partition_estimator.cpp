#include "manet/partition_estimator.h"

#include <algorithm>
#include <stdexcept>

namespace midas::manet {

double PartitionEstimate::partition_rate_at(std::size_t k) const {
  if (k == 0 || k >= partition_rate.size()) return 0.0;
  return partition_rate[k];
}

double PartitionEstimate::merge_rate_at(std::size_t k) const {
  if (k <= 1 || k >= merge_rate.size()) return 0.0;
  return merge_rate[k];
}

PartitionEstimate estimate_partition_rates(std::size_t num_nodes,
                                           const MobilityParams& mobility,
                                           const PartitionSimOptions& opts) {
  if (num_nodes == 0) {
    throw std::invalid_argument("estimate_partition_rates: no nodes");
  }
  RandomWaypointModel model(num_nodes, mobility, opts.seed);

  const auto steps = static_cast<std::size_t>(opts.sim_time_s / opts.dt_s);
  // Track component count transitions: time spent at k, and the number of
  // k→k+Δ events (a step can jump by more than one when several links
  // break at once; each unit is counted as one partition/merge event,
  // matching the one-at-a-time birth–death abstraction in the SPN).
  std::vector<double> time_at(2, 0.0);
  std::vector<double> up_events(2, 0.0);
  std::vector<double> down_events(2, 0.0);

  auto grow = [](std::vector<double>& v, std::size_t k) {
    if (v.size() <= k) v.resize(k + 1, 0.0);
  };

  std::size_t prev_components = 0;
  double hops_acc = 0.0;
  double degree_acc = 0.0;
  double comp_acc = 0.0;
  std::size_t stats_samples = 0;
  std::size_t max_groups = 1;

  for (std::size_t step = 0; step < steps; ++step) {
    model.step(opts.dt_s);
    ConnectivityGraph graph(model.positions(), opts.radio_range_m);
    const std::size_t k = graph.num_components();
    max_groups = std::max(max_groups, k);

    grow(time_at, k);
    time_at[k] += opts.dt_s;

    if (step > 0 && k != prev_components) {
      if (k > prev_components) {
        grow(up_events, prev_components);
        up_events[prev_components] +=
            static_cast<double>(k - prev_components);
      } else {
        grow(down_events, prev_components);
        down_events[prev_components] +=
            static_cast<double>(prev_components - k);
      }
    }
    prev_components = k;

    if (step % opts.stats_stride == 0) {
      const auto st = graph.stats();
      hops_acc += st.mean_hops;
      degree_acc += st.mean_degree;
      comp_acc += static_cast<double>(st.num_components);
      ++stats_samples;
    }
  }

  PartitionEstimate est;
  est.max_groups_seen = max_groups;
  est.partition_rate.assign(max_groups + 1, 0.0);
  est.merge_rate.assign(max_groups + 1, 0.0);
  est.occupancy.assign(max_groups + 1, 0.0);

  double total_time = 0.0;
  for (double t : time_at) total_time += t;
  for (std::size_t k = 1; k <= max_groups; ++k) {
    const double t = k < time_at.size() ? time_at[k] : 0.0;
    if (total_time > 0.0) est.occupancy[k] = t / total_time;
    if (t > 0.0) {
      if (k < up_events.size()) est.partition_rate[k] = up_events[k] / t;
      if (k < down_events.size()) est.merge_rate[k] = down_events[k] / t;
    }
  }
  if (stats_samples > 0) {
    est.mean_hops = hops_acc / static_cast<double>(stats_samples);
    est.mean_degree = degree_acc / static_cast<double>(stats_samples);
    est.mean_components = comp_acc / static_cast<double>(stats_samples);
  }
  return est;
}

}  // namespace midas::manet
