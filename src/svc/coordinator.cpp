#include "svc/coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/shard.h"

namespace midas::svc {

namespace {

double monotonic_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The request spec restricted to one leased range: Explicit policy,
/// shard_index = the lease-table shard id (globally unique, so merged
/// parts always have distinct indices and error messages name the
/// actual lease).
core::ExperimentSpec lease_spec(const core::ExperimentSpec& spec,
                                core::ShardRange range,
                                std::uint64_t shard_id) {
  core::ExperimentSpec out = spec;
  out.shard.policy = core::ShardSpec::Policy::Explicit;
  out.shard.range = range;
  out.shard.num_shards = 1;
  out.shard.shard_index = static_cast<std::size_t>(shard_id);
  return out;
}

/// A default-payload slice standing in for a quarantined range so the
/// remaining shards still tile the grid at merge time.  The response
/// names the gap; the filler keeps the merge mechanical.
core::ExperimentResult filler_part(const core::ExperimentSpec& spec,
                                   core::ShardRange range,
                                   std::uint64_t shard_id) {
  core::ExperimentResult part;
  part.spec = lease_spec(spec, range, shard_id);
  part.range = range;
  part.num_shards = 1;
  part.shard_index = static_cast<std::size_t>(shard_id);
  part.shard_policy = to_string(core::ShardSpec::Policy::Explicit);
  for (const core::BackendKind kind : spec.backends) {
    core::BackendRun run;
    run.kind = kind;
    if (kind == core::BackendKind::Analytic) {
      run.evals.resize(range.size());
    } else {
      run.mc.resize(range.size());
    }
    part.backends.push_back(std::move(run));
  }
  return part;
}

util::Json range_json(core::ShardRange range) {
  util::Json j = util::Json::object();
  j.set("begin", util::Json(static_cast<double>(range.begin)));
  j.set("end", util::Json(static_cast<double>(range.end)));
  return j;
}

}  // namespace

struct Coordinator::Impl {
  explicit Impl(CoordinatorOptions opts)
      : options(opts), table(opts.lease) {}

  // --- Event queue (readers/acceptor → state thread). -----------------
  struct Event {
    enum class Kind { Accepted, Frame, Closed };
    Kind kind = Kind::Frame;
    std::uint64_t conn = 0;
    std::shared_ptr<Connection> connection;  // Accepted only
    util::Json frame;                        // Frame only
    std::string error;                       // Closed only
    bool protocol = false;                   // Closed: malformed bytes
  };

  void enqueue(Event event) {
    {
      std::lock_guard lock(queue_mutex);
      queue.push_back(std::move(event));
    }
    queue_cv.notify_all();
  }

  bool dequeue(Event& event, double timeout_s) {
    std::unique_lock lock(queue_mutex);
    queue_cv.wait_for(lock, std::chrono::duration<double>(timeout_s),
                      [this] { return !queue.empty(); });
    if (queue.empty()) return false;
    event = std::move(queue.front());
    queue.pop_front();
    return true;
  }

  // --- Connection registry (state thread only). -----------------------
  struct Conn {
    std::shared_ptr<Connection> connection;
    std::thread reader;
    enum class Role { Unknown, Worker, Client } role = Role::Unknown;
    std::string worker;
  };

  // --- Request bookkeeping (state thread only). -----------------------
  struct Request {
    std::string client_id;  ///< the id the client chose
    std::uint64_t conn = 0;
    core::ExperimentSpec spec;
    bool failed = false;
    std::string failure;
    std::map<std::uint64_t, core::ExperimentResult> parts;
  };

  CoordinatorOptions options;
  LeaseTable table;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Event> queue;
  std::atomic<bool> stop{false};

  std::map<std::uint64_t, Conn> conns;
  std::vector<std::thread> retired;
  std::uint64_t next_conn_id = 1;
  std::uint64_t next_request_serial = 1;

  std::map<std::string, Request> requests;           // by lease tag
  std::map<std::string, std::uint64_t> worker_conns;  // name → conn id
  std::set<std::string> worker_names_seen;
  std::map<std::uint64_t, double> orphaned_at;  // shard → reassign time

  mutable std::mutex stats_mutex;
  CoordinatorStats stats;

  // --------------------------------------------------------------------

  void start_reader(std::uint64_t id,
                    const std::shared_ptr<Connection>& connection) {
    conns[id].reader = std::thread([this, id, connection] {
      while (!stop.load(std::memory_order_relaxed)) {
        RecvResult r = connection->recv(options.poll_timeout_s);
        switch (r.status) {
          case RecvResult::Status::Timeout:
            continue;
          case RecvResult::Status::Frame: {
            Event event;
            event.kind = Event::Kind::Frame;
            event.conn = id;
            event.frame = std::move(r.frame);
            enqueue(std::move(event));
            continue;
          }
          case RecvResult::Status::Closed:
          case RecvResult::Status::ProtocolError: {
            Event event;
            event.kind = Event::Kind::Closed;
            event.conn = id;
            event.error = std::move(r.error);
            event.protocol = r.status == RecvResult::Status::ProtocolError;
            enqueue(std::move(event));
            return;
          }
        }
      }
    });
  }

  void send_or_drop(std::uint64_t conn_id, const util::Json& frame,
                    double now) {
    auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    try {
      it->second.connection->send(frame);
    } catch (const std::exception& e) {
      handle_closed(conn_id, e.what(), /*protocol=*/false, now);
    }
  }

  // --- Frame handlers. -------------------------------------------------

  void handle_frame(std::uint64_t conn_id, const util::Json& frame,
                    double now) {
    const std::string& type = frame.at("type").as_string();
    if (type == "hello") {
      handle_hello(conn_id, frame, now);
    } else if (type == "heartbeat") {
      table.heartbeat(frame.at("worker").as_string(), now);
    } else if (type == "request") {
      handle_request(conn_id, frame, now);
    } else if (type == "result") {
      handle_result(frame, now);
    } else if (type == "shard_error") {
      table.fail_shard(frame.at("shard").as_u64(),
                       frame.at("worker").as_string(),
                       frame.at("error").as_string(), now);
    } else {
      throw std::runtime_error("unknown frame type '" + type + "'");
    }
  }

  void handle_hello(std::uint64_t conn_id, const util::Json& frame,
                    double now) {
    const std::string name = frame.at("worker").as_string();
    Conn& conn = conns.at(conn_id);
    conn.role = Conn::Role::Worker;
    conn.worker = name;
    worker_conns[name] = conn_id;
    worker_names_seen.insert(name);
    // A rejoin can beat the old connection's Closed event; any leases
    // the previous incarnation held come back as reassignments.
    absorb(table.worker_join(name, now), now);
  }

  void handle_request(std::uint64_t conn_id, const util::Json& frame,
                      double now) {
    const std::string client_id = frame.at("id").as_string();
    conns.at(conn_id).role = Conn::Role::Client;
    const auto reject = [&](const std::string& why) {
      util::Json err = util::Json::object();
      err.set("type", util::Json("error"));
      err.set("id", util::Json(client_id));
      err.set("error", util::Json(why));
      send_or_drop(conn_id, err, now);
      std::lock_guard lock(stats_mutex);
      ++stats.requests_failed;
    };
    core::ExperimentSpec spec;
    std::size_t points = 0;
    try {
      spec = core::ExperimentSpec::from_json(frame.at("spec"));
      spec.validate();
      if (spec.shard.policy != core::ShardSpec::Policy::All) {
        throw std::invalid_argument(
            "fleet requests must cover the whole grid (shard.policy "
            "'all'); the coordinator plans its own shards");
      }
      points = spec.grid().num_points();
    } catch (const std::exception& e) {
      reject(e.what());
      return;
    }
    {
      std::lock_guard lock(stats_mutex);
      ++stats.requests;
    }

    // Plan the split: pilot-cost-balanced when a simulation backend
    // makes per-point cost uneven, plain contiguous otherwise.
    const std::size_t workers = std::max<std::size_t>(1, table.num_workers());
    const std::size_t desired = std::clamp<std::size_t>(
        workers * options.shards_per_worker, 1,
        std::min(points, options.max_shards));
    std::vector<core::ShardRange> ranges;
    std::vector<double> weights;
    try {
      if (spec.wants(core::BackendKind::Des) && desired > 1) {
        const core::ShardPlan plan = core::ShardPlan::by_pilot_cost(
            spec.grid(), spec.base, desired, spec.mc,
            spec.shard.pilot_replications);
        ranges = plan.ranges();
        weights = plan.weights();
      } else {
        ranges = core::ShardPlan::contiguous(points, desired).ranges();
      }
    } catch (const std::exception& e) {
      reject(e.what());
      return;
    }

    const std::string tag = "q" + std::to_string(next_request_serial++);
    table.add_shards(tag, ranges, weights);
    Request request;
    request.client_id = client_id;
    request.conn = conn_id;
    request.spec = std::move(spec);
    requests.emplace(tag, std::move(request));
  }

  void handle_result(const util::Json& frame, double now) {
    const std::string worker = frame.at("worker").as_string();
    const std::uint64_t shard_id = frame.at("shard").as_u64();
    const std::string tag = frame.at("request").as_string();
    core::ExperimentResult result;
    try {
      result = core::ExperimentResult::from_json(frame.at("result"));
    } catch (const std::exception& e) {
      table.fail_shard(shard_id, worker,
                       std::string("unparseable result: ") + e.what(),
                       now);
      return;
    }
    const CompletionOutcome outcome = table.complete(
        shard_id, worker, result.canonical_json().dump_compact(), now);
    auto request_it = requests.find(tag);
    switch (outcome) {
      case CompletionOutcome::Accepted: {
        if (request_it != requests.end()) {
          request_it->second.parts.emplace(shard_id, std::move(result));
        }
        auto orphan = orphaned_at.find(shard_id);
        if (orphan != orphaned_at.end()) {
          const double recovery_s = now - orphan->second;
          orphaned_at.erase(orphan);
          std::lock_guard lock(stats_mutex);
          ++stats.recoveries;
          stats.total_recovery_s += recovery_s;
          stats.max_recovery_s =
              std::max(stats.max_recovery_s, recovery_s);
        }
        break;
      }
      case CompletionOutcome::DuplicateMismatch:
        if (request_it != requests.end()) {
          request_it->second.failed = true;
          request_it->second.failure =
              "determinism violation: shard " + std::to_string(shard_id) +
              " completed twice with different canonical payloads "
              "(second from worker '" + worker + "')";
        }
        break;
      case CompletionOutcome::DuplicateVerified:
      case CompletionOutcome::SupersededLate:
      case CompletionOutcome::Unknown:
        break;  // dropped by design
    }
  }

  void handle_closed(std::uint64_t conn_id, const std::string& error,
                     bool protocol, double now) {
    auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    if (protocol) {
      std::lock_guard lock(stats_mutex);
      ++stats.protocol_errors;
    }
    Conn conn = std::move(it->second);
    conns.erase(it);
    // shutdown(), not close(): the reader thread may still be parked in
    // poll/recv on this descriptor (protocol-error path), and closing
    // the fd under it would let a concurrent accept recycle the number.
    // The fd itself dies with the last shared_ptr, after the reader
    // exits.
    conn.connection->shutdown();
    if (conn.reader.joinable()) retired.push_back(std::move(conn.reader));
    if (conn.role == Conn::Role::Worker &&
        worker_conns.find(conn.worker) != worker_conns.end() &&
        worker_conns.at(conn.worker) == conn_id) {
      worker_conns.erase(conn.worker);
      absorb(table.worker_leave(conn.worker, now), now);
    } else if (conn.role == Conn::Role::Client) {
      // Nobody left to answer: abandon this client's open requests.
      for (auto request_it = requests.begin();
           request_it != requests.end();) {
        if (request_it->second.conn == conn_id) {
          forget_tag_orphans(request_it->first);
          table.remove_tag(request_it->first);
          request_it = requests.erase(request_it);
        } else {
          ++request_it;
        }
      }
    }
    (void)error;
  }

  void forget_tag_orphans(const std::string& tag) {
    for (const ShardInfo& shard : table.tag_shards(tag)) {
      orphaned_at.erase(shard.id);
    }
  }

  void absorb(const TickReport& report, double now) {
    for (const std::uint64_t id : report.reassigned) {
      orphaned_at.emplace(id, now);
    }
    for (const std::uint64_t id : report.quarantined) {
      orphaned_at.erase(id);
    }
  }

  // --- Periodic work: liveness, dispatch, completion. ------------------

  void handle_tick(double now) {
    absorb(table.tick(now), now);

    for (const Assignment& a : table.dispatch(now)) {
      auto worker_it = worker_conns.find(a.worker);
      auto request_it = requests.find(a.tag);
      if (worker_it == worker_conns.end() ||
          request_it == requests.end()) {
        continue;
      }
      util::Json lease = util::Json::object();
      lease.set("type", util::Json("lease"));
      lease.set("request", util::Json(a.tag));
      lease.set("shard", util::Json(static_cast<double>(a.shard)));
      lease.set("attempt", util::Json(static_cast<double>(a.attempt)));
      lease.set("deadline_s", util::Json::number(a.deadline_s));
      lease.set("spec",
                lease_spec(request_it->second.spec, a.range, a.shard)
                    .to_json());
      send_or_drop(worker_it->second, lease, now);
    }

    std::vector<std::string> done;
    for (const auto& [tag, request] : requests) {
      if (table.tag_terminal(tag)) done.push_back(tag);
    }
    for (const std::string& tag : done) finalize(tag, now);

    std::lock_guard lock(stats_mutex);
    stats.lease = table.counters();
    stats.workers_seen = worker_names_seen.size();
  }

  void finalize(const std::string& tag, double now) {
    auto request_it = requests.find(tag);
    // An earlier finalize this tick may have hit a dead client socket;
    // handle_closed then dropped ALL of that client's requests —
    // including siblings already collected in the caller's done list.
    if (request_it == requests.end()) return;
    Request request = std::move(request_it->second);
    requests.erase(request_it);
    const std::vector<ShardInfo> shards = table.tag_shards(tag);
    forget_tag_orphans(tag);
    table.remove_tag(tag);

    const auto fail = [&](const std::string& why) {
      util::Json err = util::Json::object();
      err.set("type", util::Json("error"));
      err.set("id", util::Json(request.client_id));
      err.set("error", util::Json(why));
      send_or_drop(request.conn, err, now);
      std::lock_guard lock(stats_mutex);
      ++stats.requests_failed;
    };
    if (request.failed) {
      fail(request.failure);
      return;
    }

    std::vector<core::ExperimentResult> parts;
    util::Json gaps = util::Json::array();
    for (const ShardInfo& shard : shards) {
      switch (shard.state) {
        case ShardState::Done: {
          auto part = request.parts.find(shard.id);
          if (part == request.parts.end()) {
            fail("internal error: shard " + std::to_string(shard.id) +
                 " is done but its payload is missing");
            return;
          }
          parts.push_back(std::move(part->second));
          break;
        }
        case ShardState::Quarantined: {
          parts.push_back(
              filler_part(request.spec, shard.range, shard.id));
          util::Json gap = util::Json::object();
          gap.set("shard",
                  util::Json(static_cast<double>(shard.id)));
          gap.set("range", range_json(shard.range));
          gap.set("attempts",
                  util::Json(static_cast<double>(shard.attempts)));
          gap.set("error", util::Json(shard.last_error));
          gaps.push_back(std::move(gap));
          break;
        }
        case ShardState::Superseded:
          break;  // replaced by its children
        case ShardState::Pending:
        case ShardState::Leased:
          fail("internal error: finalize with live shard " +
               std::to_string(shard.id));
          return;
      }
    }

    core::ExperimentResult merged;
    try {
      merged = core::merge_experiment_results(parts);
    } catch (const std::exception& e) {
      fail(std::string("merge failed: ") + e.what());
      return;
    }
    // Provenance of the merged whole matches a single-process run.
    merged.num_shards = 1;
    merged.shard_index = 0;
    merged.shard_policy = to_string(core::ShardSpec::Policy::All);

    const bool complete = gaps.size() == 0;
    util::Json response = util::Json::object();
    response.set("type", util::Json("response"));
    response.set("id", util::Json(request.client_id));
    response.set("complete", util::Json(complete));
    response.set("gaps", std::move(gaps));
    {
      std::lock_guard lock(stats_mutex);
      stats.lease = table.counters();
      util::Json s = util::Json::object();
      s.set("dispatched",
            util::Json(static_cast<double>(stats.lease.dispatched)));
      s.set("reassignments",
            util::Json(static_cast<double>(stats.lease.reassignments)));
      s.set("splits",
            util::Json(static_cast<double>(stats.lease.splits)));
      s.set("duplicates_verified",
            util::Json(
                static_cast<double>(stats.lease.duplicates_verified)));
      s.set("quarantined",
            util::Json(static_cast<double>(stats.lease.quarantined)));
      s.set("worker_deaths",
            util::Json(static_cast<double>(stats.lease.worker_deaths)));
      response.set("stats", std::move(s));
      if (complete) {
        ++stats.responses_complete;
      } else {
        ++stats.responses_with_gaps;
      }
    }
    response.set("result", merged.to_json());
    send_or_drop(request.conn, response, now);
  }

  // --- Lifecycle. -------------------------------------------------------

  /// Joins the acceptor thread on every exit path — an exception
  /// escaping the event loop must not leave it joinable, or the
  /// unwinding std::thread destructor calls std::terminate.
  struct AcceptorGuard {
    std::atomic<bool>& stop;
    std::thread thread;
    ~AcceptorGuard() {
      stop.store(true);
      if (thread.joinable()) thread.join();
    }
  };

  void serve(Listener& listener, const volatile std::sig_atomic_t* flag) {
    AcceptorGuard acceptor{stop, std::thread([this, &listener] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<Connection> connection;
        try {
          connection = listener.accept(options.poll_timeout_s);
        } catch (const std::exception&) {
          return;  // listener torn down
        }
        if (!connection) continue;
        Event event;
        event.kind = Event::Kind::Accepted;
        event.connection = std::move(connection);
        enqueue(std::move(event));
      }
    })};

    while (!stop.load(std::memory_order_relaxed) &&
           !(flag != nullptr && *flag != 0)) {
      double now = monotonic_now();
      const double next = table.next_event_time(now);
      const double timeout = std::clamp(next - now, 0.0,
                                        options.tick_interval_s);
      Event event;
      if (dequeue(event, timeout)) {
        now = monotonic_now();
        switch (event.kind) {
          case Event::Kind::Accepted: {
            const std::uint64_t id = next_conn_id++;
            conns[id].connection = event.connection;
            start_reader(id, event.connection);
            break;
          }
          case Event::Kind::Frame:
            try {
              handle_frame(event.conn, event.frame, now);
            } catch (const std::exception& e) {
              handle_closed(event.conn, e.what(), /*protocol=*/true, now);
            }
            break;
          case Event::Kind::Closed:
            handle_closed(event.conn, event.error, event.protocol, now);
            break;
        }
      }
      handle_tick(monotonic_now());
    }

    // Drain: answer what we cannot finish, wave the workers off, then
    // tear every thread down before returning.
    stop.store(true);
    const double now = monotonic_now();
    util::Json shutdown = util::Json::object();
    shutdown.set("type", util::Json("shutdown"));
    for (auto& [id, conn] : conns) {
      if (conn.role == Conn::Role::Worker) {
        try {
          conn.connection->send(shutdown);
        } catch (const std::exception&) {
        }
      }
    }
    for (auto& [tag, request] : requests) {
      util::Json err = util::Json::object();
      err.set("type", util::Json("error"));
      err.set("id", util::Json(request.client_id));
      err.set("error", util::Json("coordinator draining"));
      try {
        auto it = conns.find(request.conn);
        if (it != conns.end()) it->second.connection->send(err);
      } catch (const std::exception&) {
      }
      std::lock_guard lock(stats_mutex);
      ++stats.requests_failed;
    }
    requests.clear();
    // Wake every reader with shutdown(), join them, and only then drop
    // the connections (closing the fds) — never close an fd a reader
    // may still be polling.
    for (auto& [id, conn] : conns) conn.connection->shutdown();
    for (auto& [id, conn] : conns) {
      if (conn.reader.joinable()) conn.reader.join();
    }
    conns.clear();
    for (std::thread& reader : retired) {
      if (reader.joinable()) reader.join();
    }
    retired.clear();
    {
      std::lock_guard lock(stats_mutex);
      stats.lease = table.counters();
      stats.workers_seen = worker_names_seen.size();
    }
    (void)now;
  }
};

Coordinator::Coordinator(CoordinatorOptions options)
    : impl_(new Impl(options)) {}

Coordinator::~Coordinator() = default;

void Coordinator::serve(Listener& listener,
                        const volatile std::sig_atomic_t* stop) {
  impl_->serve(listener, stop);
}

void Coordinator::request_stop() { impl_->stop.store(true); }

CoordinatorStats Coordinator::stats() const {
  std::lock_guard lock(impl_->stats_mutex);
  return impl_->stats;
}

}  // namespace midas::svc
