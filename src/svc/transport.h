// Transport layer of the fleet runtime: a Connection moves
// newline-delimited JSON frames (util/framing.h) over a byte stream,
// a Listener accepts Connections.  Two implementations share the
// exact same framing and error surface:
//
//   * TCP (util/socket.h; loopback by default, any IPv4 address via
//     the fleet tools' --bind/--host) — the real multi-process fleet;
//   * an in-memory byte-pipe pair — same-process tests, byte-faithful:
//     because it carries BYTES (not parsed messages), tests can inject
//     the same truncated/duplicated/interleaved-frame faults the wire
//     can produce.
//
// recv() never throws for peer misbehaviour: malformed frames come
// back as RecvResult{ProtocolError} with the typed FrameError kind, a
// vanished peer as {Closed} (with Truncated noted when it died
// mid-frame).  send()/send_bytes() are thread-safe per connection (a
// worker's heartbeat thread and compute loop share one connection) and
// throw std::runtime_error once the peer is gone.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/framing.h"
#include "util/json.h"

namespace midas::svc {

struct RecvResult {
  enum class Status {
    Frame,          ///< `frame` holds one decoded message
    Timeout,        ///< nothing arrived within the timeout
    Closed,         ///< orderly end of stream
    ProtocolError,  ///< malformed bytes; `error` / `error_kind` say why
  };
  Status status = Status::Timeout;
  util::Json frame;
  std::string error;
  util::FrameErrorKind error_kind = util::FrameErrorKind::BadJson;
};

class Connection {
 public:
  virtual ~Connection() = default;

  /// Encodes and sends one frame.  Thread-safe.
  void send(const util::Json& frame);

  /// Sends raw bytes verbatim — the fault-injection door (truncated /
  /// duplicated frames ride through here).  Thread-safe.
  virtual void send_bytes(std::string_view bytes) = 0;

  /// Receives the next frame, waiting at most `timeout_s`.
  [[nodiscard]] virtual RecvResult recv(double timeout_s) = 0;

  virtual void close() = 0;

  /// Half-teardown: wakes any recv() blocked on the peer and poisons
  /// future send()s, but keeps the underlying descriptor alive until
  /// the Connection is destroyed — so a reader thread still parked in
  /// recv() can never observe its fd recycled by a concurrent accept.
  /// Default forwards to close() for transports with no descriptor.
  virtual void shutdown() { close(); }

  [[nodiscard]] virtual std::string peer() const = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;
  /// nullptr on timeout.  Throws when the listener itself fails.
  [[nodiscard]] virtual std::shared_ptr<Connection> accept(
      double timeout_s) = 0;
};

// --- TCP (loopback by default) ----------------------------------------

/// Listener bound to `bind_address`:`port` (0 = ephemeral; port()
/// tells).  The default address keeps the fleet loopback-only; pass
/// "0.0.0.0" (an IPv4 dotted quad — no name resolution) to accept
/// remote workers.
class TcpServer final : public Listener {
 public:
  explicit TcpServer(std::uint16_t port,
                     const std::string& bind_address = "127.0.0.1");
  ~TcpServer() override;
  [[nodiscard]] std::uint16_t port() const noexcept;
  [[nodiscard]] std::shared_ptr<Connection> accept(
      double timeout_s) override;
  void close();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Connects to a TcpServer at `host`:`port` (IPv4 dotted quad;
/// loopback by default).  Throws on a malformed address, refusal or
/// timeout.
[[nodiscard]] std::shared_ptr<Connection> tcp_connect(
    std::uint16_t port, double timeout_s = 5.0,
    const std::string& host = "127.0.0.1");

// --- In-memory --------------------------------------------------------

/// Byte-pipe pair: frames sent on `first` arrive at `second` and vice
/// versa.  close() on either side closes both directions.
[[nodiscard]] std::pair<std::shared_ptr<Connection>,
                        std::shared_ptr<Connection>>
memory_connection_pair(std::size_t max_frame_bytes = std::size_t{1} << 24);

/// In-process Listener: connect() hands the caller one end of a fresh
/// pair and queues the other end for accept() — the same rendezvous a
/// TCP listener provides, minus the kernel.
class MemoryHub final : public Listener {
 public:
  MemoryHub();
  ~MemoryHub() override;
  [[nodiscard]] std::shared_ptr<Connection> connect();
  [[nodiscard]] std::shared_ptr<Connection> accept(
      double timeout_s) override;
  /// Makes pending and future accept() calls return nullptr promptly.
  void close();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace midas::svc
