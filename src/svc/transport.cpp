#include "svc/transport.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "util/socket.h"

namespace midas::svc {

namespace {

/// Shared recv loop: pull decoded frames out of `buf`, refilling it
/// from `read_chunk` until a frame, the deadline, or the end of the
/// stream.  `read_chunk(timeout_s, out)` returns false at end of
/// stream, true otherwise (possibly with an empty chunk on timeout).
template <typename ReadChunk>
RecvResult recv_framed(util::FrameBuffer& buf, double timeout_s,
                       const ReadChunk& read_chunk) {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::duration<double>(timeout_s);
  while (true) {
    try {
      if (auto frame = buf.next()) {
        RecvResult r;
        r.status = RecvResult::Status::Frame;
        r.frame = std::move(*frame);
        return r;
      }
    } catch (const util::FrameError& e) {
      RecvResult r;
      r.status = RecvResult::Status::ProtocolError;
      r.error = e.what();
      r.error_kind = e.kind();
      return r;
    }
    const double remaining =
        std::chrono::duration<double>(deadline - clock::now()).count();
    if (remaining <= 0.0) return RecvResult{};  // Timeout
    std::string chunk;
    bool open;
    try {
      open = read_chunk(remaining, chunk);
    } catch (const std::exception& e) {
      RecvResult r;
      r.status = RecvResult::Status::Closed;
      r.error = e.what();
      return r;
    }
    if (!open) {
      RecvResult r;
      if (buf.has_partial()) {
        // The peer vanished mid-frame: that IS a truncated frame.
        r.status = RecvResult::Status::ProtocolError;
        r.error_kind = util::FrameErrorKind::Truncated;
        r.error = "peer closed the stream mid-frame (" +
                  std::to_string(buf.buffered_bytes()) +
                  " bytes without a terminating newline)";
      } else {
        r.status = RecvResult::Status::Closed;
      }
      return r;
    }
    if (!chunk.empty()) {
      try {
        buf.feed(chunk);
      } catch (const util::FrameError& e) {
        RecvResult r;
        r.status = RecvResult::Status::ProtocolError;
        r.error = e.what();
        r.error_kind = e.kind();
        return r;
      }
    }
  }
}

class TcpConnection final : public Connection {
 public:
  TcpConnection(util::TcpStream stream, std::string peer)
      : stream_(std::move(stream)), peer_(std::move(peer)) {}

  void send_bytes(std::string_view bytes) override {
    std::lock_guard lock(send_mutex_);
    stream_.write_all(bytes);
  }

  RecvResult recv(double timeout_s) override {
    return recv_framed(buf_, timeout_s,
                       [this](double remaining, std::string& chunk) {
                         char tmp[16384];
                         const long n =
                             stream_.read_some(tmp, sizeof tmp, remaining);
                         if (n == 0) return false;
                         if (n > 0) {
                           chunk.assign(tmp, static_cast<std::size_t>(n));
                         }
                         return true;
                       });
  }

  void close() override { stream_.close(); }
  void shutdown() override { stream_.shutdown(); }
  std::string peer() const override { return peer_; }

 private:
  util::TcpStream stream_;
  util::FrameBuffer buf_;
  std::mutex send_mutex_;
  std::string peer_;
};

/// One direction of an in-memory connection: a byte queue with close.
struct Pipe {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::string> chunks;
  bool closed = false;

  void push(std::string_view bytes) {
    {
      std::lock_guard lock(mutex);
      if (closed) {
        throw std::runtime_error("send on a closed in-memory connection");
      }
      chunks.emplace_back(bytes);
    }
    cv.notify_all();
  }

  /// false at end of stream; true otherwise (empty chunk on timeout).
  bool pop(double timeout_s, std::string& out) {
    std::unique_lock lock(mutex);
    cv.wait_for(lock, std::chrono::duration<double>(timeout_s),
                [this] { return !chunks.empty() || closed; });
    if (!chunks.empty()) {
      out = std::move(chunks.front());
      chunks.pop_front();
      return true;
    }
    return !closed;
  }

  void close() {
    {
      std::lock_guard lock(mutex);
      closed = true;
    }
    cv.notify_all();
  }
};

class MemoryConnection final : public Connection {
 public:
  MemoryConnection(std::shared_ptr<Pipe> out, std::shared_ptr<Pipe> in,
                   std::string peer, std::size_t max_frame_bytes)
      : out_(std::move(out)),
        in_(std::move(in)),
        buf_(max_frame_bytes),
        peer_(std::move(peer)) {}

  ~MemoryConnection() override { close(); }

  void send_bytes(std::string_view bytes) override { out_->push(bytes); }

  RecvResult recv(double timeout_s) override {
    return recv_framed(buf_, timeout_s,
                       [this](double remaining, std::string& chunk) {
                         return in_->pop(remaining, chunk);
                       });
  }

  void close() override {
    out_->close();
    in_->close();
  }

  std::string peer() const override { return peer_; }

 private:
  std::shared_ptr<Pipe> out_;
  std::shared_ptr<Pipe> in_;
  util::FrameBuffer buf_;
  std::string peer_;
};

}  // namespace

void Connection::send(const util::Json& frame) {
  send_bytes(util::encode_frame(frame));
}

// --- TCP --------------------------------------------------------------

struct TcpServer::Impl {
  util::TcpListener listener;
};

TcpServer::TcpServer(std::uint16_t port, const std::string& bind_address)
    : impl_(new Impl) {
  impl_->listener = util::TcpListener::bind_to(bind_address, port);
}

TcpServer::~TcpServer() = default;

std::uint16_t TcpServer::port() const noexcept {
  return impl_->listener.port();
}

std::shared_ptr<Connection> TcpServer::accept(double timeout_s) {
  util::TcpStream stream = impl_->listener.accept(timeout_s);
  if (!stream.is_open()) return nullptr;
  return std::make_shared<TcpConnection>(std::move(stream), "tcp-peer");
}

void TcpServer::close() { impl_->listener.close(); }

std::shared_ptr<Connection> tcp_connect(std::uint16_t port,
                                        double timeout_s,
                                        const std::string& host) {
  return std::make_shared<TcpConnection>(
      util::TcpStream::connect_to(host, port, timeout_s),
      host + ":" + std::to_string(port));
}

// --- In-memory --------------------------------------------------------

std::pair<std::shared_ptr<Connection>, std::shared_ptr<Connection>>
memory_connection_pair(std::size_t max_frame_bytes) {
  auto a2b = std::make_shared<Pipe>();
  auto b2a = std::make_shared<Pipe>();
  return {std::make_shared<MemoryConnection>(a2b, b2a, "mem-b",
                                             max_frame_bytes),
          std::make_shared<MemoryConnection>(b2a, a2b, "mem-a",
                                             max_frame_bytes)};
}

struct MemoryHub::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::shared_ptr<Connection>> pending;
  bool closed = false;
};

MemoryHub::MemoryHub() : impl_(new Impl) {}
MemoryHub::~MemoryHub() = default;

std::shared_ptr<Connection> MemoryHub::connect() {
  auto [client, server] = memory_connection_pair();
  {
    std::lock_guard lock(impl_->mutex);
    if (impl_->closed) {
      throw std::runtime_error("MemoryHub: connect after close");
    }
    impl_->pending.push_back(std::move(server));
  }
  impl_->cv.notify_all();
  return client;
}

std::shared_ptr<Connection> MemoryHub::accept(double timeout_s) {
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait_for(lock, std::chrono::duration<double>(timeout_s),
                     [this] {
                       return !impl_->pending.empty() || impl_->closed;
                     });
  if (impl_->pending.empty()) return nullptr;
  auto conn = std::move(impl_->pending.front());
  impl_->pending.pop_front();
  return conn;
}

void MemoryHub::close() {
  {
    std::lock_guard lock(impl_->mutex);
    impl_->closed = true;
  }
  impl_->cv.notify_all();
}

}  // namespace midas::svc
