// The fleet coordinator: accepts ExperimentSpec requests and worker
// registrations over framed connections (svc/transport.h), splits each
// request into shard leases (core::ShardPlan + svc::LeaseTable), and
// merges the completed slices back into ONE ExperimentResult that is
// byte-identical (canonical_json) to a crash-free single-process
// ExperimentService::run of the same spec.
//
// Protocol ("midas-fleet-v1", one JSON object per frame):
//
//   worker → coord   {"type":"hello","worker":NAME}
//   worker → coord   {"type":"heartbeat","worker":NAME}
//   client → coord   {"type":"request","id":ID,"spec":SPEC}
//   coord  → worker  {"type":"lease","request":ID,"shard":N,
//                     "attempt":K,"deadline_s":D,"spec":SPEC'}
//                    where SPEC' is SPEC with shard = Explicit range
//   worker → coord   {"type":"result","worker":NAME,"request":ID,
//                     "shard":N,"result":RESULT}
//   worker → coord   {"type":"shard_error","worker":NAME,"request":ID,
//                     "shard":N,"error":TEXT}
//   coord  → client  {"type":"response","id":ID,"complete":BOOL,
//                     "gaps":[...],"stats":{...},"result":RESULT}
//                    or {"type":"error","id":ID,"error":TEXT}
//   coord  → worker  {"type":"shutdown"}   (drain)
//
// Threading: one acceptor thread, one reader thread per connection,
// and ONE state thread (the serve() caller) that owns every decision —
// readers only decode frames and enqueue events, so the LeaseTable and
// request bookkeeping need no locks beyond the event queue.
//
// Failure semantics (the tentpole):
//   * dispatch is at-least-once; duplicate completions are verified
//     byte-identical on the canonical (timing-zeroed) payload and
//     dropped — a mismatch fails the request loudly;
//   * a worker is dead when its connection drops OR its heartbeat goes
//     silent past the timeout; its leases are reassigned (optionally
//     re-split across idle survivors) after deterministic backoff;
//   * a lease past its weight-scaled deadline is offered to other
//     workers while the straggler keeps computing — first result wins;
//   * a shard that fails max_attempts dispatches is quarantined and
//     reported as a named gap (the response still merges cleanly:
//     quarantined ranges get explicit filler slices);
//   * on stop (flag or request_stop()) the coordinator drains: open
//     requests get an error frame, workers get "shutdown", then every
//     thread is joined before serve() returns.
#pragma once

#include <csignal>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "svc/lease.h"
#include "svc/transport.h"

namespace midas::svc {

struct CoordinatorOptions {
  LeaseOptions lease;
  /// Target shards per registered worker (re-splitting on reassignment
  /// keeps recovery parallel even when this is small).
  std::size_t shards_per_worker = 2;
  std::size_t max_shards = 64;
  /// Longest the state thread sleeps between bookkeeping passes.
  double tick_interval_s = 0.05;
  /// Reader/acceptor poll granularity (responsiveness to stop).
  double poll_timeout_s = 0.25;
};

struct CoordinatorStats {
  LeaseCounters lease;
  std::size_t requests = 0;
  std::size_t responses_complete = 0;  ///< merged with zero gaps
  std::size_t responses_with_gaps = 0;
  std::size_t requests_failed = 0;     ///< error frame sent
  std::size_t workers_seen = 0;        ///< distinct hello frames
  std::size_t protocol_errors = 0;     ///< malformed frames (conn dropped)
  /// Orphaned-shard recovery latency: reassignment → accepted result.
  std::size_t recoveries = 0;
  double total_recovery_s = 0.0;
  double max_recovery_s = 0.0;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options = {});
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Runs the event loop on the calling thread until `stop` (when
  /// given) becomes nonzero or request_stop() is called, then drains
  /// and joins every internal thread.  `stop` is polled — safe to flip
  /// from a signal handler.
  void serve(Listener& listener,
             const volatile std::sig_atomic_t* stop = nullptr);

  /// Thread-safe programmatic stop; serve() drains and returns.
  void request_stop();

  [[nodiscard]] CoordinatorStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace midas::svc
