#include "svc/fault.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace midas::svc {

namespace {

std::size_t parse_count(std::string_view key, std::string_view value) {
  std::size_t pos = 0;
  unsigned long long parsed = 0;
  try {
    parsed = std::stoull(std::string(value), &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size()) {
    throw std::invalid_argument("FaultPlan: bad value '" +
                                std::string(value) + "' for " +
                                std::string(key));
  }
  return static_cast<std::size_t>(parsed);
}

double parse_seconds(std::string_view key, std::string_view value) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(std::string(value), &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || parsed < 0.0) {
    throw std::invalid_argument("FaultPlan: bad value '" +
                                std::string(value) + "' for " +
                                std::string(key));
  }
  return parsed;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view item = text.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("FaultPlan: expected key=value, got '" +
                                  std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "crash_mid_shard") {
      plan.crash_mid_shard = parse_count(key, value);
    } else if (key == "crash_before_result") {
      plan.crash_before_result = parse_count(key, value);
    } else if (key == "stall_heartbeat_after") {
      plan.stall_heartbeat_after = parse_count(key, value);
    } else if (key == "delay_result_s") {
      plan.delay_result_s = parse_seconds(key, value);
    } else if (key == "duplicate_result") {
      plan.duplicate_result = parse_count(key, value);
    } else if (key == "truncate_result") {
      plan.truncate_result = parse_count(key, value);
    } else {
      throw std::invalid_argument("FaultPlan: unknown fault '" +
                                  std::string(key) + "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* text = std::getenv("MIDAS_FAULT_PLAN");
  return text == nullptr ? FaultPlan{} : parse(text);
}

std::string FaultPlan::to_string() const {
  std::string out;
  const auto add = [&](const char* key, const std::string& value) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  };
  if (crash_mid_shard != 0) {
    add("crash_mid_shard", std::to_string(crash_mid_shard));
  }
  if (crash_before_result != 0) {
    add("crash_before_result", std::to_string(crash_before_result));
  }
  if (stall_heartbeat_after != 0) {
    add("stall_heartbeat_after", std::to_string(stall_heartbeat_after));
  }
  if (delay_result_s > 0.0) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", delay_result_s);
    add("delay_result_s", buf);
  }
  if (duplicate_result != 0) {
    add("duplicate_result", std::to_string(duplicate_result));
  }
  if (truncate_result != 0) {
    add("truncate_result", std::to_string(truncate_result));
  }
  return out;
}

}  // namespace midas::svc
