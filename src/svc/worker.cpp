#include "svc/worker.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

#include "util/framing.h"

namespace midas::svc {

namespace {

/// Heartbeat thread with RAII join: keeps `{"type":"heartbeat"}` frames
/// flowing on the shared connection until stopped (or stalled by the
/// fault plan).  Send failures flip `lost` instead of throwing — the
/// main loop notices on its next recv.
class HeartbeatPump {
 public:
  HeartbeatPump(Connection& connection, std::string worker,
                double interval_s)
      : connection_(connection),
        worker_(std::move(worker)),
        interval_s_(interval_s) {
    thread_ = std::thread([this] { pump(); });
  }

  ~HeartbeatPump() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void stall() { stalled_.store(true, std::memory_order_relaxed); }

 private:
  void pump() {
    util::Json frame = util::Json::object();
    frame.set("type", util::Json("heartbeat"));
    frame.set("worker", util::Json(worker_));
    std::unique_lock lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::duration<double>(interval_s_),
                   [this] { return stop_; });
      if (stop_) return;
      if (stalled_.load(std::memory_order_relaxed)) continue;
      lock.unlock();
      try {
        connection_.send(frame);
      } catch (const std::exception&) {
        // Peer gone; the compute loop will see Closed on its own.
      }
      lock.lock();
    }
  }

  Connection& connection_;
  std::string worker_;
  double interval_s_;
  std::atomic<bool> stalled_{false};
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace

Worker::Worker(WorkerOptions options)
    : options_(std::move(options)), service_(options_.service) {
  if (!options_.crash) {
    options_.crash = [](int code) { std::_Exit(code); };
  }
}

WorkerExit Worker::run(Connection& connection) {
  // The coordinator can vanish at ANY send (including while this worker
  // slept in a fault delay): every outbound frame goes through here so
  // a dead peer surfaces as ConnectionLost — the reconnect loop's
  // signal — never as an exception escaping run().
  const auto try_send_bytes = [&](std::string_view bytes) {
    try {
      connection.send_bytes(bytes);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  };
  const auto try_send = [&](const util::Json& frame) {
    return try_send_bytes(util::encode_frame(frame));
  };

  util::Json hello = util::Json::object();
  hello.set("type", util::Json("hello"));
  hello.set("worker", util::Json(options_.name));
  if (!try_send(hello)) return WorkerExit::ConnectionLost;

  HeartbeatPump heartbeats(connection, options_.name,
                           options_.heartbeat_interval_s);

  while (true) {
    RecvResult r = connection.recv(options_.poll_timeout_s);
    if (r.status == RecvResult::Status::Timeout) continue;
    if (r.status != RecvResult::Status::Frame) {
      return WorkerExit::ConnectionLost;
    }
    const std::string& type = r.frame.at("type").as_string();
    if (type == "shutdown") return WorkerExit::Shutdown;
    if (type != "lease") continue;  // ignore anything unexpected

    const std::string request = r.frame.at("request").as_string();
    const std::uint64_t shard = r.frame.at("shard").as_u64();
    ++leases_seen_;
    if (options_.faults.stall_heartbeat_after != 0 &&
        leases_seen_ >= options_.faults.stall_heartbeat_after) {
      heartbeats.stall();
    }
    if (leases_seen_ == options_.faults.crash_mid_shard) {
      options_.crash(3);
      return WorkerExit::ConnectionLost;  // throwing test hook only
    }

    util::Json out = util::Json::object();
    try {
      const core::ExperimentSpec spec =
          core::ExperimentSpec::from_json(r.frame.at("spec"));
      const core::ExperimentResult result = service_.run(spec);
      out.set("type", util::Json("result"));
      out.set("worker", util::Json(options_.name));
      out.set("request", util::Json(request));
      out.set("shard", util::Json(static_cast<double>(shard)));
      out.set("result", result.to_json());
    } catch (const std::exception& e) {
      out = util::Json::object();
      out.set("type", util::Json("shard_error"));
      out.set("worker", util::Json(options_.name));
      out.set("request", util::Json(request));
      out.set("shard", util::Json(static_cast<double>(shard)));
      out.set("error", util::Json(e.what()));
      if (!try_send(out)) return WorkerExit::ConnectionLost;
      continue;
    }

    if (leases_seen_ == options_.faults.crash_before_result) {
      options_.crash(4);
      return WorkerExit::ConnectionLost;
    }
    if (options_.faults.delay_result_s > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.faults.delay_result_s));
    }
    ++results_sent_;
    const std::string bytes = util::encode_frame(out);
    if (results_sent_ == options_.faults.truncate_result) {
      // The drill is "died mid-frame": crash even if the peer is gone.
      (void)try_send_bytes(
          std::string_view(bytes).substr(0, bytes.size() / 2));
      options_.crash(5);
      return WorkerExit::ConnectionLost;
    }
    if (!try_send_bytes(bytes)) return WorkerExit::ConnectionLost;
    if (results_sent_ == options_.faults.duplicate_result) {
      if (!try_send_bytes(bytes)) return WorkerExit::ConnectionLost;
    }
  }
}

}  // namespace midas::svc
