// The fleet worker: connects to a coordinator, introduces itself, and
// computes shard leases with its own core::ExperimentService — the
// exact same engine a single-process run uses, which is what makes
// fleet results bitwise-comparable.  A background thread heartbeats on
// the shared connection (Connection::send is thread-safe) while the
// main loop computes, so a long lease never looks like a death.
//
// The svc::FaultPlan hooks live here: crashes, heartbeat stalls,
// result delays/duplications/truncations all fire at their scheduled
// 1-based lease/result counts.  Crashes go through an injectable
// `crash` hook (default std::_Exit) so in-process tests can observe
// them without dying.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/experiment.h"
#include "svc/fault.h"
#include "svc/transport.h"

namespace midas::svc {

struct WorkerOptions {
  std::string name = "worker";
  double heartbeat_interval_s = 1.0;
  /// recv poll granularity (responsiveness to shutdown).
  double poll_timeout_s = 0.5;
  FaultPlan faults;
  core::ExperimentServiceOptions service;
  /// Hard-exit hook for the crash faults.  Defaults to std::_Exit.
  std::function<void(int)> crash;
};

enum class WorkerExit {
  Shutdown,        ///< coordinator said "shutdown" — clean drain
  ConnectionLost,  ///< stream closed or turned to garbage
};

class Worker {
 public:
  explicit Worker(WorkerOptions options);

  /// Blocking: hello, then leases until shutdown or a dead connection.
  /// The heartbeat thread is always joined before returning (or before
  /// a throwing test crash hook propagates).
  WorkerExit run(Connection& connection);

  [[nodiscard]] std::size_t leases_computed() const noexcept {
    return leases_seen_;
  }

 private:
  WorkerOptions options_;
  core::ExperimentService service_;
  std::size_t leases_seen_ = 0;
  std::size_t results_sent_ = 0;
};

}  // namespace midas::svc
