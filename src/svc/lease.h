// LeaseTable: the coordinator's pure, clock-injected shard-lease state
// machine.  Every fault-tolerance decision the fleet makes — when a
// worker is dead, when a lease has expired, when a shard has failed
// enough times to be poison, what a late or duplicated completion
// means — is made HERE, on explicit `now` values, with no threads, no
// sockets and no wall clock.  The coordinator event loop feeds it
// events; tests drive the exact same transitions from a table of
// (event, time) pairs.
//
// Shard lifecycle:
//
//   Pending --dispatch--> Leased --complete--> Done
//      ^                    |  \--fail/expire/death--+
//      |                    |                        |
//      +---- backoff gate --+<--- attempts < max ----+
//                           |                        |
//                     (split-on-reassign)      attempts >= max
//                           |                        |
//                           v                        v
//                      Superseded               Quarantined
//
// Semantics worth naming:
//   * Dispatch is at-least-once; correctness comes from determinism.
//     A shard's payload is a pure function of its range, so a late
//     completion of a reassigned shard is either byte-identical to the
//     accepted one (DuplicateVerified — dropped) or evidence of a
//     determinism violation (DuplicateMismatch — the caller must fail
//     the request loudly rather than merge a coin-flip).
//   * First completion wins, whoever computed it.  A straggler whose
//     lease expired can still land its result if nobody beat it.
//   * Per-lease deadlines scale with the shard's pilot-cost weight
//     (clamped), so an expensive shard is not declared late on the
//     schedule of a cheap one.
//   * Re-dispatch waits out a capped exponential backoff with
//     deterministic per-(shard, attempt) jitter, so a flapping worker
//     pool does not synchronise its retries.
//   * On reassignment the orphaned range can be re-split across the
//     idle survivors (ShardPlan::replan) — children inherit the
//     parent's tag, attempt count and proportional weight; the parent
//     becomes Superseded and its late result, if any, is dropped.
//   * After `max_attempts` dispatches a shard is Quarantined: the
//     request completes with that range reported as a named gap
//     instead of retrying forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/shard.h"

namespace midas::svc {

struct LeaseOptions {
  double heartbeat_timeout_s = 10.0;  ///< silence ⇒ worker is dead
  double lease_deadline_s = 60.0;     ///< base compute budget per lease
  double deadline_weight_cap = 8.0;   ///< max deadline scale from weight
  double backoff_base_s = 0.5;        ///< first re-dispatch delay
  double backoff_cap_s = 30.0;        ///< ceiling for the doubling
  double backoff_jitter = 0.25;       ///< ±fraction, deterministic hash
  std::size_t max_attempts = 4;       ///< dispatches before quarantine
  bool split_on_reassign = true;      ///< replan orphans across idlers
};

enum class ShardState { Pending, Leased, Done, Quarantined, Superseded };

[[nodiscard]] const char* to_string(ShardState state) noexcept;

struct ShardInfo {
  std::uint64_t id = 0;
  std::string tag;           ///< request this shard belongs to
  core::ShardRange range;
  double weight = 1.0;       ///< cost relative to the tag mean
  ShardState state = ShardState::Pending;
  std::size_t attempts = 0;  ///< dispatches so far
  std::string worker;        ///< holder when Leased, completer when Done
  double lease_deadline = 0.0;  ///< absolute, valid when Leased
  double not_before = 0.0;      ///< backoff gate for re-dispatch
  std::string payload;          ///< canonical result bytes when Done
  std::string last_error;       ///< most recent failure reason
};

/// One lease handed out by dispatch(): send `range` to `worker`.
struct Assignment {
  std::uint64_t shard = 0;
  std::string worker;
  std::string tag;
  core::ShardRange range;
  std::size_t attempt = 0;   ///< 1-based
  double deadline_s = 0.0;   ///< relative budget (already weight-scaled)
};

enum class CompletionOutcome {
  Accepted,            ///< first result for this shard — keep it
  DuplicateVerified,   ///< re-delivery, byte-identical — drop it
  DuplicateMismatch,   ///< re-delivery, DIFFERENT bytes — determinism
                       ///< violation; fail the request
  SupersededLate,      ///< result for a split-away parent — drop it
  Unknown,             ///< no such shard (e.g. tag already removed)
};

[[nodiscard]] const char* to_string(CompletionOutcome outcome) noexcept;

/// What a clock edge (or a worker departure) changed.
struct TickReport {
  struct Split {
    std::uint64_t parent = 0;
    std::vector<std::uint64_t> children;
  };
  std::vector<std::string> dead_workers;    ///< heartbeat timed out
  std::vector<std::uint64_t> expired;       ///< leases past deadline
  std::vector<std::uint64_t> quarantined;   ///< newly poisoned shards
  std::vector<Split> splits;                ///< replanned orphans
  /// Every shard now waiting for re-dispatch because of this report —
  /// re-pended originals plus split children (recovery-latency probes).
  std::vector<std::uint64_t> reassigned;

  [[nodiscard]] bool empty() const noexcept {
    return dead_workers.empty() && expired.empty() &&
           quarantined.empty() && splits.empty() && reassigned.empty();
  }
};

struct LeaseCounters {
  std::size_t dispatched = 0;
  std::size_t reassignments = 0;
  std::size_t splits = 0;
  std::size_t duplicates_verified = 0;
  std::size_t duplicate_mismatches = 0;
  std::size_t superseded_late = 0;
  std::size_t quarantined = 0;
  std::size_t worker_deaths = 0;
  std::size_t failures = 0;
};

class LeaseTable {
 public:
  explicit LeaseTable(LeaseOptions options = {});

  /// Registers one shard per non-empty range under `tag`.  `weights`
  /// (when non-empty, parallel to `ranges`) are normalised to their
  /// own mean and drive deadline scaling.  Returns the new shard ids.
  std::vector<std::uint64_t> add_shards(
      const std::string& tag, std::span<const core::ShardRange> ranges,
      std::span<const double> weights = {});

  /// A worker connected (or reconnected).  Fresh heartbeat, no leases:
  /// anything a previous incarnation of the same name still held is an
  /// orphan (the restarted process knows nothing about it) and goes
  /// through the same reassignment path a worker death takes.
  TickReport worker_join(const std::string& name, double now);

  /// A worker disconnected in an observable way.  Its leased shards go
  /// through the same reassignment path a heartbeat death takes.
  TickReport worker_leave(const std::string& name, double now);

  /// Liveness signal.  Unknown names are ignored.
  void heartbeat(const std::string& name, double now);

  /// Matches dispatchable shards (Pending, past backoff) to idle
  /// workers, one lease per worker, in deterministic order (shards by
  /// id, workers by name).  Increments each shard's attempt count.
  [[nodiscard]] std::vector<Assignment> dispatch(double now);

  /// A worker delivered `canonical_payload` for `shard`.  Frees the
  /// worker's slot; see CompletionOutcome for what the result means.
  CompletionOutcome complete(std::uint64_t shard,
                             const std::string& worker,
                             std::string canonical_payload, double now);

  /// A worker reported a compute error for `shard`.  Retries after
  /// backoff until max_attempts, then quarantines.
  void fail_shard(std::uint64_t shard, const std::string& worker,
                  const std::string& error, double now);

  /// Advances time: declares silent workers dead, expires overdue
  /// leases, reassigns (optionally re-splitting) the orphans, and
  /// quarantines shards that exhausted their attempts.
  TickReport tick(double now);

  /// True when no shard of `tag` is still Pending or Leased.
  [[nodiscard]] bool tag_terminal(const std::string& tag) const;

  /// All shards of `tag` (every state), ordered by id.
  [[nodiscard]] std::vector<ShardInfo> tag_shards(
      const std::string& tag) const;

  /// Forgets `tag` entirely (call after responding to the client).
  void remove_tag(const std::string& tag);

  /// Earliest future instant at which tick()/dispatch() could act: the
  /// next lease deadline, backoff expiry or heartbeat timeout.
  /// Returns `now` when a dispatch is possible immediately, +inf when
  /// nothing is scheduled.
  [[nodiscard]] double next_event_time(double now) const;

  [[nodiscard]] const ShardInfo* shard(std::uint64_t id) const;
  [[nodiscard]] const LeaseCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t num_idle_workers() const;
  [[nodiscard]] const LeaseOptions& options() const noexcept {
    return options_;
  }

  /// min(cap, base·2^(attempt−1)) · (1 + jitter·hash01(shard, attempt)).
  /// Pure; exposed for the state-machine tests.
  [[nodiscard]] double backoff_delay(std::uint64_t shard,
                                     std::size_t attempt) const;

 private:
  struct Worker {
    double last_heartbeat = 0.0;
    std::set<std::uint64_t> held;  ///< leases this worker is computing
  };

  void release_holders(std::uint64_t shard_id);
  void reassign(std::uint64_t shard_id, double now, TickReport& report);

  LeaseOptions options_;
  std::map<std::uint64_t, ShardInfo> shards_;
  std::map<std::string, Worker> workers_;
  std::uint64_t next_id_ = 1;
  LeaseCounters counters_;
};

}  // namespace midas::svc
