// Deterministic fault injection for the fleet runtime.  A FaultPlan
// rides into a worker via CLI (`--fault ...`) or environment
// (MIDAS_FAULT_PLAN) and makes one failure path fire at a precise,
// reproducible point in the worker's life — so every recovery path the
// coordinator claims to have is exercised in CI, not discovered in
// production:
//
//   crash_mid_shard=K        exit hard while computing lease #K (the
//                            coordinator sees the connection drop with
//                            the lease outstanding)
//   crash_before_result=K    compute lease #K fully, then exit before
//                            sending the result (work lost after it
//                            was done — the nastier variant)
//   stall_heartbeat_after=K  stop heartbeating once lease #K arrives
//                            but keep computing and send the result
//                            late (tests liveness timeout + duplicate-
//                            completion dedupe)
//   delay_result_s=T         sleep T seconds before sending every
//                            result (straggler; tests lease deadlines)
//   duplicate_result=K       send result frame #K twice (tests
//                            dedupe-by-determinism)
//   truncate_result=K        send half of result frame #K, then exit
//                            hard (tests typed truncation handling)
//
// Lease/result counters are 1-based; 0 disables a fault.  The plan
// format is a comma-separated key=value list, e.g.
// "crash_mid_shard=2,delay_result_s=0.25".
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace midas::svc {

struct FaultPlan {
  std::size_t crash_mid_shard = 0;
  std::size_t crash_before_result = 0;
  std::size_t stall_heartbeat_after = 0;
  double delay_result_s = 0.0;
  std::size_t duplicate_result = 0;
  std::size_t truncate_result = 0;

  [[nodiscard]] bool any() const noexcept {
    return crash_mid_shard != 0 || crash_before_result != 0 ||
           stall_heartbeat_after != 0 || delay_result_s > 0.0 ||
           duplicate_result != 0 || truncate_result != 0;
  }

  /// Parses "key=value,key=value".  Empty input is the empty plan.
  /// Throws std::invalid_argument naming an unknown key or bad value.
  [[nodiscard]] static FaultPlan parse(std::string_view text);

  /// parse(getenv("MIDAS_FAULT_PLAN")), empty plan when unset.
  [[nodiscard]] static FaultPlan from_env();

  /// The parseable textual form (empty string for the empty plan).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace midas::svc
