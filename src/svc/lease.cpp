#include "svc/lease.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace midas::svc {

namespace {

/// Deterministic [0, 1) hash of (shard, attempt) — splitmix64 finaliser.
double hash01(std::uint64_t shard, std::uint64_t attempt) {
  std::uint64_t x = shard * 0x9E3779B97F4A7C15ULL + attempt;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(ShardState state) noexcept {
  switch (state) {
    case ShardState::Pending: return "pending";
    case ShardState::Leased: return "leased";
    case ShardState::Done: return "done";
    case ShardState::Quarantined: return "quarantined";
    case ShardState::Superseded: return "superseded";
  }
  return "?";
}

const char* to_string(CompletionOutcome outcome) noexcept {
  switch (outcome) {
    case CompletionOutcome::Accepted: return "accepted";
    case CompletionOutcome::DuplicateVerified: return "duplicate-verified";
    case CompletionOutcome::DuplicateMismatch: return "duplicate-mismatch";
    case CompletionOutcome::SupersededLate: return "superseded-late";
    case CompletionOutcome::Unknown: return "unknown";
  }
  return "?";
}

LeaseTable::LeaseTable(LeaseOptions options) : options_(options) {}

double LeaseTable::backoff_delay(std::uint64_t shard,
                                 std::size_t attempt) const {
  const std::size_t doublings = attempt == 0 ? 0 : attempt - 1;
  const double base =
      std::min(options_.backoff_cap_s,
               options_.backoff_base_s * std::ldexp(1.0, doublings));
  return base * (1.0 + options_.backoff_jitter * hash01(shard, attempt));
}

std::vector<std::uint64_t> LeaseTable::add_shards(
    const std::string& tag, std::span<const core::ShardRange> ranges,
    std::span<const double> weights) {
  if (!weights.empty() && weights.size() != ranges.size()) {
    throw std::invalid_argument(
        "LeaseTable::add_shards: weights/ranges size mismatch");
  }
  double sum = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].empty()) continue;
    ++used;
    if (!weights.empty()) sum += weights[i];
  }
  const double mean = (used > 0 && sum > 0.0)
                          ? sum / static_cast<double>(used)
                          : 0.0;
  std::vector<std::uint64_t> ids;
  ids.reserve(used);
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].empty()) continue;
    ShardInfo shard;
    shard.id = next_id_++;
    shard.tag = tag;
    shard.range = ranges[i];
    shard.weight = mean > 0.0 ? weights[i] / mean : 1.0;
    ids.push_back(shard.id);
    shards_.emplace(shard.id, std::move(shard));
  }
  return ids;
}

TickReport LeaseTable::worker_join(const std::string& name, double now) {
  TickReport report;
  Worker& worker = workers_[name];
  worker.last_heartbeat = now;
  if (worker.held.empty()) return report;
  // Rejoin before the old connection's Closed event: the leases the
  // previous incarnation held would otherwise never be revoked (the
  // stale conn id no longer matches), starving the worker of new work.
  const std::set<std::uint64_t> held = std::move(worker.held);
  worker.held.clear();
  for (std::uint64_t id : held) {
    auto it = shards_.find(id);
    if (it == shards_.end()) continue;
    if (it->second.state != ShardState::Leased ||
        it->second.worker != name) {
      continue;  // already reassigned elsewhere; nothing to revoke
    }
    reassign(id, now, report);
  }
  return report;
}

void LeaseTable::heartbeat(const std::string& name, double now) {
  auto it = workers_.find(name);
  if (it != workers_.end()) it->second.last_heartbeat = now;
}

std::size_t LeaseTable::num_idle_workers() const {
  std::size_t idle = 0;
  for (const auto& [name, worker] : workers_) {
    if (worker.held.empty()) ++idle;
  }
  return idle;
}

std::vector<Assignment> LeaseTable::dispatch(double now) {
  std::vector<std::string> idle;
  for (const auto& [name, worker] : workers_) {
    if (worker.held.empty()) idle.push_back(name);
  }
  std::vector<Assignment> out;
  std::size_t next_idle = 0;
  for (auto& [id, shard] : shards_) {
    if (next_idle >= idle.size()) break;
    if (shard.state != ShardState::Pending || shard.not_before > now) {
      continue;
    }
    const std::string& name = idle[next_idle++];
    shard.state = ShardState::Leased;
    shard.worker = name;
    ++shard.attempts;
    const double scale =
        std::clamp(shard.weight, 1.0, options_.deadline_weight_cap);
    const double budget_s = options_.lease_deadline_s * scale;
    shard.lease_deadline = now + budget_s;
    workers_.at(name).held.insert(id);
    ++counters_.dispatched;
    out.push_back(Assignment{id, name, shard.tag, shard.range,
                             shard.attempts, budget_s});
  }
  return out;
}

void LeaseTable::release_holders(std::uint64_t shard_id) {
  for (auto& [name, worker] : workers_) worker.held.erase(shard_id);
}

CompletionOutcome LeaseTable::complete(std::uint64_t shard_id,
                                       const std::string& worker,
                                       std::string canonical_payload,
                                       double now) {
  auto holder = workers_.find(worker);
  if (holder != workers_.end()) {
    holder->second.held.erase(shard_id);
    // A result is liveness evidence, heartbeat or not.
    holder->second.last_heartbeat = now;
  }
  auto it = shards_.find(shard_id);
  if (it == shards_.end()) return CompletionOutcome::Unknown;
  ShardInfo& shard = it->second;
  switch (shard.state) {
    case ShardState::Done:
      release_holders(shard_id);
      if (shard.payload == canonical_payload) {
        ++counters_.duplicates_verified;
        return CompletionOutcome::DuplicateVerified;
      }
      ++counters_.duplicate_mismatches;
      return CompletionOutcome::DuplicateMismatch;
    case ShardState::Superseded:
      release_holders(shard_id);
      ++counters_.superseded_late;
      return CompletionOutcome::SupersededLate;
    case ShardState::Pending:
    case ShardState::Leased:
    case ShardState::Quarantined:
      // First result wins, whoever computed it — including a straggler
      // whose lease already expired, or a shard already written off as
      // poison.  Any other holder's slot is freed; its eventual result
      // will come back as DuplicateVerified.
      release_holders(shard_id);
      shard.state = ShardState::Done;
      shard.worker = worker;
      shard.payload = std::move(canonical_payload);
      return CompletionOutcome::Accepted;
  }
  return CompletionOutcome::Unknown;
}

void LeaseTable::fail_shard(std::uint64_t shard_id,
                            const std::string& worker,
                            const std::string& error, double now) {
  ++counters_.failures;
  auto holder = workers_.find(worker);
  if (holder != workers_.end()) {
    holder->second.held.erase(shard_id);
    holder->second.last_heartbeat = now;  // an error report is liveness too
  }
  auto it = shards_.find(shard_id);
  if (it == shards_.end()) return;
  ShardInfo& shard = it->second;
  // A failure only moves the shard — or records its error — when the
  // reporter still owns the lease; late errors after reassignment or
  // completion change nothing (a superseded holder must not pollute a
  // Done/Quarantined shard's gap report).
  if (shard.state != ShardState::Leased || shard.worker != worker) {
    return;
  }
  shard.last_error = error;
  shard.worker.clear();
  if (shard.attempts >= options_.max_attempts) {
    shard.state = ShardState::Quarantined;
    ++counters_.quarantined;
  } else {
    shard.state = ShardState::Pending;
    shard.not_before = now + backoff_delay(shard_id, shard.attempts);
  }
}

void LeaseTable::reassign(std::uint64_t shard_id, double now,
                          TickReport& report) {
  ShardInfo& shard = shards_.at(shard_id);
  ++counters_.reassignments;
  shard.worker.clear();
  if (shard.attempts >= options_.max_attempts) {
    shard.state = ShardState::Quarantined;
    if (shard.last_error.empty()) {
      shard.last_error = "lease lost " + std::to_string(shard.attempts) +
                         " time(s) (worker death or deadline)";
    }
    ++counters_.quarantined;
    report.quarantined.push_back(shard_id);
    return;
  }
  // Re-split the orphaned range across the idle survivors so recovery
  // is parallel, not serial through one unlucky worker.
  const std::size_t pieces =
      std::min(num_idle_workers(), shard.range.size());
  if (options_.split_on_reassign && pieces >= 2) {
    const core::ShardRange parent_range[] = {shard.range};
    const auto child_ranges = core::ShardPlan::replan(parent_range, pieces);
    if (child_ranges.size() >= 2) {
      shard.state = ShardState::Superseded;
      TickReport::Split split;
      split.parent = shard_id;
      const std::string tag = shard.tag;
      const double weight = shard.weight;
      const std::size_t attempts = shard.attempts;
      const double parent_size = static_cast<double>(shard.range.size());
      for (const core::ShardRange& range : child_ranges) {
        ShardInfo child;
        child.id = next_id_++;
        child.tag = tag;
        child.range = range;
        child.weight =
            weight * static_cast<double>(range.size()) / parent_size;
        child.attempts = attempts;
        child.not_before = now + backoff_delay(child.id, attempts);
        split.children.push_back(child.id);
        report.reassigned.push_back(child.id);
        shards_.emplace(child.id, std::move(child));
      }
      ++counters_.splits;
      report.splits.push_back(std::move(split));
      return;
    }
  }
  shard.state = ShardState::Pending;
  shard.not_before = now + backoff_delay(shard_id, shard.attempts);
  report.reassigned.push_back(shard_id);
}

TickReport LeaseTable::worker_leave(const std::string& name, double now) {
  TickReport report;
  auto it = workers_.find(name);
  if (it == workers_.end()) return report;
  const std::set<std::uint64_t> held = std::move(it->second.held);
  workers_.erase(it);
  report.dead_workers.push_back(name);
  bool held_lease = false;
  for (std::uint64_t id : held) {
    auto shard_it = shards_.find(id);
    if (shard_it == shards_.end()) continue;
    const ShardInfo& shard = shard_it->second;
    if (shard.state != ShardState::Leased || shard.worker != name) {
      continue;  // already reassigned elsewhere; nothing to revoke
    }
    held_lease = true;
    reassign(id, now, report);
  }
  if (held_lease) ++counters_.worker_deaths;
  return report;
}

TickReport LeaseTable::tick(double now) {
  TickReport report;
  // 1. Heartbeat deaths.  Collect first: reassignment mutates workers_.
  std::vector<std::string> dead;
  for (const auto& [name, worker] : workers_) {
    if (now - worker.last_heartbeat > options_.heartbeat_timeout_s) {
      dead.push_back(name);
    }
  }
  for (const std::string& name : dead) {
    const std::set<std::uint64_t> held =
        std::move(workers_.at(name).held);
    workers_.erase(name);
    ++counters_.worker_deaths;
    report.dead_workers.push_back(name);
    for (std::uint64_t id : held) {
      auto it = shards_.find(id);
      if (it == shards_.end()) continue;
      if (it->second.state != ShardState::Leased ||
          it->second.worker != name) {
        continue;
      }
      reassign(id, now, report);
    }
  }
  // 2. Expired leases (stragglers).  The holder keeps its slot — it is
  // presumably still computing — but the shard is offered to others.
  std::vector<std::uint64_t> expired;
  for (const auto& [id, shard] : shards_) {
    if (shard.state == ShardState::Leased &&
        shard.lease_deadline <= now) {
      expired.push_back(id);
    }
  }
  for (std::uint64_t id : expired) {
    report.expired.push_back(id);
    reassign(id, now, report);
  }
  return report;
}

bool LeaseTable::tag_terminal(const std::string& tag) const {
  for (const auto& [id, shard] : shards_) {
    if (shard.tag != tag) continue;
    if (shard.state == ShardState::Pending ||
        shard.state == ShardState::Leased) {
      return false;
    }
  }
  return true;
}

std::vector<ShardInfo> LeaseTable::tag_shards(
    const std::string& tag) const {
  std::vector<ShardInfo> out;
  for (const auto& [id, shard] : shards_) {
    if (shard.tag == tag) out.push_back(shard);
  }
  return out;
}

void LeaseTable::remove_tag(const std::string& tag) {
  for (auto it = shards_.begin(); it != shards_.end();) {
    if (it->second.tag == tag) {
      release_holders(it->first);
      it = shards_.erase(it);
    } else {
      ++it;
    }
  }
}

double LeaseTable::next_event_time(double now) const {
  double next = std::numeric_limits<double>::infinity();
  const bool idle_exists = num_idle_workers() > 0;
  for (const auto& [id, shard] : shards_) {
    switch (shard.state) {
      case ShardState::Pending:
        if (shard.not_before <= now) {
          if (idle_exists) return now;
        } else {
          next = std::min(next, shard.not_before);
        }
        break;
      case ShardState::Leased:
        next = std::min(next, shard.lease_deadline);
        break;
      default:
        break;
    }
  }
  for (const auto& [name, worker] : workers_) {
    next = std::min(next,
                    worker.last_heartbeat + options_.heartbeat_timeout_s);
  }
  return next;
}

const ShardInfo* LeaseTable::shard(std::uint64_t id) const {
  auto it = shards_.find(id);
  return it == shards_.end() ? nullptr : &it->second;
}

}  // namespace midas::svc
