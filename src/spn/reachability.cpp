#include "spn/reachability.h"

#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace midas::spn {

namespace {

/// A tangible marking reached from a vanishing expansion, with the path
/// probability and the impulse rewards collected along the immediate
/// firings.
struct TangibleTarget {
  Marking marking;
  double probability;
  double impulse;
};

constexpr std::size_t kMaxVanishingDepth = 4096;

/// Expands a (possibly vanishing) marking through immediate firings to
/// its tangible successors.  Immediate conflicts resolve by relative
/// weight (the transition's rate function).  Throws on immediate cycles
/// (depth bound) and on zero total weight.
void expand_vanishing(const PetriNet& net, const Marking& m,
                      double probability, double impulse, std::size_t depth,
                      std::vector<TangibleTarget>& out) {
  if (depth > kMaxVanishingDepth) {
    throw std::runtime_error(
        "reachability: immediate-transition cycle (or chain deeper than " +
        std::to_string(kMaxVanishingDepth) + ") at marking " + m.to_string());
  }
  // Collect enabled immediate transitions and their weights.
  std::vector<std::pair<TransitionId, double>> enabled;
  double total_weight = 0.0;
  const auto n = static_cast<TransitionId>(net.num_transitions());
  for (TransitionId t = 0; t < n; ++t) {
    if (net.transition_kind(t) != TransitionKind::Immediate) continue;
    if (!net.enabled(t, m)) continue;
    const double w = net.rate(t, m);
    if (w <= 0.0) continue;
    enabled.emplace_back(t, w);
    total_weight += w;
  }
  if (enabled.empty()) {
    out.push_back({m, probability, impulse});
    return;
  }
  for (const auto& [t, w] : enabled) {
    expand_vanishing(net, net.fire(t, m), probability * (w / total_weight),
                     impulse + net.impulse(t, m), depth + 1, out);
  }
}

}  // namespace

std::vector<char> ReachabilityGraph::absorbing_mask() const {
  std::vector<char> mask(states.size(), 1);
  for (StateId s = 0; s < states.size(); ++s) {
    for (const auto& e : out_edges(s)) {
      if (e.dst != s) {
        mask[s] = 0;
        break;
      }
    }
  }
  return mask;
}

void ReachabilityGraph::compute_rates(const PetriNet& net,
                                      std::span<double> rates,
                                      std::span<double> impulses) const {
  if (rates.size() != edges.size() || impulses.size() != edges.size()) {
    throw std::invalid_argument(
        "compute_rates: output spans must match the edge count");
  }
  for (StateId s = 0; s < states.size(); ++s) {
    const Marking& m = states[s];
    const auto begin = edge_offsets[s];
    const auto end = edge_offsets[s + 1];
    // Edges out of one state reuse the (transition, marking) evaluation:
    // vanishing expansions emit several edges for the same timed firing.
    TransitionId last_t = UINT32_MAX;
    double base_rate = 0.0;
    double timed_impulse = 0.0;
    for (std::uint32_t i = begin; i < end; ++i) {
      const Edge& e = edges[i];
      if (e.transition != last_t) {
        last_t = e.transition;
        base_rate = net.rate(e.transition, m);
        timed_impulse = net.impulse(e.transition, m);
      }
      const double rate = base_rate * e.prob;
      if (rate <= 0.0) {
        throw std::runtime_error(
            "compute_rates: transition " + net.transition_name(e.transition) +
            " re-rates to " + std::to_string(rate) + " at marking " +
            m.to_string() +
            "; the parameter change alters the edge structure and requires "
            "a fresh exploration");
      }
      rates[i] = rate;
      impulses[i] = timed_impulse + e.vanishing_impulse;
    }
  }
}

void ReachabilityGraph::compute_rates_batch(
    std::span<const PetriNet* const> nets, std::span<double> rates,
    std::span<double> impulses, const BatchRateFn& fast) const {
  const std::size_t P = nets.size();
  if (P == 0) {
    throw std::invalid_argument("compute_rates_batch: empty net batch");
  }
  if (rates.size() != edges.size() * P || impulses.size() != edges.size() * P) {
    throw std::invalid_argument(
        "compute_rates_batch: output spans must be edge count x batch size");
  }
  std::vector<double> base_rate(P, 0.0);
  std::vector<double> timed_impulse(P, 0.0);
  for (StateId s = 0; s < states.size(); ++s) {
    const Marking& m = states[s];
    const auto begin = edge_offsets[s];
    const auto end = edge_offsets[s + 1];
    // As in compute_rates, one (transition, marking) evaluation serves
    // every vanishing-expansion edge of the firing — here for all P
    // points at once.
    TransitionId last_t = UINT32_MAX;
    for (std::uint32_t i = begin; i < end; ++i) {
      const Edge& e = edges[i];
      if (e.transition != last_t) {
        last_t = e.transition;
        // The hook evaluates all P points in one call (hoisting the
        // marking-derived work a per-net evaluation repeats P times);
        // declined pairs take the generic per-net path.  Both produce
        // bitwise-identical values (BatchRateFn contract).
        if (!fast || !fast(e.transition, m, base_rate, timed_impulse)) {
          for (std::size_t p = 0; p < P; ++p) {
            base_rate[p] = nets[p]->rate(e.transition, m);
            timed_impulse[p] = nets[p]->impulse(e.transition, m);
          }
        }
      }
      double* rate_row = rates.data() + static_cast<std::size_t>(i) * P;
      double* imp_row = impulses.data() + static_cast<std::size_t>(i) * P;
      for (std::size_t p = 0; p < P; ++p) {
        const double rate = base_rate[p] * e.prob;
        if (rate <= 0.0) {
          throw std::runtime_error(
              "compute_rates_batch: edge " + std::to_string(i) + " (" +
              std::to_string(e.src) + " -> " + std::to_string(e.dst) +
              ", transition " + nets[p]->transition_name(e.transition) +
              ") re-rates to " + std::to_string(rate) + " at marking " +
              m.to_string() + " for batch point " + std::to_string(p) +
              "; the parameter change alters the edge structure and "
              "requires a fresh exploration");
        }
        rate_row[p] = rate;
        imp_row[p] = timed_impulse[p] + e.vanishing_impulse;
      }
    }
  }
}

void ReachabilityGraph::refresh_rates(const PetriNet& net) {
  std::vector<double> rates(edges.size());
  std::vector<double> impulses(edges.size());
  compute_rates(net, rates, impulses);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    edges[i].rate = rates[i];
    edges[i].impulse = impulses[i];
  }
}

ReachabilityGraph explore(const PetriNet& net, const ExploreOptions& opts) {
  ReachabilityGraph g;
  std::unordered_map<Marking, StateId, MarkingHash> index;

  // The initial marking may itself be vanishing; it must collapse to a
  // single tangible marking (an initial distribution over several is not
  // representable in this graph).
  Marking init = net.initial_marking();
  if (net.is_vanishing(init)) {
    std::vector<TangibleTarget> targets;
    expand_vanishing(net, init, 1.0, 0.0, 0, targets);
    if (targets.size() != 1 || targets[0].probability < 1.0 - 1e-12) {
      throw std::runtime_error(
          "reachability: vanishing initial marking expands to multiple "
          "tangible markings; not supported");
    }
    init = targets[0].marking;
  }

  g.states.push_back(init);
  index.emplace(init, 0);
  g.initial = 0;

  std::deque<StateId> frontier{0};
  const auto num_transitions =
      static_cast<TransitionId>(net.num_transitions());
  std::vector<TangibleTarget> targets;

  auto intern = [&](const Marking& m) -> StateId {
    auto [it, inserted] =
        index.emplace(m, static_cast<StateId>(g.states.size()));
    if (inserted) {
      if (g.states.size() >= opts.max_states) {
        throw std::runtime_error(
            "reachability: state space exceeds max_states = " +
            std::to_string(opts.max_states));
      }
      g.states.push_back(it->first);
      frontier.push_back(it->second);
    }
    return it->second;
  };

  while (!frontier.empty()) {
    const StateId sid = frontier.front();
    frontier.pop_front();
    // Copy: g.states may reallocate as successors are appended.
    const Marking m = g.states[sid];

    bool has_progress_edge = false;
    bool has_self_loop = false;
    for (TransitionId t = 0; t < num_transitions; ++t) {
      if (net.transition_kind(t) != TransitionKind::Timed) continue;
      if (!net.enabled(t, m)) continue;
      const double rate = net.rate(t, m);
      if (rate <= 0.0) continue;

      const Marking fired = net.fire(t, m);
      targets.clear();
      if (net.is_vanishing(fired)) {
        expand_vanishing(net, fired, 1.0, 0.0, 0, targets);
      } else {
        targets.push_back({fired, 1.0, 0.0});
      }

      const double timed_impulse = net.impulse(t, m);
      for (const auto& target : targets) {
        StateId dst;
        if (target.marking == m) {
          dst = sid;
          has_self_loop = true;
        } else {
          dst = intern(target.marking);
          has_progress_edge = true;
        }
        g.edges.push_back({sid, dst, rate * target.probability, t,
                           timed_impulse + target.impulse,
                           target.probability, target.impulse});
      }
    }
    if (has_self_loop && !has_progress_edge) {
      throw std::runtime_error(
          "reachability: state " + m.to_string() +
          " has only self-loop firings; mean time to absorption diverges");
    }
  }
  // CSR offsets: the BFS pops states in increasing id order, so edges are
  // already grouped by src ascending — a counting pass suffices.
  g.edge_offsets.assign(g.states.size() + 1, 0);
  for (const auto& e : g.edges) ++g.edge_offsets[e.src + 1];
  for (std::size_t s = 0; s < g.states.size(); ++s) {
    g.edge_offsets[s + 1] += g.edge_offsets[s];
  }
  return g;
}

}  // namespace midas::spn
