// A marking assigns a token count to every place of a Petri net.  The
// reachability explorer hashes millions of these, so the representation
// is a flat int32 vector with an FNV-style combined hash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace midas::spn {

using PlaceId = std::uint32_t;

class Marking {
 public:
  Marking() = default;
  explicit Marking(std::size_t places, std::int32_t fill = 0)
      : counts_(places, fill) {}

  [[nodiscard]] std::int32_t operator[](PlaceId p) const {
    return counts_[p];
  }
  [[nodiscard]] std::int32_t& operator[](PlaceId p) { return counts_[p]; }

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }

  /// Total token count across all places.
  [[nodiscard]] std::int64_t total_tokens() const;

  bool operator==(const Marking& other) const = default;

  [[nodiscard]] std::size_t hash() const noexcept;

  /// "(3, 0, 1)" — for diagnostics and test failure messages.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::int32_t> counts_;
};

struct MarkingHash {
  std::size_t operator()(const Marking& m) const noexcept { return m.hash(); }
};

}  // namespace midas::spn
