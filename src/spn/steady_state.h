// Steady-state solution for ergodic CTMCs via power iteration on the
// uniformised jump chain.  The paper's model is absorbing (no steady
// state), but the engine is a general SPN tool; this solver is exercised
// by the engine tests against closed-form M/M/1/K results and by the
// MANET birth–death group-count model.
#pragma once

#include <vector>

#include "spn/ctmc.h"
#include "spn/reachability.h"

namespace midas::spn {

struct SteadyStateOptions {
  std::size_t max_iterations = 1'000'000;
  double tolerance = 1e-13;
};

struct SteadyStateResult {
  std::vector<double> pi;  // stationary distribution over states
  bool converged = false;
  std::size_t iterations = 0;
};

/// Requires an irreducible chain (every state recurrent); absorbing
/// chains make the iteration collapse onto absorbing states instead.
[[nodiscard]] SteadyStateResult steady_state(
    const ReachabilityGraph& graph, const SteadyStateOptions& opts = {});

}  // namespace midas::spn
