// Stiff-horizon survival analysis via the backward Kolmogorov equation.
//
// Uniformisation (transient.h) costs O(Λ·t) matrix-vector products; for
// mission-length horizons with fast IDS rates Λ·t reaches 10⁸ and the
// method is unusable.  The survival function obeys the backward system
//
//     u'(t) = Q_TT · u(t),   u(0) = 1,   R(t) = u_init(t),
//
// where u_i(t) = P[not yet absorbed by t | start in transient state i].
// The θ-method (Crank–Nicolson by default) advances this stiff ODE with
// steps limited only by accuracy, not by Λ.  The implicit operator
// (I − θh·Q_TT) is row-wise strictly diagonally dominant for every
// h > 0, so Gauss–Seidel is guaranteed to converge at each step.
#pragma once

#include <span>
#include <vector>

#include "spn/reachability.h"

namespace midas::spn {

struct ReliabilityOdeOptions {
  double theta = 0.5;       // 0.5 = Crank–Nicolson, 1.0 = backward Euler
  std::size_t steps = 800;  // integration grid size (log-spaced)
  double decades = 8.0;     // grid spans horizon·10^-decades .. horizon
  double gs_tolerance = 1e-12;
};

class ReliabilityOde {
 public:
  explicit ReliabilityOde(const ReachabilityGraph& graph);

  /// Survival probabilities R(t_j) = P[no absorption by t_j], starting
  /// from the graph's initial state.  `times` must be ascending and
  /// non-negative.
  [[nodiscard]] std::vector<double> survival_at(
      std::span<const double> times,
      const ReliabilityOdeOptions& opts = {}) const;

 private:
  const ReachabilityGraph& graph_;
  // Transient-state subsystem in compact indexing.
  std::vector<std::uint32_t> compact_;  // full → compact (UINT32_MAX = absorbing)
  std::size_t num_transient_ = 0;
  std::uint32_t initial_compact_ = 0;
  bool initial_absorbing_ = false;
  // Q_TT in CSR-like arrays (row = compact transient state).
  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> col_;
  std::vector<double> val_;     // off-diagonal rates into transient states
  std::vector<double> exit_;    // total exit rate per transient state
};

}  // namespace midas::spn
