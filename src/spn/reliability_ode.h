// Stiff-horizon survival analysis via the backward Kolmogorov equation.
//
// Uniformisation (transient.h) costs O(Λ·t) matrix-vector products; for
// mission-length horizons with fast IDS rates Λ·t reaches 10⁸ and the
// method is unusable.  The survival function obeys the backward system
//
//     u'(t) = Q_TT · u(t),   u(0) = 1,   R(t) = u_init(t),
//
// where u_i(t) = P[not yet absorbed by t | start in transient state i].
// The θ-method (Crank–Nicolson by default) advances this stiff ODE with
// steps limited only by accuracy, not by Λ.  The implicit operator
// (I − θh·Q_TT) is row-wise strictly diagonally dominant for every
// h > 0, so Gauss–Seidel is guaranteed to converge at each step.
//
// Phased missions (core::MissionAnalyzer) chain the same integrator
// across piecewise-constant segments through propagate(): the ADJOINT
// system w'(t) = Q_TTᵀ·w(t) advances the transient state DISTRIBUTION
// forward, so the weights at a phase boundary seed the next phase's
// integration and R(t) = Σ_i w_i(t).  The implicit adjoint operator
// (I − θh·Q_TTᵀ) is strictly diagonally dominant by COLUMNS (its
// columns are the backward operator's rows), which guarantees
// Gauss–Seidel convergence just the same.  Per-phase generators come
// from the edge-rate constructor overload (the sweep-engine re-rating
// idiom), so one explored graph serves every structure-invariant phase.
#pragma once

#include <span>
#include <vector>

#include "spn/reachability.h"

namespace midas::spn {

struct ReliabilityOdeOptions {
  double theta = 0.5;       // 0.5 = Crank–Nicolson, 1.0 = backward Euler
  std::size_t steps = 800;  // integration grid size (log-spaced)
  double decades = 8.0;     // grid spans horizon·10^-decades .. horizon
  double gs_tolerance = 1e-12;
  /// > 0 replaces the log-spaced grid with UNIFORM steps of this size
  /// (the last step truncated to the horizon).  Splitting a horizon at
  /// an exact multiple of the step then reproduces the unsplit step
  /// sequence exactly — the phase-boundary chaining tests rely on it.
  double uniform_step_s = 0.0;
};

/// What one propagate() call accumulated over its phase.
struct ForwardResult {
  /// Transient distribution w(duration), full-state indexing
  /// (identically 0 at absorbing states).
  std::vector<double> weights;
  /// ∫₀^duration Σ_i w_i(t) dt — the phase's survival-time integral
  /// (its MTTSF contribution).
  double survival_integral = 0.0;
  /// ∫₀^duration ⟨f_k, w(t)⟩ dt per supplied functional f_k (rate
  /// rewards: cost components, absorption fluxes, ...).
  std::vector<double> functional_integrals;
  /// Σ_i w_i(t_j) at each requested emit time (linear interpolation on
  /// the integration grid, clamped to [0, 1]).
  std::vector<double> survival_at;
};

class ReliabilityOde {
 public:
  explicit ReliabilityOde(const ReachabilityGraph& graph);

  /// As above with per-edge rates overriding the stored ones —
  /// `edge_rates[i]` replaces `graph.edges[i].rate` (the
  /// AbsorbingAnalyzer::solve(edge_rates) idiom: one explored
  /// structure, one rate vector per sweep point or mission phase).
  ReliabilityOde(const ReachabilityGraph& graph,
                 std::span<const double> edge_rates);

  /// Survival probabilities R(t_j) = P[no absorption by t_j], starting
  /// from the graph's initial state.  `times` must be ascending and
  /// non-negative.
  [[nodiscard]] std::vector<double> survival_at(
      std::span<const double> times,
      const ReliabilityOdeOptions& opts = {}) const;

  /// Advances the transient distribution `initial` (full-state
  /// indexing; entries at absorbing states must be zero — absorbed mass
  /// has left the survival problem) through `duration` seconds of this
  /// generator, integrating w' = Q_TTᵀw with the same θ-method/grid as
  /// survival_at.  Accumulates the survival-time integral, one rate
  /// integral per functional in `functionals` (each full-state
  /// indexed), and Σw at each `emit_times` entry (ascending, within
  /// [0, duration]).  Empty `initial` means the graph's initial state.
  [[nodiscard]] ForwardResult propagate(
      std::span<const double> initial, double duration,
      std::span<const std::vector<double>> functionals,
      std::span<const double> emit_times,
      const ReliabilityOdeOptions& opts = {}) const;

  [[nodiscard]] std::size_t num_transient() const noexcept {
    return num_transient_;
  }

 private:
  void assemble(std::span<const double> edge_rates);
  /// The θ-grid over [0, horizon]: log-spaced by default, uniform when
  /// opts.uniform_step_s > 0.
  [[nodiscard]] std::vector<double> make_grid(
      double horizon, const ReliabilityOdeOptions& opts) const;

  const ReachabilityGraph& graph_;
  // Transient-state subsystem in compact indexing.
  std::vector<std::uint32_t> compact_;  // full → compact (UINT32_MAX = absorbing)
  std::vector<std::uint32_t> expand_;   // compact → full
  std::size_t num_transient_ = 0;
  std::uint32_t initial_compact_ = 0;
  bool initial_absorbing_ = false;
  // Q_TT in CSR-like arrays (row = compact transient state).
  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> col_;
  std::vector<double> val_;     // off-diagonal rates into transient states
  std::vector<double> exit_;    // total exit rate per transient state
  // Q_TTᵀ rows (incoming transient→transient edges), for propagate().
  std::vector<std::uint32_t> trow_ptr_;
  std::vector<std::uint32_t> tcol_;
  std::vector<double> tval_;
};

}  // namespace midas::spn
