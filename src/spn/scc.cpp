#include "spn/scc.h"

#include <algorithm>
#include <stdexcept>

namespace midas::spn {

std::vector<std::vector<std::uint32_t>> SccResult::members() const {
  std::vector<std::vector<std::uint32_t>> out(num_components);
  for (std::uint32_t v = 0; v < component.size(); ++v) {
    out[component[v]].push_back(v);
  }
  return out;
}

SccResult strongly_connected_components(
    std::span<const std::uint32_t> offsets,
    std::span<const std::uint32_t> targets) {
  if (offsets.empty()) {
    throw std::invalid_argument("scc: offsets must have at least one entry");
  }
  const auto n = static_cast<std::uint32_t>(offsets.size() - 1);

  SccResult res;
  res.component.assign(n, UINT32_MAX);

  constexpr std::uint32_t kUnvisited = UINT32_MAX;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 0;

  // Iterative Tarjan: explicit DFS frames (node, next-edge cursor).
  struct Frame {
    std::uint32_t node;
    std::uint32_t edge;
  };
  std::vector<Frame> dfs;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, offsets[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;

    while (!dfs.empty()) {
      auto& frame = dfs.back();
      const std::uint32_t u = frame.node;
      if (frame.edge < offsets[u + 1]) {
        const std::uint32_t v = targets[frame.edge++];
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = 1;
          dfs.push_back({v, offsets[v]});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
        continue;
      }
      // u finished: emit its SCC if it is a root.
      if (lowlink[u] == index[u]) {
        const auto cid = static_cast<std::uint32_t>(res.num_components++);
        for (;;) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          res.component[w] = cid;
          if (w == u) break;
        }
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().node] =
            std::min(lowlink[dfs.back().node], lowlink[u]);
      }
    }
  }
  return res;
}

}  // namespace midas::spn
