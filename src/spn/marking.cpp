#include "spn/marking.h"

namespace midas::spn {

std::int64_t Marking::total_tokens() const {
  std::int64_t acc = 0;
  for (auto c : counts_) acc += c;
  return acc;
}

std::size_t Marking::hash() const noexcept {
  // FNV-1a over the raw counts; fast and well-distributed for the small
  // vectors (≤ 8 places) this project uses.
  std::size_t h = 1469598103934665603ull;
  for (auto c : counts_) {
    auto v = static_cast<std::uint32_t>(c);
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::string Marking::to_string() const {
  std::string s = "(";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(counts_[i]);
  }
  s += ")";
  return s;
}

}  // namespace midas::spn
