#include "spn/petri_net.h"

#include <stdexcept>

namespace midas::spn {

TransitionBuilder::TransitionBuilder(PetriNet& net, std::string name)
    : net_(net) {
  t_.name = std::move(name);
}

TransitionBuilder& TransitionBuilder::input(PlaceId p, std::int32_t weight) {
  t_.inputs.push_back({p, weight});
  return *this;
}

TransitionBuilder& TransitionBuilder::output(PlaceId p, std::int32_t weight) {
  t_.outputs.push_back({p, weight});
  return *this;
}

TransitionBuilder& TransitionBuilder::inhibitor(PlaceId p,
                                                std::int32_t weight) {
  t_.inhibitors.push_back({p, weight});
  return *this;
}

TransitionBuilder& TransitionBuilder::rate(RateFn fn) {
  t_.rate = std::move(fn);
  return *this;
}

TransitionBuilder& TransitionBuilder::rate(double constant) {
  t_.rate = [constant](const Marking&) { return constant; };
  return *this;
}

TransitionBuilder& TransitionBuilder::immediate() {
  t_.kind = TransitionKind::Immediate;
  return *this;
}

TransitionBuilder& TransitionBuilder::guard(GuardFn fn) {
  t_.guard = std::move(fn);
  return *this;
}

TransitionBuilder& TransitionBuilder::impulse(ImpulseFn fn) {
  t_.impulse = std::move(fn);
  return *this;
}

TransitionId TransitionBuilder::add() {
  return net_.add_transition(std::move(t_));
}

PlaceId PetriNet::add_place(std::string name, std::int32_t initial) {
  if (initial < 0) {
    throw std::invalid_argument("add_place: negative initial marking");
  }
  place_names_.push_back(std::move(name));
  initial_.push_back(initial);
  return static_cast<PlaceId>(place_names_.size() - 1);
}

TransitionId PetriNet::add_transition(Transition t) {
  if (!t.rate) {
    throw std::invalid_argument("add_transition: '" + t.name +
                                "' has no rate function");
  }
  for (const auto& arcs : {t.inputs, t.outputs, t.inhibitors}) {
    for (const auto& arc : arcs) {
      if (arc.place >= num_places()) {
        throw std::out_of_range("add_transition: '" + t.name +
                                "' references unknown place");
      }
      if (arc.weight <= 0) {
        throw std::invalid_argument("add_transition: '" + t.name +
                                    "' has non-positive arc weight");
      }
    }
  }
  transitions_.push_back(std::move(t));
  return static_cast<TransitionId>(transitions_.size() - 1);
}

Marking PetriNet::initial_marking() const {
  Marking m(num_places());
  for (std::size_t p = 0; p < initial_.size(); ++p) {
    m[static_cast<PlaceId>(p)] = initial_[p];
  }
  return m;
}

bool PetriNet::enabled(TransitionId t, const Marking& m) const {
  const auto& tr = transitions_[t];
  for (const auto& arc : tr.inputs) {
    if (m[arc.place] < arc.weight) return false;
  }
  for (const auto& arc : tr.inhibitors) {
    if (m[arc.place] >= arc.weight) return false;
  }
  if (tr.guard && !tr.guard(m)) return false;
  return true;
}

double PetriNet::rate(TransitionId t, const Marking& m) const {
  const double r = transitions_[t].rate(m);
  return r > 0.0 ? r : 0.0;
}

Marking PetriNet::fire(TransitionId t, const Marking& m) const {
  const auto& tr = transitions_[t];
  Marking next = m;
  for (const auto& arc : tr.inputs) next[arc.place] -= arc.weight;
  for (const auto& arc : tr.outputs) next[arc.place] += arc.weight;
  return next;
}

double PetriNet::impulse(TransitionId t, const Marking& m) const {
  const auto& tr = transitions_[t];
  return tr.impulse ? tr.impulse(m) : 0.0;
}

bool PetriNet::is_vanishing(const Marking& m) const {
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    if (transitions_[t].kind == TransitionKind::Immediate && enabled(t, m) &&
        rate(t, m) > 0.0) {
      return true;
    }
  }
  return false;
}

std::optional<PlaceId> PetriNet::find_place(const std::string& name) const {
  for (std::size_t p = 0; p < place_names_.size(); ++p) {
    if (place_names_[p] == name) return static_cast<PlaceId>(p);
  }
  return std::nullopt;
}

std::optional<TransitionId> PetriNet::find_transition(
    const std::string& name) const {
  for (std::size_t t = 0; t < transitions_.size(); ++t) {
    if (transitions_[t].name == name) return static_cast<TransitionId>(t);
  }
  return std::nullopt;
}

}  // namespace midas::spn
