// Reachability-graph generation: breadth-first exploration of the
// tangible marking space, producing the state list and the rate-labelled
// edge list from which the CTMC generator is assembled.
#pragma once

#include <cstdint>
#include <vector>

#include "spn/marking.h"
#include "spn/petri_net.h"

namespace midas::spn {

using StateId = std::uint32_t;

struct Edge {
  StateId src;
  StateId dst;              // may equal src (self-loop; cost-only firing)
  double rate;              // > 0
  TransitionId transition;
  double impulse;           // impulse reward per firing, evaluated at src
};

struct ReachabilityGraph {
  std::vector<Marking> states;
  std::vector<Edge> edges;
  StateId initial = 0;

  /// True when the state has no edge leading to a *different* state.
  /// (A state with only self-loops never advances; the explorer rejects
  /// such states because mean time to absorption would diverge.)
  [[nodiscard]] std::vector<char> absorbing_mask() const;

  [[nodiscard]] std::size_t num_states() const { return states.size(); }
};

struct ExploreOptions {
  std::size_t max_states = 2'000'000;
};

/// Explores the reachable markings of `net` from its initial marking.
/// Throws std::runtime_error if `max_states` is exceeded or if a state
/// with only self-loop firings is found (diverging MTTA).
[[nodiscard]] ReachabilityGraph explore(const PetriNet& net,
                                        const ExploreOptions& opts = {});

}  // namespace midas::spn
