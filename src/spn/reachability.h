// Reachability-graph generation: breadth-first exploration of the
// tangible marking space, producing the state list and the rate-labelled
// edge list from which the CTMC generator is assembled.
//
// Edges are stored grouped by source state (CSR order: the BFS emits
// states in increasing id order, so each state's out-edges occupy one
// contiguous range of `edges`, delimited by `edge_offsets`).  Consumers
// that walk per-state adjacency — absorbing analysis, SCC condensation,
// reward accumulation — use `out_edges()` instead of re-scanning the
// flat list.
//
// Each edge also records how its effective rate/impulse decompose into
// the timed transition's contribution and the vanishing-path factors
// (`prob`, `vanishing_impulse`).  A parameter sweep that changes only
// rate values — not the enabled structure — can therefore reuse the
// explored graph and call `refresh_rates()` per sweep point instead of
// re-exploring (see core::SweepEngine).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "spn/marking.h"
#include "spn/petri_net.h"

namespace midas::spn {

using StateId = std::uint32_t;

/// Optional fast path for compute_rates_batch: fills `rates[p]` and
/// `impulses[p]` with nets[p]'s rate/impulse of `t` fired from `m`, for
/// every batch point p in one call — letting the caller hoist the
/// marking-derived quantities (group sizes, memo-table indices) that a
/// per-net spn-level evaluation would recompute P times.  Returns false
/// to decline the pair, in which case compute_rates_batch falls back to
/// the generic per-net rate()/impulse() calls.  CONTRACT: the values
/// written must be bitwise what nets[p]->rate(t, m) / ->impulse(t, m)
/// return (the hook is a scheduling optimisation, not a re-definition).
using BatchRateFn = std::function<bool(
    TransitionId t, const Marking& m, std::span<double> rates,
    std::span<double> impulses)>;

struct Edge {
  StateId src;
  StateId dst;              // may equal src (self-loop; cost-only firing)
  double rate;              // > 0; = net.rate(transition, src) · prob
  TransitionId transition;
  double impulse;           // = net.impulse(transition, src) + vanishing_impulse
  double prob;              // path probability through vanishing markings (1 = direct)
  double vanishing_impulse; // impulse collected on immediate firings en route
};

struct ReachabilityGraph {
  std::vector<Marking> states;
  std::vector<Edge> edges;  // grouped by src in ascending order
  /// CSR ranges: out-edges of state s are edges[edge_offsets[s] ..
  /// edge_offsets[s+1]).  Size num_states()+1.
  std::vector<std::uint32_t> edge_offsets;
  StateId initial = 0;

  [[nodiscard]] std::span<const Edge> out_edges(StateId s) const {
    return {edges.data() + edge_offsets[s],
            edges.data() + edge_offsets[s + 1]};
  }

  /// True when the state has no edge leading to a *different* state.
  /// (A state with only self-loops never advances; the explorer rejects
  /// such states because mean time to absorption would diverge.)
  [[nodiscard]] std::vector<char> absorbing_mask() const;

  /// Evaluates per-edge rates and impulses for `net` into parallel
  /// arrays (indexed like `edges`) without mutating the graph — the
  /// sweep engine's zero-copy path: one cached structure, one rate
  /// vector per point.  Valid only when `net` has the same reachable
  /// set and enabled structure as the net this graph was explored from —
  /// i.e. the parameter change scales timed rates/impulses without
  /// zeroing any or enabling new firings, and leaves immediate weights
  /// untouched.  Throws std::runtime_error when a stored edge re-rates
  /// to a non-positive value (structure mismatch).
  void compute_rates(const PetriNet& net, std::span<double> rates,
                     std::span<double> impulses) const;

  /// Batched compute_rates: ONE pass over the structure fills
  /// point-major [edge][point] rate/impulse matrices for P nets that
  /// share this graph's structure — rates[i*P + p] is edge i's rate
  /// under nets[p].  The (transition, marking) evaluation is still
  /// deduplicated across the vanishing-expansion edges of each firing,
  /// exactly as in compute_rates, and each point's values are bitwise
  /// the per-point compute_rates answers.  Spans must hold
  /// edges.size()·P doubles.  Throws std::runtime_error naming the
  /// edge, transition, marking and batch point when a stored edge
  /// re-rates to a non-positive value (structure mismatch).
  ///
  /// `fast` (optional) answers whole (transition, marking) pairs across
  /// all P points at once (see BatchRateFn); pairs it declines — and
  /// everything, when it is empty — take the generic per-net path.
  void compute_rates_batch(std::span<const PetriNet* const> nets,
                           std::span<double> rates,
                           std::span<double> impulses,
                           const BatchRateFn& fast = {}) const;

  /// In-place variant of compute_rates(): overwrites every edge's rate
  /// and impulse.  Same structural contract.
  void refresh_rates(const PetriNet& net);

  [[nodiscard]] std::size_t num_states() const { return states.size(); }
};

struct ExploreOptions {
  std::size_t max_states = 2'000'000;
};

/// Explores the reachable markings of `net` from its initial marking.
/// Throws std::runtime_error if `max_states` is exceeded or if a state
/// with only self-loop firings is found (diverging MTTA).
[[nodiscard]] ReachabilityGraph explore(const PetriNet& net,
                                        const ExploreOptions& opts = {});

}  // namespace midas::spn
