// Reachability-graph generation: breadth-first exploration of the
// tangible marking space, producing the state list and the rate-labelled
// edge list from which the CTMC generator is assembled.
//
// Edges are stored grouped by source state (CSR order: the BFS emits
// states in increasing id order, so each state's out-edges occupy one
// contiguous range of `edges`, delimited by `edge_offsets`).  Consumers
// that walk per-state adjacency — absorbing analysis, SCC condensation,
// reward accumulation — use `out_edges()` instead of re-scanning the
// flat list.
//
// Each edge also records how its effective rate/impulse decompose into
// the timed transition's contribution and the vanishing-path factors
// (`prob`, `vanishing_impulse`).  A parameter sweep that changes only
// rate values — not the enabled structure — can therefore reuse the
// explored graph and call `refresh_rates()` per sweep point instead of
// re-exploring (see core::SweepEngine).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "spn/marking.h"
#include "spn/petri_net.h"

namespace midas::spn {

using StateId = std::uint32_t;

struct Edge {
  StateId src;
  StateId dst;              // may equal src (self-loop; cost-only firing)
  double rate;              // > 0; = net.rate(transition, src) · prob
  TransitionId transition;
  double impulse;           // = net.impulse(transition, src) + vanishing_impulse
  double prob;              // path probability through vanishing markings (1 = direct)
  double vanishing_impulse; // impulse collected on immediate firings en route
};

struct ReachabilityGraph {
  std::vector<Marking> states;
  std::vector<Edge> edges;  // grouped by src in ascending order
  /// CSR ranges: out-edges of state s are edges[edge_offsets[s] ..
  /// edge_offsets[s+1]).  Size num_states()+1.
  std::vector<std::uint32_t> edge_offsets;
  StateId initial = 0;

  [[nodiscard]] std::span<const Edge> out_edges(StateId s) const {
    return {edges.data() + edge_offsets[s],
            edges.data() + edge_offsets[s + 1]};
  }

  /// True when the state has no edge leading to a *different* state.
  /// (A state with only self-loops never advances; the explorer rejects
  /// such states because mean time to absorption would diverge.)
  [[nodiscard]] std::vector<char> absorbing_mask() const;

  /// Evaluates per-edge rates and impulses for `net` into parallel
  /// arrays (indexed like `edges`) without mutating the graph — the
  /// sweep engine's zero-copy path: one cached structure, one rate
  /// vector per point.  Valid only when `net` has the same reachable
  /// set and enabled structure as the net this graph was explored from —
  /// i.e. the parameter change scales timed rates/impulses without
  /// zeroing any or enabling new firings, and leaves immediate weights
  /// untouched.  Throws std::runtime_error when a stored edge re-rates
  /// to a non-positive value (structure mismatch).
  void compute_rates(const PetriNet& net, std::span<double> rates,
                     std::span<double> impulses) const;

  /// In-place variant of compute_rates(): overwrites every edge's rate
  /// and impulse.  Same structural contract.
  void refresh_rates(const PetriNet& net);

  [[nodiscard]] std::size_t num_states() const { return states.size(); }
};

struct ExploreOptions {
  std::size_t max_states = 2'000'000;
};

/// Explores the reachable markings of `net` from its initial marking.
/// Throws std::runtime_error if `max_states` is exceeded or if a state
/// with only self-loop firings is found (diverging MTTA).
[[nodiscard]] ReachabilityGraph explore(const PetriNet& net,
                                        const ExploreOptions& opts = {});

}  // namespace midas::spn
