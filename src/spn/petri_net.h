// Stochastic Petri net with marking-dependent exponential firing rates,
// enabling guard functions, inhibitor arcs, and per-firing impulse
// rewards.  This is the formalism the paper's Fig. 1 model is expressed
// in (the authors used the commercial SPNP package; see DESIGN.md for
// the substitution note).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "spn/marking.h"

namespace midas::spn {

using TransitionId = std::uint32_t;

/// Marking → firing rate (must be >= 0; 0 disables the transition).
using RateFn = std::function<double(const Marking&)>;
/// Marking → enabled?  Evaluated in addition to token availability.
using GuardFn = std::function<bool(const Marking&)>;
/// Marking → impulse reward earned when the transition fires from it.
using ImpulseFn = std::function<double(const Marking&)>;

struct Arc {
  PlaceId place;
  std::int32_t weight = 1;
};

/// Timed transitions fire after an exponential delay; immediate
/// transitions fire in zero time and pre-empt all timed ones (markings
/// enabling them are "vanishing" and eliminated during reachability).
enum class TransitionKind : std::uint8_t { Timed, Immediate };

struct Transition {
  std::string name;
  TransitionKind kind = TransitionKind::Timed;
  std::vector<Arc> inputs;      // tokens consumed on firing
  std::vector<Arc> outputs;     // tokens produced on firing
  std::vector<Arc> inhibitors;  // disables when mark(place) >= weight
  RateFn rate;                  // timed: exponential rate; immediate:
                                // relative firing weight (both > 0)
  GuardFn guard;                // optional
  ImpulseFn impulse;            // optional (default 0)
};

class PetriNet;

/// Fluent transition builder:
///   net.transition("T_CP").input(Tm).output(UCm).rate(fn).add();
class TransitionBuilder {
 public:
  TransitionBuilder(PetriNet& net, std::string name);

  TransitionBuilder& input(PlaceId p, std::int32_t weight = 1);
  TransitionBuilder& output(PlaceId p, std::int32_t weight = 1);
  TransitionBuilder& inhibitor(PlaceId p, std::int32_t weight = 1);
  TransitionBuilder& rate(RateFn fn);
  /// Constant-rate convenience.
  TransitionBuilder& rate(double constant);
  /// Marks the transition immediate; the rate doubles as firing weight.
  TransitionBuilder& immediate();
  TransitionBuilder& guard(GuardFn fn);
  TransitionBuilder& impulse(ImpulseFn fn);

  /// Registers the transition with the net and returns its id.
  TransitionId add();

 private:
  PetriNet& net_;
  Transition t_;
};

class PetriNet {
 public:
  /// Adds a place with `initial` tokens; returns its id.
  PlaceId add_place(std::string name, std::int32_t initial = 0);

  [[nodiscard]] TransitionBuilder transition(std::string name) {
    return TransitionBuilder(*this, std::move(name));
  }
  TransitionId add_transition(Transition t);

  [[nodiscard]] std::size_t num_places() const noexcept {
    return place_names_.size();
  }
  [[nodiscard]] std::size_t num_transitions() const noexcept {
    return transitions_.size();
  }

  [[nodiscard]] Marking initial_marking() const;

  /// Token availability + inhibitors + guard.
  [[nodiscard]] bool enabled(TransitionId t, const Marking& m) const;
  /// Rate in marking `m` (0 when the rate function returns <= 0).
  [[nodiscard]] double rate(TransitionId t, const Marking& m) const;
  /// Fires `t` from `m`; precondition: enabled(t, m).
  [[nodiscard]] Marking fire(TransitionId t, const Marking& m) const;
  /// Impulse reward of firing `t` from `m` (0 when none registered).
  [[nodiscard]] double impulse(TransitionId t, const Marking& m) const;

  [[nodiscard]] const std::string& place_name(PlaceId p) const {
    return place_names_[p];
  }
  [[nodiscard]] const std::string& transition_name(TransitionId t) const {
    return transitions_[t].name;
  }
  [[nodiscard]] TransitionKind transition_kind(TransitionId t) const {
    return transitions_[t].kind;
  }
  /// True when any immediate transition is enabled in `m` (the marking
  /// is "vanishing": the stochastic process spends zero time in it).
  [[nodiscard]] bool is_vanishing(const Marking& m) const;
  /// Lookup by name; empty optional when absent.
  [[nodiscard]] std::optional<PlaceId> find_place(
      const std::string& name) const;
  [[nodiscard]] std::optional<TransitionId> find_transition(
      const std::string& name) const;

 private:
  std::vector<std::string> place_names_;
  std::vector<std::int32_t> initial_;
  std::vector<Transition> transitions_;
};

}  // namespace midas::spn
