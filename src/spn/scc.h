// Strongly-connected components (iterative Tarjan) over a compact
// directed graph.  The absorbing-state solver uses the condensation to
// solve expected-sojourn systems exactly: each SCC becomes a small
// dense block solved in topological order, which is immune to the
// stiffness that defeats global iterative solvers on nearly-
// decomposable chains (e.g. fast group merge/partition cycles riding on
// slow security dynamics).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace midas::spn {

struct SccResult {
  /// Component id per node; ids are assigned so that iterating
  /// components in DECREASING id order visits the condensation in
  /// topological order (sources first).
  std::vector<std::uint32_t> component;
  std::size_t num_components = 0;

  /// Nodes grouped by component id.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> members() const;
};

/// Adjacency in CSR-like form: edges of node `u` are
/// `targets[offsets[u] .. offsets[u+1])`.
[[nodiscard]] SccResult strongly_connected_components(
    std::span<const std::uint32_t> offsets,
    std::span<const std::uint32_t> targets);

}  // namespace midas::spn
