#include "spn/transient.h"

#include <stdexcept>

#include "linalg/fox_glynn.h"

namespace midas::spn {

TransientAnalyzer::TransientAnalyzer(const ReachabilityGraph& graph)
    : graph_(graph), ctmc_(Ctmc::from_graph(graph)) {}

std::vector<double> TransientAnalyzer::distribution_at(
    double t, const TransientOptions& opts) const {
  if (t < 0.0) throw std::invalid_argument("distribution_at: t < 0");
  const std::size_t n = ctmc_.num_states();
  std::vector<double> pi0(n, 0.0);
  pi0[ctmc_.initial()] = 1.0;
  if (t == 0.0) return pi0;

  const double lambda =
      std::max(ctmc_.max_exit_rate() * opts.uniformisation_slack, 1e-12);
  const auto window = linalg::poisson_window(lambda * t, opts.epsilon);

  // P = I + Q/Λ as triplets once; πₖ₊₁ = πₖ P  via  Pᵀ πₖ.
  const auto& q = ctmc_.generator();
  std::vector<linalg::Triplet> trips;
  for (std::size_t r = 0; r < n; ++r) {
    const auto cols = q.row_cols(r);
    const auto vals = q.row_values(r);
    bool has_diag = false;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      double v = vals[k] / lambda;
      if (cols[k] == r) {
        v += 1.0;
        has_diag = true;
      }
      trips.push_back({static_cast<std::uint32_t>(r), cols[k], v});
    }
    if (!has_diag) {
      trips.push_back({static_cast<std::uint32_t>(r),
                       static_cast<std::uint32_t>(r), 1.0});
    }
  }
  const auto p = linalg::CsrMatrix::from_triplets(n, n, std::move(trips));

  std::vector<double> pik = pi0;
  std::vector<double> result(n, 0.0);
  std::vector<double> next;

  for (std::size_t k = 0; k <= window.right; ++k) {
    const double w = window.weight(k);
    if (w > 0.0) {
      for (std::size_t s = 0; s < n; ++s) result[s] += w * pik[s];
    }
    if (k < window.right) {
      p.multiply_transpose(pik, next);
      pik.swap(next);
    }
  }
  return result;
}

double TransientAnalyzer::expected_reward_at(
    double t, const std::function<double(const Marking&)>& reward,
    const TransientOptions& opts) const {
  const auto pi = distribution_at(t, opts);
  double acc = 0.0;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    if (pi[s] > 0.0) acc += pi[s] * reward(graph_.states[s]);
  }
  return acc;
}

double TransientAnalyzer::absorbed_probability_at(
    double t, const TransientOptions& opts) const {
  const auto pi = distribution_at(t, opts);
  const auto& absorbing = ctmc_.absorbing();
  double acc = 0.0;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    if (absorbing[s]) acc += pi[s];
  }
  return acc;
}

}  // namespace midas::spn
