// Transient CTMC solution by uniformisation (Jensen's method):
//   π(t) = Σ_k  Pois(Λt; k) · π₀ Pᵏ,   P = I + Q/Λ,  Λ ≥ max exit rate.
// Used for P[state at time t] queries and instantaneous expected rewards
// (e.g. probability the group has failed by the mission deadline).
#pragma once

#include <functional>
#include <vector>

#include "spn/ctmc.h"
#include "spn/reachability.h"

namespace midas::spn {

struct TransientOptions {
  double epsilon = 1e-12;          // truncation error of the Poisson sum
  double uniformisation_slack = 1.02;  // Λ = slack · max exit rate
};

class TransientAnalyzer {
 public:
  explicit TransientAnalyzer(const ReachabilityGraph& graph);

  /// State probability vector at time t, starting from the graph's
  /// initial state.
  [[nodiscard]] std::vector<double> distribution_at(
      double t, const TransientOptions& opts = {}) const;

  /// Expected instantaneous rate reward at time t:  Σ_s π_s(t)·r(s).
  [[nodiscard]] double expected_reward_at(
      double t, const std::function<double(const Marking&)>& reward,
      const TransientOptions& opts = {}) const;

  /// P[chain is in an absorbing state at time t] — for an absorbing SPN
  /// with failure states this is the unreliability F(t).
  [[nodiscard]] double absorbed_probability_at(
      double t, const TransientOptions& opts = {}) const;

 private:
  const ReachabilityGraph& graph_;
  Ctmc ctmc_;
};

}  // namespace midas::spn
