#include "spn/absorbing.h"

#include <stdexcept>

#include "linalg/dense_matrix.h"
#include "linalg/iterative.h"
#include "spn/scc.h"

namespace midas::spn {

AbsorbingAnalyzer::AbsorbingAnalyzer(const ReachabilityGraph& graph)
    : graph_(graph), ctmc_(Ctmc::from_graph(graph)) {}

AbsorbingResult AbsorbingAnalyzer::solve() const {
  const auto& absorbing = ctmc_.absorbing();
  const std::size_t n = ctmc_.num_states();

  // Compact index over transient states.
  std::vector<std::uint32_t> compact(n, UINT32_MAX);
  std::vector<std::uint32_t> expand;
  expand.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    if (!absorbing[s]) {
      compact[s] = static_cast<std::uint32_t>(expand.size());
      expand.push_back(static_cast<std::uint32_t>(s));
    }
  }
  const std::size_t nt = expand.size();
  if (nt == n) {
    throw std::runtime_error(
        "AbsorbingAnalyzer: chain has no absorbing states");
  }

  AbsorbingResult res;
  res.sojourn.assign(n, 0.0);
  res.absorb_probability.assign(n, 0.0);

  if (nt == 0) {
    // Initial state itself is absorbing: MTTA = 0.
    res.mtta = 0.0;
    res.absorb_probability[ctmc_.initial()] = 1.0;
    res.converged = true;
    return res;
  }

  const auto init_compact = compact[ctmc_.initial()];
  if (init_compact == UINT32_MAX) {
    throw std::runtime_error(
        "AbsorbingAnalyzer: initial state is marked absorbing yet transient "
        "states exist; inconsistent graph");
  }

  // The expected-sojourn balance  exit_j·τ_j = π0_j + Σ_{i→j} τ_i·r_ij
  // is solved exactly by condensation: Tarjan SCCs of the transient
  // graph form a DAG; processing components in topological order makes
  // every cross-component inflow a known quantity, and each component
  // reduces to a dense system of its own (tiny: the model's only cycles
  // are the group partition/merge flips).  This is immune to the
  // stiffness that defeats global Gauss–Seidel when the cycle rates
  // exceed the security rates by many orders of magnitude.
  std::vector<double> exit_rate(nt, 0.0);
  std::vector<std::uint32_t> out_offsets(nt + 1, 0);
  struct InEdge {
    std::uint32_t src;
    double rate;
  };
  std::vector<std::vector<InEdge>> incoming(nt);
  for (const auto& e : graph_.edges) {
    if (e.src == e.dst) continue;
    const auto cs = compact[e.src];
    if (cs == UINT32_MAX) continue;
    exit_rate[cs] += e.rate;
    const auto cd = compact[e.dst];
    if (cd != UINT32_MAX) {
      ++out_offsets[cs + 1];
      incoming[cd].push_back({cs, e.rate});
    }
  }
  for (std::size_t i = 0; i < nt; ++i) out_offsets[i + 1] += out_offsets[i];
  std::vector<std::uint32_t> out_targets(out_offsets[nt]);
  {
    std::vector<std::uint32_t> cursor(out_offsets.begin(),
                                      out_offsets.end() - 1);
    for (std::size_t j = 0; j < nt; ++j) {
      for (const auto& in : incoming[j]) {
        out_targets[cursor[in.src]++] = static_cast<std::uint32_t>(j);
      }
    }
  }

  const auto scc = strongly_connected_components(out_offsets, out_targets);
  const auto components = scc.members();

  std::vector<double> tau(nt, 0.0);
  std::vector<std::uint32_t> local(nt, UINT32_MAX);  // reused across blocks
  // Higher component id = earlier in topological order (sources first).
  for (std::size_t c = components.size(); c-- > 0;) {
    const auto& block = components[c];
    // External inflow (already-solved predecessors) + initial mass.
    auto external_b = [&](std::uint32_t j) {
      double b = j == init_compact ? 1.0 : 0.0;
      for (const auto& in : incoming[j]) {
        if (scc.component[in.src] != c) b += tau[in.src] * in.rate;
      }
      return b;
    };
    if (block.size() == 1) {
      const auto j = block[0];
      if (exit_rate[j] <= 0.0) {
        throw std::runtime_error(
            "AbsorbingAnalyzer: transient state with zero exit rate");
      }
      tau[j] = external_b(j) / exit_rate[j];
      continue;
    }
    // Dense block solve:  exit_j·τ_j − Σ_{i∈block} r_ij·τ_i = b_j.
    const std::size_t k = block.size();
    if (k > 4096) {
      throw std::runtime_error(
          "AbsorbingAnalyzer: transient SCC of size " + std::to_string(k) +
          " exceeds the dense-block limit");
    }
    for (std::size_t r = 0; r < k; ++r) {
      local[block[r]] = static_cast<std::uint32_t>(r);
    }
    linalg::DenseMatrix m(k, k);
    std::vector<double> b(k, 0.0);
    for (std::size_t r = 0; r < k; ++r) {
      const auto j = block[r];
      m(r, r) = exit_rate[j];
      b[r] = external_b(j);
      for (const auto& in : incoming[j]) {
        const auto li = local[in.src];
        if (li != UINT32_MAX) m(r, li) -= in.rate;
      }
    }
    const auto x = linalg::LuSolver(std::move(m)).solve(std::move(b));
    for (std::size_t r = 0; r < k; ++r) {
      tau[block[r]] = x[r];
      local[block[r]] = UINT32_MAX;  // reset for the next block
    }
  }

  res.solver_iterations = components.size();
  res.converged = true;
  double mtta = 0.0;
  for (std::size_t i = 0; i < nt; ++i) {
    res.sojourn[expand[i]] = tau[i];
    mtta += tau[i];
  }
  res.mtta = mtta;

  // Absorption probabilities: flow into each absorbing state.
  for (const auto& e : graph_.edges) {
    if (e.src == e.dst) continue;
    if (!absorbing[e.dst]) continue;
    res.absorb_probability[e.dst] += res.sojourn[e.src] * e.rate;
  }
  return res;
}

double AbsorbingAnalyzer::accumulated_rate_reward(
    const AbsorbingResult& res,
    const std::function<double(const Marking&)>& reward) const {
  double acc = 0.0;
  for (std::size_t s = 0; s < graph_.num_states(); ++s) {
    const double tau = res.sojourn[s];
    if (tau > 0.0) acc += tau * reward(graph_.states[s]);
  }
  return acc;
}

double AbsorbingAnalyzer::accumulated_impulse_reward(
    const AbsorbingResult& res) const {
  double acc = 0.0;
  for (const auto& e : graph_.edges) {
    if (e.impulse == 0.0) continue;
    acc += res.sojourn[e.src] * e.rate * e.impulse;
  }
  return acc;
}

double AbsorbingAnalyzer::absorption_probability_where(
    const AbsorbingResult& res,
    const std::function<bool(const Marking&)>& pred) const {
  double acc = 0.0;
  for (std::size_t s = 0; s < graph_.num_states(); ++s) {
    if (res.absorb_probability[s] > 0.0 && pred(graph_.states[s])) {
      acc += res.absorb_probability[s];
    }
  }
  return acc;
}

}  // namespace midas::spn
