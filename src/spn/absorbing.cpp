#include "spn/absorbing.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "linalg/dense_matrix.h"

namespace midas::spn {

AbsorbingAnalyzer::AbsorbingAnalyzer(const ReachabilityGraph& graph)
    : graph_(graph), absorbing_(graph.absorbing_mask()) {
  const std::size_t n = graph_.num_states();

  // Compact index over transient states.
  compact_.assign(n, UINT32_MAX);
  expand_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    if (!absorbing_[s]) {
      compact_[s] = static_cast<std::uint32_t>(expand_.size());
      expand_.push_back(static_cast<std::uint32_t>(s));
    }
  }
  const std::size_t nt = expand_.size();
  if (nt == n) {
    throw std::runtime_error(
        "AbsorbingAnalyzer: chain has no absorbing states");
  }

  // Snapshot of the stored edge rates so the no-argument solve() does
  // not copy the edge list on every call (the graph is held const, so
  // the snapshot cannot go stale).
  stored_rates_.resize(graph_.edges.size());
  for (std::size_t i = 0; i < stored_rates_.size(); ++i) {
    stored_rates_[i] = graph_.edges[i].rate;
  }

  if (nt == 0) return;  // initial state itself absorbing: MTTA = 0

  init_compact_ = compact_[graph_.initial];
  if (init_compact_ == UINT32_MAX) {
    throw std::runtime_error(
        "AbsorbingAnalyzer: initial state is marked absorbing yet transient "
        "states exist; inconsistent graph");
  }

  // Transient→transient adjacency, once: incoming CSR (for the sojourn
  // balance) and outgoing CSR (for the condensation).
  in_offsets_.assign(nt + 1, 0);
  std::vector<std::uint32_t> out_offsets(nt + 1, 0);
  std::size_t num_tt = 0;
  for (std::size_t i = 0; i < nt; ++i) {
    for (const auto& e : graph_.out_edges(expand_[i])) {
      if (e.src == e.dst) continue;
      const auto cd = compact_[e.dst];
      if (cd != UINT32_MAX) {
        ++in_offsets_[cd + 1];
        ++out_offsets[i + 1];
        ++num_tt;
      }
    }
  }
  for (std::size_t i = 0; i < nt; ++i) {
    in_offsets_[i + 1] += in_offsets_[i];
    out_offsets[i + 1] += out_offsets[i];
  }
  in_edges_.resize(num_tt);
  std::vector<std::uint32_t> out_targets(num_tt);
  {
    std::vector<std::uint32_t> in_cursor(in_offsets_.begin(),
                                         in_offsets_.end() - 1);
    std::vector<std::uint32_t> out_cursor(out_offsets.begin(),
                                          out_offsets.end() - 1);
    for (std::size_t i = 0; i < nt; ++i) {
      const auto cs = static_cast<std::uint32_t>(i);
      const auto begin = graph_.edge_offsets[expand_[i]];
      const auto end = graph_.edge_offsets[expand_[i] + 1];
      for (std::uint32_t idx = begin; idx < end; ++idx) {
        const auto& e = graph_.edges[idx];
        if (e.src == e.dst) continue;
        const auto cd = compact_[e.dst];
        if (cd == UINT32_MAX) continue;
        in_edges_[in_cursor[cd]++] = {cs, idx};
        out_targets[out_cursor[i]++] = cd;
      }
    }
  }

  // Compacted exit-rate and absorption-flow structure: per transient
  // state, the global indices of its non-self-loop out-edges in graph
  // CSR order (exit), and among those the transient→absorbing ones
  // (abs).  The per-edge `e.src != e.dst` / absorbing-dst tests used to
  // run inside every solve(); now they run once here and the per-point
  // loops walk dense index lists.
  exit_offsets_.reserve(nt + 1);
  abs_offsets_.reserve(nt + 1);
  exit_offsets_.push_back(0);
  abs_offsets_.push_back(0);
  for (std::size_t i = 0; i < nt; ++i) {
    const auto begin = graph_.edge_offsets[expand_[i]];
    const auto end = graph_.edge_offsets[expand_[i] + 1];
    for (std::uint32_t idx = begin; idx < end; ++idx) {
      const auto& e = graph_.edges[idx];
      if (e.src == e.dst) continue;
      exit_edges_.push_back(idx);
      if (absorbing_[e.dst]) abs_edges_.push_back({idx, e.dst});
    }
    exit_offsets_.push_back(static_cast<std::uint32_t>(exit_edges_.size()));
    abs_offsets_.push_back(static_cast<std::uint32_t>(abs_edges_.size()));
  }

  scc_ = strongly_connected_components(out_offsets, out_targets);
  components_ = scc_.members();
  for (const auto& block : components_) {
    max_block_ = std::max(max_block_, block.size());
  }

  // Absorption must be certain from the initial marking, or MTTA
  // diverges and the solve fails downstream with an opaque symptom (a
  // zero-exit-rate state, or a singular SCC block).  Detect the two
  // ways that happens here, where the message can say what is wrong:
  //   1. no absorbing state is reachable from the initial state at all;
  //   2. some reachable transient region cannot reach absorption (a
  //      recurrent transient class traps probability mass).
  // Edge existence is structural, so this is a construction-time check;
  // solve(edge_rates) only re-weights existing edges (positively).
  std::vector<char> can_absorb(nt, 0);
  std::vector<std::uint32_t> stack;
  for (std::size_t i = 0; i < nt; ++i) {
    for (const auto& e : graph_.out_edges(expand_[i])) {
      if (e.src != e.dst && absorbing_[e.dst]) {
        can_absorb[i] = 1;
        stack.push_back(static_cast<std::uint32_t>(i));
        break;
      }
    }
  }
  while (!stack.empty()) {
    const auto j = stack.back();
    stack.pop_back();
    for (std::uint32_t k = in_offsets_[j]; k < in_offsets_[j + 1]; ++k) {
      const auto src = in_edges_[k].src;
      if (!can_absorb[src]) {
        can_absorb[src] = 1;
        stack.push_back(src);
      }
    }
  }
  if (!can_absorb[init_compact_]) {
    throw std::runtime_error(
        "AbsorbingAnalyzer: no absorbing state is reachable from the "
        "initial marking " +
        graph_.states[graph_.initial].to_string() +
        " — every path cycles among transient states forever, so mean "
        "time to absorption diverges");
  }
  // Forward sweep over the transient region reachable from the initial
  // state: a reachable state that cannot absorb is a trap.
  std::vector<char> reachable(nt, 0);
  reachable[init_compact_] = 1;
  stack.push_back(init_compact_);
  while (!stack.empty()) {
    const auto j = stack.back();
    stack.pop_back();
    if (!can_absorb[j]) {
      throw std::runtime_error(
          "AbsorbingAnalyzer: transient state " +
          graph_.states[expand_[j]].to_string() +
          " is reachable from the initial marking but cannot reach any "
          "absorbing state (recurrent transient class: mean time to "
          "absorption diverges)");
    }
    for (const auto& e : graph_.out_edges(expand_[j])) {
      if (e.src == e.dst) continue;
      const auto cd = compact_[e.dst];
      if (cd != UINT32_MAX && !reachable[cd]) {
        reachable[cd] = 1;
        stack.push_back(cd);
      }
    }
  }
}

AbsorbingResult AbsorbingAnalyzer::solve() const {
  return solve(stored_rates_);
}

AbsorbingResult AbsorbingAnalyzer::solve(
    std::span<const double> edge_rates) const {
  return solve(edge_rates, SolveOptions{});
}

AbsorbingResult AbsorbingAnalyzer::solve(std::span<const double> edge_rates,
                                         const SolveOptions& opts) const {
  return solve_impl({}, edge_rates, opts);
}

AbsorbingResult AbsorbingAnalyzer::solve_from(
    std::span<const double> initial_mass, std::span<const double> edge_rates,
    const SolveOptions& opts) const {
  if (!initial_mass.empty() && initial_mass.size() != graph_.num_states()) {
    throw std::invalid_argument(
        "AbsorbingAnalyzer::solve_from: initial_mass size " +
        std::to_string(initial_mass.size()) +
        " does not match state count " +
        std::to_string(graph_.num_states()));
  }
  return solve_impl(initial_mass, edge_rates, opts);
}

AbsorbingResult AbsorbingAnalyzer::solve_impl(
    std::span<const double> initial_mass, std::span<const double> edge_rates,
    const SolveOptions& opts) const {
  if (edge_rates.size() != graph_.edges.size()) {
    throw std::invalid_argument(
        "AbsorbingAnalyzer::solve: edge_rates size " +
        std::to_string(edge_rates.size()) + " does not match edge count " +
        std::to_string(graph_.edges.size()));
  }
  const std::size_t n = graph_.num_states();
  const std::size_t nt = expand_.size();

  AbsorbingResult res;
  if (opts.sojourn) res.sojourn.assign(n, 0.0);

  if (nt == 0) {
    // Initial state itself is absorbing: MTTA = 0.  With a custom mass
    // the contract puts nothing at absorbing states, so there is no
    // transient mass at all and every expectation is 0.
    res.mtta = 0.0;
    if (opts.absorb_probability) {
      res.absorb_probability.assign(n, 0.0);
      if (initial_mass.empty()) res.absorb_probability[graph_.initial] = 1.0;
    }
    res.converged = true;
    return res;
  }

  // Total exit rate per transient state (self-loops cancel in Q): walk
  // the construction-time compacted edge lists — no per-edge self-loop
  // test in the sweep's hot path.
  std::vector<double> exit_rate(nt, 0.0);
  for (std::size_t i = 0; i < nt; ++i) {
    for (std::uint32_t k = exit_offsets_[i]; k < exit_offsets_[i + 1]; ++k) {
      exit_rate[i] += edge_rates[exit_edges_[k]];
    }
  }

  // The expected-sojourn balance  exit_j·τ_j = π0_j + Σ_{i→j} τ_i·r_ij
  // is solved exactly by condensation: Tarjan SCCs of the transient
  // graph form a DAG; processing components in topological order makes
  // every cross-component inflow a known quantity, and each component
  // reduces to a dense system of its own (tiny: the model's only cycles
  // are the group partition/merge flips).  This is immune to the
  // stiffness that defeats global Gauss–Seidel when the cycle rates
  // exceed the security rates by many orders of magnitude.
  std::vector<double> tau(nt, 0.0);
  std::vector<std::uint32_t> local(nt, UINT32_MAX);  // reused across blocks
  // π₀ hook: the default unit mass at the initial state, or the
  // caller's full-state distribution (solve_from).  The empty branch is
  // the literal legacy expression, so plain solves stay bitwise.
  auto init_of = [&](std::uint32_t j) {
    return initial_mass.empty() ? (j == init_compact_ ? 1.0 : 0.0)
                                : initial_mass[expand_[j]];
  };
  // External inflow (already-solved predecessors) + initial mass.
  auto external_b = [&](std::uint32_t j, std::uint32_t c) {
    double b = init_of(j);
    for (std::uint32_t k = in_offsets_[j]; k < in_offsets_[j + 1]; ++k) {
      const auto& in = in_edges_[k];
      if (scc_.component[in.src] != c) b += tau[in.src] * edge_rates[in.edge];
    }
    return b;
  };
  // Higher component id = earlier in topological order (sources first).
  for (std::size_t c = components_.size(); c-- > 0;) {
    const auto& block = components_[c];
    if (block.size() == 1) {
      const auto j = block[0];
      if (exit_rate[j] <= 0.0) {
        throw std::runtime_error(
            "AbsorbingAnalyzer: transient state with zero exit rate");
      }
      tau[j] = external_b(j, static_cast<std::uint32_t>(c)) / exit_rate[j];
      continue;
    }
    // Dense block solve:  exit_j·τ_j − Σ_{i∈block} r_ij·τ_i = b_j.
    const std::size_t k = block.size();
    if (k > 4096) {
      throw std::runtime_error(
          "AbsorbingAnalyzer: transient SCC of size " + std::to_string(k) +
          " exceeds the dense-block limit");
    }
    for (std::size_t r = 0; r < k; ++r) {
      local[block[r]] = static_cast<std::uint32_t>(r);
    }
    linalg::DenseMatrix m(k, k);
    std::vector<double> b(k, 0.0);
    for (std::size_t r = 0; r < k; ++r) {
      const auto j = block[r];
      m(r, r) = exit_rate[j];
      b[r] = external_b(j, static_cast<std::uint32_t>(c));
      for (std::uint32_t e = in_offsets_[j]; e < in_offsets_[j + 1]; ++e) {
        const auto& in = in_edges_[e];
        const auto li = local[in.src];
        if (li != UINT32_MAX) m(r, li) -= edge_rates[in.edge];
      }
    }
    const auto x = linalg::LuSolver(std::move(m)).solve(std::move(b));
    for (std::size_t r = 0; r < k; ++r) {
      tau[block[r]] = x[r];
      local[block[r]] = UINT32_MAX;  // reset for the next block
    }
  }

  res.solver_blocks = components_.size();
  res.converged = true;
  double mtta = 0.0;
  for (std::size_t i = 0; i < nt; ++i) {
    if (opts.sojourn) res.sojourn[expand_[i]] = tau[i];
    mtta += tau[i];
  }
  res.mtta = mtta;

  // Absorption probabilities: flow into each absorbing state, via the
  // compacted transient→absorbing edge list.
  if (opts.absorb_probability) {
    res.absorb_probability.assign(n, 0.0);
    for (std::size_t i = 0; i < nt; ++i) {
      for (std::uint32_t k = abs_offsets_[i]; k < abs_offsets_[i + 1]; ++k) {
        const auto& ae = abs_edges_[k];
        res.absorb_probability[ae.dst] += tau[i] * edge_rates[ae.edge];
      }
    }
  }
  return res;
}

AbsorbingBatchResult AbsorbingAnalyzer::solve_batch(
    std::span<const double> edge_rates, std::size_t num_points,
    const BatchSolveOptions& opts, util::Arena* arena) const {
  const std::size_t P = num_points;
  if (P == 0) {
    throw std::invalid_argument(
        "AbsorbingAnalyzer::solve_batch: num_points must be positive");
  }
  if (edge_rates.size() != graph_.edges.size() * P) {
    throw std::invalid_argument(
        "AbsorbingAnalyzer::solve_batch: edge_rates size " +
        std::to_string(edge_rates.size()) +
        " does not match edge count x num_points = " +
        std::to_string(graph_.edges.size() * P));
  }
  util::Arena& a = arena != nullptr ? *arena : util::thread_scratch_arena();
  const std::size_t n = graph_.num_states();
  const std::size_t nt = expand_.size();
  const double* rates = edge_rates.data();

  AbsorbingBatchResult res;
  res.num_points = P;
  res.mtta = a.make_span<double>(P, 0.0);
  res.sojourn = a.make_span<double>(n * P, 0.0);
  res.absorb_probability = a.make_span<double>(n * P, 0.0);

  if (nt == 0) {
    double* row = res.absorb_probability.data() +
                  static_cast<std::size_t>(graph_.initial) * P;
    for (std::size_t p = 0; p < P; ++p) row[p] = 1.0;
    res.converged = true;
    return res;
  }

  // Exit rates, point-major: each compacted edge contributes a
  // contiguous row of P rates to its source's row.
  auto exit = a.make_span<double>(nt * P, 0.0);
  for (std::size_t i = 0; i < nt; ++i) {
    double* row = exit.data() + i * P;
    for (std::uint32_t k = exit_offsets_[i]; k < exit_offsets_[i + 1]; ++k) {
      const double* er = rates + static_cast<std::size_t>(exit_edges_[k]) * P;
      for (std::size_t p = 0; p < P; ++p) row[p] += er[p];
    }
  }

  auto tau = a.make_span<double>(nt * P, 0.0);
  auto local = a.make_span<std::uint32_t>(nt, UINT32_MAX);

  // Dense-block scratch, sized once to the largest SCC.
  const std::size_t kmax = std::max<std::size_t>(max_block_, 1);
  auto b = a.make_span<double>(kmax * P);         // point-major RHS
  auto M = a.make_span<double>(kmax * kmax * P);  // point-major blocks
  auto Mp = a.make_span<double>(kmax * kmax);     // one point's block
  auto xk = a.make_span<double>(kmax);
  auto ipiv = a.make_span<std::uint32_t>(kmax);
  // Factor-reuse scratch.
  std::span<double> m00, G;
  std::span<std::uint32_t> head, member;
  if (opts.factor_reuse && max_block_ > 1) {
    m00 = a.make_span<double>(P);
    G = a.make_span<double>(kmax * P);  // grouped RHS, component-major
    head = a.make_span<std::uint32_t>(P);
    member = a.make_span<std::uint32_t>(P);
  }

  // Higher component id = earlier in topological order (sources first) —
  // the scalar solve's order, mirrored exactly.
  for (std::size_t c = components_.size(); c-- > 0;) {
    const auto& block = components_[c];
    const auto cc = static_cast<std::uint32_t>(c);
    if (block.size() == 1) {
      const auto j = block[0];
      const double* ej = exit.data() + static_cast<std::size_t>(j) * P;
      for (std::size_t p = 0; p < P; ++p) {
        if (ej[p] <= 0.0) {
          throw std::runtime_error(
              "AbsorbingAnalyzer: transient state with zero exit rate");
        }
      }
      // External inflow + initial mass, accumulated per point in the
      // scalar external_b's in-CSR order.
      double* bj = b.data();
      const double init = j == init_compact_ ? 1.0 : 0.0;
      for (std::size_t p = 0; p < P; ++p) bj[p] = init;
      for (std::uint32_t k = in_offsets_[j]; k < in_offsets_[j + 1]; ++k) {
        const auto& in = in_edges_[k];
        if (scc_.component[in.src] == cc) continue;
        const double* ts = tau.data() + static_cast<std::size_t>(in.src) * P;
        const double* er = rates + static_cast<std::size_t>(in.edge) * P;
        for (std::size_t p = 0; p < P; ++p) bj[p] += ts[p] * er[p];
      }
      double* tj = tau.data() + static_cast<std::size_t>(j) * P;
      for (std::size_t p = 0; p < P; ++p) tj[p] = bj[p] / ej[p];
      continue;
    }
    const std::size_t k = block.size();
    if (k > 4096) {
      throw std::runtime_error(
          "AbsorbingAnalyzer: transient SCC of size " + std::to_string(k) +
          " exceeds the dense-block limit");
    }
    // Point-major assembly:  M[(r·k+c)·P + p],  b[r·P + p].  The scalar
    // solve accumulates b (cross-component in-edges) and the block
    // coefficients (same-component in-edges) from the same ordered
    // in-CSR scan; the targets are disjoint, so one interleaved scan
    // reproduces both accumulation sequences bitwise.
    std::fill_n(M.data(), k * k * P, 0.0);
    for (std::size_t r = 0; r < k; ++r) {
      local[block[r]] = static_cast<std::uint32_t>(r);
    }
    for (std::size_t r = 0; r < k; ++r) {
      const auto j = block[r];
      double* diag = M.data() + (r * k + r) * P;
      const double* ej = exit.data() + static_cast<std::size_t>(j) * P;
      for (std::size_t p = 0; p < P; ++p) diag[p] = ej[p];
      double* br = b.data() + r * P;
      const double init = j == init_compact_ ? 1.0 : 0.0;
      for (std::size_t p = 0; p < P; ++p) br[p] = init;
      for (std::uint32_t e = in_offsets_[j]; e < in_offsets_[j + 1]; ++e) {
        const auto& in = in_edges_[e];
        const double* er = rates + static_cast<std::size_t>(in.edge) * P;
        if (scc_.component[in.src] != cc) {
          const double* ts = tau.data() + static_cast<std::size_t>(in.src) * P;
          for (std::size_t p = 0; p < P; ++p) br[p] += ts[p] * er[p];
        } else {
          double* mrc = M.data() + (r * k + local[in.src]) * P;
          for (std::size_t p = 0; p < P; ++p) mrc[p] -= er[p];
        }
      }
    }

    // Per-point fallback path: gather point p's block, factor, solve —
    // bitwise the scalar LuSolver path (shared factor/substitution
    // kernels, same values in, same order).
    auto solve_per_point = [&]() {
      for (std::size_t p = 0; p < P; ++p) {
        for (std::size_t rc = 0; rc < k * k; ++rc) Mp[rc] = M[rc * P + p];
        linalg::LuFactorView view{Mp.first(k * k), ipiv.first(k), k};
        view.factor();
        for (std::size_t r = 0; r < k; ++r) xk[r] = b[r * P + p];
        view.solve_to(xk.first(k), xk.first(k));
        for (std::size_t r = 0; r < k; ++r) {
          tau[static_cast<std::size_t>(block[r]) * P + p] = xk[r];
        }
      }
      res.blocks_factored += P;
    };

    bool can_normalise = opts.factor_reuse;
    if (can_normalise) {
      // Normalisation scale: the power of two bracketing the head
      // state's exit rate (block diagonal (0,0)).  A power-of-two
      // divide is EXACT, so N_p = M_p / 2^e keeps every mantissa:
      // factoring N_p chooses the same pivots and produces the scalar
      // factorisation's values scaled by 2^-e, and the substitution
      // returns bitwise the raw-block solution — factor reuse never
      // perturbs the arithmetic, it only shares work.  The (0,0) entry
      // is positive in any well-posed solve; bail out to the per-point
      // path rather than take ilogb of a degenerate one.
      for (std::size_t p = 0; p < P; ++p) {
        const double pivot = M[p];  // entry (0,0), point-major row 0
        if (!(pivot > 0.0)) {
          can_normalise = false;
          break;
        }
        m00[p] = std::ldexp(1.0, std::ilogb(pivot));
      }
    }
    if (!can_normalise) {
      solve_per_point();
    } else {
      // N_p = M_p / 2^e_p in place.  Points whose normalised blocks are
      // bitwise identical (identical blocks, or exact power-of-two
      // multiples — the common-scalar-multiple structure of rate-scaled
      // sweeps) share one factorisation; tau_p then depends only on
      // (N_p, b_p, e_p), never on which points share the batch.
      for (std::size_t rc = 0; rc < k * k; ++rc) {
        double* row = M.data() + rc * P;
        for (std::size_t p = 0; p < P; ++p) row[p] /= m00[p];
      }
      auto same_block = [&](std::size_t p, std::size_t q) {
        for (std::size_t rc = 0; rc < k * k; ++rc) {
          const double* row = M.data() + rc * P;
          if (std::bit_cast<std::uint64_t>(row[p]) !=
              std::bit_cast<std::uint64_t>(row[q])) {
            return false;
          }
        }
        return true;
      };
      for (std::size_t p = 0; p < P; ++p) {
        head[p] = static_cast<std::uint32_t>(p);
        for (std::size_t q = 0; q < p; ++q) {
          if (head[q] != q) continue;  // compare against group heads only
          if (same_block(p, q)) {
            head[p] = static_cast<std::uint32_t>(q);
            break;
          }
        }
      }
      for (std::size_t h = 0; h < P; ++h) {
        if (head[h] != h) continue;
        std::size_t n_g = 0;
        for (std::size_t p = 0; p < P; ++p) {
          if (head[p] == h) member[n_g++] = static_cast<std::uint32_t>(p);
        }
        for (std::size_t rc = 0; rc < k * k; ++rc) Mp[rc] = M[rc * P + h];
        linalg::LuFactorView view{Mp.first(k * k), ipiv.first(k), k};
        view.factor();
        ++res.blocks_factored;
        // Scaled right-hand sides g_p = b_p / m00_p, component-major.
        for (std::size_t r = 0; r < k; ++r) {
          double* gr = G.data() + r * n_g;
          for (std::size_t g = 0; g < n_g; ++g) {
            const std::size_t p = member[g];
            gr[g] = b[r * P + p] / m00[p];
          }
        }
        view.solve_many(G.first(k * n_g), n_g);
        for (std::size_t r = 0; r < k; ++r) {
          const double* gr = G.data() + r * n_g;
          for (std::size_t g = 0; g < n_g; ++g) {
            tau[static_cast<std::size_t>(block[r]) * P + member[g]] = gr[g];
          }
        }
        res.blocks_reused += n_g - 1;
      }
    }
    for (std::size_t r = 0; r < k; ++r) {
      local[block[r]] = UINT32_MAX;  // reset for the next block
    }
  }

  res.solver_blocks = components_.size();
  res.converged = true;
  double* mtta = res.mtta.data();
  for (std::size_t i = 0; i < nt; ++i) {
    const double* ti = tau.data() + i * P;
    double* so =
        res.sojourn.data() + static_cast<std::size_t>(expand_[i]) * P;
    for (std::size_t p = 0; p < P; ++p) so[p] = ti[p];
    for (std::size_t p = 0; p < P; ++p) mtta[p] += ti[p];
  }

  // Absorption probabilities: flow into each absorbing state, in the
  // scalar pass's state/edge order per point.
  for (std::size_t i = 0; i < nt; ++i) {
    const double* ti = tau.data() + i * P;
    for (std::uint32_t k = abs_offsets_[i]; k < abs_offsets_[i + 1]; ++k) {
      const auto& ae = abs_edges_[k];
      double* ap = res.absorb_probability.data() +
                   static_cast<std::size_t>(ae.dst) * P;
      const double* er = rates + static_cast<std::size_t>(ae.edge) * P;
      for (std::size_t p = 0; p < P; ++p) ap[p] += ti[p] * er[p];
    }
  }
  return res;
}

double AbsorbingAnalyzer::accumulated_rate_reward(
    const AbsorbingResult& res,
    const std::function<double(const Marking&)>& reward) const {
  double acc = 0.0;
  for (std::size_t s = 0; s < graph_.num_states(); ++s) {
    const double tau = res.sojourn[s];
    if (tau > 0.0) acc += tau * reward(graph_.states[s]);
  }
  return acc;
}

double AbsorbingAnalyzer::accumulated_impulse_reward(
    const AbsorbingResult& res) const {
  double acc = 0.0;
  for (const auto& e : graph_.edges) {
    if (e.impulse == 0.0) continue;
    acc += res.sojourn[e.src] * e.rate * e.impulse;
  }
  return acc;
}

double AbsorbingAnalyzer::accumulated_impulse_reward(
    const AbsorbingResult& res, std::span<const double> edge_rates) const {
  if (edge_rates.size() != graph_.edges.size()) {
    throw std::invalid_argument(
        "accumulated_impulse_reward: edge_rates size does not match edge "
        "count");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < graph_.edges.size(); ++i) {
    const auto& e = graph_.edges[i];
    if (e.impulse == 0.0) continue;
    acc += res.sojourn[e.src] * edge_rates[i] * e.impulse;
  }
  return acc;
}

double AbsorbingAnalyzer::accumulated_impulse_reward(
    const AbsorbingResult& res, std::span<const double> edge_rates,
    std::span<const double> edge_impulses) const {
  if (edge_rates.size() != graph_.edges.size() ||
      edge_impulses.size() != graph_.edges.size()) {
    throw std::invalid_argument(
        "accumulated_impulse_reward: edge_rates/edge_impulses size does "
        "not match edge count");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < graph_.edges.size(); ++i) {
    if (edge_impulses[i] == 0.0) continue;
    acc += res.sojourn[graph_.edges[i].src] * edge_rates[i] *
           edge_impulses[i];
  }
  return acc;
}

double AbsorbingAnalyzer::absorption_probability_where(
    const AbsorbingResult& res,
    const std::function<bool(const Marking&)>& pred) const {
  double acc = 0.0;
  for (std::size_t s = 0; s < graph_.num_states(); ++s) {
    if (res.absorb_probability[s] > 0.0 && pred(graph_.states[s])) {
      acc += res.absorb_probability[s];
    }
  }
  return acc;
}

}  // namespace midas::spn
