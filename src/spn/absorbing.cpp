#include "spn/absorbing.h"

#include <stdexcept>

#include "linalg/dense_matrix.h"

namespace midas::spn {

AbsorbingAnalyzer::AbsorbingAnalyzer(const ReachabilityGraph& graph)
    : graph_(graph), absorbing_(graph.absorbing_mask()) {
  const std::size_t n = graph_.num_states();

  // Compact index over transient states.
  compact_.assign(n, UINT32_MAX);
  expand_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    if (!absorbing_[s]) {
      compact_[s] = static_cast<std::uint32_t>(expand_.size());
      expand_.push_back(static_cast<std::uint32_t>(s));
    }
  }
  const std::size_t nt = expand_.size();
  if (nt == n) {
    throw std::runtime_error(
        "AbsorbingAnalyzer: chain has no absorbing states");
  }
  if (nt == 0) return;  // initial state itself absorbing: MTTA = 0

  init_compact_ = compact_[graph_.initial];
  if (init_compact_ == UINT32_MAX) {
    throw std::runtime_error(
        "AbsorbingAnalyzer: initial state is marked absorbing yet transient "
        "states exist; inconsistent graph");
  }

  // Transient→transient adjacency, once: incoming CSR (for the sojourn
  // balance) and outgoing CSR (for the condensation).
  in_offsets_.assign(nt + 1, 0);
  std::vector<std::uint32_t> out_offsets(nt + 1, 0);
  std::size_t num_tt = 0;
  for (std::size_t i = 0; i < nt; ++i) {
    for (const auto& e : graph_.out_edges(expand_[i])) {
      if (e.src == e.dst) continue;
      const auto cd = compact_[e.dst];
      if (cd != UINT32_MAX) {
        ++in_offsets_[cd + 1];
        ++out_offsets[i + 1];
        ++num_tt;
      }
    }
  }
  for (std::size_t i = 0; i < nt; ++i) {
    in_offsets_[i + 1] += in_offsets_[i];
    out_offsets[i + 1] += out_offsets[i];
  }
  in_edges_.resize(num_tt);
  std::vector<std::uint32_t> out_targets(num_tt);
  {
    std::vector<std::uint32_t> in_cursor(in_offsets_.begin(),
                                         in_offsets_.end() - 1);
    std::vector<std::uint32_t> out_cursor(out_offsets.begin(),
                                          out_offsets.end() - 1);
    for (std::size_t i = 0; i < nt; ++i) {
      const auto cs = static_cast<std::uint32_t>(i);
      const auto begin = graph_.edge_offsets[expand_[i]];
      const auto end = graph_.edge_offsets[expand_[i] + 1];
      for (std::uint32_t idx = begin; idx < end; ++idx) {
        const auto& e = graph_.edges[idx];
        if (e.src == e.dst) continue;
        const auto cd = compact_[e.dst];
        if (cd == UINT32_MAX) continue;
        in_edges_[in_cursor[cd]++] = {cs, idx};
        out_targets[out_cursor[i]++] = cd;
      }
    }
  }

  scc_ = strongly_connected_components(out_offsets, out_targets);
  components_ = scc_.members();

  // Absorption must be certain from the initial marking, or MTTA
  // diverges and the solve fails downstream with an opaque symptom (a
  // zero-exit-rate state, or a singular SCC block).  Detect the two
  // ways that happens here, where the message can say what is wrong:
  //   1. no absorbing state is reachable from the initial state at all;
  //   2. some reachable transient region cannot reach absorption (a
  //      recurrent transient class traps probability mass).
  // Edge existence is structural, so this is a construction-time check;
  // solve(edge_rates) only re-weights existing edges (positively).
  std::vector<char> can_absorb(nt, 0);
  std::vector<std::uint32_t> stack;
  for (std::size_t i = 0; i < nt; ++i) {
    for (const auto& e : graph_.out_edges(expand_[i])) {
      if (e.src != e.dst && absorbing_[e.dst]) {
        can_absorb[i] = 1;
        stack.push_back(static_cast<std::uint32_t>(i));
        break;
      }
    }
  }
  while (!stack.empty()) {
    const auto j = stack.back();
    stack.pop_back();
    for (std::uint32_t k = in_offsets_[j]; k < in_offsets_[j + 1]; ++k) {
      const auto src = in_edges_[k].src;
      if (!can_absorb[src]) {
        can_absorb[src] = 1;
        stack.push_back(src);
      }
    }
  }
  if (!can_absorb[init_compact_]) {
    throw std::runtime_error(
        "AbsorbingAnalyzer: no absorbing state is reachable from the "
        "initial marking " +
        graph_.states[graph_.initial].to_string() +
        " — every path cycles among transient states forever, so mean "
        "time to absorption diverges");
  }
  // Forward sweep over the transient region reachable from the initial
  // state: a reachable state that cannot absorb is a trap.
  std::vector<char> reachable(nt, 0);
  reachable[init_compact_] = 1;
  stack.push_back(init_compact_);
  while (!stack.empty()) {
    const auto j = stack.back();
    stack.pop_back();
    if (!can_absorb[j]) {
      throw std::runtime_error(
          "AbsorbingAnalyzer: transient state " +
          graph_.states[expand_[j]].to_string() +
          " is reachable from the initial marking but cannot reach any "
          "absorbing state (recurrent transient class: mean time to "
          "absorption diverges)");
    }
    for (const auto& e : graph_.out_edges(expand_[j])) {
      if (e.src == e.dst) continue;
      const auto cd = compact_[e.dst];
      if (cd != UINT32_MAX && !reachable[cd]) {
        reachable[cd] = 1;
        stack.push_back(cd);
      }
    }
  }
}

AbsorbingResult AbsorbingAnalyzer::solve() const {
  std::vector<double> rates(graph_.edges.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    rates[i] = graph_.edges[i].rate;
  }
  return solve(rates);
}

AbsorbingResult AbsorbingAnalyzer::solve(
    std::span<const double> edge_rates) const {
  if (edge_rates.size() != graph_.edges.size()) {
    throw std::invalid_argument(
        "AbsorbingAnalyzer::solve: edge_rates size " +
        std::to_string(edge_rates.size()) + " does not match edge count " +
        std::to_string(graph_.edges.size()));
  }
  const std::size_t n = graph_.num_states();
  const std::size_t nt = expand_.size();

  AbsorbingResult res;
  res.sojourn.assign(n, 0.0);
  res.absorb_probability.assign(n, 0.0);

  if (nt == 0) {
    // Initial state itself is absorbing: MTTA = 0.
    res.mtta = 0.0;
    res.absorb_probability[graph_.initial] = 1.0;
    res.converged = true;
    return res;
  }

  // Total exit rate per transient state (self-loops cancel in Q).
  std::vector<double> exit_rate(nt, 0.0);
  for (std::size_t i = 0; i < nt; ++i) {
    const auto begin = graph_.edge_offsets[expand_[i]];
    const auto end = graph_.edge_offsets[expand_[i] + 1];
    for (std::uint32_t idx = begin; idx < end; ++idx) {
      const auto& e = graph_.edges[idx];
      if (e.src != e.dst) exit_rate[i] += edge_rates[idx];
    }
  }

  // The expected-sojourn balance  exit_j·τ_j = π0_j + Σ_{i→j} τ_i·r_ij
  // is solved exactly by condensation: Tarjan SCCs of the transient
  // graph form a DAG; processing components in topological order makes
  // every cross-component inflow a known quantity, and each component
  // reduces to a dense system of its own (tiny: the model's only cycles
  // are the group partition/merge flips).  This is immune to the
  // stiffness that defeats global Gauss–Seidel when the cycle rates
  // exceed the security rates by many orders of magnitude.
  std::vector<double> tau(nt, 0.0);
  std::vector<std::uint32_t> local(nt, UINT32_MAX);  // reused across blocks
  // External inflow (already-solved predecessors) + initial mass.
  auto external_b = [&](std::uint32_t j, std::uint32_t c) {
    double b = j == init_compact_ ? 1.0 : 0.0;
    for (std::uint32_t k = in_offsets_[j]; k < in_offsets_[j + 1]; ++k) {
      const auto& in = in_edges_[k];
      if (scc_.component[in.src] != c) b += tau[in.src] * edge_rates[in.edge];
    }
    return b;
  };
  // Higher component id = earlier in topological order (sources first).
  for (std::size_t c = components_.size(); c-- > 0;) {
    const auto& block = components_[c];
    if (block.size() == 1) {
      const auto j = block[0];
      if (exit_rate[j] <= 0.0) {
        throw std::runtime_error(
            "AbsorbingAnalyzer: transient state with zero exit rate");
      }
      tau[j] = external_b(j, static_cast<std::uint32_t>(c)) / exit_rate[j];
      continue;
    }
    // Dense block solve:  exit_j·τ_j − Σ_{i∈block} r_ij·τ_i = b_j.
    const std::size_t k = block.size();
    if (k > 4096) {
      throw std::runtime_error(
          "AbsorbingAnalyzer: transient SCC of size " + std::to_string(k) +
          " exceeds the dense-block limit");
    }
    for (std::size_t r = 0; r < k; ++r) {
      local[block[r]] = static_cast<std::uint32_t>(r);
    }
    linalg::DenseMatrix m(k, k);
    std::vector<double> b(k, 0.0);
    for (std::size_t r = 0; r < k; ++r) {
      const auto j = block[r];
      m(r, r) = exit_rate[j];
      b[r] = external_b(j, static_cast<std::uint32_t>(c));
      for (std::uint32_t e = in_offsets_[j]; e < in_offsets_[j + 1]; ++e) {
        const auto& in = in_edges_[e];
        const auto li = local[in.src];
        if (li != UINT32_MAX) m(r, li) -= edge_rates[in.edge];
      }
    }
    const auto x = linalg::LuSolver(std::move(m)).solve(std::move(b));
    for (std::size_t r = 0; r < k; ++r) {
      tau[block[r]] = x[r];
      local[block[r]] = UINT32_MAX;  // reset for the next block
    }
  }

  res.solver_blocks = components_.size();
  res.converged = true;
  double mtta = 0.0;
  for (std::size_t i = 0; i < nt; ++i) {
    res.sojourn[expand_[i]] = tau[i];
    mtta += tau[i];
  }
  res.mtta = mtta;

  // Absorption probabilities: flow into each absorbing state.
  for (std::size_t i = 0; i < nt; ++i) {
    const auto s = expand_[i];
    const auto begin = graph_.edge_offsets[s];
    const auto end = graph_.edge_offsets[s + 1];
    for (std::uint32_t idx = begin; idx < end; ++idx) {
      const auto& e = graph_.edges[idx];
      if (e.dst == s || !absorbing_[e.dst]) continue;
      res.absorb_probability[e.dst] += res.sojourn[s] * edge_rates[idx];
    }
  }
  return res;
}

double AbsorbingAnalyzer::accumulated_rate_reward(
    const AbsorbingResult& res,
    const std::function<double(const Marking&)>& reward) const {
  double acc = 0.0;
  for (std::size_t s = 0; s < graph_.num_states(); ++s) {
    const double tau = res.sojourn[s];
    if (tau > 0.0) acc += tau * reward(graph_.states[s]);
  }
  return acc;
}

double AbsorbingAnalyzer::accumulated_impulse_reward(
    const AbsorbingResult& res) const {
  double acc = 0.0;
  for (const auto& e : graph_.edges) {
    if (e.impulse == 0.0) continue;
    acc += res.sojourn[e.src] * e.rate * e.impulse;
  }
  return acc;
}

double AbsorbingAnalyzer::accumulated_impulse_reward(
    const AbsorbingResult& res, std::span<const double> edge_rates) const {
  if (edge_rates.size() != graph_.edges.size()) {
    throw std::invalid_argument(
        "accumulated_impulse_reward: edge_rates size does not match edge "
        "count");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < graph_.edges.size(); ++i) {
    const auto& e = graph_.edges[i];
    if (e.impulse == 0.0) continue;
    acc += res.sojourn[e.src] * edge_rates[i] * e.impulse;
  }
  return acc;
}

double AbsorbingAnalyzer::accumulated_impulse_reward(
    const AbsorbingResult& res, std::span<const double> edge_rates,
    std::span<const double> edge_impulses) const {
  if (edge_rates.size() != graph_.edges.size() ||
      edge_impulses.size() != graph_.edges.size()) {
    throw std::invalid_argument(
        "accumulated_impulse_reward: edge_rates/edge_impulses size does "
        "not match edge count");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < graph_.edges.size(); ++i) {
    if (edge_impulses[i] == 0.0) continue;
    acc += res.sojourn[graph_.edges[i].src] * edge_rates[i] *
           edge_impulses[i];
  }
  return acc;
}

double AbsorbingAnalyzer::absorption_probability_where(
    const AbsorbingResult& res,
    const std::function<bool(const Marking&)>& pred) const {
  double acc = 0.0;
  for (std::size_t s = 0; s < graph_.num_states(); ++s) {
    if (res.absorb_probability[s] > 0.0 && pred(graph_.states[s])) {
      acc += res.absorb_probability[s];
    }
  }
  return acc;
}

}  // namespace midas::spn
