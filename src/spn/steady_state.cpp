#include "spn/steady_state.h"

#include <cmath>
#include <stdexcept>

namespace midas::spn {

SteadyStateResult steady_state(const ReachabilityGraph& graph,
                               const SteadyStateOptions& opts) {
  const auto ctmc = Ctmc::from_graph(graph);
  const std::size_t n = ctmc.num_states();
  const double lambda = std::max(ctmc.max_exit_rate() * 1.05, 1e-12);

  // P = I + Q/Λ; power-iterate πP until the change is below tolerance.
  const auto& q = ctmc.generator();

  SteadyStateResult res;
  res.pi.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double> qpi(n, 0.0);

  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    res.iterations = it;
    q.multiply_transpose(res.pi, qpi);  // qpi = Qᵀπ  (πQ as column)
    double delta = 0.0;
    double sum = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      const double next = res.pi[s] + qpi[s] / lambda;
      delta = std::max(delta, std::abs(next - res.pi[s]));
      res.pi[s] = next;
      sum += next;
    }
    if (sum <= 0.0) {
      throw std::runtime_error("steady_state: distribution collapsed");
    }
    for (double& p : res.pi) p /= sum;
    if (delta <= opts.tolerance) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

}  // namespace midas::spn
