// Absorbing-state analysis: mean time to absorption (the paper's MTTSF),
// expected accumulated rate/impulse rewards until absorption (the
// paper's Ĉtotal numerator), and per-absorbing-state absorption
// probabilities (used to split failures into C1 vs C2).
//
// Method: let T be the transient states, Q_TT the generator restricted
// to T and π₀ the initial distribution.  The expected total sojourn
// vector τ solves   Q_TTᵀ τ = −π₀|_T.   Then
//   MTTA              = Σ_i τ_i
//   accumulated reward = Σ_i τ_i · r(state_i)  +  Σ_e τ_src(e) · rate_e · imp_e
//   P[absorb in a]     = Σ_i τ_i · q_{i,a}
//
// The analyzer splits the work into structure and numbers: the absorbing
// mask, the transient compaction and the SCC condensation are computed
// once at construction from the graph's CSR adjacency, and each solve()
// only runs the numeric part.  A parameter sweep therefore constructs
// one analyzer per explored structure and calls solve(edge_rates) per
// sweep point (see core::SweepEngine).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "spn/reachability.h"
#include "spn/scc.h"
#include "util/arena.h"

namespace midas::spn {

struct AbsorbingResult {
  double mtta = 0.0;
  /// Expected total time spent in each state before absorption (full
  /// state indexing; identically 0 for absorbing states).
  std::vector<double> sojourn;
  /// Probability of being absorbed in each state (0 for transient).
  std::vector<double> absorb_probability;
  bool converged = false;
  /// SCC condensation blocks solved (the direct solver has no iteration
  /// count; this was misleadingly named solver_iterations before).
  std::size_t solver_blocks = 0;
};

/// What solve(edge_rates, opts) materialises.  Callers that only read
/// mtta (benchmark loops, convergence probes) skip the two full-state
/// n-sized vector assignments the default result pays for.
struct SolveOptions {
  bool sojourn = true;             ///< fill AbsorbingResult::sojourn
  bool absorb_probability = true;  ///< fill absorb_probability
};

/// Knobs of the batched multi-point solve.
struct BatchSolveOptions {
  /// Deduplicate dense SCC blocks across points: every block is
  /// normalised by the power of two bracketing its first diagonal
  /// entry (the head state's exit rate), and points whose normalised
  /// blocks are BITWISE identical — identical blocks, or exact
  /// power-of-two multiples, as in rate-scaled sweeps — share one LU
  /// factorisation via solve_many with per-point scaled right-hand
  /// sides.  Because the match is intrinsic to each point's normalised
  /// block (not to which points happen to share a batch), results never
  /// depend on batch or shard grouping; and because a power-of-two
  /// scaling is exact in floating point, the shared-factor solves are
  /// bitwise the per-point raw-block solves — reuse shares work without
  /// perturbing the arithmetic (the spec-level gate is <= 1e-12
  /// relative; in practice both settings are bitwise the scalar path).
  bool factor_reuse = true;
};

/// Point-major answers of solve_batch: entry [s*num_points + p] is
/// state s's value for batch point p.  The spans live in the arena the
/// caller passed (or the calling thread's scratch arena) and stay valid
/// until that arena is reset.
struct AbsorbingBatchResult {
  std::size_t num_points = 0;
  std::span<double> mtta;     ///< [P]
  std::span<double> sojourn;  ///< [n][P]; absorbing rows identically 0
  std::span<double> absorb_probability;  ///< [n][P]; transient rows 0
  bool converged = false;
  std::size_t solver_blocks = 0;    ///< per point (structure-shared)
  std::size_t blocks_factored = 0;  ///< LU factorisations performed
  std::size_t blocks_reused = 0;    ///< point-solves served by a shared LU
};

class AbsorbingAnalyzer {
 public:
  /// The graph must contain at least one absorbing state, reachable
  /// from the initial state, and no transient region reachable from the
  /// initial state may be unable to reach absorption (MTTA would
  /// diverge).  All three conditions are verified HERE, at
  /// construction, with descriptive errors — previously an unreachable
  /// absorbing set surfaced only mid-solve as a cryptic
  /// "transient state with zero exit rate" (single-state cycle) or a
  /// singular SCC block (multi-state cycle).
  explicit AbsorbingAnalyzer(const ReachabilityGraph& graph);

  /// Solves from the graph's initial state with the rates stored on the
  /// graph's edges.  Uses the rate snapshot taken at construction — no
  /// per-call copy of the edge list (the graph is referenced const, so
  /// the stored rates cannot have changed).
  [[nodiscard]] AbsorbingResult solve() const;

  /// Solves with per-edge rates overriding the stored ones:
  /// `edge_rates[i]` replaces `graph.edges[i].rate` and must be positive
  /// wherever the stored rate is.  Reuses the construction-time
  /// structure, so a sweep point costs only the numeric solve.
  /// Thread-safe: const, no shared mutable state.
  [[nodiscard]] AbsorbingResult solve(
      std::span<const double> edge_rates) const;

  /// As above, with control over which full-state vectors the result
  /// materialises.  A result built with `opts.sojourn == false` must
  /// not be passed to the reward accessors (they index res.sojourn).
  [[nodiscard]] AbsorbingResult solve(std::span<const double> edge_rates,
                                      const SolveOptions& opts) const;

  /// Solves from an arbitrary initial distribution instead of the
  /// graph's initial state: `initial_mass` is full-state indexed and
  /// its entries at absorbing states must be zero (mass that has
  /// already been absorbed has left the problem — mission chaining
  /// hands in spn::ReliabilityOde::propagate weights, which satisfy
  /// this by construction).  The mass need not sum to 1: mtta, rewards
  /// and absorb probabilities scale linearly, so a sub-stochastic tail
  /// distribution yields the correctly weighted partial expectations.
  /// An empty span means the graph's initial state and is bitwise the
  /// plain solve(edge_rates, opts).
  [[nodiscard]] AbsorbingResult solve_from(
      std::span<const double> initial_mass,
      std::span<const double> edge_rates,
      const SolveOptions& opts = {}) const;

  /// Batched multi-point solve: `edge_rates` is the point-major
  /// [edge][point] matrix ReachabilityGraph::compute_rates_batch fills
  /// (edge_rates[i*num_points + p] = edge i's rate at point p; size
  /// edges·num_points).  One pass over the structure serves all points:
  /// exit rates, singleton-SCC taus and absorption flows are point-major
  /// inner loops over num_points contiguous doubles, and dense SCC
  /// blocks are assembled point-major then solved per point — or, with
  /// opts.factor_reuse, shared across points whose normalised blocks
  /// coincide (see BatchSolveOptions).  All scratch and the result spans
  /// come from `arena` (the calling thread's scratch arena when null);
  /// the caller resets the arena between batches.
  ///
  /// Numerics gate: with factor_reuse OFF, point p's mtta/sojourn/
  /// absorb_probability are BITWISE the scalar solve(edge_rates_p)
  /// answers; with reuse ON they agree to <= 1e-12 relative and are
  /// independent of how points are grouped into batches.
  [[nodiscard]] AbsorbingBatchResult solve_batch(
      std::span<const double> edge_rates, std::size_t num_points,
      const BatchSolveOptions& opts = {},
      util::Arena* arena = nullptr) const;

  /// Expected accumulated rate reward  Σ τ_i · reward(state_i).
  [[nodiscard]] double accumulated_rate_reward(
      const AbsorbingResult& res,
      const std::function<double(const Marking&)>& reward) const;

  /// Expected accumulated impulse reward  Σ_e τ_src · rate_e · imp_e.
  /// The no-argument form uses the rates/impulses stored on the graph
  /// edges and pairs with solve(); the overloads pair with
  /// solve(edge_rates): a result obtained under a rate override MUST be
  /// rewarded with the same override, or the eviction costs silently
  /// blend two parameter points (the stored-rate × overridden-sojourn
  /// defect this overload set fixes).  Spans must match the edge count.
  [[nodiscard]] double accumulated_impulse_reward(
      const AbsorbingResult& res) const;
  /// Overridden rates, stored impulses (rate-only sweeps).
  [[nodiscard]] double accumulated_impulse_reward(
      const AbsorbingResult& res,
      std::span<const double> edge_rates) const;
  /// Overridden rates and impulses (full per-point re-rating, e.g.
  /// core::SweepEngine's compute_rates arrays).
  [[nodiscard]] double accumulated_impulse_reward(
      const AbsorbingResult& res, std::span<const double> edge_rates,
      std::span<const double> edge_impulses) const;

  /// Probability-weighted classification of absorption causes:
  /// sums absorb probabilities over states where `pred` holds.
  [[nodiscard]] double absorption_probability_where(
      const AbsorbingResult& res,
      const std::function<bool(const Marking&)>& pred) const;

  [[nodiscard]] const ReachabilityGraph& graph() const noexcept {
    return graph_;
  }
  /// The absorbing-state mask computed at construction.
  [[nodiscard]] const std::vector<char>& absorbing() const noexcept {
    return absorbing_;
  }

 private:
  /// Shared core of solve()/solve_from(): empty `initial_mass` takes
  /// the legacy unit-mass-at-initial branch bitwise.
  [[nodiscard]] AbsorbingResult solve_impl(
      std::span<const double> initial_mass,
      std::span<const double> edge_rates, const SolveOptions& opts) const;

  /// An incoming transient→transient edge: compact source index plus the
  /// global edge index (for per-sweep-point rate lookup).
  struct InEdge {
    std::uint32_t src;
    std::uint32_t edge;
  };

  /// An outgoing transient→absorbing edge: global edge index plus the
  /// (full-index) absorbing destination.
  struct AbsEdge {
    std::uint32_t edge;
    std::uint32_t dst;
  };

  const ReachabilityGraph& graph_;
  std::vector<char> absorbing_;
  std::vector<std::uint32_t> compact_;  // full → compact (UINT32_MAX = absorbing)
  std::vector<std::uint32_t> expand_;   // compact → full
  std::uint32_t init_compact_ = 0;
  // Incoming transient→transient edges, CSR by destination.
  std::vector<std::uint32_t> in_offsets_;
  std::vector<InEdge> in_edges_;
  // Exit-rate structure hoisted out of solve(): per transient state, the
  // global indices of its non-self-loop out-edges (graph CSR order) —
  // the `e.src != e.dst` test runs once here instead of per sweep point.
  std::vector<std::uint32_t> exit_offsets_;
  std::vector<std::uint32_t> exit_edges_;
  // Absorption flows, likewise compacted: transient→absorbing edges.
  std::vector<std::uint32_t> abs_offsets_;
  std::vector<AbsEdge> abs_edges_;
  // Rates stored on the graph edges at construction (no-arg solve()).
  std::vector<double> stored_rates_;
  // Condensation of the transient subgraph.
  SccResult scc_;
  std::vector<std::vector<std::uint32_t>> components_;
  std::size_t max_block_ = 0;  // largest SCC (dense-block scratch sizing)
};

}  // namespace midas::spn
