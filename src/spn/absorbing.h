// Absorbing-state analysis: mean time to absorption (the paper's MTTSF),
// expected accumulated rate/impulse rewards until absorption (the
// paper's Ĉtotal numerator), and per-absorbing-state absorption
// probabilities (used to split failures into C1 vs C2).
//
// Method: let T be the transient states, Q_TT the generator restricted
// to T and π₀ the initial distribution.  The expected total sojourn
// vector τ solves   Q_TTᵀ τ = −π₀|_T.   Then
//   MTTA              = Σ_i τ_i
//   accumulated reward = Σ_i τ_i · r(state_i)  +  Σ_e τ_src(e) · rate_e · imp_e
//   P[absorb in a]     = Σ_i τ_i · q_{i,a}
//
// The analyzer splits the work into structure and numbers: the absorbing
// mask, the transient compaction and the SCC condensation are computed
// once at construction from the graph's CSR adjacency, and each solve()
// only runs the numeric part.  A parameter sweep therefore constructs
// one analyzer per explored structure and calls solve(edge_rates) per
// sweep point (see core::SweepEngine).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "spn/reachability.h"
#include "spn/scc.h"

namespace midas::spn {

struct AbsorbingResult {
  double mtta = 0.0;
  /// Expected total time spent in each state before absorption (full
  /// state indexing; identically 0 for absorbing states).
  std::vector<double> sojourn;
  /// Probability of being absorbed in each state (0 for transient).
  std::vector<double> absorb_probability;
  bool converged = false;
  /// SCC condensation blocks solved (the direct solver has no iteration
  /// count; this was misleadingly named solver_iterations before).
  std::size_t solver_blocks = 0;
};

class AbsorbingAnalyzer {
 public:
  /// The graph must contain at least one absorbing state, reachable
  /// from the initial state, and no transient region reachable from the
  /// initial state may be unable to reach absorption (MTTA would
  /// diverge).  All three conditions are verified HERE, at
  /// construction, with descriptive errors — previously an unreachable
  /// absorbing set surfaced only mid-solve as a cryptic
  /// "transient state with zero exit rate" (single-state cycle) or a
  /// singular SCC block (multi-state cycle).
  explicit AbsorbingAnalyzer(const ReachabilityGraph& graph);

  /// Solves from the graph's initial state with the rates stored on the
  /// graph's edges.
  [[nodiscard]] AbsorbingResult solve() const;

  /// Solves with per-edge rates overriding the stored ones:
  /// `edge_rates[i]` replaces `graph.edges[i].rate` and must be positive
  /// wherever the stored rate is.  Reuses the construction-time
  /// structure, so a sweep point costs only the numeric solve.
  /// Thread-safe: const, no shared mutable state.
  [[nodiscard]] AbsorbingResult solve(
      std::span<const double> edge_rates) const;

  /// Expected accumulated rate reward  Σ τ_i · reward(state_i).
  [[nodiscard]] double accumulated_rate_reward(
      const AbsorbingResult& res,
      const std::function<double(const Marking&)>& reward) const;

  /// Expected accumulated impulse reward  Σ_e τ_src · rate_e · imp_e.
  /// The no-argument form uses the rates/impulses stored on the graph
  /// edges and pairs with solve(); the overloads pair with
  /// solve(edge_rates): a result obtained under a rate override MUST be
  /// rewarded with the same override, or the eviction costs silently
  /// blend two parameter points (the stored-rate × overridden-sojourn
  /// defect this overload set fixes).  Spans must match the edge count.
  [[nodiscard]] double accumulated_impulse_reward(
      const AbsorbingResult& res) const;
  /// Overridden rates, stored impulses (rate-only sweeps).
  [[nodiscard]] double accumulated_impulse_reward(
      const AbsorbingResult& res,
      std::span<const double> edge_rates) const;
  /// Overridden rates and impulses (full per-point re-rating, e.g.
  /// core::SweepEngine's compute_rates arrays).
  [[nodiscard]] double accumulated_impulse_reward(
      const AbsorbingResult& res, std::span<const double> edge_rates,
      std::span<const double> edge_impulses) const;

  /// Probability-weighted classification of absorption causes:
  /// sums absorb probabilities over states where `pred` holds.
  [[nodiscard]] double absorption_probability_where(
      const AbsorbingResult& res,
      const std::function<bool(const Marking&)>& pred) const;

  [[nodiscard]] const ReachabilityGraph& graph() const noexcept {
    return graph_;
  }
  /// The absorbing-state mask computed at construction.
  [[nodiscard]] const std::vector<char>& absorbing() const noexcept {
    return absorbing_;
  }

 private:
  /// An incoming transient→transient edge: compact source index plus the
  /// global edge index (for per-sweep-point rate lookup).
  struct InEdge {
    std::uint32_t src;
    std::uint32_t edge;
  };

  const ReachabilityGraph& graph_;
  std::vector<char> absorbing_;
  std::vector<std::uint32_t> compact_;  // full → compact (UINT32_MAX = absorbing)
  std::vector<std::uint32_t> expand_;   // compact → full
  std::uint32_t init_compact_ = 0;
  // Incoming transient→transient edges, CSR by destination.
  std::vector<std::uint32_t> in_offsets_;
  std::vector<InEdge> in_edges_;
  // Condensation of the transient subgraph.
  SccResult scc_;
  std::vector<std::vector<std::uint32_t>> components_;
};

}  // namespace midas::spn
