// Absorbing-state analysis: mean time to absorption (the paper's MTTSF),
// expected accumulated rate/impulse rewards until absorption (the
// paper's Ĉtotal numerator), and per-absorbing-state absorption
// probabilities (used to split failures into C1 vs C2).
//
// Method: let T be the transient states, Q_TT the generator restricted
// to T and π₀ the initial distribution.  The expected total sojourn
// vector τ solves   Q_TTᵀ τ = −π₀|_T.   Then
//   MTTA              = Σ_i τ_i
//   accumulated reward = Σ_i τ_i · r(state_i)  +  Σ_e τ_src(e) · rate_e · imp_e
//   P[absorb in a]     = Σ_i τ_i · q_{i,a}
#pragma once

#include <functional>
#include <vector>

#include "spn/ctmc.h"
#include "spn/reachability.h"

namespace midas::spn {

struct AbsorbingResult {
  double mtta = 0.0;
  /// Expected total time spent in each state before absorption (full
  /// state indexing; identically 0 for absorbing states).
  std::vector<double> sojourn;
  /// Probability of being absorbed in each state (0 for transient).
  std::vector<double> absorb_probability;
  bool converged = false;
  std::size_t solver_iterations = 0;
};

class AbsorbingAnalyzer {
 public:
  /// The graph must contain at least one absorbing state reachable from
  /// the initial state; otherwise the MTTA solve will fail to converge.
  explicit AbsorbingAnalyzer(const ReachabilityGraph& graph);

  /// Solves from the graph's initial state.
  [[nodiscard]] AbsorbingResult solve() const;

  /// Expected accumulated rate reward  Σ τ_i · reward(state_i).
  [[nodiscard]] double accumulated_rate_reward(
      const AbsorbingResult& res,
      const std::function<double(const Marking&)>& reward) const;

  /// Expected accumulated impulse reward using the impulses recorded on
  /// the graph edges:  Σ_e τ_src · rate_e · impulse_e.
  [[nodiscard]] double accumulated_impulse_reward(
      const AbsorbingResult& res) const;

  /// Probability-weighted classification of absorption causes:
  /// sums absorb probabilities over states where `pred` holds.
  [[nodiscard]] double absorption_probability_where(
      const AbsorbingResult& res,
      const std::function<bool(const Marking&)>& pred) const;

 private:
  const ReachabilityGraph& graph_;
  Ctmc ctmc_;
};

}  // namespace midas::spn
