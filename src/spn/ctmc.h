// Continuous-time Markov chain extracted from a reachability graph.
// Self-loop edges are excluded from the generator (they cancel in Q) but
// are retained by the reward machinery for impulse accounting.
#pragma once

#include <vector>

#include "linalg/csr_matrix.h"
#include "spn/reachability.h"

namespace midas::spn {

class Ctmc {
 public:
  static Ctmc from_graph(const ReachabilityGraph& graph);

  /// Infinitesimal generator Q (row = source state); diagonal = −exit rate.
  [[nodiscard]] const linalg::CsrMatrix& generator() const noexcept {
    return q_;
  }
  [[nodiscard]] std::size_t num_states() const noexcept { return n_; }
  [[nodiscard]] StateId initial() const noexcept { return initial_; }
  /// Total exit rate of each state (excludes self-loops).
  [[nodiscard]] const std::vector<double>& exit_rates() const noexcept {
    return exit_;
  }
  [[nodiscard]] const std::vector<char>& absorbing() const noexcept {
    return absorbing_;
  }
  [[nodiscard]] std::size_t num_absorbing() const;

  /// Max exit rate — the uniformisation constant base.
  [[nodiscard]] double max_exit_rate() const;

 private:
  std::size_t n_ = 0;
  StateId initial_ = 0;
  linalg::CsrMatrix q_;
  std::vector<double> exit_;
  std::vector<char> absorbing_;
};

}  // namespace midas::spn
