#include "spn/ctmc.h"

#include <algorithm>

namespace midas::spn {

Ctmc Ctmc::from_graph(const ReachabilityGraph& graph) {
  Ctmc c;
  c.n_ = graph.num_states();
  c.initial_ = graph.initial;
  c.exit_.assign(c.n_, 0.0);
  c.absorbing_ = graph.absorbing_mask();

  std::vector<linalg::Triplet> trips;
  trips.reserve(graph.edges.size() * 2);
  for (const auto& e : graph.edges) {
    if (e.src == e.dst) continue;  // self-loops cancel in the generator
    trips.push_back({e.src, e.dst, e.rate});
    trips.push_back({e.src, e.src, -e.rate});
    c.exit_[e.src] += e.rate;
  }
  c.q_ = linalg::CsrMatrix::from_triplets(c.n_, c.n_, std::move(trips));
  return c;
}

std::size_t Ctmc::num_absorbing() const {
  return static_cast<std::size_t>(
      std::count(absorbing_.begin(), absorbing_.end(), char{1}));
}

double Ctmc::max_exit_rate() const {
  double best = 0.0;
  for (double e : exit_) best = std::max(best, e);
  return best;
}

}  // namespace midas::spn
