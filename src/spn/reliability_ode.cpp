#include "spn/reliability_ode.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace midas::spn {

ReliabilityOde::ReliabilityOde(const ReachabilityGraph& graph)
    : graph_(graph) {
  const auto absorbing = graph.absorbing_mask();
  const std::size_t n = graph.num_states();
  compact_.assign(n, UINT32_MAX);
  for (std::size_t s = 0; s < n; ++s) {
    if (!absorbing[s]) {
      compact_[s] = static_cast<std::uint32_t>(num_transient_++);
    }
  }
  initial_absorbing_ = absorbing[graph.initial];
  if (!initial_absorbing_) {
    initial_compact_ = compact_[graph.initial];
  }

  // Assemble Q_TT rows: for each transient src, off-diagonal entries to
  // transient dst plus total exit rate (including flows to absorbing
  // states, which only appear in the diagonal).
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows(
      num_transient_);
  exit_.assign(num_transient_, 0.0);
  for (const auto& e : graph.edges) {
    if (e.src == e.dst) continue;
    const auto cs = compact_[e.src];
    if (cs == UINT32_MAX) continue;
    exit_[cs] += e.rate;
    const auto cd = compact_[e.dst];
    if (cd != UINT32_MAX) {
      rows[cs].emplace_back(cd, e.rate);
    }
  }
  row_ptr_.assign(num_transient_ + 1, 0);
  for (std::size_t r = 0; r < num_transient_; ++r) {
    row_ptr_[r + 1] =
        row_ptr_[r] + static_cast<std::uint32_t>(rows[r].size());
  }
  col_.resize(row_ptr_.back());
  val_.resize(row_ptr_.back());
  for (std::size_t r = 0; r < num_transient_; ++r) {
    std::size_t k = row_ptr_[r];
    for (const auto& [c, v] : rows[r]) {
      col_[k] = c;
      val_[k] = v;
      ++k;
    }
  }
}

std::vector<double> ReliabilityOde::survival_at(
    std::span<const double> times, const ReliabilityOdeOptions& opts) const {
  if (opts.theta < 0.5 || opts.theta > 1.0) {
    throw std::invalid_argument("survival_at: theta must be in [0.5, 1]");
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] < 0.0 || (i > 0 && times[i] < times[i - 1])) {
      throw std::invalid_argument(
          "survival_at: times must be ascending and non-negative");
    }
  }
  std::vector<double> out(times.size(), initial_absorbing_ ? 0.0 : 1.0);
  if (times.empty() || initial_absorbing_ || num_transient_ == 0) {
    return out;
  }
  const double horizon = times.back();
  if (horizon == 0.0) return out;

  // Log-spaced integration grid: small first steps resolve the fast
  // initial transient; the per-step relative growth stays at
  // 10^(decades/steps) − 1 (≈ 2.3% at the defaults), well inside the
  // θ-method's accurate regime.
  std::vector<double> grid{0.0};
  grid.reserve(opts.steps + 1);
  for (std::size_t j = 1; j <= opts.steps; ++j) {
    const double frac = static_cast<double>(j) /
                        static_cast<double>(opts.steps);
    grid.push_back(horizon *
                   std::pow(10.0, -opts.decades * (1.0 - frac)));
  }

  std::vector<double> u(num_transient_, 1.0);
  std::vector<double> rhs(num_transient_);
  std::vector<double> qu(num_transient_);

  auto apply_q = [&](const std::vector<double>& x, std::vector<double>& y) {
    for (std::size_t r = 0; r < num_transient_; ++r) {
      double acc = -exit_[r] * x[r];
      for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        acc += val_[k] * x[col_[k]];
      }
      y[r] = acc;
    }
  };

  std::size_t next_time = 0;
  double prev_now = 0.0;
  double r_prev = 1.0;

  for (std::size_t j = 1; j < grid.size() && next_time < times.size();
       ++j) {
    // θ-method step:  (I − θhQ) u_new = u_old + (1−θ)h Q u_old.
    const double step = grid[j] - grid[j - 1];
    apply_q(u, qu);
    for (std::size_t r = 0; r < num_transient_; ++r) {
      rhs[r] = u[r] + (1.0 - opts.theta) * step * qu[r];
    }
    // Gauss–Seidel on the row-dominant implicit operator.
    const double th = opts.theta * step;
    for (std::size_t sweep = 0; sweep < 1000; ++sweep) {
      double max_delta = 0.0;
      for (std::size_t r = 0; r < num_transient_; ++r) {
        double acc = rhs[r];
        for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
          acc += th * val_[k] * u[col_[k]];
        }
        const double next_val = acc / (1.0 + th * exit_[r]);
        max_delta = std::max(max_delta, std::abs(next_val - u[r]));
        u[r] = next_val;
      }
      if (max_delta <= opts.gs_tolerance) break;
    }

    // Emit time points that fall inside this step by interpolation (the
    // grid is dense enough that interpolation error is below the
    // integrator's own error).
    const double now = grid[j];
    const double r_now = u[initial_compact_];
    while (next_time < times.size() && times[next_time] <= now) {
      const double t = times[next_time];
      const double w =
          now > prev_now ? (t - prev_now) / (now - prev_now) : 1.0;
      out[next_time] = std::clamp(r_prev + w * (r_now - r_prev), 0.0, 1.0);
      ++next_time;
    }
    prev_now = now;
    r_prev = r_now;
  }
  return out;
}

}  // namespace midas::spn
