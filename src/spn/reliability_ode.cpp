#include "spn/reliability_ode.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace midas::spn {

ReliabilityOde::ReliabilityOde(const ReachabilityGraph& graph)
    : ReliabilityOde(graph, {}) {}

ReliabilityOde::ReliabilityOde(const ReachabilityGraph& graph,
                               std::span<const double> edge_rates)
    : graph_(graph) {
  if (!edge_rates.empty() && edge_rates.size() != graph.edges.size()) {
    throw std::invalid_argument(
        "ReliabilityOde: edge_rates size " +
        std::to_string(edge_rates.size()) + " does not match edge count " +
        std::to_string(graph.edges.size()));
  }
  const auto absorbing = graph.absorbing_mask();
  const std::size_t n = graph.num_states();
  compact_.assign(n, UINT32_MAX);
  for (std::size_t s = 0; s < n; ++s) {
    if (!absorbing[s]) {
      compact_[s] = static_cast<std::uint32_t>(num_transient_++);
      expand_.push_back(static_cast<std::uint32_t>(s));
    }
  }
  initial_absorbing_ = absorbing[graph.initial];
  if (!initial_absorbing_) {
    initial_compact_ = compact_[graph.initial];
  }
  assemble(edge_rates);
}

void ReliabilityOde::assemble(std::span<const double> edge_rates) {
  // Assemble Q_TT rows: for each transient src, off-diagonal entries to
  // transient dst plus total exit rate (including flows to absorbing
  // states, which only appear in the diagonal).  The transpose rows
  // (incoming edges) are collected in the same pass for propagate().
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows(
      num_transient_);
  std::vector<std::vector<std::pair<std::uint32_t, double>>> trows(
      num_transient_);
  exit_.assign(num_transient_, 0.0);
  for (std::size_t i = 0; i < graph_.edges.size(); ++i) {
    const auto& e = graph_.edges[i];
    if (e.src == e.dst) continue;
    const auto cs = compact_[e.src];
    if (cs == UINT32_MAX) continue;
    const double rate = edge_rates.empty() ? e.rate : edge_rates[i];
    exit_[cs] += rate;
    const auto cd = compact_[e.dst];
    if (cd != UINT32_MAX) {
      rows[cs].emplace_back(cd, rate);
      trows[cd].emplace_back(cs, rate);
    }
  }
  auto pack = [this](
                  const std::vector<
                      std::vector<std::pair<std::uint32_t, double>>>& src,
                  std::vector<std::uint32_t>& ptr,
                  std::vector<std::uint32_t>& col,
                  std::vector<double>& val) {
    ptr.assign(num_transient_ + 1, 0);
    for (std::size_t r = 0; r < num_transient_; ++r) {
      ptr[r + 1] = ptr[r] + static_cast<std::uint32_t>(src[r].size());
    }
    col.resize(ptr.back());
    val.resize(ptr.back());
    for (std::size_t r = 0; r < num_transient_; ++r) {
      std::size_t k = ptr[r];
      for (const auto& [c, v] : src[r]) {
        col[k] = c;
        val[k] = v;
        ++k;
      }
    }
  };
  pack(rows, row_ptr_, col_, val_);
  pack(trows, trow_ptr_, tcol_, tval_);
}

std::vector<double> ReliabilityOde::make_grid(
    double horizon, const ReliabilityOdeOptions& opts) const {
  std::vector<double> grid{0.0};
  if (opts.uniform_step_s > 0.0) {
    // Uniform steps: k·h up to the horizon (last step truncated).  A
    // horizon split at an exact multiple of h reproduces the unsplit
    // step sequence exactly.
    const double h = opts.uniform_step_s;
    const auto whole = static_cast<std::size_t>(std::floor(horizon / h));
    grid.reserve(whole + 2);
    for (std::size_t j = 1; j <= whole; ++j) {
      grid.push_back(static_cast<double>(j) * h);
    }
    if (grid.back() < horizon) grid.push_back(horizon);
    return grid;
  }
  // Log-spaced integration grid: small first steps resolve the fast
  // initial transient; the per-step relative growth stays at
  // 10^(decades/steps) − 1 (≈ 2.3% at the defaults), well inside the
  // θ-method's accurate regime.
  grid.reserve(opts.steps + 1);
  for (std::size_t j = 1; j <= opts.steps; ++j) {
    const double frac = static_cast<double>(j) /
                        static_cast<double>(opts.steps);
    grid.push_back(horizon *
                   std::pow(10.0, -opts.decades * (1.0 - frac)));
  }
  return grid;
}

std::vector<double> ReliabilityOde::survival_at(
    std::span<const double> times, const ReliabilityOdeOptions& opts) const {
  if (opts.theta < 0.5 || opts.theta > 1.0) {
    throw std::invalid_argument("survival_at: theta must be in [0.5, 1]");
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] < 0.0 || (i > 0 && times[i] < times[i - 1])) {
      throw std::invalid_argument(
          "survival_at: times must be ascending and non-negative");
    }
  }
  std::vector<double> out(times.size(), initial_absorbing_ ? 0.0 : 1.0);
  if (times.empty() || initial_absorbing_ || num_transient_ == 0) {
    return out;
  }
  const double horizon = times.back();
  if (horizon == 0.0) return out;

  const std::vector<double> grid = make_grid(horizon, opts);

  std::vector<double> u(num_transient_, 1.0);
  std::vector<double> rhs(num_transient_);
  std::vector<double> qu(num_transient_);

  auto apply_q = [&](const std::vector<double>& x, std::vector<double>& y) {
    for (std::size_t r = 0; r < num_transient_; ++r) {
      double acc = -exit_[r] * x[r];
      for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        acc += val_[k] * x[col_[k]];
      }
      y[r] = acc;
    }
  };

  std::size_t next_time = 0;
  double prev_now = 0.0;
  double r_prev = 1.0;

  for (std::size_t j = 1; j < grid.size() && next_time < times.size();
       ++j) {
    // θ-method step:  (I − θhQ) u_new = u_old + (1−θ)h Q u_old.
    const double step = grid[j] - grid[j - 1];
    apply_q(u, qu);
    for (std::size_t r = 0; r < num_transient_; ++r) {
      rhs[r] = u[r] + (1.0 - opts.theta) * step * qu[r];
    }
    // Gauss–Seidel on the row-dominant implicit operator.
    const double th = opts.theta * step;
    for (std::size_t sweep = 0; sweep < 1000; ++sweep) {
      double max_delta = 0.0;
      for (std::size_t r = 0; r < num_transient_; ++r) {
        double acc = rhs[r];
        for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
          acc += th * val_[k] * u[col_[k]];
        }
        const double next_val = acc / (1.0 + th * exit_[r]);
        max_delta = std::max(max_delta, std::abs(next_val - u[r]));
        u[r] = next_val;
      }
      if (max_delta <= opts.gs_tolerance) break;
    }

    // Emit time points that fall inside this step by interpolation (the
    // grid is dense enough that interpolation error is below the
    // integrator's own error).
    const double now = grid[j];
    const double r_now = u[initial_compact_];
    while (next_time < times.size() && times[next_time] <= now) {
      const double t = times[next_time];
      const double w =
          now > prev_now ? (t - prev_now) / (now - prev_now) : 1.0;
      out[next_time] = std::clamp(r_prev + w * (r_now - r_prev), 0.0, 1.0);
      ++next_time;
    }
    prev_now = now;
    r_prev = r_now;
  }
  return out;
}

ForwardResult ReliabilityOde::propagate(
    std::span<const double> initial, double duration,
    std::span<const std::vector<double>> functionals,
    std::span<const double> emit_times,
    const ReliabilityOdeOptions& opts) const {
  if (opts.theta < 0.5 || opts.theta > 1.0) {
    throw std::invalid_argument("propagate: theta must be in [0.5, 1]");
  }
  if (!(duration >= 0.0) || std::isinf(duration)) {
    throw std::invalid_argument(
        "propagate: duration must be finite and non-negative");
  }
  const std::size_t n = graph_.num_states();
  if (!initial.empty() && initial.size() != n) {
    throw std::invalid_argument(
        "propagate: initial size " + std::to_string(initial.size()) +
        " does not match state count " + std::to_string(n));
  }
  for (const auto& f : functionals) {
    if (f.size() != n) {
      throw std::invalid_argument(
          "propagate: functional size does not match state count");
    }
  }
  for (std::size_t i = 0; i < emit_times.size(); ++i) {
    if (emit_times[i] < 0.0 || emit_times[i] > duration ||
        (i > 0 && emit_times[i] < emit_times[i - 1])) {
      throw std::invalid_argument(
          "propagate: emit_times must be ascending within [0, duration]");
    }
  }

  ForwardResult res;
  res.weights.assign(n, 0.0);
  res.functional_integrals.assign(functionals.size(), 0.0);
  res.survival_at.assign(emit_times.size(), 0.0);
  if (num_transient_ == 0) return res;

  // Compact working distribution.
  std::vector<double> w(num_transient_, 0.0);
  if (initial.empty()) {
    if (initial_absorbing_) return res;
    w[initial_compact_] = 1.0;
  } else {
    for (std::size_t c = 0; c < num_transient_; ++c) {
      w[c] = initial[expand_[c]];
    }
  }

  const auto total = [&](const std::vector<double>& x) {
    double acc = 0.0;
    for (const double v : x) acc += v;
    return acc;
  };
  // ⟨f, w⟩ with f full-state indexed and w compact.
  const auto dot = [&](const std::vector<double>& f,
                       const std::vector<double>& x) {
    double acc = 0.0;
    for (std::size_t c = 0; c < num_transient_; ++c) {
      acc += f[expand_[c]] * x[c];
    }
    return acc;
  };

  const auto scatter = [&] {
    for (std::size_t c = 0; c < num_transient_; ++c) {
      res.weights[expand_[c]] = w[c];
    }
  };

  std::size_t next_emit = 0;
  double s_prev = total(w);
  auto emit_upto = [&](double prev_now, double now, double s_now) {
    while (next_emit < emit_times.size() && emit_times[next_emit] <= now) {
      const double t = emit_times[next_emit];
      const double frac =
          now > prev_now ? (t - prev_now) / (now - prev_now) : 1.0;
      res.survival_at[next_emit] =
          std::clamp(s_prev + frac * (s_now - s_prev), 0.0, 1.0);
      ++next_emit;
    }
  };
  if (duration == 0.0) {
    emit_upto(0.0, 0.0, s_prev);
    scatter();
    return res;
  }

  const std::vector<double> grid = make_grid(duration, opts);

  std::vector<double> rhs(num_transient_);
  std::vector<double> qtw(num_transient_);
  std::vector<double> fdot_prev(functionals.size());
  for (std::size_t k = 0; k < functionals.size(); ++k) {
    fdot_prev[k] = dot(functionals[k], w);
  }

  // Q_TTᵀ · x via the transpose CSR (row r = incoming edges of r).
  auto apply_qt = [&](const std::vector<double>& x,
                      std::vector<double>& y) {
    for (std::size_t r = 0; r < num_transient_; ++r) {
      double acc = -exit_[r] * x[r];
      for (std::uint32_t k = trow_ptr_[r]; k < trow_ptr_[r + 1]; ++k) {
        acc += tval_[k] * x[tcol_[k]];
      }
      y[r] = acc;
    }
  };

  double prev_now = 0.0;
  for (std::size_t j = 1; j < grid.size(); ++j) {
    // θ-step of the adjoint system:
    //   (I − θh Qᵀ) w_new = w_old + (1−θ)h Qᵀ w_old.
    const double step = grid[j] - grid[j - 1];
    apply_qt(w, qtw);
    for (std::size_t r = 0; r < num_transient_; ++r) {
      rhs[r] = w[r] + (1.0 - opts.theta) * step * qtw[r];
    }
    // Gauss–Seidel: the implicit adjoint operator is strictly
    // diagonally dominant by columns (its columns are the backward
    // operator's rows), which is equally sufficient for convergence.
    const double th = opts.theta * step;
    for (std::size_t sweep = 0; sweep < 1000; ++sweep) {
      double max_delta = 0.0;
      for (std::size_t r = 0; r < num_transient_; ++r) {
        double acc = rhs[r];
        for (std::uint32_t k = trow_ptr_[r]; k < trow_ptr_[r + 1]; ++k) {
          acc += th * tval_[k] * w[tcol_[k]];
        }
        const double next_val = acc / (1.0 + th * exit_[r]);
        max_delta = std::max(max_delta, std::abs(next_val - w[r]));
        w[r] = next_val;
      }
      if (max_delta <= opts.gs_tolerance) break;
    }

    // Trapezoid accumulation of the survival-time and rate integrals
    // over this step, then interpolated emissions.
    const double now = grid[j];
    const double s_now = total(w);
    res.survival_integral += 0.5 * step * (s_prev + s_now);
    for (std::size_t k = 0; k < functionals.size(); ++k) {
      const double fd = dot(functionals[k], w);
      res.functional_integrals[k] += 0.5 * step * (fdot_prev[k] + fd);
      fdot_prev[k] = fd;
    }
    emit_upto(prev_now, now, s_now);
    prev_now = now;
    s_prev = s_now;
  }
  scatter();
  return res;
}

}  // namespace midas::spn
