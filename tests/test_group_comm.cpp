// Secure ordered multicast: total order, view-synchronous admission,
// and the confidentiality property (evicted members cannot read
// post-rekey traffic).
#include "gcs/group_comm.h"

#include <gtest/gtest.h>

namespace {

using namespace midas::gcs;

TEST(SecureEnvelope, RoundTripsUnderTheRightKey) {
  const std::string msg = "advance to grid 17 at 0400";
  const auto env = SecureEnvelope::seal(0xDEADBEEF, msg);
  EXPECT_EQ(env.open(0xDEADBEEF), msg);
  EXPECT_EQ(env.ciphertext.size(), msg.size());
}

TEST(SecureEnvelope, WrongKeyYieldsGarbage) {
  const std::string msg = "rendezvous at checkpoint bravo";
  const auto env = SecureEnvelope::seal(111, msg);
  EXPECT_NE(env.open(112), msg);
}

TEST(SecureEnvelope, CiphertextDiffersFromPlaintext) {
  const std::string msg = "plaintext-plaintext-plaintext";
  const auto env = SecureEnvelope::seal(7, msg);
  std::string raw(env.ciphertext.begin(), env.ciphertext.end());
  EXPECT_NE(raw, msg);
}

TEST(SecureEnvelope, EmptyMessage) {
  const auto env = SecureEnvelope::seal(5, "");
  EXPECT_EQ(env.open(5), "");
}

TEST(GroupChannel, TotalOrderAcrossSenders) {
  ViewManager view({1, 2, 3});
  GroupChannel ch(view);
  const std::uint64_t key = 42;

  ASSERT_TRUE(ch.publish(1, 0, key, "a"));
  ASSERT_TRUE(ch.publish(2, 0, key, "b"));
  ASSERT_TRUE(ch.publish(3, 0, key, "c"));

  for (NodeId member : {1u, 2u, 3u}) {
    const auto msgs = ch.drain(member);
    ASSERT_EQ(msgs.size(), 3u) << "member " << member;
    EXPECT_LT(msgs[0].seq, msgs[1].seq);
    EXPECT_LT(msgs[1].seq, msgs[2].seq);
    EXPECT_EQ(msgs[0].envelope.open(key), "a");
    EXPECT_EQ(msgs[2].envelope.open(key), "c");
  }
}

TEST(GroupChannel, StaleViewPublishesAreRejected) {
  ViewManager view({1, 2});
  GroupChannel ch(view);
  view.join(3);  // view id now 1
  EXPECT_FALSE(ch.publish(1, 0, 7, "stale"));  // sender still in view 0
  EXPECT_TRUE(ch.publish(1, 1, 7, "fresh"));
  EXPECT_EQ(ch.stats().rejected_stale_view, 1u);
  EXPECT_EQ(ch.stats().published, 1u);
}

TEST(GroupChannel, NonMemberCannotPublish) {
  ViewManager view({1, 2});
  GroupChannel ch(view);
  EXPECT_FALSE(ch.publish(99, 0, 7, "intruder"));
}

TEST(GroupChannel, EvictedMemberMissesPostEvictionTraffic) {
  ViewManager view({1, 2, 3});
  GroupChannel ch(view);
  ASSERT_TRUE(ch.publish(1, 0, 10, "before eviction"));

  view.evict(3);
  const std::uint64_t new_key = 20;  // rekey after eviction
  ASSERT_TRUE(ch.publish(1, 1, new_key, "after eviction"));

  // Node 3 still holds its pre-eviction queue but receives nothing new.
  const auto msgs3 = ch.drain(3);
  ASSERT_EQ(msgs3.size(), 1u);
  EXPECT_EQ(msgs3[0].envelope.open(10), "before eviction");

  // Survivors see both; the second only decrypts under the new key.
  const auto msgs1 = ch.drain(1);
  ASSERT_EQ(msgs1.size(), 2u);
  EXPECT_EQ(msgs1[1].envelope.open(new_key), "after eviction");
  EXPECT_NE(msgs1[1].envelope.open(10), "after eviction");
}

TEST(GroupChannel, JoiningMemberSeesOnlySubsequentMessages) {
  ViewManager view({1, 2});
  GroupChannel ch(view);
  ASSERT_TRUE(ch.publish(1, 0, 5, "old news"));
  view.join(3);
  ASSERT_TRUE(ch.publish(2, 1, 6, "fresh news"));

  const auto msgs = ch.drain(3);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].envelope.open(6), "fresh news");
}

TEST(GroupChannel, PendingAndDrainAccounting) {
  ViewManager view({1, 2});
  GroupChannel ch(view);
  ASSERT_TRUE(ch.publish(1, 0, 3, "x"));
  ASSERT_TRUE(ch.publish(2, 0, 3, "y"));
  EXPECT_EQ(ch.pending(1), 2u);
  (void)ch.drain(1);
  EXPECT_EQ(ch.pending(1), 0u);
  EXPECT_EQ(ch.pending(2), 2u);
  EXPECT_EQ(ch.stats().delivered, 2u);
  EXPECT_TRUE(ch.drain(99).empty());  // unknown member: empty, no crash
}

}  // namespace
