#include "linalg/log_math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using namespace midas::linalg;

TEST(LogMath, FactorialSmallValues) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogMath, FactorialNegativeIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(log_factorial(-1)));
  EXPECT_LT(log_factorial(-1), 0.0);
}

TEST(LogMath, BinomialKnownValues) {
  EXPECT_NEAR(binomial(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(binomial(10, 5), 252.0, 1e-6);
  EXPECT_NEAR(binomial(52, 5), 2598960.0, 1e-2);
  EXPECT_DOUBLE_EQ(binomial(4, 7), 0.0);
  EXPECT_DOUBLE_EQ(binomial(4, -1), 0.0);
}

TEST(LogMath, BinomialSymmetry) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_NEAR(log_binomial(n, k), log_binomial(n, n - k), 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogMath, BinomialPmfEdgeProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 9, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, -1, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 11, 0.5), 0.0);
}

TEST(LogMath, BinomialPmfKnownValue) {
  // P[X=2], X~Bin(4, 0.5) = 6/16.
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 0.375, 1e-12);
}

class BinomialPmfSum : public ::testing::TestWithParam<std::pair<int, double>> {
};

TEST_P(BinomialPmfSum, SumsToOne) {
  const auto [n, p] = GetParam();
  double sum = 0.0;
  for (int k = 0; k <= n; ++k) sum += binomial_pmf(n, k, p);
  EXPECT_NEAR(sum, 1.0, 1e-10) << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialPmfSum,
    ::testing::Values(std::pair{1, 0.5}, std::pair{5, 0.01},
                      std::pair{9, 0.99}, std::pair{50, 0.3},
                      std::pair{100, 0.01}, std::pair{100, 0.999},
                      std::pair{7, 0.5}, std::pair{200, 0.12}));

TEST(LogMath, TailMatchesDirectSum) {
  const int n = 20;
  const double p = 0.37;
  for (int k = 0; k <= n + 1; ++k) {
    double direct = 0.0;
    for (int j = k; j <= n; ++j) direct += binomial_pmf(n, j, p);
    EXPECT_NEAR(binomial_tail_geq(n, k, p), direct, 1e-11) << "k=" << k;
  }
}

TEST(LogMath, TailBoundaries) {
  EXPECT_DOUBLE_EQ(binomial_tail_geq(10, 0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_geq(10, -3, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_geq(10, 11, 0.3), 0.0);
}

TEST(LogMath, HypergeometricSumsToOne) {
  const std::int64_t succ = 7, fail = 13, draws = 9;
  double sum = 0.0;
  for (std::int64_t k = 0; k <= draws; ++k) {
    sum += hypergeometric_pmf(succ, fail, draws, k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(LogMath, HypergeometricKnownValue) {
  // Drawing 2 from 3 red + 2 blue; P[exactly 1 red] = C(3,1)C(2,1)/C(5,2)
  // = 6/10.
  EXPECT_NEAR(hypergeometric_pmf(3, 2, 2, 1), 0.6, 1e-12);
}

TEST(LogMath, HypergeometricMean) {
  // E[successes] = draws * succ / population.
  const std::int64_t succ = 30, fail = 70, draws = 10;
  double mean = 0.0;
  for (std::int64_t k = 0; k <= draws; ++k) {
    mean +=
        static_cast<double>(k) * hypergeometric_pmf(succ, fail, draws, k);
  }
  EXPECT_NEAR(mean, 10.0 * 30.0 / 100.0, 1e-9);
}

TEST(LogMath, HypergeometricImpossibleDraws) {
  EXPECT_DOUBLE_EQ(hypergeometric_pmf(3, 2, 2, 3), 0.0);   // k > draws? k>succ
  EXPECT_DOUBLE_EQ(hypergeometric_pmf(3, 2, 6, 3), 0.0);   // draws > pop
  EXPECT_DOUBLE_EQ(hypergeometric_pmf(3, 2, 2, -1), 0.0);  // k < 0
}

TEST(LogMath, LogSumExpBasics) {
  EXPECT_NEAR(log_sum_exp(std::log(2.0), std::log(3.0)), std::log(5.0),
              1e-12);
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_sum_exp(ninf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(log_sum_exp(1.5, ninf), 1.5);
}

TEST(LogMath, LogSumExpLargeMagnitudes) {
  // Must not overflow: both operands near 1e308 in linear domain.
  const double a = 700.0, b = 699.0;
  EXPECT_NEAR(log_sum_exp(a, b), a + std::log1p(std::exp(b - a)), 1e-12);
}

}  // namespace
