// GridSpec mechanics plus the grid-equivalence guarantees: a multi-axis
// grid run must match nested 1-D sweeps point-for-point, stay bitwise
// identical across thread counts, and run_mc's antithetic mode must
// reproduce the analytic values within its (shrunken) CIs.
#include "core/grid_spec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/sweep_engine.h"

namespace {

using namespace midas;
using core::GridSpec;
using core::Params;

Params small_params() {
  Params p = Params::paper_defaults();
  p.n_init = 20;
  p.max_groups = 1;
  return p;
}

TEST(GridSpec, ExpansionOrderIsRowMajorLastAxisFastest) {
  GridSpec spec;
  spec.num_voters({3, 5}).t_ids({30, 120, 480});
  EXPECT_EQ(spec.num_axes(), 2u);
  EXPECT_EQ(spec.num_points(), 6u);

  const auto points = spec.expand(small_params());
  ASSERT_EQ(points.size(), 6u);
  // Outer loop m, inner loop TIDS — handwritten nested-loop order.
  EXPECT_EQ(points[0].num_voters, 3);
  EXPECT_DOUBLE_EQ(points[0].t_ids, 30.0);
  EXPECT_DOUBLE_EQ(points[2].t_ids, 480.0);
  EXPECT_EQ(points[3].num_voters, 5);
  EXPECT_DOUBLE_EQ(points[3].t_ids, 30.0);

  // coords ↔ index round-trips.
  for (std::size_t i = 0; i < spec.num_points(); ++i) {
    const auto c = spec.coords(i);
    EXPECT_EQ(spec.index(c), i);
  }
  const std::size_t c_last[]{1, 2};
  EXPECT_EQ(spec.index(c_last), 5u);
  EXPECT_EQ(spec.label(3), "m=5, t_ids=30");
}

TEST(GridSpec, AxisFreeSpecIsTheBasePoint) {
  const GridSpec spec;
  EXPECT_EQ(spec.num_points(), 1u);
  const auto points = spec.expand(small_params());
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].num_voters, small_params().num_voters);
  EXPECT_EQ(spec.label(0), "");
}

TEST(GridSpec, GenericNumericAxisAppliesSetter) {
  GridSpec spec;
  spec.axis("lambda_c", {1e-4, 2e-4},
            [](Params& p, double v) { p.lambda_c = v; });
  const auto points = spec.expand(small_params());
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].lambda_c, 1e-4);
  EXPECT_DOUBLE_EQ(points[1].lambda_c, 2e-4);
  EXPECT_EQ(spec.axis_at(0).name, "lambda_c");
}

TEST(GridSpec, CategoricalAxesCarryNanValuesAndLabels) {
  GridSpec spec;
  spec.detection_shape({ids::Shape::Logarithmic, ids::Shape::Polynomial})
      .attacker_shape({ids::Shape::Linear});
  EXPECT_TRUE(std::isnan(spec.axis_at(0).values[0]));
  EXPECT_EQ(spec.axis_at(0).labels[1], "polynomial");
  const auto points = spec.expand(small_params());
  EXPECT_EQ(points[1].detection_shape, ids::Shape::Polynomial);
  EXPECT_EQ(points[1].attacker_shape, ids::Shape::Linear);
  EXPECT_EQ(spec.label(1), "detection=polynomial, attacker=linear");
}

TEST(GridSpec, RejectsMalformedSpecs) {
  GridSpec spec;
  EXPECT_THROW(spec.t_ids({}), std::invalid_argument);
  spec.t_ids({30, 60});
  EXPECT_THROW(spec.t_ids({120}), std::invalid_argument);  // duplicate
  EXPECT_THROW((void)spec.coords(2), std::out_of_range);
  const std::size_t wrong_rank[]{0, 0};
  EXPECT_THROW((void)spec.index(wrong_rank), std::invalid_argument);
  const std::size_t oob[]{7};
  EXPECT_THROW((void)spec.index(oob), std::out_of_range);
  EXPECT_THROW((void)spec.axis_at(3), std::out_of_range);
  EXPECT_THROW(
      spec.axis("bad", std::vector<double>{1.0},
                std::function<void(Params&, double)>{}),
      std::invalid_argument);
}

TEST(GridRun, MatchesNestedSweepTIdsPointForPoint) {
  const std::vector<double> grid{30, 120, 480};
  const std::vector<std::int64_t> voters{3, 5};

  core::SweepEngine grid_engine;
  GridSpec spec;
  spec.num_voters(voters).t_ids(grid);
  const auto run = grid_engine.run(spec, small_params());
  ASSERT_EQ(run.evals.size(), 6u);
  EXPECT_EQ(grid_engine.stats().explorations, 1u);

  core::SweepEngine nested_engine;
  for (std::size_t mi = 0; mi < voters.size(); ++mi) {
    Params p = small_params();
    p.num_voters = voters[mi];
    const auto sweep = nested_engine.sweep_t_ids(p, grid);
    for (std::size_t ti = 0; ti < grid.size(); ++ti) {
      const std::size_t coords[]{mi, ti};
      const auto& a = run.at(coords);
      const auto& b = sweep.points[ti].eval;
      // 1e-12 relative per the acceptance criterion; the engines share
      // the accumulation order, so agreement is in fact exact.
      EXPECT_NEAR(a.mttsf, b.mttsf, 1e-12 * b.mttsf);
      EXPECT_NEAR(a.ctotal, b.ctotal, 1e-12 * b.ctotal);
      EXPECT_NEAR(a.p_failure_c1, b.p_failure_c1, 1e-12);
      EXPECT_NEAR(a.p_failure_c2, b.p_failure_c2, 1e-12);
      EXPECT_NEAR(a.eviction_cost_rate, b.eviction_cost_rate,
                  1e-12 * std::max(b.eviction_cost_rate, 1.0));
      EXPECT_EQ(a.num_states, b.num_states);
    }
  }
}

TEST(GridRun, BitwiseIdenticalAcrossThreadCounts) {
  GridSpec spec;
  spec.num_voters({3, 5})
      .detection_shape({ids::Shape::Linear, ids::Shape::Polynomial})
      .t_ids({30, 240});

  core::SweepEngine serial({.threads = 1});
  core::SweepEngine parallel({.threads = 4});
  const auto a = serial.run(spec, small_params());
  const auto b = parallel.run(spec, small_params());
  ASSERT_EQ(a.evals.size(), b.evals.size());
  for (std::size_t i = 0; i < a.evals.size(); ++i) {
    EXPECT_EQ(a.evals[i].mttsf, b.evals[i].mttsf) << spec.label(i);
    EXPECT_EQ(a.evals[i].ctotal, b.evals[i].ctotal) << spec.label(i);
    EXPECT_EQ(a.evals[i].p_failure_c1, b.evals[i].p_failure_c1);
    EXPECT_EQ(a.evals[i].eviction_cost_rate, b.evals[i].eviction_cost_rate);
  }
}

TEST(GridRun, RunMcAnswersEveryAxisAnalyticallyAndBySimulation) {
  Params base = small_params();
  base.n_init = 15;
  base.lambda_c = 1.0 / 2000.0;

  GridSpec spec;
  spec.num_voters({3, 5}).t_ids({60, 600});
  sim::McOptions mc;
  mc.rel_ci_target = 0.10;
  mc.base_seed = 0xFACADE;
  mc.antithetic = true;
  core::SweepEngine engine;
  const auto result = engine.run_mc(spec, base, mc);

  ASSERT_EQ(result.points.size(), 4u);
  EXPECT_GT(result.mc_stats.replications, 0u);
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const auto& pt = result.points[i];
    EXPECT_TRUE(pt.mc.converged) << result.spec.label(i);
    EXPECT_GT(pt.eval.mttsf, 0.0);
    // Antithetic replications come in pairs; the Summary counts pairs.
    EXPECT_EQ(pt.mc.replications, 2 * pt.mc.ttsf.n);
    // Distribution-exact agreement: the analytic value sits within a
    // slightly widened 95% CI (widening absorbs the expected ~5% false
    // alarms; the seed makes this deterministic).
    EXPECT_NEAR(pt.mc.ttsf.mean, pt.eval.mttsf,
                2.0 * pt.mc.ttsf.ci_half_width)
        << result.spec.label(i);
  }
  EXPECT_LE(result.mttsf_inside_ci(), result.points.size());
}

}  // namespace
