// Voting-IDS error model (paper Eq. 1): the closed-form hypergeometric ×
// binomial evaluation is validated against exhaustive enumeration, and
// the qualitative properties the paper's analysis relies on are pinned
// down as invariants.
#include "ids/voting.h"

#include <tuple>

#include <gtest/gtest.h>

namespace {

using namespace midas::ids;

TEST(Voting, NoVotersMeansNoEvictionPossible) {
  const VotingParams p{5, 0.01, 0.01};
  // Lone good node: nobody can vote against it.
  const auto lone_good = voting_error_rates(p, 1, 0);
  EXPECT_DOUBLE_EQ(lone_good.pfp, 0.0);
  // Lone bad node: nobody can vote it out → guaranteed false negative.
  const auto lone_bad = voting_error_rates(p, 0, 1);
  EXPECT_DOUBLE_EQ(lone_bad.pfn, 1.0);
}

TEST(Voting, PerfectDetectorsNoCollusion) {
  // p1 = p2 = 0 and no compromised voters: voting never errs.
  const VotingParams p{5, 0.0, 0.0};
  const auto r = voting_error_rates(p, 50, 0);
  EXPECT_DOUBLE_EQ(r.pfp, 0.0);

  const auto r2 = voting_error_rates(p, 50, 1);  // one bad target
  EXPECT_DOUBLE_EQ(r2.pfn, 0.0);
}

TEST(Voting, BadMajorityPoolDefeatsVoting) {
  // Almost all voters compromised: they always acquit bad targets and
  // convict good ones.
  const VotingParams p{5, 0.0, 0.0};
  const auto r = voting_error_rates(p, 2, 40);
  EXPECT_GT(r.pfp, 0.8);
  EXPECT_GT(r.pfn, 0.8);
}

TEST(Voting, InvalidParametersThrow) {
  EXPECT_THROW((void)voting_error_rates({0, 0.1, 0.1}, 5, 5),
               std::invalid_argument);
  EXPECT_THROW((void)voting_error_rates({5, -0.1, 0.1}, 5, 5),
               std::invalid_argument);
  EXPECT_THROW((void)voting_error_rates({5, 0.1, 1.1}, 5, 5),
               std::invalid_argument);
  EXPECT_THROW((void)voting_error_rates({5, 0.1, 0.1}, -1, 5),
               std::invalid_argument);
}

// ---- Closed form vs exhaustive enumeration --------------------------

using BruteCase = std::tuple<int, int, int, double, double>;  // m, good, bad

class VotingBruteForce : public ::testing::TestWithParam<BruteCase> {};

TEST_P(VotingBruteForce, ClosedFormMatchesEnumeration) {
  const auto [m, good, bad, p1, p2] = GetParam();
  const VotingParams params{m, p1, p2};
  const auto exact = voting_error_rates(params, good, bad);
  const auto brute = voting_error_rates_bruteforce(params, good, bad);
  EXPECT_NEAR(exact.pfp, brute.pfp, 1e-10)
      << "m=" << m << " good=" << good << " bad=" << bad;
  EXPECT_NEAR(exact.pfn, brute.pfn, 1e-10)
      << "m=" << m << " good=" << good << " bad=" << bad;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VotingBruteForce,
    ::testing::Values(
        BruteCase{1, 3, 1, 0.01, 0.01}, BruteCase{3, 4, 2, 0.01, 0.01},
        BruteCase{3, 2, 3, 0.05, 0.02}, BruteCase{5, 6, 2, 0.01, 0.01},
        BruteCase{5, 3, 3, 0.10, 0.10}, BruteCase{5, 8, 0, 0.01, 0.01},
        BruteCase{7, 8, 3, 0.02, 0.03}, BruteCase{7, 4, 4, 0.25, 0.25},
        BruteCase{9, 9, 2, 0.01, 0.01}, BruteCase{4, 5, 2, 0.01, 0.01},
        BruteCase{2, 3, 2, 0.50, 0.50}, BruteCase{5, 12, 1, 0.0, 0.0},
        BruteCase{3, 1, 2, 0.01, 0.01}, BruteCase{9, 5, 5, 0.05, 0.02}));

// ---- Paper-level qualitative properties ------------------------------

TEST(Voting, LargerQuorumSuppressesFalsePositives) {
  // Paper Fig. 2 discussion: "when m is large, the false alarm
  // probability is small."  With a clean voter pool, Pfp must fall
  // monotonically as m grows.
  double prev = 1.0;
  for (const int m : {1, 3, 5, 7, 9}) {
    const auto r = voting_error_rates({m, 0.01, 0.01}, 50, 0);
    EXPECT_LT(r.pfp, prev) << "m=" << m;
    prev = r.pfp;
  }
}

TEST(Voting, LargerQuorumSuppressesFalseNegatives) {
  double prev = 1.0;
  for (const int m : {1, 3, 5, 7, 9}) {
    const auto r = voting_error_rates({m, 0.01, 0.01}, 50, 1);
    EXPECT_LT(r.pfn, prev) << "m=" << m;
    prev = r.pfn;
  }
}

TEST(Voting, CollusionRaisesBothErrorRates) {
  // Paper §4.1: compromised voters cast fake votes; both error modes
  // must increase with the number of compromised nodes in the pool.
  const VotingParams p{5, 0.01, 0.01};
  double prev_pfp = -1.0, prev_pfn = -1.0;
  for (const int bad : {0, 2, 4, 8, 16}) {
    const auto r = voting_error_rates(p, 30, bad);
    EXPECT_GT(r.pfp, prev_pfp) << "bad=" << bad;
    if (bad > 0) {
      EXPECT_GT(r.pfn, prev_pfn) << "bad=" << bad;
    }
    prev_pfp = r.pfp;
    prev_pfn = r.pfn;
  }
}

TEST(Voting, WorseHostIdsRaisesErrors) {
  for (const double perr : {0.01, 0.05, 0.10, 0.20}) {
    const auto weak = voting_error_rates({5, perr, perr}, 40, 2);
    const auto strong = voting_error_rates({5, perr / 2, perr / 2}, 40, 2);
    EXPECT_GT(weak.pfp, strong.pfp) << "perr=" << perr;
    EXPECT_GT(weak.pfn, strong.pfn) << "perr=" << perr;
  }
}

TEST(Voting, ProbabilitiesStayInUnitInterval) {
  for (int m : {1, 3, 5, 9}) {
    for (int good = 0; good <= 12; good += 3) {
      for (int bad = 0; bad <= 12; bad += 3) {
        const auto r = voting_error_rates({m, 0.3, 0.2}, good, bad);
        EXPECT_GE(r.pfp, 0.0);
        EXPECT_LE(r.pfp, 1.0);
        EXPECT_GE(r.pfn, 0.0);
        EXPECT_LE(r.pfn, 1.0);
      }
    }
  }
}

TEST(VotingTable, MatchesDirectEvaluationAndClamps) {
  const VotingParams p{5, 0.02, 0.03};
  const VotingTable table(p, 20, 10);
  for (int g : {0, 1, 7, 20}) {
    for (int b : {0, 1, 5, 10}) {
      const auto direct = voting_error_rates(p, g, b);
      EXPECT_DOUBLE_EQ(table.at(g, b).pfp, direct.pfp);
      EXPECT_DOUBLE_EQ(table.at(g, b).pfn, direct.pfn);
    }
  }
  // Out-of-range lookups clamp instead of crashing.
  EXPECT_DOUBLE_EQ(table.at(100, 100).pfp, table.at(20, 10).pfp);
  EXPECT_DOUBLE_EQ(table.at(-5, -5).pfn, table.at(0, 0).pfn);
}

}  // namespace
