// Sharded sweep service: plan slicing, shard/merge equivalence with the
// single-process engine (the acceptance criterion: ≤1e-12 analytic —
// exact in practice — and BITWISE Monte-Carlo summaries), and the JSON
// shard-file round trip.
#include "core/shard.h"

#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/sweep_engine.h"

namespace {

using namespace midas;
using core::Params;
using core::ShardPlan;
using core::ShardRange;

Params small_params() {
  Params p = Params::paper_defaults();
  p.n_init = 20;
  p.max_groups = 1;
  return p;
}

/// The m × TIDS slice the analytic equivalence tests run (6 points).
core::GridSpec small_grid() {
  core::GridSpec spec;
  spec.num_voters({3, 5}).t_ids({30, 120, 480});
  return spec;
}

void expect_evals_bitwise(const core::Evaluation& a,
                          const core::Evaluation& b) {
  EXPECT_EQ(a.mttsf, b.mttsf);
  EXPECT_EQ(a.ctotal, b.ctotal);
  EXPECT_EQ(a.cost_rates.group_comm, b.cost_rates.group_comm);
  EXPECT_EQ(a.cost_rates.status, b.cost_rates.status);
  EXPECT_EQ(a.cost_rates.rekey, b.cost_rates.rekey);
  EXPECT_EQ(a.cost_rates.ids, b.cost_rates.ids);
  EXPECT_EQ(a.cost_rates.beacon, b.cost_rates.beacon);
  EXPECT_EQ(a.cost_rates.partition_merge, b.cost_rates.partition_merge);
  EXPECT_EQ(a.eviction_cost_rate, b.eviction_cost_rate);
  EXPECT_EQ(a.p_failure_c1, b.p_failure_c1);
  EXPECT_EQ(a.p_failure_c2, b.p_failure_c2);
  EXPECT_EQ(a.num_states, b.num_states);
  EXPECT_EQ(a.solver_blocks, b.solver_blocks);
}

void expect_mc_bitwise(const sim::McPointResult& a,
                       const sim::McPointResult& b) {
  EXPECT_EQ(a.ttsf_state.n, b.ttsf_state.n);
  EXPECT_EQ(a.ttsf_state.mean, b.ttsf_state.mean);
  EXPECT_EQ(a.ttsf_state.m2, b.ttsf_state.m2);
  EXPECT_EQ(a.cost_rate_state.n, b.cost_rate_state.n);
  EXPECT_EQ(a.cost_rate_state.mean, b.cost_rate_state.mean);
  EXPECT_EQ(a.cost_rate_state.m2, b.cost_rate_state.m2);
  EXPECT_EQ(a.ttsf.mean, b.ttsf.mean);
  EXPECT_EQ(a.ttsf.ci_half_width, b.ttsf.ci_half_width);
  EXPECT_EQ(a.cost_rate.mean, b.cost_rate.mean);
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.failures_c1, b.failures_c1);
  EXPECT_EQ(a.p_failure_c1, b.p_failure_c1);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.survival_counts, b.survival_counts);
  ASSERT_EQ(a.survival.size(), b.survival.size());
  for (std::size_t h = 0; h < a.survival.size(); ++h) {
    EXPECT_EQ(a.survival[h].mean, b.survival[h].mean);
    EXPECT_EQ(a.survival[h].ci_half_width, b.survival[h].ci_half_width);
  }
}

TEST(ShardPlan, ContiguousIsBalancedAndTiles) {
  const auto plan = ShardPlan::contiguous(10, 3);
  ASSERT_EQ(plan.num_shards(), 3u);
  EXPECT_EQ(plan.range(0), (ShardRange{0, 4}));
  EXPECT_EQ(plan.range(1), (ShardRange{4, 7}));
  EXPECT_EQ(plan.range(2), (ShardRange{7, 10}));
  core::validate_shard_tiling(10, plan.ranges());

  // One shard takes everything; more shards than points leaves the
  // trailing shards empty but still tiling.
  EXPECT_EQ(ShardPlan::contiguous(5, 1).range(0), (ShardRange{0, 5}));
  const auto wide = ShardPlan::contiguous(2, 4);
  EXPECT_EQ(wide.range(0), (ShardRange{0, 1}));
  EXPECT_EQ(wide.range(1), (ShardRange{1, 2}));
  EXPECT_TRUE(wide.range(2).empty());
  EXPECT_TRUE(wide.range(3).empty());
  core::validate_shard_tiling(2, wide.ranges());

  EXPECT_THROW((void)ShardPlan::contiguous(4, 0), std::invalid_argument);
  EXPECT_THROW((void)plan.range(3), std::out_of_range);
}

TEST(ShardPlan, ByStructureKeepsStructureRunsWhole) {
  // n_init is structural: the grid's row-major order (n_init slowest)
  // yields one run of equal structure_key per n_init level.  Shard
  // boundaries must fall only between runs, so each structure is
  // explored by exactly one shard.
  core::GridSpec spec;
  spec.axis("n_init", std::vector<double>{20, 24},
            [](Params& p, double v) {
              p.n_init = static_cast<std::int32_t>(v);
            })
      .t_ids({30, 120, 480});
  const Params base = small_params();

  const auto plan = ShardPlan::by_structure(spec, base, 2);
  ASSERT_EQ(plan.num_shards(), 2u);
  EXPECT_EQ(plan.range(0), (ShardRange{0, 3}));
  EXPECT_EQ(plan.range(1), (ShardRange{3, 6}));
  core::validate_shard_tiling(6, plan.ranges());

  // More shards than runs: the extra shards are empty, runs stay whole.
  const auto wide = ShardPlan::by_structure(spec, base, 4);
  EXPECT_EQ(wide.range(0), (ShardRange{0, 3}));
  EXPECT_EQ(wide.range(1), (ShardRange{3, 6}));
  EXPECT_TRUE(wide.range(2).empty());
  EXPECT_TRUE(wide.range(3).empty());
  core::validate_shard_tiling(6, wide.ranges());

  // A structure-uniform grid (paper default: every m shares the
  // structure) collapses into one run owned by shard 0.
  const auto uniform = ShardPlan::by_structure(small_grid(), base, 2);
  EXPECT_EQ(uniform.range(0), (ShardRange{0, 6}));
  EXPECT_TRUE(uniform.range(1).empty());

  // Each shard pays exactly one exploration for the structures it owns.
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    core::SweepEngine engine;
    (void)engine.run_shard(spec, base, plan.range(s));
    EXPECT_EQ(engine.stats().explorations, 1u) << "shard " << s;
  }
}

TEST(ShardMerge, AnalyticMatchesSingleProcessExactly) {
  const auto spec = small_grid();
  const Params base = small_params();

  core::SweepEngine single;
  const auto whole = single.run(spec, base);

  // Uneven split including a single-point shard, each evaluated by its
  // own engine (as separate worker processes would).
  const std::vector<ShardRange> ranges{{0, 1}, {1, 4}, {4, 6}};
  std::vector<core::GridShardResult> shards;
  for (const auto& r : ranges) {
    core::SweepEngine worker;
    shards.push_back(worker.run_shard(spec, base, r));
  }
  const auto merged = core::merge_shards(spec, shards);

  ASSERT_EQ(merged.evals.size(), whole.evals.size());
  for (std::size_t i = 0; i < whole.evals.size(); ++i) {
    expect_evals_bitwise(merged.evals[i], whole.evals[i]);
  }
}

TEST(ShardMerge, McMergesBitwiseUnderEveryStreamMode) {
  const auto spec = small_grid();
  const Params base = small_params();

  sim::McOptions mc;
  mc.base_seed = 0xFACADE;
  mc.rel_ci_target = 0.15;
  mc.min_replications = 32;
  mc.block = 32;
  mc.survival_horizons = {1e4, 1e6};

  // CRN (substreams keyed by replication only), independent streams
  // (keyed by GLOBAL point index via point_stream_offset), and
  // antithetic pairs layered on CRN: in every mode a k-shard split must
  // reproduce the single-process run bit-for-bit.
  struct Mode {
    const char* name;
    bool crn;
    bool antithetic;
  };
  for (const Mode mode : {Mode{"crn", true, false},
                          Mode{"independent", false, false},
                          Mode{"antithetic", true, true}}) {
    sim::McOptions opts = mc;
    opts.crn = mode.crn;
    opts.antithetic = mode.antithetic;

    core::SweepEngine single;
    const auto whole = single.run_mc(spec, base, opts);

    const std::vector<ShardRange> ranges{{0, 2}, {2, 3}, {3, 6}};
    std::vector<core::McGridShardResult> shards;
    for (const auto& r : ranges) {
      core::SweepEngine worker;
      shards.push_back(worker.run_mc_shard(spec, base, r, opts));
    }
    const auto merged = core::merge_mc_shards(spec, shards);

    ASSERT_EQ(merged.points.size(), whole.points.size()) << mode.name;
    for (std::size_t i = 0; i < whole.points.size(); ++i) {
      SCOPED_TRACE(std::string(mode.name) + " point " +
                   std::to_string(i));
      expect_evals_bitwise(merged.points[i].eval, whole.points[i].eval);
      expect_mc_bitwise(merged.points[i].mc, whole.points[i].mc);
    }
    EXPECT_EQ(merged.mc_stats.replications, whole.mc_stats.replications)
        << mode.name;
    EXPECT_EQ(merged.mttsf_inside_ci(), whole.mttsf_inside_ci())
        << mode.name;
  }
}

TEST(ShardMerge, ValidatesTilingAndPayloads) {
  const auto spec = small_grid();  // 6 points
  const Params base = small_params();
  core::SweepEngine engine;

  const auto a = engine.run_shard(spec, base, {0, 3});
  const auto b = engine.run_shard(spec, base, {3, 6});

  // Gap: [0,3) + [4,6).
  {
    const auto tail = engine.run_shard(spec, base, {4, 6});
    const std::vector<core::GridShardResult> gap{a, tail};
    EXPECT_THROW((void)core::merge_shards(spec, gap),
                 std::invalid_argument);
  }
  // Overlap: [0,3) + [2,6).
  {
    const auto over = engine.run_shard(spec, base, {2, 6});
    const std::vector<core::GridShardResult> lap{a, over};
    EXPECT_THROW((void)core::merge_shards(spec, lap),
                 std::invalid_argument);
  }
  // Payload size inconsistent with the range.
  {
    auto broken = a;
    broken.evals.pop_back();
    const std::vector<core::GridShardResult> bad{broken, b};
    EXPECT_THROW((void)core::merge_shards(spec, bad),
                 std::invalid_argument);
  }
  // Out-of-grid shard range is rejected at the engine.
  EXPECT_THROW((void)engine.run_shard(spec, base, {4, 9}),
               std::out_of_range);

  // The happy path including an empty shard.
  const auto empty = engine.run_shard(spec, base, {6, 6});
  const std::vector<core::GridShardResult> full{a, b, empty};
  const auto merged = core::merge_shards(spec, full);
  EXPECT_EQ(merged.evals.size(), 6u);
}

TEST(ShardFileJson, RoundTripsBitwise) {
  const auto spec = small_grid();
  const Params base = small_params();

  sim::McOptions mc;
  mc.base_seed = 0x5EED;
  mc.rel_ci_target = 0.2;
  mc.min_replications = 32;
  mc.block = 32;
  mc.survival_horizons = {1e5};

  core::SweepEngine engine;
  core::ShardFile file;
  file.plan = "unit";
  file.mode = "smoke";
  file.grid_points = spec.num_points();
  file.num_shards = 3;
  file.shard_index = 1;
  file.has_mc = true;
  file.result = engine.run_mc_shard(spec, base, {1, 4}, mc);

  const std::string path = "/tmp/midas_test_shard.json";
  core::write_shard_json(path, file);
  const auto back = core::read_shard_json(path);
  std::remove(path.c_str());

  EXPECT_EQ(back.plan, file.plan);
  EXPECT_EQ(back.mode, file.mode);
  EXPECT_EQ(back.grid_points, file.grid_points);
  EXPECT_EQ(back.num_shards, file.num_shards);
  EXPECT_EQ(back.shard_index, file.shard_index);
  EXPECT_EQ(back.has_mc, file.has_mc);
  EXPECT_EQ(back.result.range, file.result.range);
  ASSERT_EQ(back.result.evals.size(), file.result.evals.size());
  for (std::size_t i = 0; i < file.result.evals.size(); ++i) {
    expect_evals_bitwise(back.result.evals[i], file.result.evals[i]);
  }
  ASSERT_EQ(back.result.mc.size(), file.result.mc.size());
  for (std::size_t i = 0; i < file.result.mc.size(); ++i) {
    expect_mc_bitwise(back.result.mc[i], file.result.mc[i]);
  }
  EXPECT_EQ(back.result.mc_stats.replications,
            file.result.mc_stats.replications);
  EXPECT_EQ(back.result.mc_stats.seconds, file.result.mc_stats.seconds);

  // Metadata disagreement is caught by the file-level merge.
  auto other = back;
  other.shard_index = 0;
  other.plan = "different";
  const std::vector<core::ShardFile> bad{file, other};
  EXPECT_THROW((void)core::merge_shard_files(bad), std::invalid_argument);

  // Duplicate shard index too.
  const std::vector<core::ShardFile> dup{file, file};
  EXPECT_THROW((void)core::merge_shard_files(dup), std::invalid_argument);
}

TEST(ShardFileJson, FileLevelMergeReconstructsTheGrid) {
  const auto spec = small_grid();
  const Params base = small_params();

  sim::McOptions mc;
  mc.base_seed = 0xFACADE;
  mc.rel_ci_target = 0.2;
  mc.min_replications = 32;
  mc.block = 32;

  core::SweepEngine single;
  const auto whole = single.run_mc(spec, base, mc);

  const auto plan = ShardPlan::contiguous(spec.num_points(), 2);
  std::vector<core::ShardFile> files;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    core::SweepEngine worker;
    core::ShardFile f;
    f.plan = "unit";
    f.mode = "smoke";
    f.grid_points = spec.num_points();
    f.num_shards = plan.num_shards();
    f.shard_index = s;
    f.has_mc = true;
    f.result = worker.run_mc_shard(spec, base, plan.range(s), mc);
    // Through the serialization layer, as the real service runs.
    const std::string path =
        "/tmp/midas_test_shard_" + std::to_string(s) + ".json";
    core::write_shard_json(path, f);
    files.push_back(core::read_shard_json(path));
    std::remove(path.c_str());
  }

  const auto merged = core::merge_shard_files(files);
  EXPECT_EQ(merged.plan, "unit");
  EXPECT_EQ(merged.num_shards, 2u);
  ASSERT_EQ(merged.evals.size(), whole.points.size());
  ASSERT_TRUE(merged.has_mc);
  for (std::size_t i = 0; i < whole.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    expect_evals_bitwise(merged.evals[i], whole.points[i].eval);
    expect_mc_bitwise(merged.mc[i], whole.points[i].mc);
  }
  EXPECT_EQ(merged.mc_stats.replications, whole.mc_stats.replications);
}

TEST(ShardPlan, ReplanSplitsTheUncompletedRemainderDeterministically) {
  // One orphaned lease fanned across three idle survivors: the pieces
  // tile the original range in order, no point lost or duplicated.
  const std::vector<ShardRange> orphan = {{10, 22}};
  const auto pieces = ShardPlan::replan(orphan, 3);
  ASSERT_EQ(pieces.size(), 3u);
  std::size_t cursor = 10;
  for (const auto& r : pieces) {
    EXPECT_EQ(r.begin, cursor);
    EXPECT_GT(r.end, r.begin);
    cursor = r.end;
  }
  EXPECT_EQ(cursor, 22u);

  // More inputs than pieces: returned sorted, empties dropped, intact.
  const std::vector<ShardRange> many = {{8, 9}, {0, 4}, {4, 4}, {5, 8}};
  const auto kept = ShardPlan::replan(many, 2);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].begin, 0u);
  EXPECT_EQ(kept[1].begin, 5u);
  EXPECT_EQ(kept[2].begin, 8u);

  // Never splits below one point per piece.
  const std::vector<ShardRange> tiny = {{3, 5}};
  EXPECT_EQ(ShardPlan::replan(tiny, 8).size(), 2u);

  // Overlapping inputs and zero pieces are programmer errors.
  const std::vector<ShardRange> overlap = {{0, 6}, {4, 9}};
  EXPECT_THROW((void)ShardPlan::replan(overlap, 2), std::invalid_argument);
  EXPECT_THROW((void)ShardPlan::replan(orphan, 0), std::invalid_argument);
}

TEST(ShardTiling, ErrorsNameTheGuiltyShardIndices) {
  // The labeled overload is what merge paths use: errors must name the
  // caller's shard indices (7 and 3 here), not list positions.
  const std::vector<std::size_t> labels = {7, 3};
  const auto error_of = [&](const std::vector<ShardRange>& ranges) {
    try {
      core::validate_shard_tiling(10, ranges, labels);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    ADD_FAILURE() << "expected the tiling to be rejected";
    return std::string();
  };

  // Gap in the middle: names the uncovered run and both neighbours.
  std::string what = error_of({{0, 4}, {6, 10}});
  EXPECT_NE(what.find("[4, 6)"), std::string::npos) << what;
  EXPECT_NE(what.find("shard 7"), std::string::npos) << what;
  EXPECT_NE(what.find("shard 3"), std::string::npos) << what;

  // Overlap: names both shards and the exact overlapping points.
  what = error_of({{0, 6}, {4, 10}});
  EXPECT_NE(what.find("overlap"), std::string::npos) << what;
  EXPECT_NE(what.find("shard 7"), std::string::npos) << what;
  EXPECT_NE(what.find("shard 3"), std::string::npos) << what;
  EXPECT_NE(what.find("[4, 6)"), std::string::npos) << what;

  // Tail gap: names the last shard that fell short.
  what = error_of({{0, 4}, {4, 8}});
  EXPECT_NE(what.find("[8, 10)"), std::string::npos) << what;
  EXPECT_NE(what.find("shard 3"), std::string::npos) << what;

  // A healthy tiling passes with labels attached.
  const std::vector<ShardRange> good = {{0, 4}, {4, 10}};
  EXPECT_NO_THROW(core::validate_shard_tiling(10, good, labels));
}

}  // namespace
