// Cross-validation: the independent discrete-event simulator and the
// analytic SPN solver describe the same stochastic process, so their
// MTTSF, cost and failure-mode estimates must agree within Monte-Carlo
// confidence bounds.  This mirrors the paper's simulation-validation
// methodology and is the strongest end-to-end check in the suite.
#include <gtest/gtest.h>

#include "core/gcs_spn_model.h"
#include "sim/des.h"

namespace {

using namespace midas;
using core::Params;

Params small_params() {
  Params p = Params::paper_defaults();
  p.n_init = 15;
  p.max_groups = 1;
  // Faster dynamics keep each trajectory short.
  p.lambda_c = 1.0 / 2000.0;
  p.t_ids = 60.0;
  return p;
}

TEST(DesValidation, MttsfAgreesWithAnalyticModel) {
  const auto params = small_params();
  const auto analytic = core::GcsSpnModel(params).evaluate();
  const auto sim = sim::run_replications(params, 400, 0xABCDEF, 1);

  // The analytic value must fall inside a slightly widened 95% CI (the
  // widening guards against the ~2.5% expected false-alarm rate).
  const double slack = 1.6 * sim.ttsf.ci_half_width;
  EXPECT_NEAR(sim.ttsf.mean, analytic.mttsf, slack)
      << "analytic=" << analytic.mttsf << " sim=" << sim.ttsf.mean
      << " ±" << sim.ttsf.ci_half_width;
}

TEST(DesValidation, FailureModeSplitAgrees) {
  const auto params = small_params();
  const auto analytic = core::GcsSpnModel(params).evaluate();
  const auto sim = sim::run_replications(params, 400, 0x12345, 1);
  // Binomial std-err at 400 reps ≈ 0.025; allow 3σ.
  EXPECT_NEAR(sim.p_failure_c1, analytic.p_failure_c1, 0.075);
}

TEST(DesValidation, CostRateAgreesWithAnalyticModel) {
  const auto params = small_params();
  const auto analytic = core::GcsSpnModel(params).evaluate();
  const auto sim = sim::run_replications(params, 300, 0x777, 1);
  // Cost-per-time is a ratio estimator; compare with 10% tolerance.
  EXPECT_NEAR(sim.cost_rate.mean, analytic.ctotal,
              0.10 * analytic.ctotal);
}

TEST(DesValidation, GroupDynamicsPathAgrees) {
  Params params = small_params();
  params.max_groups = 3;
  params.partition_rates = {0.0, 2e-3, 1e-3, 0.0};
  params.merge_rates = {0.0, 0.0, 1e-2, 2e-2};
  const auto analytic = core::GcsSpnModel(params).evaluate();
  const auto sim = sim::run_replications(params, 300, 0xBEEF, 1);
  const double slack = 1.6 * sim.ttsf.ci_half_width;
  EXPECT_NEAR(sim.ttsf.mean, analytic.mttsf, slack);
}

TEST(Des, TrajectoriesAreDeterministicPerSeed) {
  const auto params = small_params();
  const auto a = sim::simulate_group(params, 42);
  const auto b = sim::simulate_group(params, 42);
  EXPECT_DOUBLE_EQ(a.ttsf, b.ttsf);
  EXPECT_DOUBLE_EQ(a.accumulated_cost, b.accumulated_cost);
  EXPECT_EQ(a.compromises, b.compromises);

  const auto c = sim::simulate_group(params, 43);
  EXPECT_NE(a.ttsf, c.ttsf);
}

TEST(Des, EventCountersAreCoherent) {
  const auto params = small_params();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto t = sim::simulate_group(params, seed);
    EXPECT_GT(t.ttsf, 0.0);
    EXPECT_GT(t.accumulated_cost, 0.0);
    // Every true eviction requires a prior compromise.
    EXPECT_LE(t.true_evictions, t.compromises);
    // Membership bound: evictions cannot exceed the initial population.
    EXPECT_LE(t.true_evictions + t.false_evictions,
              static_cast<std::size_t>(params.n_init));
  }
}

TEST(Des, HigherAttackRateShortensSimulatedSurvival) {
  Params slow = small_params();
  Params fast = small_params();
  fast.lambda_c *= 10.0;
  const auto s = sim::run_replications(slow, 150, 9, 1);
  const auto f = sim::run_replications(fast, 150, 9, 1);
  EXPECT_LT(f.ttsf.mean, s.ttsf.mean);
}

}  // namespace
