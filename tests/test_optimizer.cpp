#include "core/optimizer.h"

#include <gtest/gtest.h>

namespace {

using namespace midas;
using core::Params;

Params small_params() {
  Params p = Params::paper_defaults();
  p.n_init = 20;
  p.max_groups = 1;
  return p;
}

TEST(Optimizer, PaperGridMatchesFigureAxis) {
  const auto grid = core::paper_t_ids_grid();
  ASSERT_EQ(grid.size(), 9u);
  EXPECT_DOUBLE_EQ(grid.front(), 5.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1200.0);
}

TEST(Optimizer, SweepEvaluatesEveryPoint) {
  const std::vector<double> grid{30, 120, 480};
  const auto sweep = core::sweep_t_ids(small_params(), grid);
  ASSERT_EQ(sweep.points.size(), 3u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(sweep.points[i].t_ids, grid[i]);
    EXPECT_GT(sweep.points[i].eval.mttsf, 0.0);
  }
}

TEST(Optimizer, ArgmaxAndArgminAreConsistent) {
  const std::vector<double> grid{15, 60, 240, 1200};
  const auto sweep = core::sweep_t_ids(small_params(), grid);
  const auto& best = sweep.best_mttsf();
  for (const auto& pt : sweep.points) {
    EXPECT_LE(pt.eval.mttsf, best.eval.mttsf);
  }
  const auto& cheapest = sweep.best_ctotal();
  for (const auto& pt : sweep.points) {
    EXPECT_GE(pt.eval.ctotal, cheapest.eval.ctotal);
  }
}

TEST(Optimizer, EmptySweepThrows) {
  core::SweepResult empty;
  EXPECT_THROW((void)empty.argmax_mttsf(), std::logic_error);
}

TEST(Optimizer, MttsfIsUnimodalOnTheDefaultModel) {
  // The paper's central observation: MTTSF rises to an optimum then
  // falls.  Verify single-peak structure on a dense grid.
  const std::vector<double> grid{5, 15, 30, 60, 120, 240, 480, 1200};
  const auto sweep = core::sweep_t_ids(small_params(), grid);
  const auto peak = sweep.argmax_mttsf();
  for (std::size_t i = 0; i + 1 < sweep.points.size(); ++i) {
    if (i < peak) {
      EXPECT_LT(sweep.points[i].eval.mttsf, sweep.points[i + 1].eval.mttsf)
          << "rising flank at " << grid[i];
    } else {
      EXPECT_GT(sweep.points[i].eval.mttsf, sweep.points[i + 1].eval.mttsf)
          << "falling flank at " << grid[i];
    }
  }
}

TEST(Optimizer, UnconstrainedPolicyPicksTheGlobalMttsfMax) {
  const std::vector<double> grid{30, 120, 480};
  const auto choice = core::optimize_policy(small_params(), grid);
  EXPECT_TRUE(choice.feasible);
  // Must beat or match every (shape, TIDS) combination.
  for (const auto shape : {ids::Shape::Logarithmic, ids::Shape::Linear,
                           ids::Shape::Polynomial}) {
    Params p = small_params();
    p.detection_shape = shape;
    const auto sweep = core::sweep_t_ids(p, grid);
    for (const auto& pt : sweep.points) {
      EXPECT_GE(choice.eval.mttsf, pt.eval.mttsf - 1e-6);
    }
  }
}

TEST(Optimizer, CostBudgetConstrainsTheChoice) {
  const std::vector<double> grid{30, 120, 480};
  const auto unconstrained = core::optimize_policy(small_params(), grid);
  // A budget tighter than the unconstrained optimum's cost must divert
  // the choice to a cheaper point (or report infeasible).
  const double budget = unconstrained.eval.ctotal * 0.999;
  const auto constrained =
      core::optimize_policy(small_params(), grid, budget);
  if (constrained.feasible) {
    EXPECT_LE(constrained.eval.ctotal, budget);
    EXPECT_LE(constrained.eval.mttsf, unconstrained.eval.mttsf + 1e-6);
  }
}

TEST(Optimizer, ImpossibleBudgetReportsInfeasible) {
  const std::vector<double> grid{60, 240};
  const auto choice = core::optimize_policy(small_params(), grid, 1.0);
  EXPECT_FALSE(choice.feasible);
  EXPECT_GT(choice.eval.ctotal, 1.0);  // the min-cost fallback
}

}  // namespace
