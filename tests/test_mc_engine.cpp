// Monte-Carlo engine: streaming summaries equal the stored-sample path,
// CI-targeted stopping allocates replications where the variance is,
// CRN substream sharing works as specified, and results are bitwise
// deterministic in the thread count.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/gcs_spn_model.h"
#include "sim/mc_engine.h"
#include "sim/rng.h"

namespace {

using namespace midas;
using sim::McOptions;
using sim::MonteCarloEngine;

core::Params small_params() {
  core::Params p = core::Params::paper_defaults();
  p.n_init = 15;
  p.max_groups = 1;
  p.lambda_c = 1.0 / 2000.0;
  p.t_ids = 60.0;
  return p;
}

std::vector<core::Params> small_grid() {
  std::vector<core::Params> pts;
  for (double t : {15.0, 240.0, 1200.0}) {
    core::Params p = small_params();
    p.t_ids = t;
    pts.push_back(std::move(p));
  }
  return pts;
}

TEST(McEngine, StreamingSummaryMatchesStoredSample) {
  McOptions o;
  o.rel_ci_target = 0.0;
  o.min_replications = 150;
  o.max_replications = 150;
  o.capture_trajectories = true;
  MonteCarloEngine engine(o);
  const auto r = engine.run_des(small_params());

  ASSERT_EQ(r.trajectories.size(), 150u);
  std::vector<double> ttsf;
  for (const auto& t : r.trajectories) ttsf.push_back(t.ttsf);
  const auto two_pass = sim::summarize(ttsf);
  EXPECT_NEAR(r.ttsf.mean, two_pass.mean, 1e-9 * two_pass.mean);
  EXPECT_NEAR(r.ttsf.variance, two_pass.variance,
              1e-9 * two_pass.variance);
  EXPECT_NEAR(r.ttsf.ci_half_width, two_pass.ci_half_width,
              1e-9 * two_pass.ci_half_width);
}

TEST(McEngine, CaptureIsOptIn) {
  McOptions o;
  o.rel_ci_target = 0.0;
  o.min_replications = 20;
  o.max_replications = 20;
  MonteCarloEngine engine(o);
  const auto r = engine.run_des(small_params());
  EXPECT_TRUE(r.trajectories.empty());
  EXPECT_EQ(r.replications, 20u);
  EXPECT_GT(r.ttsf.mean, 0.0);
}

TEST(McEngine, ReplicationReproducibleInIsolation) {
  McOptions o;
  o.rel_ci_target = 0.0;
  o.min_replications = 24;
  o.max_replications = 24;
  o.capture_trajectories = true;
  MonteCarloEngine engine(o);
  const auto params = small_params();
  const auto r = engine.run_des(params);

  // Any captured replication can be reproduced standalone from its
  // published seed.
  const sim::DesContext context(params);
  for (std::size_t rep : {0u, 7u, 23u}) {
    const auto solo =
        sim::simulate_group(params, engine.replication_seed(0, rep), context);
    EXPECT_DOUBLE_EQ(solo.ttsf, r.trajectories[rep].ttsf) << rep;
    EXPECT_DOUBLE_EQ(solo.accumulated_cost,
                     r.trajectories[rep].accumulated_cost);
    EXPECT_EQ(solo.compromises, r.trajectories[rep].compromises);
  }
}

TEST(McEngine, SharedContextMatchesFreshContext) {
  // The memoised per-point context must not change a single digit vs
  // the seed-era fresh-table path.
  const auto params = small_params();
  const sim::DesContext shared(params);
  const sim::DesContext fresh = sim::DesContext::fresh(params);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto a = sim::simulate_group(params, seed, shared);
    const auto b = sim::simulate_group(params, seed, fresh);
    EXPECT_DOUBLE_EQ(a.ttsf, b.ttsf) << seed;
    EXPECT_DOUBLE_EQ(a.accumulated_cost, b.accumulated_cost) << seed;
  }
}

TEST(McEngine, AdaptiveStoppingHitsTargetAndAdaptsToVariance) {
  McOptions o;
  o.rel_ci_target = 0.10;
  o.min_replications = 48;
  o.block = 48;
  MonteCarloEngine engine(o);
  const auto pts = small_grid();
  const auto results = engine.run_des(pts);

  for (const auto& r : results) {
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.ttsf.ci_half_width, o.rel_ci_target * r.ttsf.mean);
    EXPECT_LE(r.cost_rate.ci_half_width,
              o.rel_ci_target * r.cost_rate.mean);
  }
  // The high-variance point (t_ids = 1200, cv ~ 0.8) must need more
  // replications than the low-variance one (t_ids = 15, cv ~ 0.28).
  EXPECT_GT(results.back().replications, results.front().replications);
}

TEST(McEngine, SingleReplicationNeverCountsAsConverged) {
  // Regression: an n = 1 summary has a degenerate zero-width CI, which
  // must not satisfy the adaptive target.
  McOptions o;
  o.rel_ci_target = 0.25;
  o.min_replications = 1;
  o.block = 1;
  o.max_replications = 4000;
  MonteCarloEngine engine(o);
  const auto r = engine.run_des(small_params());
  EXPECT_GE(r.replications, 2u);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.ttsf.ci_half_width, 0.0);
}

TEST(McEngine, FixedBudgetRunsExactlyMinReplications) {
  McOptions o;
  o.rel_ci_target = 0.0;
  o.min_replications = 100;
  o.max_replications = 5000;
  MonteCarloEngine engine(o);
  const auto r = engine.run_des(small_params());
  EXPECT_EQ(r.replications, 100u);
  EXPECT_TRUE(r.converged);
}

TEST(McEngine, DeterministicAcrossThreadCounts) {
  const auto pts = small_grid();
  auto run = [&](std::size_t threads) {
    McOptions o;
    o.rel_ci_target = 0.15;
    o.min_replications = 32;
    o.block = 16;
    o.threads = threads;
    MonteCarloEngine engine(o);
    return engine.run_des(pts);
  };
  const auto a = run(1);
  const auto b = run(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise equality: seeds depend only on (point, replication) and
    // block partials merge in schedule order.
    EXPECT_EQ(a[i].replications, b[i].replications) << i;
    EXPECT_EQ(a[i].ttsf.mean, b[i].ttsf.mean) << i;
    EXPECT_EQ(a[i].ttsf.ci_half_width, b[i].ttsf.ci_half_width) << i;
    EXPECT_EQ(a[i].cost_rate.mean, b[i].cost_rate.mean) << i;
    EXPECT_EQ(a[i].p_failure_c1, b[i].p_failure_c1) << i;
  }
}

TEST(McEngine, CrnSharesSubstreamsAcrossPoints) {
  McOptions crn;
  crn.crn = true;
  MonteCarloEngine with_crn(crn);
  EXPECT_EQ(with_crn.replication_seed(0, 17), with_crn.replication_seed(3, 17));

  McOptions ind = crn;
  ind.crn = false;
  MonteCarloEngine without(ind);
  EXPECT_NE(without.replication_seed(0, 17), without.replication_seed(3, 17));
  // Independent layout must not collide with the CRN layout either.
  EXPECT_NE(without.replication_seed(0, 17), with_crn.replication_seed(0, 17));
}

TEST(McEngine, CrnReducesContrastVariance) {
  // Two nearby TIDS points: the paired difference of CRN replications
  // must have lower variance than with independent substreams.
  std::vector<core::Params> pts;
  for (double t : {60.0, 120.0}) {
    core::Params p = small_params();
    p.t_ids = t;
    pts.push_back(std::move(p));
  }
  auto contrast_var = [&](bool use_crn) {
    McOptions o;
    o.rel_ci_target = 0.0;
    o.min_replications = 300;
    o.max_replications = 300;
    o.crn = use_crn;
    o.capture_trajectories = true;
    MonteCarloEngine engine(o);
    const auto r = engine.run_des(pts);
    sim::Welford w;
    for (std::size_t i = 0; i < 300; ++i) {
      w.push(r[0].trajectories[i].ttsf - r[1].trajectories[i].ttsf);
    }
    return w.variance();
  };
  EXPECT_LT(contrast_var(true), contrast_var(false));
}

TEST(McEngine, AntitheticPairsReproducibleFromSeedAndFlag) {
  McOptions o;
  o.rel_ci_target = 0.0;
  o.min_replications = 16;  // pairs
  o.max_replications = 16;
  o.antithetic = true;
  o.capture_trajectories = true;
  MonteCarloEngine engine(o);
  const auto params = small_params();
  const auto r = engine.run_des(params);

  // 16 pairs -> 32 trajectories; Summary counts pairs.
  EXPECT_EQ(r.replications, 32u);
  EXPECT_EQ(r.ttsf.n, 16u);
  ASSERT_EQ(r.trajectories.size(), 32u);

  // Captured order is (plain, flipped) per pair, both members over the
  // pair's published seed.
  const sim::DesContext context(params);
  for (std::size_t pair : {0u, 5u, 15u}) {
    sim::UniformStream plain(engine.replication_seed(0, pair), false);
    sim::UniformStream flipped(engine.replication_seed(0, pair), true);
    const auto a = sim::simulate_group(params, plain, context);
    const auto b = sim::simulate_group(params, flipped, context);
    EXPECT_DOUBLE_EQ(a.ttsf, r.trajectories[2 * pair].ttsf) << pair;
    EXPECT_DOUBLE_EQ(b.ttsf, r.trajectories[2 * pair + 1].ttsf) << pair;
    EXPECT_NE(a.ttsf, b.ttsf) << pair;
  }
}

TEST(McEngine, AntitheticMeanMatchesPlainWithinCi) {
  auto run = [&](bool antithetic) {
    McOptions o;
    o.rel_ci_target = 0.0;
    o.min_replications = antithetic ? 200 : 400;  // equal trajectories
    o.max_replications = o.min_replications;
    o.antithetic = antithetic;
    MonteCarloEngine engine(o);
    return engine.run_des(small_params());
  };
  const auto plain = run(false);
  const auto anti = run(true);
  EXPECT_EQ(plain.replications, anti.replications);
  // Antithetic pairing leaves the estimator unbiased: the two runs are
  // estimates of the same mean and must agree within their joint CI.
  EXPECT_NEAR(anti.ttsf.mean, plain.ttsf.mean,
              plain.ttsf.ci_half_width + anti.ttsf.ci_half_width);
  EXPECT_NEAR(anti.cost_rate.mean, plain.cost_rate.mean,
              plain.cost_rate.ci_half_width +
                  anti.cost_rate.ci_half_width);
}

TEST(McEngine, AntitheticShrinksEstimatorVariance) {
  // At the fast-detection point the holding-time draws dominate TTSF
  // and the measured within-pair correlation is ~-0.4, so the
  // pair-average estimator must beat the plain one at equal trajectory
  // budget (deterministic under the fixed seed).
  core::Params p = small_params();
  p.t_ids = 15.0;
  const std::size_t pairs = 400;
  auto run = [&](bool antithetic) {
    McOptions o;
    o.rel_ci_target = 0.0;
    o.min_replications = antithetic ? pairs : 2 * pairs;
    o.max_replications = o.min_replications;
    o.antithetic = antithetic;
    o.capture_trajectories = true;
    MonteCarloEngine engine(o);
    return engine.run_des(p);
  };
  const auto plain = run(false);
  const auto anti = run(true);

  sim::Welford wp, wa;
  for (const auto& t : plain.trajectories) wp.push(t.ttsf);
  for (std::size_t k = 0; k + 1 < anti.trajectories.size(); k += 2) {
    wa.push(0.5 *
            (anti.trajectories[k].ttsf + anti.trajectories[k + 1].ttsf));
  }
  const double var_plain = wp.variance() / (2.0 * pairs);
  const double var_anti = wa.variance() / static_cast<double>(pairs);
  EXPECT_LT(var_anti, var_plain);
}

TEST(McEngine, AntitheticDeterministicAcrossThreadCounts) {
  const auto pts = small_grid();
  auto run = [&](std::size_t threads) {
    McOptions o;
    o.rel_ci_target = 0.15;
    o.min_replications = 32;
    o.block = 16;
    o.threads = threads;
    o.antithetic = true;
    MonteCarloEngine engine(o);
    return engine.run_des(pts);
  };
  const auto a = run(1);
  const auto b = run(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].replications, b[i].replications) << i;
    EXPECT_EQ(a[i].ttsf.mean, b[i].ttsf.mean) << i;
    EXPECT_EQ(a[i].ttsf.ci_half_width, b[i].ttsf.ci_half_width) << i;
    EXPECT_EQ(a[i].cost_rate.mean, b[i].cost_rate.mean) << i;
    EXPECT_EQ(a[i].p_failure_c1, b[i].p_failure_c1) << i;
  }
}

TEST(McEngine, AntitheticProtocolPairsShareSeedsAndCountTrajectories) {
  McOptions o;
  o.rel_ci_target = 0.0;
  o.min_replications = 4;  // pairs
  o.max_replications = 4;
  o.block = 2;
  o.antithetic = true;
  o.capture_trajectories = true;
  MonteCarloEngine engine(o);
  const auto base = sim::ProtocolSimParams::small_defaults();
  const std::vector<sim::ProtocolSimParams> pts{base};
  const auto r = engine.run_protocol(pts);
  ASSERT_EQ(r.size(), 1u);
  // 4 pairs = 8 trajectories; Welford samples count pairs.
  EXPECT_EQ(r[0].replications, 8u);
  EXPECT_EQ(r[0].ttsf.n, 4u);
  ASSERT_EQ(r[0].trajectories.size(), 8u);
  // Captured order is (plain, flipped) per pair: each member is the
  // seed-addressed single-trajectory run with the matching flag.
  for (std::size_t pair = 0; pair < 4; ++pair) {
    const auto seed = engine.replication_seed(0, pair);
    const auto plain = sim::run_protocol_sim(base, seed, false);
    const auto flipped = sim::run_protocol_sim(base, seed, true);
    EXPECT_DOUBLE_EQ(r[0].trajectories[2 * pair].ttsf, plain.ttsf) << pair;
    EXPECT_DOUBLE_EQ(r[0].trajectories[2 * pair + 1].ttsf, flipped.ttsf)
        << pair;
    // The flipped member is a genuinely different trajectory...
    EXPECT_NE(plain.ttsf, flipped.ttsf) << pair;
  }
}

TEST(McEngine, AntitheticProtocolDeterministicAcrossThreadCounts) {
  auto base = sim::ProtocolSimParams::small_defaults();
  std::vector<sim::ProtocolSimParams> pts{base, base};
  pts[1].model.t_ids = 600.0;
  auto run = [&](std::size_t threads) {
    McOptions o;
    o.rel_ci_target = 0.0;
    o.min_replications = 3;
    o.block = 2;
    o.threads = threads;
    o.antithetic = true;
    MonteCarloEngine engine(o);
    return engine.run_protocol(pts);
  };
  const auto a = run(1);
  const auto b = run(3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].replications, b[i].replications) << i;
    EXPECT_EQ(a[i].ttsf.mean, b[i].ttsf.mean) << i;
    EXPECT_EQ(a[i].cost_rate.mean, b[i].cost_rate.mean) << i;
    EXPECT_TRUE(a[i].keys_always_agreed) << i;
  }
}

TEST(McEngine, SurvivalHorizonsEstimateReliability) {
  McOptions o;
  o.rel_ci_target = 0.0;
  o.min_replications = 400;
  o.max_replications = 400;
  const auto params = small_params();
  // Bracket the MTTSF so the survival curve actually decays.
  o.survival_horizons = {0.0, 1.0e4, 5.0e4, 1.0e30};
  MonteCarloEngine engine(o);
  const auto r = engine.run_des(params);

  ASSERT_EQ(r.survival.size(), 4u);
  EXPECT_DOUBLE_EQ(r.survival[0].mean, 1.0);   // everyone survives t=0
  EXPECT_DOUBLE_EQ(r.survival[3].mean, 0.0);   // nobody survives forever
  // Wilson intervals: even the degenerate proportions keep real width.
  EXPECT_GT(r.survival[0].ci_half_width, 0.0);
  EXPECT_GT(r.survival[3].ci_half_width, 0.0);
  for (std::size_t h = 1; h < r.survival.size(); ++h) {
    EXPECT_LE(r.survival[h].mean, r.survival[h - 1].mean) << h;
  }
  // Cross-check against the analytic transient solution.
  const auto analytic = core::GcsSpnModel(params).reliability_at(
      std::vector<double>{1.0e4, 5.0e4});
  EXPECT_NEAR(r.survival[1].mean, analytic[0],
              2.0 * r.survival[1].ci_half_width + 1e-12);
  EXPECT_NEAR(r.survival[2].mean, analytic[1],
              2.0 * r.survival[2].ci_half_width + 1e-12);
}

TEST(McEngine, ProtocolGridDeterministicAcrossThreadCounts) {
  auto base = sim::ProtocolSimParams::small_defaults();
  std::vector<sim::ProtocolSimParams> pts{base, base};
  pts[1].model.t_ids = 600.0;
  auto run = [&](std::size_t threads) {
    McOptions o;
    o.rel_ci_target = 0.0;
    o.min_replications = 4;
    o.block = 2;
    o.threads = threads;
    MonteCarloEngine engine(o);
    return engine.run_protocol(pts);
  };
  const auto a = run(1);
  const auto b = run(3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ttsf.mean, b[i].ttsf.mean) << i;
    EXPECT_EQ(a[i].cost_rate.mean, b[i].cost_rate.mean) << i;
    EXPECT_TRUE(a[i].keys_always_agreed);
  }
}

TEST(McEngine, RunReplicationsWrapperIsStreaming) {
  const auto params = small_params();
  const auto summary = sim::run_replications(params, 60, 0xABC, 1);
  EXPECT_TRUE(summary.trajectories.empty());
  EXPECT_EQ(summary.ttsf.n, 60u);

  // Zero replications stays the seed-era empty-summary edge case.
  const auto empty = sim::run_replications(params, 0, 0xABC, 1);
  EXPECT_EQ(empty.ttsf.n, 0u);
  EXPECT_DOUBLE_EQ(empty.p_failure_c1, 0.0);
  EXPECT_TRUE(empty.trajectories.empty());

  const auto captured = sim::run_replications(params, 60, 0xABC, 1, true);
  ASSERT_EQ(captured.trajectories.size(), 60u);
  EXPECT_EQ(captured.ttsf.mean, summary.ttsf.mean);
}

TEST(McEngine, EmptyGridAndBadOptions) {
  MonteCarloEngine engine{McOptions{}};
  EXPECT_TRUE(engine.run_des(std::span<const core::Params>{}).empty());

  McOptions bad;
  bad.block = 0;
  EXPECT_THROW(MonteCarloEngine{bad}, std::invalid_argument);
  McOptions bad2;
  bad2.min_replications = 0;
  EXPECT_THROW(MonteCarloEngine{bad2}, std::invalid_argument);
}

}  // namespace
