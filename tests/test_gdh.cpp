// GDH.2 contributory key agreement: key agreement across all members,
// forward/backward secrecy across membership events, and protocol
// traffic accounting cross-checked against the analytic rekey costs.
#include "crypto/gdh.h"

#include <gtest/gtest.h>

#include "crypto/rekey_cost.h"

namespace {

using namespace midas::crypto;

GdhSession make_session(std::size_t n, std::uint64_t seed = 99) {
  GdhSession s(DhGroup::demo_group(), seed);
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < n; ++i) ids.push_back(i + 1);
  s.establish(ids);
  return s;
}

class GdhGroupSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GdhGroupSizes, AllMembersComputeTheSameKey) {
  const auto s = make_session(GetParam());
  EXPECT_TRUE(s.keys_agree());
  EXPECT_NE(s.group_key(), 0u);
  EXPECT_EQ(s.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, GdhGroupSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST(Gdh, KeyIsTheFullProductExponent) {
  // For a tiny group, verify K = g^(x1·x2·x3) directly.  The member
  // secrets are private to the session, so check indirectly: every
  // member key equals every other and differs from g.
  const auto s = make_session(3);
  EXPECT_TRUE(s.keys_agree());
  EXPECT_NE(s.group_key(), s.group().g);
}

TEST(Gdh, JoinChangesKeyAndPreservesAgreement) {
  auto s = make_session(4);
  const auto old_key = s.group_key();
  s.join(42);
  EXPECT_TRUE(s.keys_agree());
  EXPECT_TRUE(s.has_member(42));
  EXPECT_EQ(s.size(), 5u);
  // Backward secrecy: the new view's key differs from the old one.
  EXPECT_NE(s.group_key(), old_key);
  EXPECT_EQ(s.member_key(42), s.group_key());
}

TEST(Gdh, LeaveChangesKeyAndExcludesTheDeparted) {
  auto s = make_session(5);
  const auto old_key = s.group_key();
  const auto departed_key = s.member_key(3);
  s.leave(3);
  EXPECT_TRUE(s.keys_agree());
  EXPECT_FALSE(s.has_member(3));
  EXPECT_EQ(s.size(), 4u);
  // Forward secrecy: the new key differs from anything the departed
  // member computed.
  EXPECT_NE(s.group_key(), old_key);
  EXPECT_NE(s.group_key(), departed_key);
}

TEST(Gdh, EvictionSequenceKeepsSurvivorsInAgreement) {
  auto s = make_session(6);
  s.leave(1);
  s.leave(4);
  s.leave(6);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.keys_agree());
}

TEST(Gdh, MergeAbsorbsOtherMembers) {
  auto s = make_session(3);
  const auto old_key = s.group_key();
  s.merge({10, 11, 12});
  EXPECT_EQ(s.size(), 6u);
  EXPECT_TRUE(s.keys_agree());
  EXPECT_NE(s.group_key(), old_key);
}

TEST(Gdh, PartitionYieldsTwoIndependentGroups) {
  auto s = make_session(6);
  auto other = s.partition({5, 6});
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(other.size(), 2u);
  EXPECT_TRUE(s.keys_agree());
  EXPECT_TRUE(other.keys_agree());
  // Disjoint membership, different keys.
  EXPECT_FALSE(s.has_member(5));
  EXPECT_TRUE(other.has_member(5));
  EXPECT_NE(s.group_key(), other.group_key());
}

TEST(Gdh, MembershipErrorsThrow) {
  auto s = make_session(3);
  EXPECT_THROW(s.join(2), std::invalid_argument);     // duplicate
  EXPECT_THROW(s.leave(99), std::invalid_argument);   // absent
  EXPECT_THROW(s.merge({1}), std::invalid_argument);  // duplicate
  EXPECT_THROW((void)s.partition({99}), std::invalid_argument);
}

TEST(Gdh, EstablishTrafficMatchesAnalyticFormula) {
  // The cost model's full_agreement_cost assumes the upflow ladder
  // Σ_{i=1..n-1}(i+1) + broadcast (n−1).  The protocol implementation
  // must charge exactly that many group elements.
  for (std::size_t n : {2u, 3u, 5u, 8u, 13u}) {
    auto s = make_session(n);
    const double nn = static_cast<double>(n);
    const double expected_units = (nn * nn + nn - 2.0) / 2.0 + (nn - 1.0);
    EXPECT_DOUBLE_EQ(static_cast<double>(s.traffic().units), expected_units)
        << "n=" << n;
    EXPECT_EQ(s.traffic().messages, n);  // n−1 upflow + 1 broadcast
  }
}

TEST(Gdh, TrafficCounterResets) {
  auto s = make_session(4);
  EXPECT_GT(s.traffic().messages, 0u);
  s.reset_traffic();
  EXPECT_EQ(s.traffic().messages, 0u);
  EXPECT_EQ(s.traffic().units, 0u);
}

TEST(Gdh, DeterministicUnderSeed) {
  const auto a = make_session(5, 1234);
  const auto b = make_session(5, 1234);
  EXPECT_EQ(a.group_key(), b.group_key());
  const auto c = make_session(5, 4321);
  EXPECT_NE(a.group_key(), c.group_key());
}

TEST(RekeyCost, FormulasBehaveAtEdges) {
  const RekeyCostParams p{1024.0, 3.0, 1e6};
  EXPECT_DOUBLE_EQ(full_agreement_cost(0, p).hop_bits, 0.0);
  EXPECT_DOUBLE_EQ(full_agreement_cost(1, p).hop_bits, 0.0);
  EXPECT_DOUBLE_EQ(leave_cost(0, p).hop_bits, 0.0);
  EXPECT_GT(join_cost(2, p).hop_bits, 0.0);
}

TEST(RekeyCost, MonotoneInGroupSize) {
  const RekeyCostParams p{1024.0, 3.0, 1e6};
  double prev = 0.0;
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u}) {
    const auto c = full_agreement_cost(n, p);
    EXPECT_GT(c.hop_bits, prev);
    prev = c.hop_bits;
  }
}

TEST(RekeyCost, TcmIsBitsOverBandwidth) {
  const RekeyCostParams p{1000.0, 2.0, 1e6};
  const auto c = join_cost(10, p);
  EXPECT_NEAR(c.seconds, c.hop_bits / 1e6, 1e-15);
  // join(10): (10 + 9) elements × 1000 bits × 2 hops.
  EXPECT_DOUBLE_EQ(c.hop_bits, 19.0 * 1000.0 * 2.0);
}

}  // namespace
