// Backward-equation survival integrator: validated against closed forms
// and against uniformisation (two completely different numerical paths
// to the same quantity).
#include "spn/reliability_ode.h"

#include <cmath>

#include <gtest/gtest.h>

#include "spn/transient.h"

namespace {

using namespace midas::spn;

TEST(ReliabilityOde, TwoStateExponentialSurvival) {
  const double lambda = 0.35;
  PetriNet net;
  const auto p = net.add_place("P", 1);
  net.transition("fail").input(p).rate(lambda).add();
  const auto g = explore(net);
  const ReliabilityOde ode(g);

  const std::vector<double> times{0.0, 0.5, 1.0, 3.0, 10.0};
  const auto r = ode.survival_at(times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(r[i], std::exp(-lambda * times[i]), 2e-4)
        << "t=" << times[i];
  }
}

TEST(ReliabilityOde, ErlangSurvivalMatchesClosedForm) {
  const int k = 4;
  const double lambda = 2.0;
  PetriNet net;
  const auto p = net.add_place("Stages", k);
  net.transition("stage").input(p).rate(lambda).add();
  const auto g = explore(net);
  const ReliabilityOde ode(g);

  const std::vector<double> times{0.1, 0.5, 1.0, 2.0, 4.0};
  const auto r = ode.survival_at(times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    // Erlang(k, λ) survival = Σ_{j<k} e^{-λt}(λt)^j / j!.
    double surv = 0.0;
    double term = 1.0;
    for (int j = 0; j < k; ++j) {
      if (j > 0) term *= lambda * times[i] / j;
      surv += std::exp(-lambda * times[i]) * term;
    }
    EXPECT_NEAR(r[i], surv, 3e-4) << "t=" << times[i];
  }
}

TEST(ReliabilityOde, AgreesWithUniformisation) {
  // Death chain with state-dependent rates: no simple closed form, so
  // cross-check the two independent transient solvers.
  PetriNet net;
  const auto a = net.add_place("A", 6);
  net.transition("die")
      .input(a)
      .rate([a](const Marking& m) { return 0.4 * m[a]; })
      .add();
  const auto g = explore(net);
  const ReliabilityOde ode(g);
  const TransientAnalyzer uni(g);

  const std::vector<double> times{0.2, 1.0, 2.5, 6.0};
  const auto r = ode.survival_at(times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(r[i], 1.0 - uni.absorbed_probability_at(times[i]), 5e-4)
        << "t=" << times[i];
  }
}

TEST(ReliabilityOde, StiffSystemStaysStableAndMonotone) {
  // Rates spanning 6 orders of magnitude: uniformisation would need
  // ~1e7 iterations for the final time point; the implicit integrator
  // must stay monotone in [0, 1].
  PetriNet net;
  const auto fast = net.add_place("Fast", 1);
  const auto slow = net.add_place("Slow", 0);
  net.transition("relax").input(fast).output(slow).rate(1e4).add();
  net.transition("fail").input(slow).rate(1e-2).add();
  const auto g = explore(net);
  const ReliabilityOde ode(g);

  const std::vector<double> times{1e-4, 1e-2, 1.0, 50.0, 500.0};
  const auto r = ode.survival_at(times);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_GE(r[i], 0.0);
    EXPECT_LE(r[i], 1.0);
    if (i > 0) EXPECT_LE(r[i], r[i - 1] + 1e-12);
  }
  // Survival at 500 s ≈ exp(-0.01·500) once the fast mode has relaxed.
  EXPECT_NEAR(r.back(), std::exp(-5.0), 5e-3);
}

TEST(ReliabilityOde, BackwardEulerOptionIsMoreDamped) {
  PetriNet net;
  const auto p = net.add_place("P", 1);
  net.transition("fail").input(p).rate(1.0).add();
  const auto g = explore(net);
  const ReliabilityOde ode(g);

  ReliabilityOdeOptions be;
  be.theta = 1.0;
  const std::vector<double> times{1.0};
  const auto r_cn = ode.survival_at(times);
  const auto r_be = ode.survival_at(times, be);
  // Both approximate e^{-1}; CN should be closer.
  EXPECT_NEAR(r_cn[0], std::exp(-1.0), 1e-4);
  EXPECT_NEAR(r_be[0], std::exp(-1.0), 1e-2);
  EXPECT_LE(std::abs(r_cn[0] - std::exp(-1.0)),
            std::abs(r_be[0] - std::exp(-1.0)));
}

TEST(ReliabilityOde, InputValidation) {
  PetriNet net;
  const auto p = net.add_place("P", 1);
  net.transition("fail").input(p).rate(1.0).add();
  const auto g = explore(net);
  const ReliabilityOde ode(g);

  const std::vector<double> bad{2.0, 1.0};
  EXPECT_THROW((void)ode.survival_at(bad), std::invalid_argument);
  const std::vector<double> neg{-1.0};
  EXPECT_THROW((void)ode.survival_at(neg), std::invalid_argument);
  ReliabilityOdeOptions opts;
  opts.theta = 0.3;
  const std::vector<double> ok{1.0};
  EXPECT_THROW((void)ode.survival_at(ok, opts), std::invalid_argument);
}

// --- propagate(): the adjoint forward integrator that phased missions
// chain across segment boundaries (core::MissionAnalyzer).

TEST(ReliabilityOde, PropagateSurvivalMatchesBackwardIntegrator) {
  // Same θ-grid, transposed operator: the forward weight sum Σw(t) and
  // the backward u_init(t) solve the same linear recurrence and must
  // agree to Gauss–Seidel tolerance.
  PetriNet net;
  const auto a = net.add_place("A", 6);
  net.transition("die")
      .input(a)
      .rate([a](const Marking& m) { return 0.4 * m[a]; })
      .add();
  const auto g = explore(net);
  const ReliabilityOde ode(g);

  const std::vector<double> times{0.5, 1.5, 3.0, 6.0};
  const auto backward = ode.survival_at(times);
  const auto fwd = ode.propagate({}, times.back(), {}, times);
  ASSERT_EQ(fwd.survival_at.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(fwd.survival_at[i], backward[i], 1e-9)
        << "t=" << times[i];
  }
  // The boundary weights are the surviving distribution: their sum is
  // the survival at the horizon.
  double mass = 0.0;
  for (const double w : fwd.weights) mass += w;
  EXPECT_NEAR(mass, backward.back(), 1e-9);
}

TEST(ReliabilityOde, PropagateAgreesWithUniformisationShortHorizon) {
  // Cross-check against the completely independent uniformisation
  // solver on a short, non-stiff horizon (where both are sharp).
  PetriNet net;
  const auto p = net.add_place("Stages", 3);
  net.transition("stage").input(p).rate(1.5).add();
  const auto g = explore(net);
  const ReliabilityOde ode(g);
  const TransientAnalyzer uni(g);

  const std::vector<double> times{0.25, 0.75, 1.5, 3.0};
  const auto fwd = ode.propagate({}, times.back(), {}, times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(fwd.survival_at[i],
                1.0 - uni.absorbed_probability_at(times[i]), 1e-4)
        << "t=" << times[i];
  }
}

TEST(ReliabilityOde, UniformStepChainingReproducesUnsplitRun) {
  // The phased-mission contract: splitting a horizon at an exact
  // multiple of the uniform step and re-seeding from the boundary
  // weights reproduces the unsplit integration essentially exactly.
  PetriNet net;
  const auto a = net.add_place("A", 5);
  net.transition("die")
      .input(a)
      .rate([a](const Marking& m) { return 0.3 * m[a]; })
      .add();
  const auto g = explore(net);
  const ReliabilityOde ode(g);

  ReliabilityOdeOptions opts;
  opts.uniform_step_s = 0.1;
  const auto whole = ode.propagate({}, 4.0, {}, {}, opts);
  const auto first = ode.propagate({}, 2.0, {}, {}, opts);
  const auto second = ode.propagate(first.weights, 2.0, {}, {}, opts);

  ASSERT_EQ(whole.weights.size(), second.weights.size());
  for (std::size_t s = 0; s < whole.weights.size(); ++s) {
    EXPECT_NEAR(whole.weights[s], second.weights[s],
                1e-12 * std::max(1.0, std::abs(whole.weights[s])))
        << "state " << s;
  }
  EXPECT_NEAR(whole.survival_integral,
              first.survival_integral + second.survival_integral,
              1e-12 * whole.survival_integral);
}

TEST(ReliabilityOde, PropagateAccumulatesFunctionalIntegrals) {
  // One state, rate λ: with f ≡ c on the transient state,
  // ∫ f·w dt over [0, T] = c·(1 − e^{-λT})/λ.
  const double lambda = 0.8, c = 3.0, horizon = 2.0;
  PetriNet net;
  const auto p = net.add_place("P", 1);
  net.transition("fail").input(p).rate(lambda).add();
  const auto g = explore(net);
  const ReliabilityOde ode(g);

  std::vector<std::vector<double>> f(1);
  f[0].assign(g.num_states(), 0.0);
  const auto absorbing = g.absorbing_mask();
  for (std::size_t s = 0; s < g.num_states(); ++s) {
    if (!absorbing[s]) f[0][s] = c;
  }
  const auto res = ode.propagate({}, horizon, f, {});
  ASSERT_EQ(res.functional_integrals.size(), 1u);
  const double expected =
      c * (1.0 - std::exp(-lambda * horizon)) / lambda;
  EXPECT_NEAR(res.functional_integrals[0], expected, 1e-3 * expected);
  EXPECT_NEAR(res.survival_integral, expected / c,
              1e-3 * expected / c);
}

TEST(ReliabilityOde, EmptyTimesAndZeroHorizon) {
  PetriNet net;
  const auto p = net.add_place("P", 1);
  net.transition("fail").input(p).rate(1.0).add();
  const auto g = explore(net);
  const ReliabilityOde ode(g);
  EXPECT_TRUE(ode.survival_at({}).empty());
  const std::vector<double> zero{0.0};
  EXPECT_DOUBLE_EQ(ode.survival_at(zero)[0], 1.0);
}

}  // namespace
