// LeaseTable state machine (svc/lease.h) — pure, clock-injected, no
// threads.  The centrepiece is ONE table-driven walk through the whole
// failure lifecycle: dispatch → heartbeat death → reassignment →
// duplicate-verified-dropped → quarantine after max attempts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/shard.h"
#include "svc/lease.h"

namespace {

using midas::core::ShardRange;
using midas::svc::Assignment;
using midas::svc::CompletionOutcome;
using midas::svc::LeaseOptions;
using midas::svc::LeaseTable;
using midas::svc::ShardInfo;
using midas::svc::ShardState;
using midas::svc::TickReport;

LeaseOptions fast_options() {
  LeaseOptions options;
  options.heartbeat_timeout_s = 5.0;
  options.lease_deadline_s = 100.0;  // heartbeats die first in this test
  options.backoff_base_s = 1.0;
  options.backoff_cap_s = 8.0;
  options.backoff_jitter = 0.0;  // exact delays for the table
  options.max_attempts = 2;
  options.split_on_reassign = false;  // one shard stays one shard
  return options;
}

TEST(LeaseTable, TableDrivenLifecycle) {
  // One shard, two workers.  Worker A keeps dying; the shard survives
  // exactly options.max_attempts (=2) dispatches, then is quarantined.
  // A duplicate completion of a DIFFERENT, healthy shard is verified
  // byte-identical and dropped along the way.
  LeaseTable table(fast_options());
  const ShardRange ranges[] = {{0, 4}, {4, 8}};
  const auto ids = table.add_shards("req", ranges);
  ASSERT_EQ(ids.size(), 2u);
  const std::uint64_t doomed = ids[0];
  const std::uint64_t healthy = ids[1];

  struct Step {
    double t;
    const char* what;
    std::function<void(LeaseTable&, double)> act;
  };
  const auto expect_state = [&](const LeaseTable& lt, std::uint64_t id,
                                ShardState want, const char* when) {
    const ShardInfo* shard = lt.shard(id);
    ASSERT_NE(shard, nullptr) << when;
    EXPECT_EQ(shard->state, want) << when;
  };

  const std::vector<Step> script = {
      {0.0, "both workers join, both shards dispatched",
       [&](LeaseTable& lt, double t) {
         lt.worker_join("worker-a", t);
         lt.worker_join("worker-b", t);
         const auto leases = lt.dispatch(t);
         ASSERT_EQ(leases.size(), 2u);
         // Deterministic matching: shards by id, workers by name.
         EXPECT_EQ(leases[0].shard, doomed);
         EXPECT_EQ(leases[0].worker, "worker-a");
         EXPECT_EQ(leases[0].attempt, 1u);
         EXPECT_EQ(leases[1].shard, healthy);
         EXPECT_EQ(leases[1].worker, "worker-b");
         expect_state(lt, doomed, ShardState::Leased, "after dispatch");
       }},
      {4.0, "worker-b completes; worker-a heartbeats and stays alive",
       [&](LeaseTable& lt, double t) {
         lt.heartbeat("worker-a", t);
         EXPECT_EQ(lt.complete(healthy, "worker-b", "payload-B", t),
                   CompletionOutcome::Accepted);
         expect_state(lt, healthy, ShardState::Done, "after complete");
         EXPECT_TRUE(lt.tick(t).empty());
       }},
      {4.5, "a re-delivered identical result is verified and dropped",
       [&](LeaseTable& lt, double t) {
         EXPECT_EQ(lt.complete(healthy, "worker-b", "payload-B", t),
                   CompletionOutcome::DuplicateVerified);
         EXPECT_EQ(lt.counters().duplicates_verified, 1u);
       }},
      {10.0, "worker-a's heartbeat times out: death + reassignment",
       [&](LeaseTable& lt, double t) {
         lt.heartbeat("worker-b", t);  // b is alive; a has been silent
         const TickReport report = lt.tick(t);
         ASSERT_EQ(report.dead_workers.size(), 1u);
         EXPECT_EQ(report.dead_workers[0], "worker-a");
         ASSERT_EQ(report.reassigned.size(), 1u);
         EXPECT_EQ(report.reassigned[0], doomed);
         expect_state(lt, doomed, ShardState::Pending, "after death");
         EXPECT_EQ(lt.counters().worker_deaths, 1u);
         EXPECT_EQ(lt.counters().reassignments, 1u);
         // Backoff gate: attempt 1 → base·2⁰ = 1 s, no sooner.
         EXPECT_TRUE(lt.dispatch(t).empty());
         EXPECT_DOUBLE_EQ(lt.next_event_time(t), t + 1.0);
       }},
      {11.0, "after backoff the survivor picks the orphan up",
       [&](LeaseTable& lt, double t) {
         const auto leases = lt.dispatch(t);
         ASSERT_EQ(leases.size(), 1u);
         EXPECT_EQ(leases[0].shard, doomed);
         EXPECT_EQ(leases[0].worker, "worker-b");
         EXPECT_EQ(leases[0].attempt, 2u);
       }},
      {12.0, "the survivor dies too — attempts exhausted: quarantine",
       [&](LeaseTable& lt, double t) {
         const TickReport report = lt.worker_leave("worker-b", t);
         ASSERT_EQ(report.quarantined.size(), 1u);
         EXPECT_EQ(report.quarantined[0], doomed);
         expect_state(lt, doomed, ShardState::Quarantined, "after quar");
         EXPECT_EQ(lt.counters().quarantined, 1u);
         // Healthy is Done, doomed is Quarantined: the tag is terminal
         // and the gap is reportable.
         EXPECT_TRUE(lt.tag_terminal("req"));
       }},
  };
  for (const Step& step : script) {
    SCOPED_TRACE(std::string("t=") + std::to_string(step.t) + ": " +
                 step.what);
    step.act(table, step.t);
  }
  EXPECT_EQ(table.counters().dispatched, 3u);  // 2 initial + 1 retry
}

TEST(LeaseTable, FirstResultWinsAndLateDuplicatesAreVerified) {
  LeaseOptions options = fast_options();
  options.lease_deadline_s = 2.0;  // expire quickly
  LeaseTable table(options);
  const ShardRange ranges[] = {{0, 3}};
  const auto ids = table.add_shards("req", ranges);
  table.worker_join("slow", 0.0);
  ASSERT_EQ(table.dispatch(0.0).size(), 1u);

  // The lease expires; the straggler keeps its slot but the shard is
  // offered to a newcomer.
  table.heartbeat("slow", 2.5);
  const TickReport report = table.tick(2.5);
  ASSERT_EQ(report.expired.size(), 1u);
  EXPECT_EQ(table.shard(ids[0])->state, ShardState::Pending);
  EXPECT_TRUE(table.dispatch(3.0).empty());  // straggler is not idle

  table.worker_join("fresh", 3.5);
  const auto leases = table.dispatch(3.5);
  ASSERT_EQ(leases.size(), 1u);
  EXPECT_EQ(leases[0].worker, "fresh");

  // The STRAGGLER finishes first: accepted, new lease revoked.
  EXPECT_EQ(table.complete(ids[0], "slow", "payload", 4.0),
            CompletionOutcome::Accepted);
  EXPECT_EQ(table.shard(ids[0])->worker, "slow");
  // "fresh" was released and can take new work again.
  EXPECT_EQ(table.num_idle_workers(), 2u);
  // Its late identical result is dropped after byte verification; a
  // MISMATCH is flagged as a determinism violation.
  EXPECT_EQ(table.complete(ids[0], "fresh", "payload", 4.5),
            CompletionOutcome::DuplicateVerified);
  EXPECT_EQ(table.complete(ids[0], "fresh", "DIFFERENT", 4.6),
            CompletionOutcome::DuplicateMismatch);
  EXPECT_EQ(table.counters().duplicate_mismatches, 1u);
}

TEST(LeaseTable, SplitOnReassignFansOrphansAcrossIdleSurvivors) {
  LeaseOptions options = fast_options();
  options.split_on_reassign = true;
  LeaseTable table(options);
  const ShardRange ranges[] = {{0, 8}};
  const auto ids = table.add_shards("req", ranges);
  table.worker_join("a", 0.0);
  ASSERT_EQ(table.dispatch(0.0).size(), 1u);
  table.worker_join("b", 0.5);
  table.worker_join("c", 0.5);

  // "a" dies holding [0, 8); two idle survivors → two child shards.
  const TickReport report = table.worker_leave("a", 1.0);
  ASSERT_EQ(report.splits.size(), 1u);
  EXPECT_EQ(report.splits[0].parent, ids[0]);
  ASSERT_EQ(report.splits[0].children.size(), 2u);
  EXPECT_EQ(table.shard(ids[0])->state, ShardState::Superseded);
  const auto c0 = table.shard(report.splits[0].children[0]);
  const auto c1 = table.shard(report.splits[0].children[1]);
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  // Children tile the parent exactly and inherit tag + attempts.
  EXPECT_EQ(c0->range.begin, 0u);
  EXPECT_EQ(c0->range.end, c1->range.begin);
  EXPECT_EQ(c1->range.end, 8u);
  EXPECT_EQ(c0->tag, "req");
  EXPECT_EQ(c0->attempts, 1u);

  // A late result for the superseded parent is dropped.
  EXPECT_EQ(table.complete(ids[0], "a", "late", 2.0),
            CompletionOutcome::SupersededLate);
  EXPECT_EQ(table.counters().superseded_late, 1u);

  // Children complete normally; the tag becomes terminal.
  const auto leases = table.dispatch(10.0);
  ASSERT_EQ(leases.size(), 2u);
  for (const Assignment& lease : leases) {
    EXPECT_EQ(table.complete(lease.shard, lease.worker, "p", 11.0),
              CompletionOutcome::Accepted);
  }
  EXPECT_TRUE(table.tag_terminal("req"));
}

TEST(LeaseTable, BackoffDoublesCapsAndJittersDeterministically) {
  LeaseOptions options;
  options.backoff_base_s = 0.5;
  options.backoff_cap_s = 4.0;
  options.backoff_jitter = 0.0;
  const LeaseTable plain(options);
  EXPECT_DOUBLE_EQ(plain.backoff_delay(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(plain.backoff_delay(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(plain.backoff_delay(1, 3), 2.0);
  EXPECT_DOUBLE_EQ(plain.backoff_delay(1, 4), 4.0);
  EXPECT_DOUBLE_EQ(plain.backoff_delay(1, 9), 4.0);  // capped

  options.backoff_jitter = 0.25;
  const LeaseTable jittered(options);
  const double d1 = jittered.backoff_delay(7, 2);
  EXPECT_GE(d1, 1.0);
  EXPECT_LE(d1, 1.25);
  // Deterministic in (shard, attempt); different across shards.
  EXPECT_DOUBLE_EQ(d1, jittered.backoff_delay(7, 2));
  EXPECT_NE(d1, jittered.backoff_delay(8, 2));
}

TEST(LeaseTable, PilotWeightsScaleLeaseDeadlines) {
  LeaseOptions options;
  options.lease_deadline_s = 10.0;
  options.deadline_weight_cap = 4.0;
  LeaseTable table(options);
  const ShardRange ranges[] = {{0, 2}, {2, 4}, {4, 6}};
  const double weights[] = {1.0, 2.0, 60.0};  // mean 21
  table.add_shards("req", ranges, weights);
  table.worker_join("a", 0.0);
  table.worker_join("b", 0.0);
  table.worker_join("c", 0.0);
  const auto leases = table.dispatch(0.0);
  ASSERT_EQ(leases.size(), 3u);
  // Below-mean shards keep the base deadline; the heavy shard stretches
  // it by weight/mean (60/21 ≈ 2.86, under the ×4 cap).
  EXPECT_DOUBLE_EQ(leases[0].deadline_s, 10.0);
  EXPECT_DOUBLE_EQ(leases[1].deadline_s, 10.0);
  EXPECT_DOUBLE_EQ(leases[2].deadline_s, 10.0 * 60.0 / 21.0);

  // The cap bites on pathologically skewed weights: one shard worth
  // ~10x the mean of its nine siblings still only stretches x4.
  LeaseTable capped(options);
  std::vector<ShardRange> skewed;
  std::vector<double> skewed_w;
  for (std::size_t i = 0; i < 10; ++i) {
    skewed.push_back({i, i + 1});
    skewed_w.push_back(i == 0 ? 1000.0 : 1.0);  // mean 100.9
  }
  capped.add_shards("req", skewed, skewed_w);
  capped.worker_join("a", 0.0);
  const auto capped_leases = capped.dispatch(0.0);
  ASSERT_EQ(capped_leases.size(), 1u);  // the heavy shard dispatches first
  EXPECT_DOUBLE_EQ(capped_leases[0].deadline_s, 40.0);  // x4 cap
}

TEST(LeaseTable, FailShardRetriesThenQuarantines) {
  LeaseOptions options = fast_options();
  options.backoff_jitter = 0.0;
  LeaseTable table(options);
  const ShardRange ranges[] = {{0, 1}};  // single point: never splits
  const auto ids = table.add_shards("req", ranges);
  table.worker_join("a", 0.0);
  ASSERT_EQ(table.dispatch(0.0).size(), 1u);
  table.fail_shard(ids[0], "a", "boom", 1.0);
  EXPECT_EQ(table.shard(ids[0])->state, ShardState::Pending);
  EXPECT_EQ(table.shard(ids[0])->last_error, "boom");
  ASSERT_EQ(table.dispatch(3.0).size(), 1u);  // after 1 s backoff
  table.fail_shard(ids[0], "a", "boom again", 4.0);
  EXPECT_EQ(table.shard(ids[0])->state, ShardState::Quarantined);
  EXPECT_EQ(table.counters().failures, 2u);
  EXPECT_EQ(table.counters().quarantined, 1u);
  EXPECT_TRUE(table.tag_terminal("req"));
}

TEST(LeaseTable, RejoinRevokesStaleLeasesFromThePreviousIncarnation) {
  // A restarted worker's hello can arrive BEFORE the old connection's
  // Closed event.  The rejoin must orphan whatever the previous
  // incarnation held — otherwise (in a single-worker fleet) the worker
  // is never idle again and the request hangs forever.
  LeaseOptions options = fast_options();
  LeaseTable table(options);
  const ShardRange ranges[] = {{0, 4}};
  const auto ids = table.add_shards("req", ranges);
  table.worker_join("only", 0.0);
  ASSERT_EQ(table.dispatch(0.0).size(), 1u);
  EXPECT_EQ(table.num_idle_workers(), 0u);

  const TickReport report = table.worker_join("only", 1.0);
  ASSERT_EQ(report.reassigned.size(), 1u);
  EXPECT_EQ(report.reassigned[0], ids[0]);
  EXPECT_EQ(table.shard(ids[0])->state, ShardState::Pending);
  EXPECT_EQ(table.num_idle_workers(), 1u);  // clean slate

  // After backoff the rejoined worker picks its old shard back up and
  // the request can still finish.
  const auto leases = table.dispatch(3.0);
  ASSERT_EQ(leases.size(), 1u);
  EXPECT_EQ(leases[0].worker, "only");
  EXPECT_EQ(leases[0].attempt, 2u);
  EXPECT_EQ(table.complete(ids[0], "only", "payload", 4.0),
            CompletionOutcome::Accepted);
  EXPECT_TRUE(table.tag_terminal("req"));

  // A first join (nothing held) reports nothing.
  EXPECT_TRUE(table.worker_join("fresh", 5.0).empty());
}

TEST(LeaseTable, LateFailureFromNonHolderDoesNotPolluteErrors) {
  LeaseOptions options = fast_options();
  LeaseTable table(options);
  const ShardRange ranges[] = {{0, 2}};
  const auto ids = table.add_shards("req", ranges);
  table.worker_join("a", 0.0);
  ASSERT_EQ(table.dispatch(0.0).size(), 1u);
  EXPECT_EQ(table.complete(ids[0], "a", "payload", 1.0),
            CompletionOutcome::Accepted);

  // A late error from a superseded/expired holder must leave a Done
  // shard's recorded error alone — the gap report depends on it.
  table.fail_shard(ids[0], "a", "late straggler error", 2.0);
  EXPECT_EQ(table.shard(ids[0])->state, ShardState::Done);
  EXPECT_EQ(table.shard(ids[0])->last_error, "");
  EXPECT_EQ(table.counters().failures, 1u);  // still counted as seen
}

TEST(LeaseTable, NextEventTimeCoversDispatchDeadlineAndHeartbeat) {
  LeaseOptions options;
  options.heartbeat_timeout_s = 7.0;
  options.lease_deadline_s = 3.0;
  options.backoff_jitter = 0.0;
  LeaseTable table(options);
  EXPECT_TRUE(std::isinf(table.next_event_time(0.0)));

  const ShardRange ranges[] = {{0, 2}};
  table.add_shards("req", ranges);
  table.worker_join("a", 0.0);
  // Dispatchable now with an idle worker → "now".
  EXPECT_DOUBLE_EQ(table.next_event_time(1.0), 1.0);
  ASSERT_EQ(table.dispatch(1.0).size(), 1u);
  // Leased: the next edge is the lease deadline (1 + 3), before the
  // heartbeat timeout (0 + 7).
  EXPECT_DOUBLE_EQ(table.next_event_time(1.0), 4.0);
}

}  // namespace
