#include "ids/functions.h"

#include <gtest/gtest.h>

namespace {

using namespace midas::ids;

TEST(Shapes, AllShapesAnchorAtBaseRate) {
  // The defining property of the reconstruction (DESIGN.md): with no
  // compromised nodes (x = 1) all three shapes give the base rate.
  for (const auto s :
       {Shape::Logarithmic, Shape::Linear, Shape::Polynomial}) {
    EXPECT_NEAR(shape_factor(s, 1.0), 1.0, 1e-12) << to_string(s);
  }
}

TEST(Shapes, OrderingBeyondTheAnchor) {
  // log < linear < poly for x > 1 — the paper's "conservative /
  // linear / aggressive" ordering.
  for (const double x : {1.1, 1.5, 2.0, 5.0, 50.0}) {
    const double lo = shape_factor(Shape::Logarithmic, x);
    const double li = shape_factor(Shape::Linear, x);
    const double po = shape_factor(Shape::Polynomial, x);
    EXPECT_LT(lo, li) << "x=" << x;
    EXPECT_LT(li, po) << "x=" << x;
  }
}

TEST(Shapes, MonotoneInX) {
  for (const auto s :
       {Shape::Logarithmic, Shape::Linear, Shape::Polynomial}) {
    double prev = 0.0;
    for (const double x : {1.0, 1.2, 2.0, 4.0, 10.0}) {
      const double f = shape_factor(s, x);
      EXPECT_GT(f, prev) << to_string(s) << " x=" << x;
      prev = f;
    }
  }
}

TEST(Shapes, PolynomialUsesTheIndexParameter) {
  EXPECT_NEAR(shape_factor(Shape::Polynomial, 2.0, 3.0), 8.0, 1e-12);
  EXPECT_NEAR(shape_factor(Shape::Polynomial, 2.0, 2.0), 4.0, 1e-12);
}

TEST(Shapes, DomainErrorsThrow) {
  EXPECT_THROW((void)shape_factor(Shape::Linear, 0.5), std::invalid_argument);
  EXPECT_THROW((void)shape_factor(Shape::Linear, 2.0, 1.0),
               std::invalid_argument);
}

TEST(AttackerRate, ScalesWithBaseRate) {
  EXPECT_NEAR(attacker_rate(Shape::Linear, 2e-5, 1.5), 3e-5, 1e-15);
  EXPECT_NEAR(attacker_rate(Shape::Polynomial, 1e-4, 1.5, 3.0),
              1e-4 * 3.375, 1e-12);
  EXPECT_THROW((void)attacker_rate(Shape::Linear, -1.0, 1.0),
               std::invalid_argument);
}

TEST(DetectionRate, IsShapeOverInterval) {
  EXPECT_NEAR(detection_rate(Shape::Linear, 120.0, 1.0), 1.0 / 120.0,
              1e-15);
  EXPECT_NEAR(detection_rate(Shape::Linear, 120.0, 2.0), 2.0 / 120.0,
              1e-15);
  EXPECT_THROW((void)detection_rate(Shape::Linear, 0.0, 1.0),
               std::invalid_argument);
}

TEST(ShapeParsing, RoundTripsAndAliases) {
  EXPECT_EQ(shape_from_string("logarithmic"), Shape::Logarithmic);
  EXPECT_EQ(shape_from_string("log"), Shape::Logarithmic);
  EXPECT_EQ(shape_from_string("linear"), Shape::Linear);
  EXPECT_EQ(shape_from_string("poly"), Shape::Polynomial);
  EXPECT_EQ(shape_from_string(to_string(Shape::Polynomial)),
            Shape::Polynomial);
  EXPECT_THROW((void)shape_from_string("quadratic"), std::invalid_argument);
}

}  // namespace
