#include "gcs/view.h"

#include <gtest/gtest.h>

namespace {

using namespace midas::gcs;

TEST(ViewManager, InitialViewHasIdZero) {
  const ViewManager vm({1, 2, 3});
  EXPECT_EQ(vm.current_view().id, 0u);
  EXPECT_EQ(vm.size(), 3u);
  EXPECT_TRUE(vm.contains(2));
  EXPECT_EQ(vm.rekey_count(), 0u);
}

TEST(ViewManager, DuplicateInitialMemberThrows) {
  EXPECT_THROW(ViewManager({1, 1}), std::invalid_argument);
}

TEST(ViewManager, EveryMembershipEventInstallsANewView) {
  ViewManager vm({1, 2, 3});
  vm.join(4);
  EXPECT_EQ(vm.current_view().id, 1u);
  vm.leave(1);
  EXPECT_EQ(vm.current_view().id, 2u);
  vm.evict(2);
  EXPECT_EQ(vm.current_view().id, 3u);
  EXPECT_EQ(vm.rekey_count(), 3u);
  EXPECT_EQ(vm.size(), 2u);  // {3, 4}
  EXPECT_TRUE(vm.contains(3));
  EXPECT_TRUE(vm.contains(4));
}

TEST(ViewManager, HistoryIsOrderedAndTyped) {
  ViewManager vm({1, 2, 3, 4, 5});
  vm.join(6);
  vm.evict(2);
  (void)vm.partition({4, 5});
  vm.merge({7, 8});

  const auto& h = vm.history();
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0].type, EventType::Join);
  EXPECT_EQ(h[1].type, EventType::Evict);
  EXPECT_EQ(h[2].type, EventType::Partition);
  EXPECT_EQ(h[3].type, EventType::Merge);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_EQ(h[i].view_id, i + 1) << "view ids strictly monotonic";
  }
}

TEST(ViewManager, PartitionRemovesExactlyTheSubjects) {
  ViewManager vm({1, 2, 3, 4});
  const auto moved = vm.partition({2, 4});
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(vm.size(), 2u);
  EXPECT_TRUE(vm.contains(1));
  EXPECT_TRUE(vm.contains(3));
  EXPECT_FALSE(vm.contains(2));
}

TEST(ViewManager, CannotPartitionOutEveryone) {
  ViewManager vm({1, 2});
  EXPECT_THROW((void)vm.partition({1, 2}), std::invalid_argument);
}

TEST(ViewManager, MembershipErrorsThrow) {
  ViewManager vm({1, 2});
  EXPECT_THROW(vm.join(1), std::invalid_argument);
  EXPECT_THROW(vm.leave(9), std::invalid_argument);
  EXPECT_THROW(vm.evict(9), std::invalid_argument);
  EXPECT_THROW((void)vm.partition({9}), std::invalid_argument);
  EXPECT_THROW(vm.merge({2}), std::invalid_argument);
}

TEST(ViewManager, EventTypeNames) {
  EXPECT_EQ(to_string(EventType::Join), "join");
  EXPECT_EQ(to_string(EventType::Evict), "evict");
  EXPECT_EQ(to_string(EventType::Partition), "partition");
}

}  // namespace
