// Cross-substrate integration: long randomized membership lifecycles
// driving GDH key agreement, view-synchronous membership and the secure
// channel together, plus parameterized model-invariant sweeps across
// the design grid the benches exercise.
#include <random>

#include <gtest/gtest.h>

#include "core/gcs_spn_model.h"
#include "crypto/gdh.h"
#include "gcs/group_comm.h"
#include "gcs/view.h"
#include "spn/reachability.h"

namespace {

using namespace midas;

// ---- Randomized secure-group lifecycle -------------------------------

TEST(Integration, RandomMembershipLifecycleKeepsAllInvariants) {
  std::mt19937_64 rng(20090525);  // IPDPS'09 date as seed
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  crypto::GdhSession session(crypto::DhGroup::demo_group(), 7);
  std::vector<gcs::NodeId> initial{1, 2, 3, 4, 5, 6, 7, 8};
  session.establish(initial);
  gcs::ViewManager view(initial);
  gcs::GroupChannel channel(view);
  gcs::NodeId next_id = 9;

  for (int step = 0; step < 200; ++step) {
    const double u = uni(rng);
    const auto members = session.member_ids();
    if (u < 0.35 || members.size() <= 2) {
      session.join(next_id);
      view.join(next_id);
      ++next_id;
    } else if (u < 0.65) {
      const auto victim = members[rng() % members.size()];
      session.leave(victim);
      view.leave(victim);
    } else if (u < 0.85) {
      const auto victim = members[rng() % members.size()];
      session.leave(victim);
      view.evict(victim);  // IDS-forced eviction
    } else {
      // Publish a message under the current key and verify every
      // current member decrypts it and nobody else could.
      const auto sender = members[rng() % members.size()];
      const std::string payload = "situation report " + std::to_string(step);
      ASSERT_TRUE(channel.publish(sender, view.current_view().id,
                                  session.group_key(), payload));
    }

    // Invariants after every event:
    ASSERT_TRUE(session.keys_agree()) << "step " << step;
    ASSERT_EQ(session.size(), view.size()) << "step " << step;
    for (const auto id : session.member_ids()) {
      ASSERT_TRUE(view.contains(id)) << "step " << step;
    }
  }

  // Drain one surviving member's queue: every message must decrypt
  // under the key of the view it was sent in — and the CURRENT key must
  // fail for any message sent before the last rekey.
  const auto survivor = session.member_ids().front();
  const auto messages = channel.drain(survivor);
  std::uint64_t prev_seq = 0;
  for (const auto& msg : messages) {
    EXPECT_GT(msg.seq, prev_seq);  // total order preserved
    prev_seq = msg.seq;
  }
  EXPECT_EQ(view.current_view().id, view.rekey_count());
}

TEST(Integration, EvictedNodeIsCryptographicallyExcluded) {
  crypto::GdhSession session(crypto::DhGroup::demo_group(), 11);
  session.establish({1, 2, 3, 4});
  gcs::ViewManager view({1, 2, 3, 4});
  gcs::GroupChannel channel(view);

  const auto key_known_to_3 = session.member_key(3);
  session.leave(3);
  view.evict(3);

  // Message sent after the eviction rekey.
  ASSERT_TRUE(channel.publish(1, view.current_view().id,
                              session.group_key(), "new plan: go north"));
  // Node 3 receives nothing new (not in the view)...
  EXPECT_EQ(channel.pending(3), 0u);
  // ...and even with the old key it cannot read the survivors' copy.
  const auto copy = channel.drain(1);
  ASSERT_EQ(copy.size(), 1u);
  EXPECT_NE(copy[0].envelope.open(key_known_to_3), "new plan: go north");
  EXPECT_EQ(copy[0].envelope.open(session.group_key()),
            "new plan: go north");
}

// ---- Parameterized model-invariant sweep ------------------------------

struct GridCase {
  int m;
  double t_ids;
  ids::Shape detection;
};

class ModelGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ModelGrid, InvariantsHoldAcrossTheDesignGrid) {
  const auto& gc = GetParam();
  core::Params p = core::Params::paper_defaults();
  p.n_init = 18;
  p.max_groups = 1;
  p.num_voters = gc.m;
  p.t_ids = gc.t_ids;
  p.detection_shape = gc.detection;

  const core::GcsSpnModel model(p);
  const auto ev = model.evaluate();

  // Probability mass balance and positivity.
  EXPECT_NEAR(ev.p_failure_c1 + ev.p_failure_c2, 1.0, 1e-6);
  EXPECT_GT(ev.mttsf, 0.0);
  EXPECT_GT(ev.ctotal, 0.0);

  // Token conservation over the whole reachable space.
  const auto g = spn::explore(model.net());
  for (const auto& marking : g.states) {
    EXPECT_EQ(marking[model.place_tm()] + marking[model.place_ucm()] +
                  marking[model.place_dcm()] + marking[model.place_gf()],
              18);
  }

  // Cost decomposition consistency.
  EXPECT_NEAR(ev.ctotal,
              ev.cost_rates.total() + ev.eviction_cost_rate,
              1e-9 * ev.ctotal);
}

INSTANTIATE_TEST_SUITE_P(
    DesignGrid, ModelGrid,
    ::testing::Values(GridCase{3, 15, ids::Shape::Linear},
                      GridCase{3, 600, ids::Shape::Logarithmic},
                      GridCase{5, 5, ids::Shape::Polynomial},
                      GridCase{5, 120, ids::Shape::Linear},
                      GridCase{5, 1200, ids::Shape::Logarithmic},
                      GridCase{7, 60, ids::Shape::Polynomial},
                      GridCase{9, 30, ids::Shape::Linear},
                      GridCase{9, 480, ids::Shape::Polynomial}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return "m" + std::to_string(info.param.m) + "_t" +
             std::to_string(static_cast<int>(info.param.t_ids)) + "_" +
             ids::to_string(info.param.detection);
    });

}  // namespace
