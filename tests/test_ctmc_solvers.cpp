// Closed-form validation of the CTMC machinery: mean time to absorption,
// absorption probabilities, accumulated rewards, transient solution and
// steady state are all checked against textbook results.
#include <cmath>

#include <gtest/gtest.h>

#include "spn/absorbing.h"
#include "spn/ctmc.h"
#include "spn/reachability.h"
#include "spn/steady_state.h"
#include "spn/transient.h"

namespace {

using namespace midas::spn;

PetriNet death_chain(std::int32_t k, double mu) {
  PetriNet net;
  const auto a = net.add_place("A", k);
  net.transition("die")
      .input(a)
      .rate([a, mu](const Marking& m) { return mu * m[a]; })
      .add();
  return net;
}

TEST(Absorbing, TwoStateMttaIsInverseRate) {
  PetriNet net;
  const auto p = net.add_place("P", 1);
  net.transition("fail").input(p).rate(0.25).add();
  const auto g = explore(net);
  const AbsorbingAnalyzer an(g);
  const auto res = an.solve();
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.mtta, 4.0, 1e-9);
}

TEST(Absorbing, ErlangChainMttaIsSumOfStages) {
  // k sequential exponential stages at rate λ each: MTTA = k/λ.
  const int k = 6;
  const double lambda = 2.0;
  PetriNet net;
  const auto p = net.add_place("Stages", k);
  net.transition("stage").input(p).rate(lambda).add();
  const auto g = explore(net);
  const auto res = AbsorbingAnalyzer(g).solve();
  EXPECT_NEAR(res.mtta, k / lambda, 1e-9);
}

TEST(Absorbing, PureDeathChainMttaIsHarmonicSum) {
  // Rate i·μ in state i:  MTTA = Σ_{i=1..k} 1/(i·μ).
  const int k = 10;
  const double mu = 0.5;
  const auto net = death_chain(k, mu);
  const auto res = AbsorbingAnalyzer(explore(net)).solve();
  double expected = 0.0;
  for (int i = 1; i <= k; ++i) expected += 1.0 / (mu * i);
  EXPECT_NEAR(res.mtta, expected, 1e-9);
}

TEST(Absorbing, CompetingRisksAbsorptionProbabilities) {
  // One transient state, two absorbing causes with rates λ1, λ2.
  const double l1 = 3.0, l2 = 1.0;
  PetriNet net;
  const auto p = net.add_place("Alive", 1);
  const auto c1 = net.add_place("Cause1", 0);
  const auto c2 = net.add_place("Cause2", 0);
  net.transition("t1").input(p).output(c1).rate(l1).add();
  net.transition("t2").input(p).output(c2).rate(l2).add();

  const auto g = explore(net);
  const AbsorbingAnalyzer an(g);
  const auto res = an.solve();
  EXPECT_NEAR(res.mtta, 1.0 / (l1 + l2), 1e-10);

  const double p1 = an.absorption_probability_where(
      res, [c1](const Marking& m) { return m[c1] > 0; });
  const double p2 = an.absorption_probability_where(
      res, [c2](const Marking& m) { return m[c2] > 0; });
  EXPECT_NEAR(p1, l1 / (l1 + l2), 1e-10);
  EXPECT_NEAR(p2, l2 / (l1 + l2), 1e-10);
  EXPECT_NEAR(p1 + p2, 1.0, 1e-10);
}

TEST(Absorbing, AccumulatedRateRewardMatchesClosedForm) {
  // Death chain, reward = current token count.  Expected accumulated
  // reward = Σ_i i · E[time in state i] = Σ_i i · 1/(i·μ) = k/μ.
  const int k = 7;
  const double mu = 2.0;
  const auto net = death_chain(k, mu);
  const auto g = explore(net);
  const AbsorbingAnalyzer an(g);
  const auto res = an.solve();
  const auto place = net.find_place("A").value();
  const double reward = an.accumulated_rate_reward(
      res, [place](const Marking& m) { return static_cast<double>(m[place]); });
  EXPECT_NEAR(reward, k / mu, 1e-9);
}

TEST(Absorbing, AccumulatedImpulseCountsFirings) {
  // Death chain with impulse 1 per firing: k firings to absorption.
  const int k = 9;
  PetriNet net;
  const auto a = net.add_place("A", k);
  net.transition("die")
      .input(a)
      .rate([a](const Marking& m) { return 1.5 * m[a]; })
      .impulse([](const Marking&) { return 1.0; })
      .add();
  const auto g = explore(net);
  const AbsorbingAnalyzer an(g);
  const auto res = an.solve();
  EXPECT_NEAR(an.accumulated_impulse_reward(res), k, 1e-9);
}

TEST(Absorbing, SelfLoopImpulsesAccrueAtRate) {
  // One transient state with exit rate μ and a self-loop firing at rate
  // ρ with impulse c: expected impulse total = c·ρ/μ.
  const double mu = 0.5, rho = 4.0, c = 2.0;
  PetriNet net;
  const auto p = net.add_place("P", 1);
  net.transition("exit").input(p).rate(mu).add();
  net.transition("tick")
      .input(p)
      .output(p)
      .rate(rho)
      .impulse([c](const Marking&) { return c; })
      .add();
  const auto g = explore(net);
  const AbsorbingAnalyzer an(g);
  const auto res = an.solve();
  EXPECT_NEAR(res.mtta, 1.0 / mu, 1e-10);
  EXPECT_NEAR(an.accumulated_impulse_reward(res), c * rho / mu, 1e-9);
}

TEST(Absorbing, UnreachableAbsorbingStateThrowsAtConstruction) {
  // Regression: a graph whose absorbing state exists but is NOT
  // reachable from the initial marking used to pass construction and
  // fail mid-solve — with "transient state with zero exit rate" or a
  // singular SCC block, neither of which names the actual defect.  The
  // analyzer now detects it at construction.  Cycle-only from the
  // initial state: 0 ⇄ 1, with state 2 absorbing but unconnected.
  ReachabilityGraph g;
  g.states.assign(3, Marking(1));
  g.edges = {{0, 1, 1.0, 0, 0.0, 1.0, 0.0}, {1, 0, 1.0, 0, 0.0, 1.0, 0.0}};
  g.edge_offsets = {0, 1, 2, 2};
  g.initial = 0;
  try {
    const AbsorbingAnalyzer an(g);
    FAIL() << "construction must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no absorbing state is reachable"),
              std::string::npos)
        << e.what();
  }
}

TEST(Absorbing, ReachableTransientTrapThrowsAtConstruction) {
  // Initial state CAN absorb (0 → 3), but 0 → 1 enters a 1 ⇄ 2 cycle
  // with no exit: probability mass is trapped, MTTA diverges.  Must be
  // rejected at construction with a descriptive error, not by a
  // singular dense block inside solve().
  ReachabilityGraph g;
  g.states.assign(4, Marking(1));
  g.edges = {{0, 1, 1.0, 0, 0.0, 1.0, 0.0},
             {0, 3, 1.0, 0, 0.0, 1.0, 0.0},
             {1, 2, 1.0, 0, 0.0, 1.0, 0.0},
             {2, 1, 1.0, 0, 0.0, 1.0, 0.0}};
  g.edge_offsets = {0, 2, 3, 4, 4};
  g.initial = 0;
  try {
    const AbsorbingAnalyzer an(g);
    FAIL() << "construction must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("recurrent transient class"),
              std::string::npos)
        << e.what();
  }
}

TEST(Absorbing, NoAbsorbingStatesThrows) {
  PetriNet net;
  const auto q = net.add_place("Q", 0);
  net.transition("up")
      .output(q)
      .rate(1.0)
      .guard([q](const Marking& m) { return m[q] < 3; })
      .add();
  net.transition("down").input(q).rate(1.0).add();
  const auto g = explore(net);
  EXPECT_THROW(AbsorbingAnalyzer(g).solve(), std::runtime_error);
}

TEST(Transient, TwoStateSurvivalIsExponential) {
  const double lambda = 0.7;
  PetriNet net;
  const auto p = net.add_place("P", 1);
  net.transition("fail").input(p).rate(lambda).add();
  const auto g = explore(net);
  const TransientAnalyzer an(g);
  for (double t : {0.0, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(an.absorbed_probability_at(t), 1.0 - std::exp(-lambda * t),
                1e-9)
        << "t=" << t;
  }
}

TEST(Transient, DistributionSumsToOne) {
  const auto net = death_chain(5, 1.0);
  const TransientAnalyzer an(explore(net));
  for (double t : {0.1, 1.0, 7.0}) {
    const auto pi = an.distribution_at(t);
    double sum = 0.0;
    for (double v : pi) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "t=" << t;
  }
}

TEST(Transient, ErlangAbsorptionCdf) {
  // 3 stages at rate 2: absorbed probability = Erlang(3,2) CDF.
  const int k = 3;
  const double lambda = 2.0;
  PetriNet net;
  const auto p = net.add_place("Stages", k);
  net.transition("stage").input(p).rate(lambda).add();
  const TransientAnalyzer an(explore(net));
  for (double t : {0.25, 1.0, 2.5}) {
    double cdf = 1.0;
    double term = 1.0;
    for (int i = 0; i < k; ++i) {
      if (i > 0) term *= lambda * t / i;
      cdf -= std::exp(-lambda * t) * term;
    }
    EXPECT_NEAR(an.absorbed_probability_at(t), cdf, 1e-8) << "t=" << t;
  }
}

TEST(Transient, ExpectedRewardInterpolates)  {
  // Death chain reward = tokens: E[reward at 0] = k, decreases with t.
  const int k = 4;
  const auto net = death_chain(k, 1.0);
  const auto g = explore(net);
  const TransientAnalyzer an(g);
  const auto place = net.find_place("A").value();
  auto reward = [place](const Marking& m) {
    return static_cast<double>(m[place]);
  };
  const double r0 = an.expected_reward_at(0.0, reward);
  const double r1 = an.expected_reward_at(1.0, reward);
  const double r2 = an.expected_reward_at(5.0, reward);
  EXPECT_NEAR(r0, k, 1e-12);
  EXPECT_LT(r1, r0);
  EXPECT_LT(r2, r1);
  // Linear death at unit per-token rate: E[N(t)] = k·e^{−t}.
  EXPECT_NEAR(r1, k * std::exp(-1.0), 1e-8);
}

TEST(SteadyState, MM1KMatchesGeometricForm) {
  const double lambda = 1.0, mu = 2.0;
  const int cap = 6;
  PetriNet net;
  const auto q = net.add_place("Q", 0);
  net.transition("arrive")
      .output(q)
      .rate(lambda)
      .guard([q, cap](const Marking& m) { return m[q] < cap; })
      .add();
  net.transition("serve").input(q).rate(mu).add();

  const auto g = explore(net);
  const auto res = steady_state(g);
  ASSERT_TRUE(res.converged);

  // π_n ∝ ρ^n with ρ = λ/μ.
  const double rho = lambda / mu;
  double norm = 0.0;
  for (int n = 0; n <= cap; ++n) norm += std::pow(rho, n);
  for (std::size_t s = 0; s < g.num_states(); ++s) {
    const auto n = g.states[s][q];
    EXPECT_NEAR(res.pi[s], std::pow(rho, n) / norm, 1e-9) << "n=" << n;
  }
}

TEST(Ctmc, GeneratorRowsSumToZeroForTransientStates) {
  const auto net = death_chain(4, 1.0);
  const auto g = explore(net);
  const auto ctmc = Ctmc::from_graph(g);
  const auto& q = ctmc.generator();
  for (std::size_t r = 0; r < ctmc.num_states(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < ctmc.num_states(); ++c) sum += q.at(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-12) << "row " << r;
  }
}

TEST(Ctmc, ExitRatesAndAbsorbingClassification) {
  const auto net = death_chain(3, 2.0);
  const auto g = explore(net);
  const auto ctmc = Ctmc::from_graph(g);
  EXPECT_EQ(ctmc.num_absorbing(), 1u);
  EXPECT_DOUBLE_EQ(ctmc.max_exit_rate(), 6.0);  // state with 3 tokens
}

}  // namespace
