// Frame codec robustness (util/framing.h): arbitrary chunking,
// truncation, oversized frames, interleaved garbage and non-UTF-8 all
// surface as TYPED errors — never a hang, never a partial parse.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

#include "util/framing.h"
#include "util/json.h"

namespace {

using midas::util::FrameBuffer;
using midas::util::FrameError;
using midas::util::FrameErrorKind;
using midas::util::Json;
using midas::util::encode_frame;
using midas::util::validate_utf8;

Json sample(double v) {
  auto j = Json::object();
  j.set("type", Json("result"));
  j.set("value", Json(v));
  return j;
}

FrameErrorKind kind_of(const std::function<void()>& call) {
  try {
    call();
  } catch (const FrameError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a FrameError";
  return FrameErrorKind::BadJson;
}

TEST(Framing, EncodeIsSingleLineAndRoundTrips) {
  auto j = Json::object();
  j.set("text", Json("line1\nline2\ttab\r"));  // control chars escaped
  j.set("nested", sample(2.5));
  const std::string wire = encode_frame(j);
  ASSERT_FALSE(wire.empty());
  EXPECT_EQ(wire.back(), '\n');
  // The ONLY newline is the terminator — framing is a plain line split.
  EXPECT_EQ(wire.find('\n'), wire.size() - 1);

  FrameBuffer buf;
  buf.feed(wire);
  const auto back = buf.next();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dump(), j.dump());
  EXPECT_FALSE(buf.next().has_value());
  EXPECT_NO_THROW(buf.finish());
}

TEST(Framing, ArbitraryChunkingNeverYieldsAPartialParse) {
  const std::string wire = encode_frame(sample(1.0)) +
                           encode_frame(sample(2.0)) +
                           encode_frame(sample(3.0));
  // Feed one byte at a time: next() must return exactly three frames,
  // each only after its terminating newline arrived.
  FrameBuffer buf;
  int decoded = 0;
  for (const char c : wire) {
    buf.feed(std::string_view(&c, 1));
    while (const auto frame = buf.next()) {
      ++decoded;
      EXPECT_EQ(frame->at("value").as_number(), static_cast<double>(decoded));
      // A frame only completes on its newline.
      EXPECT_EQ(c, '\n');
    }
  }
  EXPECT_EQ(decoded, 3);
  EXPECT_NO_THROW(buf.finish());
}

TEST(Framing, BlankKeepAliveLinesAndCarriageReturnsAreTolerated) {
  FrameBuffer buf;
  buf.feed("\n\r\n" + encode_frame(sample(7.0)) + "\n");
  const auto frame = buf.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->at("value").as_number(), 7.0);
  EXPECT_FALSE(buf.next().has_value());

  FrameBuffer crlf;
  crlf.feed("{\"a\": 1}\r\n");
  ASSERT_TRUE(crlf.next().has_value());
}

TEST(Framing, TruncatedStreamIsATypedError) {
  const std::string wire = encode_frame(sample(1.0));
  FrameBuffer buf;
  buf.feed(wire.substr(0, wire.size() / 2));  // peer died mid-frame
  EXPECT_FALSE(buf.next().has_value());       // no partial parse
  EXPECT_TRUE(buf.has_partial());
  EXPECT_EQ(kind_of([&] { buf.finish(); }), FrameErrorKind::Truncated);
}

TEST(Framing, OversizedFramesAreRejectedTerminatedOrNot) {
  // Unterminated runaway: rejected at feed() time, before buffering more.
  FrameBuffer small(32);
  EXPECT_EQ(kind_of([&] { small.feed(std::string(64, 'x')); }),
            FrameErrorKind::Oversized);

  // Complete-but-huge line: rejected at next() time.
  FrameBuffer buf(32);
  buf.feed("\"" + std::string(40, 'y') + "\"\n");
  EXPECT_EQ(kind_of([&] { (void)buf.next(); }), FrameErrorKind::Oversized);
}

TEST(Framing, NonUtf8BytesAreATypedError) {
  EXPECT_TRUE(validate_utf8("plain ascii"));
  EXPECT_TRUE(validate_utf8("caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x99\x82"));
  EXPECT_FALSE(validate_utf8("\xFF\xFE"));          // invalid lead bytes
  EXPECT_FALSE(validate_utf8("\xC0\xAF"));          // overlong '/'
  EXPECT_FALSE(validate_utf8("\xED\xA0\x80"));      // UTF-16 surrogate
  EXPECT_FALSE(validate_utf8("\xF4\x90\x80\x80"));  // above U+10FFFF
  EXPECT_FALSE(validate_utf8("\xC3"));              // cut-off sequence

  FrameBuffer buf;
  buf.feed("\"\xFF\xFE\"\n");
  EXPECT_EQ(kind_of([&] { (void)buf.next(); }), FrameErrorKind::BadUtf8);
}

TEST(Framing, MalformedJsonIsConsumedAndDecodingContinues) {
  FrameBuffer buf;
  buf.feed("{\"unclosed\": \n" + encode_frame(sample(9.0)));
  EXPECT_EQ(kind_of([&] { (void)buf.next(); }), FrameErrorKind::BadJson);
  // The malformed line was consumed: the stream is NOT stuck on it.
  const auto frame = buf.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->at("value").as_number(), 9.0);
  EXPECT_NO_THROW(buf.finish());
}

TEST(Framing, InterleavedFramesAcrossFeedsDecodeInOrder) {
  const std::string a = encode_frame(sample(1.0));
  const std::string b = encode_frame(sample(2.0));
  FrameBuffer buf;
  buf.feed(a.substr(0, 5));
  EXPECT_FALSE(buf.next().has_value());
  buf.feed(a.substr(5) + b.substr(0, 3));
  const auto first = buf.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->at("value").as_number(), 1.0);
  EXPECT_FALSE(buf.next().has_value());  // b is still partial
  buf.feed(b.substr(3));
  const auto second = buf.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->at("value").as_number(), 2.0);
}

}  // namespace
