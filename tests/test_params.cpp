#include "core/params.h"

#include <gtest/gtest.h>

namespace {

using namespace midas;
using core::Params;

TEST(Params, PaperDefaultsMatchSectionFive) {
  const auto p = Params::paper_defaults();
  EXPECT_EQ(p.n_init, 100);
  EXPECT_DOUBLE_EQ(p.lambda_join, 1.0 / 3600.0);   // 1 per hour
  EXPECT_DOUBLE_EQ(p.mu_leave, 1.0 / 14400.0);     // 1 per 4 hours
  EXPECT_DOUBLE_EQ(p.lambda_q, 1.0 / 60.0);        // 1 per minute
  EXPECT_DOUBLE_EQ(p.lambda_c, 1.0 / 43200.0);     // 1 per 12 hours
  EXPECT_EQ(p.num_voters, 5);
  EXPECT_DOUBLE_EQ(p.p1, 0.01);
  EXPECT_DOUBLE_EQ(p.p2, 0.01);
  EXPECT_DOUBLE_EQ(p.p_index, 3.0);
  EXPECT_DOUBLE_EQ(p.cost.bandwidth_bps, 1e6);     // 1 Mbps
  EXPECT_EQ(p.attacker_shape, ids::Shape::Linear);
  EXPECT_EQ(p.detection_shape, ids::Shape::Linear);
  EXPECT_NO_THROW(p.validate());
}

TEST(Params, ValidationCatchesEachBadField) {
  auto check_throws = [](auto mutate) {
    Params p = Params::paper_defaults();
    mutate(p);
    EXPECT_THROW(p.validate(), std::invalid_argument);
  };
  check_throws([](Params& p) { p.n_init = 1; });
  check_throws([](Params& p) { p.lambda_q = -1.0; });
  check_throws([](Params& p) { p.t_ids = 0.0; });
  check_throws([](Params& p) { p.num_voters = 0; });
  check_throws([](Params& p) { p.p1 = 1.5; });
  check_throws([](Params& p) { p.p2 = -0.1; });
  check_throws([](Params& p) { p.byzantine_fraction = 0.0; });
  check_throws([](Params& p) { p.byzantine_fraction = 1.0; });
  check_throws([](Params& p) { p.p_index = 1.0; });
  check_throws([](Params& p) { p.max_groups = 0; });
  check_throws([](Params& p) {
    p.max_groups = 5;
    p.partition_rates = {0.0, 1.0};  // too short for 5 groups
  });
}

TEST(Params, MobilityEstimateImportPopulatesRateTables) {
  manet::PartitionEstimate est;
  est.max_groups_seen = 2;
  est.partition_rate = {0.0, 3e-3, 0.0};
  est.merge_rate = {0.0, 0.0, 2e-2};
  est.mean_hops = 4.5;
  est.mean_degree = 6.0;

  Params p = Params::paper_defaults();
  p.apply_mobility_estimate(est);
  EXPECT_EQ(p.max_groups, 2);
  EXPECT_DOUBLE_EQ(p.partition_rates[1], 3e-3);
  EXPECT_DOUBLE_EQ(p.merge_rates[2], 2e-2);
  EXPECT_DOUBLE_EQ(p.cost.mean_hops, 4.5);
  EXPECT_DOUBLE_EQ(p.cost.rekey.mean_hops, 4.5);  // synced through
  EXPECT_NO_THROW(p.validate());
}

TEST(Params, SingleGroupSkipsRateTableValidation) {
  Params p = Params::paper_defaults();
  p.max_groups = 1;
  p.partition_rates.clear();
  p.merge_rates.clear();
  EXPECT_NO_THROW(p.validate());
}

}  // namespace
