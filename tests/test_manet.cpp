// MANET substrate: random-waypoint mobility invariants, unit-disc
// connectivity/topology statistics, and the partition/merge birth–death
// estimation the paper's T_PAR/T_MER rates come from.
#include <gtest/gtest.h>

#include "manet/mobility.h"
#include "manet/partition_estimator.h"
#include "manet/topology.h"

namespace {

using namespace midas::manet;

TEST(Mobility, NodesStayInsideTheDisc) {
  MobilityParams p;
  p.field_radius_m = 200.0;
  RandomWaypointModel model(50, p, 123);
  for (int step = 0; step < 200; ++step) {
    model.step(1.0);
    for (const auto& pos : model.positions()) {
      EXPECT_LE(pos.norm(), p.field_radius_m + 1e-6);
    }
  }
}

TEST(Mobility, DeterministicUnderSeed) {
  const MobilityParams p;
  RandomWaypointModel a(10, p, 77);
  RandomWaypointModel b(10, p, 77);
  for (int step = 0; step < 50; ++step) {
    a.step(1.0);
    b.step(1.0);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.positions()[i].x, b.positions()[i].x);
    EXPECT_DOUBLE_EQ(a.positions()[i].y, b.positions()[i].y);
  }
}

TEST(Mobility, MeanSpeedWithinConfiguredBand) {
  MobilityParams p;
  p.speed_min_mps = 2.0;
  p.speed_max_mps = 6.0;
  p.pause_max_s = 0.0;  // no pauses: travel speed in [2, 6]
  RandomWaypointModel model(40, p, 5);
  for (int step = 0; step < 500; ++step) model.step(1.0);
  EXPECT_GT(model.mean_speed(), p.speed_min_mps * 0.8);
  EXPECT_LT(model.mean_speed(), p.speed_max_mps);
}

TEST(Mobility, PausesReduceMeanSpeed) {
  MobilityParams moving;
  moving.pause_max_s = 0.0;
  MobilityParams pausing = moving;
  pausing.pause_max_s = 30.0;
  RandomWaypointModel a(30, moving, 9);
  RandomWaypointModel b(30, pausing, 9);
  for (int step = 0; step < 400; ++step) {
    a.step(1.0);
    b.step(1.0);
  }
  EXPECT_GT(a.mean_speed(), b.mean_speed());
}

TEST(Mobility, InvalidParametersThrow) {
  MobilityParams bad;
  bad.field_radius_m = -1;
  EXPECT_THROW(RandomWaypointModel(5, bad, 1), std::invalid_argument);
  MobilityParams bad2;
  bad2.speed_min_mps = 5.0;
  bad2.speed_max_mps = 1.0;
  EXPECT_THROW(RandomWaypointModel(5, bad2, 1), std::invalid_argument);
  RandomWaypointModel ok(5, MobilityParams{}, 1);
  EXPECT_THROW(ok.step(0.0), std::invalid_argument);
}

TEST(Topology, LineGraphComponentsAndHops) {
  // Three nodes in a line, spaced 10 apart, range 12: a path graph.
  const std::vector<Vec2> pos{{0, 0}, {10, 0}, {20, 0}};
  const ConnectivityGraph g(pos, 12.0);
  EXPECT_EQ(g.num_components(), 1u);
  const auto d = g.hop_distances(0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 2u);
}

TEST(Topology, DisconnectedComponentsAreLabelled) {
  const std::vector<Vec2> pos{{0, 0}, {5, 0}, {100, 0}, {105, 0}};
  const ConnectivityGraph g(pos, 10.0);
  EXPECT_EQ(g.num_components(), 2u);
  const auto sizes = g.component_sizes();
  EXPECT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0] + sizes[1], 4u);
  const auto labels = g.component_labels();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
  // Unreachable pairs report UINT32_MAX.
  EXPECT_EQ(g.hop_distances(0)[2], UINT32_MAX);
}

TEST(Topology, CompleteGraphStats) {
  const std::vector<Vec2> pos{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  const ConnectivityGraph g(pos, 10.0);
  const auto st = g.stats();
  EXPECT_EQ(st.num_components, 1u);
  EXPECT_EQ(st.largest_component, 4u);
  EXPECT_DOUBLE_EQ(st.mean_degree, 3.0);
  EXPECT_DOUBLE_EQ(st.mean_hops, 1.0);
  EXPECT_DOUBLE_EQ(st.connectivity, 1.0);
}

TEST(Topology, ZeroRangeIsFullyDisconnected) {
  const std::vector<Vec2> pos{{0, 0}, {1, 0}, {2, 0}};
  const ConnectivityGraph g(pos, 0.5);
  EXPECT_EQ(g.num_components(), 3u);
  const auto st = g.stats();
  EXPECT_DOUBLE_EQ(st.mean_degree, 0.0);
  EXPECT_DOUBLE_EQ(st.connectivity, 0.0);
}

TEST(PartitionEstimator, OccupancySumsToOneAndRatesNonNegative) {
  MobilityParams mob;
  mob.field_radius_m = 300.0;
  PartitionSimOptions opts;
  opts.sim_time_s = 200.0;
  opts.radio_range_m = 120.0;
  const auto est = estimate_partition_rates(30, mob, opts);

  double occ = 0.0;
  for (double o : est.occupancy) occ += o;
  EXPECT_NEAR(occ, 1.0, 1e-9);
  for (double r : est.partition_rate) EXPECT_GE(r, 0.0);
  for (double r : est.merge_rate) EXPECT_GE(r, 0.0);
  EXPECT_GE(est.mean_hops, 0.0);
  EXPECT_GT(est.mean_degree, 0.0);
}

TEST(PartitionEstimator, HugeRangeNeverPartitions) {
  MobilityParams mob;
  mob.field_radius_m = 100.0;
  PartitionSimOptions opts;
  opts.sim_time_s = 100.0;
  opts.radio_range_m = 1000.0;  // everyone hears everyone
  const auto est = estimate_partition_rates(20, mob, opts);
  EXPECT_EQ(est.max_groups_seen, 1u);
  EXPECT_DOUBLE_EQ(est.partition_rate_at(1), 0.0);
  EXPECT_NEAR(est.occupancy[1], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(est.mean_hops, 1.0);
}

TEST(PartitionEstimator, RateLookupsClampOutOfRange) {
  PartitionEstimate est;
  est.partition_rate = {0.0, 0.5};
  est.merge_rate = {0.0, 0.0, 0.25};
  EXPECT_DOUBLE_EQ(est.partition_rate_at(0), 0.0);
  EXPECT_DOUBLE_EQ(est.partition_rate_at(1), 0.5);
  EXPECT_DOUBLE_EQ(est.partition_rate_at(99), 0.0);
  EXPECT_DOUBLE_EQ(est.merge_rate_at(1), 0.0);  // can't merge below 1
  EXPECT_DOUBLE_EQ(est.merge_rate_at(2), 0.25);
}

TEST(PartitionEstimator, DeterministicUnderSeed) {
  MobilityParams mob;
  PartitionSimOptions opts;
  opts.sim_time_s = 50.0;
  opts.seed = 42;
  const auto a = estimate_partition_rates(15, mob, opts);
  const auto b = estimate_partition_rates(15, mob, opts);
  EXPECT_DOUBLE_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.max_groups_seen, b.max_groups_seen);
}

}  // namespace
