// Batched multi-point solver equivalence: spn::AbsorbingAnalyzer::
// solve_batch (and the layers above it — evaluate_with_batch,
// SweepEngine's batch chunking) must reproduce the scalar per-point
// path BITWISE with factor reuse off, within 1e-12 relative with reuse
// on, and independently of how points are grouped into batches.  Also
// covers the util::Arena scratch allocator and the batch rate matrix
// (ReachabilityGraph::compute_rates_batch) error contract.
#include "spn/absorbing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/gcs_spn_model.h"
#include "core/params.h"
#include "core/sweep_engine.h"
#include "spn/petri_net.h"
#include "spn/reachability.h"
#include "util/arena.h"

namespace {

using namespace midas;
using core::Params;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

void expect_bitwise(double a, double b, const std::string& what) {
  EXPECT_EQ(bits(a), bits(b)) << what << ": " << a << " vs " << b;
}

void expect_rel(double a, double b, double tol, const std::string& what) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  EXPECT_LE(std::fabs(a - b) / scale, tol) << what << ": " << a << " vs " << b;
}

// --- GCS-model batches (the sweep engine's real workload). -------------

Params small_params() {
  Params p = Params::paper_defaults();
  p.n_init = 12;
  // Multi-group: the partition/merge cycles give the transient graph
  // multi-state SCCs, so these sweeps exercise the dense-block batch
  // kernels (a single-group structure is all singleton SCCs).
  p.max_groups = 3;
  return p;
}

/// P models sharing one structure, their explored graph/analyzer, and
/// the point-major [edge][point] rate/impulse matrices.
struct ModelBatch {
  explicit ModelBatch(const std::vector<Params>& pts) {
    for (const auto& p : pts) models.emplace_back(p);
    for (auto& m : models) {
      model_ptrs.push_back(&m);
      nets.push_back(&m.net());
    }
    graph = spn::explore(models.front().net());
    analyzer = std::make_unique<spn::AbsorbingAnalyzer>(graph);
    num_points = pts.size();
    num_edges = graph.edges.size();
    rates.resize(num_edges * num_points);
    impulses.resize(num_edges * num_points);
    graph.compute_rates_batch(nets, rates, impulses);
  }

  /// Point p's per-edge rate vector (the scalar solve's input).
  [[nodiscard]] std::vector<double> rate_column(std::size_t p) const {
    std::vector<double> col(num_edges);
    for (std::size_t i = 0; i < num_edges; ++i) {
      col[i] = rates[i * num_points + p];
    }
    return col;
  }

  std::deque<core::GcsSpnModel> models;  // immovable (lazy-graph once_flag)
  std::vector<const core::GcsSpnModel*> model_ptrs;
  std::vector<const spn::PetriNet*> nets;
  spn::ReachabilityGraph graph;
  std::unique_ptr<spn::AbsorbingAnalyzer> analyzer;
  std::size_t num_points = 0;
  std::size_t num_edges = 0;
  std::vector<double> rates;
  std::vector<double> impulses;
};

/// Gates every solve_batch output column against the scalar solve of
/// the same rate column: bitwise when `tol` < 0, else `tol` relative.
void expect_batch_matches_scalar(const ModelBatch& mb, bool factor_reuse,
                                 double tol) {
  util::Arena arena;
  const auto res = mb.analyzer->solve_batch(
      mb.rates, mb.num_points, spn::BatchSolveOptions{factor_reuse}, &arena);
  ASSERT_TRUE(res.converged);
  const std::size_t n = mb.graph.num_states();
  for (std::size_t p = 0; p < mb.num_points; ++p) {
    const auto ref = mb.analyzer->solve(mb.rate_column(p));
    const std::string tag = "point " + std::to_string(p);
    if (tol < 0.0) {
      expect_bitwise(res.mtta[p], ref.mtta, tag + " mtta");
    } else {
      expect_rel(res.mtta[p], ref.mtta, tol, tag + " mtta");
    }
    for (std::size_t s = 0; s < n; ++s) {
      const std::string st = tag + " state " + std::to_string(s);
      if (tol < 0.0) {
        expect_bitwise(res.sojourn[s * mb.num_points + p], ref.sojourn[s],
                       st + " sojourn");
        expect_bitwise(res.absorb_probability[s * mb.num_points + p],
                       ref.absorb_probability[s], st + " absorb");
      } else {
        expect_rel(res.sojourn[s * mb.num_points + p], ref.sojourn[s], tol,
                   st + " sojourn");
        expect_rel(res.absorb_probability[s * mb.num_points + p],
                   ref.absorb_probability[s], tol, st + " absorb");
      }
    }
  }
}

std::vector<Params> tids_sweep_points(std::size_t count) {
  std::vector<Params> pts;
  for (std::size_t i = 0; i < count; ++i) {
    Params p = small_params();
    p.t_ids = 30.0 + 45.0 * static_cast<double>(i);
    pts.push_back(p);
  }
  return pts;
}

TEST(SolverBatch, ReuseOffIsBitwiseScalarOnTidsSweep) {
  const ModelBatch mb(tids_sweep_points(5));
  expect_batch_matches_scalar(mb, /*factor_reuse=*/false, /*tol=*/-1.0);
}

TEST(SolverBatch, ReuseOnIsWithinToleranceOnTidsSweep) {
  const ModelBatch mb(tids_sweep_points(5));
  expect_batch_matches_scalar(mb, /*factor_reuse=*/true, /*tol=*/1e-12);
}

TEST(SolverBatch, ReuseOffIsBitwiseScalarOnVoterCountSweep) {
  // Fig. 4's axis: the voter count m changes every voting-dependent
  // rate but not the structure.
  std::vector<Params> pts;
  for (int m : {1, 3, 5}) {
    Params p = small_params();
    p.num_voters = m;
    pts.push_back(p);
  }
  const ModelBatch mb(pts);
  expect_batch_matches_scalar(mb, /*factor_reuse=*/false, /*tol=*/-1.0);
  expect_batch_matches_scalar(mb, /*factor_reuse=*/true, /*tol=*/1e-12);
}

TEST(SolverBatch, ReuseOnIsWithinToleranceOnAttackerSensitivitySweep) {
  // Sensitivity-style sweep over the attacker strength λc.
  std::vector<Params> pts;
  for (double scale : {0.5, 1.0, 2.0, 3.0}) {
    Params p = small_params();
    p.lambda_c = p.lambda_c * scale;
    pts.push_back(p);
  }
  const ModelBatch mb(pts);
  expect_batch_matches_scalar(mb, /*factor_reuse=*/false, /*tol=*/-1.0);
  expect_batch_matches_scalar(mb, /*factor_reuse=*/true, /*tol=*/1e-12);
}

TEST(SolverBatch, IdenticalPointsShareFactorisationsAndAgreeBitwise) {
  // Four copies of one parameter point: every normalised dense block is
  // bitwise identical across the batch, so with reuse on each block
  // factors once and serves the other three points.
  const ModelBatch mb(std::vector<Params>(4, small_params()));
  util::Arena arena;
  const auto res = mb.analyzer->solve_batch(mb.rates, mb.num_points,
                                            spn::BatchSolveOptions{true},
                                            &arena);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.blocks_reused, 0u);
  EXPECT_LT(res.blocks_factored, res.solver_blocks * mb.num_points);
  for (std::size_t p = 1; p < mb.num_points; ++p) {
    expect_bitwise(res.mtta[p], res.mtta[0],
                   "identical point " + std::to_string(p));
  }
  // And the shared-factor answers still match the scalar path.
  expect_batch_matches_scalar(mb, /*factor_reuse=*/true, /*tol=*/1e-12);
}

// --- Synthetic cyclic nets (dense-SCC reuse mechanics). ----------------

/// A → B → A cycle with escape B → Dead: one 2-state transient SCC, so
/// the dense-block path (and its factor-reuse grouping) is exercised in
/// isolation.
spn::PetriNet cycle_net(double ra, double rb, double rd) {
  spn::PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto dead = net.add_place("Dead", 0);
  net.transition("ab").input(a).output(b).rate(ra).add();
  net.transition("ba").input(b).output(a).rate(rb).add();
  net.transition("bd").input(b).output(dead).rate(rd).add();
  return net;
}

TEST(SolverBatch, RateScaledBlocksFactorOnceUnderReuse) {
  // Point p's rates are 2^p × point 0's: the dense blocks are exact
  // scalar multiples, the power-of-two normalisation is lossless, and
  // one LU serves all four points.
  std::vector<spn::PetriNet> nets;
  for (int p = 0; p < 4; ++p) {
    const double s = std::ldexp(1.0, p);
    nets.push_back(cycle_net(1.25 * s, 0.5 * s, 0.75 * s));
  }
  std::vector<const spn::PetriNet*> ptrs;
  for (auto& n : nets) ptrs.push_back(&n);
  const auto g = spn::explore(nets.front());
  const spn::AbsorbingAnalyzer an(g);
  const std::size_t E = g.edges.size();
  const std::size_t P = nets.size();
  std::vector<double> rates(E * P);
  std::vector<double> impulses(E * P);
  g.compute_rates_batch(ptrs, rates, impulses);

  util::Arena arena;
  const auto res =
      an.solve_batch(rates, P, spn::BatchSolveOptions{true}, &arena);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.blocks_factored, 1u);
  EXPECT_EQ(res.blocks_reused, P - 1);
  for (std::size_t p = 0; p < P; ++p) {
    std::vector<double> col(E);
    for (std::size_t i = 0; i < E; ++i) col[i] = rates[i * P + p];
    const auto ref = an.solve(col);
    expect_rel(res.mtta[p], ref.mtta, 1e-12,
               "scaled point " + std::to_string(p));
  }
}

TEST(SolverBatch, MixedScaledAndUnrelatedBlocksGroupCorrectly) {
  // Points 0/2/4 are scalar multiples of each other; points 1 and 3 are
  // unrelated.  Reuse must find exactly one shared group (3 members)
  // and factor the other two points separately — and reuse OFF must
  // stay bitwise-scalar on the same batch.
  std::vector<spn::PetriNet> nets;
  nets.push_back(cycle_net(1.25, 0.5, 0.75));        // group head
  nets.push_back(cycle_net(1.3, 0.4, 0.9));          // unrelated
  nets.push_back(cycle_net(2.5, 1.0, 1.5));          // 2 × head
  nets.push_back(cycle_net(0.7, 1.1, 0.2));          // unrelated
  nets.push_back(cycle_net(5.0, 2.0, 3.0));          // 4 × head
  std::vector<const spn::PetriNet*> ptrs;
  for (auto& n : nets) ptrs.push_back(&n);
  const auto g = spn::explore(nets.front());
  const spn::AbsorbingAnalyzer an(g);
  const std::size_t E = g.edges.size();
  const std::size_t P = nets.size();
  std::vector<double> rates(E * P);
  std::vector<double> impulses(E * P);
  g.compute_rates_batch(ptrs, rates, impulses);

  util::Arena arena;
  const auto reuse =
      an.solve_batch(rates, P, spn::BatchSolveOptions{true}, &arena);
  EXPECT_EQ(reuse.blocks_factored, 3u);  // head + the two unrelated points
  EXPECT_EQ(reuse.blocks_reused, 2u);    // 2× and 4× join the head's group

  util::Arena arena2;
  const auto exact =
      an.solve_batch(rates, P, spn::BatchSolveOptions{false}, &arena2);
  EXPECT_EQ(exact.blocks_factored, P);
  EXPECT_EQ(exact.blocks_reused, 0u);
  for (std::size_t p = 0; p < P; ++p) {
    std::vector<double> col(E);
    for (std::size_t i = 0; i < E; ++i) col[i] = rates[i * P + p];
    const auto ref = an.solve(col);
    expect_bitwise(exact.mtta[p], ref.mtta,
                   "exact point " + std::to_string(p));
    expect_rel(reuse.mtta[p], ref.mtta, 1e-12,
               "reuse point " + std::to_string(p));
  }
}

TEST(SolverBatch, ComputeRatesBatchRejectsReRatedEdgeNamingIt) {
  // A transition whose rate drops to zero for one batch point changes
  // the edge structure — the batch rate pass must refuse, naming the
  // edge, the transition and the offending point.
  std::vector<spn::PetriNet> nets;
  nets.push_back(cycle_net(1.0, 0.5, 0.75));
  nets.push_back(cycle_net(1.0, 0.0, 0.75));  // B → A edge vanishes
  std::vector<const spn::PetriNet*> ptrs{&nets[0], &nets[1]};
  const auto g = spn::explore(nets.front());
  const std::size_t E = g.edges.size();
  std::vector<double> rates(E * 2);
  std::vector<double> impulses(E * 2);
  try {
    g.compute_rates_batch(ptrs, rates, impulses);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("re-rates"), std::string::npos) << msg;
    EXPECT_NE(msg.find("transition ba"), std::string::npos) << msg;
    EXPECT_NE(msg.find("batch point 1"), std::string::npos) << msg;
  }
}

TEST(SolverBatch, ComputeRatesBatchValidatesSpanShapes) {
  auto net = cycle_net(1.0, 0.5, 0.75);
  const auto g = spn::explore(net);
  const spn::PetriNet* ptr = &net;
  std::vector<double> wrong(g.edges.size() * 2 - 1);
  std::vector<double> impulses(g.edges.size() * 2);
  EXPECT_THROW(
      g.compute_rates_batch(std::span<const spn::PetriNet* const>{&ptr, 1},
                            wrong, impulses),
      std::invalid_argument);
  EXPECT_THROW(g.compute_rates_batch({}, wrong, impulses),
               std::invalid_argument);
}

TEST(SolverBatch, BatchRateHookIsBitwiseGenericPath) {
  // GcsSpnModel::batch_rate_fn answers whole (transition, marking)
  // pairs across the batch; its values must be bitwise what the generic
  // per-net rate()/impulse() path computes — with and without the
  // factor memo, since the sweep engine enables it before rating.
  for (const bool memo : {false, true}) {
    ModelBatch mb(tids_sweep_points(4));  // generic path (no memo)
    if (memo) {
      for (auto& m : mb.models) m.enable_factor_memo();
    }
    std::vector<double> rates(mb.num_edges * mb.num_points);
    std::vector<double> impulses(mb.num_edges * mb.num_points);
    mb.graph.compute_rates_batch(
        mb.nets, rates, impulses,
        core::GcsSpnModel::batch_rate_fn(mb.model_ptrs));
    for (std::size_t i = 0; i < rates.size(); ++i) {
      expect_bitwise(rates[i], mb.rates[i],
                     std::string("hook rate entry ") + std::to_string(i) +
                         (memo ? " (memo)" : ""));
      expect_bitwise(impulses[i], mb.impulses[i],
                     std::string("hook impulse entry ") + std::to_string(i) +
                         (memo ? " (memo)" : ""));
    }
  }
}

TEST(SolverBatch, BatchRateHookDeclinesUnknownTransitions) {
  // On a net without the GCS transition names the hook must decline
  // every pair and the generic path must still fill the matrices.
  std::vector<spn::PetriNet> nets;
  nets.push_back(cycle_net(1.25, 0.5, 0.75));
  nets.push_back(cycle_net(2.5, 1.0, 1.5));
  std::vector<const spn::PetriNet*> ptrs{&nets[0], &nets[1]};
  const auto g = spn::explore(nets.front());
  const std::size_t E = g.edges.size();
  std::vector<double> plain(E * 2), plain_imp(E * 2);
  g.compute_rates_batch(ptrs, plain, plain_imp);
  // A hook that declines everything is equivalent to no hook.
  std::vector<double> hooked(E * 2), hooked_imp(E * 2);
  g.compute_rates_batch(ptrs, hooked, hooked_imp,
                        [](spn::TransitionId, const spn::Marking&,
                           std::span<double>, std::span<double>) {
                          return false;
                        });
  for (std::size_t i = 0; i < plain.size(); ++i) {
    expect_bitwise(hooked[i], plain[i], "declined-hook rate");
    expect_bitwise(hooked_imp[i], plain_imp[i], "declined-hook impulse");
  }
}

// --- Lightweight scalar solve modes (PR 7 satellites). -----------------

TEST(SolverBatch, StoredRateSolveMatchesExplicitRates) {
  // solve() uses the construction-time rate snapshot; it must equal
  // solve(edge_rates) with the graph's own rates, bitwise.
  auto net = cycle_net(1.25, 0.5, 0.75);
  const auto g = spn::explore(net);
  const spn::AbsorbingAnalyzer an(g);
  std::vector<double> stored;
  for (const auto& e : g.edges) stored.push_back(e.rate);
  const auto a = an.solve();
  const auto b = an.solve(stored);
  expect_bitwise(a.mtta, b.mtta, "stored-rate mtta");
  for (std::size_t s = 0; s < g.num_states(); ++s) {
    expect_bitwise(a.sojourn[s], b.sojourn[s], "stored-rate sojourn");
  }
}

TEST(SolverBatch, LightweightSolveSkipsFullStateVectors) {
  auto net = cycle_net(1.25, 0.5, 0.75);
  const auto g = spn::explore(net);
  const spn::AbsorbingAnalyzer an(g);
  std::vector<double> stored;
  for (const auto& e : g.edges) stored.push_back(e.rate);
  const auto full = an.solve(stored);
  const auto lean =
      an.solve(stored, spn::SolveOptions{.sojourn = false,
                                         .absorb_probability = false});
  expect_bitwise(lean.mtta, full.mtta, "lean mtta");
  EXPECT_TRUE(lean.sojourn.empty());
  EXPECT_TRUE(lean.absorb_probability.empty());
  ASSERT_TRUE(lean.converged);
}

// --- Full evaluation pipeline (evaluate_with_batch + engine). ----------

void expect_eval_bitwise(const core::Evaluation& a, const core::Evaluation& b,
                         const std::string& what) {
  expect_bitwise(a.mttsf, b.mttsf, what + " mttsf");
  expect_bitwise(a.ctotal, b.ctotal, what + " ctotal");
  expect_bitwise(a.cost_rates.group_comm, b.cost_rates.group_comm, what);
  expect_bitwise(a.cost_rates.status, b.cost_rates.status, what);
  expect_bitwise(a.cost_rates.rekey, b.cost_rates.rekey, what);
  expect_bitwise(a.cost_rates.ids, b.cost_rates.ids, what);
  expect_bitwise(a.cost_rates.beacon, b.cost_rates.beacon, what);
  expect_bitwise(a.cost_rates.partition_merge, b.cost_rates.partition_merge,
                 what);
  expect_bitwise(a.eviction_cost_rate, b.eviction_cost_rate, what);
  expect_bitwise(a.p_failure_c1, b.p_failure_c1, what + " pc1");
  expect_bitwise(a.p_failure_c2, b.p_failure_c2, what + " pc2");
  EXPECT_EQ(a.num_states, b.num_states) << what;
}

TEST(SolverBatch, EvaluateWithBatchReuseOffIsBitwiseEvaluateWith) {
  const ModelBatch mb(tids_sweep_points(4));
  util::Arena arena;
  const auto batch =
      core::evaluate_with_batch(mb.model_ptrs, *mb.analyzer, mb.rates,
                                mb.impulses, /*factor_reuse=*/false, arena);
  ASSERT_EQ(batch.size(), mb.num_points);
  for (std::size_t p = 0; p < mb.num_points; ++p) {
    std::vector<double> rate_col = mb.rate_column(p);
    std::vector<double> imp_col(mb.num_edges);
    for (std::size_t i = 0; i < mb.num_edges; ++i) {
      imp_col[i] = mb.impulses[i * mb.num_points + p];
    }
    const auto ref =
        mb.models[p].evaluate_with(*mb.analyzer, rate_col, imp_col);
    expect_eval_bitwise(batch[p], ref, "point " + std::to_string(p));
  }
}

TEST(SolverBatch, EngineResultsAreIndependentOfBatchWidth) {
  // 17 points so widths 3 and 8 leave ragged final batches (17 = 5·3+2
  // = 2·8+1) and width 17 is one full batch.  With factor reuse ON the
  // batch path is grouping-independent: every width (> 1) must agree
  // BITWISE; the scalar width-1 path agrees to 1e-12.
  const auto pts = tids_sweep_points(17);
  core::SweepEngineOptions opts;
  opts.threads = 1;
  core::SweepEngine engine(opts);
  const auto scalar = engine.evaluate(pts, 1);
  const auto w3 = engine.evaluate(pts, 3);
  const auto w8 = engine.evaluate(pts, 8);
  const auto w17 = engine.evaluate(pts, 17);
  ASSERT_EQ(scalar.size(), pts.size());
  for (std::size_t p = 0; p < pts.size(); ++p) {
    const std::string tag = "point " + std::to_string(p);
    expect_eval_bitwise(w8[p], w3[p], tag + " w8-vs-w3");
    expect_eval_bitwise(w17[p], w3[p], tag + " w17-vs-w3");
    expect_rel(w3[p].mttsf, scalar[p].mttsf, 1e-12, tag + " mttsf");
    expect_rel(w3[p].ctotal, scalar[p].ctotal, 1e-12, tag + " ctotal");
  }
}

TEST(SolverBatch, EngineReuseOffIsBitwiseScalarAtEveryWidth) {
  const auto pts = tids_sweep_points(7);
  core::SweepEngineOptions opts;
  opts.threads = 1;
  opts.factor_reuse = false;
  core::SweepEngine engine(opts);
  const auto scalar = engine.evaluate(pts, 1);
  for (std::size_t w : {2u, 3u, 8u}) {
    const auto batched = engine.evaluate(pts, w);
    for (std::size_t p = 0; p < pts.size(); ++p) {
      expect_eval_bitwise(batched[p], scalar[p],
                          "width " + std::to_string(w) + " point " +
                              std::to_string(p));
    }
  }
}

// --- util::Arena. ------------------------------------------------------

TEST(Arena, AllocationsAreAlignedAndDistinct) {
  util::Arena arena;
  auto a = arena.make_span<double>(7, 1.5);
  auto b = arena.make_span<std::uint32_t>(3, 9u);
  auto c = arena.make_span<double>(4, -2.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % alignof(double), 0u);
  for (double v : a) EXPECT_EQ(v, 1.5);
  for (auto v : b) EXPECT_EQ(v, 9u);
  for (double v : c) EXPECT_EQ(v, -2.0);
  // Writing one span must not disturb the others.
  for (auto& v : c) v = 7.0;
  for (double v : a) EXPECT_EQ(v, 1.5);
  EXPECT_GE(arena.bytes_used(), 7 * sizeof(double) + 3 * sizeof(std::uint32_t) +
                                    4 * sizeof(double));
}

TEST(Arena, ResetCoalescesGrowthIntoOneChunk) {
  util::Arena arena(64);
  // Force growth past the first chunk.
  (void)arena.make_span<double>(64);
  (void)arena.make_span<double>(100'000);
  EXPECT_GT(arena.num_chunks(), 1u);
  const std::size_t cap = arena.capacity();
  arena.reset();
  EXPECT_EQ(arena.num_chunks(), 1u);
  EXPECT_GE(arena.capacity(), cap);
  EXPECT_EQ(arena.bytes_used(), 0u);
  // The same workload now fits the coalesced block: no further chunks.
  (void)arena.make_span<double>(64);
  (void)arena.make_span<double>(100'000);
  EXPECT_EQ(arena.num_chunks(), 1u);
}

TEST(Arena, HighWaterTracksPeakUse) {
  util::Arena arena;
  (void)arena.make_span<double>(1000);
  const std::size_t peak = arena.bytes_used();
  arena.reset();
  (void)arena.make_span<double>(10);
  EXPECT_GE(arena.high_water(), peak);
  EXPECT_LT(arena.bytes_used(), peak);
}

TEST(Arena, ThreadScratchArenaIsStable) {
  util::Arena& a = util::thread_scratch_arena();
  util::Arena& b = util::thread_scratch_arena();
  EXPECT_EQ(&a, &b);
}

TEST(Arena, SolveBatchDrawsScratchFromCallerArena) {
  const ModelBatch mb(tids_sweep_points(3));
  util::Arena arena;
  const auto res = mb.analyzer->solve_batch(mb.rates, mb.num_points,
                                            spn::BatchSolveOptions{}, &arena);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(arena.bytes_used(), 0u);
  // Result spans live inside the arena's chunks (sized by it).
  EXPECT_EQ(res.mtta.size(), mb.num_points);
  EXPECT_EQ(res.sojourn.size(), mb.graph.num_states() * mb.num_points);
}

}  // namespace
